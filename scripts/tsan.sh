#!/usr/bin/env bash
# Build the concurrency suite under ThreadSanitizer and run the
# `tsan`-labelled tests (thread pool, library stress, plan service, C API).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-tsan -S . -DOPTIBAR_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-tsan -j "$(nproc)" --target \
  test_thread_pool test_library_stress test_plan_service test_capi \
  test_compiled_predict \
  test_collective_simmpi test_fault_plan test_resilience test_rma \
  test_runtime_scaling test_nonblocking test_netsim_parity
ctest --test-dir build-tsan -L tsan --output-on-failure
