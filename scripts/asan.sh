#!/usr/bin/env bash
# Build the memory suite under AddressSanitizer and run the
# `asan`-labelled tests (fault model, resilient executors, validator,
# format hardening, library quarantine, plan service).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build-asan -S . -DOPTIBAR_SANITIZE=address -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build build-asan -j "$(nproc)" --target \
  test_fault_plan test_resilience test_rma test_validate \
  test_format_hardening test_library test_plan_service test_failure_injection \
  test_runtime_scaling test_nonblocking test_netsim_parity
ctest --test-dir build-asan -L asan --output-on-failure
