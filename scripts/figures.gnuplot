# Renders the reproduction's figure CSVs (see plot_figures.sh).
# Layout mirrors the paper: predicted panel (A) and measured panel (B)
# per validation figure; hybrid-vs-MPI per performance figure.
if (!exists("outdir")) outdir = "figures"

set datafile separator ","
set terminal pngcairo size 900,600 font ",11"
set key top left
set xlabel "# of processes"
set ylabel "Execution time [seconds]"
set grid

# ---- Figure 5: validation on 8 nodes of dual quad-cores ----
set output outdir . "/fig5_predicted.png"
set title "Figure 5-A (reproduction): Predicted Execution Time, quad cluster"
plot outdir . "/fig5.csv" using 1:2 with linespoints title "D", \
     ""                   using 1:3 with linespoints title "T", \
     ""                   using 1:4 with linespoints title "L"

set output outdir . "/fig5_measured.png"
set title "Figure 5-B (reproduction): Measured (simulated) Execution Time, quad cluster"
plot outdir . "/fig5.csv" using 1:5 with linespoints title "D", \
     ""                   using 1:6 with linespoints title "T", \
     ""                   using 1:7 with linespoints title "L"

# ---- Figure 6: validation on 10 nodes of dual hex-cores ----
set output outdir . "/fig6_predicted.png"
set title "Figure 6-A (reproduction): Predicted Execution Time, hex cluster"
plot outdir . "/fig6.csv" using 1:2 with linespoints title "D", \
     ""                   using 1:3 with linespoints title "T", \
     ""                   using 1:4 with linespoints title "L"

set output outdir . "/fig6_measured.png"
set title "Figure 6-B (reproduction): Measured (simulated) Execution Time, hex cluster"
plot outdir . "/fig6.csv" using 1:5 with linespoints title "D", \
     ""                   using 1:6 with linespoints title "T", \
     ""                   using 1:7 with linespoints title "L"

# ---- Figure 11: generated codes vs MPI baseline ----
set output outdir . "/fig11a.png"
set title "Figure 11-A (reproduction): Performance, 2x4-core nodes"
plot outdir . "/fig11a.csv" using 1:2 with linespoints title "MPI", \
     ""                     using 1:3 with linespoints title "Hybrid"

set output outdir . "/fig11b.png"
set title "Figure 11-B (reproduction): Performance, 2x6-core nodes"
plot outdir . "/fig11b.csv" using 1:2 with linespoints title "MPI", \
     ""                     using 1:3 with linespoints title "Hybrid"
