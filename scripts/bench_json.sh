#!/usr/bin/env bash
# Perf trajectory: run the cost-kernel and tuning-pipeline benches and
# write their google-benchmark JSON to the repo root, where each PR
# commits the refreshed numbers.
#
#   BENCH_predict.json    — bench_predict_throughput (compiled kernel vs
#                           reference predict, compile cost, search step)
#   BENCH_tuning.json     — bench_tuning_speed (full pipeline, stages,
#                           thread scaling, library batch tuning)
#   BENCH_collective.json — bench_collective (collective tuning on hex,
#                           payload-aware predict/compile/sim throughput)
#   BENCH_runtime.json    — bench_thread_runtime (episode throughput:
#                           spawn vs pooled ranks x global vs sharded
#                           message board, P = 16/48/120)
#   BENCH_overlap.json    — bench_overlap (episode throughput with
#                           per-rank compute overlapped through the
#                           post/test/wait lifecycle, ratio 0/50/100%)
#   BENCH_netsim.json     — bench_netsim (simulated events/sec: calendar-
#                           queue engine vs reference, P = 120/1000 x
#                           dissemination/heap-tree/radix-4 families)
#   BENCH_rma.json        — bench_rma (one-sided flag-store puts/sec on
#                           the sharded board, plus episode throughput
#                           with two-sided / one-sided / hybrid
#                           transport on pooled ranks)
#   BENCH_service.json    — bench_service (plan-service mixed soak: 1M
#                           ops across 4 clients with the background
#                           repair worker live; ops_per_second gated,
#                           p50/p99 committed for trajectory)
#   BENCH_scale.json      — bench_scale (tune/predict/simulate scaling
#                           to 10240 ranks: dense pipeline vs tiled
#                           hierarchical, with exact model-memory
#                           counters and netsim events/sec at 10k)
#
# Usage: scripts/bench_json.sh [build-dir]   (default: build)
# BENCH_FILTER limits both runs, e.g.
#   BENCH_FILTER=BM_PredictThroughput scripts/bench_json.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
FILTER="${BENCH_FILTER:-}"

for bench in bench_predict_throughput bench_tuning_speed bench_collective \
             bench_thread_runtime bench_overlap bench_netsim bench_rma \
             bench_service bench_scale; do
  if [[ ! -x "$BUILD_DIR/bench/$bench" ]]; then
    echo "error: $BUILD_DIR/bench/$bench not built (cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
done

run() {
  local bench="$1" out="$2"
  "$BUILD_DIR/bench/$bench" \
    --benchmark_format=json \
    ${FILTER:+--benchmark_filter="$FILTER"} \
    >"$out"
  echo "wrote $out"
}

run bench_predict_throughput BENCH_predict.json
run bench_tuning_speed BENCH_tuning.json
run bench_collective BENCH_collective.json
run bench_thread_runtime BENCH_runtime.json
run bench_overlap BENCH_overlap.json
run bench_netsim BENCH_netsim.json
run bench_rma BENCH_rma.json
run bench_service BENCH_service.json
run bench_scale BENCH_scale.json
