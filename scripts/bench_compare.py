#!/usr/bin/env python3
"""Diff two google-benchmark JSON files and gate on regressions.

Usage:
    scripts/bench_compare.py BASELINE.json CURRENT.json \
        [--threshold 0.15] [--counter NAME ...] [--filter REGEX]

Compares every benchmark present in both files. The compared metric per
benchmark is, in order of preference:

  1. each counter named by --counter (repeatable) that the benchmark
     reports — higher is better (counters the repo commits are rates:
     episodes_per_second, events_per_second, items_per_second, ...);
  2. otherwise `real_time` — lower is better.

A change worse than --threshold (default 0.15 = 15%) in the unfavourable
direction is a regression. Exit status: 0 when no regressions, 1 on any
regression, 2 on usage/file errors. Benchmarks present in only one file
are listed but never fail the gate (new or retired benchmarks are
expected as the repo grows).

Typical gate for this repo's committed numbers:

    scripts/bench_compare.py BENCH_runtime.json /tmp/new_runtime.json \
        --counter episodes_per_second
"""

import argparse
import json
import re
import sys


def load_benchmarks(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    benchmarks = {}
    for entry in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetition runs);
        # plain runs have no aggregate_name.
        if entry.get("aggregate_name"):
            continue
        name = entry.get("name")
        if name:
            benchmarks[name] = entry
    if not benchmarks:
        print(f"error: no benchmarks in {path}", file=sys.stderr)
        sys.exit(2)
    return benchmarks


def metrics_of(entry, counters):
    """Yield (metric_name, value, higher_is_better) for one benchmark."""
    found_counter = False
    for counter in counters:
        if counter in entry:
            yield counter, float(entry[counter]), True
            found_counter = True
    if not found_counter and "real_time" in entry:
        yield "real_time", float(entry["real_time"]), False


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative regression that fails the gate "
                             "(default 0.15 = 15%%)")
    parser.add_argument("--counter", action="append", default=[],
                        metavar="NAME",
                        help="counter to compare (higher is better); "
                             "repeatable; falls back to real_time "
                             "(lower is better) per benchmark")
    parser.add_argument("--filter", default=None, metavar="REGEX",
                        help="only compare benchmarks whose name matches")
    args = parser.parse_args()

    base = load_benchmarks(args.baseline)
    curr = load_benchmarks(args.current)
    pattern = re.compile(args.filter) if args.filter else None

    shared = [n for n in base if n in curr]
    if pattern:
        shared = [n for n in shared if pattern.search(n)]
    only_base = sorted(n for n in base if n not in curr)
    only_curr = sorted(n for n in curr if n not in base)

    regressions = []
    rows = []
    for name in shared:
        base_metrics = dict(
            (m, (v, hib)) for m, v, hib in metrics_of(base[name], args.counter))
        for metric, new_value, higher_is_better in metrics_of(
                curr[name], args.counter):
            if metric not in base_metrics:
                continue
            old_value, _ = base_metrics[metric]
            if old_value == 0:
                continue
            # Positive change = improvement, in either metric direction.
            if higher_is_better:
                change = new_value / old_value - 1.0
            else:
                change = old_value / new_value - 1.0 if new_value else 0.0
            regressed = change < -args.threshold
            rows.append((name, metric, old_value, new_value, change, regressed))
            if regressed:
                regressions.append((name, metric, change))

    if not rows:
        print("error: no comparable benchmarks between the two files",
              file=sys.stderr)
        sys.exit(2)

    width = max(len(f"{name} [{metric}]") for name, metric, *_ in rows)
    for name, metric, old_value, new_value, change, regressed in rows:
        flag = "  REGRESSION" if regressed else ""
        print(f"{f'{name} [{metric}]':<{width}}  "
              f"{old_value:>14.4g} -> {new_value:>14.4g}  "
              f"{change:+8.1%}{flag}")
    for name in only_base:
        print(f"{name}: only in baseline (skipped)")
    for name in only_curr:
        print(f"{name}: only in current (skipped)")

    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, metric, change in regressions:
            print(f"  {name} [{metric}]: {change:+.1%}", file=sys.stderr)
        sys.exit(1)
    print(f"\nOK: {len(rows)} comparison(s), none worse than "
          f"{args.threshold:.0%}.")


if __name__ == "__main__":
    main()
