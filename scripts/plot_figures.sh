#!/bin/sh
# Regenerate the paper's figures as PNGs from the bench binaries.
#
# Usage: scripts/plot_figures.sh [build-dir] [output-dir]
# Needs gnuplot; without it the CSV data files are still produced.
set -eu

BUILD="${1:-build}"
OUT="${2:-figures}"
mkdir -p "$OUT"

extract_csv() {
  # Pull the block after the last "CSV:" marker from a bench's output.
  awk '/^CSV:$/{found=1; buf=""; next} found{buf=buf $0 "\n"} END{printf "%s", buf}'
}

echo "running benches..."
"$BUILD"/bench/bench_fig5_validation_quad | extract_csv > "$OUT/fig5.csv"
"$BUILD"/bench/bench_fig6_validation_hex  | extract_csv > "$OUT/fig6.csv"
"$BUILD"/bench/bench_fig11_generated_quad | extract_csv > "$OUT/fig11a.csv"
"$BUILD"/bench/bench_fig11_generated_hex  | extract_csv > "$OUT/fig11b.csv"
echo "CSV data in $OUT/"

if ! command -v gnuplot > /dev/null 2>&1; then
  echo "gnuplot not found; skipping PNG rendering"
  exit 0
fi

gnuplot -e "outdir='$OUT'" scripts/figures.gnuplot
echo "PNGs in $OUT/"
