// Tests for the prediction-fidelity metrics, including the model-level
// claim they exist to quantify: high rank correlation between predicted
// and simulated series on the paper's machines.
#include "util/fidelity.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "netsim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

TEST(Spearman, PerfectMonotoneIsOne) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{10, 200, 300, 4000, 50000};
  EXPECT_NEAR(spearman_correlation(a, b), 1.0, 1e-12);
}

TEST(Spearman, ReversedIsMinusOne) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{9, 7, 5, 3};
  EXPECT_NEAR(spearman_correlation(a, b), -1.0, 1e-12);
}

TEST(Spearman, HandlesTies) {
  const std::vector<double> a{1, 2, 2, 3};
  const std::vector<double> b{1, 2, 2, 3};
  EXPECT_NEAR(spearman_correlation(a, b), 1.0, 1e-12);
}

TEST(Spearman, UncorrelatedIsNearZero) {
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{2, 1, 4, 3};
  const double rho = spearman_correlation(a, b);
  EXPECT_GT(rho, -0.5);
  EXPECT_LT(rho, 0.7);
}

TEST(Spearman, RejectsDegenerateInputs) {
  const std::vector<double> one{1.0};
  EXPECT_THROW(spearman_correlation(one, one), Error);
  const std::vector<double> constant{2.0, 2.0, 2.0};
  const std::vector<double> varying{1.0, 2.0, 3.0};
  EXPECT_THROW(spearman_correlation(constant, varying), Error);
  const std::vector<double> a{1, 2};
  const std::vector<double> b{1, 2, 3};
  EXPECT_THROW(spearman_correlation(a, b), Error);
}

TEST(Fidelity, ExactPredictionHasZeroError) {
  const std::vector<double> v{1e-4, 2e-4, 3e-4};
  const FidelityStats stats = fidelity(v, v);
  EXPECT_DOUBLE_EQ(stats.mean_abs_error, 0.0);
  EXPECT_DOUBLE_EQ(stats.max_abs_error, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_rel_error, 0.0);
  EXPECT_NEAR(stats.rank_correlation, 1.0, 1e-12);
  EXPECT_EQ(stats.points, 3u);
}

TEST(Fidelity, ConstantOffsetShowsInAbsNotRankError) {
  // The paper's observation: a ~200us offset "represents a decreasing
  // percentile" and does not disturb the ordering.
  const std::vector<double> measured{1e-4, 3e-4, 6e-4, 9e-4};
  std::vector<double> predicted;
  for (double v : measured) {
    predicted.push_back(v + 2e-4);
  }
  const FidelityStats stats = fidelity(predicted, measured);
  EXPECT_NEAR(stats.mean_abs_error, 2e-4, 1e-12);
  EXPECT_NEAR(stats.rank_correlation, 1.0, 1e-12);
}

TEST(Fidelity, RejectsNonPositiveMeasurements) {
  const std::vector<double> predicted{1.0, 2.0};
  const std::vector<double> measured{1.0, 0.0};
  EXPECT_THROW(fidelity(predicted, measured), Error);
}

TEST(Fidelity, ModelTracksSimulatorAcrossTheQuadSweep) {
  // The quantitative form of Figure 5's conclusion: across P = 2..64 the
  // predicted series of each algorithm orders like the simulated one
  // (rank correlation > 0.95) with modest relative error.
  const MachineSpec m = quad_cluster();
  struct Algo {
    const char* name;
    Schedule (*make)(std::size_t);
  };
  for (const Algo& algo :
       {Algo{"linear", linear_barrier}, Algo{"diss", dissemination_barrier},
        Algo{"tree", tree_barrier}}) {
    std::vector<double> predicted;
    std::vector<double> simulated;
    for (std::size_t p = 2; p <= 64; p += 2) {
      const TopologyProfile profile =
          generate_profile(m, round_robin_mapping(m, p));
      const Schedule s = algo.make(p);
      predicted.push_back(predicted_time(s, profile));
      simulated.push_back(simulate(s, profile).barrier_time());
    }
    const FidelityStats stats = fidelity(predicted, simulated);
    EXPECT_GT(stats.rank_correlation, 0.95) << algo.name;
    EXPECT_LT(stats.mean_rel_error, 0.5) << algo.name;
  }
}

TEST(Fidelity, CrossAlgorithmOrderingAtFixedSize) {
  // At a fixed P the model must order the algorithm set like the
  // simulator — the property the greedy tuner depends on.
  const MachineSpec m = quad_cluster();
  const std::size_t p = 40;
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, p));
  std::vector<double> predicted;
  std::vector<double> simulated;
  for (const Schedule& s :
       {linear_barrier(p), dissemination_barrier(p), tree_barrier(p),
        heap_tree_barrier(p), pairwise_exchange_barrier(p), ring_barrier(p),
        radix_dissemination_barrier(p, 4)}) {
    predicted.push_back(predicted_time(s, profile));
    simulated.push_back(simulate(s, profile).barrier_time());
  }
  EXPECT_GT(spearman_correlation(predicted, simulated), 0.9);
}

}  // namespace
}  // namespace optibar
