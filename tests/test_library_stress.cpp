// Concurrency stress tests for BarrierLibrary's sharded plan cache.
//
// Many threads hammer subset_plan() with overlapping subsets; every
// plan must be bit-identical to what the serial tuner produces, every
// subset must be tuned exactly once (stable entry addresses, exact
// cache_size), and tune_all() must agree with the serial engine. Run
// under -fsanitize=thread via the `tsan` CTest label (OPTIBAR_SANITIZE).
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <map>
#include <thread>
#include <vector>

#include "core/library.hpp"
#include "core/tuner.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"

namespace optibar {
namespace {

TopologyProfile cluster_profile(std::size_t ranks) {
  const MachineSpec m = quad_cluster();
  return generate_profile(m, round_robin_mapping(m, ranks));
}

/// A fixed pool of overlapping subsets of a 24-rank profile: per-node
/// groups, cross-node pairs, a permuted ordering, and the world.
std::vector<std::vector<std::size_t>> overlapping_subsets() {
  std::vector<std::vector<std::size_t>> subsets;
  subsets.push_back({0, 4, 8, 12, 16, 20});     // node 0 (round-robin)
  subsets.push_back({1, 5, 9, 13, 17, 21});     // node 1
  subsets.push_back({0, 1, 2, 3});              // one rank per node
  subsets.push_back({3, 2, 1, 0});              // same set, distinct order
  subsets.push_back({0, 4, 1, 5});              // two nodes interleaved
  subsets.push_back({8, 9, 10, 11, 12, 13});    // mixed block
  subsets.push_back({0, 1});                    // minimal pair
  std::vector<std::size_t> world(24);
  for (std::size_t r = 0; r < world.size(); ++r) {
    world[r] = r;
  }
  subsets.push_back(world);
  return subsets;
}

TEST(LibraryStress, ConcurrentSubsetPlansMatchSerialTuner) {
  const TopologyProfile profile = cluster_profile(24);
  const auto subsets = overlapping_subsets();

  // Ground truth from the serial tuner, one isolated run per subset.
  std::vector<TuneResult> serial;
  serial.reserve(subsets.size());
  for (const auto& subset : subsets) {
    serial.push_back(tune_barrier(profile.restrict_to(subset)));
  }

  EngineOptions options;
  options.threads = 4;  // library pool parallelizes each tune too
  BarrierLibrary library(profile, options);

  constexpr int kThreads = 8;
  constexpr int kRounds = 6;
  std::atomic<int> mismatches{0};
  std::vector<const LibraryEntry*> first_seen(subsets.size() * kThreads,
                                              nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t s = 0; s < subsets.size(); ++s) {
          // Stagger the order per thread so first requests collide.
          const std::size_t pick =
              (s + static_cast<std::size_t>(t)) % subsets.size();
          const LibraryEntry& entry = library.subset_plan(subsets[pick]);
          if (!(entry.stored.schedule == serial[pick].schedule()) ||
              entry.predicted_cost != serial[pick].predicted_cost()) {
            ++mismatches;
          }
          // Entry addresses must be stable across rounds and threads.
          const std::size_t slot =
              static_cast<std::size_t>(t) * subsets.size() + pick;
          if (first_seen[slot] == nullptr) {
            first_seen[slot] = &entry;
          } else if (first_seen[slot] != &entry) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(library.cache_size(), subsets.size());

  // All threads resolved each subset to the same cached entry.
  for (std::size_t s = 0; s < subsets.size(); ++s) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(first_seen[static_cast<std::size_t>(t) * subsets.size() + s],
                first_seen[s]);
    }
  }
}

TEST(LibraryStress, TuneAllMatchesSerialAndIsIdempotent) {
  const TopologyProfile profile = cluster_profile(24);
  const auto subsets = overlapping_subsets();

  EngineOptions parallel_options;
  parallel_options.threads = 8;
  BarrierLibrary parallel_library(profile, parallel_options);
  const auto batch = parallel_library.tune_all(subsets);
  ASSERT_EQ(batch.size(), subsets.size());
  EXPECT_EQ(parallel_library.cache_size(), subsets.size());

  BarrierLibrary serial_library(profile);  // threads = 1
  for (std::size_t s = 0; s < subsets.size(); ++s) {
    const LibraryEntry& expected = serial_library.subset_plan(subsets[s]);
    EXPECT_EQ(batch[s]->stored.schedule, expected.stored.schedule)
        << "subset " << s;
    EXPECT_DOUBLE_EQ(batch[s]->predicted_cost, expected.predicted_cost);
    EXPECT_EQ(batch[s]->global_ranks, subsets[s]);
  }

  // Second batch: pure cache hits, same entries.
  const auto again = parallel_library.tune_all(subsets);
  for (std::size_t s = 0; s < subsets.size(); ++s) {
    EXPECT_EQ(again[s], batch[s]);
  }
}

TEST(LibraryStress, ConcurrentTuneAllBatchesAgree) {
  const TopologyProfile profile = cluster_profile(16);
  std::vector<std::vector<std::size_t>> subsets;
  for (std::size_t base = 0; base < 16; base += 4) {
    subsets.push_back({base, base + 1, base + 2, base + 3});
  }

  EngineOptions options;
  options.threads = 4;
  BarrierLibrary library(profile, options);

  std::vector<std::vector<const LibraryEntry*>> results(4);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < results.size(); ++t) {
    threads.emplace_back([&, t] { results[t] = library.tune_all(subsets); });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (std::size_t t = 1; t < results.size(); ++t) {
    EXPECT_EQ(results[t], results[0]);
  }
  EXPECT_EQ(library.cache_size(), subsets.size());
}

TEST(LibraryStress, DuplicateSubsetsInOneBatchShareTheEntry) {
  BarrierLibrary library(cluster_profile(8));
  const std::vector<std::vector<std::size_t>> subsets{
      {0, 1, 2}, {4, 5}, {0, 1, 2}};
  const auto batch = library.tune_all(subsets);
  EXPECT_EQ(batch[0], batch[2]);
  EXPECT_NE(batch[0], batch[1]);
  EXPECT_EQ(library.cache_size(), 2u);
}

}  // namespace
}  // namespace optibar
