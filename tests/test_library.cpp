// Tests for the runtime BarrierLibrary (Section VIII's "library
// implementation which would benefit unmodified application codes").
#include "core/library.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "collective/executor.hpp"
#include "collective/schedule.hpp"
#include "simmpi/executor.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/resilience.hpp"
#include "simmpi/runtime.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

TopologyProfile cluster_profile(std::size_t ranks) {
  const MachineSpec m = quad_cluster();
  return generate_profile(m, round_robin_mapping(m, ranks));
}

TEST(Library, FullBarrierIsTunedAndValid) {
  BarrierLibrary library(cluster_profile(24));
  const LibraryEntry& entry = library.full_barrier();
  EXPECT_TRUE(entry.stored.schedule.is_barrier());
  EXPECT_EQ(entry.stored.schedule.ranks(), 24u);
  EXPECT_GT(entry.predicted_cost, 0.0);
  EXPECT_EQ(entry.global_ranks.size(), 24u);
}

TEST(Library, RepeatedRequestsHitTheCache) {
  BarrierLibrary library(cluster_profile(16));
  const LibraryEntry& a = library.full_barrier();
  const LibraryEntry& b = library.full_barrier();
  EXPECT_EQ(&a, &b);  // same cached object
  EXPECT_EQ(library.cache_size(), 1u);
}

TEST(Library, SubCommunicatorUsesLocalNumbering) {
  BarrierLibrary library(cluster_profile(32));
  // A sub-communicator of one node's ranks (round-robin: node 0 hosts
  // ranks 0, 4, 8, ... for 32 ranks over 4 nodes).
  const std::vector<std::size_t> subset{0, 4, 8, 12, 16, 20, 24, 28};
  const LibraryEntry& entry = library.barrier_for(subset);
  EXPECT_EQ(entry.stored.schedule.ranks(), subset.size());
  EXPECT_TRUE(entry.stored.schedule.is_barrier());
  EXPECT_EQ(entry.global_ranks, subset);
  EXPECT_EQ(library.cache_size(), 1u);
}

TEST(Library, SubsetCostReflectsItsTopology) {
  BarrierLibrary library(cluster_profile(32));
  // All ranks of one node (cheap links) vs one rank per node (slow).
  const LibraryEntry& local = library.barrier_for({0, 4, 8, 12});
  const LibraryEntry& remote = library.barrier_for({0, 1, 2, 3});
  // Round-robin over 4 nodes: ranks 0,4,8,12 share node 0; ranks
  // 0,1,2,3 are one per node.
  EXPECT_LT(local.predicted_cost, remote.predicted_cost);
}

TEST(Library, DifferentOrderingsAreDifferentEntries) {
  BarrierLibrary library(cluster_profile(8));
  library.barrier_for({0, 1, 2});
  library.barrier_for({2, 1, 0});
  EXPECT_EQ(library.cache_size(), 2u);
}

TEST(Library, ValidatesSubsets) {
  BarrierLibrary library(cluster_profile(8));
  EXPECT_THROW(library.barrier_for({}), Error);
  EXPECT_THROW(library.barrier_for({0, 0}), Error);
  EXPECT_THROW(library.barrier_for({0, 8}), Error);
}

TEST(Library, CompiledBarrierExecutesOnThreads) {
  BarrierLibrary library(cluster_profile(12));
  const LibraryEntry& entry = library.full_barrier();
  simmpi::Communicator comm(12);
  simmpi::run_ranks(comm, [&](simmpi::RankContext& ctx) {
    entry.compiled.execute(ctx);
  });
  EXPECT_EQ(comm.unmatched_operations(), 0u);
}

TEST(Library, ConcurrentRequestsAreSafe) {
  BarrierLibrary library(cluster_profile(24));
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      try {
        const std::vector<std::size_t> subset{0, static_cast<std::size_t>(t) + 1,
                                              static_cast<std::size_t>(t) + 9};
        const LibraryEntry& entry = library.barrier_for(subset);
        if (!entry.stored.schedule.is_barrier()) {
          ++failures;
        }
        library.full_barrier();
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(library.cache_size(), 9u);  // 8 subsets + the full set
}

TEST(Library, LoadsProfileFromDisk) {
  const auto path =
      std::filesystem::temp_directory_path() / "optibar_library_profile.txt";
  cluster_profile(16).save_file(path.string());
  BarrierLibrary library = BarrierLibrary::from_profile_file(path.string());
  EXPECT_EQ(library.ranks(), 16u);
  EXPECT_TRUE(library.full_barrier().stored.schedule.is_barrier());
  std::filesystem::remove(path);
}

TEST(Library, FailuresBelowTheThresholdKeepTheTunedPlan) {
  BarrierLibrary library(cluster_profile(12));  // default threshold: 3
  const std::vector<std::size_t> subset{0, 1, 2, 3};
  const LibraryEntry& tuned = library.subset_plan(subset);
  EXPECT_FALSE(tuned.degraded);
  EXPECT_FALSE(library.report_execution_failure(subset, "stall at stage 0"));
  EXPECT_FALSE(library.report_execution_failure(subset, "stall at stage 0"));
  EXPECT_EQ(library.failure_count(subset), 2u);
  EXPECT_FALSE(library.is_quarantined(subset));
  // Still the tuned plan, same cached object.
  const LibraryEntry& again = library.subset_plan(subset);
  EXPECT_EQ(&again, &tuned);
  EXPECT_FALSE(again.degraded);
}

TEST(Library, QuarantineServesADisseminationFallback) {
  EngineOptions options;
  options.quarantine_threshold = 2;
  BarrierLibrary library(cluster_profile(12), options);
  const std::vector<std::size_t> subset{0, 4, 8, 1, 5};
  const LibraryEntry& tuned = library.subset_plan(subset);
  EXPECT_FALSE(library.report_execution_failure(subset, "first stall"));
  EXPECT_TRUE(library.report_execution_failure(subset, "second stall"));
  EXPECT_TRUE(library.is_quarantined(subset));

  const LibraryEntry& fallback = library.subset_plan(subset);
  EXPECT_NE(&fallback, &tuned);
  EXPECT_TRUE(fallback.degraded);
  EXPECT_NE(fallback.degradation_reason.find("second stall"),
            std::string::npos);
  EXPECT_EQ(fallback.global_ranks, subset);
  // The fallback is the known-safe dissemination pattern, compiled and
  // costed against the subset's topology.
  EXPECT_EQ(fallback.stored.schedule, dissemination_barrier(subset.size()));
  EXPECT_TRUE(fallback.stored.awaited_stages.empty());
  EXPECT_GT(fallback.predicted_cost, 0.0);

  // Later failure reports keep counting but stay degraded (true).
  EXPECT_TRUE(library.report_execution_failure(subset, "third stall"));
  EXPECT_EQ(library.failure_count(subset), 3u);
}

TEST(Library, InjectedFaultsDriveQuarantineEndToEnd) {
  // The full degradation loop: execute the served plan under an
  // injected 100%-drop fault, feed the resulting StallReports back,
  // and verify the library swaps in a fallback that then runs clean.
  EngineOptions options;
  options.quarantine_threshold = 2;
  BarrierLibrary library(cluster_profile(8), options);
  const std::vector<std::size_t> subset{0, 1, 2, 3, 4, 5};
  const LibraryEntry& tuned = library.subset_plan(subset);

  const Schedule& schedule = tuned.stored.schedule;
  // Drop the first stage-0 signal the tuned schedule sends, whoever
  // sends it — hybrid arrival stages vary with the clustering.
  FaultPlan faults;
  for (std::size_t src = 0; src < schedule.ranks(); ++src) {
    const auto targets = schedule.targets_of(src, 0);
    if (!targets.empty()) {
      faults.drops.push_back({src, targets.front(), 0, 1.0, 0.0});
      break;
    }
  }
  ASSERT_EQ(faults.drops.size(), 1u);
  simmpi::ResilienceOptions resilience;
  resilience.max_retries = 0;
  resilience.deadline_floor = std::chrono::milliseconds(15);
  // The retry loop executes episode after episode — exactly the caller
  // the pooled mode exists for: one set of parked rank workers serves
  // every attempt.
  simmpi::ExecutorOptions pooled;
  pooled.mode = simmpi::ExecutionMode::kPersistentPool;
  const simmpi::ScheduleExecutor executor(schedule, pooled);
  while (!library.is_quarantined(subset)) {
    const simmpi::StallReport report =
        executor.run_once_resilient(resilience, faults);
    ASSERT_TRUE(report.stalled);
    library.report_execution_failure(subset, report.describe());
  }
  EXPECT_EQ(library.failure_count(subset), 2u);

  // The fallback executes to completion on real threads, no faults.
  const LibraryEntry& fallback = library.subset_plan(subset);
  ASSERT_TRUE(fallback.degraded);
  simmpi::Communicator comm(subset.size());
  simmpi::run_ranks(comm, [&](simmpi::RankContext& ctx) {
    fallback.compiled.execute(ctx);
  });
  EXPECT_EQ(comm.unmatched_operations(), 0u);
}

TEST(Library, CollectivePlansQuarantineUnderThePooledExecutor) {
  // Collective callers ride the same health machinery: a library plan
  // lifted to a zero-payload collective (from_barrier) stalls under the
  // pooled collective executor, its structured StallReports drive the
  // quarantine, and the *lifted fallback* then runs clean with intact
  // buffers.
  EngineOptions options;
  options.quarantine_threshold = 2;
  BarrierLibrary library(cluster_profile(8), options);
  const std::vector<std::size_t> subset{0, 1, 2, 3, 4, 5};
  const LibraryEntry& tuned = library.subset_plan(subset);
  const Schedule& schedule = tuned.stored.schedule;

  FaultPlan faults;
  for (std::size_t src = 0; src < schedule.ranks(); ++src) {
    const auto targets = schedule.targets_of(src, 0);
    if (!targets.empty()) {
      faults.drops.push_back({src, targets.front(), 0, 1.0, 0.0});
      break;
    }
  }
  ASSERT_EQ(faults.drops.size(), 1u);
  simmpi::ResilienceOptions resilience;
  resilience.max_retries = 0;
  resilience.deadline_floor = std::chrono::milliseconds(15);
  simmpi::ExecutorOptions pooled;
  pooled.mode = simmpi::ExecutionMode::kPersistentPool;
  const CollectiveExecutor executor(from_barrier(schedule), pooled);
  const std::vector<Payload> inputs(subset.size());
  while (!library.is_quarantined(subset)) {
    const CollectiveExecutor::ResilientResult result =
        executor.run_once_resilient(inputs, ReduceOp::kSum, resilience,
                                    faults);
    ASSERT_TRUE(result.report.stalled);
    library.report_execution_failure(subset, result.report);
  }
  EXPECT_EQ(library.failure_count(subset), 2u);

  const LibraryEntry& fallback = library.subset_plan(subset);
  ASSERT_TRUE(fallback.degraded);
  const CollectiveExecutor safe(from_barrier(fallback.stored.schedule),
                                pooled);
  const CollectiveExecutor::ResilientResult clean =
      safe.run_once_resilient(inputs, ReduceOp::kSum, resilience);
  EXPECT_FALSE(clean.report.stalled);
  EXPECT_EQ(clean.buffers, inputs);
}

TEST(Library, FailureReportsRequireAServedPlan) {
  BarrierLibrary library(cluster_profile(8));
  // Never tuned: nothing to quarantine — that is a caller bug.
  EXPECT_THROW(library.report_execution_failure({0, 1}, "stall"), Error);
  EXPECT_EQ(library.failure_count({0, 1}), 0u);
  EXPECT_FALSE(library.is_quarantined({0, 1}));
  // Invalid subsets are rejected the same way as in subset_plan().
  EXPECT_THROW(library.report_execution_failure({}, "stall"), Error);
  EXPECT_THROW(library.report_execution_failure({0, 0}, "stall"), Error);
  EXPECT_THROW(library.report_execution_failure({0, 99}, "stall"), Error);
}

TEST(Library, QuarantineThresholdIsValidated) {
  EngineOptions options;
  options.quarantine_threshold = 0;
  EXPECT_THROW(BarrierLibrary(cluster_profile(8), options), Error);
}

TEST(Library, EntryPredictionMatchesDirectTuning) {
  const TopologyProfile profile = cluster_profile(20);
  BarrierLibrary library(profile);
  const LibraryEntry& entry = library.full_barrier();
  const TuneResult direct = tune_barrier(profile);
  EXPECT_EQ(entry.stored.schedule, direct.schedule());
  EXPECT_DOUBLE_EQ(entry.predicted_cost, direct.predicted_cost());
}

}  // namespace
}  // namespace optibar
