// Property-based tests: invariants checked over randomly constructed
// barriers, profiles and machines (seed-parameterized so failures
// reproduce exactly).
#include <gtest/gtest.h>

#include <sstream>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "barrier/dependency_graph.hpp"
#include "barrier/schedule_io.hpp"
#include "barrier/validate.hpp"
#include "core/codegen.hpp"
#include "core/tuner.hpp"
#include "netsim/engine.hpp"
#include "simmpi/executor.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/rng.hpp"

namespace optibar {
namespace {

/// Random layered prefix (0-3 stages of random signals) completed into a
/// barrier by appending dissemination stages.
Schedule random_barrier(std::size_t p, Rng& rng) {
  Schedule s(p);
  const std::size_t prefix_stages = rng.next_below(4);
  for (std::size_t st = 0; st < prefix_stages; ++st) {
    StageMatrix m(p, p, 0);
    for (std::size_t i = 0; i < p; ++i) {
      const std::size_t fan_out = rng.next_below(3);
      for (std::size_t k = 0; k < fan_out; ++k) {
        const std::size_t j = rng.next_below(p);
        if (j != i) {
          m(i, j) = 1;
        }
      }
    }
    s.append_stage(std::move(m));
  }
  // Keep the schedule alive across the loop: in C++20 a range-for over
  // `dissemination_arrival(p).stages()` would iterate a dangling member.
  const Schedule completion = dissemination_arrival(p);
  for (const StageMatrix& stage : completion.stages()) {
    s.append_stage(stage);
  }
  return s;
}

/// Random gather tree arrival: each rank signals a random
/// lower-indexed parent, scheduled deepest level first.
Schedule random_tree_arrival(std::size_t p, Rng& rng) {
  std::vector<std::size_t> parent(p, 0);
  std::vector<std::size_t> depth(p, 0);
  std::size_t max_depth = 0;
  for (std::size_t i = 1; i < p; ++i) {
    parent[i] = rng.next_below(i);
    depth[i] = depth[parent[i]] + 1;
    max_depth = std::max(max_depth, depth[i]);
  }
  Schedule s(p);
  for (std::size_t d = max_depth; d >= 1; --d) {
    StageMatrix m(p, p, 0);
    for (std::size_t i = 1; i < p; ++i) {
      if (depth[i] == d) {
        m(i, parent[i]) = 1;
      }
    }
    s.append_stage(std::move(m));
  }
  return s;
}

/// Random profile over a random machine shape with random (ordered)
/// tier costs and mild heterogeneity.
TopologyProfile random_profile(Rng& rng, std::size_t& ranks_out) {
  const std::size_t nodes = 1 + rng.next_below(4);
  const std::size_t sockets = 1 + rng.next_below(3);
  // cores >= 2 keeps total_cores >= 2 so a 2-rank job always fits.
  const std::size_t cores = 2 + rng.next_below(3);
  // cores_per_cache must divide cores: pick a random divisor.
  std::vector<std::size_t> divisors;
  for (std::size_t d = 1; d <= cores; ++d) {
    if (cores % d == 0) {
      divisors.push_back(d);
    }
  }
  const std::size_t cache = divisors[rng.next_below(divisors.size())];

  LatencyTiers tiers;
  tiers.self_overhead = rng.uniform(5e-7, 3e-6);
  double o = rng.uniform(1e-6, 4e-6);
  double l = rng.uniform(5e-8, 3e-7);
  tiers.shared_cache = {o, l};
  o *= rng.uniform(1.0, 2.0);
  l *= rng.uniform(1.0, 2.0);
  tiers.same_chip = {o, l};
  o *= rng.uniform(1.1, 3.0);
  l *= rng.uniform(1.1, 4.0);
  tiers.cross_socket = {o, l};
  o *= rng.uniform(2.0, 20.0);
  l *= rng.uniform(2.0, 30.0);
  tiers.inter_node = {o, l};

  const MachineSpec machine("random", nodes, sockets, cores, cache, tiers);
  const std::size_t total = machine.total_cores();
  const std::size_t ranks = 2 + rng.next_below(total - 1);
  ranks_out = ranks;
  const Mapping mapping = rng.next_below(2) == 0
                              ? block_mapping(machine, ranks)
                              : round_robin_mapping(machine, ranks);
  GenerateOptions options;
  options.heterogeneity = rng.uniform(0.0, 0.3);
  options.asymmetry = rng.uniform(0.0, 0.1);
  options.seed = rng.next_u64();
  return generate_profile(machine, mapping, options);
}

class PropertySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertySweep, RandomBarriersSatisfyEquation3) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const std::size_t p = 2 + rng.next_below(15);
    EXPECT_TRUE(random_barrier(p, rng).is_barrier()) << "P=" << p;
  }
}

TEST_P(PropertySweep, RandomTreeArrivalsFunnelToRoot) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const std::size_t p = 2 + rng.next_below(15);
    const Schedule arrival = random_tree_arrival(p, rng);
    const BoolMatrix k = arrival.final_knowledge();
    for (std::size_t i = 0; i < p; ++i) {
      EXPECT_EQ(k(i, 0), 1) << "P=" << p << " rank " << i;
    }
    // Gather + transposed broadcast is always a full barrier.
    EXPECT_TRUE(
        arrival.concatenated(arrival.transposed_reversed()).is_barrier());
  }
}

TEST_P(PropertySweep, PredictorAgreesWithDependencyGraph) {
  Rng rng(GetParam());
  for (int round = 0; round < 5; ++round) {
    std::size_t ranks = 0;
    const TopologyProfile profile = random_profile(rng, ranks);
    Rng barrier_rng(rng.next_u64());
    const Schedule s = random_barrier(ranks, barrier_rng);
    const DependencyGraph graph(s, profile);
    EXPECT_NEAR(graph.critical_path_cost(), predicted_time(s, profile),
                1e-15 + 1e-9 * predicted_time(s, profile));
  }
}

TEST_P(PropertySweep, CompactionPreservesBarrierAndCost) {
  Rng rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    const std::size_t p = 2 + rng.next_below(10);
    Schedule s = random_barrier(p, rng);
    // Inject empty stages at random positions by rebuilding.
    Schedule padded(p);
    for (const StageMatrix& stage : s.stages()) {
      if (rng.next_below(2) == 0) {
        padded.append_stage(StageMatrix(p, p, 0));
      }
      padded.append_stage(stage);
    }
    std::size_t ranks = 0;
    Rng profile_rng(GetParam() ^ 0xABCDEF);
    (void)ranks;
    const Schedule compacted = padded.compacted();
    EXPECT_EQ(compacted, s.compacted());
    EXPECT_TRUE(compacted.is_barrier());
    const MachineSpec m = quad_cluster();
    if (p <= m.total_cores()) {
      const TopologyProfile profile = generate_profile(m, p);
      EXPECT_DOUBLE_EQ(predicted_time(padded, profile),
                       predicted_time(compacted, profile));
    }
  }
}

TEST_P(PropertySweep, NetsimDelayInjectionOnRandomBarriers) {
  Rng rng(GetParam());
  for (int round = 0; round < 3; ++round) {
    std::size_t ranks = 0;
    const TopologyProfile profile = random_profile(rng, ranks);
    Rng barrier_rng(rng.next_u64());
    const Schedule s = random_barrier(ranks, barrier_rng);
    SimOptions options;
    options.entry_times.assign(ranks, 0.0);
    const std::size_t late = rng.next_below(ranks);
    options.entry_times[late] = 1.0;
    const SimResult result = simulate(s, profile, options);
    for (std::size_t rank = 0; rank < ranks; ++rank) {
      EXPECT_GE(result.completion[rank], 1.0)
          << "rank " << rank << " escaped before late rank " << late;
    }
  }
}

TEST_P(PropertySweep, NetsimIsDeterministicUnderNoise) {
  Rng rng(GetParam());
  std::size_t ranks = 0;
  const TopologyProfile profile = random_profile(rng, ranks);
  Rng barrier_rng(rng.next_u64());
  const Schedule s = random_barrier(ranks, barrier_rng);
  SimOptions options;
  options.jitter = 0.1;
  options.spike_probability = 0.05;
  options.seed = GetParam();
  EXPECT_EQ(simulate(s, profile, options).completion,
            simulate(s, profile, options).completion);
}

TEST_P(PropertySweep, TunerProducesValidCompetitiveBarriers) {
  Rng rng(GetParam());
  for (int round = 0; round < 3; ++round) {
    std::size_t ranks = 0;
    const TopologyProfile profile = random_profile(rng, ranks);
    const TuneResult tuned = tune_barrier(profile);
    EXPECT_TRUE(tuned.schedule().is_barrier()) << "ranks=" << ranks;
    // The hybrid may not dominate on arbitrary random machines, but it
    // must stay in the same league as the classic baselines.
    const TopologyProfile priced = tuned.profile();
    const double best_classic =
        std::min({predicted_time(linear_barrier(ranks), priced),
                  predicted_time(dissemination_barrier(ranks), priced),
                  predicted_time(tree_barrier(ranks), priced)});
    EXPECT_LE(tuned.predicted_cost(), 2.0 * best_classic) << "ranks=" << ranks;
  }
}

TEST_P(PropertySweep, ScheduleIoRoundTripsRandomBarriers) {
  Rng rng(GetParam());
  for (int round = 0; round < 5; ++round) {
    const std::size_t p = 2 + rng.next_below(12);
    StoredSchedule stored;
    stored.schedule = random_barrier(p, rng);
    stored.awaited_stages.resize(stored.schedule.stage_count());
    for (std::size_t i = 0; i < stored.awaited_stages.size(); ++i) {
      // The loader now refuses awaited stages with a directed wait
      // cycle (they would deadlock an eager blocking-send replay), so
      // honor the composer invariant: awaited implies acyclic.
      stored.awaited_stages[i] =
          rng.next_below(2) == 1 && !stage_has_cycle(stored.schedule.stage(i));
    }
    std::stringstream ss;
    save_schedule(ss, stored);
    const StoredSchedule loaded = load_schedule(ss);
    EXPECT_EQ(loaded.schedule, stored.schedule);
    EXPECT_EQ(loaded.awaited_stages, stored.awaited_stages);
  }
}

TEST_P(PropertySweep, CompiledBarrierExecutesRandomBarriers) {
  Rng rng(GetParam());
  const std::size_t p = 2 + rng.next_below(6);  // keep thread counts small
  const Schedule s = random_barrier(p, rng);
  const CompiledBarrier compiled(s);
  simmpi::Communicator comm(p);
  simmpi::run_ranks(comm, [&](simmpi::RankContext& ctx) {
    compiled.execute(ctx);
  });
  EXPECT_EQ(comm.unmatched_operations(), 0u);
}

TEST_P(PropertySweep, InterpreterMatchesCompiledOpCounts) {
  Rng rng(GetParam());
  for (int round = 0; round < 5; ++round) {
    const std::size_t p = 2 + rng.next_below(12);
    const Schedule s = random_barrier(p, rng);
    const CompiledBarrier compiled(s);
    std::size_t total_ops = 0;
    for (std::size_t r = 0; r < p; ++r) {
      total_ops += compiled.op_count(r);
    }
    // Every signal is one send plus one receive.
    EXPECT_EQ(total_ops, 2 * s.total_signals());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

}  // namespace
}  // namespace optibar
