// Tests for irregular machines and the machine description file format.
#include "topology/machine_file.hpp"

#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>

#include "core/tuner.hpp"
#include "topology/generate.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace optibar {
namespace {

constexpr const char* kTierBlock =
    "tier self   o 1.5e-6\n"
    "tier cache  o 2.0e-6 l 1.2e-7\n"
    "tier chip   o 2.5e-6 l 1.5e-7\n"
    "tier socket o 4.0e-6 l 6.0e-7\n"
    "tier node   o 2.5e-5 l 1.4e-5\n";

MachineFile parse(const std::string& text) {
  std::istringstream is(text);
  return parse_machine_file(is);
}

// ---- CustomMachine ----

TEST(CustomMachine, FlattensIrregularShapes) {
  LatencyTiers tiers;
  tiers.self_overhead = 1e-6;
  tiers.shared_cache = {2e-6, 1e-7};
  tiers.same_chip = {3e-6, 2e-7};
  tiers.cross_socket = {4e-6, 3e-7};
  tiers.inter_node = {2e-5, 1e-5};
  std::vector<NodeShape> nodes(2);
  nodes[0].sockets = {SocketShape{4, 2}, SocketShape{4, 2}};  // 8 cores
  nodes[1].sockets = {SocketShape{6, 6}};                     // 6 cores
  const CustomMachine m("mixed", std::move(nodes), tiers);
  EXPECT_EQ(m.total_cores(), 14u);
  EXPECT_EQ(m.node_count(), 2u);
  // Core 9 = node 1, socket 0, core 1.
  const auto loc = m.location(9);
  EXPECT_EQ(loc.node, 1u);
  EXPECT_EQ(loc.socket, 0u);
  EXPECT_EQ(loc.core, 1u);
}

TEST(CustomMachine, LinkLevelsRespectPerSocketCacheDegree) {
  LatencyTiers tiers;
  tiers.self_overhead = 1e-6;
  tiers.shared_cache = {2e-6, 1e-7};
  tiers.same_chip = {3e-6, 2e-7};
  tiers.cross_socket = {4e-6, 3e-7};
  tiers.inter_node = {2e-5, 1e-5};
  std::vector<NodeShape> nodes(2);
  nodes[0].sockets = {SocketShape{4, 2}};  // pairwise caches
  nodes[1].sockets = {SocketShape{4, 4}};  // whole-socket cache
  const CustomMachine m("mixed-cache", std::move(nodes), tiers);
  EXPECT_EQ(m.link_level(0, 1), LinkLevel::kSharedCache);
  EXPECT_EQ(m.link_level(1, 2), LinkLevel::kSameChip);   // node 0: pairs
  EXPECT_EQ(m.link_level(5, 6), LinkLevel::kSharedCache);  // node 1: whole
  EXPECT_EQ(m.link_level(0, 4), LinkLevel::kInterNode);
  EXPECT_EQ(m.link_level(2, 2), LinkLevel::kSelf);
}

TEST(CustomMachine, RejectsDegenerateShapes) {
  LatencyTiers tiers;
  EXPECT_THROW(CustomMachine("bad", {}, tiers), Error);
  std::vector<NodeShape> no_sockets(1);
  EXPECT_THROW(CustomMachine("bad", no_sockets, tiers), Error);
  std::vector<NodeShape> bad_cache(1);
  bad_cache[0].sockets = {SocketShape{4, 3}};  // 3 does not divide 4
  EXPECT_THROW(CustomMachine("bad", bad_cache, tiers), Error);
}

TEST(CustomMachine, ProfileGenerationAndTuning) {
  LatencyTiers tiers;
  tiers.self_overhead = 1e-6;
  tiers.shared_cache = {2e-6, 1e-7};
  tiers.same_chip = {2.5e-6, 1.5e-7};
  tiers.cross_socket = {4e-6, 6e-7};
  tiers.inter_node = {2.5e-5, 1.4e-5};
  std::vector<NodeShape> nodes(3);
  nodes[0].sockets = {SocketShape{4, 2}, SocketShape{4, 2}};
  nodes[1].sockets = {SocketShape{6, 6}, SocketShape{6, 6}};
  nodes[2].sockets = {SocketShape{2, 2}};
  const CustomMachine m("mixed-generations", std::move(nodes), tiers);
  const TopologyProfile profile = generate_profile(m, m.total_cores());
  EXPECT_EQ(profile.ranks(), 22u);
  EXPECT_TRUE(profile.is_symmetric());
  // The tuner must find the three (unequal) node clusters.
  const TuneResult tuned = tune_barrier(profile);
  EXPECT_TRUE(tuned.schedule().is_barrier());
  ASSERT_EQ(tuned.cluster_tree().children.size(), 3u);
  EXPECT_EQ(tuned.cluster_tree().children[0].ranks.size(), 8u);
  EXPECT_EQ(tuned.cluster_tree().children[1].ranks.size(), 12u);
  EXPECT_EQ(tuned.cluster_tree().children[2].ranks.size(), 2u);
}

TEST(CustomMachine, PartialRankCountsUseFirstCores) {
  LatencyTiers tiers;
  tiers.self_overhead = 1e-6;
  tiers.shared_cache = {2e-6, 1e-7};
  tiers.same_chip = {2.5e-6, 1.5e-7};
  tiers.cross_socket = {4e-6, 6e-7};
  tiers.inter_node = {2.5e-5, 1.4e-5};
  std::vector<NodeShape> nodes(2);
  nodes[0].sockets = {SocketShape{4, 4}};
  nodes[1].sockets = {SocketShape{4, 4}};
  const CustomMachine m("small", std::move(nodes), tiers);
  const TopologyProfile profile = generate_profile(m, 5);
  EXPECT_EQ(profile.ranks(), 5u);
  EXPECT_DOUBLE_EQ(profile.o(0, 4), tiers.inter_node.overhead);
  EXPECT_THROW(generate_profile(m, 9), Error);
  EXPECT_THROW(generate_profile(m, 0), Error);
}

// ---- Machine file parsing ----

TEST(MachineFile, ParsesUniformShape) {
  const MachineFile file = parse(std::string("machine \"test rig\"\n") +
                                 kTierBlock +
                                 "shape nodes 8 sockets 2 cores 4 cache 2\n");
  EXPECT_TRUE(file.uniform);
  EXPECT_EQ(file.name, "test rig");
  const MachineSpec spec = file.to_spec();
  EXPECT_EQ(spec.total_cores(), 64u);
  EXPECT_EQ(spec.cores_per_cache(), 2u);
  EXPECT_DOUBLE_EQ(spec.tiers().inter_node.latency, 1.4e-5);
  // to_custom works for uniform files too.
  EXPECT_EQ(file.to_custom().total_cores(), 64u);
}

TEST(MachineFile, ParsesIrregularNodes) {
  const MachineFile file = parse(std::string(kTierBlock) +
                                 "node sockets 2 cores 4 cache 2\n"
                                 "node sockets 2 cores 6 cache 6\n"
                                 "node sockets 1 cores 8\n");  // cache=cores
  EXPECT_FALSE(file.uniform);
  const CustomMachine m = file.to_custom();
  EXPECT_EQ(m.node_count(), 3u);
  EXPECT_EQ(m.total_cores(), 8u + 12u + 8u);
  EXPECT_THROW(file.to_spec(), Error);
}

TEST(MachineFile, CommentsAndBlankLinesIgnored) {
  const MachineFile file = parse(std::string("# header comment\n\n") +
                                 kTierBlock +
                                 "shape nodes 2 sockets 1 cores 2  # inline\n");
  EXPECT_EQ(file.to_spec().total_cores(), 4u);
  // cache defaults to cores when omitted.
  EXPECT_EQ(file.cache, 2u);
}

TEST(MachineFile, RejectsMissingTiers) {
  EXPECT_THROW(parse("shape nodes 2 sockets 1 cores 2\n"), Error);
  EXPECT_THROW(parse(std::string("tier self o 1e-6\n") +
                     "shape nodes 2 sockets 1 cores 2\n"),
               Error);
}

TEST(MachineFile, RejectsShapeAndNodeMix) {
  EXPECT_THROW(parse(std::string(kTierBlock) +
                     "shape nodes 2 sockets 1 cores 2\n"
                     "node sockets 1 cores 2\n"),
               Error);
  EXPECT_THROW(parse(std::string(kTierBlock) +
                     "node sockets 1 cores 2\n"
                     "shape nodes 2 sockets 1 cores 2\n"),
               Error);
}

TEST(MachineFile, RejectsMalformedLines) {
  EXPECT_THROW(parse("bogus keyword\n"), Error);
  EXPECT_THROW(parse("tier warp o 1e-6\n"), Error);
  EXPECT_THROW(parse("tier self x 1e-6\n"), Error);
  EXPECT_THROW(parse(std::string(kTierBlock) +
                     "shape nodes 2 sockets 1\n"),  // missing cores
               Error);
  EXPECT_THROW(parse(std::string(kTierBlock) +
                     "shape nodes 2 sockets 1 cores two\n"),
               Error);
  EXPECT_THROW(parse(std::string(kTierBlock) +
                     "shape nodes 2 sockets 1 cores 4 warp 9\n"),
               Error);
  EXPECT_THROW(parse("machine\n"), Error);  // missing name
}

TEST(MachineFile, MissingFileThrows) {
  EXPECT_THROW(load_machine_file("/nonexistent/machine.txt"), Error);
}

TEST(MachineFile, PropertyRandomShapesRoundTripThroughText) {
  // Fuzz the writer-side contract: serialise random machine shapes into
  // the text format by hand, parse them back, and compare the derived
  // machines structurally.
  Rng rng(314);
  for (int round = 0; round < 12; ++round) {
    const bool uniform = rng.next_below(2) == 0;
    std::ostringstream file;
    file << std::setprecision(17);  // full double round trip
    file << "machine \"fuzz " << round << "\"\n";
    const double self = rng.uniform(5e-7, 3e-6);
    file << "tier self o " << self << "\n";
    double o = rng.uniform(1e-6, 4e-6);
    double l = rng.uniform(5e-8, 4e-7);
    const char* tiers[] = {"cache", "chip", "socket", "node"};
    std::vector<double> o_values;
    std::vector<double> l_values;
    for (const char* tier : tiers) {
      file << "tier " << tier << " o " << o << " l " << l << "\n";
      o_values.push_back(o);
      l_values.push_back(l);
      o *= rng.uniform(1.2, 8.0);
      l *= rng.uniform(1.2, 8.0);
    }
    std::size_t total_nodes = 1 + rng.next_below(4);
    if (uniform) {
      const std::size_t sockets = 1 + rng.next_below(3);
      const std::size_t cores = 2 + rng.next_below(3);
      std::vector<std::size_t> divisors;
      for (std::size_t d = 1; d <= cores; ++d) {
        if (cores % d == 0) {
          divisors.push_back(d);
        }
      }
      const std::size_t cache = divisors[rng.next_below(divisors.size())];
      file << "shape nodes " << total_nodes << " sockets " << sockets
           << " cores " << cores << " cache " << cache << "\n";
    } else {
      for (std::size_t n = 0; n < total_nodes; ++n) {
        const std::size_t sockets = 1 + rng.next_below(3);
        const std::size_t cores = 2 + rng.next_below(3);
        std::vector<std::size_t> divisors;
        for (std::size_t d = 1; d <= cores; ++d) {
          if (cores % d == 0) {
            divisors.push_back(d);
          }
        }
        const std::size_t cache = divisors[rng.next_below(divisors.size())];
        file << "node sockets " << sockets << " cores " << cores
             << " cache " << cache << "\n";
      }
    }
    const MachineFile parsed = parse(file.str());
    EXPECT_EQ(parsed.uniform, uniform) << "round " << round;
    const CustomMachine machine = parsed.to_custom();
    EXPECT_EQ(machine.node_count(), total_nodes) << "round " << round;
    EXPECT_DOUBLE_EQ(machine.tiers().self_overhead, self);
    EXPECT_DOUBLE_EQ(machine.tiers().inter_node.overhead, o_values[3]);
    EXPECT_DOUBLE_EQ(machine.tiers().inter_node.latency, l_values[3]);
    // Every parsed machine generates a usable profile and tunes.
    const TopologyProfile profile =
        generate_profile(machine, machine.total_cores());
    EXPECT_TRUE(tune_barrier(profile).schedule().is_barrier())
        << "round " << round;
  }
}

TEST(MachineFile, EndToEndIrregularTuning) {
  const MachineFile file = parse(std::string(kTierBlock) +
                                 "node sockets 2 cores 4 cache 2\n"
                                 "node sockets 2 cores 6 cache 6\n");
  const CustomMachine m = file.to_custom();
  const TopologyProfile profile = generate_profile(m, m.total_cores());
  const TuneResult tuned = tune_barrier(profile);
  EXPECT_TRUE(tuned.schedule().is_barrier());
  EXPECT_EQ(tuned.cluster_tree().children.size(), 2u);
}

}  // namespace
}  // namespace optibar
