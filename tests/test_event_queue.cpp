// Tests for the deterministic discrete-event queue.
#include "netsim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace optibar {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(10); });
  q.schedule(1.0, [&] { order.push_back(20); });
  q.schedule(1.0, [&] { order.push_back(30); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST(EventQueue, NowAdvancesWithEvents) {
  EventQueue q;
  double seen = -1.0;
  q.schedule(5.5, [&] { seen = q.now(); });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(q.now(), 5.5);
}

TEST(EventQueue, EventsMayScheduleFurtherEvents) {
  EventQueue q;
  std::vector<double> times;
  q.schedule(1.0, [&] {
    times.push_back(q.now());
    q.schedule(2.0, [&] { times.push_back(q.now()); });
  });
  q.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule(2.0, [&] {
    EXPECT_THROW(q.schedule(1.0, [] {}), Error);
  });
  q.run();
}

TEST(EventQueue, SchedulingAtNowIsAllowed) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { q.schedule(1.0, [&] { ++fired; }); });
  q.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, StepOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.step(), Error);
}

TEST(EventQueue, PendingCountsScheduledEvents) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.step();
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunawayCascadeIsCaught) {
  EventQueue q;
  // An event that perpetually reschedules itself must trip the guard.
  std::function<void()> loop = [&] { q.schedule(q.now() + 1.0, loop); };
  q.schedule(0.0, loop);
  EXPECT_THROW(q.run(/*max_events=*/1000), Error);
}

}  // namespace
}  // namespace optibar
