// Tests for the deterministic discrete-event queue (the reference
// scheduler) and the calendar queue that replaced it on the hot path.
// The two must agree on the total order — ascending (time, insertion
// sequence) — which the cross-check property test below enforces under
// randomized interleaved push/pop traffic.
#include "netsim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "netsim/calendar_queue.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace optibar {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(2.0, [&] { order.push_back(2); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] { order.push_back(10); });
  q.schedule(1.0, [&] { order.push_back(20); });
  q.schedule(1.0, [&] { order.push_back(30); });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{10, 20, 30}));
}

TEST(EventQueue, NowAdvancesWithEvents) {
  EventQueue q;
  double seen = -1.0;
  q.schedule(5.5, [&] { seen = q.now(); });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(q.now(), 5.5);
}

TEST(EventQueue, EventsMayScheduleFurtherEvents) {
  EventQueue q;
  std::vector<double> times;
  q.schedule(1.0, [&] {
    times.push_back(q.now());
    q.schedule(2.0, [&] { times.push_back(q.now()); });
  });
  q.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule(2.0, [&] {
    EXPECT_THROW(q.schedule(1.0, [] {}), Error);
  });
  q.run();
}

TEST(EventQueue, SchedulingAtNowIsAllowed) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { q.schedule(1.0, [&] { ++fired; }); });
  q.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, StepOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.step(), Error);
}

TEST(EventQueue, PendingCountsScheduledEvents) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.pending(), 2u);
  q.step();
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, RunawayCascadeIsCaught) {
  EventQueue q;
  // An event that perpetually reschedules itself must trip the guard.
  std::function<void()> loop = [&] { q.schedule(q.now() + 1.0, loop); };
  q.schedule(0.0, loop);
  EXPECT_THROW(q.run(/*max_events=*/1000), Error);
}

SimEvent tagged(std::uint32_t tag) {
  SimEvent e;
  e.a = tag;
  return e;
}

TEST(CalendarQueue, FiresInTimeOrder) {
  CalendarQueue q;
  q.schedule(3.0, tagged(3));
  q.schedule(1.0, tagged(1));
  q.schedule(2.0, tagged(2));
  EXPECT_EQ(q.pop().a, 1u);
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
  EXPECT_EQ(q.pop().a, 2u);
  EXPECT_EQ(q.pop().a, 3u);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, TiesBreakByInsertionOrder) {
  CalendarQueue q;
  for (std::uint32_t i = 0; i < 100; ++i) {
    q.schedule(1.0, tagged(i));
  }
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(q.pop().a, i);
  }
}

TEST(CalendarQueue, SchedulingInThePastThrows) {
  CalendarQueue q;
  q.schedule(2.0, tagged(0));
  q.pop();
  EXPECT_THROW(q.schedule(1.0, tagged(1)), Error);
  q.schedule(2.0, tagged(2));  // at now() is allowed
  EXPECT_EQ(q.pop().a, 2u);
}

TEST(CalendarQueue, PopOnEmptyThrows) {
  CalendarQueue q;
  EXPECT_THROW(q.pop(), Error);
}

TEST(CalendarQueue, EventPayloadSurvivesSlabRecycling) {
  CalendarQueue q;
  SimEvent e;
  e.kind = SimEventKind::kFinalizeMatch;
  e.ghost = true;
  e.stage = 7;
  e.a = 11;
  e.b = 13;
  e.payload = 0.125;
  q.schedule(1.0, e);
  const SimEvent out = q.pop();
  EXPECT_EQ(out.kind, SimEventKind::kFinalizeMatch);
  EXPECT_TRUE(out.ghost);
  EXPECT_EQ(out.stage, 7u);
  EXPECT_EQ(out.a, 11u);
  EXPECT_EQ(out.b, 13u);
  EXPECT_DOUBLE_EQ(out.payload, 0.125);
  // The freed slot is recycled; the next event must not inherit stale
  // fields.
  q.schedule(2.0, tagged(1));
  const SimEvent next = q.pop();
  EXPECT_EQ(next.kind, SimEventKind::kEnter);
  EXPECT_FALSE(next.ghost);
  EXPECT_DOUBLE_EQ(next.payload, 0.0);
}

// The determinism property: under randomized interleaved traffic —
// bursts of pushes at clustered, tied, and spread-out times, partial
// drains in between — the calendar queue must pop the exact sequence
// the reference EventQueue fires. This is the total-order contract the
// engine parity rests on.
TEST(CalendarQueue, MatchesReferenceQueueUnderRandomTraffic) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    CalendarQueue cal;
    EventQueue ref;
    std::vector<std::uint32_t> ref_order;
    std::uint32_t next_tag = 0;
    std::vector<std::uint32_t> cal_order;
    // Random program: pushes with time offsets drawn from mixed scales
    // (dense cluster, exact ties via grid rounding, occasional long
    // jumps), separated by partial drains.
    for (int round = 0; round < 60; ++round) {
      const std::size_t pushes = 1 + static_cast<std::size_t>(
                                         rng.next_double() * 40.0);
      for (std::size_t i = 0; i < pushes; ++i) {
        double offset;
        const double pick = rng.next_double();
        if (pick < 0.4) {
          // Ties: round to a coarse grid so many events collide.
          offset = std::floor(rng.next_double() * 8.0);
        } else if (pick < 0.9) {
          offset = rng.next_double() * 3.0;
        } else {
          offset = 50.0 + rng.next_double() * 1000.0;  // far future
        }
        const double t = cal.now() + offset;
        const std::uint32_t tag = next_tag++;
        cal.schedule(t, tagged(tag));
        ref.schedule(t, [&ref_order, tag] { ref_order.push_back(tag); });
      }
      const std::size_t drains =
          static_cast<std::size_t>(rng.next_double() *
                                   static_cast<double>(cal.pending()));
      for (std::size_t i = 0; i < drains; ++i) {
        cal_order.push_back(cal.pop().a);
        ref.step();
        EXPECT_EQ(cal.now(), ref.now()) << "seed " << seed;
      }
    }
    while (!cal.empty()) {
      cal_order.push_back(cal.pop().a);
      ref.step();
    }
    EXPECT_TRUE(ref.empty());
    ASSERT_EQ(cal_order, ref_order) << "seed " << seed;
  }
}

TEST(CalendarQueue, BucketsResizeUnderBurstyLoadAndShrinkBack) {
  CalendarQueue q;
  const std::size_t initial = q.bucket_count();
  // Burst: far more events than buckets forces doubling rebuilds, with
  // widths refit to the dense spacing.
  for (std::uint32_t i = 0; i < 4096; ++i) {
    q.schedule(static_cast<double>(i) * 1e-6, tagged(i));
  }
  EXPECT_GT(q.bucket_count(), initial);
  // Draining pops in exact order and halves the ring back down.
  for (std::uint32_t i = 0; i < 4096; ++i) {
    ASSERT_EQ(q.pop().a, i);
  }
  EXPECT_EQ(q.bucket_count(), initial);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, FarFutureEventsAreFoundByDirectSearch) {
  CalendarQueue q;
  // A dense nanosecond-scale cluster fits the width to ~1e-9, pushing
  // the far-future events many "years" past the cursor — the pops must
  // still come out in exact order via the direct-search fallback.
  for (std::uint32_t i = 0; i < 64; ++i) {
    q.schedule(static_cast<double>(i) * 1e-9, tagged(i));
  }
  q.schedule(1e12, tagged(1000));
  q.schedule(1e6, tagged(1001));
  q.schedule(2e12, tagged(1002));
  for (std::uint32_t i = 0; i < 64; ++i) {
    ASSERT_EQ(q.pop().a, i);
  }
  EXPECT_EQ(q.pop().a, 1001u);
  EXPECT_EQ(q.pop().a, 1000u);
  EXPECT_EQ(q.pop().a, 1002u);
  EXPECT_DOUBLE_EQ(q.now(), 2e12);
}

TEST(CalendarQueue, ResetRewindsTimeAndReusesStorage) {
  CalendarQueue q;
  for (std::uint32_t i = 0; i < 500; ++i) {
    q.schedule(static_cast<double>(i), tagged(i));
  }
  for (std::uint32_t i = 0; i < 500; ++i) {
    q.pop();
  }
  EXPECT_EQ(q.scheduled(), 500u);
  q.reset();
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.now(), 0.0);
  EXPECT_EQ(q.scheduled(), 0u);
  // Scheduling before the old now() is legal again after reset, and
  // order is still exact.
  q.schedule(2.0, tagged(2));
  q.schedule(1.0, tagged(1));
  EXPECT_EQ(q.pop().a, 1u);
  EXPECT_EQ(q.pop().a, 2u);
}

}  // namespace
}  // namespace optibar
