// Randomized old-vs-new engine parity: simulate() (calendar queue,
// typed events, SimWorkspace) must be *bit-identical* to
// simulate_reference() (std::function closures on the binary-heap
// EventQueue) on every output — completion vectors, entry times,
// traces, deadlock flags, stuck-rank lists — across the full option
// matrix: jitter, spikes, egress contention, entry skew, fault plans,
// crashed ranks, eager sends, free receives, the nonblocking-progress
// model, payload-cost hooks, and trace recording, on both paper
// presets. Bit identity (EXPECT_EQ on doubles, not near) is the
// contract: the engines make the same scheduling calls in the same
// order, so even the RNG streams coincide.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "barrier/algorithms.hpp"
#include "netsim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace optibar {
namespace {

struct Fixture {
  std::string name;
  TopologyProfile profile;
  Schedule schedule;
};

/// The sweep's schedule/topology pairs: both paper presets, a
/// high-fan-out family (dissemination) and a sparse one (heap tree).
std::vector<Fixture> fixtures() {
  std::vector<Fixture> out;
  const MachineSpec quad = quad_cluster();
  const MachineSpec hex = hex_cluster();
  const TopologyProfile quad24 =
      generate_profile(quad, round_robin_mapping(quad, 24), GenerateOptions{});
  const TopologyProfile hex40 =
      generate_profile(hex, round_robin_mapping(hex, 40), GenerateOptions{});
  out.push_back({"quad24/dissemination", quad24, dissemination_barrier(24)});
  out.push_back({"quad24/heap_tree", quad24, heap_tree_barrier(24)});
  out.push_back({"hex40/dissemination", hex40, dissemination_barrier(40)});
  out.push_back({"hex40/pairwise", hex40, pairwise_exchange_barrier(40)});
  return out;
}

/// Exact comparison of every SimResult field. `where` names the
/// (fixture, config, seed) cell for the failure message.
void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& where) {
  ASSERT_EQ(a.completion.size(), b.completion.size()) << where;
  for (std::size_t i = 0; i < a.completion.size(); ++i) {
    EXPECT_EQ(a.completion[i], b.completion[i]) << where << " rank " << i;
  }
  ASSERT_EQ(a.entry.size(), b.entry.size()) << where;
  for (std::size_t i = 0; i < a.entry.size(); ++i) {
    EXPECT_EQ(a.entry[i], b.entry[i]) << where << " rank " << i;
  }
  EXPECT_EQ(a.deadlocked, b.deadlocked) << where;
  EXPECT_EQ(a.stuck_ranks, b.stuck_ranks) << where;
  ASSERT_EQ(a.trace.size(), b.trace.size()) << where;
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].stage, b.trace[i].stage) << where << " msg " << i;
    EXPECT_EQ(a.trace[i].src, b.trace[i].src) << where << " msg " << i;
    EXPECT_EQ(a.trace[i].dst, b.trace[i].dst) << where << " msg " << i;
    EXPECT_EQ(a.trace[i].injected, b.trace[i].injected)
        << where << " msg " << i;
    EXPECT_EQ(a.trace[i].matched, b.trace[i].matched) << where << " msg " << i;
  }
}

/// One named option configuration, parameterized on the sweep seed.
struct Config {
  std::string name;
  SimOptions (*make)(const Fixture& f, std::uint64_t seed);
};

std::vector<double> skewed_entries(std::size_t p, std::uint64_t seed) {
  Rng rng(seed * 7919 + 13);
  std::vector<double> entry(p);
  for (double& e : entry) {
    e = rng.next_double() * 5e-5;
  }
  return entry;
}

std::vector<Config> configs() {
  return {
      {"plain",
       [](const Fixture&, std::uint64_t seed) {
         SimOptions o;
         o.seed = seed;
         return o;
       }},
      {"jitter",
       [](const Fixture&, std::uint64_t seed) {
         SimOptions o;
         o.seed = seed;
         o.jitter = 0.15;
         return o;
       }},
      {"spikes",
       [](const Fixture&, std::uint64_t seed) {
         SimOptions o;
         o.seed = seed;
         o.jitter = 0.05;
         o.spike_probability = 0.05;
         o.spike_scale = 8.0;
         return o;
       }},
      {"egress",
       [](const Fixture& f, std::uint64_t seed) {
         SimOptions o;
         o.seed = seed;
         o.jitter = 0.1;
         // Four ranks per synthetic NIC — enough sharing to force
         // retry-on-busy reschedules.
         o.egress_resource_of.resize(f.schedule.ranks());
         for (std::size_t r = 0; r < o.egress_resource_of.size(); ++r) {
           o.egress_resource_of[r] = r / 4;
         }
         return o;
       }},
      {"entry_skew",
       [](const Fixture& f, std::uint64_t seed) {
         SimOptions o;
         o.seed = seed;
         o.jitter = 0.1;
         o.entry_times = skewed_entries(f.schedule.ranks(), seed);
         return o;
       }},
      {"trace",
       [](const Fixture& f, std::uint64_t seed) {
         SimOptions o;
         o.seed = seed;
         o.jitter = 0.1;
         o.record_trace = true;
         o.entry_times = skewed_entries(f.schedule.ranks(), seed);
         return o;
       }},
      {"eager_sends",
       [](const Fixture&, std::uint64_t seed) {
         SimOptions o;
         o.seed = seed;
         o.jitter = 0.1;
         o.synchronous_sends = false;
         return o;
       }},
      {"free_receive",
       [](const Fixture&, std::uint64_t seed) {
         SimOptions o;
         o.seed = seed;
         o.jitter = 0.1;
         o.receiver_processing = false;
         return o;
       }},
      {"payload_hook",
       [](const Fixture&, std::uint64_t seed) {
         SimOptions o;
         o.seed = seed;
         o.jitter = 0.1;
         o.extra_message_cost = [](std::size_t stage, std::size_t src,
                                   std::size_t dst) {
           return 1e-7 * static_cast<double>(stage + 1) +
                  1e-9 * static_cast<double>(src + dst);
         };
         return o;
       }},
      {"faults_dup_delay",
       [](const Fixture&, std::uint64_t seed) {
         SimOptions o;
         o.seed = seed;
         o.jitter = 0.1;
         // Duplicates and delays perturb timing but never deadlock.
         o.faults = FaultPlan::parse("seed=" + std::to_string(seed % 97) +
                                     ";dup=*>*@*:0.2;delay=*>*@*:0.3:0.0001");
         return o;
       }},
      {"faults_drop",
       [](const Fixture&, std::uint64_t seed) {
         SimOptions o;
         o.seed = seed;
         // Random drops: synchronized senders stall, both engines must
         // agree on the deadlock flag and the stuck-rank set.
         o.faults = FaultPlan::parse("seed=" + std::to_string(seed % 89) +
                                     ";drop=*>*@*:0.1");
         return o;
       }},
      {"crashed_ranks",
       [](const Fixture& f, std::uint64_t seed) {
         SimOptions o;
         o.seed = seed;
         o.jitter = 0.05;
         o.crashed_ranks = {1 + seed % (f.schedule.ranks() - 1)};
         return o;
       }},
      {"crash_at_stage",
       [](const Fixture& f, std::uint64_t seed) {
         SimOptions o;
         o.seed = seed;
         o.faults = FaultPlan::parse(
             "seed=1;crash=" +
             std::to_string(2 + seed % (f.schedule.ranks() - 2)) + "@1");
         return o;
       }},
      {"overlap_progress",
       [](const Fixture& f, std::uint64_t seed) {
         SimOptions o;
         o.seed = seed;
         o.jitter = 0.05;
         o.compute_after_post.assign(f.schedule.ranks(), 2e-4);
         o.progress_poll_interval = 3e-5;
         o.entry_times = skewed_entries(f.schedule.ranks(), seed);
         return o;
       }},
      {"kitchen_sink",
       [](const Fixture& f, std::uint64_t seed) {
         SimOptions o;
         o.seed = seed;
         o.jitter = 0.2;
         o.spike_probability = 0.03;
         o.record_trace = true;
         o.entry_times = skewed_entries(f.schedule.ranks(), seed);
         o.egress_resource_of.resize(f.schedule.ranks());
         for (std::size_t r = 0; r < o.egress_resource_of.size(); ++r) {
           o.egress_resource_of[r] = r / 4;
         }
         o.faults = FaultPlan::parse("seed=3;dup=*>*@*:0.1");
         return o;
       }},
  };
}

TEST(NetsimParity, RandomizedSweepIsBitIdentical) {
  for (const Fixture& f : fixtures()) {
    for (const Config& c : configs()) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const SimOptions options = c.make(f, seed);
        const SimResult reference = simulate_reference(f.schedule, f.profile,
                                                       options);
        const SimResult production = simulate(f.schedule, f.profile, options);
        expect_identical(production, reference,
                         f.name + "/" + c.name + "/seed" +
                             std::to_string(seed));
      }
    }
  }
}

// A workspace reused across *different* shapes (rank counts, stage
// counts, option families) must behave exactly like a fresh one —
// stale capacities and leftover pool contents must never leak into the
// next run.
TEST(NetsimParity, WorkspaceReuseAcrossShapesMatchesFreshRuns) {
  SimWorkspace ws;
  SimResult out;
  std::size_t checked = 0;
  for (const Fixture& f : fixtures()) {
    for (const Config& c : configs()) {
      const SimOptions options = c.make(f, /*seed=*/11);
      simulate_into(f.schedule, f.profile, options, ws, out);
      const SimResult fresh = simulate_reference(f.schedule, f.profile,
                                                 options);
      expect_identical(out, fresh, f.name + "/" + c.name + "/reused-ws");
      ++checked;
    }
  }
  EXPECT_GT(checked, 40u);
}

/// Reference reimplementation of simulate_mean_time on top of
/// simulate_reference, pinning the documented seed-derivation constant.
double reference_mean_time(const Schedule& s, const TopologyProfile& p,
                           const SimOptions& options, std::size_t reps) {
  double total = 0.0;
  for (std::size_t rep = 0; rep < reps; ++rep) {
    SimOptions rep_options = options;
    rep_options.seed = options.seed + 0x9E3779B9ULL * (rep + 1);
    total += simulate_reference(s, p, rep_options).barrier_time();
  }
  return total / static_cast<double>(reps);
}

TEST(NetsimParity, MeanTimeMatchesReferenceAtAnyPoolWidth) {
  const Fixture f = fixtures()[0];
  SimOptions options;
  options.jitter = 0.1;
  options.seed = 42;
  const double expected =
      reference_mean_time(f.schedule, f.profile, options, 8);
  EXPECT_EQ(simulate_mean_time(f.schedule, f.profile, options, 8), expected);
  ThreadPool pool(4);
  EXPECT_EQ(simulate_mean_time(f.schedule, f.profile, options, 8, &pool),
            expected);
}

TEST(NetsimParity, WorkloadMatchesReferenceEpisodeChain) {
  const Fixture f = fixtures()[1];
  WorkloadOptions options;
  options.episodes = 6;
  options.sim.jitter = 0.1;
  options.sim.seed = 7;

  // The documented chain: episode e's entries are episode e-1's
  // completions plus truncated-normal compute draws from the derived
  // workload RNG.
  const std::size_t p = f.schedule.ranks();
  Rng rng(options.sim.seed ^ 0xB5297A4D3F84D5A9ULL);
  std::vector<double> completion(p, 0.0);
  std::vector<double> expected_barrier;
  std::vector<double> expected_wait(p, 0.0);
  for (std::size_t episode = 0; episode < options.episodes; ++episode) {
    SimOptions sim = options.sim;
    sim.seed = options.sim.seed + 0x9E3779B9ULL * (episode + 1);
    sim.entry_times.resize(p);
    for (std::size_t rank = 0; rank < p; ++rank) {
      const double compute = std::max(
          0.0, rng.normal(options.compute_mean, options.compute_stddev));
      sim.entry_times[rank] = completion[rank] + compute;
    }
    const SimResult r = simulate_reference(f.schedule, f.profile, sim);
    expected_barrier.push_back(r.barrier_time());
    for (std::size_t rank = 0; rank < p; ++rank) {
      expected_wait[rank] += r.completion[rank] - r.entry[rank];
    }
    completion = r.completion;
  }

  const WorkloadResult actual =
      simulate_workload(f.schedule, f.profile, options);
  ASSERT_EQ(actual.episode_barrier_times.size(), expected_barrier.size());
  for (std::size_t e = 0; e < expected_barrier.size(); ++e) {
    EXPECT_EQ(actual.episode_barrier_times[e], expected_barrier[e]);
  }
  for (std::size_t rank = 0; rank < p; ++rank) {
    EXPECT_EQ(actual.rank_wait_total[rank], expected_wait[rank]);
  }
  EXPECT_EQ(actual.makespan,
            *std::max_element(completion.begin(), completion.end()));

  // Rep 0 of the reps fan-out must equal the single run bit for bit,
  // at any pool width.
  ThreadPool pool(3);
  const std::vector<WorkloadResult> reps =
      simulate_workload_reps(f.schedule, f.profile, options, 3, &pool);
  ASSERT_EQ(reps.size(), 3u);
  EXPECT_EQ(reps[0].episode_barrier_times, actual.episode_barrier_times);
  EXPECT_EQ(reps[0].makespan, actual.makespan);
}

TEST(NetsimParity, OverlapMatchesReferencePairedRuns) {
  const Fixture f = fixtures()[2];
  OverlapOptions options;
  options.compute_seconds = 3e-4;
  options.compute_stddev = 5e-5;
  options.overlap_ratio = 0.7;
  options.poll_interval = 2e-5;
  options.sim.jitter = 0.1;
  options.sim.seed = 21;

  // Paired reference runs sharing the documented compute-draw RNG.
  const std::size_t p = f.schedule.ranks();
  Rng rng(options.sim.seed ^ 0xA0761D6478BD642FULL);
  std::vector<double> compute(p);
  for (std::size_t rank = 0; rank < p; ++rank) {
    compute[rank] = std::max(
        0.0, rng.normal(options.compute_seconds, options.compute_stddev));
  }
  SimOptions blocking = options.sim;
  blocking.entry_times = compute;
  const SimResult blocking_run =
      simulate_reference(f.schedule, f.profile, blocking);
  SimOptions nonblocking = options.sim;
  nonblocking.entry_times.resize(p);
  nonblocking.compute_after_post.resize(p);
  for (std::size_t rank = 0; rank < p; ++rank) {
    nonblocking.entry_times[rank] =
        (1.0 - options.overlap_ratio) * compute[rank];
    nonblocking.compute_after_post[rank] =
        options.overlap_ratio * compute[rank];
  }
  nonblocking.progress_poll_interval = options.poll_interval;
  const SimResult nonblocking_run =
      simulate_reference(f.schedule, f.profile, nonblocking);

  const OverlapResult actual =
      simulate_overlap(f.schedule, f.profile, options);
  EXPECT_EQ(actual.blocking_completion, blocking_run.completion_time());
  EXPECT_EQ(actual.nonblocking_completion,
            nonblocking_run.completion_time());
  EXPECT_EQ(actual.saved, blocking_run.completion_time() -
                              nonblocking_run.completion_time());

  // Rep 0 of the mean fan-out keeps the caller's seed; a 1-rep mean is
  // the episode itself, bit for bit, pooled or not.
  ThreadPool pool(3);
  const OverlapResult mean1 =
      simulate_overlap_mean(f.schedule, f.profile, options, 1, &pool);
  EXPECT_EQ(mean1.blocking_completion, actual.blocking_completion);
  EXPECT_EQ(mean1.nonblocking_completion, actual.nonblocking_completion);
  EXPECT_EQ(mean1.exposed_wait, actual.exposed_wait);
  EXPECT_EQ(mean1.saved, actual.saved);
  EXPECT_EQ(mean1.overlap_efficiency, actual.overlap_efficiency);
}

// Thread-pooled repetition fan-out with thread_local workspaces: the
// tsan label makes this the concurrency check for the workspace reuse
// discipline (no shared mutable state between reps beyond the
// read-only compiled schedule).
TEST(NetsimParity, PooledSweepsAreWidthInvariant) {
  const Fixture f = fixtures()[3];
  SimOptions options;
  options.jitter = 0.1;
  options.seed = 5;
  const double serial =
      simulate_mean_time(f.schedule, f.profile, options, 12);
  ThreadPool pool(8);
  EXPECT_EQ(simulate_mean_time(f.schedule, f.profile, options, 12, &pool),
            serial);

  OverlapOptions overlap;
  overlap.sim.seed = 5;
  overlap.sim.jitter = 0.05;
  const OverlapResult serial_mean =
      simulate_overlap_mean(f.schedule, f.profile, overlap, 6);
  const OverlapResult pooled_mean =
      simulate_overlap_mean(f.schedule, f.profile, overlap, 6, &pool);
  EXPECT_EQ(pooled_mean.blocking_completion, serial_mean.blocking_completion);
  EXPECT_EQ(pooled_mean.nonblocking_completion,
            serial_mean.nonblocking_completion);
  EXPECT_EQ(pooled_mean.saved, serial_mean.saved);
}

}  // namespace
}  // namespace optibar
