// End-to-end data correctness on the threaded MPI-like runtime: every
// generator and every composer-tuned schedule, executed with real
// payload buffers over simmpi, must be bit-exact against the serial
// oracle — on both paper machines and for every reduction operator.
// (Runs under TSan via scripts/tsan.sh; the payload handoff through the
// communicator is part of the concurrency surface.)
#include "collective/executor.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "collective/generators.hpp"
#include "collective/tuner.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace optibar {
namespace {

std::vector<Payload> random_inputs(std::size_t ranks, std::size_t elems,
                                   Rng& rng) {
  std::vector<Payload> inputs(ranks, Payload(elems));
  for (Payload& buf : inputs) {
    for (std::uint64_t& w : buf) {
      w = rng.next_u64();
    }
  }
  return inputs;
}

void expect_bit_exact(const CollectiveSchedule& schedule, ReduceOp op,
                      const std::vector<Payload>& inputs) {
  const CollectiveExecutor executor(schedule);
  const std::vector<Payload> got = executor.run_once(inputs, op);
  const std::vector<Payload> want = oracle_result(schedule, op, inputs);
  if (schedule.op() == CollectiveOp::kReduce) {
    EXPECT_EQ(got[schedule.root()], want[schedule.root()]);
    return;
  }
  for (std::size_t r = 0; r < schedule.ranks(); ++r) {
    EXPECT_EQ(got[r], want[r]) << "rank " << r;
  }
}

constexpr ReduceOp kAllOps[] = {ReduceOp::kSum, ReduceOp::kMin,
                                ReduceOp::kMax, ReduceOp::kXor};

TEST(CollectiveSimmpi, GeneratorsBitExactAgainstOracle) {
  Rng rng(7);
  for (std::size_t p : {2u, 5u, 8u, 12u}) {
    const std::size_t elems = 23;
    const std::vector<Payload> inputs = random_inputs(p, elems, rng);
    std::vector<NamedCollective> pool =
        classic_collectives(CollectiveOp::kAllreduce, p, 0, elems, 8);
    for (const NamedCollective& cand :
         classic_collectives(CollectiveOp::kBroadcast, p, p - 1, elems, 8)) {
      pool.push_back(cand);
    }
    for (const NamedCollective& cand :
         classic_collectives(CollectiveOp::kReduce, p, p / 2, elems, 8)) {
      pool.push_back(cand);
    }
    for (const NamedCollective& cand : pool) {
      for (ReduceOp op : kAllOps) {
        SCOPED_TRACE(cand.name);
        expect_bit_exact(cand.schedule, op, inputs);
      }
    }
  }
}

/// Composer-tuned schedules for both presets: the tuner's hierarchical
/// candidates must execute correctly too, not just predict cheaply.
void run_tuned_on(const MachineSpec& machine, std::size_t ranks) {
  const TopologyProfile profile =
      generate_profile(machine, round_robin_mapping(machine, ranks));
  Rng rng(2011);
  const std::size_t elems = 65;
  const std::vector<Payload> inputs = random_inputs(ranks, elems, rng);
  for (CollectiveOp op : {CollectiveOp::kBroadcast, CollectiveOp::kReduce,
                          CollectiveOp::kAllreduce}) {
    CollectiveTuneOptions options;
    options.op = op;
    options.payload_bytes = elems * 8;
    options.root = op == CollectiveOp::kAllreduce ? 0 : ranks - 1;
    const CollectiveTuneResult tuned = tune_collective(profile, options);
    SCOPED_TRACE(tuned.name());
    for (ReduceOp rop : kAllOps) {
      expect_bit_exact(tuned.schedule(), rop, inputs);
    }
  }
}

TEST(CollectiveSimmpi, TunedSchedulesBitExactOnQuadCluster) {
  run_tuned_on(quad_cluster(2), 16);
}

TEST(CollectiveSimmpi, TunedSchedulesBitExactOnHexCluster) {
  run_tuned_on(hex_cluster(2), 24);
}

TEST(CollectiveSimmpi, ExecutorRejectsInvalidSchedules) {
  CollectiveSchedule broken(CollectiveOp::kBroadcast, 4, 4, 8, 0);
  broken.append_stage({CollectiveEdge{0, 1, 0, 4, false}});  // 2, 3 unreached
  EXPECT_THROW(CollectiveExecutor executor(broken), Error);
}

TEST(CollectiveSimmpi, ExecutorRejectsWrongBufferSize) {
  const CollectiveExecutor executor(ring_allreduce(4, 8, 8));
  Rng rng(3);
  EXPECT_THROW(executor.run_once(random_inputs(4, 7, rng), ReduceOp::kSum),
               Error);
  EXPECT_THROW(executor.run_once(random_inputs(3, 8, rng), ReduceOp::kSum),
               Error);
}

/// Stress: repeated episodes over one executor, fresh random inputs per
/// round, a byte-latency model skewing delivery timing. Exercises the
/// payload handoff under thread-scheduling variance (tsan target).
TEST(CollectiveSimmpiStress, RepeatedEpisodesStayBitExact) {
  const CollectiveSchedule schedule = ring_allreduce(8, 40, 8);
  const CollectiveExecutor executor(schedule);
  Rng rng(99);
  for (int round = 0; round < 8; ++round) {
    const std::vector<Payload> inputs = random_inputs(8, 40, rng);
    const std::vector<Payload> got = executor.run_once(
        inputs, ReduceOp::kSum, simmpi::uniform_latency(),
        [](std::size_t, std::size_t, std::size_t bytes) {
          return std::chrono::microseconds(bytes / 64);
        });
    const std::vector<Payload> want =
        oracle_result(schedule, ReduceOp::kSum, inputs);
    for (std::size_t r = 0; r < 8; ++r) {
      ASSERT_EQ(got[r], want[r]) << "round " << round << " rank " << r;
    }
  }
}

}  // namespace
}  // namespace optibar
