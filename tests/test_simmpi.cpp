// Tests for the in-process MPI-like runtime: issend/irecv matching,
// synchronized-send semantics, the general schedule interpreter, and the
// paper's delay-injection synchronization check on real threads.
#include "simmpi/communicator.hpp"
#include "simmpi/executor.hpp"
#include "simmpi/latency_model.hpp"
#include "simmpi/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "barrier/algorithms.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

using namespace std::chrono_literals;

TEST(Communicator, RejectsInvalidOperations) {
  simmpi::Communicator comm(2);
  EXPECT_THROW(comm.issend(0, 0, 0), Error);   // self send
  EXPECT_THROW(comm.issend(0, 2, 0), Error);   // dst out of range
  EXPECT_THROW(comm.issend(2, 0, 0), Error);   // src out of range
  EXPECT_THROW(comm.irecv(1, 1, 0), Error);    // self recv
  EXPECT_THROW(simmpi::Communicator(0), Error);
}

TEST(Communicator, SendThenRecvMatches) {
  simmpi::Communicator comm(2);
  auto send = comm.issend(0, 1, 7);
  EXPECT_FALSE(send->test());
  auto recv = comm.irecv(0, 1, 7);
  EXPECT_TRUE(send->test());
  EXPECT_TRUE(recv->test());
  EXPECT_EQ(comm.unmatched_operations(), 0u);
}

TEST(Communicator, RecvThenSendMatches) {
  simmpi::Communicator comm(2);
  auto recv = comm.irecv(0, 1, 3);
  EXPECT_EQ(comm.unmatched_operations(), 1u);
  auto send = comm.issend(0, 1, 3);
  EXPECT_TRUE(recv->test());
  EXPECT_TRUE(send->test());
}

TEST(Communicator, TagsSeparateChannels) {
  simmpi::Communicator comm(2);
  auto send_a = comm.issend(0, 1, 1);
  auto recv_b = comm.irecv(0, 1, 2);
  EXPECT_FALSE(send_a->test());
  EXPECT_FALSE(recv_b->test());
  auto recv_a = comm.irecv(0, 1, 1);
  EXPECT_TRUE(send_a->test());
  EXPECT_FALSE(recv_b->test());
  auto send_b = comm.issend(0, 1, 2);
  EXPECT_TRUE(recv_b->test());
}

TEST(Communicator, SameTagMatchesFifo) {
  simmpi::Communicator comm(2);
  auto s1 = comm.issend(0, 1, 0);
  auto s2 = comm.issend(0, 1, 0);
  auto r1 = comm.irecv(0, 1, 0);
  EXPECT_TRUE(s1->test());
  EXPECT_FALSE(s2->test());
  auto r2 = comm.irecv(0, 1, 0);
  EXPECT_TRUE(s2->test());
}

TEST(Communicator, DirectionsAreDistinctChannels) {
  simmpi::Communicator comm(2);
  auto send_fwd = comm.issend(0, 1, 0);
  auto recv_bwd = comm.irecv(1, 0, 0);  // 0 expects from 1: no match
  EXPECT_FALSE(send_fwd->test());
  EXPECT_FALSE(recv_bwd->test());
}

TEST(Communicator, InjectedLatencyDelaysVisibility) {
  const auto delay = 30ms;
  simmpi::LatencyModel model = [&](std::size_t, std::size_t) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(delay);
  };
  simmpi::Communicator comm(2, model);
  const auto start = simmpi::Clock::now();
  auto send = comm.issend(0, 1, 0);
  auto recv = comm.irecv(0, 1, 0);
  recv->wait();
  const auto elapsed = simmpi::Clock::now() - start;
  EXPECT_GE(elapsed, delay);
}

TEST(Request, DeliveryExactlyAtTheDeadlineIsASuccess) {
  // The timeout contract is "not done strictly after the deadline":
  // a delivery landing on the boundary must count as completed, like
  // condition_variable::wait_until. (Regression: the old comparison
  // rejected ready_at == deadline.)
  auto request = std::make_shared<simmpi::RequestState>();
  const auto now = simmpi::Clock::now();
  request->fulfil(now + 20ms);
  EXPECT_TRUE(request->wait_until(now + 20ms));
}

TEST(Request, DeliveryAfterTheDeadlineFails) {
  auto request = std::make_shared<simmpi::RequestState>();
  const auto now = simmpi::Clock::now();
  request->fulfil(now + 60ms);
  EXPECT_FALSE(request->wait_until(now + 10ms));
  // The signal is matched (will arrive), just late for that budget.
  EXPECT_TRUE(request->finished());
  EXPECT_TRUE(request->wait_until(now + 60ms));
}

TEST(Request, CompletedRequestsSucceedWithAnExhaustedBudget) {
  auto request = std::make_shared<simmpi::RequestState>();
  request->fulfil(simmpi::Clock::now() - 1ms);  // already visible
  EXPECT_TRUE(request->wait_for(0ms));
  std::vector<simmpi::Request> requests{request};
  EXPECT_TRUE(simmpi::Communicator::wait_all_for(requests, 0ms));
}

TEST(Request, UnmatchedRequestTimesOut) {
  auto request = std::make_shared<simmpi::RequestState>();
  EXPECT_FALSE(request->wait_for(5ms));
  std::vector<simmpi::Request> requests{request};
  EXPECT_FALSE(simmpi::Communicator::wait_all_for(requests, 5ms));
}

TEST(Runtime, RanksSeeTheirIds) {
  std::vector<std::atomic<int>> hits(5);
  simmpi::run_ranks(5, [&](simmpi::RankContext& ctx) {
    EXPECT_EQ(ctx.size(), 5u);
    hits[ctx.rank()].fetch_add(1);
  });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(Runtime, ExceptionsPropagateAfterJoin) {
  EXPECT_THROW(simmpi::run_ranks(3,
                                 [](simmpi::RankContext& ctx) {
                                   if (ctx.rank() == 1) {
                                     throw Error("rank 1 failed");
                                   }
                                 }),
               Error);
}

TEST(Runtime, PingPongAcrossThreads) {
  std::atomic<bool> pong_seen{false};
  simmpi::run_ranks(2, [&](simmpi::RankContext& ctx) {
    if (ctx.rank() == 0) {
      std::vector<simmpi::Request> reqs{ctx.issend(1, 0)};
      simmpi::RankContext::wait_all(reqs);
      std::vector<simmpi::Request> reply{ctx.irecv(1, 1)};
      simmpi::RankContext::wait_all(reply);
      pong_seen = true;
    } else {
      std::vector<simmpi::Request> reqs{ctx.irecv(0, 0)};
      simmpi::RankContext::wait_all(reqs);
      std::vector<simmpi::Request> reply{ctx.issend(0, 1)};
      simmpi::RankContext::wait_all(reply);
    }
  });
  EXPECT_TRUE(pong_seen.load());
}

TEST(Executor, RejectsNonBarrierPatterns) {
  Schedule s(2);
  StageMatrix m(2, 2, 0);
  m(0, 1) = 1;
  s.append_stage(std::move(m));  // one-way signal: not a barrier
  EXPECT_THROW(simmpi::ScheduleExecutor{s}, Error);
}

TEST(Executor, PrecomputesOpLists) {
  const simmpi::ScheduleExecutor exec(tree_barrier(8));
  EXPECT_EQ(exec.ranks(), 8u);
  EXPECT_EQ(exec.stage_count(), 6u);
}

class ExecutorAlgorithms : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ExecutorAlgorithms, AllClassicBarriersRunToCompletion) {
  const std::size_t p = GetParam();
  for (const Schedule& s :
       {linear_barrier(p), dissemination_barrier(p), tree_barrier(p)}) {
    const simmpi::ScheduleExecutor exec(s);
    const auto exits = exec.run_once();
    ASSERT_EQ(exits.size(), p);
    for (const auto& exit_time : exits) {
      EXPECT_GT(exit_time.count(), 0);
    }
  }
}

TEST_P(ExecutorAlgorithms, DelayInjectionProvesSynchronization) {
  // Section VI: "each algorithm was tested P times for each problem
  // size, with each of the P participants introducing a 1-second delay
  // before calling the barrier. Observing the expected delay in the
  // execution time at every process verifies that all processes are
  // actually synchronized." Scaled down to 50 ms per delay to keep the
  // suite fast; we inject at two representative ranks instead of all P.
  const std::size_t p = GetParam();
  const auto delay = 50ms;
  const Schedule s = dissemination_barrier(p);
  const simmpi::ScheduleExecutor exec(s);
  for (std::size_t late : {std::size_t{0}, p - 1}) {
    std::vector<std::chrono::nanoseconds> delays(p, 0ns);
    delays[late] =
        std::chrono::duration_cast<std::chrono::nanoseconds>(delay);
    const auto exits = exec.run_once(simmpi::uniform_latency(), delays);
    for (std::size_t rank = 0; rank < p; ++rank) {
      EXPECT_GE(exits[rank], delays[late])
          << "rank " << rank << " exited before delayed rank " << late;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankSweep, ExecutorAlgorithms,
                         ::testing::Values(2, 3, 4, 6, 8));

TEST(Executor, RepeatedEpisodesDoNotCrossMatch) {
  const Schedule s = tree_barrier(4);
  const simmpi::ScheduleExecutor exec(s);
  simmpi::Communicator comm(4);
  simmpi::run_ranks(comm, [&](simmpi::RankContext& ctx) {
    for (int episode = 0; episode < 5; ++episode) {
      exec.execute(ctx, episode);
    }
  });
  EXPECT_EQ(comm.unmatched_operations(), 0u);
}

TEST(Executor, ProfileLatencyModelSlowsExecution) {
  const MachineSpec m = quad_cluster(2);
  const TopologyProfile profile = generate_profile(m, 4);
  const Schedule s = tree_barrier(4);
  const simmpi::ScheduleExecutor exec(s);
  // Scale microsecond link costs up to ~10 ms so thread-scheduling noise
  // cannot mask them.
  const auto slow =
      exec.run_once(simmpi::profile_latency(profile, /*scale=*/1000.0));
  const auto fast = exec.run_once(simmpi::uniform_latency());
  const auto slow_max = *std::max_element(slow.begin(), slow.end());
  const auto fast_max = *std::max_element(fast.begin(), fast.end());
  EXPECT_GT(slow_max, fast_max);
}

TEST(Executor, MismatchedCommunicatorSizeThrows) {
  const simmpi::ScheduleExecutor exec(tree_barrier(4));
  simmpi::Communicator comm(3);
  EXPECT_THROW(simmpi::run_ranks(
                   comm, [&](simmpi::RankContext& ctx) { exec.execute(ctx); }),
               Error);
}

TEST(LatencyModels, ProfileLatencyMatchesOverheadMatrix) {
  const MachineSpec m = quad_cluster(2);
  const TopologyProfile profile = generate_profile(m, 16);
  const auto model = simmpi::profile_latency(profile, 1.0);
  const auto ns = model(0, 8);
  EXPECT_NEAR(static_cast<double>(ns.count()), profile.o(0, 8) * 1e9, 1.0);
  EXPECT_EQ(simmpi::uniform_latency()(3, 5), 0ns);
}

}  // namespace
}  // namespace optibar
