// Collective schedule core: edge validation, generator dataflow
// validity across ops, roots and rank counts, and the serial
// interpreter's bit-exactness against the elementwise oracle.
#include "collective/schedule.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "barrier/algorithms.hpp"
#include "collective/generators.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace optibar {
namespace {

std::vector<Payload> random_inputs(std::size_t ranks, std::size_t elems,
                                   Rng& rng) {
  std::vector<Payload> inputs(ranks, Payload(elems));
  for (Payload& buf : inputs) {
    for (std::uint64_t& w : buf) {
      w = rng.next_u64();
    }
  }
  return inputs;
}

/// Compare only the ranks the op constrains: all of them for broadcast
/// and allreduce, just the root for reduce.
void expect_matches_oracle(const CollectiveSchedule& schedule, ReduceOp op,
                           const std::vector<Payload>& inputs) {
  const std::vector<Payload> got = execute_serial(schedule, op, inputs);
  const std::vector<Payload> want = oracle_result(schedule, op, inputs);
  if (schedule.op() == CollectiveOp::kReduce) {
    EXPECT_EQ(got[schedule.root()], want[schedule.root()]);
    return;
  }
  for (std::size_t r = 0; r < schedule.ranks(); ++r) {
    EXPECT_EQ(got[r], want[r]) << "rank " << r;
  }
}

TEST(ReduceWord, OperatorsAreExact) {
  EXPECT_EQ(reduce_word(ReduceOp::kSum, ~0ull, 2ull), 1ull);  // wraps
  EXPECT_EQ(reduce_word(ReduceOp::kMin, 3ull, 7ull), 3ull);
  EXPECT_EQ(reduce_word(ReduceOp::kMax, 3ull, 7ull), 7ull);
  EXPECT_EQ(reduce_word(ReduceOp::kXor, 0b1100ull, 0b1010ull), 0b0110ull);
}

TEST(CollectiveSchedule, RejectsBadEdges) {
  CollectiveSchedule s(CollectiveOp::kAllreduce, 4, 8, 8);
  EXPECT_THROW(s.append_stage({CollectiveEdge{0, 4, 0, 1, true}}), Error);
  EXPECT_THROW(s.append_stage({CollectiveEdge{2, 2, 0, 1, true}}), Error);
  EXPECT_THROW(s.append_stage({CollectiveEdge{0, 1, 6, 3, true}}), Error);
  EXPECT_THROW(s.append_stage({CollectiveEdge{0, 1, 0, 1, true},
                               CollectiveEdge{0, 1, 4, 1, true}}),
               Error);
  // A correct stage still appends after the failures above.
  s.append_stage({CollectiveEdge{0, 1, 0, 8, true}});
  EXPECT_EQ(s.stage_count(), 1u);
}

TEST(CollectiveSchedule, NormalizesAllreduceRoot) {
  const CollectiveSchedule s(CollectiveOp::kAllreduce, 6, 4, 8, 5);
  EXPECT_EQ(s.root(), 0u);
  const CollectiveSchedule b(CollectiveOp::kBroadcast, 6, 4, 8, 5);
  EXPECT_EQ(b.root(), 5u);
}

TEST(CollectiveSchedule, SignalScheduleErasesPayload) {
  const CollectiveSchedule c = ring_allreduce(5, 10, 8);
  const Schedule s = c.signal_schedule();
  EXPECT_EQ(s.ranks(), 5u);
  EXPECT_EQ(s.stage_count(), c.stage_count());
  for (std::size_t st = 0; st < c.stage_count(); ++st) {
    std::size_t edges = 0;
    for (std::size_t i = 0; i < 5; ++i) {
      edges += s.targets_of(i, st).size();
    }
    EXPECT_EQ(edges, c.stage(st).size());
  }
}

TEST(CollectiveSchedule, FromBarrierLiftsToZeroPayload) {
  const Schedule barrier = dissemination_barrier(6);
  const CollectiveSchedule lifted = from_barrier(barrier);
  EXPECT_EQ(lifted.op(), CollectiveOp::kAllreduce);
  EXPECT_EQ(lifted.elem_count(), 0u);
  EXPECT_EQ(lifted.total_bytes(), 0u);
  EXPECT_EQ(lifted.signal_schedule(), barrier);
}

TEST(Generators, AllValidAcrossRanksAndRoots) {
  for (std::size_t p : {1u, 2u, 3u, 5u, 7u, 8u, 12u, 16u}) {
    for (std::size_t root : {std::size_t{0}, p / 2, p - 1}) {
      for (const NamedCollective& cand :
           classic_collectives(CollectiveOp::kBroadcast, p, root, 6, 8)) {
        EXPECT_TRUE(is_valid_collective(cand.schedule))
            << cand.name << " p=" << p << " root=" << root;
      }
      for (const NamedCollective& cand :
           classic_collectives(CollectiveOp::kReduce, p, root, 6, 8)) {
        EXPECT_TRUE(is_valid_collective(cand.schedule))
            << cand.name << " p=" << p << " root=" << root;
      }
    }
    for (const NamedCollective& cand :
         classic_collectives(CollectiveOp::kAllreduce, p, 0, 6, 8)) {
      EXPECT_TRUE(is_valid_collective(cand.schedule))
          << cand.name << " p=" << p;
    }
  }
}

TEST(Generators, RingHandlesShortVectors) {
  // elem_count < ranks: some chunks are empty and their edges dropped.
  const CollectiveSchedule s = ring_allreduce(8, 3, 8);
  EXPECT_TRUE(is_valid_collective(s));
}

TEST(Generators, ValidityCatchesBrokenDataflow) {
  // Drop the last stage of a binomial broadcast: ranks reached only in
  // that stage never see the root's data.
  const CollectiveSchedule full = binomial_broadcast(8, 0, 4, 8);
  CollectiveSchedule broken(CollectiveOp::kBroadcast, 8, 4, 8, 0);
  for (std::size_t s = 0; s + 1 < full.stage_count(); ++s) {
    broken.append_stage(full.stage(s));
  }
  EXPECT_FALSE(is_valid_collective(broken));
  // Flip a reduce edge to overwrite: the root loses contributions.
  CollectiveSchedule clobber(CollectiveOp::kReduce, 4, 4, 8, 0);
  clobber.append_stage({CollectiveEdge{1, 0, 0, 4, false},
                        CollectiveEdge{2, 0, 0, 4, true},
                        CollectiveEdge{3, 0, 0, 4, true}});
  EXPECT_FALSE(is_valid_collective(clobber));
}

TEST(ExecuteSerial, MatchesOracleForEveryGeneratorAndOp) {
  Rng rng(2011);
  for (std::size_t p : {2u, 3u, 5u, 8u, 13u}) {
    const std::size_t elems = 17;
    const std::vector<Payload> inputs = random_inputs(p, elems, rng);
    std::vector<NamedCollective> pool =
        classic_collectives(CollectiveOp::kAllreduce, p, 0, elems, 8);
    for (const NamedCollective& cand :
         classic_collectives(CollectiveOp::kBroadcast, p, p - 1, elems, 8)) {
      pool.push_back(cand);
    }
    for (const NamedCollective& cand :
         classic_collectives(CollectiveOp::kReduce, p, p / 2, elems, 8)) {
      pool.push_back(cand);
    }
    for (const NamedCollective& cand : pool) {
      for (ReduceOp op : {ReduceOp::kSum, ReduceOp::kMin, ReduceOp::kMax,
                          ReduceOp::kXor}) {
        SCOPED_TRACE(cand.name);
        expect_matches_oracle(cand.schedule, op, inputs);
      }
    }
  }
}

TEST(ExecuteSerial, RejectsWrongBufferShapes) {
  const CollectiveSchedule s = ring_allreduce(4, 8, 8);
  Rng rng(1);
  std::vector<Payload> inputs = random_inputs(3, 8, rng);
  EXPECT_THROW(execute_serial(s, ReduceOp::kSum, inputs), Error);
  inputs = random_inputs(4, 7, rng);
  EXPECT_THROW(execute_serial(s, ReduceOp::kSum, inputs), Error);
}

}  // namespace
}  // namespace optibar
