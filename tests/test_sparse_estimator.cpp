// Tests for Section IV-B sparse profiling: measurement savings, accuracy
// against the full sweep, verification spot-checks, and the failure path
// on a non-uniform machine.
#include "profile/sparse_estimator.hpp"

#include <gtest/gtest.h>

#include "core/tuner.hpp"
#include "netsim/engine.hpp"
#include "profile/synthetic_engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

RankGroups node_groups(std::size_t nodes, std::size_t per_node) {
  RankGroups groups(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    for (std::size_t c = 0; c < per_node; ++c) {
      groups[n].push_back(n * per_node + c);
    }
  }
  return groups;
}

EstimatorOptions fast_estimation() {
  EstimatorOptions options;
  options.repetitions = 3;
  options.max_payload_exponent = 12;
  options.max_batch = 8;
  return options;
}

TEST(SparseEstimator, RecoversFullProfileOnUniformMachine) {
  const MachineSpec m = quad_cluster(4);
  const Mapping mapping = block_mapping(m, 32);
  SyntheticEngineOptions quiet;
  quiet.noise = 0.0;
  SyntheticEngine engine(m, mapping, quiet);
  SparseEstimateOptions options;
  options.estimation = fast_estimation();
  const SparseEstimate sparse =
      estimate_profile_sparse(engine, node_groups(4, 8), options);
  EXPECT_LT(max_relative_deviation(sparse.profile, engine.ground_truth()),
            1e-6);
}

TEST(SparseEstimator, MeasuresFarFewerPairsThanTheFullSweep) {
  const MachineSpec m = quad_cluster(8);
  const Mapping mapping = block_mapping(m, 64);
  SyntheticEngineOptions quiet;
  quiet.noise = 0.0;
  SyntheticEngine engine(m, mapping, quiet);
  SparseEstimateOptions options;
  options.estimation = fast_estimation();
  const SparseEstimate sparse =
      estimate_profile_sparse(engine, node_groups(8, 8), options);
  // 8*7/2 intra + 8*8 inter = 92 measured vs 64*63/2 = 2016 full.
  EXPECT_EQ(sparse.measured_pairs, 92u);
  EXPECT_EQ(sparse.full_sweep_pairs, 2016u);
  EXPECT_LT(sparse.measured_pairs * 20, sparse.full_sweep_pairs);
}

TEST(SparseEstimator, VerificationPassesOnUniformMachine) {
  const MachineSpec m = quad_cluster(4);
  const Mapping mapping = block_mapping(m, 32);
  SyntheticEngineOptions eopts;
  eopts.noise = 0.02;
  SyntheticEngine engine(m, mapping, eopts);
  SparseEstimateOptions options;
  options.estimation = fast_estimation();
  options.estimation.repetitions = 25;
  options.verify_pairs = 10;
  const SparseEstimate sparse =
      estimate_profile_sparse(engine, node_groups(4, 8), options);
  EXPECT_GT(sparse.worst_verified_deviation, 0.0);   // noise exists
  EXPECT_LT(sparse.worst_verified_deviation, 0.25);  // but within band
  EXPECT_EQ(sparse.measured_pairs, 28u + 64u + 10u);  // intra + inter + spot checks
}

TEST(SparseEstimator, VerificationCatchesNonUniformMachines) {
  // When spot-checked pairs deviate from their replicated values beyond
  // the tolerance, the sparse estimator must reject rather than return a
  // profile that silently misrepresents the machine. Exercised
  // deterministically by dialing the tolerance below the measurement
  // noise floor.
  const MachineSpec m = quad_cluster(4);
  const Mapping mapping = block_mapping(m, 32);
  SyntheticEngineOptions eopts;
  eopts.noise = 0.05;
  SyntheticEngine engine(m, mapping, eopts);
  SparseEstimateOptions options;
  options.estimation = fast_estimation();
  options.verify_pairs = 5;
  options.verify_tolerance = 1e-6;  // no noisy measurement can pass this
  EXPECT_THROW(
      estimate_profile_sparse(engine, node_groups(4, 8), options), Error);
}

TEST(SparseEstimator, RejectsBadGroupings) {
  const MachineSpec m = quad_cluster(2);
  SyntheticEngineOptions quiet;
  quiet.noise = 0.0;
  SyntheticEngine engine(m, block_mapping(m, 16), quiet);
  SparseEstimateOptions options;
  options.estimation = fast_estimation();
  EXPECT_THROW(estimate_profile_sparse(engine, {}, options), Error);
  EXPECT_THROW(
      estimate_profile_sparse(engine, {{0, 1, 2, 3, 4, 5, 6, 7}}, options),
      Error);
  RankGroups uneven{{0, 1, 2, 3, 4, 5, 6, 7, 8}, {9, 10, 11, 12, 13, 14, 15}};
  EXPECT_THROW(estimate_profile_sparse(engine, uneven, options), Error);
}

TEST(SparseEstimator, SparseProfileTunesLikeTheFullOne) {
  // The point of the shortcut: the tuner must reach the same decision
  // quality from the sparse profile.
  const MachineSpec m = quad_cluster(4);
  const Mapping mapping = block_mapping(m, 32);
  SyntheticEngineOptions eopts;
  eopts.noise = 0.02;
  SyntheticEngine engine(m, mapping, eopts);
  SparseEstimateOptions options;
  options.estimation = fast_estimation();
  options.estimation.repetitions = 25;
  const SparseEstimate sparse =
      estimate_profile_sparse(engine, node_groups(4, 8), options);

  const auto from_sparse = tune_barrier(sparse.profile);
  const auto from_truth = tune_barrier(engine.ground_truth());
  const double simulated_sparse =
      simulate(from_sparse.schedule(), engine.ground_truth()).barrier_time();
  const double simulated_truth =
      simulate(from_truth.schedule(), engine.ground_truth()).barrier_time();
  EXPECT_LE(simulated_sparse, 1.15 * simulated_truth);
}

}  // namespace
}  // namespace optibar
