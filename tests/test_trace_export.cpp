// Tests for simulation trace export (CSV and Chrome trace JSON).
#include "netsim/trace_export.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "barrier/algorithms.hpp"
#include "collective/generators.hpp"
#include "collective/simulate.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

SimResult traced_run() {
  const MachineSpec m = quad_cluster(2);
  const TopologyProfile profile = generate_profile(m, 8);
  SimOptions options;
  options.record_trace = true;
  return simulate(tree_barrier(8), profile, options);
}

TEST(TraceExport, CsvHasHeaderAndOneRowPerMessage) {
  const SimResult result = traced_run();
  std::ostringstream os;
  write_trace_csv(os, result);
  const std::string text = os.str();
  EXPECT_EQ(text.find("stage,src,dst,injected,matched,duration"), 0u);
  const auto lines = std::count(text.begin(), text.end(), '\n');
  EXPECT_EQ(static_cast<std::size_t>(lines), result.trace.size() + 1);
}

TEST(TraceExport, CsvDurationsAreNonNegative) {
  const SimResult result = traced_run();
  std::ostringstream os;
  write_trace_csv(os, result);
  std::istringstream is(os.str());
  std::string line;
  std::getline(is, line);  // header
  while (std::getline(is, line)) {
    const std::size_t last_comma = line.rfind(',');
    ASSERT_NE(last_comma, std::string::npos);
    EXPECT_GE(std::stod(line.substr(last_comma + 1)), 0.0);
  }
}

TEST(TraceExport, ChromeJsonIsWellFormedArray) {
  const SimResult result = traced_run();
  std::ostringstream os;
  write_trace_chrome_json(os, result);
  const std::string text = os.str();
  EXPECT_EQ(text.front(), '[');
  EXPECT_NE(text.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(text.find(R"("name":"exit")"), std::string::npos);
  // Balanced braces, one complete event per message + one per rank.
  const auto opens = std::count(text.begin(), text.end(), '{');
  const auto closes = std::count(text.begin(), text.end(), '}');
  EXPECT_EQ(opens, closes);
  const auto events =
      static_cast<std::size_t>(std::count_if(text.begin(), text.end(),
                                             [](char c) { return c == 'X'; }));
  (void)events;
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), 'X')),
            result.trace.size());
}

TEST(TraceExport, CollectiveRunExportsWellFormedChromeJson) {
  // A payload-carrying allreduce traced through netsim renders as a
  // Perfetto-loadable wavefront: same event schema as barrier traces,
  // one complete event per message, payload surcharge priced in.
  const MachineSpec m = hex_cluster(1);
  const TopologyProfile profile = generate_profile(m, 12);
  SimOptions options;
  options.record_trace = true;
  const CollectiveSchedule allreduce = ring_allreduce(12, 1024, 8);
  const SimResult result = simulate_collective(allreduce, profile, options);
  ASSERT_FALSE(result.trace.empty());

  std::ostringstream os;
  write_trace_chrome_json(os, result);
  const std::string text = os.str();
  EXPECT_EQ(text.front(), '[');
  EXPECT_EQ(text.back(), '\n');
  EXPECT_EQ(text[text.size() - 2], ']');
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(text.begin(), text.end(), 'X')),
            result.trace.size());
  EXPECT_NE(text.find(R"("name":"exit")"), std::string::npos);

  // The payload surcharge must be visible: the same pattern with zero
  // payload completes strictly faster.
  const SimResult signals = simulate_collective(
      ring_allreduce(12, 0, 8), profile, options);
  EXPECT_GT(result.completion_time(), signals.completion_time());
}

TEST(TraceExport, ChromeJsonRejectsBadScale) {
  const SimResult result = traced_run();
  std::ostringstream os;
  EXPECT_THROW(write_trace_chrome_json(os, result, 0.0), Error);
  EXPECT_THROW(write_trace_chrome_json(os, result, -1.0), Error);
}

TEST(Timeline, RendersOneRowPerRankWithExits) {
  const SimResult result = traced_run();
  const std::string text = render_timeline(result, 40);
  // One header + 8 rank rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 9);
  // Every rank row ends in an exit mark: '|', or a message mark when a
  // send span overlaps the exit column.
  std::istringstream lines(text);
  std::string line;
  std::getline(lines, line);  // header
  while (std::getline(lines, line)) {
    const std::size_t last = line.find_last_not_of(' ');
    ASSERT_NE(last, std::string::npos);
    const char mark = line[last];
    EXPECT_TRUE(mark == '|' || mark == '#' ||
                (mark >= '0' && mark <= '9'))
        << "row ends with '" << mark << "': " << line;
  }
  EXPECT_NE(text.find("r0"), std::string::npos);
  EXPECT_NE(text.find("r7"), std::string::npos);
}

TEST(Timeline, MarksStagesWithDigits) {
  const SimResult result = traced_run();
  const std::string text = render_timeline(result, 64);
  EXPECT_NE(text.find('0'), std::string::npos);  // stage-0 sends visible
}

TEST(Timeline, WorksWithoutTrace) {
  const MachineSpec m = quad_cluster(1);
  const TopologyProfile profile = generate_profile(m, 4);
  const SimResult result = simulate(tree_barrier(4), profile);
  const std::string text = render_timeline(result);
  EXPECT_NE(text.find("r3"), std::string::npos);
  EXPECT_NE(text.find('|'), std::string::npos);
}

TEST(Timeline, RejectsTinyWidth) {
  const SimResult result = traced_run();
  EXPECT_THROW(render_timeline(result, 4), Error);
}

TEST(TraceExport, EmptyTraceStillValid) {
  const MachineSpec m = quad_cluster(1);
  const TopologyProfile profile = generate_profile(m, 2);
  const SimResult result = simulate(linear_barrier(2), profile);  // no trace
  std::ostringstream csv;
  write_trace_csv(csv, result);
  EXPECT_EQ(csv.str(), "stage,src,dst,injected,matched,duration\n");
  std::ostringstream json;
  write_trace_chrome_json(json, result);
  EXPECT_NE(json.str().find("exit"), std::string::npos);
}

}  // namespace
}  // namespace optibar
