// Tests for the consolidated EngineOptions: validation and thread-width
// resolution.
#include "core/engine_options.hpp"

#include <gtest/gtest.h>

#include "core/tuner.hpp"  // the deprecated TuneOptions alias
#include "util/error.hpp"

namespace optibar {
namespace {

TEST(EngineOptions, DefaultsValidate) {
  EngineOptions options;
  EXPECT_NO_THROW(options.validate());
  EXPECT_EQ(options.threads, 1u);
  EXPECT_EQ(options.cache_shards, 16u);
  EXPECT_EQ(options.function_name, "optibar_barrier");
}

TEST(EngineOptions, RejectsBadSparseness) {
  EngineOptions options;
  options.clustering.sss.sparseness = 0.0;
  EXPECT_THROW(options.validate(), Error);
  options.clustering.sss.sparseness = 1.5;
  EXPECT_THROW(options.validate(), Error);
  options.clustering.sss.sparseness = 1.0;
  EXPECT_NO_THROW(options.validate());
}

TEST(EngineOptions, RejectsDegenerateClustering) {
  EngineOptions options;
  options.clustering.max_depth = 0;
  EXPECT_THROW(options.validate(), Error);
}

TEST(EngineOptions, RejectsEmptyAlgorithmSet) {
  EngineOptions options;
  options.composition.algorithms.clear();
  EXPECT_THROW(options.validate(), Error);
}

TEST(EngineOptions, RejectsDegenerateSearch) {
  EngineOptions options;
  options.search.max_stages = 0;
  EXPECT_THROW(options.validate(), Error);
  options.search.max_stages = 3;
  options.search.max_ranks = 0;
  EXPECT_THROW(options.validate(), Error);
}

TEST(EngineOptions, RejectsBadFunctionNames) {
  EngineOptions options;
  options.function_name = "";
  EXPECT_THROW(options.validate(), Error);
  options.function_name = "9starts_with_digit";
  EXPECT_THROW(options.validate(), Error);
  options.function_name = "has space";
  EXPECT_THROW(options.validate(), Error);
  options.function_name = "ns::qualified_name";
  EXPECT_NO_THROW(options.validate());
}

TEST(EngineOptions, RejectsAbsurdThreadCounts) {
  EngineOptions options;
  options.threads = 1025;
  EXPECT_THROW(options.validate(), Error);
  options.threads = 0;  // 0 = hardware width, valid
  EXPECT_NO_THROW(options.validate());
}

TEST(EngineOptions, RejectsNonPowerOfTwoShardCounts) {
  EngineOptions options;
  options.cache_shards = 12;
  EXPECT_THROW(options.validate(), Error);
  options.cache_shards = 0;
  EXPECT_THROW(options.validate(), Error);
  options.cache_shards = 8192;
  EXPECT_THROW(options.validate(), Error);
  options.cache_shards = 1;
  EXPECT_NO_THROW(options.validate());
}

TEST(EngineOptions, ResolvedThreadsNeverZero) {
  EngineOptions options;
  options.threads = 0;
  EXPECT_GE(options.resolved_threads(), 1u);
  options.threads = 7;
  EXPECT_EQ(options.resolved_threads(), 7u);
}

TEST(EngineOptions, TuneOptionsAliasStillCompiles) {
  // Source compatibility for pre-consolidation callers.
  TuneOptions options;
  options.clustering.max_depth = 8;
  options.function_name = "my_barrier";
  EXPECT_NO_THROW(options.validate());
}

}  // namespace
}  // namespace optibar
