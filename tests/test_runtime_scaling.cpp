// Tests for the scaling layer of the simmpi runtime: per-destination
// board shards keep FIFO matching under many-to-one and all-to-all
// contention, batched waits complete across shards, a persistent
// RankPool survives a thousand episodes and rank exceptions, and fault
// decisions are bit-identical between the sharded and the one-mutex
// (BoardMode::kGlobal) board. Runs under both tsan and asan.
#include "simmpi/rank_pool.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "barrier/algorithms.hpp"
#include "simmpi/communicator.hpp"
#include "simmpi/executor.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/resilience.hpp"
#include "simmpi/runtime.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

using namespace std::chrono_literals;
using simmpi::BoardMode;
using simmpi::Communicator;
using simmpi::ExecutionMode;
using simmpi::ExecutorOptions;
using simmpi::Payload;
using simmpi::RankContext;
using simmpi::RankPool;
using simmpi::Request;
using simmpi::ResilienceOptions;
using simmpi::ScheduleExecutor;
using simmpi::StallReport;

// Both board modes must pass every board test below.
class ShardedBoard : public ::testing::TestWithParam<BoardMode> {};

INSTANTIATE_TEST_SUITE_P(BoardModes, ShardedBoard,
                         ::testing::Values(BoardMode::kSharded,
                                           BoardMode::kGlobal),
                         [](const auto& info) {
                           return info.param == BoardMode::kSharded
                                      ? "sharded"
                                      : "global";
                         });

TEST_P(ShardedBoard, ManyToOneKeepsPerChannelFifo) {
  // Seven senders hammer rank 0's shard concurrently; within each
  // (src, 0, tag) channel the k payloads must bind to rank 0's k
  // receives in send order.
  const std::size_t p = 8;
  const std::size_t k = 32;
  Communicator comm(p, simmpi::uniform_latency(), nullptr, GetParam());
  std::vector<std::vector<Payload>> sinks(p, std::vector<Payload>(k));
  simmpi::run_ranks(comm, [&](RankContext& ctx) {
    const std::size_t r = ctx.rank();
    std::vector<Request> requests;
    if (r == 0) {
      requests.reserve((p - 1) * k);
      for (std::size_t src = 1; src < p; ++src) {
        for (std::size_t i = 0; i < k; ++i) {
          requests.push_back(ctx.irecv(src, 0, &sinks[src][i]));
        }
      }
    } else {
      requests.reserve(k);
      for (std::size_t i = 0; i < k; ++i) {
        requests.push_back(ctx.issend(0, 0, Payload{r, i}));
      }
    }
    ctx.wait_all_batched(requests);
  });
  for (std::size_t src = 1; src < p; ++src) {
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(sinks[src][i], (Payload{src, i}))
          << "channel (" << src << " -> 0) delivered out of order";
    }
  }
  EXPECT_EQ(comm.unmatched_operations(), 0u);
}

TEST_P(ShardedBoard, AllToAllOrderingAcrossShards) {
  // Every rank sends two payloads to every other rank and waits on its
  // mixed send+recv set in one batched park — completions of its sends
  // land in *other* shards, so this exercises the cross-shard wakeup.
  const std::size_t p = 6;
  const std::size_t per_peer = 2;
  Communicator comm(p, simmpi::uniform_latency(), nullptr, GetParam());
  std::vector<std::vector<std::vector<Payload>>> sinks(
      p, std::vector<std::vector<Payload>>(p,
                                           std::vector<Payload>(per_peer)));
  simmpi::run_ranks(comm, [&](RankContext& ctx) {
    const std::size_t r = ctx.rank();
    std::vector<Request> requests;
    requests.reserve(2 * (p - 1) * per_peer);
    for (std::size_t peer = 0; peer < p; ++peer) {
      if (peer == r) {
        continue;
      }
      for (std::size_t i = 0; i < per_peer; ++i) {
        requests.push_back(ctx.issend(peer, 5, Payload{r, i}));
        requests.push_back(ctx.irecv(peer, 5, &sinks[r][peer][i]));
      }
    }
    ctx.wait_all_batched(requests);
  });
  for (std::size_t r = 0; r < p; ++r) {
    for (std::size_t peer = 0; peer < p; ++peer) {
      if (peer == r) {
        continue;
      }
      for (std::size_t i = 0; i < per_peer; ++i) {
        EXPECT_EQ(sinks[r][peer][i], (Payload{peer, i}))
            << "channel (" << peer << " -> " << r << ") out of order";
      }
    }
  }
  EXPECT_EQ(comm.unmatched_operations(), 0u);
}

TEST_P(ShardedBoard, BatchedWaitOverManyRounds) {
  // A ring where every round's send completion lives in the neighbour's
  // shard: fifty consecutive batched parks per rank must all be woken.
  const std::size_t p = 5;
  const int rounds = 50;
  Communicator comm(p, simmpi::uniform_latency(), nullptr, GetParam());
  simmpi::run_ranks(comm, [&](RankContext& ctx) {
    const std::size_t r = ctx.rank();
    const std::size_t next = (r + 1) % p;
    const std::size_t prev = (r + p - 1) % p;
    for (int round = 0; round < rounds; ++round) {
      const std::vector<Request> requests = {ctx.issend(next, round),
                                             ctx.irecv(prev, round)};
      ctx.wait_all_batched(requests);
    }
  });
  EXPECT_EQ(comm.unmatched_operations(), 0u);
}

TEST(RankPool, ExecutorReusesOnePoolForAThousandEpisodes) {
  // The pooled executor must dispatch arbitrarily many episodes through
  // the same parked workers — no spawn, no leak, no cross-episode
  // matching (episode tags) — and agree with the spawn executor's
  // observable outcome.
  const Schedule schedule = dissemination_barrier(8);
  ExecutorOptions pooled_options;
  pooled_options.mode = ExecutionMode::kPersistentPool;
  const ScheduleExecutor pooled(schedule, pooled_options);
  const auto zero = [](std::size_t, std::size_t) {
    return simmpi::Clock::duration::zero();
  };
  for (int episode = 0; episode < 1000; ++episode) {
    const auto exits = pooled.run_once(zero);
    ASSERT_EQ(exits.size(), schedule.ranks()) << "episode " << episode;
  }
  // The same executor's resilient path rides the same pool.
  const StallReport report = pooled.run_once_resilient(ResilienceOptions{});
  EXPECT_FALSE(report.stalled);
}

TEST(RankPool, WiderPoolLeavesExtraWorkersParked) {
  RankPool pool(8);
  Communicator comm(3);
  std::vector<int> hits(8, 0);
  simmpi::run_ranks(pool, comm, [&](RankContext& ctx) {
    hits[ctx.rank()] = 1;
  });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1, 0, 0, 0, 0, 0}));
}

TEST(RankPool, RankExceptionPropagatesAndPoolStaysUsable) {
  RankPool pool(4);
  Communicator comm(4);
  EXPECT_THROW(
      simmpi::run_ranks(pool, comm,
                        [&](RankContext& ctx) {
                          if (ctx.rank() == 2) {
                            throw std::runtime_error("rank 2 failed");
                          }
                        }),
      std::runtime_error);
  // The generation completed (all workers back at the parking lot);
  // the next generation runs normally on the same pool.
  std::vector<int> hits(4, 0);
  simmpi::run_ranks(pool, comm,
                    [&](RankContext& ctx) { hits[ctx.rank()] = 1; });
  EXPECT_EQ(hits, (std::vector<int>{1, 1, 1, 1}));
}

TEST(RankPool, RejectsGenerationsWiderThanThePool) {
  RankPool pool(2);
  Communicator comm(3);
  EXPECT_THROW(simmpi::run_ranks(pool, comm, [](RankContext&) {}), Error);
}

TEST(FaultParity, DropDecisionsMatchBetweenShardedAndGlobal) {
  // Fault decisions hash the per-channel send sequence, which no
  // amount of sharding or thread interleaving can change: identical
  // plans must swallow identical messages on both boards, run after
  // run. Sends are never awaited (half of them are dropped).
  const std::size_t p = 6;
  const std::size_t per_channel = 64;
  const FaultPlan plan = FaultPlan::parse("seed=17;drop=*>*@*:0.5");
  auto dropped_with = [&](BoardMode mode) {
    Communicator comm(p, simmpi::uniform_latency(), nullptr, mode);
    comm.set_fault_plan(plan);
    simmpi::run_ranks(comm, [&](RankContext& ctx) {
      for (std::size_t dst = 0; dst < p; ++dst) {
        if (dst == ctx.rank()) {
          continue;
        }
        for (std::size_t i = 0; i < per_channel; ++i) {
          ctx.issend(dst, static_cast<int>(i % 4));
        }
      }
    });
    return comm.dropped_messages();
  };
  const std::size_t sharded = dropped_with(BoardMode::kSharded);
  const std::size_t global = dropped_with(BoardMode::kGlobal);
  EXPECT_EQ(sharded, global);
  EXPECT_GT(sharded, 0u);
  // And rerunning either mode reproduces its count exactly.
  EXPECT_EQ(dropped_with(BoardMode::kSharded), sharded);
  EXPECT_EQ(dropped_with(BoardMode::kGlobal), global);
}

TEST(FaultParity, StallReportsMatchBetweenShardedAndGlobal) {
  // The full resilient pipeline (deadlines, resends, stall forensics)
  // on the same lossy plan: the StallReport — pending-edge set,
  // delivered logs, knowledge matrix — must be identical whichever
  // board the messages met on.
  const Schedule schedule = dissemination_barrier(4);
  const ScheduleExecutor executor(schedule);
  const FaultPlan plan = FaultPlan::parse("seed=5;drop=*>*@*:0.3");
  ResilienceOptions options;
  options.deadline_floor = 80ms;
  options.max_retries = 1;
  auto run_with = [&](BoardMode mode) {
    Communicator comm(schedule.ranks(), simmpi::uniform_latency(), nullptr,
                      mode);
    comm.set_fault_plan(plan);
    StallReport report;
    report.reset(executor.ranks(), executor.stage_count());
    simmpi::run_ranks(comm, [&](RankContext& ctx) {
      if (executor.execute_resilient(ctx, options, report)) {
        report.per_rank[ctx.rank()].finished = true;
      }
    });
    report.finalize();
    return std::pair<StallReport, std::size_t>(report,
                                               comm.dropped_messages());
  };
  const auto [sharded_report, sharded_drops] =
      run_with(BoardMode::kSharded);
  const auto [global_report, global_drops] = run_with(BoardMode::kGlobal);
  EXPECT_EQ(sharded_report, global_report);
  EXPECT_EQ(sharded_drops, global_drops);
  EXPECT_GT(sharded_drops, 0u);
}

}  // namespace
}  // namespace optibar
