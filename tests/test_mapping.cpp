// Tests for rank-to-core mappings (affinity control), including the
// round-robin placement that produces Figure 5's odd/even oscillation.
#include "topology/mapping.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/error.hpp"

namespace optibar {
namespace {

TEST(Mapping, BlockFillsNodeByNode) {
  const MachineSpec m = quad_cluster();
  const Mapping map = block_mapping(m, 10);
  // Ranks 0..7 on node 0, ranks 8..9 on node 1.
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_EQ(m.location(map.core_of(r)).node, 0u) << "rank " << r;
  }
  EXPECT_EQ(m.location(map.core_of(8)).node, 1u);
  EXPECT_EQ(m.location(map.core_of(9)).node, 1u);
}

TEST(Mapping, RoundRobinDealsAcrossAllocatedNodes) {
  const MachineSpec m = quad_cluster();
  // 10 ranks need ceil(10/8) = 2 nodes; round-robin alternates.
  const Mapping map = round_robin_mapping(m, 10);
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_EQ(m.location(map.core_of(r)).node, r % 2) << "rank " << r;
  }
}

TEST(Mapping, RoundRobinPaperReadingOfTwoNodeCase) {
  // "the 2-node (9 through 16 process) case" — P=9..16 must allocate
  // exactly 2 nodes on the dual quad-core cluster.
  const MachineSpec m = quad_cluster();
  for (std::size_t p = 9; p <= 16; ++p) {
    EXPECT_EQ(round_robin_mapping(m, p).nodes_used(m), 2u) << "P=" << p;
  }
  EXPECT_EQ(round_robin_mapping(m, 8).nodes_used(m), 1u);
  EXPECT_EQ(round_robin_mapping(m, 17).nodes_used(m), 3u);
}

TEST(Mapping, CoresAreDistinct) {
  const MachineSpec m = quad_cluster();
  for (std::size_t p : {1u, 7u, 8u, 9u, 31u, 64u}) {
    for (const Mapping& map :
         {block_mapping(m, p), round_robin_mapping(m, p)}) {
      std::set<std::size_t> cores(map.table().begin(), map.table().end());
      EXPECT_EQ(cores.size(), p) << "policy " << map.policy() << " P=" << p;
    }
  }
}

TEST(Mapping, FullMachineMappingsCoverAllCores) {
  const MachineSpec m = quad_cluster();
  const Mapping block = block_mapping(m, 64);
  const Mapping rr = round_robin_mapping(m, 64);
  std::set<std::size_t> block_cores(block.table().begin(), block.table().end());
  std::set<std::size_t> rr_cores(rr.table().begin(), rr.table().end());
  EXPECT_EQ(block_cores.size(), 64u);
  EXPECT_EQ(rr_cores.size(), 64u);
}

TEST(Mapping, RoundRobinWithinNodeSlotsFillInOrder) {
  const MachineSpec m = quad_cluster();
  const Mapping map = round_robin_mapping(m, 16);
  // Node 0 hosts ranks 0,2,4,...,14 at slots 0..7.
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(map.core_of(2 * k), k);
  }
  // Node 1 hosts ranks 1,3,...,15 at cores 8..15.
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(map.core_of(2 * k + 1), 8 + k);
  }
}

TEST(Mapping, CapacityOverflowThrows) {
  const MachineSpec m = quad_cluster();
  EXPECT_THROW(block_mapping(m, 65), Error);
  EXPECT_THROW(round_robin_mapping(m, 65), Error);
}

TEST(Mapping, ZeroRanksThrows) {
  const MachineSpec m = quad_cluster();
  EXPECT_THROW(block_mapping(m, 0), Error);
  EXPECT_THROW(round_robin_mapping(m, 0), Error);
}

TEST(Mapping, CustomMappingValidates) {
  const MachineSpec m = quad_cluster();
  const Mapping map = custom_mapping(m, {3, 1, 60});
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(map.core_of(2), 60u);
  EXPECT_THROW(custom_mapping(m, {0, 0}), Error);    // duplicate core
  EXPECT_THROW(custom_mapping(m, {99}), Error);      // out of range
  EXPECT_THROW(custom_mapping(m, {}), Error);        // empty
}

TEST(Mapping, CoreOfOutOfRangeThrows) {
  const MachineSpec m = quad_cluster();
  const Mapping map = block_mapping(m, 4);
  EXPECT_THROW(map.core_of(4), Error);
}

TEST(Mapping, PolicyNamesAreRecorded) {
  const MachineSpec m = quad_cluster();
  EXPECT_EQ(block_mapping(m, 2).policy(), "block");
  EXPECT_EQ(round_robin_mapping(m, 2).policy(), "round-robin");
  EXPECT_EQ(custom_mapping(m, {0}).policy(), "custom");
}

}  // namespace
}  // namespace optibar
