// Unit tests for the statistics toolkit, in particular the least-squares
// fit that turns Section IV-A measurements into O (intercept) and L
// (gradient) estimates.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace optibar {
namespace {

TEST(LeastSquares, RecoversExactLine) {
  const std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double v : x) {
    y.push_back(3.5 + 2.0 * v);
  }
  const LinearFit fit = least_squares(x, y);
  EXPECT_NEAR(fit.intercept, 3.5, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LeastSquares, NegativeSlope) {
  const std::vector<double> x{0, 1, 2, 3};
  const std::vector<double> y{10, 8, 6, 4};
  const LinearFit fit = least_squares(x, y);
  EXPECT_NEAR(fit.slope, -2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 10.0, 1e-12);
}

TEST(LeastSquares, NoisyDataApproximatesTruth) {
  Rng rng(99);
  std::vector<double> x;
  std::vector<double> y;
  const double intercept = 5.0e-5;
  const double slope = 5.0e-6;
  for (int i = 1; i <= 64; ++i) {
    x.push_back(i);
    y.push_back(intercept + slope * i + rng.normal(0.0, 1.0e-7));
  }
  const LinearFit fit = least_squares(x, y);
  EXPECT_NEAR(fit.intercept, intercept, 2.0e-6);
  EXPECT_NEAR(fit.slope, slope, 1.0e-7);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LeastSquares, ConstantYHasZeroSlopeAndPerfectR2) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{4, 4, 4};
  const LinearFit fit = least_squares(x, y);
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(LeastSquares, RejectsDegenerateInputs) {
  const std::vector<double> one{1.0};
  EXPECT_THROW(least_squares(one, one), Error);
  const std::vector<double> x{2.0, 2.0};
  const std::vector<double> y{1.0, 3.0};
  EXPECT_THROW(least_squares(x, y), Error);  // identical x values
  const std::vector<double> x2{1.0, 2.0};
  const std::vector<double> y3{1.0, 2.0, 3.0};
  EXPECT_THROW(least_squares(x2, y3), Error);  // length mismatch
}

TEST(Stats, MeanVarianceStddev) {
  const std::vector<double> v{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(v), 5.0);
  EXPECT_DOUBLE_EQ(variance(v), 4.0);
  EXPECT_DOUBLE_EQ(stddev(v), 2.0);
}

TEST(Stats, MedianOddEven) {
  const std::vector<double> odd{3, 1, 2};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);
}

TEST(Stats, PercentileSingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 99), 7.0);
}

TEST(Stats, PercentileRejectsBadInputs) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(percentile(v, -1), Error);
  EXPECT_THROW(percentile(v, 101), Error);
  EXPECT_THROW(percentile(std::vector<double>{}, 50), Error);
}

TEST(Stats, SummarizeAggregates) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(Stats, MeanOfEmptyThrows) {
  EXPECT_THROW(mean(std::vector<double>{}), Error);
}

}  // namespace
}  // namespace optibar
