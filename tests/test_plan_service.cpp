// Self-healing plan service: lifecycle transitions, the closed
// fault -> quarantine -> background repair -> probation -> healthy loop,
// permanent degradation, the warm-restartable plan store, the bounded
// cache, and the feedback-path validation. The multi-threaded soak
// smoke at the bottom is the tsan target.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "barrier/algorithms.hpp"
#include "core/library.hpp"
#include "core/plan_store.hpp"
#include "core/service_soak.hpp"
#include "netsim/engine.hpp"
#include "simmpi/executor.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/resilience.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

TopologyProfile cluster_profile(std::size_t ranks) {
  const MachineSpec machine = quad_cluster();
  return generate_profile(machine, round_robin_mapping(machine, ranks));
}

/// Options with the repair loop on and no backoff, so tests never sleep.
EngineOptions repair_options() {
  EngineOptions options;
  options.quarantine_threshold = 2;
  options.service.auto_repair = true;
  options.service.repair_backoff_seconds = 0.0;
  return options;
}

std::filesystem::path temp_store(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

TEST(PlanService, SuspectStateHealsOnSuccess) {
  BarrierLibrary library(cluster_profile(12));  // default threshold: 3
  const std::vector<std::size_t> subset{0, 1, 2, 3};
  library.subset_plan(subset);
  EXPECT_EQ(library.plan_state(subset), PlanState::kHealthy);

  EXPECT_FALSE(library.report_execution_failure(subset, "one stall"));
  EXPECT_EQ(library.plan_state(subset), PlanState::kSuspect);
  EXPECT_EQ(library.failure_count(subset), 1u);

  // A clean execution clears the suspicion and the counter.
  library.report_execution_success(subset);
  EXPECT_EQ(library.plan_state(subset), PlanState::kHealthy);
  EXPECT_EQ(library.failure_count(subset), 0u);
  const PlanHealthView health = library.plan_health(subset);
  EXPECT_EQ(health.failures, 0u);
  EXPECT_TRUE(health.reason.empty());
}

TEST(PlanService, ClosedLoopRepairPromotesThroughProbation) {
  // The acceptance loop: real injected faults produce StallReports, the
  // library quarantines, the background worker re-tunes against the
  // inflated evidence, the repaired plan beats the fallback under the
  // simulator and is promoted, and probation successes heal it.
  EngineOptions options = repair_options();
  options.service.probation_successes = 2;
  BarrierLibrary library(cluster_profile(8), options);
  const std::vector<std::size_t> subset{0, 1, 2, 3, 4, 5};
  const LibraryEntry& tuned = library.subset_plan(subset);
  const std::uint64_t tuned_generation = tuned.generation;

  const Schedule& schedule = tuned.stored.schedule;
  FaultPlan faults;
  for (std::size_t src = 0; src < schedule.ranks(); ++src) {
    const auto targets = schedule.targets_of(src, 0);
    if (!targets.empty()) {
      faults.drops.push_back({src, targets.front(), 0, 1.0, 0.0});
      break;
    }
  }
  ASSERT_EQ(faults.drops.size(), 1u);
  simmpi::ResilienceOptions resilience;
  resilience.max_retries = 0;
  resilience.deadline_floor = std::chrono::milliseconds(15);
  simmpi::ExecutorOptions pooled;
  pooled.mode = simmpi::ExecutionMode::kPersistentPool;
  const simmpi::ScheduleExecutor executor(schedule, pooled);
  // Loop on the cumulative counter, not the transient state: with a
  // zero backoff the worker can repair and promote before this thread
  // ever observes kQuarantined, and an extra injected failure would
  // then re-quarantine the probation plan.
  while (library.stats().quarantines == 0) {
    const simmpi::StallReport report =
        executor.run_once_resilient(resilience, faults);
    ASSERT_TRUE(report.stalled);
    library.report_execution_failure(subset, report);
  }
  EXPECT_EQ(library.stats().quarantines, 1u);

  // Drain the repair: the re-tuned plan must come back on probation.
  library.wait_for_repairs();
  ASSERT_EQ(library.plan_state(subset), PlanState::kProbation);
  const LibraryEntry& repaired = library.subset_plan(subset);
  EXPECT_FALSE(repaired.degraded);
  EXPECT_GT(repaired.generation, tuned_generation);
  const ServiceStats stats = library.stats();
  EXPECT_EQ(stats.repairs_started, 1u);
  EXPECT_EQ(stats.repairs_promoted, 1u);
  EXPECT_EQ(stats.repairs_failed, 0u);
  EXPECT_EQ(library.plan_health(subset).repair_attempts, 1u);

  // The promotion gate's claim holds independently: the served plan
  // simulates faster than the dissemination fallback it replaced.
  const TopologyProfile sub =
      library.profile().restrict_to(subset).symmetrized();
  SimOptions sim;
  const double served_time =
      simulate_mean_time(repaired.stored.schedule, sub, sim, 3);
  const double fallback_time =
      simulate_mean_time(dissemination_barrier(subset.size()), sub, sim, 3);
  EXPECT_LT(served_time, fallback_time);

  // Two clean executions end probation.
  library.report_execution_success(subset);
  EXPECT_EQ(library.plan_state(subset), PlanState::kProbation);
  library.report_execution_success(subset);
  EXPECT_EQ(library.plan_state(subset), PlanState::kHealthy);
  EXPECT_EQ(library.failure_count(subset), 0u);
}

TEST(PlanService, ProbationFailureAfterExhaustedRepairsDegrades) {
  EngineOptions options = repair_options();
  options.quarantine_threshold = 1;
  options.service.max_repair_attempts = 1;
  BarrierLibrary library(cluster_profile(8), options);
  const std::vector<std::size_t> subset{0, 1, 2, 3};
  library.subset_plan(subset);

  EXPECT_TRUE(library.report_execution_failure(subset, "injected stall"));
  library.wait_for_repairs();
  ASSERT_EQ(library.plan_state(subset), PlanState::kProbation);

  // The one allowed repair is spent; the next failure is terminal.
  EXPECT_TRUE(library.report_execution_failure(subset, "stalled again"));
  EXPECT_EQ(library.plan_state(subset), PlanState::kDegraded);
  EXPECT_TRUE(library.is_quarantined(subset));
  const LibraryEntry& served = library.subset_plan(subset);
  EXPECT_TRUE(served.degraded);
  EXPECT_EQ(served.stored.schedule, dissemination_barrier(subset.size()));
  EXPECT_NE(library.plan_health(subset).reason.find(
                "repairs exhausted after 1 attempt(s)"),
            std::string::npos);
  EXPECT_EQ(library.stats().permanent_degradations, 1u);

  // Terminal means terminal: more feedback changes nothing.
  EXPECT_TRUE(library.report_execution_failure(subset, "still bad"));
  library.report_execution_success(subset);
  library.wait_for_repairs();
  EXPECT_EQ(library.plan_state(subset), PlanState::kDegraded);
  EXPECT_EQ(library.stats().repairs_started, 1u);
}

TEST(PlanService, StoreRoundTripPreservesPlansAndHealth) {
  EngineOptions options;
  options.quarantine_threshold = 2;
  const TopologyProfile profile = cluster_profile(12);
  const auto path = temp_store("optibar_plan_store_roundtrip.txt");

  std::vector<std::size_t> healthy{0, 1, 2, 3};
  std::vector<std::size_t> suspect{4, 5, 6};
  std::vector<std::size_t> sick{0, 4, 8, 1, 5};
  Schedule healthy_schedule(1);
  double healthy_cost = 0.0;
  {
    BarrierLibrary library(profile, options);
    const LibraryEntry& entry = library.subset_plan(healthy);
    healthy_schedule = entry.stored.schedule;
    healthy_cost = entry.predicted_cost;
    library.subset_plan(suspect);
    library.report_execution_failure(suspect, "one stall");
    library.subset_plan(sick);
    library.report_execution_failure(sick, "first stall");
    library.report_execution_failure(sick, "second stall");
    ASSERT_TRUE(library.is_quarantined(sick));
    library.save_store(path.string());
    // Saving over an existing store goes through the atomic rename.
    library.save_store(path.string());
  }

  BarrierLibrary restarted(profile, options);
  restarted.load_store(path.string());
  EXPECT_EQ(restarted.cache_size(), 3u);
  EXPECT_EQ(restarted.stats().tunes, 0u);  // nothing re-tuned on load

  const LibraryEntry& entry = restarted.subset_plan(healthy);
  EXPECT_EQ(entry.stored.schedule, healthy_schedule);
  EXPECT_DOUBLE_EQ(entry.predicted_cost, healthy_cost);
  EXPECT_FALSE(entry.degraded);
  EXPECT_EQ(restarted.plan_state(healthy), PlanState::kHealthy);

  // The suspect entry resumes one failure short of quarantine.
  EXPECT_EQ(restarted.plan_state(suspect), PlanState::kSuspect);
  EXPECT_EQ(restarted.failure_count(suspect), 1u);
  EXPECT_TRUE(restarted.report_execution_failure(suspect, "again"));
  EXPECT_TRUE(restarted.is_quarantined(suspect));

  // The quarantined entry resumes quarantined, fallback and reason intact.
  EXPECT_EQ(restarted.plan_state(sick), PlanState::kQuarantined);
  EXPECT_EQ(restarted.failure_count(sick), 2u);
  const LibraryEntry& fallback = restarted.subset_plan(sick);
  EXPECT_TRUE(fallback.degraded);
  EXPECT_EQ(fallback.stored.schedule, dissemination_barrier(sick.size()));
  EXPECT_NE(restarted.plan_health(sick).reason.find("second stall"),
            std::string::npos);
  EXPECT_EQ(restarted.stats().tunes, 0u);
  std::filesystem::remove(path);
}

TEST(PlanService, LoadedQuarantineReenqueuesItsRepair) {
  const TopologyProfile profile = cluster_profile(8);
  const auto path = temp_store("optibar_plan_store_reenqueue.txt");
  const std::vector<std::size_t> subset{0, 1, 2, 3, 4};
  {
    EngineOptions options;  // no auto_repair: quarantine stays put
    options.quarantine_threshold = 1;
    BarrierLibrary library(profile, options);
    library.subset_plan(subset);
    EXPECT_TRUE(library.report_execution_failure(subset, "stall"));
    library.wait_for_repairs();  // immediate: no worker configured
    EXPECT_EQ(library.plan_state(subset), PlanState::kQuarantined);
    library.save_store(path.string());
  }

  // The restarted service has the repair loop on: loading the store
  // picks the quarantined plan up and repairs it in the background.
  EngineOptions options = repair_options();
  options.quarantine_threshold = 1;
  BarrierLibrary restarted(profile, options);
  restarted.load_store(path.string());
  restarted.wait_for_repairs();
  EXPECT_EQ(restarted.plan_state(subset), PlanState::kProbation);
  EXPECT_FALSE(restarted.subset_plan(subset).degraded);
  EXPECT_GE(restarted.stats().repairs_promoted, 1u);
  std::filesystem::remove(path);
}

TEST(PlanService, LoadStoreRequiresAnEmptyLibrary) {
  const TopologyProfile profile = cluster_profile(8);
  const auto path = temp_store("optibar_plan_store_nonempty.txt");
  {
    BarrierLibrary library(profile);
    library.subset_plan({0, 1, 2});
    library.save_store(path.string());
  }
  BarrierLibrary library(profile);
  library.subset_plan({0, 1});  // no longer empty
  EXPECT_THROW(library.load_store(path.string()), Error);
  std::filesystem::remove(path);
}

TEST(PlanService, StoreRejectsARanksMismatch) {
  const auto path = temp_store("optibar_plan_store_ranks.txt");
  {
    BarrierLibrary library(cluster_profile(12));
    library.subset_plan({0, 1, 2});
    library.save_store(path.string());
  }
  BarrierLibrary smaller(cluster_profile(8));
  EXPECT_THROW(smaller.load_store(path.string()), IoError);
  EXPECT_EQ(smaller.cache_size(), 0u);
  std::filesystem::remove(path);
}

TEST(PlanService, CorruptedAndTruncatedStoresThrowIoError) {
  const TopologyProfile profile = cluster_profile(8);
  const auto path = temp_store("optibar_plan_store_corrupt.txt");
  std::string saved;
  {
    EngineOptions options;
    options.quarantine_threshold = 1;
    BarrierLibrary library(profile, options);
    library.subset_plan({0, 1, 2, 3});
    library.report_execution_failure({0, 1, 2, 3}, "multi\nline\nreason");
    library.save_store(path.string());
    std::ifstream in(path);
    std::ostringstream all;
    all << in.rdbuf();
    saved = all.str();
  }
  ASSERT_FALSE(saved.empty());

  const auto expect_rejected = [&](const std::string& text) {
    std::ofstream out(path, std::ios::trunc);
    out << text;
    out.close();
    BarrierLibrary fresh(profile);
    EXPECT_THROW(fresh.load_store(path.string()), IoError) << text.size();
    EXPECT_EQ(fresh.cache_size(), 0u);
    // A rejected load leaves a perfectly usable library behind.
    EXPECT_FALSE(fresh.subset_plan({0, 1}).degraded);
  };

  expect_rejected("");                          // empty file
  expect_rejected("not-a-plan-store v1\n");     // wrong magic
  expect_rejected(saved.substr(0, saved.size() / 2));  // truncated
  expect_rejected(saved.substr(0, saved.size() - 4));  // missing "end"

  // An unknown state token is rejected, not defaulted.
  std::string tampered = saved;
  const auto pos = tampered.find("state quarantined");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, std::string("state quarantined").size(),
                   "state wounded");
  expect_rejected(tampered);

  // The round trip itself preserves the escaped multi-line reason.
  std::ofstream out(path, std::ios::trunc);
  out << saved;
  out.close();
  EngineOptions options;
  options.quarantine_threshold = 1;
  BarrierLibrary strict(profile, options);
  strict.load_store(path.string());
  EXPECT_NE(strict.plan_health({0, 1, 2, 3}).reason.find("multi\nline"),
            std::string::npos);
  std::filesystem::remove(path);
}

TEST(PlanService, StoreParserRejectsRetuningAndDuplicates) {
  const StoredSchedule plan{dissemination_barrier(3), {}};
  PlanStoreRecord record;
  record.subset = {0, 1, 2};
  record.plan = plan;
  record.predicted_cost = 1e-6;

  {
    // kRetuning never round-trips: save maps it to kQuarantined...
    PlanStoreRecord retuning = record;
    retuning.state = PlanState::kRetuning;
    std::ostringstream os;
    save_plan_store(os, 8, {retuning});
    std::istringstream is(os.str());
    const auto loaded = load_plan_store(is, 8);
    ASSERT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded[0].state, PlanState::kQuarantined);
    // ...and a hand-written "retuning" token is rejected on load.
    std::string text = os.str();
    const auto pos = text.find("state quarantined");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, std::string("state quarantined").size(),
                 "state retuning");
    std::istringstream bad(text);
    EXPECT_THROW(load_plan_store(bad, 8), IoError);
  }
  {
    // Two records for the same subset cannot both be authoritative.
    std::ostringstream os;
    save_plan_store(os, 8, {record, record});
    std::istringstream is(os.str());
    EXPECT_THROW(load_plan_store(is, 8), IoError);
  }
}

TEST(PlanService, BoundedCacheEvictsSmallestSubsetsFirst) {
  EngineOptions options;
  options.service.max_cache_entries = 2;
  BarrierLibrary library(cluster_profile(16), options);

  const std::vector<std::size_t> big{0, 1, 2, 3, 4, 5, 6, 7};
  const std::vector<std::size_t> small_a{0, 1};
  const std::vector<std::size_t> small_b{2, 3};
  library.subset_plan(big);
  library.subset_plan(small_a);
  EXPECT_EQ(library.cache_size(), 2u);

  // Inserting a third entry evicts the cheapest-to-retune (smallest)
  // subset, never the one just inserted.
  library.subset_plan(small_b);
  EXPECT_EQ(library.cache_size(), 2u);
  EXPECT_EQ(library.stats().evictions, 1u);

  std::size_t tunes = library.stats().tunes;
  library.subset_plan(big);  // survived: costliest to rebuild
  EXPECT_EQ(library.stats().tunes, tunes);
  library.subset_plan(small_b);  // survived: was the keep key
  EXPECT_EQ(library.stats().tunes, tunes);
  library.subset_plan(small_a);  // evicted: re-tunes on demand
  EXPECT_EQ(library.stats().tunes, tunes + 1);
}

TEST(PlanService, MeasuredLatencyValidationRejectsGarbage) {
  BarrierLibrary library(cluster_profile(8));
  const std::vector<std::size_t> subset{0, 1, 2, 3};
  library.subset_plan(subset);

  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(library.report_measured_latency(subset, 0, 1, nan), Error);
  EXPECT_THROW(library.report_measured_latency(subset, 0, 1, inf), Error);
  EXPECT_THROW(library.report_measured_latency(subset, 0, 1, -inf), Error);
  EXPECT_THROW(library.report_measured_latency(subset, 0, 1, -1e-6), Error);
  EXPECT_THROW(library.report_measured_latency(subset, 1, 1, 1e-6), Error);
  EXPECT_THROW(library.report_measured_latency(subset, 4, 0, 1e-6), Error);
  EXPECT_THROW(library.report_measured_latency(subset, 0, 4, 1e-6), Error);
  // Feedback for a subset that never got a plan is a caller bug.
  EXPECT_THROW(library.report_measured_latency({4, 5}, 0, 1, 1e-6), Error);
  EXPECT_EQ(library.stats().latency_reports, 0u);

  library.report_measured_latency(subset, 0, 1, 1e-6);
  EXPECT_EQ(library.stats().latency_reports, 1u);
  EXPECT_GE(library.plan_health(subset).observed_drift, 0.0);
}

TEST(PlanService, DriftBeyondThresholdTriggersABackgroundRetune) {
  EngineOptions options = repair_options();
  options.service.drift_alpha = 1.0;  // converge on one observation
  options.service.drift_retune_threshold = 0.2;
  BarrierLibrary library(cluster_profile(8), options);
  const std::vector<std::size_t> subset{0, 1, 2, 3, 4, 5};
  const LibraryEntry& tuned = library.subset_plan(subset);
  const std::uint64_t tuned_generation = tuned.generation;
  const TopologyProfile sub = library.profile().restrict_to(subset);

  // Make every link of the schedule's busiest sender ten times slower
  // than profiled (drift 9.0 >> 0.2): a re-tune that demotes the hub
  // strictly beats the prior plan, so the amortization rule promotes.
  const Schedule& schedule = tuned.stored.schedule;
  std::vector<std::size_t> sends(subset.size(), 0);
  for (std::size_t stage = 0; stage < schedule.stage_count(); ++stage) {
    for (std::size_t s = 0; s < subset.size(); ++s) {
      sends[s] += schedule.targets_of(s, stage).size();
    }
  }
  std::size_t hub = 0;
  for (std::size_t s = 1; s < subset.size(); ++s) {
    if (sends[s] > sends[hub]) hub = s;
  }
  // Each report can kick off a repair before the full perturbation is
  // visible, and a partial view may (correctly) decline the re-tune;
  // keep reporting rounds until one repair sees enough to promote.
  for (int round = 0; round < 10 && library.stats().drift_retunes == 0;
       ++round) {
    for (std::size_t j = 0; j < subset.size(); ++j) {
      if (j == hub) continue;
      library.report_measured_latency(subset, hub, j, 10.0 * sub.l(hub, j));
      library.report_measured_latency(subset, j, hub, 10.0 * sub.l(j, hub));
    }
    library.wait_for_repairs();
  }
  const ServiceStats stats = library.stats();
  EXPECT_GE(stats.repairs_started, 1u);
  EXPECT_GE(stats.drift_retunes, 1u);
  EXPECT_EQ(stats.repairs_failed, 0u);  // declined drift jobs never "fail"
  // Drift repairs never demote the plan: it keeps serving (healthy, no
  // probation) and the promoted successor is a fresh generation.
  EXPECT_EQ(library.plan_state(subset), PlanState::kHealthy);
  const LibraryEntry& promoted = library.subset_plan(subset);
  EXPECT_FALSE(promoted.degraded);
  EXPECT_GT(promoted.generation, tuned_generation);
}

TEST(PlanService, MovedLibraryKeepsItsRepairWorker) {
  EngineOptions options = repair_options();
  options.quarantine_threshold = 1;
  BarrierLibrary original(cluster_profile(8), options);
  const std::vector<std::size_t> subset{0, 1, 2, 3};
  original.subset_plan(subset);

  BarrierLibrary library(std::move(original));
  EXPECT_TRUE(library.report_execution_failure(subset, "stall"));
  library.wait_for_repairs();
  EXPECT_EQ(library.plan_state(subset), PlanState::kProbation);
  EXPECT_EQ(library.stats().repairs_promoted, 1u);
}

TEST(PlanService, StatsCountTheBasicTraffic) {
  BarrierLibrary library(cluster_profile(8));
  library.wait_for_repairs();  // immediate when auto_repair is off
  const ServiceStats zero = library.stats();
  EXPECT_EQ(zero.plan_requests, 0u);
  EXPECT_EQ(zero.tunes, 0u);

  const std::vector<std::size_t> subset{0, 1, 2};
  library.subset_plan(subset);
  library.subset_plan(subset);
  library.report_execution_success(subset);
  library.report_execution_failure(subset, "stall");
  const ServiceStats stats = library.stats();
  EXPECT_EQ(stats.plan_requests, 2u);
  EXPECT_EQ(stats.tunes, 1u);
  EXPECT_EQ(stats.success_reports, 1u);
  EXPECT_EQ(stats.stall_reports, 1u);
  EXPECT_EQ(stats.quarantines, 0u);
}

TEST(PlanService, MixedSoakRunsCleanWithRepairsLive) {
  // The tsan target: concurrent clients race lookups, latency reports,
  // successes and injected stalls against the background repair worker.
  EngineOptions options = repair_options();
  options.threads = 2;
  BarrierLibrary library(cluster_profile(16), options);

  SoakOptions soak;
  soak.operations = 20000;
  soak.clients = 4;
  soak.subsets = 6;
  soak.max_subset = 6;
  soak.seed = 7;
  const SoakResult result = run_service_soak(library, soak);
  EXPECT_EQ(result.operations, 20000u);
  EXPECT_GT(result.ops_per_second, 0.0);
  EXPECT_LE(result.p50_ns, result.p99_ns);
  EXPECT_EQ(result.dropped_reports, 0u);  // unbounded cache: no races lost
  EXPECT_GE(result.stats.plan_requests, 1u);
  EXPECT_GE(result.cache_size, soak.subsets);
  EXPECT_FALSE(result.describe().empty());

  // Whatever the soak quarantined, the worker finished dealing with it.
  EXPECT_EQ(result.stats.repairs_started,
            result.stats.repairs_promoted + result.stats.repairs_failed);
}

}  // namespace
}  // namespace optibar
