// Tests for the work-stealing thread pool underneath the parallel
// tuning engine.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

namespace optibar {
namespace {

TEST(ThreadPool, WidthOneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.width(), 1u);
  std::atomic<int> runs{0};
  ThreadPool::TaskGroup group(pool);
  group.run([&] { ++runs; });
  group.run([&] { ++runs; });
  group.wait();
  EXPECT_EQ(runs.load(), 2);
}

TEST(ThreadPool, WidthZeroResolvesToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.width(), 1u);
}

TEST(ThreadPool, ParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10'000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForHandlesFewerItemsThanWorkers) {
  ThreadPool pool(8);
  std::atomic<int> sum{0};
  pool.parallel_for(3, [&](std::size_t i) {
    sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 3);
  pool.parallel_for(0, [&](std::size_t) { ADD_FAILURE(); });
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  // Inner fan-outs run on the same pool; TaskGroup::wait helps, so this
  // must finish even when every worker is inside an outer task.
  ThreadPool pool(4);
  std::atomic<int> leaves{0};
  pool.parallel_for(16, [&](std::size_t) {
    pool.parallel_for(16, [&](std::size_t) { ++leaves; });
  });
  EXPECT_EQ(leaves.load(), 16 * 16);
}

TEST(ThreadPool, TaskGroupPropagatesFirstError) {
  ThreadPool pool(4);
  ThreadPool::TaskGroup group(pool);
  for (int i = 0; i < 8; ++i) {
    group.run([i] {
      if (i % 2 == 0) {
        throw std::runtime_error("task failed");
      }
    });
  }
  EXPECT_THROW(group.wait(), std::runtime_error);
}

TEST(ThreadPool, ParallelForPropagatesBodyError) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // The pool must stay usable after a failed loop.
  std::atomic<int> ok{0};
  pool.parallel_for(10, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 10);
}

TEST(ThreadPool, ManySmallLoopsReuseTheSamePool) {
  ThreadPool pool(3);
  std::atomic<long> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(64, [&](std::size_t i) {
      total += static_cast<long>(i);
    });
  }
  EXPECT_EQ(total.load(), 50L * (64L * 63L / 2));
}

TEST(ThreadPool, ExternalThreadsCanSubmitConcurrently) {
  ThreadPool pool(4);
  std::atomic<int> runs{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      pool.parallel_for(200, [&](std::size_t) { ++runs; });
    });
  }
  for (auto& client : clients) {
    client.join();
  }
  EXPECT_EQ(runs.load(), 4 * 200);
}

}  // namespace
}  // namespace optibar
