// Tests for the Eq. 1/2 step costs and the layered critical-path
// prediction of Section VI.
#include "barrier/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "barrier/algorithms.hpp"
#include "netsim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

/// Uniform profile: O = o everywhere off-diagonal, O_ii = self,
/// L = l everywhere off-diagonal.
TopologyProfile uniform_profile(std::size_t p, double o, double l,
                                double self) {
  Matrix<double> om(p, p, o);
  Matrix<double> lm(p, p, l);
  for (std::size_t i = 0; i < p; ++i) {
    om(i, i) = self;
    lm(i, i) = 0.0;
  }
  return TopologyProfile(std::move(om), std::move(lm));
}

TEST(StepCost, EmptyTargetSetIsFree) {
  const TopologyProfile p = uniform_profile(4, 1e-5, 1e-6, 1e-6);
  EXPECT_DOUBLE_EQ(step_cost(p, 0, {}, false), 0.0);
  EXPECT_DOUBLE_EQ(step_cost(p, 0, {}, true), 0.0);
}

TEST(StepCost, Equation1IsMaxOverheadPlusLatencySum) {
  // Heterogeneous O: targets with different startup costs.
  Matrix<double> o(3, 3, 0.0);
  o(0, 1) = 2e-5;
  o(0, 2) = 5e-5;
  Matrix<double> l(3, 3, 0.0);
  l(0, 1) = 1e-6;
  l(0, 2) = 3e-6;
  const TopologyProfile p(std::move(o), std::move(l));
  // t(0, {1,2}) = max(2e-5, 5e-5) + (1e-6 + 3e-6)
  EXPECT_DOUBLE_EQ(step_cost(p, 0, {1, 2}, false), 5e-5 + 4e-6);
}

TEST(StepCost, Equation2UsesSelfOverhead) {
  const TopologyProfile p = uniform_profile(4, 1e-5, 1e-6, 2e-6);
  // t(0, {1,2,3}) = O_00 + 3 * L = 2e-6 + 3e-6
  EXPECT_DOUBLE_EQ(step_cost(p, 0, {1, 2, 3}, true), 2e-6 + 3e-6);
}

TEST(StepCost, Equation2IsCheaperWhenReceiversWait) {
  // The whole point of Eq. 2: the per-destination startup is replaced by
  // the (smaller) software-only overhead.
  const TopologyProfile p = uniform_profile(4, 5e-5, 1e-6, 2e-6);
  EXPECT_LT(step_cost(p, 0, {1, 2}, true), step_cost(p, 0, {1, 2}, false));
}

TEST(Predict, SingleSignalCost) {
  const TopologyProfile p = uniform_profile(2, 1e-5, 1e-6, 1e-6);
  Schedule s(2);
  StageMatrix m(2, 2, 0);
  m(0, 1) = 1;
  s.append_stage(std::move(m));
  // Sender batch O + L, plus receiver processing L: 1.2e-5.
  EXPECT_DOUBLE_EQ(predicted_time(s, p), 1.2e-5);
}

TEST(Predict, StagesAccumulateAlongDependencies) {
  const TopologyProfile p = uniform_profile(3, 1e-5, 1e-6, 1e-6);
  // 0 -> 1, then 1 -> 2: two sequential hops.
  Schedule s(3);
  StageMatrix s0(3, 3, 0);
  s0(0, 1) = 1;
  StageMatrix s1(3, 3, 0);
  s1(1, 2) = 1;
  s.append_stage(std::move(s0));
  s.append_stage(std::move(s1));
  EXPECT_DOUBLE_EQ(predicted_time(s, p), 2 * 1.2e-5);
}

TEST(Predict, ParallelSignalsDoNotAccumulate) {
  const TopologyProfile p = uniform_profile(4, 1e-5, 1e-6, 1e-6);
  // 0->1 and 2->3 concurrently cost the same as one signal.
  Schedule s(4);
  StageMatrix m(4, 4, 0);
  m(0, 1) = 1;
  m(2, 3) = 1;
  s.append_stage(std::move(m));
  EXPECT_DOUBLE_EQ(predicted_time(s, p), 1.2e-5);
}

TEST(Predict, FanOutPaysLatencyPerMessage) {
  const TopologyProfile p = uniform_profile(5, 1e-5, 1e-6, 1e-6);
  Schedule s(5);
  StageMatrix m(5, 5, 0);
  for (std::size_t j = 1; j < 5; ++j) {
    m(0, j) = 1;
  }
  s.append_stage(std::move(m));
  // Eq. 1 sender batch (max O + 4L) plus one receive processing L.
  EXPECT_DOUBLE_EQ(predicted_time(s, p), 1e-5 + 4e-6 + 1e-6);
}

TEST(Predict, AwaitedStagesUseEquation2) {
  const TopologyProfile p = uniform_profile(3, 5e-5, 1e-6, 2e-6);
  Schedule s(3);
  StageMatrix m(3, 3, 0);
  m(0, 1) = 1;
  m(0, 2) = 1;
  s.append_stage(std::move(m));
  PredictOptions opts;
  opts.awaited_stages = {true};
  // Eq. 2 send batch (O_ii + 2L) plus one receive processing L.
  EXPECT_DOUBLE_EQ(predicted_time(s, p, opts), 2e-6 + 2e-6 + 1e-6);
  EXPECT_DOUBLE_EQ(predicted_time(s, p), 5e-5 + 2e-6 + 1e-6);
}

TEST(Predict, EntrySkewDelaysCriticalPathOrigin) {
  const TopologyProfile p = uniform_profile(2, 1e-5, 1e-6, 1e-6);
  Schedule s(2);
  StageMatrix a(2, 2, 0);
  a(1, 0) = 1;
  StageMatrix b(2, 2, 0);
  b(0, 1) = 1;
  s.append_stage(std::move(a));
  s.append_stage(std::move(b));
  // Rank 1 arrives late; the barrier cost from last arrival stays 2 hops.
  PredictOptions opts;
  opts.entry_times = {0.0, 1.0};
  const Prediction pred = predict(s, p, opts);
  // NEAR, not EQ: subtracting the 1.0 s skew cancels low-order bits.
  EXPECT_NEAR(pred.critical_path, 2 * 1.2e-5, 1e-12);
  EXPECT_NEAR(pred.rank_completion[1], 1.0 + 2 * 1.2e-5, 1e-12);
}

TEST(Predict, RankCompletionAndStageIncrementsAreConsistent) {
  const TopologyProfile p =
      generate_profile(quad_cluster(), 16, GenerateOptions{});
  const Schedule s = tree_barrier(16);
  const Prediction pred = predict(s, p);
  ASSERT_EQ(pred.stage_increment.size(), s.stage_count());
  double total = 0.0;
  for (double inc : pred.stage_increment) {
    EXPECT_GE(inc, 0.0);
    total += inc;
  }
  EXPECT_NEAR(total, pred.critical_path, 1e-12);
  for (double c : pred.rank_completion) {
    EXPECT_LE(c, pred.critical_path + 1e-15);
  }
}

TEST(Predict, ReceiverProcessingCanBeDisabled) {
  // Sender-only reading of the model: the fan-in costs nothing at the
  // receiver, so the linear gather collapses to a single batch cost.
  const TopologyProfile p = uniform_profile(5, 1e-5, 1e-6, 1e-6);
  Schedule s(5);
  StageMatrix m(5, 5, 0);
  for (std::size_t i = 1; i < 5; ++i) {
    m(i, 0) = 1;
  }
  s.append_stage(std::move(m));
  PredictOptions sender_only;
  sender_only.receiver_processing = false;
  EXPECT_DOUBLE_EQ(predicted_time(s, p, sender_only), 1.1e-5);
  // With receiver processing the root serializes 4 completions.
  EXPECT_DOUBLE_EQ(predicted_time(s, p), 1.1e-5 + 4e-6);
}

TEST(Predict, EgressContentionSerializesCoLocatedSenders) {
  // Two co-located ranks each send one remote message in one stage;
  // with the contention term the later one is bounded by the sum of
  // both marginal latencies.
  const TopologyProfile p = uniform_profile(4, 1e-5, 4e-6, 1e-6);
  Schedule s(4);
  StageMatrix m(4, 4, 0);
  m(0, 2) = 1;
  m(1, 3) = 1;
  s.append_stage(std::move(m));
  PredictOptions contended;
  contended.egress_resource_of = {0, 0, 1, 1};
  // Free egress: (max O + L) send batch + L receive processing.
  EXPECT_DOUBLE_EQ(predicted_time(s, p), 1e-5 + 4e-6 + 4e-6);
  // Contended: max O + (L + L) egress serialization + receive L.
  EXPECT_DOUBLE_EQ(predicted_time(s, p, contended), 1e-5 + 8e-6 + 4e-6);
}

TEST(Predict, LocalMessagesIgnoreEgressTerm) {
  const TopologyProfile p = uniform_profile(4, 1e-5, 4e-6, 1e-6);
  Schedule s(4);
  StageMatrix m(4, 4, 0);
  m(0, 1) = 1;
  m(2, 3) = 1;
  s.append_stage(std::move(m));
  PredictOptions contended;
  contended.egress_resource_of = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(predicted_time(s, p, contended), predicted_time(s, p));
}

TEST(Predict, ContentionTermTracksContendedSimulation) {
  // The §VI-A augmentation pays off: with the contention term, the
  // predictor's ordering matches the contended simulator's for the
  // algorithm set (dissemination penalized, tree less, hybrid least).
  const MachineSpec m = quad_cluster();
  const std::size_t p = 32;
  const Mapping mapping = round_robin_mapping(m, p);
  const TopologyProfile profile =
      generate_profile(m, mapping, GenerateOptions{});
  PredictOptions contended_pred;
  contended_pred.egress_resource_of = node_egress_resources(m, mapping);
  SimOptions contended_sim;
  contended_sim.egress_resource_of = contended_pred.egress_resource_of;

  // The term must bite (substantial penalty on high-fan-out stages)...
  const double diss_plain = predicted_time(dissemination_barrier(p), profile);
  const double diss_cont =
      predicted_time(dissemination_barrier(p), profile, contended_pred);
  EXPECT_GT(diss_cont / diss_plain, 1.8);

  // ...and the contended predictor must order the algorithms exactly
  // as the contended simulator does.
  std::vector<double> predicted;
  std::vector<double> simulated;
  for (const Schedule& s :
       {dissemination_barrier(p), tree_barrier(p), linear_barrier(p),
        pairwise_exchange_barrier(p)}) {
    predicted.push_back(predicted_time(s, profile, contended_pred));
    simulated.push_back(
        simulate(s, profile, contended_sim).barrier_time());
  }
  for (std::size_t a = 0; a < predicted.size(); ++a) {
    for (std::size_t b = 0; b < predicted.size(); ++b) {
      if (predicted[a] < 0.8 * predicted[b]) {
        EXPECT_LT(simulated[a], simulated[b]) << a << " vs " << b;
      }
    }
  }
}

TEST(Predict, EgressMapSizeMismatchThrows) {
  const TopologyProfile p = uniform_profile(4, 1e-5, 4e-6, 1e-6);
  PredictOptions bad;
  bad.egress_resource_of = {0, 1};
  EXPECT_THROW(predicted_time(tree_barrier(4), p, bad), Error);
}

TEST(Predict, MismatchedProfileThrows) {
  const TopologyProfile p = uniform_profile(3, 1e-5, 1e-6, 1e-6);
  EXPECT_THROW(predicted_time(tree_barrier(4), p), Error);
}

// ---- Model-level shape properties on the paper's machines ----

class PredictShape : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PredictShape, TreeBeatsLinearAtScaleOnQuadCluster) {
  const std::size_t p = GetParam();
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, p), GenerateOptions{});
  const double tree = predicted_time(tree_barrier(p), profile);
  const double linear = predicted_time(linear_barrier(p), profile);
  if (p >= 32) {
    EXPECT_LT(tree, linear) << "P=" << p;
  }
}

TEST_P(PredictShape, PredictionsArePositiveAndFinite) {
  const std::size_t p = GetParam();
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, p), GenerateOptions{});
  for (const Schedule& s :
       {linear_barrier(p), dissemination_barrier(p), tree_barrier(p)}) {
    const double t = predicted_time(s, profile);
    EXPECT_GT(t, 0.0);
    EXPECT_TRUE(std::isfinite(t));
  }
}

INSTANTIATE_TEST_SUITE_P(RankSweep, PredictShape,
                         ::testing::Values(2, 4, 8, 9, 16, 24, 32, 40, 56,
                                           64));

TEST(PredictShape, DisseminationFavorsPowersOfTwoOnQuadCluster) {
  // "the dissemination algorithm favors problem sizes which are powers
  //  of 2, by construction" — visible as a dip at 32 vs 31/33.
  const MachineSpec m = quad_cluster();
  auto diss_cost = [&](std::size_t p) {
    const TopologyProfile profile =
        generate_profile(m, round_robin_mapping(m, p), GenerateOptions{});
    return predicted_time(dissemination_barrier(p), profile);
  };
  EXPECT_LT(diss_cost(32), diss_cost(33));
  EXPECT_LE(diss_cost(32), diss_cost(31));
}

}  // namespace
}  // namespace optibar
