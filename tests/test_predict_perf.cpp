// Throughput smoke test for the compiled cost-model kernel (CTest label
// `perf`). Asserts the compiled path is at least as fast as the
// reference on a fixed workload — a deliberately loose 1.0x bound (the
// observed ratio is an order of magnitude) so scheduler noise and
// sanitizer builds can never flake it — and that both paths agree bit
// for bit while doing so.
#include <gtest/gtest.h>

#include <chrono>

#include "barrier/algorithms.hpp"
#include "barrier/compiled_schedule.hpp"
#include "barrier/cost_model.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "netsim/engine.hpp"
#include "topology/mapping.hpp"

namespace optibar {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

TEST(PredictPerf, CompiledKernelIsNotSlowerThanReference) {
  // Fixed workload: the hex cluster at P=120 with a dissemination
  // pattern (the densest classic schedule) and full options.
  const MachineSpec machine = hex_cluster();
  const Mapping mapping = round_robin_mapping(machine, 120);
  const TopologyProfile profile = generate_profile(machine, mapping);
  const Schedule schedule = dissemination_barrier(120);
  PredictOptions options;
  options.egress_resource_of = node_egress_resources(machine, mapping);
  const int iterations = 60;

  const Prediction expected = predict_reference(schedule, profile, options);

  // Warm both paths (page-in, branch predictors, workspace growth).
  CompiledSchedule compiled(schedule, profile);
  PredictWorkspace workspace;
  (void)predicted_time(compiled, options, workspace);
  (void)predict_reference(schedule, profile, options);

  const auto ref_start = std::chrono::steady_clock::now();
  double ref_sink = 0.0;
  for (int i = 0; i < iterations; ++i) {
    ref_sink += predict_reference(schedule, profile, options).critical_path;
  }
  const double reference_seconds = seconds_since(ref_start);

  const auto compiled_start = std::chrono::steady_clock::now();
  double compiled_sink = 0.0;
  for (int i = 0; i < iterations; ++i) {
    compiled_sink += predicted_time(compiled, options, workspace);
  }
  const double compiled_seconds = seconds_since(compiled_start);

  EXPECT_EQ(compiled_sink, ref_sink);
  Prediction out;
  predict_into(compiled, options, workspace, out);
  EXPECT_EQ(out.critical_path, expected.critical_path);
  EXPECT_EQ(out.rank_completion, expected.rank_completion);

  EXPECT_LE(compiled_seconds, reference_seconds)
      << "compiled kernel slower than reference: " << compiled_seconds
      << " s vs " << reference_seconds << " s over " << iterations
      << " evaluations";
}

}  // namespace
}  // namespace optibar
