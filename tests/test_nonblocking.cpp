// Tests for the handle-based nonblocking execution lifecycle:
// post/test/wait on the barrier and collective executors, the
// equivalence wait(post()) == execute(), ExecutorOptions validation,
// elapsed-progress-time resilient handles, and Request::test()-style
// polling under fault-injected delay/duplicate plans on both board
// modes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "barrier/algorithms.hpp"
#include "collective/executor.hpp"
#include "collective/generators.hpp"
#include "collective/schedule.hpp"
#include "simmpi/executor.hpp"
#include "simmpi/executor_options.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/runtime.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

using namespace std::chrono_literals;
using simmpi::BoardMode;
using simmpi::Communicator;
using simmpi::ExecutionMode;
using simmpi::ExecutorOptions;
using simmpi::RankContext;
using simmpi::RankPool;
using simmpi::ScheduleExecutor;

// ---- barrier lifecycle -------------------------------------------------

// The barrier property: no rank may complete its episode before every
// rank has posted. Counting posts with an atomic makes the check
// scheduler-independent.
void expect_barrier_synchronizes(const ScheduleExecutor& executor,
                                 BoardMode board, bool poll) {
  const std::size_t p = executor.ranks();
  Communicator comm(p, simmpi::uniform_latency(), nullptr, board);
  std::atomic<std::size_t> entered{0};
  std::atomic<std::size_t> violations{0};
  simmpi::run_ranks(comm, [&](RankContext& ctx) {
    entered.fetch_add(1);
    ScheduleExecutor::EpisodeHandle handle = executor.post(ctx);
    if (poll) {
      while (!executor.test(handle)) {
        std::this_thread::yield();
      }
    } else {
      executor.wait(handle);
    }
    if (!handle.done() || entered.load() != p) {
      violations.fetch_add(1);
    }
  });
  EXPECT_EQ(violations.load(), 0u);
}

TEST(NonblockingBarrier, WaitDrivesEveryRankThroughTheBarrier) {
  const ScheduleExecutor executor(dissemination_barrier(8));
  expect_barrier_synchronizes(executor, BoardMode::kSharded, false);
  expect_barrier_synchronizes(executor, BoardMode::kGlobal, false);
}

TEST(NonblockingBarrier, TestDrivenPollingCompletesToo) {
  const ScheduleExecutor executor(tree_barrier(6));
  expect_barrier_synchronizes(executor, BoardMode::kSharded, true);
  expect_barrier_synchronizes(executor, BoardMode::kGlobal, true);
}

TEST(NonblockingBarrier, ExecuteIsWaitPost) {
  // execute() is implemented as wait(post()); mixing the two spellings
  // across ranks of the same episode must interoperate (same ops, same
  // tags, same matching).
  const ScheduleExecutor executor(dissemination_barrier(5));
  Communicator comm(5);
  std::atomic<std::size_t> done{0};
  simmpi::run_ranks(comm, [&](RankContext& ctx) {
    for (int episode = 0; episode < 3; ++episode) {
      if (ctx.rank() % 2 == 0) {
        executor.execute(ctx, episode);
      } else {
        ScheduleExecutor::EpisodeHandle handle =
            executor.post(ctx, episode);
        executor.wait(handle);
      }
      done.fetch_add(1);
    }
  });
  EXPECT_EQ(done.load(), 15u);
}

TEST(NonblockingBarrier, HandleIsMovable) {
  const ScheduleExecutor executor(tree_barrier(4));
  Communicator comm(4);
  simmpi::run_ranks(comm, [&](RankContext& ctx) {
    ScheduleExecutor::EpisodeHandle first = executor.post(ctx);
    ScheduleExecutor::EpisodeHandle handle = std::move(first);
    executor.wait(handle);
  });
}

TEST(NonblockingBarrier, ConcurrentEpisodesInterleave) {
  // Two posted episodes per rank advance independently; episode tags
  // keep their stages from cross-matching.
  const ScheduleExecutor executor(dissemination_barrier(4));
  Communicator comm(4);
  simmpi::run_ranks(comm, [&](RankContext& ctx) {
    ScheduleExecutor::EpisodeHandle a = executor.post(ctx, 0);
    ScheduleExecutor::EpisodeHandle b = executor.post(ctx, 1);
    while (!executor.test(a) || !executor.test(b)) {
      std::this_thread::yield();
    }
  });
}

// ---- ExecutorOptions ---------------------------------------------------

TEST(ExecutorOptions, ValidatesAtConstruction) {
  const Schedule schedule = tree_barrier(4);
  ExecutorOptions bad_slice;
  bad_slice.progress_slice = 0ms;
  EXPECT_THROW(ScheduleExecutor(schedule, bad_slice), Error);

  ExecutorOptions bad_backoff;
  bad_backoff.resilience.retry_backoff = 0.5;
  EXPECT_THROW(ScheduleExecutor(schedule, bad_backoff), Error);

  ExecutorOptions bad_slack;
  bad_slack.resilience.slack = 0.0;
  EXPECT_THROW(ScheduleExecutor(schedule, bad_slack), Error);

  const CollectiveSchedule collective =
      recursive_doubling_allreduce(4, 2, 8);
  EXPECT_THROW(CollectiveExecutor(collective, bad_slice), Error);
}

TEST(ExecutorOptions, RejectsUndersizedSharedPool) {
  RankPool pool(2);
  ExecutorOptions options;
  options.mode = ExecutionMode::kPersistentPool;
  options.shared_pool = &pool;
  EXPECT_THROW(ScheduleExecutor(tree_barrier(4), options), Error);
}

TEST(ExecutorOptions, SharedPoolServesRepeatedEpisodes) {
  RankPool pool(8);
  ExecutorOptions options;
  options.mode = ExecutionMode::kPersistentPool;
  options.shared_pool = &pool;
  const ScheduleExecutor executor(dissemination_barrier(8), options);
  for (int round = 0; round < 3; ++round) {
    const auto exits = executor.run_once();
    EXPECT_EQ(exits.size(), 8u);
  }
}

// ---- collective lifecycle ----------------------------------------------

std::vector<Payload> ramp_inputs(std::size_t ranks, std::size_t elems) {
  std::vector<Payload> inputs(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    inputs[r].resize(elems);
    for (std::size_t i = 0; i < elems; ++i) {
      inputs[r][i] = r * 1000 + i + 1;
    }
  }
  return inputs;
}

void expect_collective_matches_oracle(const CollectiveSchedule& schedule,
                                      bool poll) {
  const std::size_t p = schedule.ranks();
  const std::vector<Payload> inputs = ramp_inputs(p, schedule.elem_count());
  const std::vector<Payload> expected =
      oracle_result(schedule, ReduceOp::kSum, inputs);

  const CollectiveExecutor executor(schedule);
  Communicator comm(p);
  std::vector<Payload> buffers = inputs;
  simmpi::run_ranks(comm, [&](RankContext& ctx) {
    CollectiveExecutor::EpisodeHandle handle =
        executor.post(ctx, ReduceOp::kSum, buffers[ctx.rank()]);
    if (poll) {
      while (!executor.test(handle)) {
        std::this_thread::yield();
      }
    } else {
      executor.wait(handle);
    }
  });
  EXPECT_EQ(buffers, expected);

  // And the blocking convenience form agrees bit-for-bit.
  EXPECT_EQ(executor.run_once(inputs, ReduceOp::kSum), expected);
}

TEST(NonblockingCollective, AllreduceMatchesOracleViaWait) {
  expect_collective_matches_oracle(recursive_doubling_allreduce(6, 4, 8),
                                   false);
}

TEST(NonblockingCollective, AllreduceMatchesOracleViaPolling) {
  expect_collective_matches_oracle(ring_allreduce(5, 5, 8), true);
}

TEST(NonblockingCollective, HandleSurvivesMoves) {
  // The inbox lives inside the handle; moving the handle between post
  // and completion must keep the receive sinks valid.
  const CollectiveSchedule schedule = recursive_doubling_allreduce(4, 3, 8);
  const std::vector<Payload> inputs =
      ramp_inputs(4, schedule.elem_count());
  const std::vector<Payload> expected =
      oracle_result(schedule, ReduceOp::kSum, inputs);
  const CollectiveExecutor executor(schedule);
  Communicator comm(4);
  std::vector<Payload> buffers = inputs;
  simmpi::run_ranks(comm, [&](RankContext& ctx) {
    CollectiveExecutor::EpisodeHandle posted =
        executor.post(ctx, ReduceOp::kSum, buffers[ctx.rank()]);
    CollectiveExecutor::EpisodeHandle handle = std::move(posted);
    executor.wait(handle);
  });
  EXPECT_EQ(buffers, expected);
}

// ---- resilient lifecycle -----------------------------------------------

TEST(ResilientHandles, PollingEpisodeSucceedsUnderDelayFaults) {
  for (const BoardMode board : {BoardMode::kSharded, BoardMode::kGlobal}) {
    const ScheduleExecutor executor(dissemination_barrier(4));
    Communicator comm(4, simmpi::uniform_latency(), nullptr, board);
    FaultPlan plan;
    plan.seed = 5;
    plan.delays.push_back({ChannelFaultRule::kAnyRank,
                           ChannelFaultRule::kAnyRank,
                           ChannelFaultRule::kAnyTag, 1.0, 2e-3});
    comm.set_fault_plan(plan);

    simmpi::ResilienceOptions resilience;
    resilience.predicted_stage_seconds = {1e-3, 1e-3};
    resilience.slack = 200.0;  // generous: delays must not stall us
    std::atomic<std::size_t> succeeded{0};
    simmpi::StallReport report;
    report.reset(4, executor.stage_count());
    simmpi::run_ranks(comm, [&](RankContext& ctx) {
      ScheduleExecutor::ResilientEpisodeHandle handle =
          executor.post_resilient(ctx, resilience, report);
      while (!executor.test(handle)) {
        std::this_thread::sleep_for(100us);  // compute between polls
      }
      if (handle.succeeded()) {
        succeeded.fetch_add(1);
      }
    });
    EXPECT_EQ(succeeded.load(), 4u) << "board mode "
                                    << static_cast<int>(board);
  }
}

TEST(ResilientHandles, PollingBurnsBudgetOnlyInsideProgressCalls) {
  // A rank that computes between polls must not lose its deadline to
  // the computing time: with a tiny stage budget but generous real
  // time, polling still succeeds because only in-call time is charged.
  const ScheduleExecutor executor(tree_barrier(3));
  Communicator comm(3);
  simmpi::ResilienceOptions resilience;
  resilience.predicted_stage_seconds =
      std::vector<double>(executor.stage_count(), 5e-3);
  resilience.slack = 4.0;
  std::atomic<std::size_t> succeeded{0};
  simmpi::StallReport report;
  report.reset(3, executor.stage_count());
  simmpi::run_ranks(comm, [&](RankContext& ctx) {
    ScheduleExecutor::ResilientEpisodeHandle handle =
        executor.post_resilient(ctx, resilience, report);
    while (!executor.test(handle)) {
      // Far longer than the stage budget; wall time is not charged.
      std::this_thread::sleep_for(3ms);
    }
    if (handle.succeeded()) {
      succeeded.fetch_add(1);
    }
  });
  EXPECT_EQ(succeeded.load(), 3u);
  EXPECT_FALSE(report.stalled);
}

TEST(ResilientHandles, CollectivePollingMatchesOracleUnderDuplicates) {
  const CollectiveSchedule schedule = recursive_doubling_allreduce(4, 2, 8);
  const std::vector<Payload> inputs =
      ramp_inputs(4, schedule.elem_count());
  const std::vector<Payload> expected =
      oracle_result(schedule, ReduceOp::kSum, inputs);
  const CollectiveExecutor executor(schedule);
  Communicator comm(4);
  FaultPlan plan;
  plan.seed = 11;
  plan.duplicates.push_back({ChannelFaultRule::kAnyRank,
                             ChannelFaultRule::kAnyRank,
                             ChannelFaultRule::kAnyTag, 1.0, 0.0});
  comm.set_fault_plan(plan);
  simmpi::ResilienceOptions resilience;
  resilience.predicted_stage_seconds =
      std::vector<double>(schedule.stage_count(), 1e-3);
  resilience.slack = 200.0;
  std::vector<Payload> buffers = inputs;
  std::atomic<std::size_t> succeeded{0};
  simmpi::StallReport report;
  report.reset(4, schedule.stage_count());
  simmpi::run_ranks(comm, [&](RankContext& ctx) {
    CollectiveExecutor::ResilientEpisodeHandle handle =
        executor.post_resilient(ctx, ReduceOp::kSum, buffers[ctx.rank()],
                                resilience, report);
    while (!executor.test(handle)) {
      std::this_thread::yield();
    }
    if (handle.succeeded()) {
      succeeded.fetch_add(1);
    }
  });
  EXPECT_EQ(succeeded.load(), 4u);
  EXPECT_EQ(buffers, expected);
}

// ---- Request::test() polling under faults ------------------------------

TEST(RequestPolling, DelayedMessageTestsFalseThenTrue) {
  for (const BoardMode board : {BoardMode::kSharded, BoardMode::kGlobal}) {
    Communicator comm(2, simmpi::uniform_latency(), nullptr, board);
    FaultPlan plan;
    plan.seed = 3;
    plan.delays.push_back({0, 1, 0, 1.0, 20e-3});
    comm.set_fault_plan(plan);
    auto recv = comm.irecv(0, 1, 0);
    auto send = comm.issend(0, 1, 0);
    // The delivery is delayed ~20 ms; an immediate poll must not
    // observe it (delivery time is simulated, not just matching).
    EXPECT_FALSE(recv->test());
    const auto start = simmpi::Clock::now();
    while (!recv->test() || !send->test()) {
      std::this_thread::sleep_for(200us);
    }
    EXPECT_GE(simmpi::Clock::now() - start, 10ms);
  }
}

TEST(RequestPolling, DuplicatesDoNotConfuseTestPolling) {
  for (const BoardMode board : {BoardMode::kSharded, BoardMode::kGlobal}) {
    Communicator comm(2, simmpi::uniform_latency(), nullptr, board);
    FaultPlan plan;
    plan.seed = 9;
    plan.duplicates.push_back({0, 1, ChannelFaultRule::kAnyTag, 1.0, 0.0});
    comm.set_fault_plan(plan);
    for (int round = 0; round < 4; ++round) {
      auto recv = comm.irecv(0, 1, round);
      auto send = comm.issend(0, 1, round);
      while (!recv->test() || !send->test()) {
        std::this_thread::yield();
      }
    }
    EXPECT_EQ(comm.dropped_messages(), 0u);
  }
}

TEST(RequestPolling, PastDeadlineSliceStillReportsFinishedRequests) {
  // The at-deadline boundary of the bounded batched wait: a request
  // whose match is already complete must be reported done even when the
  // progress slice's deadline has already passed — wait_all_on_until
  // only fails when completion would require waiting strictly past the
  // deadline.
  for (const BoardMode board : {BoardMode::kSharded, BoardMode::kGlobal}) {
    Communicator comm(2, simmpi::uniform_latency(), nullptr, board);
    auto recv = comm.irecv(0, 1, 0);
    auto send = comm.issend(0, 1, 0);
    send->wait();
    recv->wait();
    const std::vector<simmpi::Request> requests{send, recv};
    RankContext ctx(comm, 1);
    EXPECT_TRUE(ctx.wait_all_batched_until(
        requests, simmpi::Clock::now() - 1ms));
  }
}

TEST(RequestPolling, PastDeadlineSliceFailsOnUnmatchedRequests) {
  for (const BoardMode board : {BoardMode::kSharded, BoardMode::kGlobal}) {
    Communicator comm(2, simmpi::uniform_latency(), nullptr, board);
    auto recv = comm.irecv(0, 1, 0);  // never sent: cannot finish
    const std::vector<simmpi::Request> requests{recv};
    RankContext ctx(comm, 1);
    EXPECT_FALSE(ctx.wait_all_batched_until(
        requests, simmpi::Clock::now() - 1ms));
    EXPECT_FALSE(ctx.wait_all_batched_until(
        requests, simmpi::Clock::now() + 2ms));
  }
}

}  // namespace
}  // namespace optibar
