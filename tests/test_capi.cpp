// Tests for the C API: handle lifecycle, plan extraction, error paths,
// and — the crucial semantic check — replaying a plan's per-rank op
// sequences through the MPI-like runtime synchronizes correctly.
//
// The errbuf signatures are deprecated but must keep working until
// removed, so this suite exercises them on purpose.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
#include "capi/optibar.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "simmpi/runtime.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"

namespace {

using namespace optibar;

class CapiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             "optibar_capi_profile.txt")
                .string();
    const MachineSpec m = quad_cluster(2);
    generate_profile(m, round_robin_mapping(m, 16)).save_file(path_);
    library_ = optibar_open(path_.c_str(), errbuf_, sizeof errbuf_);
    ASSERT_NE(library_, nullptr) << errbuf_;
  }
  void TearDown() override {
    optibar_close(library_);
    std::filesystem::remove(path_);
  }

  std::string path_;
  optibar_library* library_ = nullptr;
  char errbuf_[256] = {};
};

TEST(Capi, OpenRejectsMissingFile) {
  char errbuf[128] = {};
  EXPECT_EQ(optibar_open("/nonexistent/profile.txt", errbuf, sizeof errbuf),
            nullptr);
  EXPECT_NE(std::string(errbuf).find("cannot open"), std::string::npos);
}

TEST(Capi, OpenRejectsNullPath) {
  char errbuf[128] = {};
  EXPECT_EQ(optibar_open(nullptr, errbuf, sizeof errbuf), nullptr);
}

TEST(Capi, NullHandleAccessorsAreSafe) {
  EXPECT_EQ(optibar_ranks(nullptr), 0u);
  EXPECT_EQ(optibar_plan_ranks(nullptr), 0u);
  EXPECT_EQ(optibar_plan_op_count(nullptr, 0), 0u);
  EXPECT_DOUBLE_EQ(optibar_plan_predicted_seconds(nullptr), 0.0);
  optibar_close(nullptr);  // must not crash
}

TEST_F(CapiTest, ReportsRankCount) {
  EXPECT_EQ(optibar_ranks(library_), 16u);
}

TEST_F(CapiTest, WorldPlanHasSaneShape) {
  const optibar_plan* plan =
      optibar_world_plan(library_, errbuf_, sizeof errbuf_);
  ASSERT_NE(plan, nullptr) << errbuf_;
  EXPECT_EQ(optibar_plan_ranks(plan), 16u);
  EXPECT_GT(optibar_plan_stage_count(plan), 0u);
  EXPECT_GT(optibar_plan_predicted_seconds(plan), 0.0);
  // Total ops across ranks = 2 * total signals > 0.
  std::size_t total = 0;
  for (std::size_t r = 0; r < 16; ++r) {
    total += optibar_plan_op_count(plan, r);
  }
  EXPECT_GT(total, 0u);
  EXPECT_EQ(total % 2, 0u);
}

TEST_F(CapiTest, RepeatedWorldPlansAreCached) {
  const optibar_plan* a = optibar_world_plan(library_, nullptr, 0);
  const optibar_plan* b = optibar_world_plan(library_, nullptr, 0);
  EXPECT_EQ(a, b);
}

TEST_F(CapiTest, OpsEndEachStageWithWaitAll) {
  const optibar_plan* plan = optibar_world_plan(library_, nullptr, 0);
  ASSERT_NE(plan, nullptr);
  for (std::size_t r = 0; r < 16; ++r) {
    const std::size_t n = optibar_plan_op_count(plan, r);
    if (n == 0) {
      continue;
    }
    std::vector<optibar_op> ops(n);
    ASSERT_EQ(optibar_plan_ops(plan, r, ops.data(), n), n);
    // Stage changes only after a stage_end; the last op closes a stage.
    for (std::size_t i = 1; i < n; ++i) {
      if (ops[i].stage != ops[i - 1].stage) {
        EXPECT_EQ(ops[i - 1].stage_end, 1);
      }
    }
    EXPECT_EQ(ops[n - 1].stage_end, 1);
  }
}

TEST_F(CapiTest, PlanOpsTruncateToCapacity) {
  const optibar_plan* plan = optibar_world_plan(library_, nullptr, 0);
  std::vector<optibar_op> one(1);
  EXPECT_EQ(optibar_plan_ops(plan, 0, one.data(), 1), 1u);
  EXPECT_EQ(optibar_plan_ops(plan, 0, nullptr, 8), 0u);
  EXPECT_EQ(optibar_plan_ops(plan, 99, one.data(), 1), 0u);
}

TEST_F(CapiTest, SubsetPlanUsesLocalNumbering) {
  const std::size_t subset[] = {0, 2, 4, 6};
  const optibar_plan* plan =
      optibar_subset_plan(library_, subset, 4, errbuf_, sizeof errbuf_);
  ASSERT_NE(plan, nullptr) << errbuf_;
  EXPECT_EQ(optibar_plan_ranks(plan), 4u);
  for (std::size_t r = 0; r < 4; ++r) {
    const std::size_t n = optibar_plan_op_count(plan, r);
    std::vector<optibar_op> ops(n);
    optibar_plan_ops(plan, r, ops.data(), n);
    for (const optibar_op& op : ops) {
      EXPECT_GE(op.peer, 0);
      EXPECT_LT(op.peer, 4);
    }
  }
}

TEST_F(CapiTest, SubsetPlanRejectsBadSubsets) {
  const std::size_t dup[] = {1, 1};
  EXPECT_EQ(optibar_subset_plan(library_, dup, 2, errbuf_, sizeof errbuf_),
            nullptr);
  EXPECT_NE(std::string(errbuf_).find("duplicate"), std::string::npos);
  const std::size_t oob[] = {0, 99};
  EXPECT_EQ(optibar_subset_plan(library_, oob, 2, errbuf_, sizeof errbuf_),
            nullptr);
  EXPECT_EQ(optibar_subset_plan(library_, nullptr, 2, errbuf_,
                                sizeof errbuf_),
            nullptr);
}

TEST(CapiStatus, StatusStringsAreStable) {
  EXPECT_STREQ(optibar_status_string(OPTIBAR_OK), "OPTIBAR_OK");
  EXPECT_STREQ(optibar_status_string(OPTIBAR_ERR_INVALID_ARGUMENT),
               "OPTIBAR_ERR_INVALID_ARGUMENT");
  EXPECT_STREQ(optibar_status_string(OPTIBAR_ERR_IO), "OPTIBAR_ERR_IO");
  EXPECT_STREQ(optibar_status_string(OPTIBAR_ERR_TUNING),
               "OPTIBAR_ERR_TUNING");
  EXPECT_STREQ(optibar_status_string(OPTIBAR_ERR_INTERNAL),
               "OPTIBAR_ERR_INTERNAL");
}

TEST(CapiStatus, OpenV2ReportsIoFailure) {
  EXPECT_EQ(optibar_open_v2("/nonexistent/profile.txt", 1), nullptr);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_ERR_IO);
  EXPECT_NE(std::string(optibar_last_error()).find("cannot open"),
            std::string::npos);
}

TEST(CapiStatus, OpenV2ReportsNullPath) {
  EXPECT_EQ(optibar_open_v2(nullptr, 1), nullptr);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_ERR_INVALID_ARGUMENT);
}

TEST(CapiStatus, NullHandleSetsInvalidArgument) {
  EXPECT_EQ(optibar_world_plan_v2(nullptr), nullptr);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(optibar_ranks(nullptr), 0u);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_ERR_INVALID_ARGUMENT);
}

TEST_F(CapiTest, SuccessResetsStatusAndMessage) {
  optibar_world_plan_v2(nullptr);  // leave an error behind
  ASSERT_EQ(optibar_last_status(), OPTIBAR_ERR_INVALID_ARGUMENT);
  ASSERT_NE(optibar_world_plan_v2(library_), nullptr);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_OK);
  EXPECT_STREQ(optibar_last_error(), "");
}

TEST_F(CapiTest, V2AndLegacyReturnTheSamePlan) {
  const optibar_plan* v2 = optibar_world_plan_v2(library_);
  const optibar_plan* legacy =
      optibar_world_plan(library_, errbuf_, sizeof errbuf_);
  EXPECT_EQ(v2, legacy);
  const std::size_t subset[] = {0, 2, 4};
  EXPECT_EQ(optibar_subset_plan_v2(library_, subset, 3),
            optibar_subset_plan(library_, subset, 3, nullptr, 0));
}

TEST_F(CapiTest, SubsetV2ClassifiesCallerErrors) {
  const std::size_t dup[] = {1, 1};
  EXPECT_EQ(optibar_subset_plan_v2(library_, dup, 2), nullptr);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_ERR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(optibar_last_error()).find("duplicate"),
            std::string::npos);
  const std::size_t oob[] = {0, 99};
  EXPECT_EQ(optibar_subset_plan_v2(library_, oob, 2), nullptr);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(optibar_subset_plan_v2(library_, nullptr, 2), nullptr);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_ERR_INVALID_ARGUMENT);
}

TEST_F(CapiTest, ErrbufTruncationIsNulTerminated) {
  char tiny[8];
  std::memset(tiny, 'x', sizeof tiny);
  const std::size_t oob[] = {0, 99};
  EXPECT_EQ(optibar_subset_plan(library_, oob, 2, tiny, sizeof tiny),
            nullptr);
  EXPECT_EQ(tiny[sizeof tiny - 1], '\0');  // truncated, still terminated
  EXPECT_LT(std::strlen(tiny), sizeof tiny);
  // The full message survives in the thread-local channel.
  EXPECT_GT(std::strlen(optibar_last_error()), std::strlen(tiny));
}

TEST_F(CapiTest, OutOfRangeRankSetsStatus) {
  const optibar_plan* plan = optibar_world_plan_v2(library_);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(optibar_plan_op_count(plan, 16), 0u);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_ERR_INVALID_ARGUMENT);
  optibar_op op;
  EXPECT_EQ(optibar_plan_ops(plan, 16, &op, 1), 0u);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_ERR_INVALID_ARGUMENT);
  (void)optibar_plan_op_count(plan, 15);  // valid rank resets the status
  EXPECT_EQ(optibar_last_status(), OPTIBAR_OK);
}

TEST_F(CapiTest, ThreadedOpenTunesLikeSerial) {
  optibar_library* threaded = optibar_open_v2(path_.c_str(), 4);
  ASSERT_NE(threaded, nullptr);
  const optibar_plan* a = optibar_world_plan_v2(library_);
  const optibar_plan* b = optibar_world_plan_v2(threaded);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Bit-identical tuning at any width: same shape, same cost.
  EXPECT_EQ(optibar_plan_stage_count(a), optibar_plan_stage_count(b));
  EXPECT_DOUBLE_EQ(optibar_plan_predicted_seconds(a),
                   optibar_plan_predicted_seconds(b));
  for (std::size_t r = 0; r < 16; ++r) {
    EXPECT_EQ(optibar_plan_op_count(a, r), optibar_plan_op_count(b, r));
  }
  optibar_close(threaded);
}

TEST_F(CapiTest, TuneAllFillsEveryPlan) {
  // Three subsets concatenated: {0..7}, {8..15}, {0,2,4,6}.
  std::vector<std::size_t> ranks;
  for (std::size_t r = 0; r < 8; ++r) ranks.push_back(r);
  for (std::size_t r = 8; r < 16; ++r) ranks.push_back(r);
  for (std::size_t r = 0; r < 8; r += 2) ranks.push_back(r);
  const std::size_t counts[] = {8, 8, 4};
  const optibar_plan* plans[3] = {};
  ASSERT_EQ(optibar_tune_all(library_, ranks.data(), counts, 3, plans), 3u);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_OK);
  EXPECT_EQ(optibar_plan_ranks(plans[0]), 8u);
  EXPECT_EQ(optibar_plan_ranks(plans[1]), 8u);
  EXPECT_EQ(optibar_plan_ranks(plans[2]), 4u);
  // Batch results alias the per-subset cache.
  const std::size_t quad[] = {0, 2, 4, 6};
  EXPECT_EQ(optibar_subset_plan_v2(library_, quad, 4), plans[2]);
}

TEST_F(CapiTest, TuneAllRejectsBadBatches) {
  const std::size_t counts[] = {2};
  const optibar_plan* plans[1] = {};
  EXPECT_EQ(optibar_tune_all(nullptr, nullptr, counts, 1, plans), 0u);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_ERR_INVALID_ARGUMENT);
  const std::size_t bad_ranks[] = {0, 99};
  EXPECT_EQ(optibar_tune_all(library_, bad_ranks, counts, 1, plans), 0u);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_ERR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(optibar_last_error()).find("subset 0"),
            std::string::npos);
  EXPECT_EQ(plans[0], nullptr);  // untouched on failure
}

TEST_F(CapiTest, ReplayingPlanOpsSynchronizes) {
  // The contract: a C MPI program replays ops with Issend/Irecv/Waitall.
  // Do exactly that against the in-process runtime and verify clean
  // completion across repeated episodes.
  const optibar_plan* plan = optibar_world_plan(library_, nullptr, 0);
  ASSERT_NE(plan, nullptr);
  const int stages = static_cast<int>(optibar_plan_stage_count(plan));

  simmpi::Communicator comm(16);
  simmpi::run_ranks(comm, [&](simmpi::RankContext& ctx) {
    const std::size_t n = optibar_plan_op_count(plan, ctx.rank());
    std::vector<optibar_op> ops(n);
    optibar_plan_ops(plan, ctx.rank(), ops.data(), n);
    for (int episode = 0; episode < 3; ++episode) {
      std::vector<simmpi::Request> requests;
      for (const optibar_op& op : ops) {
        const int tag = episode * stages + op.stage;
        requests.push_back(
            op.is_send
                ? ctx.issend(static_cast<std::size_t>(op.peer), tag)
                : ctx.irecv(static_cast<std::size_t>(op.peer), tag));
        if (op.stage_end) {
          simmpi::RankContext::wait_all(requests);
          requests.clear();
        }
      }
      EXPECT_TRUE(requests.empty());
    }
  });
  EXPECT_EQ(comm.unmatched_operations(), 0u);
}

TEST_F(CapiTest, EveryFailurePathLeavesAMessage) {
  // The error-channel contract: any non-OK status comes with a
  // non-empty optibar_last_error, including NULL-argument early
  // returns — callers log the message without checking for "".
  const auto expect_message = [](const char* where) {
    EXPECT_NE(optibar_last_status(), OPTIBAR_OK) << where;
    EXPECT_GT(std::strlen(optibar_last_error()), 0u) << where;
  };
  EXPECT_EQ(optibar_open_v2(nullptr, 1), nullptr);
  expect_message("open_v2(NULL path)");
  EXPECT_EQ(optibar_open_v2("/nonexistent/profile.txt", 1), nullptr);
  expect_message("open_v2(missing file)");
  EXPECT_EQ(optibar_world_plan_v2(nullptr), nullptr);
  expect_message("world_plan_v2(NULL library)");
  EXPECT_EQ(optibar_subset_plan_v2(library_, nullptr, 2), nullptr);
  expect_message("subset_plan_v2(NULL ranks)");
  const std::size_t dup[] = {1, 1};
  EXPECT_EQ(optibar_subset_plan_v2(library_, dup, 2), nullptr);
  expect_message("subset_plan_v2(duplicate)");
  const std::size_t oob[] = {0, 99};
  EXPECT_EQ(optibar_subset_plan_v2(library_, oob, 2), nullptr);
  expect_message("subset_plan_v2(out of range)");
  EXPECT_EQ(optibar_ranks(nullptr), 0u);
  expect_message("ranks(NULL library)");
  EXPECT_EQ(optibar_plan_is_degraded(nullptr), 0);
  expect_message("plan_is_degraded(NULL plan)");
  EXPECT_EQ(optibar_report_stall(nullptr, oob, 2, "stall"), -1);
  expect_message("report_stall(NULL library)");
  const optibar_plan* plan = optibar_world_plan_v2(library_);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(optibar_plan_op_count(plan, 999), 0u);
  expect_message("plan_op_count(rank out of range)");
  optibar_op op;
  EXPECT_EQ(optibar_plan_ops(plan, 999, &op, 1), 0u);
  expect_message("plan_ops(rank out of range)");
  EXPECT_EQ(optibar_tune_collective_v2(library_,
                                       static_cast<optibar_collective_op>(99),
                                       0, 0, nullptr, nullptr),
            OPTIBAR_ERR_INVALID_ARGUMENT);
  expect_message("tune_collective_v2(bad op)");
}

TEST_F(CapiTest, StallReportsQuarantineAndDegradePlans) {
  const std::size_t subset[] = {1, 3, 5, 7};
  const optibar_plan* tuned = optibar_subset_plan_v2(library_, subset, 4);
  ASSERT_NE(tuned, nullptr);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_OK);
  EXPECT_EQ(optibar_plan_is_degraded(tuned), 0);

  // Below the default threshold (3) the tuned plan keeps being served.
  EXPECT_EQ(optibar_report_stall(library_, subset, 4, "stage 0 stall"), 0);
  EXPECT_EQ(optibar_report_stall(library_, subset, 4, "stage 0 stall"), 0);
  EXPECT_EQ(optibar_subset_plan_v2(library_, subset, 4), tuned);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_OK);

  // Third strike quarantines the tuned plan; the next request returns
  // the conservative fallback, flagged OPTIBAR_DEGRADED with a reason.
  EXPECT_EQ(optibar_report_stall(library_, subset, 4, "stage 0 stall"), 1);
  const optibar_plan* fallback = optibar_subset_plan_v2(library_, subset, 4);
  ASSERT_NE(fallback, nullptr);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_DEGRADED);
  EXPECT_NE(std::string(optibar_last_error()).find("quarantined"),
            std::string::npos);
  EXPECT_EQ(optibar_plan_is_degraded(fallback), 1);
  EXPECT_NE(fallback, tuned);
  // The old handle stays valid — plans are owned by the library.
  EXPECT_EQ(optibar_plan_ranks(tuned), 4u);
  EXPECT_EQ(optibar_plan_ranks(fallback), 4u);
  EXPECT_GT(optibar_plan_stage_count(fallback), 0u);

  // A stall on a subset that was never served a plan is a caller error.
  const std::size_t fresh[] = {8, 9};
  EXPECT_EQ(optibar_report_stall(library_, fresh, 2, "stall"), -1);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_ERR_INVALID_ARGUMENT);
  EXPECT_GT(std::strlen(optibar_last_error()), 0u);
}

TEST(CapiStatus, DegradedStatusStringIsStable) {
  EXPECT_STREQ(optibar_status_string(OPTIBAR_DEGRADED), "OPTIBAR_DEGRADED");
}

TEST_F(CapiTest, TuneCollectiveV2ReturnsPlanMetrics) {
  double seconds = -1.0;
  size_t stages = 0;
  ASSERT_EQ(optibar_tune_collective_v2(library_, OPTIBAR_COLLECTIVE_ALLREDUCE,
                                       64 * 1024, 0, &seconds, &stages),
            OPTIBAR_OK);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_OK);
  EXPECT_STREQ(optibar_last_error(), "");
  EXPECT_GT(seconds, 0.0);
  EXPECT_GT(stages, 0u);

  // Zero payload works and is cheaper than 64 KiB, out params optional.
  double barrier_shaped = -1.0;
  ASSERT_EQ(optibar_tune_collective_v2(library_, OPTIBAR_COLLECTIVE_ALLREDUCE,
                                       0, 0, &barrier_shaped, nullptr),
            OPTIBAR_OK);
  EXPECT_LT(barrier_shaped, seconds);
  EXPECT_EQ(optibar_tune_collective_v2(library_, OPTIBAR_COLLECTIVE_BCAST,
                                       4096, 3, nullptr, nullptr),
            OPTIBAR_OK);
}

TEST_F(CapiTest, TuneCollectiveV2ClassifiesCallerErrors) {
  double seconds = -1.0;
  size_t stages = 99;
  EXPECT_EQ(optibar_tune_collective_v2(nullptr, OPTIBAR_COLLECTIVE_ALLREDUCE,
                                       0, 0, &seconds, &stages),
            OPTIBAR_ERR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(optibar_last_error()).find("NULL"),
            std::string::npos);

  EXPECT_EQ(optibar_tune_collective_v2(
                library_, static_cast<optibar_collective_op>(99), 0, 0,
                &seconds, &stages),
            OPTIBAR_ERR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(optibar_last_error()).find("op"), std::string::npos);

  // Root out of range (fixture profile has 16 ranks).
  EXPECT_EQ(optibar_tune_collective_v2(library_, OPTIBAR_COLLECTIVE_REDUCE, 0,
                                       16, &seconds, &stages),
            OPTIBAR_ERR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(optibar_last_error()).find("root"),
            std::string::npos);

  // Payload must be a multiple of the 8-byte element width.
  EXPECT_EQ(optibar_tune_collective_v2(library_, OPTIBAR_COLLECTIVE_ALLREDUCE,
                                       12, 0, &seconds, &stages),
            OPTIBAR_ERR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(optibar_last_error()).find("multiple"),
            std::string::npos);

  // Every failure left the out parameters unwritten.
  EXPECT_DOUBLE_EQ(seconds, -1.0);
  EXPECT_EQ(stages, 99u);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_ERR_INVALID_ARGUMENT);
}

TEST_F(CapiTest, TuneHybridV2ReportsTransportAndCost) {
  double seconds = -1.0;
  optibar_transport transport = static_cast<optibar_transport>(99);
  size_t signals = 12345;
  ASSERT_EQ(optibar_tune_hybrid_v2(library_, &seconds, &transport, &signals),
            OPTIBAR_OK);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_OK);
  EXPECT_STREQ(optibar_last_error(), "");
  EXPECT_GT(seconds, 0.0);
  EXPECT_TRUE(transport == OPTIBAR_TRANSPORT_TWO_SIDED ||
              transport == OPTIBAR_TRANSPORT_ONE_SIDED ||
              transport == OPTIBAR_TRANSPORT_HYBRID);
  // A two-sided winner carries no tagged signals; anything else must.
  if (transport == OPTIBAR_TRANSPORT_TWO_SIDED) {
    EXPECT_EQ(signals, 0u);
  } else {
    EXPECT_GT(signals, 0u);
  }
  // The picked transport never loses to the classic world plan.
  const optibar_plan* plan = optibar_world_plan(library_, nullptr, 0);
  ASSERT_NE(plan, nullptr);
  EXPECT_LE(seconds, optibar_plan_predicted_seconds(plan));
  // Out parameters are optional.
  EXPECT_EQ(optibar_tune_hybrid_v2(library_, nullptr, nullptr, nullptr),
            OPTIBAR_OK);
}

TEST_F(CapiTest, TuneHybridV2ClassifiesCallerErrors) {
  double seconds = -1.0;
  optibar_transport transport = static_cast<optibar_transport>(99);
  size_t signals = 12345;
  EXPECT_EQ(optibar_tune_hybrid_v2(nullptr, &seconds, &transport, &signals),
            OPTIBAR_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_ERR_INVALID_ARGUMENT);
  EXPECT_NE(std::string(optibar_last_error()).find("NULL"),
            std::string::npos);
  // The failure left every out parameter unwritten.
  EXPECT_DOUBLE_EQ(seconds, -1.0);
  EXPECT_EQ(static_cast<int>(transport), 99);
  EXPECT_EQ(signals, 12345u);
}

TEST_F(CapiTest, IbarrierEpisodeCompletesViaPollingThenWait) {
  optibar_episode* episode = optibar_ibarrier_post(library_);
  ASSERT_NE(episode, nullptr) << optibar_last_error();
  EXPECT_EQ(optibar_last_status(), OPTIBAR_OK);
  // Poll until the in-process barrier run completes.
  int state = 0;
  while ((state = optibar_ibarrier_test(episode)) == 0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(state, 1);
  EXPECT_EQ(optibar_ibarrier_wait(episode), OPTIBAR_OK);
}

TEST_F(CapiTest, IbarrierWaitAloneDrivesTheEpisode) {
  optibar_episode* episode = optibar_ibarrier_post(library_);
  ASSERT_NE(episode, nullptr) << optibar_last_error();
  EXPECT_EQ(optibar_ibarrier_wait(episode), OPTIBAR_OK);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_OK);
}

TEST_F(CapiTest, ConcurrentEpisodesAreIndependent) {
  optibar_episode* a = optibar_ibarrier_post(library_);
  optibar_episode* b = optibar_ibarrier_post(library_);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(optibar_ibarrier_wait(b), OPTIBAR_OK);
  EXPECT_EQ(optibar_ibarrier_wait(a), OPTIBAR_OK);
}

TEST(CapiEpisode, NullEpisodeIsRejected) {
  EXPECT_EQ(optibar_ibarrier_test(nullptr), -1);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(optibar_ibarrier_wait(nullptr), OPTIBAR_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(optibar_icollective_test(nullptr), -1);
  EXPECT_EQ(optibar_icollective_wait(nullptr),
            OPTIBAR_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(optibar_ibarrier_post(nullptr), nullptr);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_ERR_INVALID_ARGUMENT);
}

TEST_F(CapiTest, IcollectiveAllreduceSumsEveryRanksBuffer) {
  const size_t ranks = optibar_ranks(library_);
  const size_t elems = 4;
  std::vector<uint64_t> data(ranks * elems);
  for (size_t r = 0; r < ranks; ++r) {
    for (size_t i = 0; i < elems; ++i) {
      data[r * elems + i] = r * 100 + i + 1;
    }
  }
  optibar_episode* episode = optibar_icollective_post(
      library_, OPTIBAR_COLLECTIVE_ALLREDUCE, data.data(), elems, 0);
  ASSERT_NE(episode, nullptr) << optibar_last_error();
  while (optibar_icollective_test(episode) == 0) {
    std::this_thread::yield();
  }
  ASSERT_EQ(optibar_icollective_wait(episode), OPTIBAR_OK)
      << optibar_last_error();
  // Allreduce: every rank holds the elementwise sum over all inputs.
  for (size_t i = 0; i < elems; ++i) {
    uint64_t expected = 0;
    for (size_t r = 0; r < ranks; ++r) {
      expected += r * 100 + i + 1;
    }
    for (size_t r = 0; r < ranks; ++r) {
      EXPECT_EQ(data[r * elems + i], expected)
          << "rank " << r << " element " << i;
    }
  }
}

TEST_F(CapiTest, IcollectiveBroadcastCopiesTheRootBuffer) {
  const size_t ranks = optibar_ranks(library_);
  const size_t elems = 2;
  const size_t root = 3;
  std::vector<uint64_t> data(ranks * elems, 0);
  for (size_t i = 0; i < elems; ++i) {
    data[root * elems + i] = 4000 + i;
  }
  optibar_episode* episode = optibar_icollective_post(
      library_, OPTIBAR_COLLECTIVE_BCAST, data.data(), elems, root);
  ASSERT_NE(episode, nullptr) << optibar_last_error();
  ASSERT_EQ(optibar_icollective_wait(episode), OPTIBAR_OK)
      << optibar_last_error();
  for (size_t r = 0; r < ranks; ++r) {
    for (size_t i = 0; i < elems; ++i) {
      EXPECT_EQ(data[r * elems + i], 4000 + i) << "rank " << r;
    }
  }
}

TEST_F(CapiTest, IcollectiveValidatesItsArguments) {
  std::vector<uint64_t> data(16, 0);
  EXPECT_EQ(optibar_icollective_post(library_, OPTIBAR_COLLECTIVE_ALLREDUCE,
                                     nullptr, 1, 0),
            nullptr);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(optibar_icollective_post(library_, OPTIBAR_COLLECTIVE_ALLREDUCE,
                                     data.data(), 0, 0),
            nullptr);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_ERR_INVALID_ARGUMENT);
  EXPECT_EQ(optibar_icollective_post(library_, OPTIBAR_COLLECTIVE_REDUCE,
                                     data.data(), 1, 99),
            nullptr);
  EXPECT_NE(std::string(optibar_last_error()).find("out of range"),
            std::string::npos);
  EXPECT_EQ(
      optibar_icollective_post(library_, static_cast<optibar_collective_op>(7),
                               data.data(), 1, 0),
      nullptr);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_ERR_INVALID_ARGUMENT);
}

/* ---- plan service surface ---- */

class CapiServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             "optibar_capi_service_profile.txt")
                .string();
    store_ = (std::filesystem::temp_directory_path() /
              "optibar_capi_service_store.txt")
                 .string();
    const MachineSpec m = quad_cluster();
    generate_profile(m, round_robin_mapping(m, 8)).save_file(path_);
    library_ = optibar_open_service(path_.c_str(), 1, /*auto_repair=*/0);
    ASSERT_NE(library_, nullptr) << optibar_last_error();
  }
  void TearDown() override {
    optibar_close(library_);
    std::filesystem::remove(path_);
    std::filesystem::remove(store_);
  }

  std::string path_;
  std::string store_;
  optibar_library* library_ = nullptr;
};

TEST_F(CapiServiceTest, LifecycleAndStoreRoundTrip) {
  const size_t subset[] = {0, 1, 2, 3};
  ASSERT_NE(optibar_subset_plan_v2(library_, subset, 4), nullptr);
  optibar_plan_state_t state = OPTIBAR_PLAN_DEGRADED;
  ASSERT_EQ(optibar_plan_state(library_, subset, 4, &state), OPTIBAR_OK);
  EXPECT_EQ(state, OPTIBAR_PLAN_HEALTHY);

  EXPECT_EQ(optibar_report_latency(library_, subset, 4, 0, 1, 1e-6),
            OPTIBAR_OK);
  EXPECT_EQ(optibar_report_success(library_, subset, 4), OPTIBAR_OK);
  EXPECT_EQ(optibar_service_wait(library_), OPTIBAR_OK);

  // Default threshold 3: two stalls suspect, the third quarantines.
  EXPECT_EQ(optibar_report_stall(library_, subset, 4, "stall"), 0);
  ASSERT_EQ(optibar_plan_state(library_, subset, 4, &state), OPTIBAR_OK);
  EXPECT_EQ(state, OPTIBAR_PLAN_SUSPECT);
  EXPECT_EQ(optibar_report_stall(library_, subset, 4, "stall"), 0);
  EXPECT_EQ(optibar_report_stall(library_, subset, 4, "stall"), 1);
  ASSERT_EQ(optibar_plan_state(library_, subset, 4, &state), OPTIBAR_OK);
  EXPECT_EQ(state, OPTIBAR_PLAN_QUARANTINED);
  // The served plan is now the fallback, flagged as a warning status.
  const optibar_plan* fallback = optibar_subset_plan_v2(library_, subset, 4);
  ASSERT_NE(fallback, nullptr);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_DEGRADED);
  EXPECT_EQ(optibar_plan_is_degraded(fallback), 1);

  // Save, reload into a fresh service: the quarantine survives.
  ASSERT_EQ(optibar_store_save(library_, store_.c_str()), OPTIBAR_OK);
  optibar_library* restarted =
      optibar_open_service(path_.c_str(), 1, /*auto_repair=*/0);
  ASSERT_NE(restarted, nullptr);
  ASSERT_EQ(optibar_store_load(restarted, store_.c_str()), OPTIBAR_OK);
  ASSERT_EQ(optibar_plan_state(restarted, subset, 4, &state), OPTIBAR_OK);
  EXPECT_EQ(state, OPTIBAR_PLAN_QUARANTINED);
  optibar_close(restarted);
}

TEST_F(CapiServiceTest, EveryFailurePathSetsANonEmptyError) {
  // The contract the sweep enforces: any call that does not succeed
  // leaves a non-OK status AND a non-empty optibar_last_error() — no
  // caller should ever see a bare error code with an empty message.
  const auto expect_error = [](const char* what) {
    EXPECT_NE(optibar_last_status(), OPTIBAR_OK) << what;
    EXPECT_GT(std::strlen(optibar_last_error()), 0u) << what;
  };
  const size_t good[] = {0, 1, 2, 3};
  const size_t dup[] = {1, 1};
  const size_t oob[] = {0, 99};
  optibar_plan_state_t state;

  EXPECT_EQ(optibar_open_v2(nullptr, 1), nullptr);
  expect_error("open_v2 null path");
  EXPECT_EQ(optibar_open_v2("/nonexistent/profile.txt", 1), nullptr);
  expect_error("open_v2 missing file");
  EXPECT_EQ(optibar_open_service(nullptr, 1, 0), nullptr);
  expect_error("open_service null path");
  EXPECT_EQ(optibar_open_service("/nonexistent/profile.txt", 1, 1), nullptr);
  expect_error("open_service missing file");

  EXPECT_EQ(optibar_ranks(nullptr), 0u);
  expect_error("ranks null library");
  EXPECT_EQ(optibar_world_plan_v2(nullptr), nullptr);
  expect_error("world_plan_v2 null library");
  EXPECT_EQ(optibar_subset_plan_v2(nullptr, good, 4), nullptr);
  expect_error("subset_plan_v2 null library");
  EXPECT_EQ(optibar_subset_plan_v2(library_, nullptr, 4), nullptr);
  expect_error("subset_plan_v2 null ranks");
  EXPECT_EQ(optibar_subset_plan_v2(library_, dup, 2), nullptr);
  expect_error("subset_plan_v2 duplicate rank");
  EXPECT_EQ(optibar_subset_plan_v2(library_, oob, 2), nullptr);
  expect_error("subset_plan_v2 out-of-range rank");
  EXPECT_EQ(optibar_subset_plan_v2(library_, good, 0), nullptr);
  expect_error("subset_plan_v2 empty subset");
  EXPECT_EQ(optibar_tune_all(library_, nullptr, nullptr, 0, nullptr), 0u);
  expect_error("tune_all null arguments");

  EXPECT_EQ(optibar_plan_ranks(nullptr), 0u);
  expect_error("plan_ranks null plan");
  EXPECT_EQ(optibar_plan_predicted_seconds(nullptr), 0.0);
  expect_error("plan_predicted_seconds null plan");
  EXPECT_EQ(optibar_plan_stage_count(nullptr), 0u);
  expect_error("plan_stage_count null plan");
  EXPECT_EQ(optibar_plan_op_count(nullptr, 0), 0u);
  expect_error("plan_op_count null plan");
  EXPECT_EQ(optibar_plan_ops(nullptr, 0, nullptr, 0), 0u);
  expect_error("plan_ops null plan");
  EXPECT_EQ(optibar_plan_is_degraded(nullptr), 0);
  expect_error("plan_is_degraded null plan");
  const optibar_plan* plan = optibar_subset_plan_v2(library_, good, 4);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(optibar_plan_op_count(plan, 99), 0u);
  expect_error("plan_op_count out-of-range rank");

  EXPECT_EQ(optibar_report_stall(nullptr, good, 4, "x"), -1);
  expect_error("report_stall null library");
  EXPECT_EQ(optibar_report_stall(library_, oob, 2, "x"), -1);
  expect_error("report_stall out-of-range rank");
  const size_t unserved[] = {4, 5};
  EXPECT_EQ(optibar_report_stall(library_, unserved, 2, "x"), -1);
  expect_error("report_stall never-served subset");

  EXPECT_NE(optibar_plan_state(nullptr, good, 4, &state), OPTIBAR_OK);
  expect_error("plan_state null library");
  EXPECT_NE(optibar_plan_state(library_, good, 4, nullptr), OPTIBAR_OK);
  expect_error("plan_state null out_state");
  EXPECT_NE(optibar_plan_state(library_, dup, 2, &state), OPTIBAR_OK);
  expect_error("plan_state duplicate rank");
  EXPECT_NE(optibar_plan_state(library_, unserved, 2, &state), OPTIBAR_OK);
  expect_error("plan_state never-served subset");

  EXPECT_NE(optibar_report_latency(nullptr, good, 4, 0, 1, 1e-6), OPTIBAR_OK);
  expect_error("report_latency null library");
  EXPECT_NE(optibar_report_latency(library_, good, 4, 0, 1, -1.0),
            OPTIBAR_OK);
  expect_error("report_latency negative seconds");
  EXPECT_NE(optibar_report_latency(library_, good, 4, 0, 1,
                                   std::numeric_limits<double>::quiet_NaN()),
            OPTIBAR_OK);
  expect_error("report_latency NaN seconds");
  EXPECT_NE(optibar_report_latency(library_, good, 4, 1, 1, 1e-6),
            OPTIBAR_OK);
  expect_error("report_latency src == dst");
  EXPECT_NE(optibar_report_latency(library_, good, 4, 0, 9, 1e-6),
            OPTIBAR_OK);
  expect_error("report_latency out-of-range dst");

  EXPECT_NE(optibar_report_success(nullptr, good, 4), OPTIBAR_OK);
  expect_error("report_success null library");
  EXPECT_NE(optibar_report_success(library_, unserved, 2), OPTIBAR_OK);
  expect_error("report_success never-served subset");
  EXPECT_NE(optibar_service_wait(nullptr), OPTIBAR_OK);
  expect_error("service_wait null library");

  EXPECT_NE(optibar_store_save(nullptr, store_.c_str()), OPTIBAR_OK);
  expect_error("store_save null library");
  EXPECT_NE(optibar_store_save(library_, nullptr), OPTIBAR_OK);
  expect_error("store_save null path");
  EXPECT_EQ(optibar_store_save(library_, "/nonexistent/dir/store.txt"),
            OPTIBAR_ERR_IO);
  expect_error("store_save unwritable path");
  EXPECT_NE(optibar_store_load(library_, nullptr), OPTIBAR_OK);
  expect_error("store_load null path");
  // library_ has cached plans by now, so the emptiness precondition
  // fires before the file is even opened.
  EXPECT_EQ(optibar_store_load(library_, "/nonexistent/store.txt"),
            OPTIBAR_ERR_INVALID_ARGUMENT);
  expect_error("store_load non-empty library");
  optibar_library* empty = optibar_open_service(path_.c_str(), 1, 0);
  ASSERT_NE(empty, nullptr);
  EXPECT_EQ(optibar_store_load(empty, "/nonexistent/store.txt"),
            OPTIBAR_ERR_IO);
  expect_error("store_load missing file");
  optibar_close(empty);

  EXPECT_NE(optibar_tune_collective_v2(nullptr, OPTIBAR_COLLECTIVE_ALLREDUCE,
                                       8, 0, nullptr, nullptr),
            OPTIBAR_OK);
  expect_error("tune_collective_v2 null library");
  EXPECT_NE(optibar_tune_hybrid_v2(nullptr, nullptr, nullptr, nullptr),
            OPTIBAR_OK);
  expect_error("tune_hybrid_v2 null library");
  EXPECT_EQ(optibar_ibarrier_post(nullptr), nullptr);
  expect_error("ibarrier_post null library");
  EXPECT_EQ(optibar_ibarrier_test(nullptr), -1);
  expect_error("ibarrier_test null episode");
  EXPECT_NE(optibar_ibarrier_wait(nullptr), OPTIBAR_OK);
  expect_error("ibarrier_wait null episode");
  EXPECT_EQ(optibar_icollective_post(nullptr, OPTIBAR_COLLECTIVE_ALLREDUCE,
                                     nullptr, 1, 0),
            nullptr);
  expect_error("icollective_post null library");
  EXPECT_EQ(optibar_icollective_test(nullptr), -1);
  expect_error("icollective_test null episode");
  EXPECT_NE(optibar_icollective_wait(nullptr), OPTIBAR_OK);
  expect_error("icollective_wait null episode");
}

TEST_F(CapiServiceTest, StoreLoadRejectsCorruptAndNonEmptyTargets) {
  const size_t subset[] = {0, 1, 2};
  ASSERT_NE(optibar_subset_plan_v2(library_, subset, 3), nullptr);
  ASSERT_EQ(optibar_store_save(library_, store_.c_str()), OPTIBAR_OK);

  // Loading into a library that already cached plans is a caller bug.
  EXPECT_EQ(optibar_store_load(library_, store_.c_str()),
            OPTIBAR_ERR_INVALID_ARGUMENT);
  EXPECT_GT(std::strlen(optibar_last_error()), 0u);

  // A corrupted store is an IO error, never a crash.
  {
    std::ofstream out(store_, std::ios::trunc);
    out << "optibar-plan-store v1\nranks 8\nentries 1\ngarbage\n";
  }
  optibar_library* fresh = optibar_open_service(path_.c_str(), 1, 0);
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ(optibar_store_load(fresh, store_.c_str()), OPTIBAR_ERR_IO);
  EXPECT_GT(std::strlen(optibar_last_error()), 0u);
  // The failed load leaves the service usable.
  EXPECT_NE(optibar_subset_plan_v2(fresh, subset, 3), nullptr);
  optibar_close(fresh);
}

TEST_F(CapiServiceTest, AutoRepairServiceHealsThroughTheCApi) {
  optibar_library* service =
      optibar_open_service(path_.c_str(), 1, /*auto_repair=*/1);
  ASSERT_NE(service, nullptr);
  const size_t subset[] = {0, 1, 2, 3, 4, 5};
  ASSERT_NE(optibar_subset_plan_v2(service, subset, 6), nullptr);
  for (int i = 0; i < 3; ++i) {
    optibar_report_stall(service, subset, 6, "injected stall");
  }
  ASSERT_EQ(optibar_service_wait(service), OPTIBAR_OK);
  optibar_plan_state_t state = OPTIBAR_PLAN_DEGRADED;
  ASSERT_EQ(optibar_plan_state(service, subset, 6, &state), OPTIBAR_OK);
  EXPECT_EQ(state, OPTIBAR_PLAN_PROBATION);
  // The repaired plan is served again (no degraded warning status).
  ASSERT_NE(optibar_subset_plan_v2(service, subset, 6), nullptr);
  EXPECT_EQ(optibar_last_status(), OPTIBAR_OK);
  EXPECT_EQ(optibar_report_success(service, subset, 6), OPTIBAR_OK);
  EXPECT_EQ(optibar_report_success(service, subset, 6), OPTIBAR_OK);
  ASSERT_EQ(optibar_plan_state(service, subset, 6, &state), OPTIBAR_OK);
  EXPECT_EQ(state, OPTIBAR_PLAN_HEALTHY);
  optibar_close(service);
}

}  // namespace
