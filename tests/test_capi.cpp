// Tests for the C API: handle lifecycle, plan extraction, error paths,
// and — the crucial semantic check — replaying a plan's per-rank op
// sequences through the MPI-like runtime synchronizes correctly.
#include "capi/optibar.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "simmpi/runtime.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"

namespace {

using namespace optibar;

class CapiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             "optibar_capi_profile.txt")
                .string();
    const MachineSpec m = quad_cluster(2);
    generate_profile(m, round_robin_mapping(m, 16)).save_file(path_);
    library_ = optibar_open(path_.c_str(), errbuf_, sizeof errbuf_);
    ASSERT_NE(library_, nullptr) << errbuf_;
  }
  void TearDown() override {
    optibar_close(library_);
    std::filesystem::remove(path_);
  }

  std::string path_;
  optibar_library* library_ = nullptr;
  char errbuf_[256] = {};
};

TEST(Capi, OpenRejectsMissingFile) {
  char errbuf[128] = {};
  EXPECT_EQ(optibar_open("/nonexistent/profile.txt", errbuf, sizeof errbuf),
            nullptr);
  EXPECT_NE(std::string(errbuf).find("cannot open"), std::string::npos);
}

TEST(Capi, OpenRejectsNullPath) {
  char errbuf[128] = {};
  EXPECT_EQ(optibar_open(nullptr, errbuf, sizeof errbuf), nullptr);
}

TEST(Capi, NullHandleAccessorsAreSafe) {
  EXPECT_EQ(optibar_ranks(nullptr), 0u);
  EXPECT_EQ(optibar_plan_ranks(nullptr), 0u);
  EXPECT_EQ(optibar_plan_op_count(nullptr, 0), 0u);
  EXPECT_DOUBLE_EQ(optibar_plan_predicted_seconds(nullptr), 0.0);
  optibar_close(nullptr);  // must not crash
}

TEST_F(CapiTest, ReportsRankCount) {
  EXPECT_EQ(optibar_ranks(library_), 16u);
}

TEST_F(CapiTest, WorldPlanHasSaneShape) {
  const optibar_plan* plan =
      optibar_world_plan(library_, errbuf_, sizeof errbuf_);
  ASSERT_NE(plan, nullptr) << errbuf_;
  EXPECT_EQ(optibar_plan_ranks(plan), 16u);
  EXPECT_GT(optibar_plan_stage_count(plan), 0u);
  EXPECT_GT(optibar_plan_predicted_seconds(plan), 0.0);
  // Total ops across ranks = 2 * total signals > 0.
  std::size_t total = 0;
  for (std::size_t r = 0; r < 16; ++r) {
    total += optibar_plan_op_count(plan, r);
  }
  EXPECT_GT(total, 0u);
  EXPECT_EQ(total % 2, 0u);
}

TEST_F(CapiTest, RepeatedWorldPlansAreCached) {
  const optibar_plan* a = optibar_world_plan(library_, nullptr, 0);
  const optibar_plan* b = optibar_world_plan(library_, nullptr, 0);
  EXPECT_EQ(a, b);
}

TEST_F(CapiTest, OpsEndEachStageWithWaitAll) {
  const optibar_plan* plan = optibar_world_plan(library_, nullptr, 0);
  ASSERT_NE(plan, nullptr);
  for (std::size_t r = 0; r < 16; ++r) {
    const std::size_t n = optibar_plan_op_count(plan, r);
    if (n == 0) {
      continue;
    }
    std::vector<optibar_op> ops(n);
    ASSERT_EQ(optibar_plan_ops(plan, r, ops.data(), n), n);
    // Stage changes only after a stage_end; the last op closes a stage.
    for (std::size_t i = 1; i < n; ++i) {
      if (ops[i].stage != ops[i - 1].stage) {
        EXPECT_EQ(ops[i - 1].stage_end, 1);
      }
    }
    EXPECT_EQ(ops[n - 1].stage_end, 1);
  }
}

TEST_F(CapiTest, PlanOpsTruncateToCapacity) {
  const optibar_plan* plan = optibar_world_plan(library_, nullptr, 0);
  std::vector<optibar_op> one(1);
  EXPECT_EQ(optibar_plan_ops(plan, 0, one.data(), 1), 1u);
  EXPECT_EQ(optibar_plan_ops(plan, 0, nullptr, 8), 0u);
  EXPECT_EQ(optibar_plan_ops(plan, 99, one.data(), 1), 0u);
}

TEST_F(CapiTest, SubsetPlanUsesLocalNumbering) {
  const std::size_t subset[] = {0, 2, 4, 6};
  const optibar_plan* plan =
      optibar_subset_plan(library_, subset, 4, errbuf_, sizeof errbuf_);
  ASSERT_NE(plan, nullptr) << errbuf_;
  EXPECT_EQ(optibar_plan_ranks(plan), 4u);
  for (std::size_t r = 0; r < 4; ++r) {
    const std::size_t n = optibar_plan_op_count(plan, r);
    std::vector<optibar_op> ops(n);
    optibar_plan_ops(plan, r, ops.data(), n);
    for (const optibar_op& op : ops) {
      EXPECT_GE(op.peer, 0);
      EXPECT_LT(op.peer, 4);
    }
  }
}

TEST_F(CapiTest, SubsetPlanRejectsBadSubsets) {
  const std::size_t dup[] = {1, 1};
  EXPECT_EQ(optibar_subset_plan(library_, dup, 2, errbuf_, sizeof errbuf_),
            nullptr);
  EXPECT_NE(std::string(errbuf_).find("duplicate"), std::string::npos);
  const std::size_t oob[] = {0, 99};
  EXPECT_EQ(optibar_subset_plan(library_, oob, 2, errbuf_, sizeof errbuf_),
            nullptr);
  EXPECT_EQ(optibar_subset_plan(library_, nullptr, 2, errbuf_,
                                sizeof errbuf_),
            nullptr);
}

TEST_F(CapiTest, ReplayingPlanOpsSynchronizes) {
  // The contract: a C MPI program replays ops with Issend/Irecv/Waitall.
  // Do exactly that against the in-process runtime and verify clean
  // completion across repeated episodes.
  const optibar_plan* plan = optibar_world_plan(library_, nullptr, 0);
  ASSERT_NE(plan, nullptr);
  const int stages = static_cast<int>(optibar_plan_stage_count(plan));

  simmpi::Communicator comm(16);
  simmpi::run_ranks(comm, [&](simmpi::RankContext& ctx) {
    const std::size_t n = optibar_plan_op_count(plan, ctx.rank());
    std::vector<optibar_op> ops(n);
    optibar_plan_ops(plan, ctx.rank(), ops.data(), n);
    for (int episode = 0; episode < 3; ++episode) {
      std::vector<simmpi::Request> requests;
      for (const optibar_op& op : ops) {
        const int tag = episode * stages + op.stage;
        requests.push_back(
            op.is_send
                ? ctx.issend(static_cast<std::size_t>(op.peer), tag)
                : ctx.irecv(static_cast<std::size_t>(op.peer), tag));
        if (op.stage_end) {
          simmpi::RankContext::wait_all(requests);
          requests.clear();
        }
      }
      EXPECT_TRUE(requests.empty());
    }
  });
  EXPECT_EQ(comm.unmatched_operations(), 0u);
}

}  // namespace
