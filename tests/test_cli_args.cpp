// Tests for the CLI argument parser.
#include "cli/args.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace optibar::cli {
namespace {

TEST(CliArgs, ParsesKeyValuePairs) {
  const Args args = Args::parse({"--machine", "quad", "--ranks", "40"});
  EXPECT_EQ(args.require("machine"), "quad");
  EXPECT_EQ(args.require_size("ranks"), 40u);
}

TEST(CliArgs, ParsesEqualsSyntax) {
  const Args args = Args::parse({"--ranks=64", "--noise=0.05"});
  EXPECT_EQ(args.require_size("ranks"), 64u);
  EXPECT_DOUBLE_EQ(args.double_or("noise", 0.0), 0.05);
}

TEST(CliArgs, ParsesBareFlags) {
  const Args args = Args::parse({"--estimate", "--ranks", "8"});
  EXPECT_TRUE(args.has("estimate"));
  EXPECT_FALSE(args.has("median"));
  // A bare flag has no value to require.
  EXPECT_THROW(args.require("estimate"), Error);
}

TEST(CliArgs, PositionalsAndDoubleDash) {
  const Args args = Args::parse({"a", "--k", "v", "--", "--not-an-option"});
  EXPECT_EQ(args.positionals(),
            (std::vector<std::string>{"a", "--not-an-option"}));
  EXPECT_EQ(args.require("k"), "v");
}

TEST(CliArgs, DefaultsApplyWhenAbsent) {
  const Args args = Args::parse({});
  EXPECT_EQ(args.get_or("mapping", "round-robin"), "round-robin");
  EXPECT_EQ(args.size_or("reps", 25), 25u);
  EXPECT_DOUBLE_EQ(args.double_or("jitter", 0.03), 0.03);
}

TEST(CliArgs, RejectsDuplicates) {
  EXPECT_THROW(Args::parse({"--k", "1", "--k", "2"}), Error);
}

TEST(CliArgs, RejectsMalformedNumbers) {
  const Args args = Args::parse({"--ranks", "abc", "--noise", "x1"});
  EXPECT_THROW(args.require_size("ranks"), Error);
  EXPECT_THROW(args.double_or("noise", 0.0), Error);
}

TEST(CliArgs, RejectsEmptyOptionNames) {
  EXPECT_THROW(Args::parse({"--=v"}), Error);
}

TEST(CliArgs, RequireReportsMissing) {
  const Args args = Args::parse({});
  EXPECT_THROW(args.require("profile"), Error);
}

TEST(CliArgs, CheckAllowedCatchesTypos) {
  const Args args = Args::parse({"--ranks", "4", "--machnie", "quad"});
  EXPECT_THROW(args.check_allowed({"ranks", "machine"}), Error);
  EXPECT_NO_THROW(args.check_allowed({"ranks", "machnie"}));
}

TEST(CliArgs, NegativeNumbersAsValues) {
  // "-1" does not start with "--", so it parses as a value.
  const Args args = Args::parse({"--offset", "-1.5"});
  EXPECT_DOUBLE_EQ(args.double_or("offset", 0.0), -1.5);
}

}  // namespace
}  // namespace optibar::cli
