// Wall-clock smoke test for hierarchical tuning at 10k ranks (CTest
// label `perf`). The paper's §VIII feasibility claim — tuning on the
// order of 0.1 seconds — must survive at 10240 ranks on the tiled path:
// generate the tenk preset, tune it, predict, and netsim-simulate the
// compiled plan, all inside a deliberately loose budget (observed total
// is ~50 ms in a release build; the bound leaves two orders of
// magnitude for sanitizer builds and loaded CI runners). A dense
// pipeline at this scale would blow the budget on the profile alone
// (a 10240^2 double matrix is 840 MB), so passing here is direct
// evidence the hierarchical path never densifies.
#include <gtest/gtest.h>

#include <chrono>

#include "barrier/blocked_schedule.hpp"
#include "barrier/compiled_schedule.hpp"
#include "core/hierarchical.hpp"
#include "netsim/engine.hpp"
#include "profile/generate_tiled.hpp"
#include "profile/tiled_profile.hpp"
#include "topology/machine.hpp"

namespace optibar {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

TEST(ScalePerf, TenKRankTuneAndSimulateInsideBudget) {
  constexpr std::size_t kRanks = 10240;
  constexpr double kBudgetSeconds = 10.0;

  const auto start = std::chrono::steady_clock::now();

  const TiledProfile tiled = generate_tiled_profile(tenk_cluster(), kRanks);
  const HierarchicalTuneResult tuned = tune_hierarchical(tiled);
  ASSERT_FALSE(tuned.used_dense_fallback) << tuned.fallback_reason;
  ASSERT_EQ(tuned.blocked.ranks(), kRanks);
  EXPECT_GT(tuned.predicted_cost, 0.0);

  CompiledSchedule compiled;
  compile_blocked(tuned.blocked, tiled, compiled);

  SimOptions options;
  options.jitter = 0.02;
  options.seed = 7;
  SimWorkspace workspace;
  SimResult result;
  simulate_compiled_into(compiled, tiled, options, workspace, result);
  ASSERT_FALSE(result.deadlocked);
  EXPECT_GT(result.barrier_time(), 0.0);

  const double elapsed = seconds_since(start);
  EXPECT_LT(elapsed, kBudgetSeconds)
      << "10k-rank tune+predict+simulate took " << elapsed
      << " s; the hierarchical path has regressed toward dense scaling";
}

}  // namespace
}  // namespace optibar
