// Tests for Schedule: Eq. 3 knowledge recurrence, barrier detection,
// transforms, and the embedding primitive of the hierarchical composer.
#include "barrier/schedule.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "barrier/algorithms.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

StageMatrix stage_with(std::size_t p,
                       std::initializer_list<std::pair<std::size_t, std::size_t>>
                           edges) {
  StageMatrix m(p, p, 0);
  for (const auto& [i, j] : edges) {
    m(i, j) = 1;
  }
  return m;
}

TEST(Schedule, EmptyScheduleIsBarrierOnlyForOneRank) {
  EXPECT_TRUE(Schedule(1).is_barrier());
  EXPECT_FALSE(Schedule(2).is_barrier());
}

TEST(Schedule, RejectsSelfSignals) {
  Schedule s(2);
  StageMatrix bad(2, 2, 0);
  bad(0, 0) = 1;
  EXPECT_THROW(s.append_stage(bad), Error);
}

TEST(Schedule, RejectsWrongShapeStage) {
  Schedule s(3);
  EXPECT_THROW(s.append_stage(StageMatrix(2, 2, 0)), Error);
}

TEST(Schedule, TargetsAndSourcesReadRowsAndColumns) {
  Schedule s(3);
  s.append_stage(stage_with(3, {{0, 1}, {0, 2}, {2, 1}}));
  EXPECT_EQ(s.targets_of(0, 0), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(s.targets_of(1, 0), (std::vector<std::size_t>{}));
  EXPECT_EQ(s.sources_of(1, 0), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(s.sources_of(0, 0), (std::vector<std::size_t>{}));
}

TEST(Schedule, KnowledgeRecurrenceMatchesEquation3ByHand) {
  // P=2 linear: S0 = {1->0}, S1 = {0->1}.
  Schedule s(2);
  s.append_stage(stage_with(2, {{1, 0}}));
  // K0 = I + S0: rank 0 knows both arrivals, rank 1 only its own.
  const BoolMatrix k0 = s.knowledge_after(0);
  EXPECT_EQ(k0(0, 0), 1);
  EXPECT_EQ(k0(1, 0), 1);
  EXPECT_EQ(k0(0, 1), 0);
  EXPECT_EQ(k0(1, 1), 1);
  EXPECT_FALSE(s.is_barrier());
  s.append_stage(stage_with(2, {{0, 1}}));
  EXPECT_TRUE(s.final_knowledge().all_nonzero());
  EXPECT_TRUE(s.is_barrier());
}

TEST(Schedule, OneDirectionOnlyIsNotABarrier) {
  Schedule s(2);
  s.append_stage(stage_with(2, {{0, 1}}));
  EXPECT_FALSE(s.is_barrier());  // rank 0 never learns of rank 1's arrival
}

TEST(Schedule, KnowledgePropagatesTransitively) {
  // 0 -> 1 in stage 0, 1 -> 2 in stage 1: rank 2 must know rank 0.
  Schedule s(3);
  s.append_stage(stage_with(3, {{0, 1}}));
  s.append_stage(stage_with(3, {{1, 2}}));
  const BoolMatrix k = s.final_knowledge();
  EXPECT_EQ(k(0, 2), 1);
  EXPECT_EQ(k(1, 2), 1);
}

TEST(Schedule, OrderOfStagesMatters) {
  // The same two stages in the opposite order break transitivity.
  Schedule s(3);
  s.append_stage(stage_with(3, {{1, 2}}));
  s.append_stage(stage_with(3, {{0, 1}}));
  const BoolMatrix k = s.final_knowledge();
  EXPECT_EQ(k(0, 2), 0);
}

TEST(Schedule, TransposedReversedOfGatherIsBroadcast) {
  const Schedule arrival = tree_arrival(8);
  const Schedule departure = arrival.transposed_reversed();
  EXPECT_EQ(departure.stage_count(), arrival.stage_count());
  // First departure stage is the transpose of the last arrival stage.
  EXPECT_EQ(departure.stage(0),
            arrival.stage(arrival.stage_count() - 1).transposed());
  // Gather + broadcast = full barrier.
  EXPECT_TRUE(arrival.concatenated(departure).is_barrier());
}

TEST(Schedule, ConcatenateRequiresSameRankCount) {
  EXPECT_THROW(Schedule(2).concatenated(Schedule(3)), Error);
}

TEST(Schedule, CompactedDropsEmptyStagesOnly) {
  Schedule s(2);
  s.append_stage(stage_with(2, {{1, 0}}));
  s.append_stage(StageMatrix(2, 2, 0));
  s.append_stage(stage_with(2, {{0, 1}}));
  const Schedule c = s.compacted();
  EXPECT_EQ(c.stage_count(), 2u);
  EXPECT_TRUE(c.is_barrier());
  EXPECT_EQ(s.nonempty_stage_count(), 2u);
}

TEST(Schedule, TotalSignalsCounts) {
  const Schedule s = linear_barrier(5);
  // 4 arrival + 4 departure signals.
  EXPECT_EQ(s.total_signals(), 8u);
}

TEST(Schedule, PopStageUndoesAppend) {
  Schedule s(2);
  s.append_stage(stage_with(2, {{1, 0}}));
  s.append_stage(stage_with(2, {{0, 1}}));
  EXPECT_TRUE(s.is_barrier());
  s.pop_stage();
  EXPECT_EQ(s.stage_count(), 1u);
  EXPECT_FALSE(s.is_barrier());
  EXPECT_THROW(Schedule(2).pop_stage(), Error);
}

TEST(Schedule, EmbedMapsLocalRanksIntoGlobalSpace) {
  // A 2-rank exchange embedded over global ranks {3, 1} of a 5-rank
  // schedule, starting at stage 1.
  Schedule local(2);
  local.append_stage(stage_with(2, {{0, 1}}));
  Schedule global(5);
  embed_schedule(global, local, {3, 1}, 1);
  EXPECT_EQ(global.stage_count(), 2u);
  EXPECT_TRUE(global.stage(0).all_zero());
  EXPECT_EQ(global.stage(1)(3, 1), 1);
  EXPECT_EQ(global.stage(1).count_nonzero(), 1u);
}

TEST(Schedule, EmbedMergesWithExistingSignals) {
  Schedule global(4);
  global.append_stage(stage_with(4, {{0, 1}}));
  Schedule local(2);
  local.append_stage(stage_with(2, {{0, 1}}));
  embed_schedule(global, local, {2, 3}, 0);
  EXPECT_EQ(global.stage(0)(0, 1), 1);  // original preserved
  EXPECT_EQ(global.stage(0)(2, 3), 1);  // embedded added
}

TEST(Schedule, EmbedValidatesRankMap) {
  Schedule global(3);
  Schedule local(2);
  local.append_stage(stage_with(2, {{0, 1}}));
  EXPECT_THROW(embed_schedule(global, local, {0}, 0), Error);      // arity
  EXPECT_THROW(embed_schedule(global, local, {0, 5}, 0), Error);   // range
}

TEST(Schedule, StreamOutputMentionsShape) {
  std::ostringstream os;
  os << linear_barrier(3);
  EXPECT_NE(os.str().find("3 ranks"), std::string::npos);
  EXPECT_NE(os.str().find("2 stages"), std::string::npos);
}

}  // namespace
}  // namespace optibar
