// End-to-end integration tests across all modules: the full Figure 1
// pipeline (measure -> store -> tune -> execute), cross-engine
// agreement, and the headline result of Figure 11.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "core/tuner.hpp"
#include "netsim/engine.hpp"
#include "profile/estimator.hpp"
#include "profile/synthetic_engine.hpp"
#include "simmpi/executor.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"

namespace optibar {
namespace {

TEST(Integration, FullPipelineMeasureStoreTuneExecute) {
  // 1. "Measure" a profile through the Section IV-A estimator.
  const MachineSpec machine = quad_cluster(2);
  const Mapping mapping = block_mapping(machine, 16);
  SyntheticEngineOptions eopts;
  eopts.noise = 0.02;
  SyntheticEngine engine(machine, mapping, eopts);
  EstimatorOptions fast;
  fast.repetitions = 5;
  const TopologyProfile measured = estimate_profile(engine, fast);

  // 2. Store and reload (Figure 1's disk decoupling).
  std::stringstream disk;
  measured.save(disk);
  const TopologyProfile loaded = TopologyProfile::load(disk);
  ASSERT_EQ(loaded, measured);

  // 3. Tune on the estimated profile.
  const TuneResult tuned = tune_barrier(loaded);
  EXPECT_TRUE(tuned.schedule().is_barrier());

  // 4. Execute the tuned barrier on both engines.
  const SimResult sim = simulate(tuned.schedule(), engine.ground_truth());
  EXPECT_GT(sim.barrier_time(), 0.0);
  const simmpi::ScheduleExecutor exec(tuned.schedule());
  const auto exits = exec.run_once();
  EXPECT_EQ(exits.size(), 16u);
}

TEST(Integration, EstimatedProfileTunesAsWellAsGroundTruth) {
  // Tuning on the (noisy) estimated profile must produce a barrier
  // whose *simulated* cost is close to the one tuned on ground truth —
  // the accuracy claim of Section VI at system level.
  const MachineSpec machine = quad_cluster(4);
  const Mapping mapping = block_mapping(machine, 32);
  SyntheticEngineOptions eopts;
  eopts.noise = 0.05;
  SyntheticEngine engine(machine, mapping, eopts);
  EstimatorOptions fast;
  fast.repetitions = 5;
  fast.max_payload_exponent = 16;
  const TopologyProfile measured = estimate_profile(engine, fast);
  const TopologyProfile& truth = engine.ground_truth();

  const TuneResult from_estimate = tune_barrier(measured);
  const TuneResult from_truth = tune_barrier(truth);
  const double t_estimate =
      simulate(from_estimate.schedule(), truth).barrier_time();
  const double t_truth = simulate(from_truth.schedule(), truth).barrier_time();
  EXPECT_LE(t_estimate, 1.25 * t_truth);
}

TEST(Integration, Figure11HeadlineHybridBeatsTreeOnBothClusters) {
  // The headline claim: the generated hybrid is no worse than the
  // MPI_Barrier baseline (a binary tree, per Section VII-C) everywhere,
  // and clearly better at full machine scale.
  struct Case {
    MachineSpec machine;
    std::size_t ranks;
  };
  const Case cases[] = {{quad_cluster(), 64}, {hex_cluster(), 120}};
  for (const Case& c : cases) {
    const TopologyProfile profile = generate_profile(
        c.machine, round_robin_mapping(c.machine, c.ranks), GenerateOptions{});
    const TuneResult tuned = tune_barrier(profile);
    const double hybrid = simulate(tuned.schedule(), profile).barrier_time();
    const double tree =
        simulate(tree_barrier(c.ranks), profile).barrier_time();
    EXPECT_LT(hybrid, tree) << c.machine.name();
    // "this benefit halves the barrier overhead for our largest cases"
    // on the bigger system; require a substantial (>= 30%) win on both.
    EXPECT_LT(hybrid, 0.7 * tree) << c.machine.name();
  }
}

TEST(Integration, PredictionRanksAlgorithmsLikeSimulation) {
  // Figures 5/6's validation: the model must order D/T/L the same way
  // the (simulated) measurements do at representative sizes.
  const MachineSpec m = quad_cluster();
  for (std::size_t p : {16u, 32u, 56u, 64u}) {
    const TopologyProfile profile =
        generate_profile(m, round_robin_mapping(m, p), GenerateOptions{});
    struct Entry {
      const char* name;
      double predicted;
      double simulated;
    };
    std::vector<Entry> entries;
    for (const auto& [name, schedule] :
         {std::pair<const char*, Schedule>{"D", dissemination_barrier(p)},
          {"T", tree_barrier(p)},
          {"L", linear_barrier(p)}}) {
      entries.push_back(Entry{name, predicted_time(schedule, profile),
                              simulate(schedule, profile).barrier_time()});
    }
    // Same pairwise ordering for every pair with a clear (>20%) gap.
    for (std::size_t a = 0; a < entries.size(); ++a) {
      for (std::size_t b = 0; b < entries.size(); ++b) {
        if (entries[a].predicted < 0.8 * entries[b].predicted) {
          EXPECT_LT(entries[a].simulated, entries[b].simulated)
              << entries[a].name << " vs " << entries[b].name << " at P=" << p;
        }
      }
    }
  }
}

TEST(Integration, RoundRobinOscillationAppearsInSimulation) {
  // Figure 5's odd/even oscillation: under round-robin placement on two
  // nodes, odd P makes dissemination phases cross nodes that even P
  // resolves locally. Verify the sawtooth in the simulated series.
  const MachineSpec m = quad_cluster();
  auto simulated = [&](std::size_t p) {
    const TopologyProfile profile =
        generate_profile(m, round_robin_mapping(m, p), GenerateOptions{});
    return simulate(dissemination_barrier(p), profile).barrier_time();
  };
  // Even sizes in 10..16 are cheaper than both odd neighbours.
  for (std::size_t p : {10u, 12u, 14u}) {
    EXPECT_LT(simulated(p), simulated(p + 1)) << "P=" << p;
    EXPECT_LT(simulated(p), simulated(p - 1)) << "P=" << p;
  }
}

TEST(Integration, CompiledHybridRunsOnThreadRuntime) {
  const MachineSpec m = quad_cluster(2);
  const TopologyProfile profile = generate_profile(m, 12);
  const TuneResult tuned = tune_barrier(profile);
  const CompiledBarrier compiled = tuned.compiled();
  simmpi::Communicator comm(12);
  simmpi::run_ranks(comm, [&](simmpi::RankContext& ctx) {
    for (int episode = 0; episode < 4; ++episode) {
      compiled.execute(ctx, episode);
    }
  });
  EXPECT_EQ(comm.unmatched_operations(), 0u);
}

TEST(Integration, ProfileFileRoundTripDrivesIdenticalTuning) {
  const MachineSpec m = hex_cluster(4);
  const TopologyProfile profile = generate_profile(
      m, round_robin_mapping(m, 48), GenerateOptions{0.1, 17});
  const auto path = std::filesystem::temp_directory_path() /
                    "optibar_integration_profile.txt";
  profile.save_file(path.string());
  const TopologyProfile loaded = TopologyProfile::load_file(path.string());
  std::filesystem::remove(path);
  EXPECT_EQ(tune_barrier(profile).schedule(),
            tune_barrier(loaded).schedule());
}

}  // namespace
}  // namespace optibar
