// Tests cross-validating the explicit layered dependency graph against
// the compact DP predictor, and checking critical-path extraction.
#include "barrier/dependency_graph.hpp"

#include <gtest/gtest.h>

#include "barrier/algorithms.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"

namespace optibar {
namespace {

class GraphVsPredictor : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GraphVsPredictor, CriticalPathMatchesDpOnAllAlgorithms) {
  const std::size_t p = GetParam();
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile = generate_profile(
      m, round_robin_mapping(m, p), GenerateOptions{0.1, 3});
  for (const Schedule& s :
       {linear_barrier(p), dissemination_barrier(p), tree_barrier(p),
        pairwise_exchange_barrier(p)}) {
    const DependencyGraph graph(s, profile);
    EXPECT_NEAR(graph.critical_path_cost(), predicted_time(s, profile),
                1e-15)
        << "P=" << p;
  }
}

INSTANTIATE_TEST_SUITE_P(RankSweep, GraphVsPredictor,
                         ::testing::Values(2, 3, 5, 8, 13, 16, 24, 32));

TEST(DependencyGraph, PathStartsAtEntryAndEndsAtExit) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile = generate_profile(m, 16);
  const Schedule s = tree_barrier(16);
  const DependencyGraph graph(s, profile);
  const auto& path = graph.critical_path();
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front().stage, 0u);
  EXPECT_EQ(path.back().stage, s.stage_count());
}

TEST(DependencyGraph, PathStagesAreConsecutive) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile = generate_profile(m, 8);
  const DependencyGraph graph(tree_barrier(8), profile);
  const auto& path = graph.critical_path();
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_EQ(path[i].stage, path[i - 1].stage + 1);
  }
}

TEST(DependencyGraph, PathEdgesAreRealDependencies) {
  // Every consecutive path pair is either the same rank (local
  // sequencing) or a (sender -> receiver) signal of that stage.
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile = generate_profile(m, 16);
  const Schedule s = dissemination_barrier(16);
  const DependencyGraph graph(s, profile);
  const auto& path = graph.critical_path();
  for (std::size_t i = 1; i < path.size(); ++i) {
    const DepNode& from = path[i - 1];
    const DepNode& to = path[i];
    if (from.rank != to.rank) {
      EXPECT_EQ(s.stage(from.stage)(from.rank, to.rank), 1)
          << "edge " << from.rank << "->" << to.rank << " at stage "
          << from.stage << " is not a signal";
    }
  }
}

TEST(DependencyGraph, CompletionTimesAreMonotoneAcrossStages) {
  const MachineSpec m = hex_cluster();
  const TopologyProfile profile = generate_profile(m, 24);
  const DependencyGraph graph(tree_barrier(24), profile);
  const auto& times = graph.completion_times();
  for (std::size_t s = 1; s < times.size(); ++s) {
    for (std::size_t r = 0; r < times[s].size(); ++r) {
      EXPECT_GE(times[s][r], times[s - 1][r]);
    }
  }
}

TEST(DependencyGraph, CriticalPathOfLinearGoesThroughRoot) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile = generate_profile(m, 32);
  const DependencyGraph graph(linear_barrier(32), profile);
  bool touches_root = false;
  for (const DepNode& node : graph.critical_path()) {
    if (node.rank == 0) {
      touches_root = true;
    }
  }
  EXPECT_TRUE(touches_root);
}

TEST(DependencyGraph, DescribeMentionsEveryPathNode) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile = generate_profile(m, 4);
  const DependencyGraph graph(linear_barrier(4), profile);
  const std::string text = graph.describe_critical_path();
  EXPECT_NE(text.find("critical path"), std::string::npos);
  EXPECT_NE(text.find("stage"), std::string::npos);
}

TEST(DependencyGraph, HonorsEntrySkewLikePredictor) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile = generate_profile(m, 8);
  const Schedule s = tree_barrier(8);
  PredictOptions opts;
  opts.entry_times.assign(8, 0.0);
  opts.entry_times[5] = 3.0e-4;
  const DependencyGraph graph(s, profile, opts);
  EXPECT_NEAR(graph.critical_path_cost(), predicted_time(s, profile, opts),
              1e-12);
}

}  // namespace
}  // namespace optibar
