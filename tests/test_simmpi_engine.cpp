// Tests for the wall-clock measurement engine over the thread runtime —
// the closest in-process analogue of the paper's actual MPI measurement
// procedure. Link delays are scaled into milliseconds so scheduler noise
// cannot drown them; tolerances are correspondingly loose.
#include "profile/simmpi_engine.hpp"

#include <gtest/gtest.h>

#include "profile/estimator.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

SimMpiEngineOptions scaled() {
  SimMpiEngineOptions options;
  options.latency_scale = 200.0;  // microseconds -> sub-millisecond sleeps
  return options;
}

TEST(SimMpiEngine, ValidatesArguments) {
  const MachineSpec m = quad_cluster(1);
  SimMpiEngine engine(m, block_mapping(m, 4), scaled());
  EXPECT_EQ(engine.ranks(), 4u);
  EXPECT_THROW(engine.roundtrip_seconds(1, 1, 8), Error);
  EXPECT_THROW(engine.roundtrip_seconds(0, 9, 8), Error);
  EXPECT_THROW(engine.batch_seconds(2, 2, 4), Error);
  EXPECT_THROW(engine.batch_seconds(0, 1, 0), Error);
  EXPECT_THROW(engine.noop_seconds(7), Error);
  SimMpiEngineOptions bad;
  bad.latency_scale = 0.0;
  EXPECT_THROW(SimMpiEngine(m, block_mapping(m, 2), bad), Error);
}

TEST(SimMpiEngine, RoundtripCoversTwoLinkTraversals) {
  const MachineSpec m = quad_cluster(2);
  SimMpiEngine engine(m, block_mapping(m, 16), scaled());
  // Inter-node pair: each direction sleeps O * scale; the measured
  // round trip (descaled) must be at least 2*O and not wildly more.
  const double truth = engine.ground_truth().o(0, 8);
  const double measured = engine.roundtrip_seconds(0, 8, 1);
  EXPECT_GE(measured, 2.0 * truth * 0.9);
  EXPECT_LE(measured, 2.0 * truth * 3.0);  // scheduler slack
}

TEST(SimMpiEngine, RoundtripDistinguishesTiers) {
  const MachineSpec m = quad_cluster(2);
  SimMpiEngine engine(m, block_mapping(m, 16), scaled());
  // Inter-node (25us) vs shared-cache (2us): the wall-clock measurement
  // must preserve the order with a clear margin.
  const double remote = engine.roundtrip_seconds(0, 8, 1);
  const double local = engine.roundtrip_seconds(0, 1, 1);
  EXPECT_GT(remote, 2.0 * local);
}

TEST(SimMpiEngine, BatchGrowsWithMessageCount) {
  const MachineSpec m = quad_cluster(2);
  SimMpiEngine engine(m, block_mapping(m, 16), scaled());
  const double one = engine.batch_seconds(0, 8, 1);
  const double eight = engine.batch_seconds(0, 8, 8);
  // Seven extra issuance gaps of L * scale each.
  const double truth_l = engine.ground_truth().l(0, 8);
  EXPECT_GT(eight - one, 0.5 * 7 * truth_l);
}

TEST(SimMpiEngine, NoopApproximatesSelfOverhead) {
  const MachineSpec m = quad_cluster(1);
  SimMpiEngine engine(m, block_mapping(m, 4), scaled());
  const double truth = engine.ground_truth().o(2, 2);
  const double measured = engine.noop_seconds(2);
  EXPECT_GE(measured, truth * 0.9);
  EXPECT_LE(measured, truth * 5.0);
}

TEST(SimMpiEngine, EstimatorRecoversTierOrderingFromWallClock) {
  // End to end through the Section IV-A estimator on real threads: the
  // estimated inter-node O must clearly exceed the estimated local O.
  const MachineSpec m = quad_cluster(2);
  SimMpiEngine engine(m, block_mapping(m, 16), scaled());
  EstimatorOptions fast;
  fast.repetitions = 2;
  fast.max_payload_exponent = 4;
  fast.max_batch = 4;
  const double remote_o = estimate_overhead(engine, 0, 8, fast);
  const double local_o = estimate_overhead(engine, 0, 1, fast);
  EXPECT_GT(remote_o, 2.0 * local_o);
}

}  // namespace
}  // namespace optibar
