// Tests for the schedule post-optimization passes: validity
// preservation, monotone cost, known minimal forms, and behaviour on
// tuned hybrids.
#include "barrier/optimize.hpp"

#include <gtest/gtest.h>

#include "barrier/algorithms.hpp"
#include "core/tuner.hpp"
#include "netsim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace optibar {
namespace {

TopologyProfile uniform_profile(std::size_t p, double o, double l) {
  Matrix<double> om(p, p, o);
  Matrix<double> lm(p, p, l);
  for (std::size_t i = 0; i < p; ++i) {
    om(i, i) = o / 10;
    lm(i, i) = 0.0;
  }
  return TopologyProfile(std::move(om), std::move(lm));
}

TEST(Prune, TreeBarrierIsAlreadyMinimal) {
  // 2(P-1) signals in a gather/broadcast pair: nothing to remove.
  const std::size_t p = 16;
  const TopologyProfile profile = uniform_profile(p, 1e-5, 1e-6);
  const OptimizeResult result =
      prune_redundant_signals(tree_barrier(p), profile);
  EXPECT_EQ(result.signals_removed, 0u);
  EXPECT_EQ(result.schedule, tree_barrier(p));
}

TEST(Prune, DisseminationIsPathUnique) {
  // A notable structural fact the pruner exposes: although the
  // dissemination barrier sends P*ceil(log2 P) signals (vs the tree's
  // 2(P-1)), *every* one of them is essential — knowledge of rank i
  // reaches rank j along exactly one chain of power-of-two offsets (the
  // binary representation of j-i), so removing any signal breaks the
  // Eq. 3 all-ones property. Redundancy only exists in combined or
  // over-synchronized patterns.
  const std::size_t p = 16;
  const TopologyProfile profile = uniform_profile(p, 1e-5, 1e-6);
  const OptimizeResult result =
      prune_redundant_signals(dissemination_barrier(p), profile);
  EXPECT_EQ(result.signals_removed, 0u);
}

TEST(Prune, DoubleBarrierCollapsesToSingle) {
  // Two back-to-back barriers: once the first completes knowledge, the
  // whole second one is redundant and must be stripped.
  const std::size_t p = 16;
  const TopologyProfile profile = uniform_profile(p, 1e-5, 1e-6);
  Schedule twice = dissemination_barrier(p);
  const Schedule second = dissemination_barrier(p);
  for (const StageMatrix& stage : second.stages()) {
    twice.append_stage(stage);
  }
  const OptimizeResult result = prune_redundant_signals(twice, profile);
  EXPECT_EQ(result.signals_removed, second.total_signals());
  EXPECT_EQ(result.schedule, dissemination_barrier(p));
  EXPECT_LT(result.cost_after, 0.6 * result.cost_before);
}

TEST(Prune, PrefersDroppingExpensiveSignals) {
  // Rank 2's arrival can reach rank 1 either directly (expensive link)
  // or relayed through rank 0 (cheap); exactly one of the redundant
  // pair of paths survives, and the greedy pass drops the expensive
  // direct signal.
  const std::size_t p = 3;
  Matrix<double> o(p, p, 1e-6);
  Matrix<double> l(p, p, 1e-7);
  for (std::size_t i = 0; i < p; ++i) {
    o(i, i) = 5e-7;
    l(i, i) = 0.0;
  }
  o(2, 1) = o(1, 2) = 1e-4;  // slow direct link between 1 and 2
  l(2, 1) = l(1, 2) = 1e-5;
  const TopologyProfile profile(std::move(o), std::move(l));
  // Stage 0: 1->0, 2->0 and the redundant direct 2->1.
  // Stage 1: 0->1, 0->2 (carries everyone's arrival to both).
  Schedule s(p);
  StageMatrix s0(p, p, 0);
  s0(1, 0) = s0(2, 0) = s0(2, 1) = 1;
  StageMatrix s1(p, p, 0);
  s1(0, 1) = s1(0, 2) = 1;
  s.append_stage(std::move(s0));
  s.append_stage(std::move(s1));
  ASSERT_TRUE(s.is_barrier());
  const OptimizeResult result = prune_redundant_signals(s, profile);
  EXPECT_EQ(result.signals_removed, 1u);
  EXPECT_EQ(result.schedule.stage(0)(2, 1), 0);  // the slow one went
  EXPECT_EQ(result.schedule.stage(0)(2, 0), 1);  // the relay stayed
}

TEST(Fuse, CollapsesArtificiallySplitStages) {
  // A barrier split into one-signal-per-stage steps fuses back down.
  const std::size_t p = 4;
  const TopologyProfile profile = uniform_profile(p, 1e-5, 1e-6);
  Schedule split(p);
  // Arrival 1->0, 2->0, 3->0 in three separate stages, then broadcast.
  for (std::size_t i = 1; i < p; ++i) {
    StageMatrix m(p, p, 0);
    m(i, 0) = 1;
    split.append_stage(std::move(m));
  }
  StageMatrix bcast(p, p, 0);
  for (std::size_t i = 1; i < p; ++i) {
    bcast(0, i) = 1;
  }
  split.append_stage(std::move(bcast));
  ASSERT_TRUE(split.is_barrier());

  const OptimizeResult result = fuse_stages(split, profile);
  EXPECT_GT(result.stages_fused, 0u);
  EXPECT_LT(result.schedule.stage_count(), split.stage_count());
  EXPECT_TRUE(result.schedule.is_barrier());
  EXPECT_LE(result.cost_after, result.cost_before + 1e-18);
}

TEST(Fuse, NeverAcceptsCostlierSchedules) {
  const std::size_t p = 24;
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, p));
  for (const Schedule& s :
       {tree_barrier(p), dissemination_barrier(p), linear_barrier(p)}) {
    const OptimizeResult result = fuse_stages(s, profile);
    EXPECT_LE(result.cost_after, result.cost_before + 1e-18);
    EXPECT_TRUE(result.schedule.is_barrier());
  }
}

TEST(Optimize, FixpointCombinesBothPasses) {
  const std::size_t p = 12;
  const MachineSpec m = quad_cluster(2);
  const TopologyProfile profile = generate_profile(m, 12);
  const OptimizeResult result =
      optimize_schedule(dissemination_barrier(p), profile);
  EXPECT_TRUE(result.schedule.is_barrier());
  EXPECT_LE(result.cost_after, result.cost_before + 1e-18);
  // Running again is a no-op: it is a fixpoint.
  const OptimizeResult again = optimize_schedule(result.schedule, profile);
  EXPECT_EQ(again.signals_removed, 0u);
  EXPECT_EQ(again.stages_fused, 0u);
  EXPECT_EQ(again.schedule, result.schedule);
}

TEST(Optimize, TunedHybridGainsLittle) {
  // The hybrid is constructed near-minimal; the optimizer's gain on it
  // must be small (this bounds how much the greedy composition leaves
  // on the table at the schedule level).
  const MachineSpec m = quad_cluster();
  const std::size_t p = 32;
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, p));
  const TuneResult tuned = tune_barrier(profile);
  const OptimizeResult result =
      optimize_schedule(tuned.schedule(), profile);
  EXPECT_TRUE(result.schedule.is_barrier());
  EXPECT_GE(result.cost_after, 0.5 * result.cost_before);
}

TEST(Optimize, OptimizedSchedulesSimulateNoWorse) {
  // The passes are priced by the predictor; confirm on the simulator.
  const std::size_t p = 16;
  const MachineSpec m = quad_cluster(2);
  const TopologyProfile profile = generate_profile(m, p);
  const Schedule original = dissemination_barrier(p);
  const OptimizeResult result = optimize_schedule(original, profile);
  EXPECT_LE(simulate(result.schedule, profile).barrier_time(),
            1.05 * simulate(original, profile).barrier_time());
}

TEST(Optimize, PropertyRandomBarriersSurviveOptimization) {
  Rng rng(42);
  for (int round = 0; round < 6; ++round) {
    const std::size_t p = 3 + rng.next_below(8);
    // Random gather tree + transposed broadcast, then pad with a full
    // dissemination to create redundancy.
    Schedule s = dissemination_barrier(p);
    const Schedule tree = tree_barrier(p);
    for (const StageMatrix& stage : tree.stages()) {
      s.append_stage(stage);
    }
    const TopologyProfile profile = uniform_profile(p, 1e-5, 1e-6);
    const OptimizeResult result = optimize_schedule(s, profile);
    EXPECT_TRUE(result.schedule.is_barrier()) << "P=" << p;
    EXPECT_GT(result.signals_removed, 0u) << "P=" << p;
    EXPECT_LE(result.cost_after, result.cost_before + 1e-18);
  }
}

TEST(Optimize, RejectsNonBarriers) {
  const TopologyProfile profile = uniform_profile(2, 1e-5, 1e-6);
  Schedule s(2);
  StageMatrix m(2, 2, 0);
  m(0, 1) = 1;
  s.append_stage(std::move(m));
  EXPECT_THROW(prune_redundant_signals(s, profile), Error);
  EXPECT_THROW(fuse_stages(s, profile), Error);
}

}  // namespace
}  // namespace optibar
