// Tests for the hierarchical cluster tree (Section VII-A): node-level
// granularity on the paper's machines, termination, and structure under
// both mappings.
#include "core/cluster_tree.hpp"

#include <gtest/gtest.h>

#include <set>

#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

void collect_leaf_ranks(const ClusterNode& node, std::set<std::size_t>& out) {
  if (node.is_leaf()) {
    for (std::size_t r : node.ranks) {
      EXPECT_TRUE(out.insert(r).second) << "rank " << r << " in two leaves";
    }
    return;
  }
  for (const ClusterNode& child : node.children) {
    collect_leaf_ranks(child, out);
  }
}

TEST(ClusterTree, SingleRankIsALeaf) {
  const MachineSpec m = quad_cluster(1);
  const TopologyProfile p = generate_profile(m, 1);
  const ClusterNode tree = build_cluster_tree(p);
  EXPECT_TRUE(tree.is_leaf());
  EXPECT_EQ(tree.ranks, (std::vector<std::size_t>{0}));
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_EQ(tree.tree_size(), 1u);
}

TEST(ClusterTree, SingleNodeMachineIsFlat) {
  // Within one node all SSS clusters are singletons at alpha=0.35, so
  // the tree must not recurse (the two-level hierarchy of the paper).
  const MachineSpec m = quad_cluster(1);
  const TopologyProfile p = generate_profile(m, 8);
  const ClusterNode tree = build_cluster_tree(p);
  EXPECT_TRUE(tree.is_leaf());
  EXPECT_EQ(tree.ranks.size(), 8u);
}

TEST(ClusterTree, MultiNodeQuadClusterHasNodeChildren) {
  const MachineSpec m = quad_cluster();
  const std::size_t p = 32;
  const TopologyProfile profile =
      generate_profile(m, block_mapping(m, p), GenerateOptions{});
  const ClusterNode tree = build_cluster_tree(profile);
  ASSERT_EQ(tree.children.size(), 4u);
  EXPECT_EQ(tree.height(), 1u);
  for (const ClusterNode& child : tree.children) {
    EXPECT_TRUE(child.is_leaf());
    EXPECT_EQ(child.ranks.size(), 8u);
    // All ranks of a child share a node under block mapping.
    const std::size_t node = child.ranks.front() / 8;
    for (std::size_t r : child.ranks) {
      EXPECT_EQ(r / 8, node);
    }
  }
}

TEST(ClusterTree, LeavesPartitionAllRanks) {
  const MachineSpec m = hex_cluster();
  for (std::size_t p : {2u, 13u, 24u, 60u, 120u}) {
    const TopologyProfile profile =
        generate_profile(m, round_robin_mapping(m, p), GenerateOptions{});
    const ClusterNode tree = build_cluster_tree(profile);
    std::set<std::size_t> leaves;
    collect_leaf_ranks(tree, leaves);
    EXPECT_EQ(leaves.size(), p) << "P=" << p;
  }
}

TEST(ClusterTree, RepresentativeIsFirstRank) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile =
      generate_profile(m, block_mapping(m, 24), GenerateOptions{});
  const ClusterNode tree = build_cluster_tree(profile);
  EXPECT_EQ(tree.representative(), 0u);
  for (const ClusterNode& child : tree.children) {
    EXPECT_EQ(child.representative(), child.ranks.front());
  }
}

TEST(ClusterTree, RequiresSymmetricProfile) {
  Matrix<double> o(2, 2, 1e-6);
  o(0, 1) = 9e-6;
  o(1, 0) = 1e-6;
  const TopologyProfile asym(std::move(o), Matrix<double>(2, 2, 0.0));
  EXPECT_THROW(build_cluster_tree(asym), Error);
  EXPECT_NO_THROW(build_cluster_tree(asym.symmetrized()));
}

TEST(ClusterTree, JitterDoesNotBreakNodeGranularity) {
  // 20% per-pair heterogeneity leaves the node structure intact because
  // the inter/intra gap is an order of magnitude.
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile = generate_profile(
      m, block_mapping(m, 40), GenerateOptions{0.2, 31});
  const ClusterNode tree = build_cluster_tree(profile);
  EXPECT_EQ(tree.children.size(), 5u);
}

/// An 8-rank metric with nested gaps (pairs of 1, groups of 10, global
/// 100) so that alpha = 0.35 peels one level per recursion — the "works
/// with any number of levels" claim.
TopologyProfile nested_metric_profile() {
  const std::size_t p = 8;
  Matrix<double> o(p, p, 0.0);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      if (i == j) {
        o(i, j) = 0.1;
      } else if (i / 2 == j / 2) {
        o(i, j) = 1.0;
      } else if (i / 4 == j / 4) {
        o(i, j) = 10.0;
      } else {
        o(i, j) = 100.0;
      }
    }
  }
  return TopologyProfile(std::move(o), Matrix<double>(p, p, 0.0));
}

TEST(ClusterTree, DeeperHierarchyWithNestedGaps) {
  const ClusterNode tree = build_cluster_tree(nested_metric_profile());
  // Level 1: two groups of four; level 2: pairs; pairs are leaves.
  ASSERT_EQ(tree.children.size(), 2u);
  EXPECT_EQ(tree.height(), 2u);
  for (const ClusterNode& group : tree.children) {
    ASSERT_EQ(group.children.size(), 2u) << "group did not split into pairs";
    for (const ClusterNode& pair : group.children) {
      EXPECT_TRUE(pair.is_leaf());
      EXPECT_EQ(pair.ranks.size(), 2u);
    }
  }
}

TEST(ClusterTree, MaxDepthStopsRecursion) {
  ClusterTreeOptions opts;
  opts.max_depth = 1;
  const ClusterNode tree = build_cluster_tree(nested_metric_profile(), opts);
  EXPECT_EQ(tree.height(), 1u);  // groups found, pairs suppressed
}

TEST(ClusterTree, DescribeTreeListsAllNodes) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile =
      generate_profile(m, block_mapping(m, 16), GenerateOptions{});
  const ClusterNode tree = build_cluster_tree(profile);
  const std::string text = describe_tree(tree);
  EXPECT_NE(text.find("cluster"), std::string::npos);
  EXPECT_NE(text.find("leaf"), std::string::npos);
  EXPECT_NE(text.find("rep=0"), std::string::npos);
}

TEST(ClusterTree, TreeSizeCountsAllNodes) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile =
      generate_profile(m, block_mapping(m, 32), GenerateOptions{});
  const ClusterNode tree = build_cluster_tree(profile);
  EXPECT_EQ(tree.tree_size(), 1u + tree.children.size());
}

}  // namespace
}  // namespace optibar
