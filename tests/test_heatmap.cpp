// Tests for the ASCII heat map renderer (Figure 9 reproduction support).
#include "util/heatmap.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace optibar {
namespace {

TEST(Heatmap, EmptyMatrixThrows) {
  Matrix<double> m;
  EXPECT_THROW(render_heatmap(m), Error);
}

TEST(Heatmap, ConstantMatrixUsesLowestGlyph) {
  Matrix<double> m(2, 2, 3.0);
  HeatmapOptions opts;
  opts.axes = false;
  opts.cell_width = 1;
  opts.ramp = ".#";
  const std::string out = render_heatmap(m, opts);
  EXPECT_EQ(out, "..\n..\n");
}

TEST(Heatmap, ExtremesMapToRampEnds) {
  Matrix<double> m{{0.0, 1.0}};
  HeatmapOptions opts;
  opts.axes = false;
  opts.cell_width = 1;
  opts.ramp = ".#";
  EXPECT_EQ(render_heatmap(m, opts), ".#\n");
}

TEST(Heatmap, MidValueMapsToMiddleGlyph) {
  Matrix<double> m{{0.0, 0.5, 1.0}};
  HeatmapOptions opts;
  opts.axes = false;
  opts.cell_width = 1;
  opts.ramp = "abcd";
  // 0.5 normalised -> level 2 of 4 ('c').
  EXPECT_EQ(render_heatmap(m, opts), "acd\n");
}

TEST(Heatmap, BlockStructureIsVisible) {
  // A 4x4 matrix with a cheap 2x2 diagonal block structure, like the
  // on-chip blocks of Figure 9.
  Matrix<double> m(4, 4, 6.0e-7);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      if (i / 2 == j / 2) {
        m(i, j) = 1.5e-7;
      }
    }
  }
  HeatmapOptions opts;
  opts.axes = false;
  opts.cell_width = 1;
  opts.ramp = ".#";
  EXPECT_EQ(render_heatmap(m, opts), "..##\n..##\n##..\n##..\n");
}

TEST(Heatmap, AxesAddIndexGutter) {
  Matrix<double> m(1, 3, 0.0);
  HeatmapOptions opts;
  opts.axes = true;
  opts.cell_width = 1;
  const std::string out = render_heatmap(m, opts);
  // First line is the column index ruler, second starts with the row id.
  EXPECT_NE(out.find("012"), std::string::npos);
  EXPECT_NE(out.find(" 0  "), std::string::npos);
}

TEST(Heatmap, RejectsBadOptions) {
  Matrix<double> m(1, 1, 0.0);
  HeatmapOptions no_ramp;
  no_ramp.ramp = "";
  EXPECT_THROW(render_heatmap(m, no_ramp), Error);
  HeatmapOptions zero_width;
  zero_width.cell_width = 0;
  EXPECT_THROW(render_heatmap(m, zero_width), Error);
}

}  // namespace
}  // namespace optibar
