// Tests for bounded-wait execution: no-fault runs stay clean, dropped
// signals produce StallReports naming the lost edge, reports are
// bit-reproducible from the fault spec, and the collective executor
// keeps buffer integrity under faults.
#include "simmpi/resilience.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "collective/executor.hpp"
#include "collective/generators.hpp"
#include "simmpi/executor.hpp"
#include "simmpi/fault.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

using namespace std::chrono_literals;
using simmpi::ResilienceOptions;
using simmpi::ScheduleExecutor;
using simmpi::SignalEdge;
using simmpi::StallReport;

ResilienceOptions fast_options() {
  ResilienceOptions options;
  options.max_retries = 0;
  options.deadline_floor = 15ms;
  return options;
}

FaultPlan drop_edge(std::size_t src, std::size_t dst, std::size_t stage) {
  FaultPlan plan;
  plan.drops.push_back(
      {src, dst, static_cast<int>(stage), 1.0, 0.0});
  return plan;
}

TEST(ResilienceOptions, DeadlineClampsToFloorAndCeiling) {
  ResilienceOptions options;
  options.predicted_stage_seconds = {1e-6, 10.0};
  options.deadline_floor = 10ms;
  options.deadline_ceiling = 250ms;
  EXPECT_EQ(options.stage_deadline(0), 10ms);   // microseconds -> floor
  EXPECT_EQ(options.stage_deadline(1), 250ms);  // huge -> ceiling
  EXPECT_EQ(options.stage_deadline(7), 10ms);   // out of range -> floor
}

TEST(Resilience, CleanRunFinishesEveryRank) {
  const ScheduleExecutor executor(dissemination_barrier(6));
  const StallReport report = executor.run_once_resilient(fast_options());
  EXPECT_FALSE(report.stalled);
  EXPECT_TRUE(report.pending_edges.empty());
  for (const simmpi::RankStall& rank : report.per_rank) {
    EXPECT_TRUE(rank.finished);
    EXPECT_FALSE(rank.crashed);
  }
  // With every signal delivered the Eq. 3 knowledge saturates.
  EXPECT_TRUE(report.knowledge.all_nonzero());
}

TEST(Resilience, DroppedEdgeProducesAStallNamingIt) {
  const std::size_t p = 6;
  const Schedule schedule = dissemination_barrier(p);
  const ScheduleExecutor executor(schedule);
  const StallReport report =
      executor.run_once_resilient(fast_options(), drop_edge(0, 1, 0));
  EXPECT_TRUE(report.stalled);
  EXPECT_TRUE(report.names_edge(0, 0, 1));
  // The receiver is stuck in stage 0 with rank 0 missing.
  const simmpi::RankStall& victim = report.per_rank[1];
  EXPECT_FALSE(victim.finished);
  EXPECT_EQ(victim.stage_reached, 0u);
  // The dropped arrival fact (row 0) never reached the victim.
  EXPECT_FALSE(report.knowledge.all_nonzero());
  EXPECT_TRUE(report.knowledge(1, 1) != 0);
  EXPECT_TRUE(report.knowledge(0, 0) != 0);
  EXPECT_FALSE(report.describe().empty());
}

TEST(Resilience, RetriesGetThroughALossyLink) {
  // Drop ~60% of signals on one channel; with generous retries the
  // resend draws eventually land and the barrier completes. Seed chosen
  // so the first draw drops (exercising the resend path) but a retry
  // succeeds within the attempt budget.
  const std::size_t p = 4;
  const ScheduleExecutor executor(dissemination_barrier(p));
  FaultPlan plan;
  plan.seed = 9;
  plan.drops.push_back({0, 1, 0, 0.6, 0.0});
  ResilienceOptions options;
  options.deadline_floor = 30ms;
  options.max_retries = 6;
  options.retry_backoff = 1.0;  // flat rounds keep the worst case bounded
  bool completed_with_resends = false;
  for (std::uint64_t seed = 1; seed < 12 && !completed_with_resends; ++seed) {
    plan.seed = seed;
    const FaultInjector injector(plan);
    if (!injector.decide(0, 1, 0, 0).drop) {
      continue;  // want a seed whose first draw drops
    }
    const StallReport report = executor.run_once_resilient(options, plan);
    completed_with_resends = !report.stalled;
  }
  EXPECT_TRUE(completed_with_resends)
      << "no seed with a dropped first attempt completed via resends";
}

// The acceptance sweep: a 100%-drop on ANY single schedule edge makes
// every classic generator's run terminate (no hang, no leaked thread)
// with a StallReport naming exactly that edge, on both machine presets.
struct SweepCase {
  const char* machine;
  std::size_t ranks;
};

class EdgeDropSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EdgeDropSweep, EveryDroppedEdgeIsNamed) {
  const SweepCase param = GetParam();
  const MachineSpec machine = param.machine == std::string("quad")
                                  ? quad_cluster()
                                  : hex_cluster();
  const std::size_t p = param.ranks;
  const TopologyProfile profile =
      generate_profile(machine, round_robin_mapping(machine, p));
  const std::vector<Schedule> classics = {
      linear_barrier(p),        dissemination_barrier(p),
      tree_barrier(p),          heap_tree_barrier(p),
      kary_tree_barrier(p, 4),  pairwise_exchange_barrier(p),
      radix_dissemination_barrier(p, 4)};
  for (const Schedule& schedule : classics) {
    const ScheduleExecutor executor(schedule);
    ResilienceOptions options = fast_options();
    options.predicted_stage_seconds =
        predict(schedule, profile).stage_increment;
    for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
      for (std::size_t src = 0; src < p; ++src) {
        for (std::size_t dst : schedule.targets_of(src, s)) {
          const StallReport report = executor.run_once_resilient(
              options, drop_edge(src, dst, s));
          ASSERT_TRUE(report.stalled)
              << "dropping stage " << s << " edge " << src << "->" << dst
              << " did not stall";
          ASSERT_TRUE(report.names_edge(s, src, dst))
              << "stall report does not name stage " << s << " edge " << src
              << "->" << dst << ":\n"
              << report.describe();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Presets, EdgeDropSweep,
                         ::testing::Values(SweepCase{"quad", 4},
                                           SweepCase{"hex", 6}));

TEST(Resilience, ReportsAreBitReproducibleFromTheSpec) {
  // Same spec string => byte-identical decisions => identical report,
  // including the per-rank delivery logs and the knowledge matrix.
  // Deadlines are generous relative to delivery latency so timing
  // cannot flip a non-dropped signal past its deadline.
  const ScheduleExecutor executor(dissemination_barrier(4));
  const FaultPlan plan = FaultPlan::parse("seed=5;drop=*>*@*:0.3");
  ResilienceOptions options;
  options.deadline_floor = 80ms;
  options.max_retries = 1;
  const StallReport first = executor.run_once_resilient(options, plan);
  const StallReport second = executor.run_once_resilient(options, plan);
  EXPECT_EQ(first, second);
}

TEST(Resilience, CrashFaultHaltsTheRankAtItsStage) {
  const std::size_t p = 6;
  const ScheduleExecutor executor(dissemination_barrier(p));
  FaultPlan plan;
  plan.crashes.push_back({2, 1});
  const StallReport report =
      executor.run_once_resilient(fast_options(), plan);
  EXPECT_TRUE(report.stalled);
  const simmpi::RankStall& dead = report.per_rank[2];
  EXPECT_TRUE(dead.crashed);
  EXPECT_FALSE(dead.finished);
  EXPECT_EQ(dead.stage_reached, 1u);
  // Stage 0 completed before the crash, so rank 2's stage-0 signals
  // were delivered; its stage-1 targets are stuck waiting on it.
  bool someone_waits_on_dead_rank = false;
  for (const SignalEdge& edge : report.pending_edges) {
    someone_waits_on_dead_rank =
        someone_waits_on_dead_rank || (edge.stage == 1 && edge.src == 2);
  }
  EXPECT_TRUE(someone_waits_on_dead_rank);
}

TEST(Resilience, DuplicatesAndSmallDelaysAreTolerated) {
  const ScheduleExecutor executor(dissemination_barrier(4));
  const FaultPlan plan =
      FaultPlan::parse("seed=2;dup=*>*@*:0.5;delay=*>*@*:0.5:0.001");
  ResilienceOptions options;
  options.deadline_floor = 60ms;
  options.max_retries = 1;
  const StallReport report = executor.run_once_resilient(options, plan);
  EXPECT_FALSE(report.stalled) << report.describe();
}

TEST(Resilience, DelayBeyondTheDeadlineStalls) {
  const ScheduleExecutor executor(dissemination_barrier(4));
  FaultPlan plan;
  plan.delays.push_back({0, 1, 0, 1.0, 0.5});  // 500 ms on a 15 ms budget
  ResilienceOptions options = fast_options();
  const StallReport report = executor.run_once_resilient(options, plan);
  EXPECT_TRUE(report.stalled);
  EXPECT_TRUE(report.names_edge(0, 0, 1)) << report.describe();
}

TEST(CollectiveResilience, CleanRunMatchesTheOracle) {
  const std::size_t p = 5;
  const std::size_t elems = 8;
  const CollectiveSchedule schedule =
      recursive_doubling_allreduce(p, elems, 8);
  const CollectiveExecutor executor(schedule);
  std::vector<Payload> inputs(p, Payload(elems));
  for (std::size_t r = 0; r < p; ++r) {
    for (std::size_t e = 0; e < elems; ++e) {
      inputs[r][e] = 100 * r + e;
    }
  }
  ResilienceOptions options;
  options.deadline_floor = 60ms;
  options.max_retries = 1;
  const CollectiveExecutor::ResilientResult result =
      executor.run_once_resilient(inputs, ReduceOp::kSum, options);
  EXPECT_FALSE(result.report.stalled);
  EXPECT_EQ(result.buffers, oracle_result(schedule, ReduceOp::kSum, inputs));
}

TEST(CollectiveResilience, DroppedEdgeStallsAndNamesIt) {
  const std::size_t p = 4;
  const std::size_t elems = 4;
  const CollectiveSchedule schedule = binomial_broadcast(p, 0, elems, 8);
  const CollectiveExecutor executor(schedule);
  std::vector<Payload> inputs(p, Payload(elems, 0));
  inputs[0] = {1, 2, 3, 4};
  // Find the first stage-0 edge of the broadcast and drop it.
  const Schedule signals = schedule.signal_schedule();
  const std::size_t dst = signals.targets_of(0, 0).at(0);
  const CollectiveExecutor::ResilientResult result =
      executor.run_once_resilient(inputs, ReduceOp::kSum, fast_options(),
                                  drop_edge(0, dst, 0));
  EXPECT_TRUE(result.report.stalled);
  EXPECT_TRUE(result.report.names_edge(0, 0, dst))
      << result.report.describe();
  // The stalled receiver's buffer is its last consistent snapshot — the
  // untouched input, not a half-applied stage.
  EXPECT_EQ(result.buffers[dst], Payload(elems, 0));
}

}  // namespace
}  // namespace optibar
