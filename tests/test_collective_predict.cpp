// Payload-aware prediction parity: with zero payload the collective
// predictor must reproduce the barrier reference predictor bit for bit
// (same critical_path, rank_completion, stage_increment), and payload
// costs must enter exactly as bytes * G per edge.
#include "collective/predict.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "collective/generators.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/rng.hpp"

namespace optibar {
namespace {

TopologyProfile hex_profile(std::size_t p) {
  const MachineSpec machine = hex_cluster();
  return generate_profile(machine, round_robin_mapping(machine, p));
}

/// Random non-barrier stage soup — the predictors accept any pattern.
Schedule random_schedule(std::size_t p, Rng& rng) {
  Schedule s(p);
  const std::size_t stages = 1 + rng.next_below(5);
  for (std::size_t st = 0; st < stages; ++st) {
    StageMatrix m(p, p, 0);
    for (std::size_t i = 0; i < p; ++i) {
      const std::size_t fan_out = rng.next_below(4);
      for (std::size_t k = 0; k < fan_out; ++k) {
        const std::size_t j = rng.next_below(p);
        if (j != i) {
          m(i, j) = 1;
        }
      }
    }
    s.append_stage(std::move(m));
  }
  return s;
}

void expect_bit_identical(const Prediction& a, const Prediction& b) {
  EXPECT_EQ(a.critical_path, b.critical_path);
  ASSERT_EQ(a.rank_completion.size(), b.rank_completion.size());
  for (std::size_t i = 0; i < a.rank_completion.size(); ++i) {
    EXPECT_EQ(a.rank_completion[i], b.rank_completion[i]) << "rank " << i;
  }
  ASSERT_EQ(a.stage_increment.size(), b.stage_increment.size());
  for (std::size_t s = 0; s < a.stage_increment.size(); ++s) {
    EXPECT_EQ(a.stage_increment[s], b.stage_increment[s]) << "stage " << s;
  }
}

TEST(PredictCollective, ZeroPayloadMatchesBarrierReferenceBitForBit) {
  Rng rng(42);
  for (std::size_t p : {4u, 9u, 16u, 24u}) {
    const TopologyProfile profile = hex_profile(p);
    std::vector<Schedule> schedules = {dissemination_barrier(p),
                                       tree_barrier(p), linear_barrier(p)};
    for (int k = 0; k < 5; ++k) {
      schedules.push_back(random_schedule(p, rng));
    }
    for (const Schedule& s : schedules) {
      expect_bit_identical(predict_collective(from_barrier(s), profile),
                           predict_reference(s, profile, {}));
    }
  }
}

TEST(PredictCollective, ZeroCountGeneratorMatchesSignalSchedule) {
  const TopologyProfile profile = hex_profile(12);
  const CollectiveSchedule s = recursive_doubling_allreduce(12, 0, 8);
  expect_bit_identical(predict_collective(s, profile),
                       predict_reference(s.signal_schedule(), profile, {}));
}

TEST(PredictCollective, PayloadCostIsMonotoneInBytes) {
  const TopologyProfile profile = hex_profile(24);
  ASSERT_TRUE(profile.has_bandwidth());
  double prev = -1.0;
  for (std::size_t elems : {0u, 64u, 1024u, 16384u}) {
    const double cost = predicted_collective_time(
        recursive_doubling_allreduce(24, elems, 8), profile);
    EXPECT_GT(cost, prev) << elems << " elements";
    prev = cost;
  }
}

TEST(PredictCollective, ProfileWithoutBandwidthIgnoresPayload) {
  const std::size_t p = 8;
  Matrix<double> o(p, p, 1e-6);
  Matrix<double> l(p, p, 0.0);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      if (i != j) {
        l(i, j) = 1e-7;
      }
    }
  }
  const TopologyProfile profile(o, l);
  ASSERT_FALSE(profile.has_bandwidth());
  const double small =
      predicted_collective_time(ring_allreduce(p, 8, 8), profile);
  const double large =
      predicted_collective_time(ring_allreduce(p, 8192, 8), profile);
  EXPECT_EQ(small, large);
}

TEST(PredictCollective, CompileReusesStorage) {
  const TopologyProfile profile = hex_profile(12);
  const CollectiveSchedule big = ring_allreduce(12, 4096, 8);
  const CollectiveSchedule small = binomial_broadcast(12, 0, 16, 8);
  CompiledSchedule compiled;
  PredictWorkspace workspace;
  Prediction out;
  compile_collective(big, profile, compiled);
  predict_into(compiled, {}, workspace, out);
  const double big_cost = out.critical_path;
  compile_collective(small, profile, compiled);
  predict_into(compiled, {}, workspace, out);
  compile_collective(big, profile, compiled);
  predict_into(compiled, {}, workspace, out);
  EXPECT_EQ(out.critical_path, big_cost);
}

}  // namespace
}  // namespace optibar
