// Logical-cluster detection and the tiled profile representation: the
// detector must recover node boundaries deterministically from the O/L
// matrices alone, and the tiled form must be bit-compatible with the
// dense accessors on exact block machines.
#include "profile/tiled_profile.hpp"

#include "profile/generate_tiled.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "profile/logical_clusters.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

TEST(LogicalClusters, RecoversNodesOnQuadPreset) {
  const TopologyProfile dense = generate_profile(quad_cluster(4), 32);
  const ClusterDecomposition decomp = detect_logical_clusters(dense);
  ASSERT_EQ(decomp.cluster_count(), 4u);
  EXPECT_EQ(decomp.num_classes, 1u);
  for (std::size_t c = 0; c < 4; ++c) {
    ASSERT_EQ(decomp.clusters[c].size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(decomp.clusters[c][i], c * 8 + i);  // block mapping
    }
  }
  EXPECT_GT(decomp.threshold, 4.0e-6);   // above cross-socket O
  EXPECT_LT(decomp.threshold, 2.5e-5);   // below inter-node O
}

TEST(LogicalClusters, RecoversStridedClustersUnderRoundRobin) {
  // The decomposition depends on matrix values, not on rank numbering:
  // a round-robin mapping deals ranks across nodes, and the detector
  // must find the same four logical nodes as strided member sets.
  const MachineSpec m = quad_cluster(4);
  const TopologyProfile dense =
      generate_profile(m, round_robin_mapping(m, 32));
  const ClusterDecomposition decomp = detect_logical_clusters(dense);
  ASSERT_EQ(decomp.cluster_count(), 4u);
  EXPECT_EQ(decomp.num_classes, 1u);
  for (std::size_t c = 0; c < 4; ++c) {
    ASSERT_EQ(decomp.clusters[c].size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(decomp.clusters[c][i], c + 4 * i);  // stride = node count
    }
  }
}

TEST(LogicalClusters, DeterministicAcrossRepeatedRuns) {
  const TopologyProfile dense =
      generate_profile(hex_cluster(3), 36, GenerateOptions{0.02, 7});
  const ClusterDecomposition a = detect_logical_clusters(dense);
  const ClusterDecomposition b = detect_logical_clusters(dense);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.class_of, b.class_of);
  EXPECT_EQ(a.threshold, b.threshold);
}

TEST(LogicalClusters, FlatMachineComesBackAsOneCluster) {
  // Uniform off-diagonal costs leave no gap to cut at.
  Matrix<double> o(8, 8, 1.0e-5);
  Matrix<double> l(8, 8, 1.0e-6);
  for (std::size_t i = 0; i < 8; ++i) {
    o(i, i) = 1.0e-6;
    l(i, i) = 0.0;
  }
  const ClusterDecomposition decomp =
      detect_logical_clusters(TopologyProfile(std::move(o), std::move(l)));
  EXPECT_TRUE(decomp.single_cluster());
  EXPECT_EQ(decomp.clusters[0].size(), 8u);
}

TEST(LogicalClusters, SurvivesMeasurementJitter) {
  const TopologyProfile dense =
      generate_profile(quad_cluster(4), 32, GenerateOptions{0.02, 11});
  DetectOptions options;
  options.tolerance = 0.08;  // two jitter half-widths
  const ClusterDecomposition decomp =
      detect_logical_clusters(dense, options);
  EXPECT_EQ(decomp.cluster_count(), 4u);
  EXPECT_EQ(decomp.num_classes, 1u);
  // And the tiled form lumps the jittered blocks without complaint.
  const TiledProfile tiled = TiledProfile::from_dense(dense, decomp);
  EXPECT_EQ(tiled.ranks(), 32u);
}

TEST(TiledProfile, AccessorsBitIdenticalOnExactBlockMachine) {
  const TopologyProfile dense = generate_profile(quad_cluster(4), 32);
  ASSERT_TRUE(dense.has_bandwidth());
  ASSERT_TRUE(dense.has_rma_latency());
  const TiledProfile tiled =
      TiledProfile::from_dense(dense, detect_logical_clusters(dense));
  ASSERT_TRUE(tiled.has_bandwidth());
  ASSERT_TRUE(tiled.has_rma_latency());
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j < 32; ++j) {
      // EXPECT_EQ, not DOUBLE_EQ: the contract is bit-identity.
      EXPECT_EQ(dense.o(i, j), tiled.o(i, j));
      EXPECT_EQ(dense.l(i, j), tiled.l(i, j));
      EXPECT_EQ(dense.g(i, j), tiled.g(i, j));
      EXPECT_EQ(dense.r(i, j), tiled.r(i, j));
    }
  }
  EXPECT_EQ(dense, tiled.to_dense());
}

TEST(TiledProfile, RestrictMatchesDenseRestrict) {
  const TopologyProfile dense = generate_profile(hex_cluster(3), 36);
  const TiledProfile tiled =
      TiledProfile::from_dense(dense, detect_logical_clusters(dense));
  const std::vector<std::size_t> subset{0, 13, 5, 25, 35};
  EXPECT_EQ(dense.restrict_to(subset), tiled.restrict_to(subset));
}

TEST(TiledProfile, MemoryStaysSubQuadratic) {
  const MachineSpec m = quad_cluster(16);
  const TopologyProfile dense = generate_profile(m, 128);
  const TiledProfile tiled =
      TiledProfile::from_dense(dense, detect_logical_clusters(dense));
  const std::size_t dense_bytes = 4 * 128 * 128 * sizeof(double);
  EXPECT_LT(tiled.memory_bytes(), dense_bytes / 10);
}

TEST(TiledProfile, MixedClusterSizesFormTwoClasses) {
  // Hand-built block machine: two 2-rank clusters and two 3-rank
  // clusters, uniform inter-cluster cost. No G/R: the r() accessor must
  // fall back to l() exactly like the dense profile.
  const std::size_t p = 10;
  const std::vector<std::vector<std::size_t>> layout{
      {0, 1}, {2, 3}, {4, 5, 6}, {7, 8, 9}};
  Matrix<double> o(p, p, 1.0e-4);
  Matrix<double> l(p, p, 1.0e-5);
  for (const auto& members : layout) {
    for (std::size_t a : members) {
      for (std::size_t b : members) {
        o(a, b) = a == b ? 1.0e-6 : 2.0e-6;
        l(a, b) = a == b ? 0.0 : 3.0e-7;
      }
    }
  }
  const TopologyProfile dense(std::move(o), std::move(l));
  const ClusterDecomposition decomp = detect_logical_clusters(dense);
  ASSERT_EQ(decomp.cluster_count(), 4u);
  EXPECT_EQ(decomp.num_classes, 2u);
  EXPECT_EQ(decomp.class_of, (std::vector<std::size_t>{0, 0, 1, 1}));
  const TiledProfile tiled = TiledProfile::from_dense(dense, decomp);
  EXPECT_EQ(tiled.class_tile(0).ranks(), 2u);
  EXPECT_EQ(tiled.class_tile(1).ranks(), 3u);
  EXPECT_FALSE(tiled.has_rma_latency());
  EXPECT_EQ(tiled.r(0, 5), tiled.l(0, 5));
  EXPECT_EQ(dense, tiled.to_dense());
}

TEST(TiledProfile, RejectsNonBlockStructuredMachine) {
  // The skewed preset's cross-socket fabric is slower than its network,
  // so the gap cut lands at socket granularity — and then inter-cluster
  // costs are NOT one scalar per class pair (same-node sockets see
  // 8e-5, cross-node sockets 4e-5). from_dense must refuse to lump it.
  const TopologyProfile dense = generate_profile(skewed_cluster(4), 32);
  const ClusterDecomposition decomp = detect_logical_clusters(dense);
  ASSERT_GT(decomp.cluster_count(), 4u);  // socket-level cut
  EXPECT_THROW(TiledProfile::from_dense(dense, decomp), Error);
}

TEST(TiledProfile, SaveLoadRoundTripIsExact) {
  const TopologyProfile dense = generate_profile(quad_cluster(4), 32);
  const TiledProfile tiled =
      TiledProfile::from_dense(dense, detect_logical_clusters(dense));
  std::stringstream ss;
  tiled.save(ss);
  EXPECT_NE(ss.str().find("optibar-profile v4\n"), std::string::npos);
  const TiledProfile back = TiledProfile::load(ss);
  EXPECT_EQ(tiled, back);
}

TEST(TiledProfile, DenseLoaderRejectsV4WithPointer) {
  const TopologyProfile dense = generate_profile(quad_cluster(2), 16);
  const TiledProfile tiled =
      TiledProfile::from_dense(dense, detect_logical_clusters(dense));
  std::stringstream ss;
  tiled.save(ss);
  try {
    TopologyProfile::load(ss);
    FAIL() << "dense loader accepted a v4 file";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("tiled"), std::string::npos);
  }
}

TEST(TiledProfile, TiledLoaderRejectsDenseFiles) {
  const TopologyProfile dense = generate_profile(quad_cluster(2), 16);
  std::stringstream ss;
  dense.save(ss);
  EXPECT_THROW(TiledProfile::load(ss), IoError);
}

TEST(TiledProfile, LoadRejectsNonCanonicalAssignment) {
  const TopologyProfile dense = generate_profile(quad_cluster(2), 16);
  const TiledProfile tiled =
      TiledProfile::from_dense(dense, detect_logical_clusters(dense));
  std::stringstream ss;
  tiled.save(ss);
  std::string text = ss.str();
  // Rank 0 must be in cluster 0; flipping it breaks the canonical
  // first-appearance numbering.
  const std::size_t pos = text.find("assignment\n");
  ASSERT_NE(pos, std::string::npos);
  text[pos + std::string("assignment\n").size()] = '1';
  std::stringstream tampered(text);
  EXPECT_THROW(TiledProfile::load(tampered), IoError);
}

TEST(GenerateTiled, BitIdenticalToDenseLift) {
  // Where both paths fit in memory they must agree exactly: the direct
  // generator and from_dense(generate_profile(...)) describe the same
  // jitter-free machine.
  const MachineSpec m = quad_cluster(4);
  const TiledProfile direct = generate_tiled_profile(m, 32);
  const TopologyProfile dense = generate_profile(m, 32);
  const TiledProfile lifted =
      TiledProfile::from_dense(dense, detect_logical_clusters(dense));
  ASSERT_EQ(direct.ranks(), 32u);
  EXPECT_EQ(direct.assignment(), lifted.assignment());
  EXPECT_EQ(direct.class_of(), lifted.class_of());
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j < 32; ++j) {
      EXPECT_EQ(direct.o(i, j), dense.o(i, j));
      EXPECT_EQ(direct.l(i, j), dense.l(i, j));
      EXPECT_EQ(direct.g(i, j), dense.g(i, j));
      EXPECT_EQ(direct.r(i, j), dense.r(i, j));
    }
  }
}

TEST(GenerateTiled, TenkPresetScalesSubQuadratically) {
  const TiledProfile tiled =
      generate_tiled_profile(tenk_cluster(), tenk_cluster().total_cores());
  EXPECT_EQ(tiled.ranks(), 10240u);
  EXPECT_EQ(tiled.cluster_count(), 256u);
  EXPECT_EQ(tiled.class_count(), 1u);
  // Dense O/L/G/R at this P would be 4 * 10240^2 * 8 bytes; the tiled
  // form must be orders of magnitude below that.
  const std::size_t dense_bytes = 4 * 10240 * std::size_t{10240} * 8;
  EXPECT_LT(tiled.memory_bytes(), dense_bytes / 1000);
}

TEST(GenerateTiled, TenkPresetIsDetectableAtSmallScale) {
  // The preset's node gap must be what the detector cuts at — checked
  // densely on a 4-node slice, where detection can actually run.
  const TopologyProfile dense = generate_profile(tenk_cluster(4), 160);
  const ClusterDecomposition decomp = detect_logical_clusters(dense);
  EXPECT_EQ(decomp.cluster_count(), 4u);
  EXPECT_EQ(decomp.num_classes, 1u);
}

TEST(GenerateTiled, RejectsPartialNodes) {
  EXPECT_THROW(generate_tiled_profile(quad_cluster(4), 12), Error);
  EXPECT_THROW(generate_tiled_profile(quad_cluster(4), 8), Error);   // 1 node
  EXPECT_THROW(generate_tiled_profile(quad_cluster(2), 24), Error);  // > spec
}

}  // namespace
}  // namespace optibar
