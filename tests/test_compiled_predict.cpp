// Parity suite for the compiled cost-model kernel: the compiled
// evaluator, the predict() wrapper and the incremental prefix evaluator
// must match the reference implementation bit for bit — same
// critical_path, rank_completion and stage_increment — across random
// schedules, profiles and every PredictOptions combination. This is the
// guarantee that lets the tuning engine switch kernels without changing
// a single tuned plan.
#include "barrier/compiled_schedule.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "netsim/engine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace optibar {
namespace {

/// Random stage sequence (not necessarily a barrier — the predictor does
/// not require one) with random per-rank fan-out, including empty stages
/// and empty schedules.
Schedule random_schedule(std::size_t p, Rng& rng) {
  Schedule s(p);
  const std::size_t stages = rng.next_below(6);
  for (std::size_t st = 0; st < stages; ++st) {
    StageMatrix m(p, p, 0);
    for (std::size_t i = 0; i < p; ++i) {
      const std::size_t fan_out = rng.next_below(4);
      for (std::size_t k = 0; k < fan_out; ++k) {
        const std::size_t j = rng.next_below(p);
        if (j != i) {
          m(i, j) = 1;
        }
      }
    }
    s.append_stage(std::move(m));
  }
  return s;
}

/// Random asymmetric profile with realistic magnitudes.
TopologyProfile random_profile(std::size_t p, Rng& rng) {
  Matrix<double> o(p, p, 0.0);
  Matrix<double> l(p, p, 0.0);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      if (i == j) {
        o(i, j) = rng.uniform(1e-7, 2e-6);
      } else {
        o(i, j) = rng.uniform(1e-6, 1e-4);
        l(i, j) = rng.uniform(1e-7, 1e-5);
      }
    }
  }
  return TopologyProfile(std::move(o), std::move(l));
}

/// Random option set exercising every combination knob: awaited flags
/// (shorter, equal or longer than the schedule), entry skew, receiver
/// processing, and a non-contiguous egress resource assignment.
PredictOptions random_options(std::size_t p, std::size_t stages, Rng& rng) {
  PredictOptions options;
  if (rng.next_below(2)) {
    const std::size_t n = rng.next_below(stages + 3);
    for (std::size_t s = 0; s < n; ++s) {
      options.awaited_stages.push_back(rng.next_below(2) != 0);
    }
  }
  if (rng.next_below(2)) {
    for (std::size_t i = 0; i < p; ++i) {
      options.entry_times.push_back(rng.uniform(0.0, 1e-4));
    }
  }
  options.receiver_processing = rng.next_below(2) != 0;
  if (rng.next_below(2)) {
    // Sparse ids (multiples of 3) exercise the dense-id remap.
    const std::size_t resources = 1 + rng.next_below(4);
    for (std::size_t i = 0; i < p; ++i) {
      options.egress_resource_of.push_back(3 * rng.next_below(resources));
    }
  }
  return options;
}

void expect_identical(const Prediction& a, const Prediction& b) {
  EXPECT_EQ(a.critical_path, b.critical_path);
  EXPECT_EQ(a.rank_completion, b.rank_completion);
  EXPECT_EQ(a.stage_increment, b.stage_increment);
}

TEST(CompiledPredict, RandomizedParityWithReference) {
  PredictWorkspace workspace;  // deliberately shared across iterations
  CompiledSchedule compiled;
  Prediction via_kernel;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    const std::size_t p = 2 + rng.next_below(13);
    const Schedule schedule = random_schedule(p, rng);
    const TopologyProfile profile = random_profile(p, rng);
    const PredictOptions options =
        random_options(p, schedule.stage_count(), rng);

    const Prediction reference = predict_reference(schedule, profile, options);
    // Wrapper path (thread-local kernel state).
    expect_identical(predict(schedule, profile, options), reference);
    // Explicit compiled path with a reused workspace.
    compiled.compile(schedule, profile);
    predict_into(compiled, options, workspace, via_kernel);
    expect_identical(via_kernel, reference);
    EXPECT_EQ(predicted_time(compiled, options, workspace),
              reference.critical_path);
  }
}

TEST(CompiledPredict, ParityOnTunedStructures) {
  // The shapes the engine actually prices: classic algorithms on the
  // paper's machines, all stages awaited/not, contended and not.
  for (const std::size_t p : {8UL, 24UL, 64UL}) {
    const MachineSpec machine = quad_cluster();
    const Mapping mapping = round_robin_mapping(machine, p);
    const TopologyProfile profile = generate_profile(machine, mapping);
    for (const Schedule& s :
         {linear_barrier(p), dissemination_barrier(p), tree_barrier(p)}) {
      PredictOptions contended;
      contended.egress_resource_of = node_egress_resources(machine, mapping);
      for (const PredictOptions& options : {PredictOptions{}, contended}) {
        expect_identical(predict(s, profile, options),
                         predict_reference(s, profile, options));
      }
    }
  }
}

TEST(CompiledPredict, SpanAccessorsMatchScheduleAdjacency) {
  Rng rng(7);
  const std::size_t p = 9;
  const Schedule schedule = random_schedule(p, rng);
  const TopologyProfile profile = random_profile(p, rng);
  const CompiledSchedule compiled(schedule, profile);
  ASSERT_EQ(compiled.ranks(), p);
  ASSERT_EQ(compiled.stage_count(), schedule.stage_count());
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    for (std::size_t i = 0; i < p; ++i) {
      const std::vector<std::size_t> targets = schedule.targets_of(i, s);
      const std::span<const std::size_t> span = compiled.targets(i, s);
      ASSERT_EQ(std::vector<std::size_t>(span.begin(), span.end()), targets);
      const std::span<const double> l = compiled.target_latency(i, s);
      const std::span<const double> o = compiled.target_overhead(i, s);
      ASSERT_EQ(l.size(), targets.size());
      for (std::size_t k = 0; k < targets.size(); ++k) {
        EXPECT_EQ(l[k], profile.l(i, targets[k]));
        EXPECT_EQ(o[k], profile.o(i, targets[k]));
      }
      EXPECT_EQ(compiled.batch_cost(i, s, false),
                step_cost(profile, i, targets, false));
      EXPECT_EQ(compiled.batch_cost(i, s, true),
                step_cost(profile, i, targets, true));
      const std::vector<std::size_t> sources = schedule.sources_of(i, s);
      const std::span<const std::size_t> src = compiled.sources(i, s);
      ASSERT_EQ(std::vector<std::size_t>(src.begin(), src.end()), sources);
    }
  }
}

TEST(CompiledPredict, CompileRebindReusesStorage) {
  // One kernel object across wildly different sizes must keep matching.
  CompiledSchedule compiled;
  PredictWorkspace workspace;
  Prediction out;
  for (const std::size_t p : {12UL, 3UL, 16UL, 2UL, 9UL}) {
    Rng rng(p);
    const Schedule schedule = random_schedule(p, rng);
    const TopologyProfile profile = random_profile(p, rng);
    compiled.compile(schedule, profile);
    predict_into(compiled, {}, workspace, out);
    expect_identical(out, predict_reference(schedule, profile, {}));
  }
}

TEST(CompiledPredict, EmptyAndTrivialSchedules) {
  Rng rng1(1);
  const TopologyProfile one = random_profile(1, rng1);
  // p = 1, zero stages.
  Prediction out;
  PredictWorkspace ws;
  predict_into(CompiledSchedule(Schedule(1), one), {}, ws, out);
  expect_identical(out, predict_reference(Schedule(1), one, {}));
  // Zero-stage schedule over several ranks with entry skew.
  Rng rng(2);
  const TopologyProfile profile = random_profile(5, rng);
  PredictOptions options;
  options.entry_times = {0.5, 0.1, 0.9, 0.0, 0.3};
  predict_into(CompiledSchedule(Schedule(5), profile), options, ws, out);
  expect_identical(out, predict_reference(Schedule(5), profile, options));
  EXPECT_EQ(out.critical_path, 0.0);
}

TEST(CompiledPredict, MismatchesThrow) {
  Rng rng(3);
  const TopologyProfile profile = random_profile(4, rng);
  EXPECT_THROW(CompiledSchedule(tree_barrier(5), profile), Error);
  PredictWorkspace ws;
  Prediction out;
  const CompiledSchedule compiled(tree_barrier(4), profile);
  PredictOptions bad_entry;
  bad_entry.entry_times = {0.0, 0.0};
  EXPECT_THROW(predict_into(compiled, bad_entry, ws, out), Error);
  PredictOptions bad_egress;
  bad_egress.egress_resource_of = {0, 1};
  EXPECT_THROW(predict_into(compiled, bad_egress, ws, out), Error);
}

TEST(IncrementalPredictor, MatchesFullPredictUnderPushPop) {
  // Random push/pop walks: after every operation the predictor's ready
  // vector must equal a from-scratch reference prediction of the
  // current prefix.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed + 1000);
    const std::size_t p = 2 + rng.next_below(7);
    const TopologyProfile profile = random_profile(p, rng);
    IncrementalPredictor predictor(profile);
    Schedule prefix(p);
    for (std::size_t step = 0; step < 40; ++step) {
      if (predictor.depth() > 0 && rng.next_below(3) == 0) {
        predictor.pop_stage();
        prefix.pop_stage();
      } else {
        StageMatrix m(p, p, 0);
        for (std::size_t i = 0; i < p; ++i) {
          const std::size_t fan_out = rng.next_below(3);
          for (std::size_t k = 0; k < fan_out; ++k) {
            const std::size_t j = rng.next_below(p);
            if (j != i) {
              m(i, j) = 1;
            }
          }
        }
        predictor.push_stage(m);
        prefix.append_stage(std::move(m));
      }
      ASSERT_EQ(predictor.depth(), prefix.stage_count());
      const Prediction full = predict_reference(prefix, profile, {});
      ASSERT_EQ(predictor.ready(), full.rank_completion);
      EXPECT_EQ(predictor.max_ready(),
                full.critical_path);  // zero entry: origin is 0
    }
  }
}

TEST(IncrementalPredictor, AwaitedStagesAndEntryTimes) {
  Rng rng(42);
  const std::size_t p = 6;
  const TopologyProfile profile = random_profile(p, rng);
  const Schedule schedule = tree_barrier(p);
  PredictOptions options;
  options.entry_times = {0.1, 0.0, 0.05, 0.2, 0.0, 0.15};
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    options.awaited_stages.push_back(s % 2 == 0);
  }
  IncrementalPredictor predictor(profile);
  predictor.reset(options.entry_times);
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    predictor.push_stage(schedule.stage(s), options.awaited_stages[s]);
  }
  const Prediction full = predict_reference(schedule, profile, options);
  EXPECT_EQ(predictor.ready(), full.rank_completion);
}

TEST(IncrementalPredictor, ReceiverProcessingToggle) {
  Rng rng(5);
  const std::size_t p = 5;
  const TopologyProfile profile = random_profile(p, rng);
  const Schedule schedule = dissemination_barrier(p);
  PredictOptions sender_only;
  sender_only.receiver_processing = false;
  IncrementalPredictor predictor(profile, /*receiver_processing=*/false);
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    predictor.push_stage(schedule.stage(s));
  }
  EXPECT_EQ(predictor.ready(),
            predict_reference(schedule, profile, sender_only).rank_completion);
}

TEST(CompiledPredict, EightThreadStressParity) {
  // Hammer the thread-local wrapper path from 8 threads at once; every
  // thread must reproduce the reference bit for bit on its own mix of
  // schedules.
  std::vector<Schedule> schedules;
  std::vector<TopologyProfile> profiles;
  std::vector<PredictOptions> options;
  std::vector<Prediction> expected;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    Rng rng(seed + 99);
    const std::size_t p = 2 + rng.next_below(11);
    schedules.push_back(random_schedule(p, rng));
    profiles.push_back(random_profile(p, rng));
    options.push_back(random_options(p, schedules.back().stage_count(), rng));
    expected.push_back(
        predict_reference(schedules.back(), profiles.back(), options.back()));
  }
  std::vector<std::thread> threads;
  std::vector<std::size_t> mismatches(8, 0);
  for (std::size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t iter = 0; iter < 200; ++iter) {
        const std::size_t k = (iter * 7 + t) % schedules.size();
        const Prediction got = predict(schedules[k], profiles[k], options[k]);
        if (got.critical_path != expected[k].critical_path ||
            got.rank_completion != expected[k].rank_completion ||
            got.stage_increment != expected[k].stage_increment) {
          ++mismatches[t];
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  for (std::size_t t = 0; t < 8; ++t) {
    EXPECT_EQ(mismatches[t], 0u) << "thread " << t;
  }
}

}  // namespace
}  // namespace optibar
