// Tests for the Section IV-A profile estimator: against the synthetic
// engine the ground truth is known, so estimation error is quantifiable
// exactly — the check the paper's hardware-bound methodology could not
// perform.
#include "profile/estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "profile/synthetic_engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "topology/replicate.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

SyntheticEngineOptions quiet() {
  SyntheticEngineOptions opts;
  opts.noise = 0.0;
  return opts;
}

TEST(Estimator, NoiseFreeOverheadIsExact) {
  const MachineSpec m = quad_cluster(2);
  const Mapping map = block_mapping(m, 16);
  SyntheticEngine engine(m, map, quiet());
  EstimatorOptions opts;
  opts.repetitions = 1;
  // Intra-node pair and inter-node pair.
  EXPECT_NEAR(estimate_overhead(engine, 0, 1, opts),
              engine.ground_truth().o(0, 1),
              1e-3 * engine.ground_truth().o(0, 1));
  EXPECT_NEAR(estimate_overhead(engine, 0, 8, opts),
              engine.ground_truth().o(0, 8),
              1e-3 * engine.ground_truth().o(0, 8));
}

TEST(Estimator, NoiseFreeLatencyIsExact) {
  const MachineSpec m = quad_cluster(2);
  const Mapping map = block_mapping(m, 16);
  SyntheticEngine engine(m, map, quiet());
  EstimatorOptions opts;
  opts.repetitions = 1;
  EXPECT_NEAR(estimate_latency(engine, 0, 8, opts),
              engine.ground_truth().l(0, 8),
              1e-9 * engine.ground_truth().l(0, 8) + 1e-15);
}

TEST(Estimator, NoiseFreeSelfOverheadIsExact) {
  const MachineSpec m = quad_cluster(1);
  const Mapping map = block_mapping(m, 4);
  SyntheticEngine engine(m, map, quiet());
  EstimatorOptions opts;
  opts.repetitions = 1;
  EXPECT_DOUBLE_EQ(estimate_self_overhead(engine, 2, opts),
                   engine.ground_truth().o(2, 2));
}

TEST(Estimator, FullProfileRecoversGroundTruthUnderNoise) {
  // Paper-default sampling (25 reps) with 2% multiplicative noise must
  // recover every O and L entry within a tight relative band.
  const MachineSpec m = quad_cluster(2);
  const Mapping map = block_mapping(m, 12);
  SyntheticEngineOptions eopts;
  eopts.noise = 0.02;
  SyntheticEngine engine(m, map, eopts);
  const TopologyProfile est = estimate_profile(engine);
  const TopologyProfile& truth = engine.ground_truth();
  for (std::size_t i = 0; i < est.ranks(); ++i) {
    for (std::size_t j = 0; j < est.ranks(); ++j) {
      if (i == j) {
        EXPECT_NEAR(est.o(i, i), truth.o(i, i), 0.05 * truth.o(i, i));
        continue;
      }
      EXPECT_NEAR(est.o(i, j), truth.o(i, j), 0.20 * truth.o(i, j))
          << "O(" << i << "," << j << ")";
      EXPECT_NEAR(est.l(i, j), truth.l(i, j), 0.20 * truth.l(i, j))
          << "L(" << i << "," << j << ")";
    }
  }
}

TEST(Estimator, EstimatedProfileIsSymmetricByConstruction) {
  const MachineSpec m = hex_cluster(1);
  const Mapping map = block_mapping(m, 6);
  SyntheticEngineOptions eopts;
  eopts.noise = 0.05;
  SyntheticEngine engine(m, map, eopts);
  EXPECT_TRUE(estimate_profile(engine).is_symmetric());
}

TEST(Estimator, TierStructureSurvivesEstimation) {
  // The estimate must preserve the inter-node >> intra-node gap that
  // drives all downstream decisions.
  const MachineSpec m = quad_cluster(2);
  const Mapping map = block_mapping(m, 16);
  SyntheticEngineOptions eopts;
  eopts.noise = 0.05;
  SyntheticEngine engine(m, map, eopts);
  const TopologyProfile est = estimate_profile(engine);
  EXPECT_GT(est.o(0, 8), 5.0 * est.o(0, 1));
}

TEST(Estimator, InterferenceSpikesBiasButDoNotBreakStructure) {
  // "runs ... were subject to interference from unrelated load":
  // occasional 5x spikes must not invert the tier ordering.
  const MachineSpec m = quad_cluster(2);
  const Mapping map = block_mapping(m, 10);
  SyntheticEngineOptions eopts;
  eopts.noise = 0.05;
  eopts.interference_probability = 0.02;
  SyntheticEngine engine(m, map, eopts);
  const TopologyProfile est = estimate_profile(engine);
  EXPECT_GT(est.o(0, 8), est.o(0, 1));
}

TEST(Estimator, ReplicationFromEstimatesApproximatesFullEstimate) {
  // Section IV-B: estimate only a representative node pair, replicate,
  // and compare against the full estimated profile.
  const MachineSpec m = quad_cluster(3);
  const Mapping map = block_mapping(m, 24);
  SyntheticEngineOptions eopts;
  eopts.noise = 0.01;
  SyntheticEngine engine(m, map, eopts);
  const TopologyProfile full = estimate_profile(engine);
  RankGroups groups{{0, 1, 2, 3, 4, 5, 6, 7},
                    {8, 9, 10, 11, 12, 13, 14, 15},
                    {16, 17, 18, 19, 20, 21, 22, 23}};
  const TopologyProfile replicated = replicate_profile(full, groups);
  EXPECT_LT(max_relative_deviation(full, replicated), 0.15);
}

TEST(Estimator, MedianAggregatorResistsInterferenceSpikes) {
  // Under rare 5x background-load spikes the paper's arithmetic-mean
  // protocol is badly biased; the median recovers the truth.
  const MachineSpec m = quad_cluster(2);
  const Mapping map = block_mapping(m, 10);
  SyntheticEngineOptions eopts;
  eopts.noise = 0.02;
  eopts.interference_probability = 0.08;
  eopts.interference_scale = 5.0;

  SyntheticEngine mean_engine(m, map, eopts);
  SyntheticEngine median_engine(m, map, eopts);
  EstimatorOptions mean_opts;
  EstimatorOptions median_opts;
  median_opts.aggregator = SampleAggregator::kMedian;

  const double truth = mean_engine.ground_truth().o(0, 8);
  const double with_mean =
      estimate_overhead(mean_engine, 0, 8, mean_opts);
  const double with_median =
      estimate_overhead(median_engine, 0, 8, median_opts);
  EXPECT_LT(std::abs(with_median - truth), std::abs(with_mean - truth));
  EXPECT_NEAR(with_median, truth, 0.15 * truth);
}

TEST(Estimator, MedianMatchesMeanWithoutNoise) {
  const MachineSpec m = quad_cluster(1);
  SyntheticEngine engine(m, block_mapping(m, 4), quiet());
  EstimatorOptions median_opts;
  median_opts.aggregator = SampleAggregator::kMedian;
  median_opts.repetitions = 3;
  EstimatorOptions mean_opts;
  mean_opts.repetitions = 3;
  EXPECT_NEAR(estimate_overhead(engine, 0, 2, median_opts),
              estimate_overhead(engine, 0, 2, mean_opts), 1e-12);
}

TEST(Estimator, RejectsDegenerateOptions) {
  const MachineSpec m = quad_cluster(1);
  SyntheticEngine engine(m, block_mapping(m, 2), quiet());
  EstimatorOptions no_reps;
  no_reps.repetitions = 0;
  EXPECT_THROW(estimate_overhead(engine, 0, 1, no_reps), Error);
  EstimatorOptions one_payload;
  one_payload.max_payload_exponent = 0;
  EXPECT_THROW(estimate_overhead(engine, 0, 1, one_payload), Error);
  EstimatorOptions one_batch;
  one_batch.max_batch = 1;
  EXPECT_THROW(estimate_latency(engine, 0, 1, one_batch), Error);
}

TEST(SyntheticEngine, ValidatesInputs) {
  const MachineSpec m = quad_cluster(1);
  SyntheticEngine engine(m, block_mapping(m, 4), quiet());
  EXPECT_THROW(engine.roundtrip_seconds(1, 1, 8), Error);
  EXPECT_THROW(engine.batch_seconds(1, 1, 4), Error);
  EXPECT_THROW(engine.batch_seconds(0, 1, 0), Error);
}

TEST(SyntheticEngine, RoundtripGrowsWithPayload) {
  const MachineSpec m = quad_cluster(2);
  SyntheticEngine engine(m, block_mapping(m, 16), quiet());
  EXPECT_LT(engine.roundtrip_seconds(0, 8, 1),
            engine.roundtrip_seconds(0, 8, 1 << 20));
}

TEST(SyntheticEngine, BatchGrowsLinearly) {
  const MachineSpec m = quad_cluster(2);
  SyntheticEngine engine(m, block_mapping(m, 16), quiet());
  const double one = engine.batch_seconds(0, 8, 1);
  const double two = engine.batch_seconds(0, 8, 2);
  const double three = engine.batch_seconds(0, 8, 3);
  EXPECT_NEAR(three - two, two - one, 1e-12);
}

}  // namespace
}  // namespace optibar
