// Tests for the exhaustive barrier search oracle.
#include "core/search.hpp"

#include <gtest/gtest.h>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

TopologyProfile uniform_profile(std::size_t p, double o, double l,
                                double self) {
  Matrix<double> om(p, p, o);
  Matrix<double> lm(p, p, l);
  for (std::size_t i = 0; i < p; ++i) {
    om(i, i) = self;
    lm(i, i) = 0.0;
  }
  return TopologyProfile(std::move(om), std::move(lm));
}

TEST(Search, SingleRankIsFree) {
  const TopologyProfile p = uniform_profile(1, 1e-5, 1e-6, 1e-6);
  const SearchResult r = exhaustive_search(p);
  EXPECT_DOUBLE_EQ(r.cost, 0.0);
  EXPECT_TRUE(r.best.is_barrier());
}

TEST(Search, TwoRanksOptimumIsOneExchangeStage) {
  // For P=2 the cheapest barrier is the symmetric exchange in a single
  // stage: send batch O + L plus receive processing L; two sequential
  // stages would cost twice that.
  const TopologyProfile p = uniform_profile(2, 1e-5, 1e-6, 1e-6);
  const SearchResult r = exhaustive_search(p);
  EXPECT_TRUE(r.best.is_barrier());
  EXPECT_EQ(r.best.stage_count(), 1u);
  EXPECT_DOUBLE_EQ(r.cost, 1.2e-5);
}

TEST(Search, ResultIsAlwaysAValidBarrier) {
  const TopologyProfile p = uniform_profile(3, 1e-5, 1e-6, 1e-6);
  const SearchResult r = exhaustive_search(p);
  EXPECT_TRUE(r.best.is_barrier());
  EXPECT_GT(r.nodes_explored, 0u);
}

TEST(Search, BeatsOrMatchesEveryClassicAlgorithm) {
  const MachineSpec m = quad_cluster(1);
  const TopologyProfile p = generate_profile(m, 3);
  SearchOptions opts;
  opts.max_stages = 2;
  const SearchResult r = exhaustive_search(p, opts);
  EXPECT_LE(r.cost, predicted_time(linear_barrier(3), p));
  EXPECT_LE(r.cost, predicted_time(dissemination_barrier(3), p));
  // The tree barrier has 4 stages at P=3, outside max_stages, but the
  // oracle must still not lose to it.
  EXPECT_LE(r.cost, predicted_time(tree_barrier(3), p));
}

TEST(Search, ExploitsHeterogeneousLinks) {
  // Ranks 0,1 share a fast link; rank 2 is remote. The optimum must use
  // the fast link rather than two slow ones where possible; verify by
  // cost: it must be at most one slow hop + cheap extras per direction.
  Matrix<double> o(3, 3, 1e-6);
  o(0, 2) = o(2, 0) = 5e-5;
  o(1, 2) = o(2, 1) = 5e-5;
  Matrix<double> l(3, 3, 1e-7);
  for (std::size_t i = 0; i < 3; ++i) {
    o(i, i) = 5e-7;
    l(i, i) = 0.0;
  }
  const TopologyProfile p(std::move(o), std::move(l));
  const SearchResult r = exhaustive_search(p);
  // A dissemination barrier would pay two slow hops in sequence both
  // ways; the optimum pays strictly less than two sequential slow pairs.
  EXPECT_LT(r.cost, predicted_time(dissemination_barrier(3), p));
  EXPECT_TRUE(r.best.is_barrier());
}

TEST(Search, GreedyHybridIsNeverBetterThanOracle) {
  // The oracle is exact over its stage budget, so any same-or-fewer
  // stage schedule (including the greedy composition) cannot beat it.
  const MachineSpec m = quad_cluster(1);
  const TopologyProfile p = generate_profile(m, 3);
  SearchOptions opts;
  opts.max_stages = 3;
  const SearchResult r = exhaustive_search(p, opts);
  // Compare against all classic schedules of <= 3 stages as proxies.
  EXPECT_LE(r.cost, predicted_time(dissemination_barrier(3), p) + 1e-18);
  EXPECT_LE(r.cost, predicted_time(linear_barrier(3), p) + 1e-18);
}

TEST(Search, NodeBudgetTruncatesButStaysValid) {
  const TopologyProfile p = uniform_profile(3, 1e-5, 1e-6, 1e-6);
  SearchOptions opts;
  opts.node_budget = 10;
  const SearchResult r = exhaustive_search(p, opts);
  EXPECT_TRUE(r.best.is_barrier());  // incumbent seeding guarantees this
  EXPECT_LE(r.nodes_explored, 10u);
}

TEST(Search, RankCapIsEnforced) {
  const TopologyProfile p = uniform_profile(5, 1e-5, 1e-6, 1e-6);
  EXPECT_THROW(exhaustive_search(p), Error);
  SearchOptions raised;
  raised.max_ranks = 5;
  raised.max_stages = 1;
  raised.node_budget = 100'000;
  EXPECT_NO_THROW(exhaustive_search(p, raised));
}

TEST(Search, ZeroStagesRejected) {
  const TopologyProfile p = uniform_profile(2, 1e-5, 1e-6, 1e-6);
  SearchOptions opts;
  opts.max_stages = 0;
  EXPECT_THROW(exhaustive_search(p, opts), Error);
}

TEST(Search, ParallelSearchFindsTheSameMinimum) {
  // Parallel subtree exploration shares an atomic incumbent bound; the
  // minimum cost is exact at any width (the returned schedule may be a
  // different equally-optimal one).
  const TopologyProfile p = uniform_profile(3, 1e-5, 1e-6, 1e-6);
  const SearchResult serial = exhaustive_search(p, SearchOptions{}, 1);
  for (std::size_t threads : {2u, 4u, 8u}) {
    const SearchResult parallel = exhaustive_search(p, SearchOptions{},
                                                    threads);
    EXPECT_DOUBLE_EQ(parallel.cost, serial.cost) << threads << " threads";
    EXPECT_TRUE(parallel.best.is_barrier());
    EXPECT_EQ(parallel.best.ranks(), 3u);
  }
}

TEST(Search, ParallelRootHandlesWideFirstStageFanOut) {
  // 4 ranks, one stage: 2^12 - 1 first-stage masks, all explored as
  // root-level parallel tasks.
  const TopologyProfile p = uniform_profile(4, 1e-5, 1e-6, 1e-6);
  SearchOptions opts;
  opts.max_stages = 1;
  opts.max_ranks = 4;
  const SearchResult serial = exhaustive_search(p, opts, 1);
  const SearchResult parallel = exhaustive_search(p, opts, 8);
  EXPECT_DOUBLE_EQ(parallel.cost, serial.cost);
  EXPECT_TRUE(parallel.best.is_barrier());
  // Counts differ run-to-run (pruning races the shared bound), but both
  // modes visit at least the root and every surviving first stage.
  EXPECT_GT(parallel.nodes_explored, 1u);
}

TEST(Search, EngineOptionsFormMatchesSearchOptionsForm) {
  const TopologyProfile p = uniform_profile(3, 1e-5, 1e-6, 1e-6);
  EngineOptions engine;
  engine.threads = 2;
  const SearchResult via_engine = exhaustive_search(p, engine);
  const SearchResult direct = exhaustive_search(p, engine.search, 2);
  EXPECT_DOUBLE_EQ(via_engine.cost, direct.cost);
}

}  // namespace
}  // namespace optibar
