// Fuzz-style hardening tests for the disk parsers: every truncation of
// a valid artefact, oversized and overflowing header counts, and
// malformed payload values must raise IoError — never crash, hang, or
// return a half-parsed object.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>
#include <string>

#include "barrier/algorithms.hpp"
#include "barrier/schedule_io.hpp"
#include "collective/generators.hpp"
#include "collective/io.hpp"
#include "core/plan_store.hpp"
#include "profile/tiled_profile.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "topology/profile.hpp"
#include "util/error.hpp"
#include "util/matrix.hpp"

namespace optibar {
namespace {

// Where the final whitespace-separated token begins. Truncating inside
// the last token can still parse (a shortened trailing number is a
// number), so sweeps stop at this boundary — every shorter prefix is a
// genuinely incomplete file.
std::size_t last_token_start(const std::string& text) {
  const std::size_t end = text.find_last_not_of(" \t\n");
  if (end == std::string::npos) {
    return 0;
  }
  const std::size_t space = text.find_last_of(" \t\n", end);
  return space == std::string::npos ? 0 : space + 1;
}

std::string saved_schedule_text() {
  StoredSchedule stored;
  // Tree stages are fan-in/fan-out DAGs, so awaited flags survive the
  // loader's deadlock gate and the sweep exercises flag parsing too.
  stored.schedule = tree_barrier(4);
  stored.awaited_stages.assign(stored.schedule.stage_count(), false);
  stored.awaited_stages.back() = true;
  std::ostringstream os;
  save_schedule(os, stored);
  return os.str();
}

std::string saved_collective_text() {
  std::ostringstream os;
  save_collective(os, binomial_broadcast(4, 0, 8, 8));
  return os.str();
}

std::string saved_profile_text() {
  const MachineSpec machine = quad_cluster();
  std::ostringstream os;
  generate_profile(machine, round_robin_mapping(machine, 3)).save(os);
  return os.str();
}

TEST(FormatHardening, EveryScheduleTruncationThrows) {
  const std::string text = saved_schedule_text();
  {
    std::istringstream full(text);
    EXPECT_NO_THROW(load_schedule(full));
  }
  for (std::size_t len = 0; len <= last_token_start(text); ++len) {
    std::istringstream is(text.substr(0, len));
    EXPECT_THROW(load_schedule(is), IoError) << "prefix length " << len;
  }
}

TEST(FormatHardening, EveryCollectiveTruncationThrows) {
  const std::string text = saved_collective_text();
  {
    std::istringstream full(text);
    EXPECT_NO_THROW(load_collective(full));
  }
  for (std::size_t len = 0; len <= last_token_start(text); ++len) {
    std::istringstream is(text.substr(0, len));
    EXPECT_THROW(load_collective(is), IoError) << "prefix length " << len;
  }
}

TEST(FormatHardening, EveryProfileTruncationThrows) {
  const std::string text = saved_profile_text();
  {
    std::istringstream full(text);
    EXPECT_NO_THROW(TopologyProfile::load(full));
  }
  for (std::size_t len = 0; len <= last_token_start(text); ++len) {
    std::istringstream is(text.substr(0, len));
    EXPECT_THROW(TopologyProfile::load(is), IoError)
        << "prefix length " << len;
  }
}

// Smallest meaningful tiled profile: two 2-rank clusters of one class,
// O/L only — covers the header, assignment/class-of lines, an embedded
// dense tile, and the inter-class block.
std::string saved_tiled_profile_text() {
  Matrix<double> o(2, 2), l(2, 2);
  o(0, 0) = 1.5e-6;
  o(0, 1) = 2e-6;
  o(1, 0) = 2e-6;
  o(1, 1) = 1.5e-6;
  l(0, 1) = 1.2e-7;
  l(1, 0) = 1.2e-7;
  const TiledProfile tiled({{0, 1}, {2, 3}}, {0, 0},
                           {TopologyProfile(std::move(o), std::move(l))},
                           Matrix<double>(1, 1, 2e-5),
                           Matrix<double>(1, 1, 8e-6), Matrix<double>(),
                           Matrix<double>(), 0.0);
  std::ostringstream os;
  tiled.save(os);
  return os.str();
}

TEST(FormatHardening, EveryTiledProfileTruncationThrows) {
  const std::string text = saved_tiled_profile_text();
  {
    std::istringstream full(text);
    EXPECT_NO_THROW(TiledProfile::load(full));
  }
  for (std::size_t len = 0; len <= last_token_start(text); ++len) {
    std::istringstream is(text.substr(0, len));
    EXPECT_THROW(TiledProfile::load(is), IoError) << "prefix length " << len;
  }
}

std::string saved_plan_store_text() {
  // Two records — one healthy, one quarantined with a multi-line
  // reason — so the sweep crosses the escaped-reason and state-token
  // parsing as well as the embedded schedule block.
  PlanStoreRecord healthy;
  healthy.subset = {0, 1, 2, 3};
  healthy.plan = {dissemination_barrier(4), {}};
  healthy.predicted_cost = 2.5e-6;
  PlanStoreRecord sick;
  sick.subset = {1, 4, 6};
  sick.state = PlanState::kQuarantined;
  sick.failures = 3;
  sick.repair_attempts = 1;
  sick.reason = "stalled after stage 0\npending edge 1 -> 2\\retry";
  sick.plan = {dissemination_barrier(3), {}};
  sick.predicted_cost = 1.5e-6;
  std::ostringstream os;
  save_plan_store(os, 8, {healthy, sick});
  return os.str();
}

TEST(FormatHardening, EveryPlanStoreTruncationThrows) {
  const std::string text = saved_plan_store_text();
  {
    std::istringstream full(text);
    std::vector<PlanStoreRecord> records;
    EXPECT_NO_THROW(records = load_plan_store(full, 8));
    ASSERT_EQ(records.size(), 2u);
    // The escaped multi-line reason survives the round trip exactly.
    EXPECT_EQ(records[1].reason,
              "stalled after stage 0\npending edge 1 -> 2\\retry");
  }
  for (std::size_t len = 0; len <= last_token_start(text); ++len) {
    std::istringstream is(text.substr(0, len));
    EXPECT_THROW(load_plan_store(is, 8), IoError) << "prefix length " << len;
  }
}

TEST(FormatHardening, PlanStoreRejectsBadHeaderAndRecordValues) {
  const std::string text = saved_plan_store_text();
  const auto rejects = [&](const std::string& from, const std::string& to) {
    std::string tampered = text;
    const auto pos = tampered.find(from);
    ASSERT_NE(pos, std::string::npos) << from;
    tampered.replace(pos, from.size(), to);
    std::istringstream is(tampered);
    EXPECT_THROW(load_plan_store(is, 8), IoError) << from << " -> " << to;
  };
  rejects("optibar-plan-store v1", "optibar-plan-store v2");
  rejects("optibar-plan-store", "optibar-plan-shop");
  rejects("ranks 8", "ranks 12");          // profile mismatch
  rejects("ranks 8", "ranks 9999999999");  // over the cap
  rejects("entries 2", "entries 100001");  // over the cap
  rejects("entries 2", "entries -1");
  rejects("subset 4 0 1 2 3", "subset 4 0 1 2 99");  // out of range
  rejects("subset 4 0 1 2 3", "subset 4 0 1 2 2");   // duplicate rank
  rejects("state quarantined", "state wounded");
  rejects("state quarantined", "state retuning");  // never persisted
  rejects("failures 3", "failures many");
  rejects("predicted 1.5e-06", "predicted nan");
  rejects("predicted 1.5e-06", "predicted -1");
  // Subsets must be unique across records.
  rejects("subset 3 1 4 6", "subset 4 0 1 2 3");
}

TEST(FormatHardening, ScheduleRejectsBadMagicAndVersion) {
  std::istringstream wrong_magic("optibar-profile v1\nP 2\n");
  EXPECT_THROW(load_schedule(wrong_magic), IoError);
  std::istringstream wrong_version("optibar-schedule v9\nP 2\n");
  EXPECT_THROW(load_schedule(wrong_version), IoError);
}

TEST(FormatHardening, ScheduleRejectsOversizedCounts) {
  // A lying header must fail before it drives any allocation.
  std::istringstream huge_p("optibar-schedule v1\nP 100000\nstages 1\n");
  EXPECT_THROW(load_schedule(huge_p), IoError);
  std::istringstream huge_stages(
      "optibar-schedule v1\nP 2\nstages 99999999\nawaited");
  EXPECT_THROW(load_schedule(huge_stages), IoError);
  // Negative counts wrap to huge values in an unsigned read; the cap
  // must catch them too.
  std::istringstream negative_p("optibar-schedule v1\nP -3\nstages 0\n");
  EXPECT_THROW(load_schedule(negative_p), IoError);
}

TEST(FormatHardening, ScheduleRejectsNonBinaryPayload) {
  std::istringstream bad_flag(
      "optibar-schedule v1\nP 2\nstages 1\nawaited 2\nS0\n0 1\n1 0\n");
  EXPECT_THROW(load_schedule(bad_flag), IoError);
  std::istringstream bad_cell(
      "optibar-schedule v1\nP 2\nstages 1\nawaited 0\nS0\n0 7\n1 0\n");
  EXPECT_THROW(load_schedule(bad_cell), IoError);
}

TEST(FormatHardening, CollectiveRejectsOversizedCounts) {
  std::istringstream huge_p(
      "optibar-collective v1\nop bcast\nP 100000\nroot 0\n");
  EXPECT_THROW(load_collective(huge_p), IoError);
  std::istringstream huge_bytes(
      "optibar-collective v1\nop bcast\nP 2\nroot 0\nelems 1 70000\n");
  EXPECT_THROW(load_collective(huge_bytes), IoError);
  // 2^61 elements x 16 bytes overflows size_t.
  std::istringstream overflow(
      "optibar-collective v1\nop bcast\nP 2\nroot 0\n"
      "elems 2305843009213693952 16\n");
  EXPECT_THROW(load_collective(overflow), IoError);
  std::istringstream huge_stage(
      "optibar-collective v1\nop bcast\nP 2\nroot 0\nelems 1 8\n"
      "stages 1\nS0 5\n");
  EXPECT_THROW(load_collective(huge_stage), IoError);
}

TEST(FormatHardening, CollectiveRejectsBadHeaderValues) {
  std::istringstream bad_op(
      "optibar-collective v1\nop gather\nP 2\nroot 0\n");
  EXPECT_THROW(load_collective(bad_op), IoError);
  std::istringstream bad_root(
      "optibar-collective v1\nop bcast\nP 2\nroot 5\n");
  EXPECT_THROW(load_collective(bad_root), IoError);
  std::istringstream zero_bytes(
      "optibar-collective v1\nop bcast\nP 2\nroot 0\nelems 4 0\n");
  EXPECT_THROW(load_collective(zero_bytes), IoError);
}

TEST(FormatHardening, CollectiveRejectsInvalidStagePayload) {
  std::istringstream bad_combine(
      "optibar-collective v1\nop bcast\nP 2\nroot 0\nelems 1 8\n"
      "stages 1\nS0 1\n0 1 0 1 2\n");
  EXPECT_THROW(load_collective(bad_combine), IoError);
  // A self edge is semantically invalid — the stage validator's
  // rejection must surface as a parse error, not a caller bug.
  std::istringstream self_edge(
      "optibar-collective v1\nop bcast\nP 2\nroot 0\nelems 1 8\n"
      "stages 1\nS0 1\n0 0 0 1 0\n");
  EXPECT_THROW(load_collective(self_edge), IoError);
}

TEST(FormatHardening, PreRmaScheduleFixtureStillLoads) {
  // Byte-for-byte what a pre-RMA build wrote for a 2-rank one-stage
  // fan-in (acyclic, so the awaited flag passes the deadlock gate).
  // The v2 transport bump must never orphan these files: they load
  // with every edge defaulting to two-sided.
  std::istringstream fixture(
      "optibar-schedule v1\n"
      "P 2\n"
      "stages 1\n"
      "awaited 1\n"
      "S0\n"
      "0 1\n"
      "0 0\n");
  const StoredSchedule loaded = load_schedule(fixture);
  EXPECT_EQ(loaded.schedule.ranks(), 2u);
  ASSERT_EQ(loaded.awaited_stages.size(), 1u);
  EXPECT_TRUE(loaded.awaited_stages[0]);
  EXPECT_FALSE(loaded.schedule.has_one_sided());
  EXPECT_EQ(loaded.schedule.one_sided_signal_count(), 0u);
}

TEST(FormatHardening, PreRmaProfileFixturesStillLoad) {
  // v1 (O/L) and v2 (O/L/G) profiles predate the R matrix; both load
  // with r(i, j) falling back to the conservative two-sided L(i, j).
  std::istringstream v1(
      "optibar-profile v1\n"
      "P 2\n"
      "O\n"
      "1e-06 2e-06\n"
      "2e-06 1e-06\n"
      "L\n"
      "0 3e-07\n"
      "3e-07 0\n");
  const TopologyProfile p1 = TopologyProfile::load(v1);
  EXPECT_FALSE(p1.has_rma_latency());
  EXPECT_DOUBLE_EQ(p1.r(0, 1), 3e-7);

  std::istringstream v2(
      "optibar-profile v2\n"
      "P 2\n"
      "O\n"
      "1e-06 2e-06\n"
      "2e-06 1e-06\n"
      "L\n"
      "0 3e-07\n"
      "3e-07 0\n"
      "G\n"
      "0 1e-10\n"
      "1e-10 0\n");
  const TopologyProfile p2 = TopologyProfile::load(v2);
  EXPECT_FALSE(p2.has_rma_latency());
  EXPECT_DOUBLE_EQ(p2.r(1, 0), p2.l(1, 0));
}

TEST(FormatHardening, PreTiledProfileFixtureStillLoadsAndSavesDense) {
  // Byte-for-byte what a pre-tiled (pre-v4) build wrote for a 2-rank
  // v3 profile. The v4 bump must never orphan these files, and a dense
  // TopologyProfile must keep emitting the pre-bump header so golden
  // dense artefacts stay byte-identical.
  std::istringstream v3(
      "optibar-profile v3\n"
      "P 2\n"
      "O\n"
      "1e-06 2e-06\n"
      "2e-06 1e-06\n"
      "L\n"
      "0 3e-07\n"
      "3e-07 0\n"
      "R\n"
      "0 1.5e-06\n"
      "1.5e-06 0\n");
  const TopologyProfile p3 = TopologyProfile::load(v3);
  EXPECT_TRUE(p3.has_rma_latency());
  EXPECT_FALSE(p3.has_bandwidth());
  EXPECT_DOUBLE_EQ(p3.r(0, 1), 1.5e-6);

  EXPECT_EQ(saved_profile_text().rfind("optibar-profile v4", 0),
            std::string::npos);
}

TEST(FormatHardening, TiledAndDenseProfileLoadersRejectEachOther) {
  // Version sniffing must fail loudly in both directions: the dense
  // loader names v4 so the CLI can point at `tune --hierarchical`, and
  // the tiled loader refuses dense headers instead of misparsing them.
  std::istringstream v4(saved_tiled_profile_text());
  try {
    TopologyProfile::load(v4);
    FAIL() << "dense loader accepted a v4 tiled profile";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("v4"), std::string::npos);
  }
  std::istringstream dense(saved_profile_text());
  EXPECT_THROW(TiledProfile::load(dense), IoError);
}

TEST(FormatHardening, ProfileRejectsOversizedAndNonFiniteValues) {
  std::istringstream huge_p("optibar-profile v1\nP 100000\nO\n");
  EXPECT_THROW(TopologyProfile::load(huge_p), IoError);
  // Values that overflow double (or spell inf/nan) must not pass the
  // finiteness gate and poison every downstream cost.
  std::istringstream overflow("optibar-profile v1\nP 1\nO\n1e999\nL\n0\n");
  EXPECT_THROW(TopologyProfile::load(overflow), IoError);
  std::istringstream inf_text("optibar-profile v1\nP 1\nO\ninf\nL\n0\n");
  EXPECT_THROW(TopologyProfile::load(inf_text), IoError);
  std::istringstream nan_text("optibar-profile v1\nP 1\nO\nnan\nL\n0\n");
  EXPECT_THROW(TopologyProfile::load(nan_text), IoError);
}

TEST(FormatHardening, MissingFilesRaiseIoError) {
  const std::string missing = "/nonexistent/optibar/artefact";
  EXPECT_THROW(load_schedule_file(missing), IoError);
  EXPECT_THROW(load_collective_file(missing), IoError);
  EXPECT_THROW(TopologyProfile::load_file(missing), IoError);
}

TEST(FormatHardening, IoErrorIsAnError) {
  // The CLI distinguishes parse failures (exit 3) from engine errors
  // (exit 1), but callers catching plain Error still see IoError.
  std::istringstream is("garbage");
  EXPECT_THROW(load_schedule(is), Error);
}

}  // namespace
}  // namespace optibar
