// Tests for Section IV-B submatrix replication: on a homogeneous machine
// the replicated profile must equal the fully measured one.
#include "topology/replicate.hpp"

#include <gtest/gtest.h>

#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

RankGroups node_groups(std::size_t nodes, std::size_t per_node) {
  RankGroups groups(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    for (std::size_t c = 0; c < per_node; ++c) {
      groups[n].push_back(n * per_node + c);
    }
  }
  return groups;
}

TEST(Replicate, ExactOnHomogeneousMachine) {
  // "results did show similar submatrices corresponding to similar
  //  subsystems, suggesting that this could have been assumed and
  //  exploited without significant loss of information."
  const MachineSpec m = quad_cluster(4);
  const TopologyProfile full = generate_profile(m, 32);
  const TopologyProfile replicated =
      replicate_profile(full, node_groups(4, 8));
  EXPECT_DOUBLE_EQ(max_relative_deviation(full, replicated), 0.0);
}

TEST(Replicate, ExactOnHexClusterToo) {
  const MachineSpec m = hex_cluster(3);
  const TopologyProfile full = generate_profile(m, 36);
  const TopologyProfile replicated =
      replicate_profile(full, node_groups(3, 12));
  EXPECT_DOUBLE_EQ(max_relative_deviation(full, replicated), 0.0);
}

TEST(Replicate, SmallDeviationUnderJitter) {
  // With per-pair heterogeneity the replication is approximate; the
  // deviation is bounded by the jitter amplitude band.
  const MachineSpec m = quad_cluster(4);
  const TopologyProfile full =
      generate_profile(m, 32, GenerateOptions{0.05, 21});
  const TopologyProfile replicated =
      replicate_profile(full, node_groups(4, 8));
  const double deviation = max_relative_deviation(full, replicated);
  EXPECT_GT(deviation, 0.0);
  EXPECT_LT(deviation, 0.2);  // two jitter half-widths
}

TEST(Replicate, CarriesBandwidthAndRmaMatrices) {
  // Regression: replication used to rebuild only O and L, silently
  // repricing payload (G -> 0) and one-sided edges (R -> L fallback) on
  // the replicated machine. All four matrices must survive.
  const MachineSpec m = quad_cluster(4);
  const TopologyProfile full = generate_profile(m, 32);
  ASSERT_TRUE(full.has_bandwidth());
  ASSERT_TRUE(full.has_rma_latency());
  const TopologyProfile replicated =
      replicate_profile(full, node_groups(4, 8));
  ASSERT_TRUE(replicated.has_bandwidth());
  ASSERT_TRUE(replicated.has_rma_latency());
  for (std::size_t i = 0; i < 32; ++i) {
    for (std::size_t j = 0; j < 32; ++j) {
      EXPECT_DOUBLE_EQ(replicated.g(i, j), full.g(i, j));
      EXPECT_DOUBLE_EQ(replicated.r(i, j), full.r(i, j));
    }
  }
}

TEST(Replicate, OmitsBandwidthAndRmaWhenMeasuredLacksThem) {
  const TopologyProfile bare(Matrix<double>(4, 4, 1.0),
                             Matrix<double>(4, 4, 2.0));
  const TopologyProfile replicated =
      replicate_profile(bare, {{0, 1}, {2, 3}});
  EXPECT_FALSE(replicated.has_bandwidth());
  EXPECT_FALSE(replicated.has_rma_latency());
}

TEST(Replicate, DeviationMetricScansBandwidthAndRma) {
  const MachineSpec m = quad_cluster(2);
  const TopologyProfile full = generate_profile(m, 16);
  TopologyProfile tampered = full;
  Matrix<double> g = tampered.bandwidth();
  g(0, 1) *= 2.0;
  tampered = TopologyProfile(Matrix<double>(full.overhead()),
                             Matrix<double>(full.latency()), std::move(g));
  tampered.set_rma_latency(Matrix<double>(full.rma_latency()));
  EXPECT_NEAR(max_relative_deviation(full, tampered), 0.5, 1e-12);
}

TEST(Replicate, PreservesDiagonal) {
  const MachineSpec m = quad_cluster(2);
  const TopologyProfile full = generate_profile(m, 16);
  const TopologyProfile replicated =
      replicate_profile(full, node_groups(2, 8));
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(replicated.o(i, i), full.o(i, i));
  }
}

TEST(Replicate, RejectsBadGroupings) {
  const TopologyProfile p = generate_profile(quad_cluster(2), 16);
  EXPECT_THROW(replicate_profile(p, {}), Error);
  EXPECT_THROW(replicate_profile(p, {{0, 1}}), Error);  // single group
  // Unequal group sizes.
  RankGroups uneven{{0, 1, 2}, {3}};
  EXPECT_THROW(replicate_profile(p, uneven), Error);
  // Not a partition of all ranks.
  RankGroups partial{{0, 1}, {2, 3}};
  EXPECT_THROW(replicate_profile(p, partial), Error);
  // Out-of-range rank.
  RankGroups groups = node_groups(2, 8);
  groups[1][7] = 99;
  EXPECT_THROW(replicate_profile(p, groups), Error);
}

TEST(Replicate, DeviationMetricBasics) {
  const TopologyProfile a = generate_profile(quad_cluster(2), 8);
  EXPECT_DOUBLE_EQ(max_relative_deviation(a, a), 0.0);
  const TopologyProfile b = generate_profile(hex_cluster(2), 8);
  EXPECT_GT(max_relative_deviation(a, b), 0.0);
  const TopologyProfile c = generate_profile(quad_cluster(2), 16);
  EXPECT_THROW(max_relative_deviation(a, c), Error);
}

}  // namespace
}  // namespace optibar
