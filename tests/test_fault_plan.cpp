// Tests for the seeded fault model: spec grammar round-trips, decision
// determinism, and the communicator-level drop/duplicate/delay hooks.
#include "simmpi/fault.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "simmpi/communicator.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

using namespace std::chrono_literals;

TEST(FaultPlan, EmptyByDefault) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(FaultPlan::parse(plan.spec()), plan);
}

TEST(FaultPlan, SpecRoundTripsEveryRuleKind) {
  FaultPlan plan;
  plan.seed = 7;
  plan.drops.push_back({0, 1, 2, 1.0, 0.0});
  plan.drops.push_back({ChannelFaultRule::kAnyRank, 3,
                        ChannelFaultRule::kAnyTag, 0.25, 0.0});
  plan.duplicates.push_back({ChannelFaultRule::kAnyRank,
                             ChannelFaultRule::kAnyRank,
                             ChannelFaultRule::kAnyTag, 0.5, 0.0});
  plan.delays.push_back({2, 3, ChannelFaultRule::kAnyTag, 0.125, 1e-3});
  plan.putdrops.push_back({0, 3, 1, 0.5, 0.0});
  plan.putdrops.push_back({ChannelFaultRule::kAnyRank,
                           ChannelFaultRule::kAnyRank,
                           ChannelFaultRule::kAnyTag, 0.75, 0.0});
  plan.crashes.push_back({4, 2});
  const FaultPlan reparsed = FaultPlan::parse(plan.spec());
  EXPECT_EQ(reparsed, plan);
  // And the round-trip is a fixed point: spec(parse(spec())) == spec().
  EXPECT_EQ(reparsed.spec(), plan.spec());
}

TEST(FaultPlan, SpecRoundTripsAwkwardProbabilities) {
  // Probabilities that do not print exactly in short form must still
  // round-trip bit-exactly (printed at full precision).
  FaultPlan plan;
  plan.seed = 1;
  plan.drops.push_back({0, 1, 0, 0.1 + 0.2, 0.0});
  plan.delays.push_back({1, 0, 0, 1.0 / 3.0, 7.3e-5});
  const FaultPlan reparsed = FaultPlan::parse(plan.spec());
  EXPECT_EQ(reparsed, plan);
}

TEST(FaultPlan, ParsesDocumentedExample) {
  const FaultPlan plan =
      FaultPlan::parse("seed=7;drop=0>1@2:1;dup=*>*@*:0.5;"
                       "delay=2>3@*:0.25:0.001;putdrop=0>3@1:0.5;crash=4@2");
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.drops.size(), 1u);
  EXPECT_EQ(plan.drops[0].src, 0u);
  EXPECT_EQ(plan.drops[0].dst, 1u);
  EXPECT_EQ(plan.drops[0].tag, 2);
  EXPECT_EQ(plan.drops[0].probability, 1.0);
  ASSERT_EQ(plan.duplicates.size(), 1u);
  EXPECT_EQ(plan.duplicates[0].src, ChannelFaultRule::kAnyRank);
  EXPECT_EQ(plan.duplicates[0].tag, ChannelFaultRule::kAnyTag);
  ASSERT_EQ(plan.delays.size(), 1u);
  EXPECT_EQ(plan.delays[0].delay_seconds, 0.001);
  ASSERT_EQ(plan.putdrops.size(), 1u);
  EXPECT_EQ(plan.putdrops[0].src, 0u);
  EXPECT_EQ(plan.putdrops[0].dst, 3u);
  EXPECT_EQ(plan.putdrops[0].tag, 1);  // stage, in the tag position
  EXPECT_EQ(plan.putdrops[0].probability, 0.5);
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.crashes[0].rank, 4u);
  EXPECT_EQ(plan.crashes[0].stage, 2u);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("bogus=1"), Error);
  EXPECT_THROW(FaultPlan::parse("seed=notanumber"), Error);
  EXPECT_THROW(FaultPlan::parse("drop=0>1@2"), Error);        // missing prob
  EXPECT_THROW(FaultPlan::parse("drop=0>1@2:1.5"), Error);    // prob > 1
  EXPECT_THROW(FaultPlan::parse("drop=0>1@2:-0.1"), Error);   // prob < 0
  EXPECT_THROW(FaultPlan::parse("delay=0>1@2:0.5"), Error);   // no seconds
  EXPECT_THROW(FaultPlan::parse("crash=4"), Error);           // no stage
  EXPECT_THROW(FaultPlan::parse("drop=0-1@2:1"), Error);      // bad separator
  EXPECT_THROW(FaultPlan::parse("putdrop=0>1@2"), Error);     // missing prob
  EXPECT_THROW(FaultPlan::parse("putdrop=0>1@2:2.0"), Error); // prob > 1
}

TEST(FaultInjector, PutDecisionsAreDeterministicAndIndependent) {
  FaultPlan plan;
  plan.seed = 9;
  plan.putdrops.push_back({ChannelFaultRule::kAnyRank,
                           ChannelFaultRule::kAnyRank,
                           ChannelFaultRule::kAnyTag, 0.5, 0.0});
  plan.drops.push_back({ChannelFaultRule::kAnyRank,
                        ChannelFaultRule::kAnyRank,
                        ChannelFaultRule::kAnyTag, 0.5, 0.0});
  const FaultInjector injector(plan);
  // Pure function of the arguments: same inputs, same answer.
  for (std::uint64_t seq = 0; seq < 64; ++seq) {
    EXPECT_EQ(injector.decide_put(0, 1, 2, seq),
              injector.decide_put(0, 1, 2, seq));
  }
  // Hashed on its own kind salt: the put stream is not the drop stream.
  bool diverged = false;
  for (std::uint64_t seq = 0; seq < 64 && !diverged; ++seq) {
    diverged = injector.decide_put(0, 1, 2, seq) !=
               injector.decide(0, 1, 2, seq).drop;
  }
  EXPECT_TRUE(diverged);
  // Certain and impossible rules behave as such.
  FaultPlan certain;
  certain.putdrops.push_back({0, 1, 1, 1.0, 0.0});
  const FaultInjector always(certain);
  EXPECT_TRUE(always.decide_put(0, 1, 1, 0));
  EXPECT_FALSE(always.decide_put(0, 1, 0, 0));  // stage mismatch
  EXPECT_FALSE(always.decide_put(1, 0, 1, 0));  // direction mismatch
}

TEST(FaultInjector, CertainRulesAlwaysFire) {
  FaultPlan plan;
  plan.drops.push_back({0, 1, 2, 1.0, 0.0});
  const FaultInjector injector(plan);
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    EXPECT_TRUE(injector.decide(0, 1, 2, seq).drop);
  }
  // Any other channel is untouched.
  EXPECT_FALSE(injector.decide(1, 0, 2, 0).drop);
  EXPECT_FALSE(injector.decide(0, 1, 3, 0).drop);
}

TEST(FaultInjector, ZeroProbabilityRulesNeverFire) {
  FaultPlan plan;
  plan.drops.push_back({ChannelFaultRule::kAnyRank, ChannelFaultRule::kAnyRank,
                        ChannelFaultRule::kAnyTag, 0.0, 0.0});
  const FaultInjector injector(plan);
  for (std::uint64_t seq = 0; seq < 100; ++seq) {
    EXPECT_FALSE(injector.decide(0, 1, 0, seq).drop);
  }
}

TEST(FaultInjector, DecisionsAreDeterministicAndSeedSensitive) {
  FaultPlan plan;
  plan.seed = 11;
  plan.drops.push_back({ChannelFaultRule::kAnyRank, ChannelFaultRule::kAnyRank,
                        ChannelFaultRule::kAnyTag, 0.5, 0.0});
  const FaultInjector a(plan);
  const FaultInjector b(plan);
  plan.seed = 12;
  const FaultInjector c(plan);
  bool any_difference = false;
  for (std::uint64_t seq = 0; seq < 256; ++seq) {
    EXPECT_EQ(a.decide(0, 1, 0, seq).drop, b.decide(0, 1, 0, seq).drop);
    if (a.decide(0, 1, 0, seq).drop != c.decide(0, 1, 0, seq).drop) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference) << "seed does not influence decisions";
}

TEST(FaultInjector, ProbabilityIsApproximatelyHonoured) {
  FaultPlan plan;
  plan.seed = 3;
  plan.drops.push_back({ChannelFaultRule::kAnyRank, ChannelFaultRule::kAnyRank,
                        ChannelFaultRule::kAnyTag, 0.3, 0.0});
  const FaultInjector injector(plan);
  std::size_t fired = 0;
  const std::size_t trials = 20000;
  for (std::uint64_t seq = 0; seq < trials; ++seq) {
    fired += injector.decide(0, 1, 0, seq).drop ? 1 : 0;
  }
  const double rate = static_cast<double>(fired) / trials;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(FaultInjector, DelayRulesSumAndDuplicateRulesCount) {
  FaultPlan plan;
  plan.delays.push_back({0, 1, 0, 1.0, 1e-3});
  plan.delays.push_back({0, 1, ChannelFaultRule::kAnyTag, 1.0, 2e-3});
  plan.duplicates.push_back({0, 1, 0, 1.0, 0.0});
  const FaultInjector injector(plan);
  const FaultInjector::Decision d = injector.decide(0, 1, 0, 5);
  EXPECT_FALSE(d.drop);
  EXPECT_EQ(d.duplicates, 1u);
  EXPECT_DOUBLE_EQ(d.delay_seconds, 3e-3);
}

TEST(FaultInjector, CrashStageIsMinimumOverRules) {
  FaultPlan plan;
  plan.crashes.push_back({2, 5});
  plan.crashes.push_back({2, 3});
  plan.crashes.push_back({4, 0});
  const FaultInjector injector(plan);
  EXPECT_EQ(injector.crash_stage(2), 3u);
  EXPECT_EQ(injector.crash_stage(4), 0u);
  EXPECT_EQ(injector.crash_stage(0), FaultInjector::kNoCrash);
}

TEST(CommunicatorFaults, CertainDropSwallowsTheSignal) {
  simmpi::Communicator comm(2);
  FaultPlan plan;
  plan.drops.push_back({0, 1, 0, 1.0, 0.0});
  comm.set_fault_plan(plan);
  auto recv = comm.irecv(0, 1, 0);
  auto send = comm.issend(0, 1, 0);
  EXPECT_FALSE(send->wait_for(20ms));
  EXPECT_FALSE(recv->wait_for(1ms));
  EXPECT_EQ(comm.dropped_messages(), 1u);
}

TEST(CommunicatorFaults, DropIsChannelSpecific) {
  simmpi::Communicator comm(2);
  FaultPlan plan;
  plan.drops.push_back({0, 1, 7, 1.0, 0.0});
  comm.set_fault_plan(plan);
  auto recv = comm.irecv(1, 0, 7);  // other direction, same tag
  auto send = comm.issend(1, 0, 7);
  send->wait();
  recv->wait();
  EXPECT_EQ(comm.dropped_messages(), 0u);
}

TEST(CommunicatorFaults, DuplicateDoesNotStarveTheRealSend) {
  // A certain duplicate posts a ghost copy; the original must still
  // bind to the receive so the synchronized sender completes.
  simmpi::Communicator comm(2);
  FaultPlan plan;
  plan.duplicates.push_back({0, 1, 0, 1.0, 0.0});
  comm.set_fault_plan(plan);
  for (int round = 0; round < 4; ++round) {
    auto recv = comm.irecv(0, 1, round);
    auto send = comm.issend(0, 1, round);
    ASSERT_TRUE(send->wait_for(500ms)) << "round " << round;
    ASSERT_TRUE(recv->wait_for(500ms)) << "round " << round;
  }
  EXPECT_EQ(comm.dropped_messages(), 0u);
}

TEST(CommunicatorFaults, DelaySpikePostponesDelivery) {
  simmpi::Communicator comm(2);
  FaultPlan plan;
  plan.delays.push_back({0, 1, 0, 1.0, 0.050});  // 50 ms spike
  comm.set_fault_plan(plan);
  auto recv = comm.irecv(0, 1, 0);
  auto send = comm.issend(0, 1, 0);
  EXPECT_FALSE(recv->wait_for(5ms)) << "delivery ignored the delay spike";
  EXPECT_TRUE(recv->wait_for(500ms));
  EXPECT_TRUE(send->wait_for(500ms));
}

TEST(CommunicatorFaults, PayloadSurvivesDelaySpike) {
  simmpi::Communicator comm(2);
  FaultPlan plan;
  plan.delays.push_back({0, 1, 0, 1.0, 0.010});
  comm.set_fault_plan(plan);
  simmpi::Payload sink;
  auto recv = comm.irecv(0, 1, 0, &sink);
  auto send = comm.issend(0, 1, 0, simmpi::Payload{1, 2, 3});
  recv->wait();
  send->wait();
  EXPECT_EQ(sink, (simmpi::Payload{1, 2, 3}));
}

}  // namespace
}  // namespace optibar
