// Tests for the deterministic RNG: reproducibility, distribution sanity,
// stream independence.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "util/error.hpp"

namespace optibar {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, CopyForksIdenticalStream) {
  Rng a(55);
  a.next_u64();
  Rng b = a;  // value semantics: identical continuation
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(-2.5, 3.5);
    EXPECT_GE(v, -2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(9);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    total += rng.uniform(0.0, 10.0);
  }
  EXPECT_NEAR(total / n, 5.0, 0.05);
}

TEST(Rng, NextBelowStaysInRangeAndCoversAll) {
  Rng rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(11);
  EXPECT_THROW(rng.next_below(0), Error);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(12);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_normal();
    sum += v;
    sum_sq += v * v;
  }
  const double mu = sum / n;
  const double sigma = std::sqrt(sum_sq / n - mu * mu);
  EXPECT_NEAR(mu, 0.0, 0.02);
  EXPECT_NEAR(sigma, 1.0, 0.02);
}

TEST(Rng, ScaledNormal) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.normal(5.0, 0.5);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, ForkedStreamsAreDecorrelated) {
  Rng parent(42);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace optibar
