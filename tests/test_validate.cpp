// Tests for the static schedule validator: classic and tuned schedules
// pass, cyclic awaited stages are flagged as deadlocks, non-barriers
// are flagged (but deadlock-free), and the schedule_io loader enforces
// the deadlock-freedom gate.
#include "barrier/validate.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "barrier/algorithms.hpp"
#include "barrier/schedule_io.hpp"
#include "core/tuner.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

// A 3-rank stage whose edge digraph is the cycle 0 -> 1 -> 2 -> 0.
StageMatrix ring_stage() {
  StageMatrix stage(3, 3);
  stage(0, 1) = 1;
  stage(1, 2) = 1;
  stage(2, 0) = 1;
  return stage;
}

bool has_issue(const ValidationResult& result, ScheduleIssueKind kind) {
  for (const ScheduleIssue& issue : result.issues) {
    if (issue.kind == kind) {
      return true;
    }
  }
  return false;
}

TEST(StageHasCycle, DetectsCyclesAndAcceptsDags) {
  EXPECT_TRUE(stage_has_cycle(ring_stage()));

  StageMatrix two_cycle(2, 2);
  two_cycle(0, 1) = 1;
  two_cycle(1, 0) = 1;
  EXPECT_TRUE(stage_has_cycle(two_cycle));

  StageMatrix fan_out(4, 4);  // 0 -> {1,2,3}: a DAG
  fan_out(0, 1) = fan_out(0, 2) = fan_out(0, 3) = 1;
  EXPECT_FALSE(stage_has_cycle(fan_out));

  StageMatrix chain(4, 4);  // 0 -> 1 -> 2 -> 3
  chain(0, 1) = chain(1, 2) = chain(2, 3) = 1;
  EXPECT_FALSE(stage_has_cycle(chain));

  EXPECT_FALSE(stage_has_cycle(StageMatrix(3, 3)));  // empty stage
}

TEST(Validate, EveryClassicGeneratorPasses) {
  const std::size_t p = 12;
  const std::vector<Schedule> classics = {
      linear_barrier(p),        dissemination_barrier(p),
      tree_barrier(p),          heap_tree_barrier(p),
      kary_tree_barrier(p, 3),  pairwise_exchange_barrier(p),
      radix_dissemination_barrier(p, 4)};
  for (const Schedule& schedule : classics) {
    const ValidationResult result = validate_schedule(schedule);
    EXPECT_TRUE(result.ok()) << result.describe();
    EXPECT_TRUE(result.deadlock_free());
  }
}

TEST(Validate, TunedScheduleWithAwaitedFlagsPasses) {
  const MachineSpec machine = quad_cluster();
  const TopologyProfile profile =
      generate_profile(machine, round_robin_mapping(machine, 16));
  const TuneResult tuned = tune_barrier(profile);
  StoredSchedule stored;
  stored.schedule = tuned.schedule();
  stored.awaited_stages = tuned.barrier().awaited_stages;
  const ValidationResult result = validate_schedule(stored);
  EXPECT_TRUE(result.ok()) << result.describe();
}

TEST(Validate, CyclicAwaitedStageIsADeadlock) {
  StoredSchedule stored;
  stored.schedule = Schedule(3);
  stored.schedule.append_stage(ring_stage());
  // Close the pattern into a barrier so only the cycle is at issue.
  stored.schedule.append_stage(ring_stage());
  stored.awaited_stages = {true, false};
  const ValidationResult result = validate_schedule(stored);
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.deadlock_free());
  EXPECT_TRUE(has_issue(result, ScheduleIssueKind::kCyclicWait));
  ASSERT_FALSE(result.issues.empty());
  EXPECT_FALSE(result.describe().empty());
}

TEST(Validate, SameCycleNotAwaitedIsFine) {
  // The identical stage digraph under the post-then-wait contract is
  // legitimate (dissemination stages are circulants).
  StoredSchedule stored;
  stored.schedule = Schedule(3);
  stored.schedule.append_stage(ring_stage());
  stored.schedule.append_stage(ring_stage());
  stored.awaited_stages = {false, false};
  const ValidationResult result = validate_schedule(stored);
  EXPECT_TRUE(result.deadlock_free()) << result.describe();
  EXPECT_FALSE(has_issue(result, ScheduleIssueKind::kCyclicWait));
}

TEST(Validate, NonBarrierIsFlaggedButDeadlockFree) {
  // One ring stage does not saturate Eq. 3 for p = 3: not a barrier,
  // but nothing in it can hang a conforming runtime.
  Schedule schedule(3);
  schedule.append_stage(ring_stage());
  const ValidationResult result = validate_schedule(schedule);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.deadlock_free());
  EXPECT_TRUE(has_issue(result, ScheduleIssueKind::kUnreachableKnowledge));
}

TEST(Validate, AwaitedFlagSizeMismatchIsMalformed) {
  StoredSchedule stored;
  stored.schedule = dissemination_barrier(4);
  stored.awaited_stages = {true};  // schedule has 2 stages
  const ValidationResult result = validate_schedule(stored);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(has_issue(result, ScheduleIssueKind::kMalformed));
}

TEST(Validate, EmptyAwaitedVectorMeansNoneAwaited) {
  StoredSchedule stored;
  stored.schedule = Schedule(3);
  stored.schedule.append_stage(ring_stage());
  stored.schedule.append_stage(ring_stage());
  const ValidationResult result = validate_schedule(stored);
  EXPECT_TRUE(result.deadlock_free()) << result.describe();
}

TEST(ValidateIo, LoaderRejectsCyclicAwaitedSchedules) {
  StoredSchedule stored;
  stored.schedule = Schedule(3);
  stored.schedule.append_stage(ring_stage());
  stored.schedule.append_stage(ring_stage());
  stored.awaited_stages = {true, false};
  std::stringstream buffer;
  save_schedule(buffer, stored);
  EXPECT_THROW(load_schedule(buffer), IoError);
}

TEST(ValidateNonblocking, MatchedProgramsPass) {
  // Every rank posts schedule 0 then waits, twice: clean.
  const NonblockingProgram program{
      NonblockingOp::post(0), NonblockingOp::wait(), NonblockingOp::post(0),
      NonblockingOp::wait()};
  const ValidationResult result =
      validate_nonblocking_programs({program, program, program});
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.deadlock_free());
}

TEST(ValidateNonblocking, PostAllThenWaitAllIsFine) {
  // Outstanding handles are legal as long as every post is eventually
  // waited (FIFO drain).
  const NonblockingProgram program{
      NonblockingOp::post(0), NonblockingOp::post(1), NonblockingOp::wait(),
      NonblockingOp::wait()};
  EXPECT_TRUE(validate_nonblocking_programs({program, program}).ok());
}

TEST(ValidateNonblocking, ParcoachMismatchShapeIsCaught) {
  // The PARCOACH benchmark shape: odd ranks post the collective twice,
  // even ranks once — the extra call can never complete.
  const NonblockingProgram even{NonblockingOp::post(0),
                                NonblockingOp::wait()};
  const NonblockingProgram odd{NonblockingOp::post(0), NonblockingOp::wait(),
                               NonblockingOp::post(0),
                               NonblockingOp::wait()};
  const ValidationResult result =
      validate_nonblocking_programs({even, odd, even, odd});
  EXPECT_FALSE(result.ok());
  EXPECT_FALSE(result.deadlock_free());
  bool found = false;
  for (const ScheduleIssue& issue : result.issues) {
    found = found || issue.kind == ScheduleIssueKind::kMismatchedPost;
  }
  EXPECT_TRUE(found) << result.describe();
}

TEST(ValidateNonblocking, DivergentScheduleIdsAreCaughtByPosition) {
  const NonblockingProgram a{NonblockingOp::post(0), NonblockingOp::post(1),
                             NonblockingOp::wait(), NonblockingOp::wait()};
  const NonblockingProgram b{NonblockingOp::post(0), NonblockingOp::post(2),
                             NonblockingOp::wait(), NonblockingOp::wait()};
  const ValidationResult result = validate_nonblocking_programs({a, b});
  ASSERT_EQ(result.issues.size(), 1u);
  EXPECT_EQ(result.issues[0].kind, ScheduleIssueKind::kMismatchedPost);
  EXPECT_EQ(result.issues[0].stage, 1u);  // first divergent position
}

TEST(ValidateNonblocking, MissingWaitIsCaughtPerRank) {
  const NonblockingProgram leaky{NonblockingOp::post(0)};
  const ValidationResult result =
      validate_nonblocking_programs({leaky, leaky});
  EXPECT_FALSE(result.deadlock_free());
  ASSERT_EQ(result.issues.size(), 2u);  // one per rank, no cross-rank issue
  EXPECT_EQ(result.issues[0].kind, ScheduleIssueKind::kMissingWait);
  EXPECT_EQ(result.issues[1].kind, ScheduleIssueKind::kMissingWait);
}

TEST(ValidateNonblocking, UnmatchedWaitIsCaught) {
  const NonblockingProgram program{NonblockingOp::wait()};
  const ValidationResult result = validate_nonblocking_programs({program});
  ASSERT_EQ(result.issues.size(), 1u);
  EXPECT_EQ(result.issues[0].kind, ScheduleIssueKind::kUnmatchedWait);
  EXPECT_EQ(result.issues[0].stage, 0u);
  EXPECT_FALSE(result.deadlock_free());
}

TEST(ValidateNonblocking, EmptyAndSingleRankProgramsAreClean) {
  EXPECT_TRUE(validate_nonblocking_programs({}).ok());
  const NonblockingProgram program{NonblockingOp::post(3),
                                   NonblockingOp::wait()};
  EXPECT_TRUE(validate_nonblocking_programs({program}).ok());
}

TEST(ValidateIo, LoaderStillAcceptsNonBarrierFiles) {
  // Analysis commands legitimately inspect non-barrier patterns; only
  // deadlock hazards are refused at load time.
  StoredSchedule stored;
  stored.schedule = Schedule(3);
  stored.schedule.append_stage(ring_stage());
  std::stringstream buffer;
  save_schedule(buffer, stored);
  const StoredSchedule loaded = load_schedule(buffer);
  EXPECT_EQ(loaded.schedule.stage_count(), 1u);
  EXPECT_FALSE(loaded.schedule.is_barrier());
}

}  // namespace
}  // namespace optibar
