// Tests for ground-truth profile generation: tier placement, mapping
// dependence, jitter determinism and symmetry.
#include "topology/generate.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace optibar {
namespace {

TEST(Generate, DiagonalIsSelfOverhead) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile p = generate_profile(m, 8);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(p.o(i, i), m.tiers().self_overhead);
    EXPECT_DOUBLE_EQ(p.l(i, i), 0.0);
  }
}

TEST(Generate, BlockMappingPlacesTiers) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile p = generate_profile(m, 16);
  const LatencyTiers& t = m.tiers();
  // Ranks 0,1 share a cache slice; 0,2 share a chip; 0,4 cross sockets;
  // 0,8 cross nodes (block mapping == core numbering).
  EXPECT_DOUBLE_EQ(p.o(0, 1), t.shared_cache.overhead);
  EXPECT_DOUBLE_EQ(p.o(0, 2), t.same_chip.overhead);
  EXPECT_DOUBLE_EQ(p.o(0, 4), t.cross_socket.overhead);
  EXPECT_DOUBLE_EQ(p.o(0, 8), t.inter_node.overhead);
  EXPECT_DOUBLE_EQ(p.l(0, 8), t.inter_node.latency);
}

TEST(Generate, RoundRobinMappingChangesNeighborTiers) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile p =
      generate_profile(m, round_robin_mapping(m, 16), GenerateOptions{});
  const LatencyTiers& t = m.tiers();
  // Under round-robin over 2 nodes, adjacent ranks live on different
  // nodes: the rank-distance-1 link is inter-node, rank-distance-2 is
  // the local shared-cache pair.
  EXPECT_DOUBLE_EQ(p.o(0, 1), t.inter_node.overhead);
  EXPECT_DOUBLE_EQ(p.o(0, 2), t.shared_cache.overhead);
}

TEST(Generate, ProfileIsSymmetricWithoutJitter) {
  const TopologyProfile p = generate_profile(hex_cluster(), 24);
  EXPECT_TRUE(p.is_symmetric());
}

TEST(Generate, JitterKeepsSymmetry) {
  const TopologyProfile p =
      generate_profile(quad_cluster(), 32, GenerateOptions{0.3, 5});
  EXPECT_TRUE(p.is_symmetric());
}

TEST(Generate, JitterIsDeterministicInSeed) {
  const GenerateOptions opts{0.25, 77};
  const TopologyProfile a = generate_profile(quad_cluster(), 24, opts);
  const TopologyProfile b = generate_profile(quad_cluster(), 24, opts);
  EXPECT_EQ(a, b);
}

TEST(Generate, DifferentSeedsDiffer) {
  const TopologyProfile a =
      generate_profile(quad_cluster(), 24, GenerateOptions{0.25, 1});
  const TopologyProfile b =
      generate_profile(quad_cluster(), 24, GenerateOptions{0.25, 2});
  EXPECT_NE(a, b);
}

TEST(Generate, JitterStaysWithinAmplitude) {
  const MachineSpec m = quad_cluster();
  const double amp = 0.2;
  const TopologyProfile p =
      generate_profile(m, 16, GenerateOptions{amp, 3});
  const TopologyProfile base = generate_profile(m, 16);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      if (i == j) {
        continue;
      }
      const double ratio = p.o(i, j) / base.o(i, j);
      EXPECT_GE(ratio, 1.0 - amp - 1e-12);
      EXPECT_LE(ratio, 1.0 + amp + 1e-12);
    }
  }
}

TEST(Generate, InvalidHeterogeneityThrows) {
  EXPECT_THROW(generate_profile(quad_cluster(), 8, GenerateOptions{-0.1, 1}),
               Error);
  EXPECT_THROW(generate_profile(quad_cluster(), 8, GenerateOptions{1.0, 1}),
               Error);
}

TEST(Generate, InterNodeDwarfsIntraNode) {
  // The performance gap between inter-node and intra-node communication
  // "overshadows" the on-chip hierarchies (Section III).
  const TopologyProfile p = generate_profile(quad_cluster(), 16);
  EXPECT_GT(p.o(0, 8) / p.o(0, 4), 5.0);
}

}  // namespace
}  // namespace optibar
