// Tests for the hierarchical machine model: coordinate decomposition and
// link-level classification across the cluster / node / socket / cache
// layers.
#include "topology/machine.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace optibar {
namespace {

TEST(Machine, QuadClusterShape) {
  const MachineSpec m = quad_cluster();
  EXPECT_EQ(m.nodes(), 8u);
  EXPECT_EQ(m.sockets_per_node(), 2u);
  EXPECT_EQ(m.cores_per_socket(), 4u);
  EXPECT_EQ(m.cores_per_node(), 8u);
  EXPECT_EQ(m.total_cores(), 64u);
}

TEST(Machine, HexClusterShape) {
  const MachineSpec m = hex_cluster();
  EXPECT_EQ(m.nodes(), 10u);
  EXPECT_EQ(m.cores_per_node(), 12u);
  EXPECT_EQ(m.total_cores(), 120u);
}

TEST(Machine, LocationRoundTrips) {
  const MachineSpec m = quad_cluster();
  for (std::size_t core = 0; core < m.total_cores(); ++core) {
    EXPECT_EQ(m.core_id(m.location(core)), core);
  }
}

TEST(Machine, LocationDecomposition) {
  const MachineSpec m = quad_cluster();
  // Core 13 = node 1 (cores 8..15), socket 0 (cores 8..11)? No:
  // within-node index 5 -> socket 1, core 1.
  const CoreLocation loc = m.location(13);
  EXPECT_EQ(loc.node, 1u);
  EXPECT_EQ(loc.socket, 1u);
  EXPECT_EQ(loc.core, 1u);
}

TEST(Machine, LocationOutOfRangeThrows) {
  const MachineSpec m = quad_cluster();
  EXPECT_THROW(m.location(64), Error);
  EXPECT_THROW(m.core_id(CoreLocation{8, 0, 0}), Error);
}

TEST(Machine, LinkLevelSelf) {
  const MachineSpec m = quad_cluster();
  EXPECT_EQ(m.link_level(5, 5), LinkLevel::kSelf);
}

TEST(Machine, LinkLevelSharedCachePairsOnQuad) {
  // Xeon E5405: cores_per_cache = 2, so cores (0,1) share cache but
  // (1,2) do not.
  const MachineSpec m = quad_cluster();
  EXPECT_EQ(m.link_level(0, 1), LinkLevel::kSharedCache);
  EXPECT_EQ(m.link_level(1, 2), LinkLevel::kSameChip);
  EXPECT_EQ(m.link_level(2, 3), LinkLevel::kSharedCache);
}

TEST(Machine, LinkLevelCrossSocketAndInterNode) {
  const MachineSpec m = quad_cluster();
  EXPECT_EQ(m.link_level(0, 4), LinkLevel::kCrossSocket);   // socket 0 vs 1
  EXPECT_EQ(m.link_level(3, 7), LinkLevel::kCrossSocket);
  EXPECT_EQ(m.link_level(0, 8), LinkLevel::kInterNode);     // node 0 vs 1
  EXPECT_EQ(m.link_level(7, 63), LinkLevel::kInterNode);
}

TEST(Machine, LinkLevelIsSymmetric) {
  const MachineSpec m = quad_cluster();
  for (std::size_t a = 0; a < 16; ++a) {
    for (std::size_t b = 0; b < 16; ++b) {
      EXPECT_EQ(m.link_level(a, b), m.link_level(b, a))
          << "cores " << a << "," << b;
    }
  }
}

TEST(Machine, HexClusterWholeSocketSharesCache) {
  // Opteron 2431: one L3 per socket, so any two cores of a socket are
  // at the shared-cache level.
  const MachineSpec m = hex_cluster();
  EXPECT_EQ(m.link_level(0, 5), LinkLevel::kSharedCache);
  EXPECT_EQ(m.link_level(0, 6), LinkLevel::kCrossSocket);
}

TEST(Machine, LinkCostMatchesTier) {
  const MachineSpec m = quad_cluster();
  const LatencyTiers& tiers = m.tiers();
  EXPECT_DOUBLE_EQ(m.link_cost(0, 8).overhead, tiers.inter_node.overhead);
  EXPECT_DOUBLE_EQ(m.link_cost(0, 4).latency, tiers.cross_socket.latency);
  EXPECT_DOUBLE_EQ(m.link_cost(3, 3).overhead, tiers.self_overhead);
  EXPECT_DOUBLE_EQ(m.link_cost(3, 3).latency, 0.0);
}

TEST(Machine, TierOrderingReflectsHierarchy) {
  // Costs must grow with topological distance on both preset machines.
  for (const MachineSpec& m : {quad_cluster(), hex_cluster()}) {
    const LatencyTiers& t = m.tiers();
    EXPECT_LE(t.shared_cache.overhead, t.same_chip.overhead);
    EXPECT_LT(t.same_chip.overhead, t.cross_socket.overhead);
    EXPECT_LT(t.cross_socket.overhead, t.inter_node.overhead);
    EXPECT_LE(t.shared_cache.latency, t.same_chip.latency);
    EXPECT_LT(t.same_chip.latency, t.cross_socket.latency);
    EXPECT_LT(t.cross_socket.latency, t.inter_node.latency);
  }
}

TEST(Machine, Figure9LatencyRatioAboutFourX) {
  // "around a factor 4 observable difference between on-chip and
  //  off-chip messages" (Section VII-A, Figure 9).
  const LatencyTiers& t = quad_cluster().tiers();
  const double ratio = t.cross_socket.latency / t.same_chip.latency;
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
}

TEST(Machine, FirstNodesRestrictsCluster) {
  const MachineSpec m = quad_cluster().first_nodes(3);
  EXPECT_EQ(m.nodes(), 3u);
  EXPECT_EQ(m.total_cores(), 24u);
  EXPECT_EQ(m.cores_per_node(), 8u);
  EXPECT_THROW(quad_cluster().first_nodes(0), Error);
  EXPECT_THROW(quad_cluster().first_nodes(9), Error);
}

TEST(Machine, InvalidShapesThrow) {
  LatencyTiers tiers;
  EXPECT_THROW(MachineSpec("bad", 0, 1, 1, 1, tiers), Error);
  EXPECT_THROW(MachineSpec("bad", 1, 0, 1, 1, tiers), Error);
  EXPECT_THROW(MachineSpec("bad", 1, 1, 0, 1, tiers), Error);
  // cores_per_cache must divide cores_per_socket
  EXPECT_THROW(MachineSpec("bad", 1, 1, 4, 3, tiers), Error);
}

TEST(Machine, LinkLevelNames) {
  EXPECT_STREQ(to_string(LinkLevel::kSelf), "self");
  EXPECT_STREQ(to_string(LinkLevel::kInterNode), "inter-node");
}

TEST(Machine, SkewedClusterInvertsTierOrder) {
  // The pathological preset must have cross-socket slower than the
  // network — that is its entire purpose.
  const LatencyTiers& t = skewed_cluster().tiers();
  EXPECT_GT(t.cross_socket.overhead, t.inter_node.overhead);
}

}  // namespace
}  // namespace optibar
