// Failure-injection tests: rank crashes in the simulator (the Eq. 3
// guarantee viewed from the failure side — nobody escapes a barrier a
// dead rank never entered) and bounded waits in the thread runtime.
#include <gtest/gtest.h>

#include <chrono>

#include "barrier/algorithms.hpp"
#include "core/tuner.hpp"
#include "netsim/engine.hpp"
#include "simmpi/communicator.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/runtime.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

using namespace std::chrono_literals;

TopologyProfile cluster_profile(std::size_t ranks) {
  const MachineSpec m = quad_cluster();
  return generate_profile(m, round_robin_mapping(m, ranks));
}

class CrashSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CrashSweep, NoRankEscapesABarrierWithACrashedParticipant) {
  // The defining property of a barrier, inverted: if one participant
  // never arrives, every participant must stay inside.
  const std::size_t p = 12;
  const TopologyProfile profile = cluster_profile(p);
  const std::size_t crashed = GetParam() % p;
  for (const Schedule& s :
       {linear_barrier(p), dissemination_barrier(p), tree_barrier(p),
        pairwise_exchange_barrier(p)}) {
    SimOptions options;
    options.crashed_ranks = {crashed};
    const SimResult result = simulate(s, profile, options);
    EXPECT_TRUE(result.deadlocked);
    EXPECT_EQ(result.stuck_ranks.size(), p)
        << "some rank escaped with rank " << crashed << " dead";
    EXPECT_THROW(result.barrier_time(), Error);
  }
}

INSTANTIATE_TEST_SUITE_P(CrashedRank, CrashSweep,
                         ::testing::Values(0, 1, 5, 11));

TEST(CrashInjection, TunedHybridAlsoBlocksEveryone) {
  const std::size_t p = 24;
  const TopologyProfile profile = cluster_profile(p);
  const TuneResult tuned = tune_barrier(profile);
  SimOptions options;
  options.crashed_ranks = {7};
  const SimResult result = simulate(tuned.schedule(), profile, options);
  EXPECT_TRUE(result.deadlocked);
  EXPECT_EQ(result.stuck_ranks.size(), p);
}

TEST(CrashInjection, NonBarrierPatternsLeakSurvivors) {
  // Contrast: a one-way chain is not a barrier, so ranks with no
  // dependency on the dead rank do exit — the leak Eq. 3 exists to
  // prevent.
  const std::size_t p = 4;
  const TopologyProfile profile = cluster_profile(p);
  Schedule chain(p);  // 0 -> 1 -> 2 -> 3, no return path
  for (std::size_t s = 0; s + 1 < p; ++s) {
    StageMatrix m(p, p, 0);
    m(s, s + 1) = 1;
    chain.append_stage(std::move(m));
  }
  ASSERT_FALSE(chain.is_barrier());
  SimOptions options;
  options.crashed_ranks = {3};  // kill the chain's tail
  const SimResult result = simulate(chain, profile, options);
  EXPECT_TRUE(result.deadlocked);
  // Ranks 0 and 1 finish their sends; rank 2's send to dead 3 never
  // matches (synchronous), so 2 and 3 are stuck.
  EXPECT_EQ(result.stuck_ranks, (std::vector<std::size_t>{2, 3}));
}

TEST(CrashInjection, MultipleCrashesAndValidation) {
  const std::size_t p = 8;
  const TopologyProfile profile = cluster_profile(p);
  SimOptions options;
  options.crashed_ranks = {1, 6};
  const SimResult result =
      simulate(dissemination_barrier(p), profile, options);
  EXPECT_TRUE(result.deadlocked);
  EXPECT_EQ(result.stuck_ranks.size(), p);
  SimOptions bad;
  bad.crashed_ranks = {99};
  EXPECT_THROW(simulate(dissemination_barrier(p), profile, bad), Error);
}

TEST(CrashInjection, NoCrashMeansNoDeadlockFields) {
  const TopologyProfile profile = cluster_profile(8);
  const SimResult result = simulate(tree_barrier(8), profile);
  EXPECT_FALSE(result.deadlocked);
  EXPECT_TRUE(result.stuck_ranks.empty());
}

// ---- The shared fault model on the virtual-time engine ----

TEST(NetsimFaults, CrashAtStageZeroMatchesLegacyCrashedRanks) {
  // FaultPlan crash@0 is exactly the crashed_ranks semantics: the rank
  // never enters the barrier.
  const std::size_t p = 8;
  const TopologyProfile profile = cluster_profile(p);
  const Schedule s = dissemination_barrier(p);
  SimOptions legacy;
  legacy.crashed_ranks = {3};
  const SimResult expected = simulate(s, profile, legacy);
  SimOptions modern;
  modern.faults.crashes.push_back({3, 0});
  const SimResult actual = simulate(s, profile, modern);
  EXPECT_TRUE(actual.deadlocked);
  EXPECT_EQ(actual.stuck_ranks, expected.stuck_ranks);
}

TEST(NetsimFaults, CertainDropDeadlocksTheWholeBarrier) {
  const std::size_t p = 4;
  const TopologyProfile profile = cluster_profile(p);
  SimOptions options;
  options.faults.drops.push_back(
      {0, 1, ChannelFaultRule::kAnyTag, 1.0, 0.0});
  const SimResult result =
      simulate(dissemination_barrier(p), profile, options);
  EXPECT_TRUE(result.deadlocked);
  // One lost edge strands everyone — the Eq. 3 guarantee again.
  EXPECT_EQ(result.stuck_ranks.size(), p);
  EXPECT_THROW(result.barrier_time(), Error);
}

TEST(NetsimFaults, DuplicatesAndDelaysCompleteButCostTime) {
  const std::size_t p = 8;
  const TopologyProfile profile = cluster_profile(p);
  const Schedule s = tree_barrier(p);
  const SimResult clean = simulate(s, profile);
  SimOptions delayed;
  delayed.faults.delays.push_back({ChannelFaultRule::kAnyRank,
                                   ChannelFaultRule::kAnyRank,
                                   ChannelFaultRule::kAnyTag, 1.0, 1e-3});
  const SimResult slow = simulate(s, profile, delayed);
  EXPECT_FALSE(slow.deadlocked);
  // Virtual time is exact: a 1 ms spike on every message must show.
  EXPECT_GT(slow.barrier_time(), clean.barrier_time());
  SimOptions duplicated;
  duplicated.faults.duplicates.push_back({ChannelFaultRule::kAnyRank,
                                          ChannelFaultRule::kAnyRank,
                                          ChannelFaultRule::kAnyTag, 1.0,
                                          0.0});
  const SimResult ghosts = simulate(s, profile, duplicated);
  EXPECT_FALSE(ghosts.deadlocked);
  EXPECT_GE(ghosts.barrier_time(), clean.barrier_time());
}

TEST(NetsimFaults, EmptyFaultPlanIsBitIdentical) {
  // An empty plan must not even perturb the RNG stream.
  const std::size_t p = 12;
  const TopologyProfile profile = cluster_profile(p);
  const Schedule s = dissemination_barrier(p);
  SimOptions noisy;
  noisy.jitter = 0.05;
  SimOptions with_plan = noisy;
  with_plan.faults = FaultPlan{};
  const SimResult a = simulate(s, profile, noisy);
  const SimResult b = simulate(s, profile, with_plan);
  EXPECT_EQ(a.completion, b.completion);
}

// ---- Bounded waits on the thread runtime ----

TEST(BoundedWait, TimesOutOnAnUnmatchedSend) {
  simmpi::Communicator comm(2);
  auto request = comm.issend(0, 1, 0);  // no matching receive ever posted
  EXPECT_FALSE(request->wait_for(30ms));
  EXPECT_EQ(comm.unmatched_operations(), 1u);
}

TEST(BoundedWait, SucceedsOnMatchedPairs) {
  simmpi::Communicator comm(2);
  auto send = comm.issend(0, 1, 0);
  auto recv = comm.irecv(0, 1, 0);
  EXPECT_TRUE(send->wait_for(50ms));
  EXPECT_TRUE(recv->wait_for(50ms));
}

TEST(BoundedWait, WaitAllForCoversWholeSets) {
  simmpi::Communicator comm(3);
  std::vector<simmpi::Request> matched{comm.issend(0, 1, 0),
                                       comm.irecv(0, 1, 0)};
  EXPECT_TRUE(simmpi::Communicator::wait_all_for(matched, 50ms));
  std::vector<simmpi::Request> hung{comm.issend(0, 2, 1)};
  EXPECT_FALSE(simmpi::Communicator::wait_all_for(hung, 30ms));
}

TEST(BoundedWait, DetectsDeadPeerDuringBarrier) {
  // Rank 2 "dies" (never participates); the survivors detect the hang
  // via bounded waits instead of blocking forever, and agree on it.
  const Schedule s = dissemination_barrier(3);
  simmpi::Communicator comm(3);
  std::vector<int> timed_out(3, 0);
  simmpi::run_ranks(comm, [&](simmpi::RankContext& ctx) {
    if (ctx.rank() == 2) {
      return;  // crashed before the barrier
    }
    std::vector<simmpi::Request> requests;
    for (std::size_t stage = 0; stage < s.stage_count(); ++stage) {
      for (std::size_t dst : s.targets_of(ctx.rank(), stage)) {
        requests.push_back(ctx.issend(dst, static_cast<int>(stage)));
      }
      for (std::size_t src : s.sources_of(ctx.rank(), stage)) {
        requests.push_back(ctx.irecv(src, static_cast<int>(stage)));
      }
      if (!simmpi::Communicator::wait_all_for(requests, 50ms)) {
        timed_out[ctx.rank()] = 1;
        return;
      }
      requests.clear();
    }
  });
  EXPECT_EQ(timed_out[0], 1);
  EXPECT_EQ(timed_out[1], 1);
}

}  // namespace
}  // namespace optibar
