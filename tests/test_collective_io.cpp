// Collective schedule text IO: value-preserving round trips for every
// generator shape, and hard rejection of malformed input — bad magic,
// unknown op, out-of-range root, bad combine flags and truncation must
// all throw rather than yield a half-parsed schedule.
#include "collective/io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "collective/generators.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

void expect_round_trips(const CollectiveSchedule& schedule) {
  std::ostringstream os;
  save_collective(os, schedule);
  std::istringstream is(os.str());
  const CollectiveSchedule loaded = load_collective(is);
  EXPECT_EQ(loaded, schedule);
}

TEST(CollectiveIo, RoundTripsEveryGenerator) {
  for (const NamedCollective& cand :
       classic_collectives(CollectiveOp::kAllreduce, 7, 0, 29, 8)) {
    SCOPED_TRACE(cand.name);
    expect_round_trips(cand.schedule);
  }
  expect_round_trips(binomial_broadcast(9, 4, 12, 4));
  expect_round_trips(binomial_reduce(9, 8, 12, 16));
  // Zero payload and an empty (single-rank) schedule.
  expect_round_trips(recursive_doubling_allreduce(6, 0, 8));
  expect_round_trips(linear_broadcast(1, 0, 5, 8));
}

TEST(CollectiveIo, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "optibar_collective_io.txt")
          .string();
  const CollectiveSchedule s = ring_allreduce(5, 11, 8);
  save_collective_file(path, s);
  EXPECT_EQ(load_collective_file(path), s);
  std::filesystem::remove(path);
}

CollectiveSchedule parse(const std::string& text) {
  std::istringstream is(text);
  return load_collective(is);
}

TEST(CollectiveIo, RejectsBadMagicAndVersion) {
  EXPECT_THROW(parse("optibar-schedule v1\n"), Error);
  EXPECT_THROW(parse("optibar-collective v9\nop bcast\n"), Error);
}

TEST(CollectiveIo, RejectsBadHeaderFields) {
  EXPECT_THROW(parse("optibar-collective v1\nop scan\nP 4\n"), Error);
  EXPECT_THROW(parse("optibar-collective v1\nop bcast\nP 0\n"), Error);
  EXPECT_THROW(
      parse("optibar-collective v1\nop bcast\nP 4\nroot 4\n"
            "elems 2 8\nstages 0\n"),
      Error);
  EXPECT_THROW(
      parse("optibar-collective v1\nop bcast\nP 4\nroot 0\n"
            "elems 2 0\nstages 0\n"),
      Error);
}

TEST(CollectiveIo, RejectsMalformedStageLines) {
  const std::string header =
      "optibar-collective v1\nop reduce\nP 4\nroot 0\nelems 2 8\nstages 1\n";
  // Wrong stage tag.
  EXPECT_THROW(parse(header + "S1 1\n1 0 0 2 1\n"), Error);
  // Truncated edge line.
  EXPECT_THROW(parse(header + "S0 1\n1 0 0\n"), Error);
  // Non-numeric field.
  EXPECT_THROW(parse(header + "S0 1\n1 0 zero 2 1\n"), Error);
  // Combine flag outside {0, 1}.
  EXPECT_THROW(parse(header + "S0 1\n1 0 0 2 7\n"), Error);
  // Self edge and out-of-range rank re-checked by append_stage.
  EXPECT_THROW(parse(header + "S0 1\n1 1 0 2 1\n"), Error);
  EXPECT_THROW(parse(header + "S0 1\n1 9 0 2 1\n"), Error);
  // Range past elem_count.
  EXPECT_THROW(parse(header + "S0 1\n1 0 1 2 1\n"), Error);
  // Fewer edges than announced (stream runs dry).
  EXPECT_THROW(parse(header + "S0 2\n1 0 0 2 1\n"), Error);
}

TEST(CollectiveIo, AcceptsHandWrittenSchedule) {
  const CollectiveSchedule s = parse(
      "optibar-collective v1\nop allreduce\nP 2\nroot 0\nelems 3 8\n"
      "stages 2\nS0 1\n0 1 0 3 1\nS1 1\n1 0 0 3 0\n");
  EXPECT_EQ(s.ranks(), 2u);
  EXPECT_EQ(s.stage_count(), 2u);
  EXPECT_TRUE(is_valid_collective(s));
}

}  // namespace
}  // namespace optibar
