// Tests for Sparse Spatial Selection clustering (Section VII-A).
#include "core/sss.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

DistanceFn metric_from(const TopologyProfile& p) {
  return [&p](std::size_t a, std::size_t b) { return p.distance(a, b); };
}

TEST(Sss, SinglePointIsOneCluster) {
  const auto clusters =
      sss_cluster(1, [](std::size_t, std::size_t) { return 0.0; });
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0], (std::vector<std::size_t>{0}));
}

TEST(Sss, AllEqualDistancesBelowThresholdGiveOneCluster) {
  // diameter = d, every distance = d > 0.35 d -> all become centers.
  // Conversely with all distances equal the threshold equals 0.35 * d,
  // so everything splits into singletons.
  const auto clusters = sss_cluster(
      5, [](std::size_t a, std::size_t b) { return a == b ? 0.0 : 1.0; });
  EXPECT_EQ(clusters.size(), 5u);
}

TEST(Sss, ZeroDiameterCollapsesToOneCluster) {
  const auto clusters =
      sss_cluster(4, [](std::size_t, std::size_t) { return 0.0; });
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].size(), 4u);
}

TEST(Sss, TwoWellSeparatedGroups) {
  // Points 0..2 mutually close (0.01), points 3..5 mutually close,
  // inter-group distance 1.0.
  auto dist = [](std::size_t a, std::size_t b) {
    if (a == b) {
      return 0.0;
    }
    return (a / 3 == b / 3) ? 0.01 : 1.0;
  };
  const auto clusters = sss_cluster(6, dist);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0], (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(clusters[1], (std::vector<std::size_t>{3, 4, 5}));
}

TEST(Sss, CenterIsFirstMember) {
  auto dist = [](std::size_t a, std::size_t b) {
    if (a == b) {
      return 0.0;
    }
    return (a / 2 == b / 2) ? 0.01 : 1.0;
  };
  const auto clusters = sss_cluster(4, dist);
  ASSERT_EQ(clusters.size(), 2u);
  EXPECT_EQ(clusters[0].front(), 0u);
  EXPECT_EQ(clusters[1].front(), 2u);
}

TEST(Sss, ClustersPartitionAllPoints) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile p =
      generate_profile(m, round_robin_mapping(m, 40), GenerateOptions{});
  const auto clusters = sss_cluster(40, metric_from(p));
  std::set<std::size_t> seen;
  for (const auto& cluster : clusters) {
    for (std::size_t member : cluster) {
      EXPECT_TRUE(seen.insert(member).second) << "duplicate " << member;
    }
  }
  EXPECT_EQ(seen.size(), 40u);
}

TEST(Sss, NodeGranularityOnQuadClusterBlockMapping) {
  // "we get clusters of node-level granularity on our test systems."
  const MachineSpec m = quad_cluster();
  const std::size_t p = 32;  // 4 nodes
  const TopologyProfile profile =
      generate_profile(m, block_mapping(m, p), GenerateOptions{});
  const auto clusters = sss_cluster(p, metric_from(profile));
  ASSERT_EQ(clusters.size(), 4u);
  for (std::size_t c = 0; c < 4; ++c) {
    ASSERT_EQ(clusters[c].size(), 8u);
    for (std::size_t member : clusters[c]) {
      EXPECT_EQ(member / 8, c) << "rank " << member << " in wrong cluster";
    }
  }
}

TEST(Sss, NodeGranularityUnderRoundRobinMapping) {
  const MachineSpec m = quad_cluster();
  const std::size_t p = 22;  // Figure 10's case: 3 nodes
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, p), GenerateOptions{});
  const auto clusters = sss_cluster(p, metric_from(profile));
  ASSERT_EQ(clusters.size(), 3u);
  // Under round-robin over 3 nodes, rank r lives on node r % 3.
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    for (std::size_t member : clusters[c]) {
      EXPECT_EQ(member % 3, clusters[c].front() % 3)
          << "cluster " << c << " mixes nodes";
    }
  }
}

TEST(Sss, NodeGranularityOnHexCluster) {
  const MachineSpec m = hex_cluster();
  const std::size_t p = 60;  // 5 nodes
  const TopologyProfile profile =
      generate_profile(m, block_mapping(m, p), GenerateOptions{});
  const auto clusters = sss_cluster(p, metric_from(profile));
  EXPECT_EQ(clusters.size(), 5u);
}

TEST(Sss, LowerSparsenessRefinesToSockets) {
  // "Further lowering the sparseness parameter can refine the clustering
  //  to cores on a chip..." — within one quad node, socket structure
  //  appears at a smaller alpha.
  const MachineSpec m = quad_cluster(1);
  const TopologyProfile profile = generate_profile(m, 8);
  // Threshold between same-chip (2.5us) and cross-socket (4.0us):
  // sockets emerge.
  SssOptions socket_level;
  socket_level.sparseness = 0.7;
  const auto sockets = sss_cluster(8, metric_from(profile), socket_level);
  ASSERT_EQ(sockets.size(), 2u);
  EXPECT_EQ(sockets[0], (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_EQ(sockets[1], (std::vector<std::size_t>{4, 5, 6, 7}));
  // Threshold between shared-cache (2.0us) and same-chip (2.5us):
  // "...and cores sharing cache."
  SssOptions cache_level;
  cache_level.sparseness = 0.55;
  const auto pairs = sss_cluster(8, metric_from(profile), cache_level);
  ASSERT_EQ(pairs.size(), 4u);
  EXPECT_EQ(pairs[0], (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(pairs[3], (std::vector<std::size_t>{6, 7}));
}

TEST(Sss, DeterministicAcrossCalls) {
  const MachineSpec m = hex_cluster();
  const TopologyProfile p =
      generate_profile(m, block_mapping(m, 48), GenerateOptions{0.1, 9});
  const auto a = sss_cluster(48, metric_from(p));
  const auto b = sss_cluster(48, metric_from(p));
  EXPECT_EQ(a, b);
}

TEST(Sss, RejectsBadArguments) {
  EXPECT_THROW(sss_cluster(0, [](std::size_t, std::size_t) { return 0.0; }),
               Error);
  EXPECT_THROW(sss_cluster(2, DistanceFn{}), Error);
  SssOptions bad;
  bad.sparseness = 0.0;
  EXPECT_THROW(
      sss_cluster(2, [](std::size_t, std::size_t) { return 1.0; }, bad),
      Error);
  bad.sparseness = 1.0;
  EXPECT_THROW(
      sss_cluster(2, [](std::size_t, std::size_t) { return 1.0; }, bad),
      Error);
}

}  // namespace
}  // namespace optibar
