// Tests for the component barrier algorithms, including exact matches
// against the paper's Figures 2-4 matrices and parameterized validity
// sweeps over rank counts.
#include "barrier/algorithms.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace optibar {
namespace {

StageMatrix stage_of(std::initializer_list<std::initializer_list<int>> rows) {
  StageMatrix m(rows.size(), rows.begin()->size(), 0);
  std::size_t r = 0;
  for (const auto& row : rows) {
    std::size_t c = 0;
    for (int v : row) {
      m(r, c) = static_cast<std::uint8_t>(v);
      ++c;
    }
    ++r;
  }
  return m;
}

// ---- Figure 2: the linear barrier in matrix form (P=4) ----
TEST(PaperFigures, Figure2LinearBarrierMatrices) {
  const Schedule s = linear_barrier(4);
  ASSERT_EQ(s.stage_count(), 2u);
  const StageMatrix s0 = stage_of({{0, 0, 0, 0},
                                   {1, 0, 0, 0},
                                   {1, 0, 0, 0},
                                   {1, 0, 0, 0}});
  EXPECT_EQ(s.stage(0), s0);
  EXPECT_EQ(s.stage(1), s0.transposed());
}

// ---- Figure 3: the dissemination barrier in matrix form (P=4) ----
TEST(PaperFigures, Figure3DisseminationBarrierMatrices) {
  const Schedule s = dissemination_barrier(4);
  ASSERT_EQ(s.stage_count(), 2u);
  EXPECT_EQ(s.stage(0), stage_of({{0, 1, 0, 0},
                                  {0, 0, 1, 0},
                                  {0, 0, 0, 1},
                                  {1, 0, 0, 0}}));
  EXPECT_EQ(s.stage(1), stage_of({{0, 0, 1, 0},
                                  {0, 0, 0, 1},
                                  {1, 0, 0, 0},
                                  {0, 1, 0, 0}}));
}

// ---- Figure 4: the tree barrier in matrix form (P=4) ----
TEST(PaperFigures, Figure4TreeBarrierMatrices) {
  const Schedule s = tree_barrier(4);
  ASSERT_EQ(s.stage_count(), 4u);
  const StageMatrix s0 = stage_of({{0, 0, 0, 0},
                                   {1, 0, 0, 0},
                                   {0, 0, 0, 0},
                                   {0, 0, 1, 0}});
  const StageMatrix s1 = stage_of({{0, 0, 0, 0},
                                   {0, 0, 0, 0},
                                   {1, 0, 0, 0},
                                   {0, 0, 0, 0}});
  EXPECT_EQ(s.stage(0), s0);
  EXPECT_EQ(s.stage(1), s1);
  EXPECT_EQ(s.stage(2), s1.transposed());
  EXPECT_EQ(s.stage(3), s0.transposed());
}

// ---- Validity of every algorithm across rank counts (Eq. 3) ----
class AlgorithmValidity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AlgorithmValidity, LinearIsABarrier) {
  EXPECT_TRUE(linear_barrier(GetParam()).is_barrier());
}

TEST_P(AlgorithmValidity, DisseminationIsABarrier) {
  EXPECT_TRUE(dissemination_barrier(GetParam()).is_barrier());
}

TEST_P(AlgorithmValidity, TreeIsABarrier) {
  EXPECT_TRUE(tree_barrier(GetParam()).is_barrier());
}

TEST_P(AlgorithmValidity, KAryTreesAreBarriers) {
  for (std::size_t k : {2u, 3u, 4u, 8u}) {
    EXPECT_TRUE(kary_tree_barrier(GetParam(), k).is_barrier())
        << "P=" << GetParam() << " k=" << k;
  }
}

TEST_P(AlgorithmValidity, HeapTreeIsABarrier) {
  EXPECT_TRUE(heap_tree_barrier(GetParam()).is_barrier());
}

TEST_P(AlgorithmValidity, PairwiseExchangeIsABarrier) {
  EXPECT_TRUE(pairwise_exchange_barrier(GetParam()).is_barrier());
}

TEST_P(AlgorithmValidity, ArrivalPhasesFunnelToRankZero) {
  const std::size_t p = GetParam();
  for (const Schedule& arrival :
       {linear_arrival(p), tree_arrival(p), kary_tree_arrival(p, 4),
        heap_tree_arrival(p)}) {
    const BoolMatrix k = arrival.final_knowledge();
    for (std::size_t i = 0; i < p; ++i) {
      EXPECT_EQ(k(i, 0), 1) << "rank 0 missing arrival of " << i
                            << " at P=" << p;
    }
  }
}

TEST_P(AlgorithmValidity, SelfCompletingArrivalsAreFullBarriers) {
  const std::size_t p = GetParam();
  EXPECT_TRUE(dissemination_arrival(p).is_barrier());
  EXPECT_TRUE(pairwise_exchange_arrival(p).is_barrier());
}

INSTANTIATE_TEST_SUITE_P(RankSweep, AlgorithmValidity,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 13,
                                           16, 17, 22, 24, 31, 32, 33, 48, 57,
                                           60, 64, 96, 120));

// ---- Structural properties ----

TEST(Algorithms, LinearHasTwoStagesAlways) {
  for (std::size_t p : {2u, 5u, 64u}) {
    EXPECT_EQ(linear_barrier(p).stage_count(), 2u);
  }
}

TEST(Algorithms, DisseminationHasCeilLog2Stages) {
  EXPECT_EQ(dissemination_barrier(2).stage_count(), 1u);
  EXPECT_EQ(dissemination_barrier(4).stage_count(), 2u);
  EXPECT_EQ(dissemination_barrier(5).stage_count(), 3u);
  EXPECT_EQ(dissemination_barrier(8).stage_count(), 3u);
  EXPECT_EQ(dissemination_barrier(9).stage_count(), 4u);
  EXPECT_EQ(dissemination_barrier(64).stage_count(), 6u);
}

TEST(Algorithms, TreeHasTwiceCeilLog2Stages) {
  EXPECT_EQ(tree_barrier(2).stage_count(), 2u);
  EXPECT_EQ(tree_barrier(8).stage_count(), 6u);
  EXPECT_EQ(tree_barrier(9).stage_count(), 8u);
  EXPECT_EQ(tree_barrier(64).stage_count(), 12u);
}

TEST(Algorithms, DisseminationEveryRankSignalsEveryStage) {
  const Schedule s = dissemination_barrier(7);
  for (std::size_t st = 0; st < s.stage_count(); ++st) {
    for (std::size_t i = 0; i < 7; ++i) {
      EXPECT_EQ(s.targets_of(i, st).size(), 1u);
      EXPECT_EQ(s.sources_of(i, st).size(), 1u);
    }
  }
}

TEST(Algorithms, DisseminationOffsetsArePowersOfTwoModP) {
  const std::size_t p = 11;
  const Schedule s = dissemination_barrier(p);
  for (std::size_t st = 0; st < s.stage_count(); ++st) {
    const std::size_t offset = std::size_t{1} << st;
    for (std::size_t i = 0; i < p; ++i) {
      EXPECT_EQ(s.targets_of(i, st),
                (std::vector<std::size_t>{(i + offset) % p}));
    }
  }
}

TEST(Algorithms, TreeSignalCountIsMinimal) {
  // A gather into one root needs exactly P-1 signals; the full barrier
  // twice that.
  for (std::size_t p : {2u, 7u, 16u, 33u}) {
    EXPECT_EQ(tree_arrival(p).total_signals(), p - 1);
    EXPECT_EQ(tree_barrier(p).total_signals(), 2 * (p - 1));
    EXPECT_EQ(kary_tree_arrival(p, 4).total_signals(), p - 1);
  }
}

TEST(Algorithms, SingleRankSchedulesAreEmpty) {
  EXPECT_EQ(linear_barrier(1).stage_count(), 0u);
  EXPECT_EQ(dissemination_barrier(1).stage_count(), 0u);
  EXPECT_EQ(tree_barrier(1).stage_count(), 0u);
  EXPECT_EQ(pairwise_exchange_barrier(1).stage_count(), 0u);
}

TEST(Algorithms, ZeroRanksThrow) {
  EXPECT_THROW(linear_barrier(0), Error);
  EXPECT_THROW(dissemination_barrier(0), Error);
  EXPECT_THROW(tree_barrier(0), Error);
  EXPECT_THROW(kary_tree_barrier(0, 2), Error);
  EXPECT_THROW(pairwise_exchange_barrier(0), Error);
}

TEST(Algorithms, KAryRejectsArityBelowTwo) {
  EXPECT_THROW(kary_tree_barrier(4, 1), Error);
  EXPECT_THROW(kary_tree_barrier(4, 0), Error);
}

TEST(Algorithms, PairwiseExchangeIsSymmetricOnPowersOfTwo) {
  const Schedule s = pairwise_exchange_barrier(8);
  for (std::size_t st = 0; st < s.stage_count(); ++st) {
    EXPECT_EQ(s.stage(st), s.stage(st).transposed()) << "stage " << st;
  }
}

TEST(Algorithms, PairwiseExchangeFoldsNonPowerOfTwo) {
  // P=6: fold stage + 2 exchange stages + unfold stage.
  const Schedule s = pairwise_exchange_barrier(6);
  EXPECT_EQ(s.stage_count(), 4u);
  EXPECT_EQ(s.stage(0)(4, 0), 1);  // rank 4 folds into rank 0
  EXPECT_EQ(s.stage(0)(5, 1), 1);
  EXPECT_EQ(s.stage(3)(0, 4), 1);  // and is released at the end
}

TEST(Algorithms, RegistryContents) {
  const auto paper = paper_algorithms();
  ASSERT_EQ(paper.size(), 3u);
  EXPECT_EQ(paper[0].name, "linear");
  EXPECT_EQ(paper[1].name, "dissemination");
  EXPECT_EQ(paper[2].name, "tree");
  EXPECT_FALSE(paper[0].self_completing);
  EXPECT_TRUE(paper[1].self_completing);
  EXPECT_FALSE(paper[2].self_completing);

  const auto extended = extended_algorithms();
  EXPECT_EQ(extended.size(), 7u);
  EXPECT_TRUE(extended.back().self_completing);  // radix-4 dissemination
}

TEST(Algorithms, RegistryGeneratorsAreValid) {
  for (const ComponentAlgorithm& algo : extended_algorithms()) {
    for (std::size_t p : {1u, 2u, 5u, 8u, 13u}) {
      const Schedule arrival = algo.arrival(p);
      if (algo.self_completing) {
        EXPECT_TRUE(arrival.is_barrier()) << algo.name << " P=" << p;
      } else {
        const BoolMatrix k = arrival.final_knowledge();
        for (std::size_t i = 0; i < p; ++i) {
          EXPECT_EQ(k(i, 0), 1) << algo.name << " P=" << p;
        }
      }
    }
  }
}

class RadixDissemination
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(RadixDissemination, IsAValidBarrier) {
  const auto [p, k] = GetParam();
  EXPECT_TRUE(radix_dissemination_barrier(p, k).is_barrier())
      << "P=" << p << " k=" << k;
}

TEST_P(RadixDissemination, StageCountIsCeilLogRadix) {
  const auto [p, k] = GetParam();
  const Schedule s = radix_dissemination_barrier(p, k);
  std::size_t expected = 0;
  std::size_t power = 1;
  while (power < p) {
    power *= k;
    ++expected;
  }
  EXPECT_EQ(s.stage_count(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RadixDissemination,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 6, 8, 9, 12, 16, 17,
                                         27, 32, 60, 64, 81, 120),
                       ::testing::Values(2, 3, 4, 8)));

TEST(Algorithms, RadixTwoDisseminationMatchesClassic) {
  for (std::size_t p : {2u, 5u, 8u, 13u, 32u}) {
    EXPECT_EQ(radix_dissemination_barrier(p, 2), dissemination_barrier(p))
        << "P=" << p;
  }
}

TEST(Algorithms, RadixDisseminationFanOutIsRadixMinusOne) {
  // P = 16, k = 4: 2 stages, each rank signalling 3 peers.
  const Schedule s = radix_dissemination_barrier(16, 4);
  ASSERT_EQ(s.stage_count(), 2u);
  for (std::size_t st = 0; st < 2; ++st) {
    for (std::size_t i = 0; i < 16; ++i) {
      EXPECT_EQ(s.targets_of(i, st).size(), 3u);
    }
  }
}

TEST(Algorithms, RadixDisseminationDropsWholeRingOffsets) {
  // P = 6, k = 3: stage 1 offsets are 3 and 6; 6 mod 6 == 0 is dropped.
  const Schedule s = radix_dissemination_barrier(6, 3);
  ASSERT_EQ(s.stage_count(), 2u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(s.targets_of(i, 1), (std::vector<std::size_t>{(i + 3) % 6}));
  }
  EXPECT_TRUE(s.is_barrier());
}

TEST(Algorithms, RadixDisseminationRejectsBadRadix) {
  EXPECT_THROW(radix_dissemination_barrier(4, 1), Error);
  EXPECT_THROW(radix_dissemination_barrier(4, 0), Error);
  EXPECT_THROW(radix_dissemination_barrier(0, 2), Error);
}

TEST(Algorithms, RingBarrierIsValidAcrossSizes) {
  for (std::size_t p : {1u, 2u, 3u, 5u, 9u, 16u}) {
    EXPECT_TRUE(ring_barrier(p).is_barrier()) << "P=" << p;
  }
}

TEST(Algorithms, RingHasTwoPMinusTwoStages) {
  EXPECT_EQ(ring_barrier(2).stage_count(), 2u);
  EXPECT_EQ(ring_barrier(5).stage_count(), 8u);
  EXPECT_EQ(ring_barrier(1).stage_count(), 0u);
}

TEST(Algorithms, RingArrivalFunnelsDownToRankZero) {
  const Schedule arrival = ring_arrival(5);
  ASSERT_EQ(arrival.stage_count(), 4u);
  // Token descends: stage 0 is 4 -> 3, stage 3 is 1 -> 0.
  EXPECT_EQ(arrival.stage(0)(4, 3), 1);
  EXPECT_EQ(arrival.stage(3)(1, 0), 1);
  const BoolMatrix k = arrival.final_knowledge();
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(k(i, 0), 1);
  }
}

TEST(Algorithms, RingUsesExactlyOneSignalPerStage) {
  const Schedule s = ring_barrier(7);
  for (std::size_t st = 0; st < s.stage_count(); ++st) {
    EXPECT_EQ(s.stage(st).count_nonzero(), 1u);
  }
  EXPECT_EQ(s.total_signals(), 12u);  // 2 * (P - 1)
}

TEST(Algorithms, KindNames) {
  EXPECT_STREQ(to_string(AlgorithmKind::kLinear), "linear");
  EXPECT_STREQ(to_string(AlgorithmKind::kPairwiseExchange),
               "pairwise-exchange");
}

}  // namespace
}  // namespace optibar
