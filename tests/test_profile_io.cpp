// Tests for TopologyProfile: invariants, symmetry handling, restriction,
// and the on-disk format (Figure 1 decouples profiling from tuning via
// profiles stored on disk).
#include "topology/profile.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

TopologyProfile small_profile() {
  Matrix<double> o{{1e-6, 2e-6, 3e-6},
                   {2e-6, 1e-6, 4e-6},
                   {3e-6, 4e-6, 1e-6}};
  Matrix<double> l{{0.0, 2e-7, 3e-7},
                   {2e-7, 0.0, 4e-7},
                   {3e-7, 4e-7, 0.0}};
  return TopologyProfile(std::move(o), std::move(l));
}

TEST(Profile, ConstructionValidatesShape) {
  EXPECT_THROW(TopologyProfile(Matrix<double>(2, 3), Matrix<double>(2, 2)),
               Error);
  EXPECT_THROW(TopologyProfile(Matrix<double>(2, 2), Matrix<double>(3, 3)),
               Error);
}

TEST(Profile, AccessorsReadMatrices) {
  const TopologyProfile p = small_profile();
  EXPECT_EQ(p.ranks(), 3u);
  EXPECT_DOUBLE_EQ(p.o(0, 1), 2e-6);
  EXPECT_DOUBLE_EQ(p.l(1, 2), 4e-7);
  EXPECT_DOUBLE_EQ(p.o(2, 2), 1e-6);
}

TEST(Profile, SymmetryDetection) {
  EXPECT_TRUE(small_profile().is_symmetric());
  Matrix<double> o(2, 2, 1e-6);
  o(0, 1) = 5e-6;
  o(1, 0) = 1e-6;
  TopologyProfile asym(std::move(o), Matrix<double>(2, 2, 0.0));
  EXPECT_FALSE(asym.is_symmetric());
  // Symmetrizing averages the two directions.
  const TopologyProfile sym = asym.symmetrized();
  EXPECT_TRUE(sym.is_symmetric());
  EXPECT_DOUBLE_EQ(sym.o(0, 1), 3e-6);
  EXPECT_DOUBLE_EQ(sym.o(1, 0), 3e-6);
}

TEST(Profile, DistanceIsSymmetrizedOverheadWithZeroDiagonal) {
  const TopologyProfile p = small_profile();
  EXPECT_DOUBLE_EQ(p.distance(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(p.distance(0, 2), 3e-6);
  EXPECT_DOUBLE_EQ(p.distance(2, 0), 3e-6);
}

TEST(Profile, DiameterIsMaxPairwiseDistance) {
  EXPECT_DOUBLE_EQ(small_profile().diameter(), 4e-6);
}

TEST(Profile, RestrictToExtractsSubmatrices) {
  const TopologyProfile p = small_profile();
  const TopologyProfile sub = p.restrict_to({0, 2});
  EXPECT_EQ(sub.ranks(), 2u);
  EXPECT_DOUBLE_EQ(sub.o(0, 1), 3e-6);
  EXPECT_DOUBLE_EQ(sub.l(1, 0), 3e-7);
  EXPECT_THROW(p.restrict_to({}), Error);
}

TEST(Profile, StreamRoundTripIsExact) {
  const TopologyProfile p = small_profile();
  std::stringstream ss;
  p.save(ss);
  const TopologyProfile q = TopologyProfile::load(ss);
  EXPECT_EQ(p, q);
}

TEST(Profile, RoundTripPreservesFullDoublePrecision) {
  Matrix<double> o(1, 1, 1.0 / 3.0);
  Matrix<double> l(1, 1, 2.0e-301);
  const TopologyProfile p(std::move(o), std::move(l));
  std::stringstream ss;
  p.save(ss);
  const TopologyProfile q = TopologyProfile::load(ss);
  EXPECT_EQ(p, q);
}

TEST(Profile, RmaLatencyRoundTripsAsV3) {
  TopologyProfile p = small_profile();
  Matrix<double> r{{0.0, 5e-7, 6e-7},
                   {5e-7, 0.0, 7e-7},
                   {6e-7, 7e-7, 0.0}};
  p.set_rma_latency(std::move(r));
  std::stringstream ss;
  p.save(ss);
  EXPECT_NE(ss.str().find("optibar-profile v3\n"), std::string::npos);
  const TopologyProfile q = TopologyProfile::load(ss);
  EXPECT_EQ(p, q);
  ASSERT_TRUE(q.has_rma_latency());
  EXPECT_DOUBLE_EQ(q.r(0, 1), 5e-7);
}

TEST(Profile, RmaFreeProfileStaysV1) {
  // The empty-RMA bit-identity contract: no R data means the v1 bytes
  // a pre-RMA build would have written.
  std::stringstream ss;
  small_profile().save(ss);
  EXPECT_NE(ss.str().find("optibar-profile v1\n"), std::string::npos);
  EXPECT_EQ(ss.str().find("R"), std::string::npos);
}

TEST(Profile, PreRmaFilesFallBackToLatencyForR) {
  // v1 (and v2) files carry no R matrix; r(i, j) then prices one-sided
  // delivery at the conservative two-sided L.
  std::stringstream ss("optibar-profile v1\nP 2\nO\n1e-6 2e-6\n2e-6 1e-6\n"
                       "L\n0 3e-7\n3e-7 0\n");
  const TopologyProfile p = TopologyProfile::load(ss);
  EXPECT_FALSE(p.has_rma_latency());
  EXPECT_DOUBLE_EQ(p.r(0, 1), p.l(0, 1));
  EXPECT_DOUBLE_EQ(p.r(0, 1), 3e-7);
}

TEST(Profile, V3RequiresTheRMatrix) {
  // A v3 header without R is a truncated or hand-damaged file (save()
  // would have emitted v1/v2).
  std::stringstream ss("optibar-profile v3\nP 1\nO\n0\nL\n0\n");
  EXPECT_THROW(TopologyProfile::load(ss), Error);
}

TEST(Profile, RestrictAndSymmetrizePreserveR) {
  TopologyProfile p = small_profile();
  Matrix<double> r{{0.0, 5e-7, 6e-7},
                   {1e-7, 0.0, 7e-7},
                   {6e-7, 7e-7, 0.0}};
  p.set_rma_latency(std::move(r));
  const TopologyProfile sub = p.restrict_to({0, 2});
  ASSERT_TRUE(sub.has_rma_latency());
  EXPECT_DOUBLE_EQ(sub.r(0, 1), 6e-7);
  const TopologyProfile sym = p.symmetrized();
  ASSERT_TRUE(sym.has_rma_latency());
  EXPECT_DOUBLE_EQ(sym.r(0, 1), 3e-7);  // mean of 5e-7 and 1e-7
  EXPECT_DOUBLE_EQ(sym.r(1, 0), 3e-7);
}

TEST(Profile, RestrictRoundTripPinsAllFourMatrices) {
  // Regression for the G/R-preserving contract: a restrict followed by a
  // restrict back to the full rank order must reproduce every matrix the
  // profile carries, bit for bit — O, L, G and R alike.
  const TopologyProfile p = generate_profile(quad_cluster(), 16);
  ASSERT_TRUE(p.has_bandwidth());
  ASSERT_TRUE(p.has_rma_latency());
  std::vector<std::size_t> shuffled{3, 0, 7, 12, 5, 15, 1, 9,
                                    14, 2, 11, 6, 13, 4, 10, 8};
  std::vector<std::size_t> inverse(shuffled.size());
  for (std::size_t pos = 0; pos < shuffled.size(); ++pos) {
    inverse[shuffled[pos]] = pos;
  }
  const TopologyProfile round =
      p.restrict_to(shuffled).restrict_to(inverse);
  ASSERT_TRUE(round.has_bandwidth());
  ASSERT_TRUE(round.has_rma_latency());
  EXPECT_EQ(p, round);
  const TopologyProfile sym = p.symmetrized();
  ASSERT_TRUE(sym.has_bandwidth());
  ASSERT_TRUE(sym.has_rma_latency());
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      EXPECT_DOUBLE_EQ(sym.g(i, j), 0.5 * (p.g(i, j) + p.g(j, i)));
      EXPECT_DOUBLE_EQ(sym.r(i, j), 0.5 * (p.r(i, j) + p.r(j, i)));
    }
  }
}

TEST(Profile, LoadRejectsWrongMagic) {
  std::stringstream ss("not-a-profile v1\nP 1\n");
  EXPECT_THROW(TopologyProfile::load(ss), Error);
}

TEST(Profile, LoadRejectsWrongVersion) {
  std::stringstream ss("optibar-profile v9\nP 1\nO\n0\nL\n0\n");
  EXPECT_THROW(TopologyProfile::load(ss), Error);
}

TEST(Profile, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() /
                    "optibar_test_profile.txt";
  const TopologyProfile p =
      generate_profile(quad_cluster(), 16, GenerateOptions{});
  p.save_file(path.string());
  const TopologyProfile q = TopologyProfile::load_file(path.string());
  EXPECT_EQ(p, q);
  std::remove(path.string().c_str());
}

TEST(Profile, LoadMissingFileThrows) {
  EXPECT_THROW(TopologyProfile::load_file("/nonexistent/dir/profile.txt"),
               Error);
}

TEST(Profile, GeneratedClusterProfileRoundTripsThroughDisk) {
  // End-to-end: a full 64-rank machine profile survives serialisation
  // bit-for-bit, which is what makes Figure 1's decoupling valid.
  const TopologyProfile p =
      generate_profile(quad_cluster(), 64, GenerateOptions{0.2, 11});
  std::stringstream ss;
  p.save(ss);
  EXPECT_EQ(TopologyProfile::load(ss), p);
}

}  // namespace
}  // namespace optibar
