// Tests for asymmetric-link support — the "trivial extension" of
// Section IV-A, carried through generation, prediction, simulation,
// clustering and tuning.
#include <gtest/gtest.h>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "core/tuner.hpp"
#include "netsim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

/// Two ranks with a grossly duplex-imbalanced link: 0 -> 1 is fast,
/// 1 -> 0 is slow.
TopologyProfile imbalanced_pair(double fast, double slow) {
  Matrix<double> o(2, 2, 0.0);
  o(0, 0) = o(1, 1) = 1e-6;
  o(0, 1) = fast;
  o(1, 0) = slow;
  Matrix<double> l(2, 2, 0.0);
  l(0, 1) = fast / 10;
  l(1, 0) = slow / 10;
  return TopologyProfile(std::move(o), std::move(l));
}

TEST(Asymmetric, GenerateProducesDirectedEntries) {
  const MachineSpec m = quad_cluster(2);
  GenerateOptions options;
  options.asymmetry = 0.3;
  options.seed = 11;
  const TopologyProfile p = generate_profile(m, 16, options);
  EXPECT_FALSE(p.is_symmetric());
  // Directed deviation bounded by the amplitude band around the tier.
  const TopologyProfile base = generate_profile(m, 16);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      if (i == j) {
        continue;
      }
      const double ratio = p.o(i, j) / base.o(i, j);
      EXPECT_GE(ratio, 0.7 - 1e-12);
      EXPECT_LE(ratio, 1.3 + 1e-12);
    }
  }
}

TEST(Asymmetric, GenerateRejectsOutOfRangeAmplitude) {
  GenerateOptions options;
  options.asymmetry = 1.0;
  EXPECT_THROW(generate_profile(quad_cluster(), 8, options), Error);
}

TEST(Asymmetric, PredictorUsesDirectedCosts) {
  const TopologyProfile p = imbalanced_pair(1e-6, 1e-4);
  // Signal along the fast direction.
  Schedule fast(2);
  StageMatrix mf(2, 2, 0);
  mf(0, 1) = 1;
  fast.append_stage(std::move(mf));
  // Signal along the slow direction.
  Schedule slow(2);
  StageMatrix ms(2, 2, 0);
  ms(1, 0) = 1;
  slow.append_stage(std::move(ms));
  EXPECT_LT(predicted_time(fast, p), predicted_time(slow, p) / 50.0);
}

TEST(Asymmetric, NetsimUsesDirectedCosts) {
  const TopologyProfile p = imbalanced_pair(1e-6, 1e-4);
  Schedule fast(2);
  StageMatrix mf(2, 2, 0);
  mf(0, 1) = 1;
  fast.append_stage(std::move(mf));
  Schedule slow(2);
  StageMatrix ms(2, 2, 0);
  ms(1, 0) = 1;
  slow.append_stage(std::move(ms));
  EXPECT_LT(simulate(fast, p).completion_time(),
            simulate(slow, p).completion_time() / 50.0);
}

TEST(Asymmetric, LinearBarrierCostDependsOnRootDirection) {
  // With 1 -> 0 slow, a linear barrier rooted at 0 pays the slow
  // direction on arrival; the symmetric model could not see this.
  const TopologyProfile p = imbalanced_pair(1e-6, 1e-4);
  const Schedule barrier = linear_barrier(2);
  const Prediction pred = predict(barrier, p);
  // Arrival (1 -> 0) dominates: stage 0 increment >> stage 1 increment.
  ASSERT_EQ(pred.stage_increment.size(), 2u);
  EXPECT_GT(pred.stage_increment[0], 10 * pred.stage_increment[1]);
}

TEST(Asymmetric, TunerAcceptsAsymmetricProfiles) {
  const MachineSpec m = quad_cluster();
  GenerateOptions options;
  options.asymmetry = 0.2;
  options.heterogeneity = 0.1;
  const TopologyProfile p =
      generate_profile(m, round_robin_mapping(m, 40), options);
  ASSERT_FALSE(p.is_symmetric());
  const TuneResult tuned = tune_barrier(p);
  EXPECT_TRUE(tuned.schedule().is_barrier());
  // Decisions were made on the symmetrized metric; pricing the result
  // on the *directed* profile still beats the baseline.
  EXPECT_LT(predicted_time(tuned.schedule(), p),
            predicted_time(tree_barrier(40), p));
}

TEST(Asymmetric, ClusteringStillFindsNodesUnderMildAsymmetry) {
  const MachineSpec m = quad_cluster();
  GenerateOptions options;
  options.asymmetry = 0.15;
  const TopologyProfile p =
      generate_profile(m, block_mapping(m, 32), options);
  const TuneResult tuned = tune_barrier(p);
  EXPECT_EQ(tuned.cluster_tree().children.size(), 4u);
}

TEST(Asymmetric, DeterministicInSeed) {
  const MachineSpec m = hex_cluster(2);
  GenerateOptions options;
  options.asymmetry = 0.25;
  options.seed = 99;
  EXPECT_EQ(generate_profile(m, 20, options), generate_profile(m, 20, options));
}

}  // namespace
}  // namespace optibar
