// Tests for the hierarchical barrier composition (Section VII-B):
// validity across machines/mappings/sizes, merge-early stage alignment,
// the dissemination-at-root departure exception, and competitiveness
// against the classic algorithms.
#include "core/composer.hpp"

#include <gtest/gtest.h>

#include <set>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "core/cluster_tree.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

ComposedBarrier compose_for(const MachineSpec& machine, std::size_t ranks,
                            bool round_robin = false,
                            const ComposeOptions& options = {}) {
  const Mapping mapping = round_robin ? round_robin_mapping(machine, ranks)
                                      : block_mapping(machine, ranks);
  const TopologyProfile profile =
      generate_profile(machine, mapping, GenerateOptions{});
  const ClusterNode tree = build_cluster_tree(profile);
  return compose_barrier(profile, tree, options);
}

TEST(Composer, TrivialSingleRank) {
  const MachineSpec m = quad_cluster(1);
  const ComposedBarrier b = compose_for(m, 1);
  EXPECT_EQ(b.schedule.stage_count(), 0u);
  EXPECT_TRUE(b.schedule.is_barrier());
}

class ComposerValidity
    : public ::testing::TestWithParam<std::tuple<std::size_t, bool>> {};

TEST_P(ComposerValidity, HybridIsAlwaysABarrierOnQuadCluster) {
  const auto [p, rr] = GetParam();
  const ComposedBarrier b = compose_for(quad_cluster(), p, rr);
  EXPECT_TRUE(b.schedule.is_barrier()) << "P=" << p << " rr=" << rr;
  EXPECT_EQ(b.schedule.ranks(), p);
  EXPECT_EQ(b.awaited_stages.size(), b.schedule.stage_count());
}

TEST_P(ComposerValidity, HybridIsAlwaysABarrierOnHexCluster) {
  const auto [p, rr] = GetParam();
  if (p > hex_cluster().total_cores()) {
    GTEST_SKIP();
  }
  const ComposedBarrier b = compose_for(hex_cluster(), p, rr);
  EXPECT_TRUE(b.schedule.is_barrier()) << "P=" << p << " rr=" << rr;
}

INSTANTIATE_TEST_SUITE_P(
    RankSweep, ComposerValidity,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 8, 9, 12, 16, 22, 24, 31,
                                         32, 40, 48, 57, 64),
                       ::testing::Bool()));

TEST(Composer, RecordsOneChoicePerTreeLevelDecision) {
  // 22 procs round-robin on 3 nodes (Figure 10): 3 leaf decisions + 1
  // root decision.
  const MachineSpec m = quad_cluster();
  const ComposedBarrier b = compose_for(m, 22, /*round_robin=*/true);
  ASSERT_EQ(b.choices.size(), 4u);
  EXPECT_EQ(b.choices.front().depth, 0u);
  EXPECT_EQ(b.choices.front().participants.size(), 3u);  // 3 node reps
  for (std::size_t i = 1; i < b.choices.size(); ++i) {
    EXPECT_EQ(b.choices[i].depth, 1u);
  }
}

TEST(Composer, RootSelfCompletingOmitsRootDeparture) {
  // Force dissemination as the only candidate: the root block needs no
  // departure, so stage count is (child arrival) + (root dissemination)
  // + (child departure) — strictly fewer than 2x the full arrival.
  ComposeOptions only_diss;
  only_diss.algorithms = {paper_algorithms()[1]};
  const MachineSpec m = quad_cluster();
  const ComposedBarrier b =
      compose_for(m, 32, /*round_robin=*/false, only_diss);
  EXPECT_TRUE(b.root_self_completing);
  EXPECT_EQ(b.root_algorithm, "dissemination");
  EXPECT_TRUE(b.schedule.is_barrier());
  EXPECT_LT(b.schedule.stage_count(), 2 * b.arrival_stages);
}

TEST(Composer, NonSelfCompletingRootMirrorsArrival) {
  ComposeOptions only_tree;
  only_tree.algorithms = {paper_algorithms()[2]};
  const MachineSpec m = quad_cluster();
  const ComposedBarrier b =
      compose_for(m, 32, /*round_robin=*/false, only_tree);
  EXPECT_FALSE(b.root_self_completing);
  // Arrival and departure mirror each other stage for stage.
  EXPECT_EQ(b.schedule.stage_count(), 2 * b.arrival_stages);
  for (std::size_t s = 0; s < b.arrival_stages; ++s) {
    EXPECT_EQ(b.schedule.stage(s),
              b.schedule.stage(b.schedule.stage_count() - 1 - s).transposed());
  }
}

TEST(Composer, AwaitedFlagsMarkExactlyDepartureStages) {
  const MachineSpec m = quad_cluster();
  const ComposedBarrier b = compose_for(m, 24);
  for (std::size_t s = 0; s < b.awaited_stages.size(); ++s) {
    EXPECT_EQ(b.awaited_stages[s], s >= b.arrival_stages) << "stage " << s;
  }
}

TEST(Composer, MergeEarlyPutsShortLocalPhasesInStageZero) {
  // Whatever algorithms the leaves choose, every leaf's first arrival
  // signals appear in stage 0 ("merging shorter sequences with longer
  // ones as early as possible").
  const MachineSpec m = quad_cluster();
  const ComposedBarrier b = compose_for(m, 24, /*round_robin=*/true);
  const StageMatrix& s0 = b.schedule.stage(0);
  // Each node cluster contributes at least one stage-0 signal.
  std::set<std::size_t> nodes_signalling;
  const Mapping mapping = round_robin_mapping(m, 24);
  for (std::size_t i = 0; i < 24; ++i) {
    for (std::size_t j = 0; j < 24; ++j) {
      if (s0(i, j)) {
        nodes_signalling.insert(m.location(mapping.core_of(i)).node);
      }
    }
  }
  EXPECT_EQ(nodes_signalling.size(), 3u);
}

TEST(Composer, NoEmptyStagesSurviveCompaction) {
  const MachineSpec m = hex_cluster();
  const ComposedBarrier b = compose_for(m, 60);
  for (std::size_t s = 0; s < b.schedule.stage_count(); ++s) {
    EXPECT_FALSE(b.schedule.stage(s).all_zero()) << "stage " << s;
  }
}

TEST(Composer, GreedyChoosesCheapestScoredAlgorithm) {
  // On a two-rank profile all hierarchical algorithms coincide; on a
  // profile where linear's single fan-in is cheapest, linear must win
  // the leaf decision.
  const MachineSpec m = quad_cluster(1);
  const TopologyProfile profile = generate_profile(m, 8);
  const ClusterNode tree = build_cluster_tree(profile);
  const ComposedBarrier b = compose_barrier(profile, tree);
  ASSERT_FALSE(b.choices.empty());
  double best = b.choices[0].scored_cost;
  // Verify against a manual evaluation of all three candidates.
  for (const ComponentAlgorithm& algo : paper_algorithms()) {
    const Schedule arrival = algo.arrival(8);
    const double cost = predicted_time(arrival, profile);
    const double score = algo.self_completing ? cost : 2 * cost;
    EXPECT_GE(score + 1e-18, best);
  }
}

TEST(Composer, HybridNeverLosesToClassicAlgorithmsByPrediction) {
  // The greedy construction considers the classic algorithms as special
  // cases at every level, so its predicted cost must not exceed the
  // best classic algorithm by more than the hierarchy overhead; in
  // practice it should win at multi-node scale. Check P where locality
  // matters.
  const MachineSpec m = quad_cluster();
  for (std::size_t p : {16u, 32u, 64u}) {
    const Mapping mapping = round_robin_mapping(m, p);
    const TopologyProfile profile =
        generate_profile(m, mapping, GenerateOptions{});
    const ClusterNode tree = build_cluster_tree(profile);
    const ComposedBarrier hybrid = compose_barrier(profile, tree);
    PredictOptions opts;
    opts.awaited_stages = hybrid.awaited_stages;
    const double hybrid_cost =
        predicted_time(hybrid.schedule, profile, opts);
    const double tree_cost = predicted_time(tree_barrier(p), profile);
    EXPECT_LT(hybrid_cost, tree_cost) << "P=" << p;
  }
}

TEST(Composer, AdaptsToSkewedTopology) {
  // On the pathological machine (cross-socket slower than network) the
  // composition must still produce a valid and competitive barrier,
  // without any machine-specific logic.
  const MachineSpec m = skewed_cluster();
  const std::size_t p = 32;
  const TopologyProfile profile =
      generate_profile(m, block_mapping(m, p), GenerateOptions{});
  const ClusterNode tree = build_cluster_tree(profile);
  const ComposedBarrier hybrid = compose_barrier(profile, tree);
  EXPECT_TRUE(hybrid.schedule.is_barrier());
  PredictOptions opts;
  opts.awaited_stages = hybrid.awaited_stages;
  EXPECT_LE(predicted_time(hybrid.schedule, profile, opts),
            predicted_time(tree_barrier(p), profile));
}

TEST(Composer, ExtendedAlgorithmSetIsAccepted) {
  ComposeOptions extended;
  extended.algorithms = extended_algorithms();
  const ComposedBarrier b =
      compose_for(quad_cluster(), 40, /*round_robin=*/true, extended);
  EXPECT_TRUE(b.schedule.is_barrier());
}

TEST(Composer, DescribeListsChoices) {
  const ComposedBarrier b = compose_for(quad_cluster(), 22, true);
  const std::string text = b.describe();
  EXPECT_NE(text.find("hybrid barrier"), std::string::npos);
  EXPECT_NE(text.find("depth 0"), std::string::npos);
  EXPECT_NE(text.find("depth 1"), std::string::npos);
}

TEST(Composer, RootAlgorithmSetCanBeRestricted) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile = generate_profile(m, 32);
  const ClusterNode tree = build_cluster_tree(profile);
  ComposeOptions options;
  options.root_algorithms = {paper_algorithms()[2]};  // force tree root
  const ComposedBarrier b = compose_barrier(profile, tree, options);
  EXPECT_EQ(b.root_algorithm, "tree");
  EXPECT_TRUE(b.schedule.is_barrier());
  // Leaves were still free to choose from the full set.
  for (const LevelChoice& choice : b.choices) {
    if (choice.depth > 0) {
      EXPECT_NE(choice.algorithm, "");
    }
  }
}

TEST(Composer, SearchedCompositionNeverLosesToGreedy) {
  const MachineSpec m = quad_cluster();
  for (std::size_t p : {16u, 22u, 32u, 40u, 64u}) {
    const Mapping mapping = round_robin_mapping(m, p);
    const TopologyProfile profile =
        generate_profile(m, mapping, GenerateOptions{});
    const ClusterNode tree = build_cluster_tree(profile);
    const ComposedBarrier greedy = compose_barrier(profile, tree);
    const ComposedBarrier searched = compose_barrier_searched(profile, tree);
    EXPECT_TRUE(searched.schedule.is_barrier()) << "P=" << p;
    PredictOptions greedy_opts;
    greedy_opts.awaited_stages = greedy.awaited_stages;
    PredictOptions searched_opts;
    searched_opts.awaited_stages = searched.awaited_stages;
    EXPECT_LE(predicted_time(searched.schedule, profile, searched_opts),
              predicted_time(greedy.schedule, profile, greedy_opts) + 1e-18)
        << "P=" << p;
  }
}

TEST(Composer, SearchedCompositionOnSkewedMachine) {
  // Where greedy's x2 approximation is most wrong, the search can only
  // help; validity must hold throughout.
  const MachineSpec m = skewed_cluster();
  const TopologyProfile profile = generate_profile(m, 32);
  const ClusterNode tree = build_cluster_tree(profile);
  ComposeOptions options;
  options.algorithms = extended_algorithms();
  const ComposedBarrier searched =
      compose_barrier_searched(profile, tree, options);
  EXPECT_TRUE(searched.schedule.is_barrier());
}

TEST(Composer, ThreeLevelHierarchyComposesRecursively) {
  // A metric with nested gaps (pairs of 1us, quads of 10us, everything
  // else 100us) yields a 3-level cluster tree; the composition must
  // recurse through all levels and stay valid, with one choice per tree
  // decision (4 pairs + 2 quads + 1 root = 7).
  const std::size_t p = 8;
  Matrix<double> o(p, p, 0.0);
  Matrix<double> l(p, p, 0.0);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      if (i == j) {
        o(i, j) = 1e-7;
      } else if (i / 2 == j / 2) {
        o(i, j) = 1e-6;
        l(i, j) = 1e-7;
      } else if (i / 4 == j / 4) {
        o(i, j) = 1e-5;
        l(i, j) = 1e-6;
      } else {
        o(i, j) = 1e-4;
        l(i, j) = 1e-5;
      }
    }
  }
  const TopologyProfile profile(std::move(o), std::move(l));
  const ClusterNode tree = build_cluster_tree(profile);
  ASSERT_EQ(tree.height(), 2u);
  const ComposedBarrier hybrid = compose_barrier(profile, tree);
  EXPECT_TRUE(hybrid.schedule.is_barrier());
  EXPECT_EQ(hybrid.choices.size(), 7u);
  // Depths 0, 1, 2 all appear among the decisions.
  std::set<std::size_t> depths;
  for (const LevelChoice& choice : hybrid.choices) {
    depths.insert(choice.depth);
  }
  EXPECT_EQ(depths, (std::set<std::size_t>{0, 1, 2}));
  // And the hierarchy pays: cheaper than any flat classic algorithm.
  PredictOptions opts;
  opts.awaited_stages = hybrid.awaited_stages;
  const double hybrid_cost = predicted_time(hybrid.schedule, profile, opts);
  EXPECT_LT(hybrid_cost, predicted_time(tree_barrier(p), profile));
  EXPECT_LT(hybrid_cost, predicted_time(dissemination_barrier(p), profile));
}

TEST(Composer, RejectsMismatchedTree) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile = generate_profile(m, 8);
  ClusterNode wrong;
  wrong.ranks = {0, 1, 2};
  EXPECT_THROW(compose_barrier(profile, wrong), Error);
}

TEST(Composer, RejectsEmptyAlgorithmSet) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile = generate_profile(m, 16);
  const ClusterNode tree = build_cluster_tree(profile);
  ComposeOptions empty;
  empty.algorithms = {};
  EXPECT_THROW(compose_barrier(profile, tree, empty), Error);
}

}  // namespace
}  // namespace optibar
