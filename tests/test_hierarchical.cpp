// The hierarchical tuner: parity with the dense pipeline on flat
// machines (bit-identical fallback), structural validity of the
// assembled BlockedSchedule, bit-identical compiled prediction and
// netsim behaviour between the blocked and densified forms, and cost
// parity with the dense tuner on clustered machines.
#include "core/hierarchical.hpp"

#include <gtest/gtest.h>

#include "barrier/compiled_schedule.hpp"
#include "barrier/validate.hpp"
#include "netsim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "util/matrix.hpp"

namespace optibar {
namespace {

TopologyProfile flat_profile(std::size_t p) {
  Matrix<double> o(p, p, 1.0e-5);
  Matrix<double> l(p, p, 1.0e-6);
  for (std::size_t i = 0; i < p; ++i) {
    o(i, i) = 1.0e-6;
    l(i, i) = 0.0;
  }
  return TopologyProfile(std::move(o), std::move(l));
}

TEST(Hierarchical, FlatMachineFallsBackBitIdentically) {
  const TopologyProfile profile = flat_profile(12);
  const HierarchicalTuneResult hier = tune_hierarchical(profile);
  ASSERT_TRUE(hier.used_dense_fallback);
  EXPECT_TRUE(hier.decomposition.single_cluster());
  ASSERT_TRUE(hier.dense.has_value());

  const TuneResult dense = tune_barrier(profile);
  EXPECT_EQ(hier.dense->schedule(), dense.schedule());
  EXPECT_EQ(hier.dense->barrier().awaited_stages,
            dense.barrier().awaited_stages);
  EXPECT_EQ(hier.predicted_cost, dense.predicted_cost());
}

TEST(Hierarchical, NonBlockMachineFallsBackToDense) {
  // skewed_cluster's largest O gap sits at the socket boundary, so the
  // detector cuts below node level and the inter-cluster blocks are not
  // constant; from_dense must refuse and the dense pipeline runs.
  const TopologyProfile profile = generate_profile(skewed_cluster(4), 32);
  const HierarchicalTuneResult hier = tune_hierarchical(profile);
  ASSERT_TRUE(hier.used_dense_fallback);
  EXPECT_FALSE(hier.decomposition.single_cluster());
  EXPECT_NE(hier.fallback_reason.find("not block-structured"),
            std::string::npos);
  ASSERT_TRUE(hier.dense.has_value());
  EXPECT_EQ(hier.dense->schedule(), tune_barrier(profile).schedule());
}

TEST(Hierarchical, QuadPresetTunesToValidBlockedBarrier) {
  const TopologyProfile profile = generate_profile(quad_cluster(4), 32);
  const HierarchicalTuneResult hier = tune_hierarchical(profile);
  ASSERT_FALSE(hier.used_dense_fallback);
  EXPECT_EQ(hier.decomposition.cluster_count(), 4u);
  EXPECT_EQ(hier.decomposition.num_classes, 1u);
  ASSERT_EQ(hier.class_algorithms.size(), 1u);
  EXPECT_FALSE(hier.leader_algorithm.empty());
  EXPECT_GT(hier.predicted_cost, 0.0);

  // The densified plan must pass the same static proof as any stored
  // schedule (the tuner also asserts this internally at small P).
  const ValidationResult validation = validate_schedule(StoredSchedule{
      hier.blocked.to_dense(), hier.blocked.awaited_stages()});
  EXPECT_TRUE(validation.ok()) << validation.describe();

  // Every rank signals at least once somewhere in the plan.
  EXPECT_GE(hier.blocked.total_signals(), 32u);
  EXPECT_FALSE(hier.describe().empty());
}

TEST(Hierarchical, BlockedPredictionMatchesDensifiedPrediction) {
  const TopologyProfile profile = generate_profile(hex_cluster(3), 36);
  const HierarchicalTuneResult hier = tune_hierarchical(profile);
  ASSERT_FALSE(hier.used_dense_fallback);

  CompiledSchedule blocked_compiled;
  compile_blocked(hier.blocked, hier.tiled, blocked_compiled);

  const TopologyProfile symmetric = profile.symmetrized();
  const CompiledSchedule dense_compiled(hier.blocked.to_dense(), symmetric);

  PredictOptions options;
  options.awaited_stages = hier.blocked.awaited_stages();
  PredictWorkspace workspace;
  const double blocked_cost =
      predicted_time(blocked_compiled, options, workspace);
  const double dense_cost = predicted_time(dense_compiled, options, workspace);
  EXPECT_EQ(blocked_cost, dense_cost);
  EXPECT_EQ(hier.predicted_cost, blocked_cost);
}

TEST(Hierarchical, NetsimAgreesBetweenTiledAndDenseCostSources) {
  const TopologyProfile profile = generate_profile(quad_cluster(4), 32);
  const HierarchicalTuneResult hier = tune_hierarchical(profile);
  ASSERT_FALSE(hier.used_dense_fallback);

  CompiledSchedule compiled;
  compile_blocked(hier.blocked, hier.tiled, compiled);

  SimOptions options;
  options.jitter = 0.02;
  options.seed = 17;
  SimWorkspace workspace;
  SimResult tiled_result;
  simulate_compiled_into(compiled, hier.tiled, options, workspace,
                         tiled_result);
  ASSERT_FALSE(tiled_result.deadlocked);

  SimResult dense_result;
  simulate_compiled_into(compiled, profile.symmetrized(), options, workspace,
                         dense_result);
  ASSERT_FALSE(dense_result.deadlocked);
  // Same compiled schedule, bit-identical cost accessors on an exact
  // block machine, same seed: the event streams coincide exactly.
  EXPECT_EQ(tiled_result.barrier_time(), dense_result.barrier_time());
  EXPECT_EQ(tiled_result.completion, dense_result.completion);
}

TEST(Hierarchical, CostStaysCloseToDenseTunerOnClusteredMachine) {
  const TopologyProfile profile = generate_profile(quad_cluster(4), 32);
  const HierarchicalTuneResult hier = tune_hierarchical(profile);
  ASSERT_FALSE(hier.used_dense_fallback);
  const TuneResult dense = tune_barrier(profile);
  // The hierarchical plan restricts structure (one sub-barrier per
  // class, leaders-only inter-cluster stage), so it may not beat the
  // dense tuner — but on a machine that IS hierarchical it must land in
  // the same cost regime.
  EXPECT_LE(hier.predicted_cost, dense.predicted_cost() * 1.5);
  EXPECT_GE(hier.predicted_cost, dense.predicted_cost() * 0.5);
}

TEST(Hierarchical, TiledEntryMatchesDenseEntry) {
  const TopologyProfile profile = generate_profile(hex_cluster(3), 36);
  const HierarchicalTuneResult from_dense = tune_hierarchical(profile);
  ASSERT_FALSE(from_dense.used_dense_fallback);

  const HierarchicalTuneResult from_tiled =
      tune_hierarchical(from_dense.tiled);
  ASSERT_FALSE(from_tiled.used_dense_fallback);
  EXPECT_EQ(from_tiled.predicted_cost, from_dense.predicted_cost);
  EXPECT_EQ(from_tiled.blocked.to_dense(), from_dense.blocked.to_dense());
  EXPECT_EQ(from_tiled.blocked.awaited_stages(),
            from_dense.blocked.awaited_stages());
}

TEST(Hierarchical, SingleClusterTiledProfileFallsBack) {
  const TopologyProfile profile = generate_profile(quad_cluster(4), 32);
  const HierarchicalTuneResult hier = tune_hierarchical(profile);
  ASSERT_FALSE(hier.used_dense_fallback);
  // Restrict the tiled profile to one cluster's ranks: a single-cluster
  // tiled profile densifies and runs the flat pipeline.
  const TopologyProfile one_cluster =
      hier.tiled.restrict_to(hier.tiled.clusters()[0]);
  const HierarchicalTuneResult sub = tune_hierarchical(one_cluster);
  EXPECT_TRUE(sub.used_dense_fallback);
  ASSERT_TRUE(sub.dense.has_value());
}

}  // namespace
}  // namespace optibar
