// Tests for schedule analysis: link-tier usage, stage structure, and
// critical-path decomposition — the quantitative backing for Section
// VI-A's "reduced use of the slower links" observations.
#include "barrier/analysis.hpp"

#include <gtest/gtest.h>

#include "barrier/algorithms.hpp"
#include "core/tuner.hpp"
#include "topology/generate.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

TEST(LinkUsage, CountsSignalsByTier) {
  const MachineSpec m = quad_cluster(2);
  const Mapping mapping = block_mapping(m, 16);
  // Linear barrier over 16 ranks: each off-root rank signals rank 0 and
  // back. Rank 0's peers: 1 shared-cache (rank 1), 2 same-chip (2,3),
  // 4 cross-socket (4-7), 8 inter-node (8-15); twice for the two phases.
  const LinkUsage usage = link_usage(linear_barrier(16), m, mapping);
  EXPECT_EQ(usage.shared_cache, 2u);
  EXPECT_EQ(usage.same_chip, 4u);
  EXPECT_EQ(usage.cross_socket, 8u);
  EXPECT_EQ(usage.inter_node, 16u);
  EXPECT_EQ(usage.total(), 30u);
}

TEST(LinkUsage, TreeUsesFewerSlowLinksThanDissemination) {
  // The Section VI-A claim, quantified: in the 4-node region the tree
  // barrier crosses nodes less than dissemination does.
  const MachineSpec m = quad_cluster();
  for (std::size_t p : {26u, 28u, 30u}) {
    const Mapping mapping = round_robin_mapping(m, p);
    const LinkUsage tree = link_usage(tree_barrier(p), m, mapping);
    const LinkUsage diss = link_usage(dissemination_barrier(p), m, mapping);
    EXPECT_LT(tree.inter_node, diss.inter_node) << "P=" << p;
  }
}

TEST(LinkUsage, HybridUsesFewerSlowLinksThanTree) {
  const MachineSpec m = quad_cluster();
  const std::size_t p = 40;
  const Mapping mapping = round_robin_mapping(m, p);
  const TopologyProfile profile = generate_profile(m, mapping);
  const TuneResult tuned = tune_barrier(profile);
  const LinkUsage hybrid = link_usage(tuned.schedule(), m, mapping);
  const LinkUsage tree = link_usage(tree_barrier(p), m, mapping);
  EXPECT_LT(hybrid.inter_node, tree.inter_node);
}

TEST(LinkUsage, MappingMismatchThrows) {
  const MachineSpec m = quad_cluster();
  EXPECT_THROW(link_usage(tree_barrier(8), m, block_mapping(m, 4)), Error);
}

TEST(LinkUsage, AtRejectsSelf) {
  LinkUsage usage;
  EXPECT_THROW(usage.at(LinkLevel::kSelf), Error);
  usage.at(LinkLevel::kInterNode) = 3;
  EXPECT_EQ(usage.inter_node, 3u);
}

TEST(StageProfiles, StructureOfLinearBarrier) {
  const auto stages = stage_profiles(linear_barrier(8));
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].signals, 7u);
  EXPECT_EQ(stages[0].max_fan_in, 7u);   // root gathers everyone
  EXPECT_EQ(stages[0].max_fan_out, 1u);
  EXPECT_EQ(stages[1].max_fan_out, 7u);  // root broadcasts
  EXPECT_EQ(stages[0].active_ranks, 8u);
}

TEST(StageProfiles, DisseminationIsFullyActive) {
  const auto stages = stage_profiles(dissemination_barrier(16));
  for (const StageProfile& stage : stages) {
    EXPECT_EQ(stage.signals, 16u);
    EXPECT_EQ(stage.max_fan_in, 1u);
    EXPECT_EQ(stage.max_fan_out, 1u);
    EXPECT_EQ(stage.active_ranks, 16u);
  }
}

TEST(StageProfiles, TierAwareVariantCountsInterNode) {
  const MachineSpec m = quad_cluster();
  const std::size_t p = 16;  // 2 nodes, block mapping
  const Mapping mapping = block_mapping(m, p);
  const auto stages = stage_profiles(tree_barrier(p), m, mapping);
  // Arrival stages 0..2 are node-local; stage 3 (8 -> 0) crosses nodes.
  EXPECT_EQ(stages[0].inter_node_signals, 0u);
  EXPECT_EQ(stages[1].inter_node_signals, 0u);
  EXPECT_EQ(stages[2].inter_node_signals, 0u);
  EXPECT_EQ(stages[3].inter_node_signals, 1u);
}

TEST(Breakdown, TiersSumToCriticalPath) {
  const MachineSpec m = quad_cluster();
  const std::size_t p = 32;
  const Mapping mapping = round_robin_mapping(m, p);
  const TopologyProfile profile = generate_profile(m, mapping);
  for (const Schedule& s :
       {linear_barrier(p), dissemination_barrier(p), tree_barrier(p)}) {
    const CriticalPathBreakdown breakdown =
        critical_path_breakdown(s, profile, m, mapping);
    EXPECT_NEAR(breakdown.total, predicted_time(s, profile), 1e-12);
    EXPECT_GE(breakdown.inter_node, 0.0);
  }
}

TEST(Breakdown, InterNodeDominatesAtClusterScale) {
  const MachineSpec m = quad_cluster();
  const std::size_t p = 48;
  const Mapping mapping = round_robin_mapping(m, p);
  const TopologyProfile profile = generate_profile(m, mapping);
  const CriticalPathBreakdown breakdown =
      critical_path_breakdown(tree_barrier(p), profile, m, mapping);
  EXPECT_GT(breakdown.inter_node, 0.9 * breakdown.total);
}

TEST(Breakdown, SingleNodeHasNoInterNodeTime) {
  const MachineSpec m = quad_cluster(1);
  const Mapping mapping = block_mapping(m, 8);
  const TopologyProfile profile = generate_profile(m, mapping);
  const CriticalPathBreakdown breakdown =
      critical_path_breakdown(tree_barrier(8), profile, m, mapping);
  EXPECT_DOUBLE_EQ(breakdown.inter_node, 0.0);
  EXPECT_GT(breakdown.total, 0.0);
}

TEST(Breakdown, RespectsAwaitedStages) {
  const MachineSpec m = quad_cluster();
  const std::size_t p = 24;
  const Mapping mapping = round_robin_mapping(m, p);
  const TopologyProfile profile = generate_profile(m, mapping);
  const TuneResult tuned = tune_barrier(profile);
  PredictOptions opts;
  opts.awaited_stages = tuned.barrier().awaited_stages;
  const CriticalPathBreakdown breakdown = critical_path_breakdown(
      tuned.schedule(), tuned.profile(), m, mapping, opts);
  EXPECT_NEAR(breakdown.total, tuned.predicted_cost(), 1e-12);
}

TEST(LinkUsage, IrregularMachineVariant) {
  LatencyTiers tiers;
  tiers.self_overhead = 1e-6;
  tiers.shared_cache = {2e-6, 1e-7};
  tiers.same_chip = {2.5e-6, 1.5e-7};
  tiers.cross_socket = {4e-6, 6e-7};
  tiers.inter_node = {2.5e-5, 1.4e-5};
  std::vector<NodeShape> nodes(2);
  nodes[0].sockets = {SocketShape{4, 4}};
  nodes[1].sockets = {SocketShape{4, 4}};
  const CustomMachine machine("two-nodes", std::move(nodes), tiers);
  // Linear barrier over all 8 cores: rank 0's peers 1-3 local,
  // 4-7 remote, both directions.
  const LinkUsage usage = link_usage(linear_barrier(8), machine);
  EXPECT_EQ(usage.inter_node, 8u);
  EXPECT_EQ(usage.total(), 14u);
  const std::string text = describe_usage(linear_barrier(8), machine);
  EXPECT_NE(text.find("inter-node 8"), std::string::npos);
  EXPECT_NE(text.find("stage 0"), std::string::npos);
  // More ranks than cores is rejected.
  EXPECT_THROW(link_usage(linear_barrier(9), machine), Error);
}

TEST(DescribeUsage, MentionsTiersAndStages) {
  const MachineSpec m = quad_cluster(2);
  const Mapping mapping = block_mapping(m, 16);
  const std::string text = describe_usage(tree_barrier(16), m, mapping);
  EXPECT_NE(text.find("inter-node"), std::string::npos);
  EXPECT_NE(text.find("stage 0"), std::string::npos);
  EXPECT_NE(text.find("fan-out"), std::string::npos);
}

}  // namespace
}  // namespace optibar
