// End-to-end tests of the optibar CLI, driven in-process: the complete
// profile -> tune -> predict/simulate/analyze workflow through the same
// entry point the binary uses.
#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>

#include "util/error.hpp"

namespace optibar::cli {
namespace {

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult run(const std::vector<std::string>& arguments) {
  std::ostringstream out;
  std::ostringstream err;
  CliResult result;
  result.code = run_cli(arguments, out, err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

class CliWorkflow : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("optibar_cli_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    profile_path_ = (dir_ / "profile.txt").string();
    schedule_path_ = (dir_ / "schedule.txt").string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string profile_path_;
  std::string schedule_path_;
};

TEST(Cli, NoArgumentsPrintsUsageAndFails) {
  const CliResult result = run({});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.out.find("commands:"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  const CliResult result = run({"help"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("tune"), std::string::npos);
}

TEST(Cli, UnknownCommandFailsWithUsage) {
  const CliResult result = run({"frobnicate"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("unknown command"), std::string::npos);
}

TEST(Cli, MachinesListsPresets) {
  const CliResult result = run({"machines"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("quad-cluster"), std::string::npos);
  EXPECT_NE(result.out.find("hex-cluster"), std::string::npos);
}

TEST(Cli, MissingRequiredOptionFails) {
  const CliResult result = run({"profile", "--machine", "quad"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--ranks"), std::string::npos);
}

TEST(Cli, UnknownOptionFails) {
  const CliResult result = run({"machines", "--bogus", "1"});
  EXPECT_EQ(result.code, 1);
  EXPECT_NE(result.err.find("--bogus"), std::string::npos);
}

TEST_F(CliWorkflow, ProfileTunePredictSimulateAnalyzeValidate) {
  // profile
  {
    const CliResult result =
        run({"profile", "--machine", "quad", "--ranks", "24", "--out",
             profile_path_});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_TRUE(std::filesystem::exists(profile_path_));
    EXPECT_NE(result.out.find("ground truth"), std::string::npos);
  }
  // tune, saving schedule and code
  const std::string code_path = (dir_ / "barrier.hpp").string();
  {
    const CliResult result =
        run({"tune", "--profile", profile_path_, "--schedule-out",
             schedule_path_, "--code-out", code_path});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("predicted cost"), std::string::npos);
    EXPECT_TRUE(std::filesystem::exists(schedule_path_));
    EXPECT_TRUE(std::filesystem::exists(code_path));
  }
  // predict on the stored schedule
  {
    const CliResult result = run(
        {"predict", "--profile", profile_path_, "--schedule", schedule_path_});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("predicted critical path"), std::string::npos);
  }
  // simulate it
  {
    const CliResult result =
        run({"simulate", "--profile", profile_path_, "--schedule",
             schedule_path_, "--reps", "5"});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("simulated barrier time"), std::string::npos);
  }
  // analyze its link usage
  {
    const CliResult result = run({"analyze", "--schedule", schedule_path_,
                                  "--machine", "quad"});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("inter-node"), std::string::npos);
  }
  // validate it
  {
    const CliResult result = run({"validate", "--schedule", schedule_path_});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("barrier (Eq. 3): yes"), std::string::npos);
  }
}

TEST_F(CliWorkflow, EstimatedProfileWithMedian) {
  const CliResult result =
      run({"profile", "--machine", "quad", "--nodes", "2", "--ranks", "10",
           "--estimate", "--noise", "0.05", "--median", "--reps", "5",
           "--out", profile_path_});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("estimated"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(profile_path_));
}

TEST_F(CliWorkflow, HeatmapRendersBothMatrices) {
  ASSERT_EQ(run({"profile", "--machine", "quad", "--nodes", "1", "--ranks",
                 "8", "--mapping", "block", "--out", profile_path_})
                .code,
            0);
  const CliResult l_map = run({"heatmap", "--profile", profile_path_});
  ASSERT_EQ(l_map.code, 0) << l_map.err;
  EXPECT_NE(l_map.out.find("L matrix heat map"), std::string::npos);
  const CliResult o_map =
      run({"heatmap", "--profile", profile_path_, "--matrix", "O"});
  ASSERT_EQ(o_map.code, 0) << o_map.err;
  EXPECT_NE(o_map.out.find("O matrix heat map"), std::string::npos);
}

TEST_F(CliWorkflow, PredictWithNamedAlgorithm) {
  ASSERT_EQ(run({"profile", "--machine", "hex", "--ranks", "24", "--out",
                 profile_path_})
                .code,
            0);
  for (const char* algo :
       {"linear", "dissemination", "tree", "heap-tree", "kary4-tree",
        "pairwise-exchange", "radix4-dissemination"}) {
    const CliResult result =
        run({"predict", "--profile", profile_path_, "--algorithm", algo});
    EXPECT_EQ(result.code, 0) << algo << ": " << result.err;
  }
  const CliResult bad =
      run({"predict", "--profile", profile_path_, "--algorithm", "nope"});
  EXPECT_EQ(bad.code, 1);
}

TEST_F(CliWorkflow, PredictRequiresExactlyOneSource) {
  ASSERT_EQ(run({"profile", "--machine", "quad", "--ranks", "8", "--out",
                 profile_path_})
                .code,
            0);
  EXPECT_EQ(run({"predict", "--profile", profile_path_}).code, 1);
}

TEST_F(CliWorkflow, CompareShowsAllAlgorithmsAndHybridWins) {
  ASSERT_EQ(run({"profile", "--machine", "quad", "--ranks", "40", "--out",
                 profile_path_})
                .code,
            0);
  const CliResult result =
      run({"compare", "--profile", profile_path_, "--reps", "5"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("linear"), std::string::npos);
  EXPECT_NE(result.out.find("tree (MPI)"), std::string::npos);
  EXPECT_NE(result.out.find("hybrid (tuned)"), std::string::npos);
}

TEST_F(CliWorkflow, ValidateFlagsNonBarrier) {
  // Hand-write a one-way pattern: validate must exit 2.
  const std::string bad_path = (dir_ / "bad.txt").string();
  {
    std::ofstream os(bad_path);
    os << "optibar-schedule v1\nP 2\nstages 1\nawaited 0\nS0\n0 1\n0 0\n";
  }
  const CliResult result = run({"validate", "--schedule", bad_path});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.out.find("barrier (Eq. 3): NO"), std::string::npos);
}

TEST_F(CliWorkflow, ExitCodesDistinguishUsageIoAndStallErrors) {
  ASSERT_EQ(run({"profile", "--machine", "quad", "--ranks", "6", "--out",
                 profile_path_})
                .code,
            0);
  ASSERT_EQ(run({"tune", "--profile", profile_path_, "--schedule-out",
                 schedule_path_})
                .code,
            0);
  // Usage mistakes are exit 1 (unknown option on a valid command).
  EXPECT_EQ(run({"predict", "--profile", profile_path_, "--bogus", "1"}).code,
            1);
  // Missing files are exit 3 — distinguishable from engine errors.
  {
    const CliResult missing =
        run({"predict", "--profile", (dir_ / "absent.txt").string(),
             "--schedule", schedule_path_});
    EXPECT_EQ(missing.code, 3);
    EXPECT_NE(missing.err.find("io error"), std::string::npos);
  }
  // Malformed files are exit 3 too: the parser, not the engine, failed.
  {
    const std::string corrupt_path = (dir_ / "corrupt.txt").string();
    std::ofstream os(corrupt_path);
    os << "optibar-profile v1\nP 4\nO\n1 2 3\n";  // truncated matrix
    os.close();
    const CliResult corrupt = run({"predict", "--profile", corrupt_path,
                                   "--schedule", schedule_path_});
    EXPECT_EQ(corrupt.code, 3);
    EXPECT_NE(corrupt.err.find("io error"), std::string::npos);
  }
  // The usage text documents the contract.
  const CliResult help = run({"help"});
  EXPECT_NE(help.out.find("exit codes"), std::string::npos);
  EXPECT_NE(help.out.find("--faults"), std::string::npos);
}

TEST_F(CliWorkflow, SimulateWithFaultsReportsStallsViaExitCode) {
  ASSERT_EQ(run({"profile", "--machine", "quad", "--ranks", "4", "--out",
                 profile_path_})
                .code,
            0);
  ASSERT_EQ(run({"tune", "--profile", profile_path_, "--schedule-out",
                 schedule_path_})
                .code,
            0);
  // A clean fault plan (zero probability) completes: exit 0.
  {
    const CliResult clean =
        run({"simulate", "--profile", profile_path_, "--schedule",
             schedule_path_, "--faults", "seed=1;drop=*>*@*:0"});
    ASSERT_EQ(clean.code, 0) << clean.err;
    EXPECT_NE(clean.out.find("no stall"), std::string::npos);
    EXPECT_NE(clean.out.find("fault plan:"), std::string::npos);
  }
  // Dropping every signal stalls the run: exit 4 plus a report.
  {
    const CliResult stalled =
        run({"simulate", "--profile", profile_path_, "--schedule",
             schedule_path_, "--faults", "seed=1;drop=*>*@*:1",
             "--deadline-floor-ms", "15", "--retries", "0"});
    EXPECT_EQ(stalled.code, 4);
    EXPECT_NE(stalled.out.find("stall report"), std::string::npos);
    EXPECT_NE(stalled.out.find("lost signal"), std::string::npos);
  }
  // A malformed fault spec is a usage error: exit 1.
  EXPECT_EQ(run({"simulate", "--profile", profile_path_, "--schedule",
                 schedule_path_, "--faults", "bogus=1"})
                .code,
            1);
}

TEST_F(CliWorkflow, TraceExportsCsvAndChrome) {
  ASSERT_EQ(run({"profile", "--machine", "quad", "--nodes", "2", "--ranks",
                 "12", "--out", profile_path_})
                .code,
            0);
  const CliResult csv = run({"trace", "--profile", profile_path_,
                             "--algorithm", "tree"});
  ASSERT_EQ(csv.code, 0) << csv.err;
  EXPECT_EQ(csv.out.find("stage,src,dst"), 0u);
  const CliResult chrome =
      run({"trace", "--profile", profile_path_, "--algorithm", "tree",
           "--format", "chrome"});
  ASSERT_EQ(chrome.code, 0) << chrome.err;
  EXPECT_EQ(chrome.out.front(), '[');
  const CliResult bad = run({"trace", "--profile", profile_path_,
                             "--algorithm", "tree", "--format", "xml"});
  EXPECT_EQ(bad.code, 1);
}

TEST_F(CliWorkflow, MachineFileProfileUniformAndIrregular) {
  const std::string machine_path = (dir_ / "machine.txt").string();
  const char* tiers =
      "tier self   o 1.5e-6\n"
      "tier cache  o 2.0e-6 l 1.2e-7\n"
      "tier chip   o 2.5e-6 l 1.5e-7\n"
      "tier socket o 4.0e-6 l 6.0e-7\n"
      "tier node   o 2.5e-5 l 1.4e-5\n";
  {
    std::ofstream os(machine_path);
    os << "machine \"file rig\"\n" << tiers
       << "shape nodes 4 sockets 2 cores 4 cache 2\n";
  }
  ASSERT_EQ(run({"profile", "--machine-file", machine_path, "--ranks", "24",
                 "--out", profile_path_})
                .code,
            0);
  EXPECT_EQ(run({"compare", "--profile", profile_path_, "--reps", "3"}).code,
            0);
  {
    std::ofstream os(machine_path);
    os << tiers << "node sockets 2 cores 4 cache 2\n"
       << "node sockets 2 cores 6 cache 6\n";
  }
  const CliResult irregular =
      run({"profile", "--machine-file", machine_path, "--ranks", "20",
           "--out", profile_path_});
  ASSERT_EQ(irregular.code, 0) << irregular.err;
  EXPECT_NE(irregular.out.find("irregular"), std::string::npos);
  EXPECT_EQ(run({"tune", "--profile", profile_path_}).code, 0);
  // Both --machine and --machine-file together is an error.
  EXPECT_EQ(run({"profile", "--machine", "quad", "--machine-file",
                 machine_path, "--ranks", "8", "--out", profile_path_})
                .code,
            1);
}

TEST_F(CliWorkflow, WorkloadReportsAndRendersTimeline) {
  ASSERT_EQ(run({"profile", "--machine", "quad", "--nodes", "2", "--ranks",
                 "10", "--out", profile_path_})
                .code,
            0);
  const CliResult result =
      run({"workload", "--profile", profile_path_, "--algorithm",
           "dissemination", "--episodes", "5", "--skew", "1e-4",
           "--timeline"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("mean barrier span"), std::string::npos);
  EXPECT_NE(result.out.find("total synchronization wait"),
            std::string::npos);
  EXPECT_NE(result.out.find("timeline over"), std::string::npos);
}

TEST_F(CliWorkflow, AnalyzeWithMachineFile) {
  const std::string machine_path = (dir_ / "m.txt").string();
  {
    std::ofstream os(machine_path);
    os << "tier self   o 1.5e-6\n"
          "tier cache  o 2.0e-6 l 1.2e-7\n"
          "tier chip   o 2.5e-6 l 1.5e-7\n"
          "tier socket o 4.0e-6 l 6.0e-7\n"
          "tier node   o 2.5e-5 l 1.4e-5\n"
          "node sockets 1 cores 6 cache 6\n"
          "node sockets 1 cores 6 cache 6\n";
  }
  ASSERT_EQ(run({"profile", "--machine-file", machine_path, "--ranks", "12",
                 "--out", profile_path_})
                .code,
            0);
  ASSERT_EQ(run({"tune", "--profile", profile_path_, "--schedule-out",
                 schedule_path_})
                .code,
            0);
  const CliResult result = run({"analyze", "--schedule", schedule_path_,
                                "--machine-file", machine_path});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("inter-node"), std::string::npos);
}

TEST_F(CliWorkflow, TuneWithCustomSparseness) {
  ASSERT_EQ(run({"profile", "--machine", "quad", "--nodes", "1", "--ranks",
                 "8", "--mapping", "block", "--out", profile_path_})
                .code,
            0);
  // At alpha = 0.7 a single quad node splits into its two sockets (the
  // paper's "refine the clustering" knob), visible in the cluster tree.
  const CliResult fine = run({"tune", "--profile", profile_path_,
                              "--sparseness", "0.7"});
  ASSERT_EQ(fine.code, 0) << fine.err;
  EXPECT_NE(fine.out.find("leaf [0 1 2 3]"), std::string::npos);
  const CliResult coarse = run({"tune", "--profile", profile_path_});
  ASSERT_EQ(coarse.code, 0) << coarse.err;
  EXPECT_EQ(coarse.out.find("leaf [0 1 2 3]"), std::string::npos);
}

TEST_F(CliWorkflow, TuneWithOptimizeFlag) {
  ASSERT_EQ(run({"profile", "--machine", "quad", "--ranks", "24", "--out",
                 profile_path_})
                .code,
            0);
  const CliResult result =
      run({"tune", "--profile", profile_path_, "--optimize",
           "--schedule-out", schedule_path_});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("post-optimization"), std::string::npos);
  EXPECT_EQ(run({"validate", "--schedule", schedule_path_}).code, 0);
}

TEST_F(CliWorkflow, SweepPrintsFigureStyleSeries) {
  const CliResult result = run({"sweep", "--machine", "quad", "--nodes", "2",
                                "--from", "4", "--to", "8", "--reps", "2"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("hybrid_root"), std::string::npos);
  // 5 table rows + header + rule + blank + CSV header + 5 CSV rows.
  EXPECT_NE(result.out.find("\n4,"), std::string::npos);
  EXPECT_NE(result.out.find("\n8,"), std::string::npos);
  // Bad ranges fail loudly.
  EXPECT_EQ(run({"sweep", "--machine", "quad", "--from", "8", "--to", "4"})
                .code,
            1);
  EXPECT_EQ(run({"sweep", "--machine", "quad", "--to", "9999"}).code, 1);
}

TEST_F(CliWorkflow, SweepOverIrregularMachineFile) {
  const std::string machine_path = (dir_ / "irregular.txt").string();
  {
    std::ofstream os(machine_path);
    os << "tier self   o 1.5e-6\n"
          "tier cache  o 2.0e-6 l 1.2e-7\n"
          "tier chip   o 2.5e-6 l 1.5e-7\n"
          "tier socket o 4.0e-6 l 6.0e-7\n"
          "tier node   o 2.5e-5 l 1.4e-5\n"
          "node sockets 1 cores 4 cache 2\n"
          "node sockets 1 cores 6 cache 6\n";
  }
  const CliResult result = run({"sweep", "--machine-file", machine_path,
                                "--from", "6", "--to", "10", "--reps", "2"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("\n10,"), std::string::npos);
}

TEST_F(CliWorkflow, OverlapSweepsRatiosAgainstThePredictor) {
  ASSERT_EQ(run({"profile", "--machine", "quad", "--ranks", "16", "--out",
                 profile_path_})
                .code,
            0);
  const CliResult result =
      run({"overlap", "--profile", profile_path_, "--algorithm",
           "dissemination", "--compute", "4e-4", "--ratios", "0,0.5,1",
           "--reps", "2"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("predicted blocking barrier"),
            std::string::npos);
  EXPECT_NE(result.out.find("predicted-exposed[s]"), std::string::npos);
  // One table row per requested ratio.
  EXPECT_NE(result.out.find(" 0.00 "), std::string::npos);
  EXPECT_NE(result.out.find(" 0.50 "), std::string::npos);
  EXPECT_NE(result.out.find(" 1.00 "), std::string::npos);
}

TEST_F(CliWorkflow, OverlapValidatesItsArguments) {
  ASSERT_EQ(run({"profile", "--machine", "quad", "--ranks", "8", "--out",
                 profile_path_})
                .code,
            0);
  // Ratio outside [0,1].
  EXPECT_EQ(run({"overlap", "--profile", profile_path_, "--algorithm",
                 "tree", "--ratios", "0,1.5"})
                .code,
            1);
  // Malformed ratio token.
  EXPECT_EQ(run({"overlap", "--profile", profile_path_, "--algorithm",
                 "tree", "--ratios", "0,abc"})
                .code,
            1);
  // Needs exactly one schedule source.
  EXPECT_EQ(run({"overlap", "--profile", profile_path_}).code, 1);
}

TEST_F(CliWorkflow, LibraryServesPersistsAndSoaks) {
  ASSERT_EQ(run({"profile", "--machine", "quad", "--ranks", "8", "--out",
                 profile_path_})
                .code,
            0);
  const std::string store_path = (dir_ / "plans.store").string();

  // First run: tune the world plan and leave a store behind.
  {
    const CliResult result =
        run({"library", "--profile", profile_path_, "--store", store_path});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("plan service over 8 ranks"), std::string::npos);
    EXPECT_NE(result.out.find("world plan:"), std::string::npos);
    EXPECT_NE(result.out.find("state healthy"), std::string::npos);
    EXPECT_NE(result.out.find("plan store saved to"), std::string::npos);
    EXPECT_TRUE(std::filesystem::exists(store_path));
  }
  // Second run: warm restart from that store — no fresh tune needed.
  {
    const CliResult result =
        run({"library", "--profile", profile_path_, "--store", store_path});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("warm restart: 1 plan(s) loaded"),
              std::string::npos);
    EXPECT_NE(result.out.find("tunes 0"), std::string::npos);
  }
  // Soak mode exercises the concurrent client/report path end to end.
  {
    const CliResult result =
        run({"library", "--profile", profile_path_, "--auto-repair", "--soak",
             "--ops", "2000", "--clients", "2", "--subsets", "4", "--seed",
             "3"});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("auto-repair on"), std::string::npos);
    EXPECT_NE(result.out.find("soak: 2000 ops"), std::string::npos);
    EXPECT_NE(result.out.find("reports:"), std::string::npos);
  }
  // A missing profile is an I/O error (exit 3), not a crash.
  EXPECT_EQ(run({"library", "--profile", (dir_ / "nope.txt").string()}).code,
            3);
}

TEST_F(CliWorkflow, SkewedMachineWorksEndToEnd) {
  ASSERT_EQ(run({"profile", "--machine", "skewed", "--ranks", "16",
                 "--mapping", "block", "--out", profile_path_})
                .code,
            0);
  const CliResult result = run({"tune", "--profile", profile_path_,
                                "--extended", "--schedule-out",
                                schedule_path_});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_EQ(run({"validate", "--schedule", schedule_path_}).code, 0);
}

TEST_F(CliWorkflow, ClustersReportsDecompositionAndBlockStructure) {
  ASSERT_EQ(run({"profile", "--machine", "quad", "--nodes", "4", "--ranks",
                 "32", "--mapping", "block", "--out", profile_path_})
                .code,
            0);
  const CliResult result = run({"clusters", "--profile", profile_path_});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("4 clusters of 1 class(es)"), std::string::npos);
  EXPECT_NE(result.out.find("block-structured"), std::string::npos);
  EXPECT_NE(result.out.find("yes"), std::string::npos);
}

TEST_F(CliWorkflow, ClustersExitCodesDistinguishUsageAndIo) {
  // Missing --profile is a usage error (1); an unreadable path is IO (3).
  EXPECT_EQ(run({"clusters"}).code, 1);
  EXPECT_EQ(run({"clusters", "--profile", (dir_ / "absent.prof").string()})
                .code,
            3);
  // Garbage content is IO too.
  const std::string junk_path = (dir_ / "junk.prof").string();
  std::ofstream(junk_path) << "not a profile\n";
  EXPECT_EQ(run({"clusters", "--profile", junk_path}).code, 3);
}

TEST_F(CliWorkflow, TuneHierarchicalOnClusteredProfile) {
  ASSERT_EQ(run({"profile", "--machine", "quad", "--nodes", "4", "--ranks",
                 "32", "--mapping", "block", "--out", profile_path_})
                .code,
            0);
  const CliResult result =
      run({"tune", "--hierarchical", "--profile", profile_path_,
           "--simulate", "--reps", "2", "--schedule-out", schedule_path_});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("4 clusters in 1 classes"), std::string::npos);
  EXPECT_NE(result.out.find("predicted cost"), std::string::npos);
  EXPECT_NE(result.out.find("simulated barrier time"), std::string::npos);
  // The densified blocked plan passes the stored-schedule validator.
  EXPECT_EQ(run({"validate", "--schedule", schedule_path_}).code, 0);
}

TEST_F(CliWorkflow, TuneHierarchicalFallsBackOnNonBlockMachine) {
  ASSERT_EQ(run({"profile", "--machine", "skewed", "--ranks", "16",
                 "--mapping", "block", "--out", profile_path_})
                .code,
            0);
  const CliResult result =
      run({"tune", "--hierarchical", "--profile", profile_path_});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("dense fallback"), std::string::npos);
  // --schedule-out is reserved for the blocked path; on fallback it is a
  // usage error pointing at the plain tuner.
  EXPECT_EQ(run({"tune", "--hierarchical", "--profile", profile_path_,
                 "--schedule-out", schedule_path_})
                .code,
            1);
}

TEST_F(CliWorkflow, TiledProfileRoundTripsThroughCli) {
  const std::string tiled_path = (dir_ / "tiled.v4prof").string();
  {
    const CliResult result =
        run({"profile", "--machine", "quad", "--nodes", "4", "--ranks", "32",
             "--tiled", "--out", tiled_path});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("tiled profile"), std::string::npos);
  }
  {
    const CliResult result = run({"clusters", "--profile", tiled_path});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("(tiled v4)"), std::string::npos);
  }
  {
    const CliResult result = run({"tune", "--hierarchical", "--profile",
                                  tiled_path, "--simulate", "--reps", "2"});
    ASSERT_EQ(result.code, 0) << result.err;
    EXPECT_NE(result.out.find("simulated barrier time"), std::string::npos);
  }
  // --tiled excludes jitter/estimation/mapping knobs.
  EXPECT_EQ(run({"profile", "--machine", "quad", "--nodes", "4", "--ranks",
                 "32", "--tiled", "--estimate", "--out", tiled_path})
                .code,
            1);
  // The dense loader points v4 files at the tiled loader via exit 3.
  const CliResult dense_on_v4 = run({"tune", "--profile", tiled_path});
  EXPECT_EQ(dense_on_v4.code, 3);
  EXPECT_NE(dense_on_v4.err.find("v4"), std::string::npos);
}

}  // namespace
}  // namespace optibar::cli
