// Unit tests for the dense matrix and the boolean semiring operations
// that implement Eq. 3.
#include "util/matrix.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace optibar {
namespace {

TEST(Matrix, DefaultConstructedIsEmpty) {
  Matrix<double> m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, SizedConstructionFills) {
  Matrix<double> m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(m(r, c), 1.5);
    }
  }
}

TEST(Matrix, InitializerListLayout) {
  Matrix<int> m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m(0, 0), 1);
  EXPECT_EQ(m(0, 2), 3);
  EXPECT_EQ(m(1, 0), 4);
  EXPECT_EQ(m(1, 2), 6);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix<int>{{1, 2}, {3}}), Error);
}

TEST(Matrix, IdentityHasUnitDiagonal) {
  const auto id = Matrix<int>::identity(4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(id(r, c), r == c ? 1 : 0);
    }
  }
}

TEST(Matrix, OutOfBoundsAccessThrows) {
  Matrix<int> m(2, 2);
  EXPECT_THROW(m(2, 0), Error);
  EXPECT_THROW(m(0, 2), Error);
}

TEST(Matrix, TransposedSwapsIndices) {
  Matrix<int> m{{1, 2, 3}, {4, 5, 6}};
  const auto t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      EXPECT_EQ(t(c, r), m(r, c));
    }
  }
}

TEST(Matrix, DoubleTransposeIsIdentityOp) {
  Matrix<int> m{{1, 2}, {3, 4}, {5, 6}};
  EXPECT_EQ(m.transposed().transposed(), m);
}

TEST(Matrix, SubmatrixExtractsPrincipalBlock) {
  Matrix<int> m{{0, 1, 2}, {10, 11, 12}, {20, 21, 22}};
  const auto s = m.submatrix({0, 2});
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_EQ(s(0, 0), 0);
  EXPECT_EQ(s(0, 1), 2);
  EXPECT_EQ(s(1, 0), 20);
  EXPECT_EQ(s(1, 1), 22);
}

TEST(Matrix, SubmatrixPreservesIndexOrder) {
  Matrix<int> m{{0, 1}, {10, 11}};
  const auto s = m.submatrix({1, 0});
  EXPECT_EQ(s(0, 0), 11);
  EXPECT_EQ(s(1, 1), 0);
}

TEST(Matrix, SubmatrixRejectsOutOfRangeIndex) {
  Matrix<int> m(2, 2);
  EXPECT_THROW(m.submatrix({0, 5}), Error);
}

TEST(Matrix, CountNonzeroAndPredicates) {
  Matrix<int> m{{0, 1}, {0, 2}};
  EXPECT_EQ(m.count_nonzero(), 2u);
  EXPECT_FALSE(m.all_nonzero());
  EXPECT_FALSE(m.all_zero());
  EXPECT_TRUE(Matrix<int>(3, 3, 0).all_zero());
  EXPECT_TRUE(Matrix<int>(3, 3, 7).all_nonzero());
}

TEST(Matrix, MinMaxElement) {
  Matrix<double> m{{3.0, -1.0}, {2.0, 5.0}};
  EXPECT_DOUBLE_EQ(m.max_element(), 5.0);
  EXPECT_DOUBLE_EQ(m.min_element(), -1.0);
}

TEST(Matrix, MinMaxOfEmptyThrows) {
  Matrix<double> m;
  EXPECT_THROW(m.max_element(), Error);
  EXPECT_THROW(m.min_element(), Error);
}

TEST(BoolMatrix, MultiplyIsSemiringProduct) {
  // A: 0 -> 1; B: 1 -> 2. A*B must connect 0 -> 2.
  BoolMatrix a(3, 3, 0);
  a(0, 1) = 1;
  BoolMatrix b(3, 3, 0);
  b(1, 2) = 1;
  const auto c = bool_multiply(a, b);
  EXPECT_EQ(c(0, 2), 1);
  EXPECT_EQ(c.count_nonzero(), 1u);
}

TEST(BoolMatrix, MultiplySaturatesInsteadOfCounting) {
  // Two distinct paths from 0 to 1 must still yield exactly 1, not 2.
  BoolMatrix a(3, 3, 0);
  a(0, 1) = 1;
  a(0, 2) = 1;
  BoolMatrix b(3, 3, 0);
  b(1, 0) = 1;
  b(2, 0) = 1;
  const auto c = bool_multiply(a, b);
  EXPECT_EQ(c(0, 0), 1);
}

TEST(BoolMatrix, MultiplyDimensionMismatchThrows) {
  BoolMatrix a(2, 3, 0);
  BoolMatrix b(2, 3, 0);
  EXPECT_THROW(bool_multiply(a, b), Error);
}

TEST(BoolMatrix, AddIsElementwiseOr) {
  BoolMatrix a(2, 2, 0);
  a(0, 0) = 1;
  BoolMatrix b(2, 2, 0);
  b(0, 0) = 1;
  b(1, 1) = 1;
  const auto c = bool_add(a, b);
  EXPECT_EQ(c(0, 0), 1);
  EXPECT_EQ(c(1, 1), 1);
  EXPECT_EQ(c(0, 1), 0);
}

TEST(BoolMatrix, IdentityIsMultiplicativeUnit) {
  BoolMatrix a(3, 3, 0);
  a(0, 1) = 1;
  a(2, 0) = 1;
  const auto id = BoolMatrix::identity(3);
  EXPECT_EQ(bool_multiply(id, a), a);
  EXPECT_EQ(bool_multiply(a, id), a);
}

TEST(Matrix, StreamOutputPrintsNumbersNotChars) {
  BoolMatrix m(1, 2, 0);
  m(0, 1) = 1;
  std::ostringstream os;
  os << m;
  EXPECT_EQ(os.str(), "0 1\n");
}

}  // namespace
}  // namespace optibar
