// Tests for the AdaptiveTuner facade: end-to-end pipeline behaviour,
// asymmetry handling, and the generated artefacts.
#include "core/tuner.hpp"

#include <gtest/gtest.h>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace optibar {
namespace {

TEST(Tuner, ProducesValidBarrierWithPrediction) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, 40), GenerateOptions{});
  const TuneResult result = tune_barrier(profile);
  EXPECT_TRUE(result.schedule().is_barrier());
  EXPECT_GT(result.predicted_cost(), 0.0);
  EXPECT_EQ(result.schedule().ranks(), 40u);
}

TEST(Tuner, HandlesAsymmetricInputBySymmetrizing) {
  // Estimated profiles carry sampling asymmetry; the tuner must accept
  // them (the clustering requires the symmetrized form).
  const MachineSpec m = quad_cluster();
  TopologyProfile profile = generate_profile(m, 16);
  Matrix<double> o = profile.overhead();
  Rng rng(3);
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      if (i != j) {
        o(i, j) *= 1.0 + 0.01 * rng.next_double();
      }
    }
  }
  const TopologyProfile asym(std::move(o), profile.latency());
  ASSERT_FALSE(asym.is_symmetric());
  const TuneResult result = tune_barrier(asym);
  EXPECT_TRUE(result.profile().is_symmetric());
  EXPECT_TRUE(result.schedule().is_barrier());
}

TEST(Tuner, PredictedCostUsesDepartureEquation) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile = generate_profile(m, 24);
  const TuneResult result = tune_barrier(profile);
  // The stored prediction applies Eq. 2 to departure stages, so it is
  // no larger than the all-Eq.1 prediction.
  const double eq1_only =
      predicted_time(result.schedule(), result.profile());
  EXPECT_LE(result.predicted_cost(), eq1_only + 1e-18);
}

TEST(Tuner, BeatsTreeBarrierPredictionAtScale) {
  for (const MachineSpec& m : {quad_cluster(), hex_cluster()}) {
    const std::size_t p = m.total_cores();
    const TopologyProfile profile =
        generate_profile(m, round_robin_mapping(m, p), GenerateOptions{});
    const TuneResult result = tune_barrier(profile);
    EXPECT_LT(result.predicted_cost(),
              predicted_time(tree_barrier(p), profile))
        << m.name();
  }
}

TEST(Tuner, GeneratedCodeUsesConfiguredName) {
  const MachineSpec m = quad_cluster(2);
  const TopologyProfile profile = generate_profile(m, 12);
  TuneOptions opts;
  opts.function_name = "my_cluster_barrier";
  const TuneResult result = tune_barrier(profile, opts);
  const GeneratedCode code = result.generated_code();
  EXPECT_EQ(code.function_name, "my_cluster_barrier");
  EXPECT_NE(code.source.find("void my_cluster_barrier("), std::string::npos);
}

TEST(Tuner, CompiledBarrierMatchesScheduleShape) {
  const MachineSpec m = quad_cluster(2);
  const TopologyProfile profile = generate_profile(m, 16);
  const TuneResult result = tune_barrier(profile);
  const CompiledBarrier compiled = result.compiled();
  EXPECT_EQ(compiled.ranks(), 16u);
}

TEST(Tuner, ClusterTreeIsExposedForInspection) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile = generate_profile(m, 32);
  const TuneResult result = tune_barrier(profile);
  EXPECT_EQ(result.cluster_tree().ranks.size(), 32u);
  EXPECT_EQ(result.cluster_tree().children.size(), 4u);
}

TEST(Tuner, ExtendedAlgorithmsStayCompetitive) {
  // A superset of candidates improves the greedy score at each level;
  // greed is not globally optimal, so we assert validity plus a
  // competitive bound rather than strict dominance.
  const MachineSpec m = hex_cluster();
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, 72), GenerateOptions{});
  const TuneResult paper_set = tune_barrier(profile);
  TuneOptions extended;
  extended.composition.algorithms = extended_algorithms();
  const TuneResult extended_set = tune_barrier(profile, extended);
  EXPECT_TRUE(extended_set.schedule().is_barrier());
  EXPECT_LE(extended_set.predicted_cost(), 1.5 * paper_set.predicted_cost());
}

TEST(Tuner, SingleRankProfile) {
  const MachineSpec m = quad_cluster(1);
  const TopologyProfile profile = generate_profile(m, 1);
  const TuneResult result = tune_barrier(profile);
  EXPECT_TRUE(result.schedule().is_barrier());
  EXPECT_DOUBLE_EQ(result.predicted_cost(), 0.0);
}

TEST(Tuner, DeterministicForSameProfile) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, 48), GenerateOptions{0.1, 8});
  const TuneResult a = tune_barrier(profile);
  const TuneResult b = tune_barrier(profile);
  EXPECT_EQ(a.schedule(), b.schedule());
  EXPECT_DOUBLE_EQ(a.predicted_cost(), b.predicted_cost());
}

TEST(Tuner, ParallelTuningIsBitIdenticalToSerial) {
  // The engine's contract: any thread width produces the identical
  // tuned schedule (parallel stages reduce in serial candidate order).
  const MachineSpec m = hex_cluster();
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, 72), GenerateOptions{0.1, 8});
  const TuneResult serial = tune_barrier(profile);
  for (std::size_t threads : {2u, 4u, 8u}) {
    EngineOptions options;
    options.threads = threads;
    const TuneResult parallel = tune_barrier(profile, options);
    EXPECT_EQ(parallel.schedule(), serial.schedule())
        << threads << " threads";
    EXPECT_DOUBLE_EQ(parallel.predicted_cost(), serial.predicted_cost());
  }
}

TEST(Tuner, ValidatesEngineOptions) {
  const MachineSpec m = quad_cluster(1);
  const TopologyProfile profile = generate_profile(m, 4);
  EngineOptions bad;
  bad.clustering.sss.sparseness = -1.0;
  EXPECT_THROW(tune_barrier(profile, bad), Error);
}

}  // namespace
}  // namespace optibar
