// Tests for dynamic re-tuning: drift monitoring, the amortization rule,
// and the adaptive controller end to end (Section VIII future work).
#include "core/retune.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "barrier/cost_model.hpp"
#include "util/matrix.hpp"
#include "netsim/engine.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

TopologyProfile base_profile(std::size_t ranks = 16) {
  const MachineSpec m = quad_cluster();
  return generate_profile(m, round_robin_mapping(m, ranks));
}

/// The "conditions changed" truth used by the controller tests: the
/// same machine under a *different* rank placement (block instead of
/// round-robin). This models the affinity drift the paper warns about —
/// "valid predictions require consistency between the run time
/// conditions reflected in the profile and those of an experimental
/// verification" — and guarantees the old schedule's locality
/// assumptions are wrong, so a re-tune has something to win.
TopologyProfile remapped_profile(std::size_t ranks = 16) {
  const MachineSpec m = quad_cluster();
  return generate_profile(m, block_mapping(m, ranks));
}

void feed_observations(AdaptiveBarrierController& controller,
                       const TopologyProfile& truth) {
  for (std::size_t i = 0; i < truth.ranks(); ++i) {
    for (std::size_t j = i + 1; j < truth.ranks(); ++j) {
      controller.monitor().observe_overhead(i, j, truth.o(i, j));
      controller.monitor().observe_latency(i, j, truth.l(i, j));
    }
  }
}

TEST(DriftMonitor, StartsWithZeroDrift) {
  DriftMonitor monitor(base_profile());
  EXPECT_DOUBLE_EQ(monitor.max_drift(), 0.0);
  EXPECT_EQ(monitor.observation_count(), 0u);
}

TEST(DriftMonitor, EwmaConvergesToObservations) {
  TopologyProfile profile = base_profile();
  const double old_value = profile.o(0, 1);
  DriftMonitor monitor(std::move(profile), /*alpha=*/0.5);
  const double target = old_value * 3.0;
  for (int i = 0; i < 30; ++i) {
    monitor.observe_overhead(0, 1, target);
  }
  EXPECT_NEAR(monitor.current().o(0, 1), target, 1e-3 * target);
  EXPECT_NEAR(monitor.current().o(1, 0), target, 1e-3 * target);
  EXPECT_NEAR(monitor.max_drift(), 2.0, 0.01);  // 3x = 200% drift
}

TEST(DriftMonitor, SingleObservationMovesByAlpha) {
  TopologyProfile profile = base_profile();
  const double old_value = profile.o(0, 8);
  DriftMonitor monitor(std::move(profile), /*alpha=*/0.25);
  monitor.observe_overhead(0, 8, 2.0 * old_value);
  EXPECT_NEAR(monitor.current().o(0, 8), 1.25 * old_value, 1e-12);
}

TEST(DriftMonitor, LatencyObservationsUpdateL) {
  TopologyProfile profile = base_profile();
  const double old_value = profile.l(0, 1);
  DriftMonitor monitor(std::move(profile), /*alpha=*/1.0);
  monitor.observe_latency(0, 1, 5.0 * old_value);
  EXPECT_DOUBLE_EQ(monitor.current().l(0, 1), 5.0 * old_value);
  EXPECT_DOUBLE_EQ(monitor.current().l(1, 0), 5.0 * old_value);
}

TEST(DriftMonitor, RebaselineZeroesDrift) {
  DriftMonitor monitor(base_profile(), 1.0);
  monitor.observe_overhead(0, 1, 1.0);
  EXPECT_GT(monitor.max_drift(), 0.0);
  monitor.rebaseline();
  EXPECT_DOUBLE_EQ(monitor.max_drift(), 0.0);
}

TEST(DriftMonitor, RejectsBadInputs) {
  EXPECT_THROW(DriftMonitor(base_profile(), 0.0), Error);
  EXPECT_THROW(DriftMonitor(base_profile(), 1.5), Error);
  DriftMonitor monitor(base_profile());
  EXPECT_THROW(monitor.observe_overhead(0, 99, 1e-6), Error);
  EXPECT_THROW(monitor.observe_overhead(0, 1, -1.0), Error);
  EXPECT_THROW(monitor.observe_latency(3, 3, 1e-6), Error);
}

TEST(DriftMonitor, RejectsNonFiniteObservations) {
  // One poisoned sample would contaminate the EWMA window for good, so
  // every observe_* entry point rejects NaN/Inf/negative at the
  // boundary — and a rejected sample must not move the view at all.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  DriftMonitor monitor(base_profile());
  for (const double bad : {nan, inf, -inf, -1e-9}) {
    EXPECT_THROW(monitor.observe_overhead(0, 1, bad), Error);
    EXPECT_THROW(monitor.observe_latency(0, 1, bad), Error);
  }
  EXPECT_EQ(monitor.observation_count(), 0u);
  EXPECT_DOUBLE_EQ(monitor.max_drift(), 0.0);
  EXPECT_EQ(monitor.current(), monitor.baseline());

  // The R-matrix path enforces the same contract.
  TopologyProfile with_r = base_profile();
  Matrix<double> r(with_r.ranks(), with_r.ranks());
  for (std::size_t i = 0; i < with_r.ranks(); ++i) {
    for (std::size_t j = 0; j < with_r.ranks(); ++j) {
      r(i, j) = i == j ? 0.0 : 1e-6;
    }
  }
  with_r.set_rma_latency(std::move(r));
  DriftMonitor rma_monitor(with_r);
  for (const double bad : {nan, inf, -inf, -1e-9}) {
    EXPECT_THROW(rma_monitor.observe_rma_latency(0, 1, bad), Error);
  }
  EXPECT_EQ(rma_monitor.observation_count(), 0u);
  rma_monitor.observe_rma_latency(0, 1, 5e-6);
  EXPECT_GT(rma_monitor.max_drift(), 0.0);  // R drift is monitored too

  // A profile without R data cannot fold one-sided observations.
  Matrix<double> o(4, 4);
  Matrix<double> l(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      o(i, j) = i == j ? 0.0 : 1e-6;
      l(i, j) = i == j ? 0.0 : 2e-6;
    }
  }
  DriftMonitor bare(TopologyProfile(std::move(o), std::move(l)));
  EXPECT_THROW(bare.observe_rma_latency(0, 1, 1e-6), Error);
}

TEST(Amortization, RetunesWhenGainCoversOverhead) {
  // Gain 10us/call, overhead 0.1s -> break-even at 10,000 calls.
  const RetuneDecision d = evaluate_retune(1e-4, 9e-5, 0.1, 20'000);
  EXPECT_TRUE(d.retune);
  EXPECT_NEAR(d.gain_per_call, 1e-5, 1e-12);
  EXPECT_NEAR(d.break_even_calls, 10'000.0, 1.0);
}

TEST(Amortization, DeclinesShortHorizons) {
  const RetuneDecision d = evaluate_retune(1e-4, 9e-5, 0.1, 5'000);
  EXPECT_FALSE(d.retune);
  EXPECT_NEAR(d.break_even_calls, 10'000.0, 1.0);
}

TEST(Amortization, NeverRetunesForWorseCandidate) {
  const RetuneDecision d = evaluate_retune(1e-4, 2e-4, 0.0, 1e12);
  EXPECT_FALSE(d.retune);
  EXPECT_TRUE(std::isinf(d.break_even_calls));
}

TEST(Amortization, ZeroOverheadRetunesOnAnyGain) {
  const RetuneDecision d = evaluate_retune(1e-4, 9.9e-5, 0.0, 1.0);
  EXPECT_TRUE(d.retune);
  EXPECT_DOUBLE_EQ(d.break_even_calls, 0.0);
}

TEST(Controller, NoDriftNoRetune) {
  AdaptiveBarrierController controller(base_profile());
  EXPECT_FALSE(controller.reevaluate(1e9));
  EXPECT_EQ(controller.retune_count(), 0u);
}

TEST(Controller, AdaptsToChangedPlacement) {
  // The placement changed from round-robin to block; the old schedule's
  // "node-local" sub-barriers now cross nodes. Feed observations,
  // re-evaluate with a long horizon, and check the controller both
  // re-tunes and actually improves the simulated cost on the new truth.
  const TopologyProfile before = base_profile();
  const TopologyProfile after = remapped_profile();

  ControllerOptions options;
  options.drift_threshold = 0.5;
  options.alpha = 1.0;  // adopt observations immediately
  AdaptiveBarrierController controller(before, options);
  const Schedule original = controller.schedule();

  feed_observations(controller, after);
  EXPECT_GT(controller.monitor().max_drift(), 0.5);

  ASSERT_TRUE(controller.reevaluate(/*expected_remaining_calls=*/1e9));
  EXPECT_EQ(controller.retune_count(), 1u);
  EXPECT_GT(controller.last_decision().gain_per_call, 0.0);

  // The new schedule must beat the old one on the re-mapped machine.
  const double old_cost = simulate(original, after).barrier_time();
  const double new_cost = simulate(controller.schedule(), after).barrier_time();
  EXPECT_LT(new_cost, old_cost);

  // Drift was re-anchored.
  EXPECT_DOUBLE_EQ(controller.monitor().max_drift(), 0.0);
}

TEST(Controller, DeclinesUnamortizableRetune) {
  ControllerOptions options;
  options.drift_threshold = 0.5;
  options.alpha = 1.0;
  options.retune_overhead = 10.0;  // absurdly expensive re-tune
  AdaptiveBarrierController controller(base_profile(), options);
  feed_observations(controller, remapped_profile());
  // One call left: a 10 s overhead can never pay off.
  EXPECT_FALSE(controller.reevaluate(/*expected_remaining_calls=*/1.0));
  EXPECT_EQ(controller.retune_count(), 0u);
  EXPECT_FALSE(controller.last_decision().retune);
  EXPECT_GT(controller.last_decision().break_even_calls, 1.0);
}

TEST(Controller, MeasuredOverheadIsUsedWhenUnconfigured) {
  // With retune_overhead = 0 the controller times the tuner itself; a
  // huge horizon must then accept any positive gain.
  ControllerOptions options;
  options.drift_threshold = 0.5;
  options.alpha = 1.0;
  AdaptiveBarrierController controller(base_profile(), options);
  feed_observations(controller, remapped_profile());
  EXPECT_TRUE(controller.reevaluate(1e15));
}

}  // namespace
}  // namespace optibar
