// Tests for the Section VII-C code generator and the compiled in-process
// specialisation, including an end-to-end compile-and-run of emitted
// source with the system compiler when one is available.
#include "core/codegen.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "barrier/algorithms.hpp"
#include "core/tuner.hpp"
#include "simmpi/runtime.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

TEST(Codegen, RejectsInvalidFunctionNames) {
  const Schedule s = linear_barrier(2);
  EXPECT_THROW(generate_cpp(s, ""), Error);
  EXPECT_THROW(generate_cpp(s, "1abc"), Error);
  EXPECT_THROW(generate_cpp(s, "has space"), Error);
  EXPECT_THROW(generate_cpp(s, "has-dash"), Error);
  EXPECT_NO_THROW(generate_cpp(s, "my_barrier_2"));
}

TEST(Codegen, RejectsNonBarrier) {
  Schedule s(2);
  StageMatrix m(2, 2, 0);
  m(0, 1) = 1;
  s.append_stage(std::move(m));
  EXPECT_THROW(generate_cpp(s, "bad"), Error);
}

TEST(Codegen, EmitsOneCasePerRank) {
  const GeneratedCode code = generate_cpp(tree_barrier(4), "tb4");
  for (int r = 0; r < 4; ++r) {
    EXPECT_NE(code.source.find("case " + std::to_string(r) + ":"),
              std::string::npos);
  }
  EXPECT_EQ(code.function_name, "tb4");
  EXPECT_NE(code.source.find("void tb4("), std::string::npos);
}

TEST(Codegen, EmitsHardCodedSignalSequence) {
  // Linear barrier, P=3: rank 1 sends to 0 (stage 0) and receives from
  // 0 (stage 1).
  const GeneratedCode code = generate_cpp(linear_barrier(3), "lin3");
  EXPECT_NE(code.source.find("p2p.issend(0, tag_base + 0)"),
            std::string::npos);
  EXPECT_NE(code.source.find("p2p.irecv(0, tag_base + 1)"),
            std::string::npos);
  EXPECT_NE(code.source.find("p2p.wait_all(reqs)"), std::string::npos);
}

TEST(Codegen, EliminatesNoOpStagesPerRank) {
  // In the tree barrier over 8 ranks, rank 1 acts only in stages 0 and
  // 5; stages 1-4 must not appear in its case.
  const GeneratedCode code = generate_cpp(tree_barrier(8), "tb8");
  const std::size_t case1 = code.source.find("case 1:");
  const std::size_t case2 = code.source.find("case 2:");
  ASSERT_NE(case1, std::string::npos);
  ASSERT_NE(case2, std::string::npos);
  const std::string case1_body = code.source.substr(case1, case2 - case1);
  EXPECT_NE(case1_body.find("stage 0"), std::string::npos);
  EXPECT_NE(case1_body.find("stage 5"), std::string::npos);
  EXPECT_EQ(case1_body.find("stage 1"), std::string::npos);
  EXPECT_EQ(case1_body.find("stage 3"), std::string::npos);
}

TEST(Codegen, SourceIsDeterministic) {
  const Schedule s = dissemination_barrier(8);
  EXPECT_EQ(generate_cpp(s, "d8").source, generate_cpp(s, "d8").source);
}

TEST(CompiledBarrier, DropsNoOpStages) {
  const CompiledBarrier compiled(tree_barrier(8));
  EXPECT_EQ(compiled.ranks(), 8u);
  // Rank 1: one send + one recv across the whole barrier.
  EXPECT_EQ(compiled.op_count(1), 2u);
  // Rank 0: receives 3 + sends 3.
  EXPECT_EQ(compiled.op_count(0), 6u);
}

TEST(CompiledBarrier, ExecutesEquivalentlyToInterpreter) {
  const Schedule s = tree_barrier(6);
  const CompiledBarrier compiled(s);
  simmpi::Communicator comm(6);
  simmpi::run_ranks(comm, [&](simmpi::RankContext& ctx) {
    for (int episode = 0; episode < 3; ++episode) {
      compiled.execute(ctx, episode);
    }
  });
  EXPECT_EQ(comm.unmatched_operations(), 0u);
}

TEST(CompiledBarrier, SynchronizesUnderDelayInjection) {
  using namespace std::chrono_literals;
  const Schedule s = dissemination_barrier(5);
  const CompiledBarrier compiled(s);
  simmpi::Communicator comm(5);
  std::vector<std::chrono::nanoseconds> exits(5);
  const auto start = simmpi::Clock::now();
  simmpi::run_ranks(comm, [&](simmpi::RankContext& ctx) {
    if (ctx.rank() == 2) {
      std::this_thread::sleep_for(50ms);
    }
    compiled.execute(ctx);
    exits[ctx.rank()] =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            simmpi::Clock::now() - start);
  });
  for (const auto& exit_time : exits) {
    EXPECT_GE(exit_time, 50ms);
  }
}

TEST(CompiledBarrier, RejectsNonBarrier) {
  Schedule s(2);
  StageMatrix m(2, 2, 0);
  m(1, 0) = 1;
  s.append_stage(std::move(m));
  EXPECT_THROW(CompiledBarrier{s}, Error);
}

TEST(MpiCodegen, EmitsWellFormedCFunction) {
  const GeneratedCode code = generate_mpi_c(tree_barrier(8), "tb8_mpi");
  EXPECT_NE(code.source.find("#include <mpi.h>"), std::string::npos);
  EXPECT_NE(code.source.find("void tb8_mpi(MPI_Comm comm, int episode)"),
            std::string::npos);
  EXPECT_NE(code.source.find("assert(size == 8)"), std::string::npos);
  for (int r = 0; r < 8; ++r) {
    EXPECT_NE(code.source.find("case " + std::to_string(r) + ":"),
              std::string::npos);
  }
}

TEST(MpiCodegen, UsesSynchronizedZeroByteSends) {
  // The paper's implementation vehicle: zero-length MPI_Issend.
  const GeneratedCode code = generate_mpi_c(linear_barrier(4), "lin4");
  EXPECT_NE(code.source.find("MPI_Issend(NULL, 0, MPI_BYTE, 0, tag_base + 0"),
            std::string::npos);
  EXPECT_NE(code.source.find("MPI_Irecv(NULL, 0, MPI_BYTE, 0, tag_base + 1"),
            std::string::npos);
  EXPECT_NE(code.source.find("MPI_Waitall(n, reqs, MPI_STATUSES_IGNORE)"),
            std::string::npos);
}

TEST(MpiCodegen, EliminatesNoOpStagesPerRank) {
  const GeneratedCode code = generate_mpi_c(tree_barrier(8), "tb8_mpi");
  const std::size_t case1 = code.source.find("case 1:");
  const std::size_t case2 = code.source.find("case 2:");
  ASSERT_NE(case1, std::string::npos);
  const std::string body = code.source.substr(case1, case2 - case1);
  EXPECT_NE(body.find("stage 0"), std::string::npos);
  EXPECT_NE(body.find("stage 5"), std::string::npos);
  EXPECT_EQ(body.find("stage 2"), std::string::npos);
}

TEST(MpiCodegen, RequestArraySizedToWorstStage) {
  // Linear barrier, P=9: the root receives 8 messages in one stage.
  const GeneratedCode code = generate_mpi_c(linear_barrier(9), "lin9");
  EXPECT_NE(code.source.find("MPI_Request reqs[8];"), std::string::npos);
}

TEST(MpiCodegen, RejectsBadInput) {
  EXPECT_THROW(generate_mpi_c(linear_barrier(2), "1bad"), Error);
  Schedule s(2);
  StageMatrix m(2, 2, 0);
  m(0, 1) = 1;
  s.append_stage(std::move(m));
  EXPECT_THROW(generate_mpi_c(s, "not_a_barrier"), Error);
}

TEST(MpiCodegen, CompilesWithMpiWhenAvailable) {
  if (std::system("command -v mpicc > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no MPI compiler available";
  }
  const auto dir = std::filesystem::temp_directory_path() / "optibar_mpi";
  std::filesystem::create_directories(dir);
  const GeneratedCode code = generate_mpi_c(tree_barrier(6), "gen_barrier");
  {
    std::ofstream src(dir / "gen.c");
    src << code.source << "\nint main(void) { return 0; }\n";
  }
  EXPECT_EQ(std::system(("mpicc -c " + (dir / "gen.c").string() + " -o " +
                         (dir / "gen.o").string() + " 2> /dev/null")
                            .c_str()),
            0);
}

/// Adapter exposing RankContext through the policy interface the
/// generated code expects.
struct P2PAdapter {
  using request_type = simmpi::Request;
  simmpi::RankContext* ctx;
  request_type issend(std::size_t dst, int tag) {
    return ctx->issend(dst, tag);
  }
  request_type irecv(std::size_t src, int tag) { return ctx->irecv(src, tag); }
  void wait_all(const std::vector<request_type>& reqs) {
    simmpi::RankContext::wait_all(reqs);
  }
};

TEST(Codegen, EmittedSourceCompilesAndRuns) {
  // Write the generated header plus a driver that runs it over the
  // in-process runtime, build with the system compiler, and execute.
  // Skipped when no compiler is present.
  if (std::system("c++ --version > /dev/null 2>&1") != 0) {
    GTEST_SKIP() << "no system compiler available";
  }
  const auto dir = std::filesystem::temp_directory_path() / "optibar_codegen";
  std::filesystem::create_directories(dir);

  const MachineSpec m = quad_cluster(2);
  const TopologyProfile profile = generate_profile(m, 12);
  const TuneResult tuned = tune_barrier(profile);
  const GeneratedCode code = tuned.generated_code();
  {
    std::ofstream header(dir / "generated_barrier.hpp");
    header << code.source;
  }
  {
    std::ofstream driver(dir / "driver.cpp");
    driver << R"(#include "generated_barrier.hpp"
#include "simmpi/runtime.hpp"
#include <cstdio>
#include <vector>

struct Adapter {
  using request_type = optibar::simmpi::Request;
  optibar::simmpi::RankContext* ctx;
  request_type issend(std::size_t dst, int tag) { return ctx->issend(dst, tag); }
  request_type irecv(std::size_t src, int tag) { return ctx->irecv(src, tag); }
  void wait_all(const std::vector<request_type>& reqs) {
    optibar::simmpi::RankContext::wait_all(reqs);
  }
};

int main() {
  optibar::simmpi::Communicator comm(12);
  optibar::simmpi::run_ranks(comm, [](optibar::simmpi::RankContext& ctx) {
    Adapter adapter{&ctx};
    optibar_generated::optibar_barrier(adapter, ctx.rank());
  });
  if (comm.unmatched_operations() != 0) { return 1; }
  std::puts("generated barrier ok");
  return 0;
}
)";
  }
  const std::string src_root = std::string(OPTIBAR_SOURCE_ROOT);
  const std::string cmd =
      "c++ -std=c++20 -I" + (dir).string() + " -I" + src_root + "/src " +
      (dir / "driver.cpp").string() + " " + src_root +
      "/src/simmpi/communicator.cpp " + src_root +
      "/src/simmpi/fault.cpp " + src_root +
      "/src/simmpi/runtime.cpp " + src_root +
      "/src/simmpi/rank_pool.cpp " + src_root +
      "/src/simmpi/latency_model.cpp -lpthread -o " +
      (dir / "driver").string() + " 2> " + (dir / "compile.log").string();
  ASSERT_EQ(std::system(cmd.c_str()), 0)
      << "generated code failed to compile; see " << (dir / "compile.log");
  EXPECT_EQ(std::system(((dir / "driver").string() + " > /dev/null").c_str()),
            0);
}

TEST(Codegen, GeneratedAdapterRunsInProcessWithoutFiles) {
  // The same policy-adapter pattern, but exercised directly against the
  // CompiledBarrier equivalent to pin the two representations together.
  const Schedule s = pairwise_exchange_barrier(8);
  const CompiledBarrier compiled(s);
  simmpi::Communicator comm(8);
  simmpi::run_ranks(comm, [&](simmpi::RankContext& ctx) {
    P2PAdapter adapter{&ctx};
    (void)adapter;  // adapter validated by type-checking against policy
    compiled.execute(ctx);
  });
  EXPECT_EQ(comm.unmatched_operations(), 0u);
}

}  // namespace
}  // namespace optibar
