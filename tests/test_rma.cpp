// Tests for the one-sided RMA subsystem: the Window surface over the
// communicator's flag board, epoch double-buffering across many
// episodes without reset barriers, mixed-transport schedule execution
// on the threaded runtime, the nonblocking handle lifecycle over RMA
// edges, putdrop fault surfacing, transport assignment policies, and
// the hybrid-beats-classic acceptance sweep on the hex preset with
// netsim agreeing on the ordering.
#include "rma/window.hpp"

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <thread>
#include <vector>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "barrier/schedule.hpp"
#include "netsim/engine.hpp"
#include "rma/layout.hpp"
#include "rma/transport.hpp"
#include "simmpi/executor.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/runtime.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

using namespace std::chrono_literals;
using simmpi::Communicator;
using simmpi::RankContext;
using simmpi::ResilienceOptions;
using simmpi::ScheduleExecutor;
using simmpi::StallReport;

simmpi::LatencyModel zero_latency() {
  return [](std::size_t, std::size_t) { return std::chrono::nanoseconds(0); };
}

/// Tag every signal of `schedule` one-sided.
void tag_all(Schedule& schedule) {
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    schedule.set_transport(s, schedule.stage(s));
  }
}

/// Tag exactly the edge (stage, src, dst) one-sided.
void tag_edge(Schedule& schedule, std::size_t stage, std::size_t src,
              std::size_t dst) {
  StageMatrix transport(schedule.ranks(), schedule.ranks(), 0);
  transport(src, dst) = 1;
  schedule.set_transport(stage, std::move(transport));
}

ResilienceOptions fast_options() {
  ResilienceOptions options;
  options.max_retries = 0;
  options.deadline_floor = 15ms;
  return options;
}

TEST(RmaLayout, DoubleBufferedWordsAndFlags) {
  EXPECT_EQ(rma::words_per_rank(3, 4), 24u);  // 2 epochs x 3 stages x 4 ranks
  // Consecutive episodes use disjoint epoch buffers; distance-2
  // episodes reuse the buffer but signal a different flag value, so a
  // stale flag can never satisfy a later wait.
  const std::size_t w0 = rma::word_index(0, 1, 2, 3, 4);
  const std::size_t w1 = rma::word_index(1, 1, 2, 3, 4);
  const std::size_t w2 = rma::word_index(2, 1, 2, 3, 4);
  EXPECT_NE(w0, w1);
  EXPECT_EQ(w0, w2);
  EXPECT_NE(rma::flag_value(0), rma::flag_value(2));
  EXPECT_EQ(rma::flag_value(5), 6u);
}

TEST(RmaWindow, PutBecomesVisibleAtTheTarget) {
  Communicator comm(2, zero_latency());
  rma::Window window(comm, 4);
  EXPECT_EQ(window.slots(), 4u);
  EXPECT_FALSE(window.test(1, 0, 2));
  window.put(0, 1, 0, 2);
  EXPECT_TRUE(window.test(1, 0, 2));
  EXPECT_EQ(window.read(1, 0, 2), rma::Window::flag_value(0));
  // The source's own copy is untouched: puts are remote stores.
  EXPECT_FALSE(window.test(0, 0, 2));
}

TEST(RmaWindow, FetchAddAndCompareAndSwapRoundTrip) {
  Communicator comm(2, zero_latency());
  rma::Window window(comm, 2);
  EXPECT_EQ(window.fetch_add(0, 1, 0, 0, 5), 0u);
  EXPECT_EQ(window.fetch_add(0, 1, 0, 0, 3), 5u);
  EXPECT_EQ(window.read(1, 0, 0), 8u);
  // CAS stores only on a match and returns the previous value either way.
  EXPECT_EQ(window.compare_and_swap(0, 1, 0, 0, 8, 100), 8u);
  EXPECT_EQ(window.read(1, 0, 0), 100u);
  EXPECT_EQ(window.compare_and_swap(0, 1, 0, 0, 8, 7), 100u);
  EXPECT_EQ(window.read(1, 0, 0), 100u);
}

TEST(RmaWindow, WaitCollectsAllSlots) {
  Communicator comm(3, zero_latency());
  rma::Window window(comm, 3);
  window.put(0, 2, 0, 0);
  window.put(1, 2, 0, 1);
  const std::array<std::size_t, 2> slots{0, 1};
  EXPECT_TRUE(window.wait(2, 0, slots, simmpi::Clock::now() + 100ms));
  // Slot 2 was never signalled: the bounded wait gives up.
  const std::array<std::size_t, 1> missing{2};
  EXPECT_FALSE(window.wait(2, 0, missing, simmpi::Clock::now() + 20ms));
}

TEST(RmaWindow, SharedKeyAttachesTheSameRegion) {
  Communicator comm(2, zero_latency());
  rma::Window a(comm, 0xbeef, 4);
  rma::Window b(comm, 0xbeef, 4);
  EXPECT_EQ(a.base(), b.base());
  // A different key allocates fresh words.
  rma::Window c(comm, 0xcafe, 4);
  EXPECT_NE(a.base(), c.base());
  // Same key with a different size is a caller bug.
  EXPECT_THROW(rma::Window(comm, 0xbeef, 8), Error);
}

TEST(RmaWindow, EpochParityReusesBuffers) {
  Communicator comm(2, zero_latency());
  rma::Window window(comm, 1);
  window.put(0, 1, 0, 0);  // episode 0 -> epoch buffer 0, flag 1
  window.put(0, 1, 1, 0);  // episode 1 -> epoch buffer 1, flag 2
  EXPECT_TRUE(window.test(1, 0, 0));
  EXPECT_TRUE(window.test(1, 1, 0));
  // Episode 2 reuses buffer 0 but expects flag 3: the stale flag from
  // episode 0 does not satisfy it until the new put lands.
  EXPECT_FALSE(window.test(1, 2, 0));
  window.put(0, 1, 2, 0);
  EXPECT_TRUE(window.test(1, 2, 0));
}

TEST(RmaExecutor, FullyOneSidedBarrierSynchronizes) {
  Schedule schedule = dissemination_barrier(6);
  tag_all(schedule);
  const ScheduleExecutor executor(schedule);
  const auto exits = executor.run_once();
  EXPECT_EQ(exits.size(), 6u);
  // The paper's delay-injection check: a late rank delays every exit.
  const auto delayed = executor.run_once(
      simmpi::uniform_latency(),
      {30ms, 0ms, 0ms, 0ms, 0ms, 0ms});
  for (const auto exit : delayed) {
    EXPECT_GE(exit, 30ms);
  }
}

TEST(RmaExecutor, MixedTransportEpisodeSynchronizes) {
  Schedule schedule = dissemination_barrier(6);
  // Stage 0 travels one-sided, later stages stay two-sided: both
  // mechanisms must interlock within one episode.
  schedule.set_transport(0, schedule.stage(0));
  const ScheduleExecutor executor(schedule);
  const auto delayed = executor.run_once(
      simmpi::uniform_latency(),
      {0ms, 0ms, 0ms, 30ms, 0ms, 0ms});
  ASSERT_EQ(delayed.size(), 6u);
  for (const auto exit : delayed) {
    EXPECT_GE(exit, 30ms);
  }
}

TEST(RmaExecutor, ThousandEpisodeEpochReuseOnPooledRanks) {
  // 1000 back-to-back episodes on ONE communicator, pooled rank
  // workers, no reset barrier between episodes: the double-buffered
  // epochs must never let a stale flag complete a later episode (a
  // stale-flag bug shows up as an early exit that deadlocks a peer or
  // trips the executor's asserts).
  const std::size_t p = 4;
  Schedule schedule = dissemination_barrier(p);
  tag_all(schedule);
  const ScheduleExecutor executor(schedule);
  Communicator comm(p, zero_latency());
  simmpi::RankPool pool(p);
  simmpi::run_ranks(pool, comm, [&](RankContext& ctx) {
    for (int episode = 0; episode < 1000; ++episode) {
      executor.execute(ctx, episode);
    }
  });
  EXPECT_EQ(comm.unmatched_operations(), 0u);
}

TEST(RmaExecutor, HandleLifecycleOverRmaEdges) {
  // post/test/wait across mixed transports: episode 0 polled to
  // completion with test(), episode 1 parked out with wait().
  Schedule schedule = dissemination_barrier(4);
  schedule.set_transport(1, schedule.stage(1));
  const ScheduleExecutor executor(schedule);
  Communicator comm(4, zero_latency());
  simmpi::run_ranks(comm, [&](RankContext& ctx) {
    ScheduleExecutor::EpisodeHandle polled = executor.post(ctx, 0);
    while (!executor.test(polled)) {
      std::this_thread::yield();
    }
    EXPECT_TRUE(polled.done());
    ScheduleExecutor::EpisodeHandle parked = executor.post(ctx, 1);
    executor.wait(parked);
    EXPECT_TRUE(parked.done());
  });
  EXPECT_EQ(comm.unmatched_operations(), 0u);
}

TEST(RmaExecutor, DroppedPutSurfacesOnTheReceiver) {
  const std::size_t p = 6;
  Schedule schedule = dissemination_barrier(p);
  tag_edge(schedule, 0, 0, 1);
  const ScheduleExecutor executor(schedule);
  FaultPlan plan;
  plan.putdrops.push_back({0, 1, 0, 1.0, 0.0});
  const StallReport report =
      executor.run_once_resilient(fast_options(), plan);
  EXPECT_TRUE(report.stalled);
  EXPECT_TRUE(report.names_edge(0, 0, 1));
  const simmpi::RankStall& victim = report.per_rank[1];
  EXPECT_FALSE(victim.finished);
  EXPECT_EQ(victim.stage_reached, 0u);
  ASSERT_EQ(victim.pending_put_from.size(), 1u);
  EXPECT_EQ(victim.pending_put_from[0], 0u);
  // The fire-and-forget sender has nothing pending: it completed at
  // issue and never learns of the drop.
  EXPECT_TRUE(report.per_rank[0].pending_send_to.empty());
  // The human rendering points at the one-sided flag.
  EXPECT_NE(report.describe().find("one-sided flag"), std::string::npos);
}

TEST(RmaExecutor, PutdropReportsAreBitReproducible) {
  Schedule schedule = dissemination_barrier(6);
  tag_all(schedule);
  const ScheduleExecutor executor(schedule);
  const FaultPlan plan = FaultPlan::parse("seed=11;putdrop=*>*@*:0.4");
  const ResilienceOptions options = fast_options();
  const StallReport first = executor.run_once_resilient(options, plan);
  const StallReport second = executor.run_once_resilient(options, plan);
  EXPECT_EQ(first, second);
  EXPECT_TRUE(first.stalled);
}

TEST(RmaTransport, PolicyNamesRoundTrip) {
  for (const rma::Transport t :
       {rma::Transport::kTwoSided, rma::Transport::kOneSided,
        rma::Transport::kHybrid}) {
    EXPECT_EQ(rma::parse_transport(rma::transport_name(t)), t);
  }
  EXPECT_THROW(rma::parse_transport("carrier-pigeon"), Error);
}

TEST(RmaTransport, TwoSidedAssignmentIsBitIdenticalToClassic) {
  const MachineSpec m = quad_cluster(2);
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, 8), GenerateOptions{});
  Schedule schedule = dissemination_barrier(8);
  const std::vector<bool> awaited(schedule.stage_count(), true);
  PredictOptions predict;
  predict.awaited_stages = awaited;
  const double classic = predicted_time(schedule, profile, predict);
  const double assigned = rma::assign_transports(
      schedule, profile, awaited, rma::Transport::kTwoSided);
  EXPECT_EQ(assigned, classic);  // bit-identical, not approximately
  EXPECT_FALSE(schedule.has_one_sided());
}

TEST(RmaTransport, HybridIsNeverWorseThanEitherUniform) {
  const MachineSpec m = hex_cluster(2);
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, 12), GenerateOptions{});
  const Schedule base = dissemination_barrier(12);
  const std::vector<bool> awaited(base.stage_count(), true);
  Schedule two = base;
  Schedule one = base;
  Schedule hybrid = base;
  const double two_cost =
      rma::assign_transports(two, profile, awaited, rma::Transport::kTwoSided);
  const double one_cost =
      rma::assign_transports(one, profile, awaited, rma::Transport::kOneSided);
  const double hybrid_cost = rma::assign_transports(
      hybrid, profile, awaited, rma::Transport::kHybrid);
  EXPECT_LE(hybrid_cost, two_cost);
  EXPECT_LE(hybrid_cost, one_cost);
}

TEST(RmaTransport, ProfileWithoutRDataStaysTwoSided) {
  // A flat profile without R data prices puts at the conservative L
  // fallback and gains nothing from the startup swap (O is uniform),
  // so the enumeration's simplest-policy tie-break must return the
  // untagged schedule, bit-identical to plain tune_barrier().
  Matrix<double> o(4, 4);
  Matrix<double> l(4, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      o(i, j) = 1e-6;
      l(i, j) = i == j ? 0.0 : 1e-6;
    }
  }
  const TopologyProfile flat(std::move(o), std::move(l));
  ASSERT_FALSE(flat.has_rma_latency());
  const rma::TransportTune best = rma::tune_best_transport(flat, {});
  EXPECT_EQ(best.transport, rma::Transport::kTwoSided);
  EXPECT_EQ(best.one_sided_signals, 0u);
  EXPECT_EQ(best.cost, best.tuned.predicted_cost());  // bit-identical
  EXPECT_FALSE(best.schedule.has_one_sided());
}

TEST(RmaTransport, HybridBeatsClassicOnHexPreset) {
  // The acceptance sweep: on the hex preset the tuner must find a
  // genuinely mixed schedule whose predicted cost beats the best
  // all-two-sided schedule, and netsim must agree on the ordering.
  const MachineSpec m = hex_cluster(4);
  const std::size_t p = m.total_cores();
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, p), GenerateOptions{});
  ASSERT_TRUE(profile.has_rma_latency());
  const rma::TransportTune best = rma::tune_best_transport(profile, {});
  EXPECT_LT(best.cost, best.tuned.predicted_cost());
  // Mixed, not uniform: some signals stay two-sided (intra-node, where
  // the loopback put round loses to shared-memory completion) and some
  // go one-sided (inter-node RDMA).
  EXPECT_GT(best.one_sided_signals, 0u);
  std::size_t total_signals = 0;
  for (std::size_t s = 0; s < best.schedule.stage_count(); ++s) {
    total_signals += best.schedule.stage(s).count_nonzero();
  }
  EXPECT_LT(best.one_sided_signals, total_signals);

  // Both netsim engines agree with the predictor's ordering and with
  // each other, bit for bit.
  const TopologyProfile& tuned_profile = best.tuned.profile();
  const SimOptions options;
  const SimResult classic =
      simulate(best.tuned.schedule(), tuned_profile, options);
  const SimResult hybrid = simulate(best.schedule, tuned_profile, options);
  EXPECT_LT(hybrid.completion_time(), classic.completion_time());
  const SimResult hybrid_ref =
      simulate_reference(best.schedule, tuned_profile, options);
  ASSERT_EQ(hybrid.completion.size(), hybrid_ref.completion.size());
  for (std::size_t rank = 0; rank < hybrid.completion.size(); ++rank) {
    EXPECT_EQ(hybrid.completion[rank], hybrid_ref.completion[rank]) << rank;
  }
}

}  // namespace
}  // namespace optibar
