// Tests for the table/CSV printer used by the figure benches.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace optibar {
namespace {

TEST(Table, RequiresHeaders) { EXPECT_THROW(Table({}), Error); }

TEST(Table, RejectsWrongArityRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), Error);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), Error);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"P", "time"});
  t.add_row({"2", "0.5"});
  t.add_row({"100", "12.25"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, separator, two rows.
  EXPECT_NE(out.find("P"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("100"), std::string::npos);
  EXPECT_NE(out.find("12.25"), std::string::npos);
  // Four lines exactly.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, CsvOutputIsCommaSeparated) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, CsvQuotesCellsWithCommas) {
  Table t({"name"});
  t.add_row({"a,b"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "name\n\"a,b\"\n");
}

TEST(Table, NumFormatsFixedPrecision) {
  EXPECT_EQ(Table::num(1.5, 2), "1.50");
  EXPECT_EQ(Table::num(0.000123456, 6), "0.000123");
  EXPECT_EQ(Table::num(std::size_t{42}), "42");
}

TEST(Table, RowCountTracksAdds) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace optibar
