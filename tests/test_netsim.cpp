// Tests for the discrete-event barrier engine: determinism, agreement
// with the analytic model in degenerate cases, synchronized-send
// coupling, noise behaviour, and the paper's delay-injection
// synchronization check (Section VI).
#include "netsim/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <algorithm>

#include "barrier/algorithms.hpp"
#include "barrier/cost_model.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace optibar {
namespace {

TopologyProfile uniform_profile(std::size_t p, double o, double l) {
  Matrix<double> om(p, p, o);
  Matrix<double> lm(p, p, l);
  for (std::size_t i = 0; i < p; ++i) {
    om(i, i) = o / 10;
    lm(i, i) = 0.0;
  }
  return TopologyProfile(std::move(om), std::move(lm));
}

TEST(Netsim, SingleRankCompletesInstantly) {
  const SimResult r = simulate(Schedule(1), uniform_profile(1, 1e-5, 1e-6));
  EXPECT_DOUBLE_EQ(r.barrier_time(), 0.0);
}

TEST(Netsim, SingleSignalTakesO) {
  const TopologyProfile p = uniform_profile(2, 1e-5, 1e-6);
  Schedule s(2);
  StageMatrix m0(2, 2, 0);
  m0(1, 0) = 1;
  StageMatrix m1(2, 2, 0);
  m1(0, 1) = 1;
  s.append_stage(std::move(m0));
  s.append_stage(std::move(m1));
  const SimResult r = simulate(s, p);
  // Two sequential one-message hops, each costing O (injection)
  // plus L (receive completion processing).
  EXPECT_DOUBLE_EQ(r.barrier_time(), 2 * 1.1e-5);
}

TEST(Netsim, SerialInjectionAddsLPerExtraMessage) {
  const TopologyProfile p = uniform_profile(4, 1e-5, 1e-6);
  // Rank 0 fans out to 1,2,3 in a single stage; rank 3's signal is
  // injected at O + 2L.
  Schedule s(4);
  StageMatrix m(4, 4, 0);
  m(0, 1) = m(0, 2) = m(0, 3) = 1;
  s.append_stage(std::move(m));
  SimOptions opts;
  opts.record_trace = true;
  const SimResult r = simulate(s, p, opts);
  // Last injection at O + 2L, plus that receiver's processing L.
  EXPECT_DOUBLE_EQ(r.barrier_time(), 1e-5 + 3e-6);
  ASSERT_EQ(r.trace.size(), 3u);
  EXPECT_DOUBLE_EQ(r.trace[0].injected, 1e-5);
  EXPECT_DOUBLE_EQ(r.trace[1].injected, 1.1e-5);
  EXPECT_DOUBLE_EQ(r.trace[2].injected, 1.2e-5);
  // Each match completes one processing latency after its injection.
  EXPECT_DOUBLE_EQ(r.trace[0].matched, 1.1e-5);
}

TEST(Netsim, DeterministicForFixedSeed) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile p =
      generate_profile(m, round_robin_mapping(m, 24), GenerateOptions{});
  SimOptions opts;
  opts.jitter = 0.1;
  opts.seed = 1234;
  const Schedule s = tree_barrier(24);
  const SimResult a = simulate(s, p, opts);
  const SimResult b = simulate(s, p, opts);
  EXPECT_EQ(a.completion, b.completion);
}

TEST(Netsim, DifferentSeedsDifferUnderNoise) {
  const TopologyProfile p = uniform_profile(8, 1e-5, 1e-6);
  SimOptions a;
  a.jitter = 0.1;
  a.seed = 1;
  SimOptions b = a;
  b.seed = 2;
  const Schedule s = dissemination_barrier(8);
  EXPECT_NE(simulate(s, p, a).barrier_time(),
            simulate(s, p, b).barrier_time());
}

TEST(Netsim, NoNoiseMeansNoiseOptionsIrrelevant) {
  const TopologyProfile p = uniform_profile(8, 1e-5, 1e-6);
  const Schedule s = tree_barrier(8);
  SimOptions a;
  a.seed = 1;
  SimOptions b;
  b.seed = 999;
  EXPECT_EQ(simulate(s, p, a).completion, simulate(s, p, b).completion);
}

class NetsimAlgorithms : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NetsimAlgorithms, AllRanksCompleteAllAlgorithms) {
  const std::size_t p = GetParam();
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, p), GenerateOptions{});
  for (const Schedule& s :
       {linear_barrier(p), dissemination_barrier(p), tree_barrier(p),
        pairwise_exchange_barrier(p), heap_tree_barrier(p)}) {
    const SimResult r = simulate(s, profile);
    ASSERT_EQ(r.completion.size(), p);
    for (double c : r.completion) {
      EXPECT_GT(c, 0.0);
      EXPECT_TRUE(std::isfinite(c));
    }
  }
}

TEST_P(NetsimAlgorithms, DelayInjectionShowsSynchronization) {
  // The paper's correctness check: delay one rank's entry by a large
  // constant; every rank's exit must then be >= that constant, because
  // no participant may leave before all have entered.
  const std::size_t p = GetParam();
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, p), GenerateOptions{});
  const double delay = 1.0;  // one virtual second, enormous vs link costs
  for (const Schedule& s :
       {linear_barrier(p), dissemination_barrier(p), tree_barrier(p)}) {
    for (std::size_t late = 0; late < p; ++late) {
      SimOptions opts;
      opts.entry_times.assign(p, 0.0);
      opts.entry_times[late] = delay;
      const SimResult r = simulate(s, profile, opts);
      for (std::size_t rank = 0; rank < p; ++rank) {
        EXPECT_GE(r.completion[rank], delay)
            << "rank " << rank << " left before late rank " << late
            << " arrived (P=" << p << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankSweep, NetsimAlgorithms,
                         ::testing::Values(2, 3, 4, 7, 8, 12, 16));

TEST(Netsim, MeasuredTracksPredictedShape) {
  // The fine model and the coarse model must agree on ordering for the
  // classic algorithms at scale (this is Figures 5/6's core claim).
  const MachineSpec m = quad_cluster();
  const std::size_t p = 56;
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, p), GenerateOptions{});
  const double sim_linear = simulate(linear_barrier(p), profile).barrier_time();
  const double sim_tree = simulate(tree_barrier(p), profile).barrier_time();
  const double pred_linear = predicted_time(linear_barrier(p), profile);
  const double pred_tree = predicted_time(tree_barrier(p), profile);
  EXPECT_LT(sim_tree, sim_linear);
  EXPECT_LT(pred_tree, pred_linear);
}

TEST(Netsim, SynchronousSendsCoupleSenderToReceiver) {
  // With Issend semantics a sender cannot finish a stage before its
  // receiver has entered it; with eager sends it can.
  const TopologyProfile p = uniform_profile(3, 1e-5, 1e-6);
  // Stage 0: 1 -> 2 (slowly: rank 2 enters late). Rank 0 idles.
  // Stage 1: 1 -> 0.
  Schedule s(3);
  StageMatrix m0(3, 3, 0);
  m0(1, 2) = 1;
  m0(2, 1) = 1;
  StageMatrix m1(3, 3, 0);
  m1(1, 0) = 1;
  m1(0, 1) = 1;
  s.append_stage(std::move(m0));
  s.append_stage(std::move(m1));
  SimOptions sync;
  sync.entry_times = {0.0, 0.0, 5e-4};
  sync.synchronous_sends = true;
  SimOptions eager = sync;
  eager.synchronous_sends = false;
  const SimResult rs = simulate(s, p, sync);
  const SimResult re = simulate(s, p, eager);
  // Rank 1 is blocked on rank 2's late entry either way (it must also
  // receive), but rank 0's completion differs: under eager sends rank
  // 1's stage-1 message to 0 is not gated by matching.
  EXPECT_GE(rs.completion[0], 5e-4);
  EXPECT_GE(re.completion[1], 5e-4);
}

TEST(Netsim, SpikesOnlyIncreaseTime) {
  const TopologyProfile p = uniform_profile(16, 1e-5, 1e-6);
  const Schedule s = dissemination_barrier(16);
  const double base = simulate(s, p).barrier_time();
  SimOptions spiky;
  spiky.spike_probability = 0.2;
  spiky.spike_scale = 10.0;
  spiky.seed = 5;
  EXPECT_GT(simulate(s, p, spiky).barrier_time(), base);
}

TEST(Netsim, MeanOverRepetitionsIsStable) {
  const TopologyProfile p = uniform_profile(8, 1e-5, 1e-6);
  const Schedule s = tree_barrier(8);
  SimOptions opts;
  opts.jitter = 0.05;
  const double mean1 = simulate_mean_time(s, p, opts, 25);
  const double mean2 = simulate_mean_time(s, p, opts, 25);
  EXPECT_DOUBLE_EQ(mean1, mean2);  // derived seeds are deterministic
  const double base = simulate(s, p).barrier_time();
  EXPECT_NEAR(mean1, base, 0.2 * base);
}

TEST(Netsim, RejectsInvalidOptions) {
  const TopologyProfile p = uniform_profile(2, 1e-5, 1e-6);
  Schedule s(2);
  SimOptions bad_jitter;
  bad_jitter.jitter = -0.1;
  EXPECT_THROW(simulate(s, p, bad_jitter), Error);
  SimOptions bad_spike;
  bad_spike.spike_probability = 1.5;
  EXPECT_THROW(simulate(s, p, bad_spike), Error);
  SimOptions bad_entries;
  bad_entries.entry_times = {0.0};
  EXPECT_THROW(simulate(s, p, bad_entries), Error);
  EXPECT_THROW(simulate_mean_time(s, p, SimOptions{}, 0), Error);
}

TEST(NetsimContention, EgressSerializesCoLocatedRemoteSenders) {
  // Two ranks on resource 0 both send to ranks on resource 1 in one
  // stage; with contention their remote messages serialize through the
  // shared egress, so completion is later than without.
  const TopologyProfile p = uniform_profile(4, 1e-5, 4e-6);
  Schedule s(4);
  StageMatrix m0(4, 4, 0);
  m0(0, 2) = 1;
  m0(1, 3) = 1;
  StageMatrix m1(4, 4, 0);
  m1(2, 0) = 1;
  m1(3, 1) = 1;
  s.append_stage(std::move(m0));
  s.append_stage(std::move(m1));
  SimOptions contended;
  contended.egress_resource_of = {0, 0, 1, 1};
  const double with_contention = simulate(s, p, contended).barrier_time();
  const double without = simulate(s, p).barrier_time();
  EXPECT_GT(with_contention, without);
}

TEST(NetsimContention, LocalMessagesDoNotContend) {
  // Same-resource messages bypass the egress entirely.
  const TopologyProfile p = uniform_profile(4, 1e-5, 4e-6);
  Schedule s(4);
  StageMatrix m0(4, 4, 0);
  m0(0, 1) = 1;
  m0(2, 3) = 1;
  StageMatrix m1(4, 4, 0);
  m1(1, 0) = 1;
  m1(3, 2) = 1;
  s.append_stage(std::move(m0));
  s.append_stage(std::move(m1));
  SimOptions contended;
  contended.egress_resource_of = {0, 0, 0, 0};
  EXPECT_DOUBLE_EQ(simulate(s, p, contended).barrier_time(),
                   simulate(s, p).barrier_time());
}

TEST(NetsimContention, PunishesHighFanOutAlgorithms) {
  // The physical argument for the hybrid's win on GbE clusters: under
  // per-node egress contention, dissemination (every rank sending
  // remotely at once) degrades more than the tree (few senders/stage).
  const MachineSpec m = quad_cluster();
  const std::size_t p = 32;
  const Mapping mapping = round_robin_mapping(m, p);
  const TopologyProfile profile = generate_profile(m, mapping);
  SimOptions contended;
  contended.egress_resource_of = node_egress_resources(m, mapping);
  auto penalty = [&](const Schedule& s) {
    return simulate(s, profile, contended).barrier_time() /
           simulate(s, profile).barrier_time();
  };
  EXPECT_GT(penalty(dissemination_barrier(p)), penalty(tree_barrier(p)));
}

TEST(NetsimContention, DelayInjectionStillSynchronizes) {
  const MachineSpec m = quad_cluster();
  const std::size_t p = 12;
  const Mapping mapping = round_robin_mapping(m, p);
  const TopologyProfile profile = generate_profile(m, mapping);
  SimOptions opts;
  opts.egress_resource_of = node_egress_resources(m, mapping);
  opts.entry_times.assign(p, 0.0);
  opts.entry_times[5] = 1.0;
  const SimResult r = simulate(dissemination_barrier(p), profile, opts);
  for (double c : r.completion) {
    EXPECT_GE(c, 1.0);
  }
}

TEST(NetsimContention, ResourceMapMismatchThrows) {
  const TopologyProfile p = uniform_profile(4, 1e-5, 1e-6);
  SimOptions bad;
  bad.egress_resource_of = {0, 1};
  EXPECT_THROW(simulate(tree_barrier(4), p, bad), Error);
}

TEST(NetsimContention, NodeEgressResourcesFollowMapping) {
  const MachineSpec m = quad_cluster();
  const Mapping mapping = round_robin_mapping(m, 10);
  const auto resources = node_egress_resources(m, mapping);
  ASSERT_EQ(resources.size(), 10u);
  for (std::size_t rank = 0; rank < 10; ++rank) {
    EXPECT_EQ(resources[rank], rank % 2);  // 2 nodes, dealt round-robin
  }
}

TEST(Workload, SingleEpisodeMatchesPlainSimulation) {
  const MachineSpec m = quad_cluster(2);
  const TopologyProfile profile = generate_profile(m, 12);
  const Schedule s = tree_barrier(12);
  WorkloadOptions options;
  options.episodes = 1;
  options.compute_mean = 0.0;
  options.compute_stddev = 0.0;
  const WorkloadResult w = simulate_workload(s, profile, options);
  ASSERT_EQ(w.episode_barrier_times.size(), 1u);
  EXPECT_DOUBLE_EQ(w.episode_barrier_times[0],
                   simulate(s, profile).barrier_time());
}

TEST(Workload, EpisodesChainThroughCompletionTimes) {
  const MachineSpec m = quad_cluster(2);
  const TopologyProfile profile = generate_profile(m, 8);
  const Schedule s = dissemination_barrier(8);
  WorkloadOptions options;
  options.episodes = 5;
  options.compute_mean = 1e-4;
  options.compute_stddev = 0.0;
  const WorkloadResult w = simulate_workload(s, profile, options);
  // Makespan >= episodes * (compute + one barrier span).
  const double one_barrier = simulate(s, profile).barrier_time();
  EXPECT_GE(w.makespan, 5 * (1e-4 + one_barrier) - 1e-12);
  EXPECT_EQ(w.episode_barrier_times.size(), 5u);
}

TEST(Workload, SkewInflatesWaitNotSpan) {
  // Arrival skew makes *early* ranks wait for stragglers, so the total
  // per-rank wait grows with skew. The span (last entry to last exit)
  // does not grow — a straggler arrives into a barrier whose arrival
  // phase has already progressed, so the residual critical path can
  // even shrink (the situation Eq. 2 models).
  const MachineSpec m = quad_cluster();
  const std::size_t p = 24;
  const TopologyProfile profile =
      generate_profile(m, round_robin_mapping(m, p), GenerateOptions{});
  const Schedule s = tree_barrier(p);
  auto workload = [&](double stddev) {
    WorkloadOptions options;
    options.episodes = 20;
    options.compute_mean = 3e-4;
    options.compute_stddev = stddev;
    options.sim.seed = 7;
    return simulate_workload(s, profile, options);
  };
  const WorkloadResult flat = workload(0.0);
  const WorkloadResult skewed = workload(2e-4);
  EXPECT_GT(skewed.total_wait(), 1.5 * flat.total_wait());
  EXPECT_LT(skewed.mean_barrier_time(), 2.0 * flat.mean_barrier_time());
}

TEST(Workload, DeterministicForFixedSeed) {
  const MachineSpec m = quad_cluster(2);
  const TopologyProfile profile = generate_profile(m, 8);
  const Schedule s = tree_barrier(8);
  WorkloadOptions options;
  options.episodes = 8;
  options.compute_stddev = 5e-5;
  options.sim.jitter = 0.05;
  const WorkloadResult a = simulate_workload(s, profile, options);
  const WorkloadResult b = simulate_workload(s, profile, options);
  EXPECT_EQ(a.episode_barrier_times, b.episode_barrier_times);
  EXPECT_EQ(a.rank_wait_total, b.rank_wait_total);
}

TEST(Workload, RejectsBadOptions) {
  const MachineSpec m = quad_cluster(1);
  const TopologyProfile profile = generate_profile(m, 4);
  const Schedule s = tree_barrier(4);
  WorkloadOptions zero;
  zero.episodes = 0;
  EXPECT_THROW(simulate_workload(s, profile, zero), Error);
  WorkloadOptions negative;
  negative.compute_mean = -1.0;
  EXPECT_THROW(simulate_workload(s, profile, negative), Error);
  WorkloadOptions with_entries;
  with_entries.sim.entry_times.assign(4, 0.0);
  EXPECT_THROW(simulate_workload(s, profile, with_entries), Error);
}

TEST(Workload, WaitTotalsAreNonNegativeAndConsistent) {
  const MachineSpec m = quad_cluster(2);
  const TopologyProfile profile = generate_profile(m, 16);
  WorkloadOptions options;
  options.episodes = 10;
  options.compute_stddev = 1e-4;
  const WorkloadResult w =
      simulate_workload(dissemination_barrier(16), profile, options);
  for (double wait : w.rank_wait_total) {
    EXPECT_GE(wait, 0.0);
  }
  EXPECT_GT(w.total_wait(), 0.0);
}

TEST(Workload, ComposesWithContentionAndNoise) {
  // All engine features at once: multi-episode workload with skew,
  // noise, and per-node egress contention — deterministic and sane.
  const MachineSpec m = quad_cluster();
  const std::size_t p = 24;
  const Mapping mapping = round_robin_mapping(m, p);
  const TopologyProfile profile = generate_profile(m, mapping);
  WorkloadOptions options;
  options.episodes = 10;
  options.compute_stddev = 1e-4;
  options.sim.jitter = 0.05;
  options.sim.egress_resource_of = node_egress_resources(m, mapping);
  const Schedule s = dissemination_barrier(p);
  const WorkloadResult a = simulate_workload(s, profile, options);
  const WorkloadResult b = simulate_workload(s, profile, options);
  EXPECT_EQ(a.episode_barrier_times, b.episode_barrier_times);
  // Contention must show up against the free-egress run.
  WorkloadOptions free_egress = options;
  free_egress.sim.egress_resource_of.clear();
  const WorkloadResult c = simulate_workload(s, profile, free_egress);
  EXPECT_GT(a.makespan, c.makespan);
}

TEST(Netsim, TraceCoversEverySignal) {
  const std::size_t p = 8;
  const TopologyProfile profile = uniform_profile(p, 1e-5, 1e-6);
  const Schedule s = tree_barrier(p);
  SimOptions opts;
  opts.record_trace = true;
  const SimResult r = simulate(s, profile, opts);
  EXPECT_EQ(r.trace.size(), s.total_signals());
  for (const MessageTrace& t : r.trace) {
    EXPECT_LE(t.injected, t.matched);
    EXPECT_EQ(s.stage(t.stage)(t.src, t.dst), 1);
  }
}

TEST(Netsim, MeanTimeIsInvariantToPoolWidth) {
  // Repetitions fan out across the pool but land in index-owned slots
  // and are summed in index order: the mean must be bit-identical with
  // no pool, a width-1 pool (inline path), and a wide pool.
  const MachineSpec m = quad_cluster(2);
  const TopologyProfile profile = generate_profile(m, 12);
  const Schedule s = dissemination_barrier(12);
  SimOptions options;
  options.jitter = 0.05;
  options.seed = 77;
  const std::size_t reps = 10;
  const double serial = simulate_mean_time(s, profile, options, reps);
  ThreadPool inline_pool(1);
  ThreadPool wide_pool(4);
  EXPECT_EQ(simulate_mean_time(s, profile, options, reps, &inline_pool),
            serial);
  EXPECT_EQ(simulate_mean_time(s, profile, options, reps, &wide_pool),
            serial);
}

TEST(Workload, RepsInvariantToPoolWidthAndAnchoredAtRepZero) {
  const MachineSpec m = quad_cluster(2);
  const TopologyProfile profile = generate_profile(m, 8);
  const Schedule s = tree_barrier(8);
  WorkloadOptions options;
  options.episodes = 6;
  options.compute_stddev = 5e-5;
  options.sim.jitter = 0.05;
  const std::size_t reps = 5;
  const std::vector<WorkloadResult> serial =
      simulate_workload_reps(s, profile, options, reps);
  ASSERT_EQ(serial.size(), reps);
  // Rep 0 is the plain simulate_workload run, verbatim.
  const WorkloadResult plain = simulate_workload(s, profile, options);
  EXPECT_EQ(serial[0].episode_barrier_times, plain.episode_barrier_times);
  EXPECT_EQ(serial[0].rank_wait_total, plain.rank_wait_total);
  EXPECT_EQ(serial[0].makespan, plain.makespan);
  // Later reps draw fresh seeds — they must differ from rep 0.
  EXPECT_NE(serial[1].episode_barrier_times, serial[0].episode_barrier_times);
  // The whole vector is pool-width invariant.
  ThreadPool wide_pool(4);
  const std::vector<WorkloadResult> pooled =
      simulate_workload_reps(s, profile, options, reps, &wide_pool);
  ASSERT_EQ(pooled.size(), reps);
  for (std::size_t rep = 0; rep < reps; ++rep) {
    EXPECT_EQ(pooled[rep].episode_barrier_times,
              serial[rep].episode_barrier_times)
        << "rep " << rep;
    EXPECT_EQ(pooled[rep].rank_wait_total, serial[rep].rank_wait_total)
        << "rep " << rep;
    EXPECT_EQ(pooled[rep].makespan, serial[rep].makespan) << "rep " << rep;
  }
}

TEST(OverlapModel, DisabledModelIsBitIdentical) {
  // Leaving compute_after_post empty / poll 0 must leave every result
  // — and the RNG stream — identical to the plain engine.
  const TopologyProfile profile = uniform_profile(8, 1e-5, 1e-6);
  const Schedule s = dissemination_barrier(8);
  SimOptions plain;
  plain.jitter = 0.04;
  plain.seed = 77;
  SimOptions modeled = plain;
  modeled.compute_after_post = {};  // explicit no-op
  modeled.progress_poll_interval = 0.0;
  EXPECT_EQ(simulate(s, profile, plain).completion,
            simulate(s, profile, modeled).completion);
}

TEST(OverlapModel, PollTicksDeferStageTransitions) {
  // With compute windows and a coarse poll interval, every transition
  // inside the window rounds up to a tick, so completion can only grow.
  const TopologyProfile profile = uniform_profile(6, 1e-5, 1e-6);
  const Schedule s = tree_barrier(6);
  SimOptions plain;
  const SimResult base = simulate(s, profile, plain);
  SimOptions polled = plain;
  polled.compute_after_post = std::vector<double>(6, 5e-4);
  polled.progress_poll_interval = 1e-4;
  const SimResult deferred = simulate(s, profile, polled);
  EXPECT_FALSE(deferred.deadlocked);
  EXPECT_GE(deferred.completion_time(), base.completion_time());
}

TEST(OverlapModel, RejectsBadOptions) {
  const TopologyProfile profile = uniform_profile(4, 1e-5, 1e-6);
  const Schedule s = tree_barrier(4);
  SimOptions bad_size;
  bad_size.compute_after_post = {1e-4, 1e-4};  // 2 entries, 4 ranks
  bad_size.progress_poll_interval = 1e-5;
  EXPECT_THROW(simulate(s, profile, bad_size), Error);
  SimOptions no_poll;
  no_poll.compute_after_post = std::vector<double>(4, 1e-4);
  EXPECT_THROW(simulate(s, profile, no_poll), Error);  // poll required
  SimOptions negative;
  negative.compute_after_post = {1e-4, -1.0, 1e-4, 1e-4};
  negative.progress_poll_interval = 1e-5;
  EXPECT_THROW(simulate(s, profile, negative), Error);
}

TEST(Overlap, DeterministicAndPaired) {
  const MachineSpec m = quad_cluster(2);
  const TopologyProfile profile = generate_profile(m, 8);
  const Schedule s = dissemination_barrier(8);
  OverlapOptions options;
  options.compute_seconds = 5e-4;
  options.compute_stddev = 5e-5;
  options.sim.seed = 19;
  const OverlapResult a = simulate_overlap(s, profile, options);
  const OverlapResult b = simulate_overlap(s, profile, options);
  EXPECT_EQ(a.blocking_completion, b.blocking_completion);
  EXPECT_EQ(a.nonblocking_completion, b.nonblocking_completion);
  EXPECT_EQ(a.saved, b.saved);
  // saved is definitionally the paired difference.
  EXPECT_DOUBLE_EQ(a.saved,
                   a.blocking_completion - a.nonblocking_completion);
  EXPECT_GE(a.overlap_efficiency, 0.0);
  EXPECT_LE(a.overlap_efficiency, 1.0);
}

TEST(Overlap, ZeroRatioDegeneratesToBlocking) {
  const TopologyProfile profile = uniform_profile(6, 1e-5, 1e-6);
  const Schedule s = tree_barrier(6);
  OverlapOptions options;
  options.overlap_ratio = 0.0;
  options.compute_seconds = 3e-4;
  const OverlapResult result = simulate_overlap(s, profile, options);
  EXPECT_DOUBLE_EQ(result.nonblocking_completion,
                   result.blocking_completion);
  EXPECT_DOUBLE_EQ(result.saved, 0.0);
}

TEST(Overlap, FullOverlapHidesMostOfTheBarrier) {
  // With compute far larger than the barrier and everything after the
  // post, the barrier hides inside the compute window and the exposed
  // wait collapses to poll-latency scale.
  const TopologyProfile profile = uniform_profile(8, 1e-5, 1e-6);
  const Schedule s = dissemination_barrier(8);
  OverlapOptions options;
  options.compute_seconds = 5e-3;  // >> barrier time
  options.overlap_ratio = 1.0;
  options.poll_interval = 1e-5;
  const OverlapResult result = simulate_overlap(s, profile, options);
  EXPECT_GT(result.saved, 0.0);
  EXPECT_LT(result.exposed_wait,
            simulate(s, profile, options.sim).barrier_time());
}

TEST(Overlap, MeanAnchorsAtRepZeroAndIsPoolInvariant) {
  const MachineSpec m = quad_cluster(2);
  const TopologyProfile profile = generate_profile(m, 8);
  const Schedule s = tree_barrier(8);
  OverlapOptions options;
  options.compute_seconds = 4e-4;
  options.compute_stddev = 4e-5;
  options.sim.jitter = 0.03;
  options.sim.seed = 5;
  const OverlapResult single = simulate_overlap(s, profile, options);
  const OverlapResult one_rep =
      simulate_overlap_mean(s, profile, options, 1);
  EXPECT_EQ(one_rep.blocking_completion, single.blocking_completion);
  EXPECT_EQ(one_rep.nonblocking_completion, single.nonblocking_completion);
  const OverlapResult serial =
      simulate_overlap_mean(s, profile, options, 6);
  ThreadPool pool(4);
  const OverlapResult pooled =
      simulate_overlap_mean(s, profile, options, 6, &pool);
  EXPECT_EQ(pooled.blocking_completion, serial.blocking_completion);
  EXPECT_EQ(pooled.nonblocking_completion, serial.nonblocking_completion);
  EXPECT_EQ(pooled.exposed_wait, serial.exposed_wait);
  EXPECT_EQ(pooled.saved, serial.saved);
}

TEST(Overlap, RunnerOwnsTheModelFields) {
  const TopologyProfile profile = uniform_profile(4, 1e-5, 1e-6);
  const Schedule s = tree_barrier(4);
  OverlapOptions stolen;
  stolen.sim.compute_after_post = std::vector<double>(4, 1e-4);
  stolen.sim.progress_poll_interval = 1e-5;
  EXPECT_THROW(simulate_overlap(s, profile, stolen), Error);
  OverlapOptions entries;
  entries.sim.entry_times = std::vector<double>(4, 0.0);
  EXPECT_THROW(simulate_overlap(s, profile, entries), Error);
}

}  // namespace
}  // namespace optibar
