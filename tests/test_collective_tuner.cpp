// Collective tuning acceptance: on the hex-cluster preset at P = 12,
// 24 and 60 the tuned allreduce is never predicted worse than the best
// classic generator (it is the pool minimum by construction — this
// pins the invariant), and the deterministic netsim simulation agrees
// with the predicted ordering: the tuned schedule also simulates at
// least as fast as every classic, within a small cross-model tolerance.
#include "collective/tuner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "collective/generators.hpp"
#include "collective/predict.hpp"
#include "collective/simulate.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

TopologyProfile hex_profile(std::size_t p) {
  const MachineSpec machine = hex_cluster();
  return generate_profile(machine, round_robin_mapping(machine, p));
}

double simulated(const CollectiveSchedule& schedule,
                 const TopologyProfile& profile) {
  SimOptions options;  // jitter 0: fully deterministic
  return simulate_collective_mean_time(schedule, profile, options, 1);
}

TEST(CollectiveTuner, TunedAllreduceBeatsClassicsOnHex) {
  for (std::size_t p : {12u, 24u, 60u}) {
    const TopologyProfile profile = hex_profile(p);
    CollectiveTuneOptions options;
    options.op = CollectiveOp::kAllreduce;
    options.payload_bytes = 64 * 1024;
    const CollectiveTuneResult tuned = tune_collective(profile, options);
    SCOPED_TRACE("P=" + std::to_string(p) + " winner=" + tuned.name());

    ASSERT_TRUE(is_valid_collective(tuned.schedule()));
    // Predicted: tuned is the pool minimum, hence <= every classic.
    for (const CollectiveCandidate& cand : tuned.candidates()) {
      EXPECT_LE(tuned.predicted_cost(), cand.predicted_cost) << cand.name;
    }
    EXPECT_EQ(tuned.predicted_cost(),
              predicted_collective_time(tuned.schedule(), tuned.profile()));

    // Simulated: the independently-modelled netsim run must agree that
    // the tuned schedule is at least as fast as every classic (5%
    // cross-model slack).
    const double tuned_sim = simulated(tuned.schedule(), tuned.profile());
    for (const NamedCollective& classic :
         classic_collectives(CollectiveOp::kAllreduce, p, 0,
                             options.payload_bytes / 8, 8)) {
      const double classic_sim =
          simulated(classic.schedule, tuned.profile());
      EXPECT_LE(tuned_sim, classic_sim * 1.05) << classic.name;
    }
  }
}

TEST(CollectiveTuner, CandidateTableCoversClassicsAndHierarchies) {
  const TopologyProfile profile = hex_profile(24);
  CollectiveTuneOptions options;
  options.op = CollectiveOp::kAllreduce;
  options.payload_bytes = 4096;
  const CollectiveTuneResult tuned = tune_collective(profile, options);
  std::vector<std::string> names;
  for (const CollectiveCandidate& cand : tuned.candidates()) {
    names.push_back(cand.name);
  }
  for (const char* expected : {"recursive-doubling", "ring", "reduce-bcast",
                               "hier-reduce-bcast", "hier-rd-exchange"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  const std::string report = tuned.describe();
  EXPECT_NE(report.find("<- tuned"), std::string::npos);
  EXPECT_NE(report.find(tuned.name()), std::string::npos);
}

TEST(CollectiveTuner, RootedOpsKeepTheirRoot) {
  const TopologyProfile profile = hex_profile(12);
  for (CollectiveOp op : {CollectiveOp::kBroadcast, CollectiveOp::kReduce}) {
    CollectiveTuneOptions options;
    options.op = op;
    options.payload_bytes = 1024;
    options.root = 7;
    const CollectiveTuneResult tuned = tune_collective(profile, options);
    EXPECT_EQ(tuned.schedule().root(), 7u);
    EXPECT_TRUE(is_valid_collective(tuned.schedule()));
  }
}

TEST(CollectiveTuner, ZeroPayloadTunesASignalPattern) {
  const TopologyProfile profile = hex_profile(12);
  CollectiveTuneOptions options;
  options.op = CollectiveOp::kAllreduce;
  options.payload_bytes = 0;
  const CollectiveTuneResult tuned = tune_collective(profile, options);
  EXPECT_EQ(tuned.schedule().total_bytes(), 0u);
  EXPECT_GT(tuned.predicted_cost(), 0.0);
}

TEST(CollectiveTuner, ThreadedEngineMatchesSerial) {
  const TopologyProfile profile = hex_profile(24);
  CollectiveTuneOptions options;
  options.op = CollectiveOp::kAllreduce;
  options.payload_bytes = 8192;
  EngineOptions serial;
  serial.threads = 1;
  EngineOptions wide;
  wide.threads = 4;
  const CollectiveTuneResult a = tune_collective(profile, options, serial);
  const CollectiveTuneResult b = tune_collective(profile, options, wide);
  EXPECT_EQ(a.name(), b.name());
  EXPECT_EQ(a.predicted_cost(), b.predicted_cost());
  EXPECT_EQ(a.schedule(), b.schedule());
}

TEST(CollectiveTuner, RejectsBadOptions) {
  const TopologyProfile profile = hex_profile(12);
  CollectiveTuneOptions options;
  options.payload_bytes = 12;  // not a multiple of elem_bytes = 8
  EXPECT_THROW(tune_collective(profile, options), Error);
  options.payload_bytes = 16;
  options.op = CollectiveOp::kBroadcast;
  options.root = 12;  // out of range
  EXPECT_THROW(tune_collective(profile, options), Error);
  options.root = 0;
  options.elem_bytes = 0;
  EXPECT_THROW(tune_collective(profile, options), Error);
}

}  // namespace
}  // namespace optibar
