// Tests for schedule serialisation.
#include "barrier/schedule_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "barrier/algorithms.hpp"
#include "core/tuner.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "util/error.hpp"

namespace optibar {
namespace {

TEST(ScheduleIo, RoundTripsClassicBarrier) {
  StoredSchedule original;
  original.schedule = tree_barrier(12);
  std::stringstream ss;
  save_schedule(ss, original);
  const StoredSchedule loaded = load_schedule(ss);
  EXPECT_EQ(loaded.schedule, original.schedule);
  ASSERT_EQ(loaded.awaited_stages.size(), original.schedule.stage_count());
  for (bool flag : loaded.awaited_stages) {
    EXPECT_FALSE(flag);
  }
}

TEST(ScheduleIo, RoundTripsAwaitedFlags) {
  const MachineSpec m = quad_cluster();
  const TopologyProfile profile = generate_profile(m, 24);
  const TuneResult tuned = tune_barrier(profile);
  StoredSchedule original;
  original.schedule = tuned.schedule();
  original.awaited_stages = tuned.barrier().awaited_stages;
  std::stringstream ss;
  save_schedule(ss, original);
  const StoredSchedule loaded = load_schedule(ss);
  EXPECT_EQ(loaded.schedule, original.schedule);
  EXPECT_EQ(loaded.awaited_stages, original.awaited_stages);
  EXPECT_TRUE(loaded.schedule.is_barrier());
}

TEST(ScheduleIo, RoundTripsEmptySchedule) {
  StoredSchedule original;
  original.schedule = Schedule(3);
  std::stringstream ss;
  save_schedule(ss, original);
  const StoredSchedule loaded = load_schedule(ss);
  EXPECT_EQ(loaded.schedule.ranks(), 3u);
  EXPECT_EQ(loaded.schedule.stage_count(), 0u);
}

TEST(ScheduleIo, FileRoundTrip) {
  const auto path =
      std::filesystem::temp_directory_path() / "optibar_schedule.txt";
  StoredSchedule original;
  original.schedule = dissemination_barrier(9);
  save_schedule_file(path.string(), original);
  const StoredSchedule loaded = load_schedule_file(path.string());
  EXPECT_EQ(loaded.schedule, original.schedule);
  std::remove(path.string().c_str());
}

TEST(ScheduleIo, UntaggedSchedulesEmitV1Verbatim) {
  // The empty-RMA bit-identity contract: a schedule with no one-sided
  // edges must serialise exactly as a pre-RMA build would — v1 header,
  // no T matrices — so old readers and golden files keep working.
  StoredSchedule stored;
  stored.schedule = dissemination_barrier(4);
  std::stringstream ss;
  save_schedule(ss, stored);
  const std::string text = ss.str();
  EXPECT_NE(text.find("optibar-schedule v1\n"), std::string::npos);
  EXPECT_EQ(text.find("T0"), std::string::npos);
}

TEST(ScheduleIo, RoundTripsTransportTags) {
  StoredSchedule original;
  original.schedule = dissemination_barrier(6);
  // Mixed: stage 0 fully one-sided, stage 1 one edge, stage 2 none.
  original.schedule.set_transport(0, original.schedule.stage(0));
  StageMatrix partial(6, 6, 0);
  bool tagged = false;
  for (std::size_t i = 0; i < 6 && !tagged; ++i) {
    for (std::size_t j = 0; j < 6 && !tagged; ++j) {
      if (original.schedule.stage(1)(i, j)) {
        partial(i, j) = 1;  // exactly one edge
        tagged = true;
      }
    }
  }
  original.schedule.set_transport(1, std::move(partial));
  std::stringstream ss;
  save_schedule(ss, original);
  EXPECT_NE(ss.str().find("optibar-schedule v2\n"), std::string::npos);
  const StoredSchedule loaded = load_schedule(ss);
  EXPECT_EQ(loaded.schedule, original.schedule);
  EXPECT_TRUE(loaded.schedule.has_one_sided());
  EXPECT_EQ(loaded.schedule.one_sided_signal_count(),
            original.schedule.one_sided_signal_count());
}

TEST(ScheduleIo, RejectsTransportEdgeWithoutSignal) {
  // A v2 transport cell without a matching stage signal is a
  // corrupted file, not a silently-ignored tag.
  std::stringstream ss(
      "optibar-schedule v2\nP 2\nstages 1\nawaited 0\n"
      "S0\n0 1\n0 0\nT0\n0 0\n1 0\n");
  EXPECT_THROW(load_schedule(ss), Error);
}

TEST(ScheduleIo, RejectsMalformedInput) {
  {
    std::stringstream ss("wrong-magic v1\n");
    EXPECT_THROW(load_schedule(ss), Error);
  }
  {
    std::stringstream ss("optibar-schedule v2\nP 2\n");
    EXPECT_THROW(load_schedule(ss), Error);
  }
  {
    // Awaited flag out of 0/1.
    std::stringstream ss(
        "optibar-schedule v1\nP 2\nstages 1\nawaited 7\nS0\n0 1\n0 0\n");
    EXPECT_THROW(load_schedule(ss), Error);
  }
  {
    // Stage cell out of 0/1.
    std::stringstream ss(
        "optibar-schedule v1\nP 2\nstages 1\nawaited 0\nS0\n0 2\n0 0\n");
    EXPECT_THROW(load_schedule(ss), Error);
  }
  {
    // Self-signal rejected by Schedule validation.
    std::stringstream ss(
        "optibar-schedule v1\nP 2\nstages 1\nawaited 0\nS0\n1 0\n0 0\n");
    EXPECT_THROW(load_schedule(ss), Error);
  }
}

TEST(ScheduleIo, RejectsMismatchedAwaitedArity) {
  StoredSchedule bad;
  bad.schedule = tree_barrier(4);
  bad.awaited_stages = {true};  // 4 stages, 1 flag
  std::stringstream ss;
  EXPECT_THROW(save_schedule(ss, bad), Error);
}

TEST(ScheduleIo, MissingFileThrows) {
  EXPECT_THROW(load_schedule_file("/nonexistent/schedule.txt"), Error);
}

}  // namespace
}  // namespace optibar
