# Empty dependencies file for optibar.
# This may be replaced when dependencies are built.
