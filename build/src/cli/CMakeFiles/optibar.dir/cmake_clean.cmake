file(REMOVE_RECURSE
  "CMakeFiles/optibar.dir/main.cpp.o"
  "CMakeFiles/optibar.dir/main.cpp.o.d"
  "optibar"
  "optibar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optibar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
