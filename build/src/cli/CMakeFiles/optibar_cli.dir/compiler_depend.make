# Empty compiler generated dependencies file for optibar_cli.
# This may be replaced when dependencies are built.
