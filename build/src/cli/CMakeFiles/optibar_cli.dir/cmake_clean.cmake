file(REMOVE_RECURSE
  "CMakeFiles/optibar_cli.dir/args.cpp.o"
  "CMakeFiles/optibar_cli.dir/args.cpp.o.d"
  "CMakeFiles/optibar_cli.dir/cli.cpp.o"
  "CMakeFiles/optibar_cli.dir/cli.cpp.o.d"
  "liboptibar_cli.a"
  "liboptibar_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optibar_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
