file(REMOVE_RECURSE
  "liboptibar_cli.a"
)
