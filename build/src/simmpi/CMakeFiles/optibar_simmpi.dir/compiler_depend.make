# Empty compiler generated dependencies file for optibar_simmpi.
# This may be replaced when dependencies are built.
