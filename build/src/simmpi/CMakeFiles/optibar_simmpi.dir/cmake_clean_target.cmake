file(REMOVE_RECURSE
  "liboptibar_simmpi.a"
)
