file(REMOVE_RECURSE
  "CMakeFiles/optibar_simmpi.dir/communicator.cpp.o"
  "CMakeFiles/optibar_simmpi.dir/communicator.cpp.o.d"
  "CMakeFiles/optibar_simmpi.dir/executor.cpp.o"
  "CMakeFiles/optibar_simmpi.dir/executor.cpp.o.d"
  "CMakeFiles/optibar_simmpi.dir/latency_model.cpp.o"
  "CMakeFiles/optibar_simmpi.dir/latency_model.cpp.o.d"
  "CMakeFiles/optibar_simmpi.dir/runtime.cpp.o"
  "CMakeFiles/optibar_simmpi.dir/runtime.cpp.o.d"
  "liboptibar_simmpi.a"
  "liboptibar_simmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optibar_simmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
