
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simmpi/communicator.cpp" "src/simmpi/CMakeFiles/optibar_simmpi.dir/communicator.cpp.o" "gcc" "src/simmpi/CMakeFiles/optibar_simmpi.dir/communicator.cpp.o.d"
  "/root/repo/src/simmpi/executor.cpp" "src/simmpi/CMakeFiles/optibar_simmpi.dir/executor.cpp.o" "gcc" "src/simmpi/CMakeFiles/optibar_simmpi.dir/executor.cpp.o.d"
  "/root/repo/src/simmpi/latency_model.cpp" "src/simmpi/CMakeFiles/optibar_simmpi.dir/latency_model.cpp.o" "gcc" "src/simmpi/CMakeFiles/optibar_simmpi.dir/latency_model.cpp.o.d"
  "/root/repo/src/simmpi/runtime.cpp" "src/simmpi/CMakeFiles/optibar_simmpi.dir/runtime.cpp.o" "gcc" "src/simmpi/CMakeFiles/optibar_simmpi.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/optibar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/optibar_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/barrier/CMakeFiles/optibar_barrier.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
