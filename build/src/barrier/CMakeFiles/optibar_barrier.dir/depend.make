# Empty dependencies file for optibar_barrier.
# This may be replaced when dependencies are built.
