file(REMOVE_RECURSE
  "liboptibar_barrier.a"
)
