
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/barrier/algorithms.cpp" "src/barrier/CMakeFiles/optibar_barrier.dir/algorithms.cpp.o" "gcc" "src/barrier/CMakeFiles/optibar_barrier.dir/algorithms.cpp.o.d"
  "/root/repo/src/barrier/analysis.cpp" "src/barrier/CMakeFiles/optibar_barrier.dir/analysis.cpp.o" "gcc" "src/barrier/CMakeFiles/optibar_barrier.dir/analysis.cpp.o.d"
  "/root/repo/src/barrier/cost_model.cpp" "src/barrier/CMakeFiles/optibar_barrier.dir/cost_model.cpp.o" "gcc" "src/barrier/CMakeFiles/optibar_barrier.dir/cost_model.cpp.o.d"
  "/root/repo/src/barrier/dependency_graph.cpp" "src/barrier/CMakeFiles/optibar_barrier.dir/dependency_graph.cpp.o" "gcc" "src/barrier/CMakeFiles/optibar_barrier.dir/dependency_graph.cpp.o.d"
  "/root/repo/src/barrier/optimize.cpp" "src/barrier/CMakeFiles/optibar_barrier.dir/optimize.cpp.o" "gcc" "src/barrier/CMakeFiles/optibar_barrier.dir/optimize.cpp.o.d"
  "/root/repo/src/barrier/schedule.cpp" "src/barrier/CMakeFiles/optibar_barrier.dir/schedule.cpp.o" "gcc" "src/barrier/CMakeFiles/optibar_barrier.dir/schedule.cpp.o.d"
  "/root/repo/src/barrier/schedule_io.cpp" "src/barrier/CMakeFiles/optibar_barrier.dir/schedule_io.cpp.o" "gcc" "src/barrier/CMakeFiles/optibar_barrier.dir/schedule_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/optibar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/optibar_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
