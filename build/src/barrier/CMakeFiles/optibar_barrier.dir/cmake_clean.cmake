file(REMOVE_RECURSE
  "CMakeFiles/optibar_barrier.dir/algorithms.cpp.o"
  "CMakeFiles/optibar_barrier.dir/algorithms.cpp.o.d"
  "CMakeFiles/optibar_barrier.dir/analysis.cpp.o"
  "CMakeFiles/optibar_barrier.dir/analysis.cpp.o.d"
  "CMakeFiles/optibar_barrier.dir/cost_model.cpp.o"
  "CMakeFiles/optibar_barrier.dir/cost_model.cpp.o.d"
  "CMakeFiles/optibar_barrier.dir/dependency_graph.cpp.o"
  "CMakeFiles/optibar_barrier.dir/dependency_graph.cpp.o.d"
  "CMakeFiles/optibar_barrier.dir/optimize.cpp.o"
  "CMakeFiles/optibar_barrier.dir/optimize.cpp.o.d"
  "CMakeFiles/optibar_barrier.dir/schedule.cpp.o"
  "CMakeFiles/optibar_barrier.dir/schedule.cpp.o.d"
  "CMakeFiles/optibar_barrier.dir/schedule_io.cpp.o"
  "CMakeFiles/optibar_barrier.dir/schedule_io.cpp.o.d"
  "liboptibar_barrier.a"
  "liboptibar_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optibar_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
