file(REMOVE_RECURSE
  "CMakeFiles/optibar_topology.dir/custom_machine.cpp.o"
  "CMakeFiles/optibar_topology.dir/custom_machine.cpp.o.d"
  "CMakeFiles/optibar_topology.dir/generate.cpp.o"
  "CMakeFiles/optibar_topology.dir/generate.cpp.o.d"
  "CMakeFiles/optibar_topology.dir/latency.cpp.o"
  "CMakeFiles/optibar_topology.dir/latency.cpp.o.d"
  "CMakeFiles/optibar_topology.dir/machine.cpp.o"
  "CMakeFiles/optibar_topology.dir/machine.cpp.o.d"
  "CMakeFiles/optibar_topology.dir/machine_file.cpp.o"
  "CMakeFiles/optibar_topology.dir/machine_file.cpp.o.d"
  "CMakeFiles/optibar_topology.dir/mapping.cpp.o"
  "CMakeFiles/optibar_topology.dir/mapping.cpp.o.d"
  "CMakeFiles/optibar_topology.dir/profile.cpp.o"
  "CMakeFiles/optibar_topology.dir/profile.cpp.o.d"
  "CMakeFiles/optibar_topology.dir/replicate.cpp.o"
  "CMakeFiles/optibar_topology.dir/replicate.cpp.o.d"
  "liboptibar_topology.a"
  "liboptibar_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optibar_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
