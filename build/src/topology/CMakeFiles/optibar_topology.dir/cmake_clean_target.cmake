file(REMOVE_RECURSE
  "liboptibar_topology.a"
)
