
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/custom_machine.cpp" "src/topology/CMakeFiles/optibar_topology.dir/custom_machine.cpp.o" "gcc" "src/topology/CMakeFiles/optibar_topology.dir/custom_machine.cpp.o.d"
  "/root/repo/src/topology/generate.cpp" "src/topology/CMakeFiles/optibar_topology.dir/generate.cpp.o" "gcc" "src/topology/CMakeFiles/optibar_topology.dir/generate.cpp.o.d"
  "/root/repo/src/topology/latency.cpp" "src/topology/CMakeFiles/optibar_topology.dir/latency.cpp.o" "gcc" "src/topology/CMakeFiles/optibar_topology.dir/latency.cpp.o.d"
  "/root/repo/src/topology/machine.cpp" "src/topology/CMakeFiles/optibar_topology.dir/machine.cpp.o" "gcc" "src/topology/CMakeFiles/optibar_topology.dir/machine.cpp.o.d"
  "/root/repo/src/topology/machine_file.cpp" "src/topology/CMakeFiles/optibar_topology.dir/machine_file.cpp.o" "gcc" "src/topology/CMakeFiles/optibar_topology.dir/machine_file.cpp.o.d"
  "/root/repo/src/topology/mapping.cpp" "src/topology/CMakeFiles/optibar_topology.dir/mapping.cpp.o" "gcc" "src/topology/CMakeFiles/optibar_topology.dir/mapping.cpp.o.d"
  "/root/repo/src/topology/profile.cpp" "src/topology/CMakeFiles/optibar_topology.dir/profile.cpp.o" "gcc" "src/topology/CMakeFiles/optibar_topology.dir/profile.cpp.o.d"
  "/root/repo/src/topology/replicate.cpp" "src/topology/CMakeFiles/optibar_topology.dir/replicate.cpp.o" "gcc" "src/topology/CMakeFiles/optibar_topology.dir/replicate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/optibar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
