# Empty compiler generated dependencies file for optibar_topology.
# This may be replaced when dependencies are built.
