# Empty dependencies file for optibar_profile.
# This may be replaced when dependencies are built.
