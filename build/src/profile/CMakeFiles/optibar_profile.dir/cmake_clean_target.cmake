file(REMOVE_RECURSE
  "liboptibar_profile.a"
)
