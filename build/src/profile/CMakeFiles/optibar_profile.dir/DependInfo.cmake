
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/estimator.cpp" "src/profile/CMakeFiles/optibar_profile.dir/estimator.cpp.o" "gcc" "src/profile/CMakeFiles/optibar_profile.dir/estimator.cpp.o.d"
  "/root/repo/src/profile/simmpi_engine.cpp" "src/profile/CMakeFiles/optibar_profile.dir/simmpi_engine.cpp.o" "gcc" "src/profile/CMakeFiles/optibar_profile.dir/simmpi_engine.cpp.o.d"
  "/root/repo/src/profile/sparse_estimator.cpp" "src/profile/CMakeFiles/optibar_profile.dir/sparse_estimator.cpp.o" "gcc" "src/profile/CMakeFiles/optibar_profile.dir/sparse_estimator.cpp.o.d"
  "/root/repo/src/profile/synthetic_engine.cpp" "src/profile/CMakeFiles/optibar_profile.dir/synthetic_engine.cpp.o" "gcc" "src/profile/CMakeFiles/optibar_profile.dir/synthetic_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/optibar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/optibar_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/optibar_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/barrier/CMakeFiles/optibar_barrier.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
