file(REMOVE_RECURSE
  "CMakeFiles/optibar_profile.dir/estimator.cpp.o"
  "CMakeFiles/optibar_profile.dir/estimator.cpp.o.d"
  "CMakeFiles/optibar_profile.dir/simmpi_engine.cpp.o"
  "CMakeFiles/optibar_profile.dir/simmpi_engine.cpp.o.d"
  "CMakeFiles/optibar_profile.dir/sparse_estimator.cpp.o"
  "CMakeFiles/optibar_profile.dir/sparse_estimator.cpp.o.d"
  "CMakeFiles/optibar_profile.dir/synthetic_engine.cpp.o"
  "CMakeFiles/optibar_profile.dir/synthetic_engine.cpp.o.d"
  "liboptibar_profile.a"
  "liboptibar_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optibar_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
