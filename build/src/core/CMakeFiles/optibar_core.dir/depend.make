# Empty dependencies file for optibar_core.
# This may be replaced when dependencies are built.
