file(REMOVE_RECURSE
  "liboptibar_core.a"
)
