file(REMOVE_RECURSE
  "CMakeFiles/optibar_core.dir/cluster_tree.cpp.o"
  "CMakeFiles/optibar_core.dir/cluster_tree.cpp.o.d"
  "CMakeFiles/optibar_core.dir/codegen.cpp.o"
  "CMakeFiles/optibar_core.dir/codegen.cpp.o.d"
  "CMakeFiles/optibar_core.dir/composer.cpp.o"
  "CMakeFiles/optibar_core.dir/composer.cpp.o.d"
  "CMakeFiles/optibar_core.dir/library.cpp.o"
  "CMakeFiles/optibar_core.dir/library.cpp.o.d"
  "CMakeFiles/optibar_core.dir/retune.cpp.o"
  "CMakeFiles/optibar_core.dir/retune.cpp.o.d"
  "CMakeFiles/optibar_core.dir/search.cpp.o"
  "CMakeFiles/optibar_core.dir/search.cpp.o.d"
  "CMakeFiles/optibar_core.dir/sss.cpp.o"
  "CMakeFiles/optibar_core.dir/sss.cpp.o.d"
  "CMakeFiles/optibar_core.dir/tuner.cpp.o"
  "CMakeFiles/optibar_core.dir/tuner.cpp.o.d"
  "liboptibar_core.a"
  "liboptibar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optibar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
