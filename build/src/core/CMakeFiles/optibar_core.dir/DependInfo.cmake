
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster_tree.cpp" "src/core/CMakeFiles/optibar_core.dir/cluster_tree.cpp.o" "gcc" "src/core/CMakeFiles/optibar_core.dir/cluster_tree.cpp.o.d"
  "/root/repo/src/core/codegen.cpp" "src/core/CMakeFiles/optibar_core.dir/codegen.cpp.o" "gcc" "src/core/CMakeFiles/optibar_core.dir/codegen.cpp.o.d"
  "/root/repo/src/core/composer.cpp" "src/core/CMakeFiles/optibar_core.dir/composer.cpp.o" "gcc" "src/core/CMakeFiles/optibar_core.dir/composer.cpp.o.d"
  "/root/repo/src/core/library.cpp" "src/core/CMakeFiles/optibar_core.dir/library.cpp.o" "gcc" "src/core/CMakeFiles/optibar_core.dir/library.cpp.o.d"
  "/root/repo/src/core/retune.cpp" "src/core/CMakeFiles/optibar_core.dir/retune.cpp.o" "gcc" "src/core/CMakeFiles/optibar_core.dir/retune.cpp.o.d"
  "/root/repo/src/core/search.cpp" "src/core/CMakeFiles/optibar_core.dir/search.cpp.o" "gcc" "src/core/CMakeFiles/optibar_core.dir/search.cpp.o.d"
  "/root/repo/src/core/sss.cpp" "src/core/CMakeFiles/optibar_core.dir/sss.cpp.o" "gcc" "src/core/CMakeFiles/optibar_core.dir/sss.cpp.o.d"
  "/root/repo/src/core/tuner.cpp" "src/core/CMakeFiles/optibar_core.dir/tuner.cpp.o" "gcc" "src/core/CMakeFiles/optibar_core.dir/tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/optibar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/optibar_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/barrier/CMakeFiles/optibar_barrier.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/optibar_simmpi.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
