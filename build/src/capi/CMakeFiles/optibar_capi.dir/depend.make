# Empty dependencies file for optibar_capi.
# This may be replaced when dependencies are built.
