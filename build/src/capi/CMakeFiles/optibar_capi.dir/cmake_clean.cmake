file(REMOVE_RECURSE
  "CMakeFiles/optibar_capi.dir/optibar_c.cpp.o"
  "CMakeFiles/optibar_capi.dir/optibar_c.cpp.o.d"
  "liboptibar_capi.a"
  "liboptibar_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optibar_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
