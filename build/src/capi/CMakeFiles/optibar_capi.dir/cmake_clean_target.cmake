file(REMOVE_RECURSE
  "liboptibar_capi.a"
)
