file(REMOVE_RECURSE
  "CMakeFiles/optibar_util.dir/fidelity.cpp.o"
  "CMakeFiles/optibar_util.dir/fidelity.cpp.o.d"
  "CMakeFiles/optibar_util.dir/heatmap.cpp.o"
  "CMakeFiles/optibar_util.dir/heatmap.cpp.o.d"
  "CMakeFiles/optibar_util.dir/rng.cpp.o"
  "CMakeFiles/optibar_util.dir/rng.cpp.o.d"
  "CMakeFiles/optibar_util.dir/stats.cpp.o"
  "CMakeFiles/optibar_util.dir/stats.cpp.o.d"
  "CMakeFiles/optibar_util.dir/table.cpp.o"
  "CMakeFiles/optibar_util.dir/table.cpp.o.d"
  "liboptibar_util.a"
  "liboptibar_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optibar_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
