# Empty dependencies file for optibar_util.
# This may be replaced when dependencies are built.
