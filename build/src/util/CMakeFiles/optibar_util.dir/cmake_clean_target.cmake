file(REMOVE_RECURSE
  "liboptibar_util.a"
)
