file(REMOVE_RECURSE
  "CMakeFiles/optibar_netsim.dir/engine.cpp.o"
  "CMakeFiles/optibar_netsim.dir/engine.cpp.o.d"
  "CMakeFiles/optibar_netsim.dir/trace_export.cpp.o"
  "CMakeFiles/optibar_netsim.dir/trace_export.cpp.o.d"
  "liboptibar_netsim.a"
  "liboptibar_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optibar_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
