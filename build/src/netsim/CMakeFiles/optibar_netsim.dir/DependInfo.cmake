
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/engine.cpp" "src/netsim/CMakeFiles/optibar_netsim.dir/engine.cpp.o" "gcc" "src/netsim/CMakeFiles/optibar_netsim.dir/engine.cpp.o.d"
  "/root/repo/src/netsim/trace_export.cpp" "src/netsim/CMakeFiles/optibar_netsim.dir/trace_export.cpp.o" "gcc" "src/netsim/CMakeFiles/optibar_netsim.dir/trace_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/optibar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/optibar_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/barrier/CMakeFiles/optibar_barrier.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
