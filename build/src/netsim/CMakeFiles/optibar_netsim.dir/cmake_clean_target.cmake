file(REMOVE_RECURSE
  "liboptibar_netsim.a"
)
