# Empty compiler generated dependencies file for optibar_netsim.
# This may be replaced when dependencies are built.
