file(REMOVE_RECURSE
  "CMakeFiles/profile_roundtrip.dir/profile_roundtrip.cpp.o"
  "CMakeFiles/profile_roundtrip.dir/profile_roundtrip.cpp.o.d"
  "profile_roundtrip"
  "profile_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profile_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
