# Empty compiler generated dependencies file for profile_roundtrip.
# This may be replaced when dependencies are built.
