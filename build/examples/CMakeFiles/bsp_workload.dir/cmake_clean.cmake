file(REMOVE_RECURSE
  "CMakeFiles/bsp_workload.dir/bsp_workload.cpp.o"
  "CMakeFiles/bsp_workload.dir/bsp_workload.cpp.o.d"
  "bsp_workload"
  "bsp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
