# Empty compiler generated dependencies file for bsp_workload.
# This may be replaced when dependencies are built.
