file(REMOVE_RECURSE
  "../bench/bench_fig6_validation_hex"
  "../bench/bench_fig6_validation_hex.pdb"
  "CMakeFiles/bench_fig6_validation_hex.dir/fig6_validation_hex.cpp.o"
  "CMakeFiles/bench_fig6_validation_hex.dir/fig6_validation_hex.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_validation_hex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
