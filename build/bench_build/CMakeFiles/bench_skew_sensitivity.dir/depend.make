# Empty dependencies file for bench_skew_sensitivity.
# This may be replaced when dependencies are built.
