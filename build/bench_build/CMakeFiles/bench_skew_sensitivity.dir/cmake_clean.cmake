file(REMOVE_RECURSE
  "../bench/bench_skew_sensitivity"
  "../bench/bench_skew_sensitivity.pdb"
  "CMakeFiles/bench_skew_sensitivity.dir/skew_sensitivity.cpp.o"
  "CMakeFiles/bench_skew_sensitivity.dir/skew_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skew_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
