# Empty compiler generated dependencies file for bench_fig11_generated_hex.
# This may be replaced when dependencies are built.
