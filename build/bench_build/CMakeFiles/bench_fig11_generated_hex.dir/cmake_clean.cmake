file(REMOVE_RECURSE
  "../bench/bench_fig11_generated_hex"
  "../bench/bench_fig11_generated_hex.pdb"
  "CMakeFiles/bench_fig11_generated_hex.dir/fig11_generated_hex.cpp.o"
  "CMakeFiles/bench_fig11_generated_hex.dir/fig11_generated_hex.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_generated_hex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
