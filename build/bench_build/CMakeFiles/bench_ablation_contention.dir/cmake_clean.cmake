file(REMOVE_RECURSE
  "../bench/bench_ablation_contention"
  "../bench/bench_ablation_contention.pdb"
  "CMakeFiles/bench_ablation_contention.dir/ablation_contention.cpp.o"
  "CMakeFiles/bench_ablation_contention.dir/ablation_contention.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
