file(REMOVE_RECURSE
  "../bench/bench_ablation_algorithms"
  "../bench/bench_ablation_algorithms.pdb"
  "CMakeFiles/bench_ablation_algorithms.dir/ablation_algorithms.cpp.o"
  "CMakeFiles/bench_ablation_algorithms.dir/ablation_algorithms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
