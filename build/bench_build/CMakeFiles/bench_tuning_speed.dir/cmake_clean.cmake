file(REMOVE_RECURSE
  "../bench/bench_tuning_speed"
  "../bench/bench_tuning_speed.pdb"
  "CMakeFiles/bench_tuning_speed.dir/tuning_speed.cpp.o"
  "CMakeFiles/bench_tuning_speed.dir/tuning_speed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tuning_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
