# Empty compiler generated dependencies file for bench_tuning_speed.
# This may be replaced when dependencies are built.
