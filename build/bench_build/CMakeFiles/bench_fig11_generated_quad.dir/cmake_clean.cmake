file(REMOVE_RECURSE
  "../bench/bench_fig11_generated_quad"
  "../bench/bench_fig11_generated_quad.pdb"
  "CMakeFiles/bench_fig11_generated_quad.dir/fig11_generated_quad.cpp.o"
  "CMakeFiles/bench_fig11_generated_quad.dir/fig11_generated_quad.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_generated_quad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
