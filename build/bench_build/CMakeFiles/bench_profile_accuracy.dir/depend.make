# Empty dependencies file for bench_profile_accuracy.
# This may be replaced when dependencies are built.
