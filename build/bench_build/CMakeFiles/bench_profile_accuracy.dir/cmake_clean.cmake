file(REMOVE_RECURSE
  "../bench/bench_profile_accuracy"
  "../bench/bench_profile_accuracy.pdb"
  "CMakeFiles/bench_profile_accuracy.dir/profile_accuracy.cpp.o"
  "CMakeFiles/bench_profile_accuracy.dir/profile_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_profile_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
