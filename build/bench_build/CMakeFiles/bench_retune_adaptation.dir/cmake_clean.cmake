file(REMOVE_RECURSE
  "../bench/bench_retune_adaptation"
  "../bench/bench_retune_adaptation.pdb"
  "CMakeFiles/bench_retune_adaptation.dir/retune_adaptation.cpp.o"
  "CMakeFiles/bench_retune_adaptation.dir/retune_adaptation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_retune_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
