file(REMOVE_RECURSE
  "../bench/bench_fig8_individual_hex"
  "../bench/bench_fig8_individual_hex.pdb"
  "CMakeFiles/bench_fig8_individual_hex.dir/fig8_individual_hex.cpp.o"
  "CMakeFiles/bench_fig8_individual_hex.dir/fig8_individual_hex.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_individual_hex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
