# Empty dependencies file for bench_fig8_individual_hex.
# This may be replaced when dependencies are built.
