file(REMOVE_RECURSE
  "../bench/bench_fig10_construction"
  "../bench/bench_fig10_construction.pdb"
  "CMakeFiles/bench_fig10_construction.dir/fig10_construction.cpp.o"
  "CMakeFiles/bench_fig10_construction.dir/fig10_construction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
