# Empty dependencies file for bench_fig10_construction.
# This may be replaced when dependencies are built.
