# Empty dependencies file for bench_fig7_individual_quad.
# This may be replaced when dependencies are built.
