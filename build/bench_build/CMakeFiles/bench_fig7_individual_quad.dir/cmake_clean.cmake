file(REMOVE_RECURSE
  "../bench/bench_fig7_individual_quad"
  "../bench/bench_fig7_individual_quad.pdb"
  "CMakeFiles/bench_fig7_individual_quad.dir/fig7_individual_quad.cpp.o"
  "CMakeFiles/bench_fig7_individual_quad.dir/fig7_individual_quad.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_individual_quad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
