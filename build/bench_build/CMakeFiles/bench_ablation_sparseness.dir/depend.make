# Empty dependencies file for bench_ablation_sparseness.
# This may be replaced when dependencies are built.
