file(REMOVE_RECURSE
  "../bench/bench_ablation_sparseness"
  "../bench/bench_ablation_sparseness.pdb"
  "CMakeFiles/bench_ablation_sparseness.dir/ablation_sparseness.cpp.o"
  "CMakeFiles/bench_ablation_sparseness.dir/ablation_sparseness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sparseness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
