file(REMOVE_RECURSE
  "../bench/bench_model_fidelity"
  "../bench/bench_model_fidelity.pdb"
  "CMakeFiles/bench_model_fidelity.dir/model_fidelity.cpp.o"
  "CMakeFiles/bench_model_fidelity.dir/model_fidelity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
