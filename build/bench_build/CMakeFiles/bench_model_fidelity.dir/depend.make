# Empty dependencies file for bench_model_fidelity.
# This may be replaced when dependencies are built.
