file(REMOVE_RECURSE
  "../bench/bench_fig9_lmatrix_heatmap"
  "../bench/bench_fig9_lmatrix_heatmap.pdb"
  "CMakeFiles/bench_fig9_lmatrix_heatmap.dir/fig9_lmatrix_heatmap.cpp.o"
  "CMakeFiles/bench_fig9_lmatrix_heatmap.dir/fig9_lmatrix_heatmap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_lmatrix_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
