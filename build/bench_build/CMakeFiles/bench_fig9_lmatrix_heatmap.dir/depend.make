# Empty dependencies file for bench_fig9_lmatrix_heatmap.
# This may be replaced when dependencies are built.
