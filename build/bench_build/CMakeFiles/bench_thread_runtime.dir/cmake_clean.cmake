file(REMOVE_RECURSE
  "../bench/bench_thread_runtime"
  "../bench/bench_thread_runtime.pdb"
  "CMakeFiles/bench_thread_runtime.dir/thread_runtime.cpp.o"
  "CMakeFiles/bench_thread_runtime.dir/thread_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thread_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
