# Empty dependencies file for bench_ablation_optimize.
# This may be replaced when dependencies are built.
