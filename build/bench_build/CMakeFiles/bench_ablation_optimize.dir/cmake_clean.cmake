file(REMOVE_RECURSE
  "../bench/bench_ablation_optimize"
  "../bench/bench_ablation_optimize.pdb"
  "CMakeFiles/bench_ablation_optimize.dir/ablation_optimize.cpp.o"
  "CMakeFiles/bench_ablation_optimize.dir/ablation_optimize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_optimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
