# Empty dependencies file for bench_fig5_validation_quad.
# This may be replaced when dependencies are built.
