file(REMOVE_RECURSE
  "../bench/bench_fig5_validation_quad"
  "../bench/bench_fig5_validation_quad.pdb"
  "CMakeFiles/bench_fig5_validation_quad.dir/fig5_validation_quad.cpp.o"
  "CMakeFiles/bench_fig5_validation_quad.dir/fig5_validation_quad.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_validation_quad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
