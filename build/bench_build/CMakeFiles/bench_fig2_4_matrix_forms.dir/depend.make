# Empty dependencies file for bench_fig2_4_matrix_forms.
# This may be replaced when dependencies are built.
