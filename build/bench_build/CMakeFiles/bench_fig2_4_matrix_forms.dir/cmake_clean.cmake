file(REMOVE_RECURSE
  "../bench/bench_fig2_4_matrix_forms"
  "../bench/bench_fig2_4_matrix_forms.pdb"
  "CMakeFiles/bench_fig2_4_matrix_forms.dir/fig2_4_matrix_forms.cpp.o"
  "CMakeFiles/bench_fig2_4_matrix_forms.dir/fig2_4_matrix_forms.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_4_matrix_forms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
