# Empty dependencies file for test_dependency_graph.
# This may be replaced when dependencies are built.
