file(REMOVE_RECURSE
  "CMakeFiles/test_simmpi_engine.dir/test_simmpi_engine.cpp.o"
  "CMakeFiles/test_simmpi_engine.dir/test_simmpi_engine.cpp.o.d"
  "test_simmpi_engine"
  "test_simmpi_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simmpi_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
