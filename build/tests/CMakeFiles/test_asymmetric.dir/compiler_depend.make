# Empty compiler generated dependencies file for test_asymmetric.
# This may be replaced when dependencies are built.
