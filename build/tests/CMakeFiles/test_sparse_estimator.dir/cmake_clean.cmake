file(REMOVE_RECURSE
  "CMakeFiles/test_sparse_estimator.dir/test_sparse_estimator.cpp.o"
  "CMakeFiles/test_sparse_estimator.dir/test_sparse_estimator.cpp.o.d"
  "test_sparse_estimator"
  "test_sparse_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sparse_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
