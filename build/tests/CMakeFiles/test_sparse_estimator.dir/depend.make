# Empty dependencies file for test_sparse_estimator.
# This may be replaced when dependencies are built.
