
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_replicate.cpp" "tests/CMakeFiles/test_replicate.dir/test_replicate.cpp.o" "gcc" "tests/CMakeFiles/test_replicate.dir/test_replicate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/optibar_cli.dir/DependInfo.cmake"
  "/root/repo/build/src/capi/CMakeFiles/optibar_capi.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/optibar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/profile/CMakeFiles/optibar_profile.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/optibar_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/simmpi/CMakeFiles/optibar_simmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/barrier/CMakeFiles/optibar_barrier.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/optibar_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/optibar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
