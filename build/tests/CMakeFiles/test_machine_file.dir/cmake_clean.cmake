file(REMOVE_RECURSE
  "CMakeFiles/test_machine_file.dir/test_machine_file.cpp.o"
  "CMakeFiles/test_machine_file.dir/test_machine_file.cpp.o.d"
  "test_machine_file"
  "test_machine_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
