# Empty compiler generated dependencies file for test_retune.
# This may be replaced when dependencies are built.
