file(REMOVE_RECURSE
  "CMakeFiles/test_retune.dir/test_retune.cpp.o"
  "CMakeFiles/test_retune.dir/test_retune.cpp.o.d"
  "test_retune"
  "test_retune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_retune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
