file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_tree.dir/test_cluster_tree.cpp.o"
  "CMakeFiles/test_cluster_tree.dir/test_cluster_tree.cpp.o.d"
  "test_cluster_tree"
  "test_cluster_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
