#include "barrier/schedule_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "barrier/validate.hpp"
#include "util/error.hpp"

namespace optibar {

namespace {
constexpr const char* kMagic = "optibar-schedule";

// Header sanity caps: a lying header must not drive allocation. The
// limits are far above anything the tuner produces (P is "a few
// hundred" throughout the paper) but small enough that P*P stage
// matrices stay well under memory limits.
constexpr std::size_t kMaxRanks = 8192;
constexpr std::size_t kMaxStages = 100000;
}  // namespace

void save_schedule(std::ostream& os, const StoredSchedule& stored) {
  const Schedule& s = stored.schedule;
  OPTIBAR_REQUIRE(stored.awaited_stages.empty() ||
                      stored.awaited_stages.size() == s.stage_count(),
                  "awaited_stages must be empty or match stage count");
  // v1 unless some stage carries one-sided edges, so pure two-sided
  // schedules stay byte-identical to pre-RMA builds and readable by
  // pre-RMA readers.
  const bool v2 = s.has_one_sided();
  os << kMagic << (v2 ? " v2\n" : " v1\n");
  os << "P " << s.ranks() << '\n';
  os << "stages " << s.stage_count() << '\n';
  os << "awaited";
  if (stored.awaited_stages.empty()) {
    for (std::size_t i = 0; i < s.stage_count(); ++i) {
      os << " 0";
    }
  } else {
    for (bool awaited : stored.awaited_stages) {
      os << ' ' << (awaited ? 1 : 0);
    }
  }
  os << '\n';
  auto dump = [&](const StageMatrix& m) {
    for (std::size_t r = 0; r < m.rows(); ++r) {
      for (std::size_t c = 0; c < m.cols(); ++c) {
        os << static_cast<int>(m(r, c)) << (c + 1 == m.cols() ? '\n' : ' ');
      }
    }
  };
  for (std::size_t st = 0; st < s.stage_count(); ++st) {
    os << "S" << st << '\n';
    dump(s.stage(st));
    if (v2) {
      // Every stage gets a T matrix in v2 (all-zero when two-sided), so
      // the reader never has to look ahead to tell T<st> from S<st+1>.
      os << "T" << st << '\n';
      const StageMatrix& t = s.transport(st);
      dump(t.empty() ? StageMatrix(s.ranks(), s.ranks(), 0) : t);
    }
  }
  OPTIBAR_REQUIRE(os.good(), "I/O error while writing schedule");
}

StoredSchedule load_schedule(std::istream& is) {
  std::string magic;
  std::string version;
  is >> magic >> version;
  OPTIBAR_IO_REQUIRE(!is.fail() && magic == kMagic,
                     "not an optibar schedule (magic '" << magic << "')");
  OPTIBAR_IO_REQUIRE(version == "v1" || version == "v2",
                     "unsupported schedule version " << version);
  const bool v2 = version == "v2";

  std::string tag;
  std::size_t p = 0;
  std::size_t stages = 0;
  is >> tag >> p;
  OPTIBAR_IO_REQUIRE(!is.fail() && tag == "P" && p > 0,
                     "malformed schedule header (P)");
  OPTIBAR_IO_REQUIRE(p <= kMaxRanks,
                     "schedule header claims " << p << " ranks (cap "
                                               << kMaxRanks << ")");
  is >> tag >> stages;
  OPTIBAR_IO_REQUIRE(!is.fail() && tag == "stages",
                     "malformed schedule header (stages)");
  OPTIBAR_IO_REQUIRE(stages <= kMaxStages,
                     "schedule header claims " << stages << " stages (cap "
                                               << kMaxStages << ")");

  StoredSchedule out;
  out.schedule = Schedule(p);
  is >> tag;
  OPTIBAR_IO_REQUIRE(!is.fail() && tag == "awaited",
                     "malformed schedule header (awaited)");
  out.awaited_stages.resize(stages);
  for (std::size_t i = 0; i < stages; ++i) {
    int flag = 0;
    is >> flag;
    OPTIBAR_IO_REQUIRE(!is.fail(),
                       "truncated schedule: awaited flag " << i << " missing");
    OPTIBAR_IO_REQUIRE(flag == 0 || flag == 1, "awaited flag must be 0/1");
    out.awaited_stages[i] = flag == 1;
  }
  auto read_matrix = [&](const char* what, std::size_t st) {
    StageMatrix m(p, p, 0);
    for (std::size_t r = 0; r < p; ++r) {
      for (std::size_t c = 0; c < p; ++c) {
        int v = 0;
        is >> v;
        OPTIBAR_IO_REQUIRE(!is.fail(), "truncated schedule: "
                                           << what << st << " cell (" << r
                                           << ", " << c << ") missing");
        OPTIBAR_IO_REQUIRE(v == 0 || v == 1,
                           what << " cell must be 0/1");
        m(r, c) = static_cast<std::uint8_t>(v);
      }
    }
    return m;
  };
  for (std::size_t st = 0; st < stages; ++st) {
    is >> tag;
    OPTIBAR_IO_REQUIRE(!is.fail(),
                       "truncated schedule: stage S" << st << " missing");
    OPTIBAR_IO_REQUIRE(tag == "S" + std::to_string(st),
                       "expected stage tag S" << st << ", got " << tag);
    out.schedule.append_stage(read_matrix("stage S", st));
    if (v2) {
      is >> tag;
      OPTIBAR_IO_REQUIRE(!is.fail(), "truncated schedule: transport T"
                                         << st << " missing");
      OPTIBAR_IO_REQUIRE(tag == "T" + std::to_string(st),
                         "expected transport tag T" << st << ", got " << tag);
      // set_transport validates transport(i,j) => stage(i,j) and
      // normalizes all-zero to the empty (two-sided) spelling.
      out.schedule.set_transport(st, read_matrix("transport T", st));
    }
  }
  OPTIBAR_IO_REQUIRE(is.good() || is.eof(),
                     "I/O error while reading schedule");

  // Safety gate: refuse plans that could hang a runtime. Non-barrier
  // patterns still load — analysis/validate commands inspect those —
  // but a cyclic awaited stage or inconsistent awaited flags can
  // deadlock eager replay, so they never leave the loader.
  const ValidationResult validation = validate_schedule(out);
  OPTIBAR_IO_REQUIRE(validation.deadlock_free(),
                     "unsafe schedule rejected: " << validation.describe());
  return out;
}

void save_schedule_file(const std::string& path, const StoredSchedule& stored) {
  std::ofstream os(path);
  OPTIBAR_IO_REQUIRE(os.is_open(), "cannot open " << path << " for writing");
  save_schedule(os, stored);
}

StoredSchedule load_schedule_file(const std::string& path) {
  std::ifstream is(path);
  OPTIBAR_IO_REQUIRE(is.is_open(), "cannot open " << path << " for reading");
  return load_schedule(is);
}

}  // namespace optibar
