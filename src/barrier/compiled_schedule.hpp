// Compiled cost-model evaluation (the allocation-free predict kernel).
//
// predict() in cost_model.cpp is the hottest path of the tuning engine:
// every composer candidate, search node, optimizer sweep and re-tune
// decision funnels through it. The reference implementation re-derives
// the adjacency of every stage on every call (targets_of/sources_of
// allocate a fresh vector per rank per stage) and recomputes the Eq. 1/2
// batch terms from the O/L matrices each time. This header factors that
// work into a compile-once/evaluate-many representation:
//
//   CompiledSchedule   — a Schedule bound to a TopologyProfile, stored as
//                        per-stage CSR adjacency (contiguous target and
//                        source index arrays with span accessors) plus
//                        the precomputed per-(rank,stage) ingredients of
//                        the batch cost: sum of L over targets, max of O
//                        over targets, O(i,i), and the receiver-side sum
//                        of L over sources. Evaluation never touches the
//                        O/L matrices again.
//   PredictWorkspace   — reusable scratch (ready/next vectors, the flat
//                        dense-resource-id accumulators of the shared-
//                        egress bound). With a warm workspace,
//                        predict_into() performs zero heap allocations.
//   IncrementalPredictor — checkpointed forward evaluation for the
//                        branch-and-bound search: predict() is a forward
//                        pass over stages, so appending a stage only
//                        needs the previous ready-time vector. The
//                        predictor keeps a stack of per-depth ready
//                        vectors; push_stage() scores exactly one stage
//                        and pop_stage() is O(1). Exact, not
//                        approximate: the values match a full predict()
//                        of the prefix bit for bit.
//
// Bit-identity contract: every accumulation below iterates in the same
// order as the reference implementation (targets ascending, sources
// ascending, resources in (sender, target) scan order), so critical
// paths, rank completion times and stage increments — and therefore
// every tuned plan — are bit-identical to predict_reference().
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "barrier/cost_model.hpp"
#include "barrier/schedule.hpp"
#include "topology/profile.hpp"

namespace optibar {

/// One directed edge with explicit per-edge costs, for compile_edges().
/// Callers that price more than the plain O/L matrices (e.g. the
/// collective layer's L + bytes * G bandwidth term) pre-compute the
/// costs; the compiled evaluation is oblivious to where they came from.
struct CompiledEdge {
  std::size_t src = 0;
  std::size_t dst = 0;
  double l = 0.0;  ///< marginal cost of this edge in its batch
  double o = 0.0;  ///< startup cost of this edge
  /// One-sided (RMA put) delivery: the edge still charges `l` at
  /// injection and `o` for startup, but the receiver sees the flag
  /// `r` after the sender's batch instead of paying its own
  /// completion processing. Defaults keep existing callers two-sided.
  bool one_sided = false;
  double r = 0.0;  ///< remote-write delivery latency (one-sided only)
};

class CompiledSchedule {
 public:
  CompiledSchedule() = default;

  /// Compile `schedule` against `profile` (ranks must match).
  CompiledSchedule(const Schedule& schedule, const TopologyProfile& profile);

  /// Rebind to a new schedule/profile, reusing the existing storage
  /// (grow-only; no allocation once capacities are warm).
  void compile(const Schedule& schedule, const TopologyProfile& profile);

  /// Rebind to an explicit edge list with caller-supplied per-edge
  /// costs. `stage_edges[s]` must be sorted by (src, dst) with no
  /// duplicates and no self edges; `self_overhead[i]` supplies O(i,i).
  /// Accumulation order matches compile() (targets ascending per
  /// sender, sources ascending per receiver), so an edge list derived
  /// from a Schedule with l = L(i,j) and o = O(i,j) evaluates
  /// bit-identically to compiling that Schedule directly.
  void compile_edges(std::size_t ranks,
                     const std::vector<std::vector<CompiledEdge>>& stage_edges,
                     const std::vector<double>& self_overhead);

  std::size_t ranks() const { return p_; }
  std::size_t stage_count() const { return stages_; }

  /// Ranks that `rank` signals in stage `s`, ascending.
  std::span<const std::size_t> targets(std::size_t rank, std::size_t s) const {
    const std::size_t r = row(rank, s);
    return {tgt_index_.data() + tgt_offsets_[r],
            tgt_offsets_[r + 1] - tgt_offsets_[r]};
  }

  /// Ranks that signal `rank` in stage `s`, ascending.
  std::span<const std::size_t> sources(std::size_t rank, std::size_t s) const {
    const std::size_t r = row(rank, s);
    return {src_index_.data() + src_offsets_[r],
            src_offsets_[r + 1] - src_offsets_[r]};
  }

  /// Per-edge L(rank, target) / O(rank, target), aligned with targets().
  std::span<const double> target_latency(std::size_t rank,
                                         std::size_t s) const {
    const std::size_t r = row(rank, s);
    return {tgt_l_.data() + tgt_offsets_[r],
            tgt_offsets_[r + 1] - tgt_offsets_[r]};
  }
  std::span<const double> target_overhead(std::size_t rank,
                                          std::size_t s) const {
    const std::size_t r = row(rank, s);
    return {tgt_o_.data() + tgt_offsets_[r],
            tgt_offsets_[r + 1] - tgt_offsets_[r]};
  }

  /// Per-edge one-sided delivery latency, aligned with targets(): R of
  /// the profile for put edges, exactly 0.0 for two-sided edges (so
  /// `batch + rma[k]` is bit-identical to `batch` on a pure two-sided
  /// schedule).
  std::span<const double> target_rma_latency(std::size_t rank,
                                             std::size_t s) const {
    const std::size_t r = row(rank, s);
    return {tgt_r_.data() + tgt_offsets_[r],
            tgt_offsets_[r + 1] - tgt_offsets_[r]};
  }

  /// Per-edge transport tag (1 = one-sided put), aligned with targets().
  std::span<const std::uint8_t> target_one_sided(std::size_t rank,
                                                 std::size_t s) const {
    const std::size_t r = row(rank, s);
    return {tgt_rma_.data() + tgt_offsets_[r],
            tgt_offsets_[r + 1] - tgt_offsets_[r]};
  }

  /// Per-source transport tag (1 = arrives as a put), aligned with
  /// sources().
  std::span<const std::uint8_t> source_one_sided(std::size_t rank,
                                                 std::size_t s) const {
    const std::size_t r = row(rank, s);
    return {src_rma_.data() + src_offsets_[r],
            src_offsets_[r + 1] - src_offsets_[r]};
  }

  /// Eq. 1 (awaited == false) / Eq. 2 (awaited == true) cost of `rank`'s
  /// send batch in stage `s`; zero for an empty batch, exactly as
  /// step_cost().
  double batch_cost(std::size_t rank, std::size_t s, bool awaited) const {
    const std::size_t r = row(rank, s);
    if (tgt_offsets_[r] == tgt_offsets_[r + 1]) {
      return 0.0;
    }
    return (awaited ? self_o_[rank] : max_o_[r]) + sum_l_[r];
  }

  /// Receiver-side serial completion processing of stage `s` at `rank`:
  /// sum of L(source, rank) over incoming signals (ascending sources).
  double recv_processing(std::size_t rank, std::size_t s) const {
    return recv_l_[row(rank, s)];
  }

 private:
  std::size_t row(std::size_t rank, std::size_t s) const {
    return s * p_ + rank;
  }

  std::size_t p_ = 0;
  std::size_t stages_ = 0;
  // CSR over rows (stage, rank): row s*p_+rank spans
  // index_[offsets_[row] .. offsets_[row+1]).
  std::vector<std::size_t> tgt_offsets_;
  std::vector<std::size_t> tgt_index_;
  std::vector<double> tgt_l_;  ///< L(rank, target) per target edge
  /// Effective startup cost per target edge: O(rank, target) for
  /// two-sided edges, O(rank, rank) for puts (local initiation only —
  /// no rendezvous with the receiver, per Yu et al.).
  std::vector<double> tgt_o_;
  std::vector<double> tgt_r_;  ///< R(rank, target) for puts, 0.0 otherwise
  std::vector<std::uint8_t> tgt_rma_;  ///< 1 = one-sided, per target edge
  std::vector<std::size_t> src_offsets_;
  std::vector<std::size_t> src_index_;
  std::vector<std::uint8_t> src_rma_;  ///< 1 = one-sided, per source edge
  std::vector<double> sum_l_;   ///< per row: sum of L over targets
  std::vector<double> max_o_;   ///< per row: max of effective O (0 if none)
  /// Per row: sum of L over *two-sided* sources only — puts bypass the
  /// receiver's CPU entirely, so they charge no completion processing.
  std::vector<double> recv_l_;
  std::vector<double> self_o_;  ///< per rank: O(rank, rank)
};

/// Reusable evaluation scratch. One workspace per thread; reuse across
/// calls makes predict_into() allocation-free in steady state (all
/// members grow once to the largest rank/resource count seen).
struct PredictWorkspace {
  std::vector<double> ready;
  std::vector<double> next;
  std::vector<double> batch;
  // Shared-egress accumulators, indexed by dense resource id (the flat
  // replacement for the reference implementation's per-stage std::maps).
  std::vector<double> res_ready;
  std::vector<double> res_max_o;
  std::vector<double> res_sum_l;
  std::vector<std::uint8_t> res_active;
  std::vector<std::size_t> touched_resources;
  /// Scratch result for the predicted_time() overload.
  Prediction scratch;
};

/// Full-schedule prediction on the compiled representation, writing into
/// `out` (whose vectors are reused). Bit-identical to
/// predict_reference(schedule, profile, options).
void predict_into(const CompiledSchedule& compiled,
                  const PredictOptions& options, PredictWorkspace& workspace,
                  Prediction& out);

/// Critical path only; uses workspace.scratch, so a warm workspace makes
/// this completely allocation-free.
double predicted_time(const CompiledSchedule& compiled,
                      const PredictOptions& options,
                      PredictWorkspace& workspace);

/// Checkpointed stage-at-a-time evaluation for search backtracking.
/// Supports the predict() terms the search uses (Eq. 1/2 batches and
/// receiver processing); the shared-egress bound is not modelled, as no
/// search path prices it. Transport-oblivious: every edge is priced
/// two-sided — the search explores signal patterns, and transports are
/// assigned post-hoc by assign_transports() (src/rma/transport.hpp).
class IncrementalPredictor {
 public:
  explicit IncrementalPredictor(const TopologyProfile& profile,
                                bool receiver_processing = true);

  /// Drop all stages; ready times return to zero (or `entry`).
  void reset();
  void reset(const std::vector<double>& entry);

  std::size_t depth() const { return depth_; }

  /// Ready-time vector after the pushed prefix; bit-identical to
  /// predict(prefix).rank_completion for zero entry times.
  const std::vector<double>& ready() const { return stack_[depth_]; }

  /// max over ready() — the running critical-path bound.
  double max_ready() const;

  /// Score exactly one appended stage from the current checkpoint.
  void push_stage(const StageMatrix& stage, bool awaited = false);

  /// O(1) backtrack to the previous checkpoint.
  void pop_stage();

 private:
  const TopologyProfile* profile_;
  bool receiver_processing_;
  std::size_t p_;
  std::size_t depth_ = 0;
  /// stack_[d] is the ready vector after d stages; slots are pooled and
  /// reused across push/pop cycles.
  std::vector<std::vector<double>> stack_;
  std::vector<double> batch_;
};

}  // namespace optibar
