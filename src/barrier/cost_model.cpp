#include "barrier/cost_model.hpp"

#include <algorithm>
#include <map>

#include "barrier/compiled_schedule.hpp"
#include "util/error.hpp"

namespace optibar {

double step_cost(const TopologyProfile& profile, std::size_t sender,
                 const std::vector<std::size_t>& targets, bool awaited) {
  if (targets.empty()) {
    return 0.0;
  }
  double latency_sum = 0.0;
  double overhead = awaited ? profile.o(sender, sender) : 0.0;
  for (std::size_t t : targets) {
    latency_sum += profile.l(sender, t);
    if (!awaited) {
      overhead = std::max(overhead, profile.o(sender, t));
    }
  }
  return overhead + latency_sum;
}

Prediction predict(const Schedule& schedule, const TopologyProfile& profile,
                   const PredictOptions& options) {
  // Compile-and-evaluate through thread-local reused storage: the CSR
  // arrays and the workspace grow once per thread to the largest problem
  // seen, after which only the returned Prediction allocates.
  thread_local CompiledSchedule compiled;
  thread_local PredictWorkspace workspace;
  compiled.compile(schedule, profile);
  Prediction out;
  predict_into(compiled, options, workspace, out);
  return out;
}

Prediction predict_reference(const Schedule& schedule,
                             const TopologyProfile& profile,
                             const PredictOptions& options) {
  const std::size_t p = schedule.ranks();
  OPTIBAR_REQUIRE(profile.ranks() == p,
                  "profile has " << profile.ranks() << " ranks, schedule has "
                                 << p);
  if (!options.entry_times.empty()) {
    OPTIBAR_REQUIRE(options.entry_times.size() == p,
                    "entry_times size mismatch");
  }
  if (!options.egress_resource_of.empty()) {
    OPTIBAR_REQUIRE(options.egress_resource_of.size() == p,
                    "egress_resource_of size mismatch");
  }

  Prediction result;
  result.rank_completion.assign(p, 0.0);
  if (!options.entry_times.empty()) {
    result.rank_completion = options.entry_times;
  }
  std::vector<double>& ready = result.rank_completion;
  const double start_of_critical =
      *std::max_element(ready.begin(), ready.end());

  std::vector<double> next(p, 0.0);
  std::vector<double> batch_done(p, 0.0);
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    const bool awaited =
        s < options.awaited_stages.size() && options.awaited_stages[s];
    const double before = *std::max_element(ready.begin(), ready.end());
    const StageMatrix& transport = schedule.transport(s);
    const bool mixed = !transport.empty();
    // One-sided (put) edges: the startup term is the local initiation
    // O(i,i) instead of the rendezvous O(i,j), delivery completes
    // R(i,j) after the sender's batch, and the receiver pays no serial
    // completion processing. Same accumulation order as step_cost and
    // the compiled kernel.
    auto is_put = [&](std::size_t i, std::size_t j) {
      return mixed && transport(i, j) != 0;
    };

    // A rank's own step completes after it issues its batch; receivers
    // additionally wait for every incoming batch of the stage.
    for (std::size_t i = 0; i < p; ++i) {
      const std::vector<std::size_t> targets = schedule.targets_of(i, s);
      double cost = 0.0;
      if (!targets.empty()) {
        double latency_sum = 0.0;
        double overhead = awaited ? profile.o(i, i) : 0.0;
        for (std::size_t t : targets) {
          latency_sum += profile.l(i, t);
          if (!awaited) {
            overhead = std::max(
                overhead, is_put(i, t) ? profile.o(i, i) : profile.o(i, t));
          }
        }
        cost = overhead + latency_sum;
      }
      batch_done[i] = ready[i] + cost;
      next[i] = batch_done[i];
    }
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j : schedule.targets_of(i, s)) {
        const double delivered =
            batch_done[i] + (is_put(i, j) ? profile.r(i, j) : 0.0);
        next[j] = std::max(next[j], delivered);
      }
    }
    if (!options.egress_resource_of.empty()) {
      // Analytic shared-egress serialization: within one stage, every
      // cross-resource message from resource r must fit behind the
      // others, so the last arrival from r is bounded below by the
      // resource's ready time + max startup + the sum of marginal
      // latencies of r's remote messages. Apply that bound to every
      // remote receiver fed from r.
      const std::vector<std::size_t>& resource =
          options.egress_resource_of;
      // Per resource: ready time, max O, sum of L over remote messages.
      std::map<std::size_t, double> res_ready;
      std::map<std::size_t, double> res_max_o;
      std::map<std::size_t, double> res_sum_l;
      for (std::size_t i = 0; i < p; ++i) {
        for (std::size_t j : schedule.targets_of(i, s)) {
          if (resource[i] == resource[j]) {
            continue;
          }
          auto [it, inserted] = res_ready.try_emplace(resource[i], ready[i]);
          if (!inserted) {
            it->second = std::max(it->second, ready[i]);
          }
          auto& max_o = res_max_o[resource[i]];
          max_o = std::max(max_o,
                           is_put(i, j) ? profile.o(i, i) : profile.o(i, j));
          res_sum_l[resource[i]] += profile.l(i, j);
        }
      }
      for (std::size_t i = 0; i < p; ++i) {
        for (std::size_t j : schedule.targets_of(i, s)) {
          if (resource[i] == resource[j]) {
            continue;
          }
          const std::size_t r = resource[i];
          const double bound =
              res_ready[r] + res_max_o[r] + res_sum_l[r];
          next[j] = std::max(next[j], bound);
        }
      }
    }
    if (options.receiver_processing) {
      // Serial completion processing: each incoming *message* costs the
      // receiver its marginal latency on top of the latest dependency.
      // Puts land in the flag array without receiver CPU involvement.
      for (std::size_t j = 0; j < p; ++j) {
        double processing = 0.0;
        for (std::size_t i : schedule.sources_of(j, s)) {
          if (!is_put(i, j)) {
            processing += profile.l(i, j);
          }
        }
        next[j] += processing;
      }
    }
    ready = next;
    const double after = *std::max_element(ready.begin(), ready.end());
    result.stage_increment.push_back(after - before);
  }

  result.critical_path =
      *std::max_element(ready.begin(), ready.end()) - start_of_critical;
  return result;
}

double predicted_time(const Schedule& schedule, const TopologyProfile& profile,
                      const PredictOptions& options) {
  thread_local CompiledSchedule compiled;
  thread_local PredictWorkspace workspace;
  compiled.compile(schedule, profile);
  return predicted_time(compiled, options, workspace);
}

double arrival_cost(const Schedule& arrival, const TopologyProfile& profile) {
  return predicted_time(arrival, profile);
}

}  // namespace optibar
