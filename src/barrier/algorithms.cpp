#include "barrier/algorithms.hpp"

#include "util/error.hpp"

namespace optibar {

namespace {

std::size_t ceil_log2(std::size_t n) {
  std::size_t bits = 0;
  std::size_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits;
}

std::size_t floor_pow2(std::size_t n) {
  std::size_t v = 1;
  while (v * 2 <= n) {
    v <<= 1;
  }
  return v;
}

StageMatrix empty_stage(std::size_t p) { return StageMatrix(p, p, 0); }

}  // namespace

const char* to_string(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kLinear:
      return "linear";
    case AlgorithmKind::kDissemination:
      return "dissemination";
    case AlgorithmKind::kTree:
      return "tree";
    case AlgorithmKind::kKAryTree:
      return "kary-tree";
    case AlgorithmKind::kHeapTree:
      return "heap-tree";
    case AlgorithmKind::kPairwiseExchange:
      return "pairwise-exchange";
    case AlgorithmKind::kRadixDissemination:
      return "radix-dissemination";
    case AlgorithmKind::kRing:
      return "ring";
  }
  OPTIBAR_FAIL("unknown AlgorithmKind");
}

Schedule linear_arrival(std::size_t ranks) {
  OPTIBAR_REQUIRE(ranks > 0, "linear_arrival of zero ranks");
  Schedule s(ranks);
  if (ranks == 1) {
    return s;
  }
  StageMatrix gather = empty_stage(ranks);
  for (std::size_t i = 1; i < ranks; ++i) {
    gather(i, 0) = 1;
  }
  s.append_stage(std::move(gather));
  return s;
}

Schedule linear_barrier(std::size_t ranks) {
  const Schedule arrival = linear_arrival(ranks);
  return arrival.concatenated(arrival.transposed_reversed());
}

Schedule dissemination_arrival(std::size_t ranks) {
  OPTIBAR_REQUIRE(ranks > 0, "dissemination_arrival of zero ranks");
  Schedule s(ranks);
  const std::size_t stages = ceil_log2(ranks);
  for (std::size_t st = 0; st < stages; ++st) {
    StageMatrix m = empty_stage(ranks);
    const std::size_t offset = std::size_t{1} << st;
    for (std::size_t i = 0; i < ranks; ++i) {
      m(i, (i + offset) % ranks) = 1;
    }
    s.append_stage(std::move(m));
  }
  return s;
}

Schedule dissemination_barrier(std::size_t ranks) {
  return dissemination_arrival(ranks);
}

Schedule tree_arrival(std::size_t ranks) {
  OPTIBAR_REQUIRE(ranks > 0, "tree_arrival of zero ranks");
  Schedule s(ranks);
  const std::size_t stages = ceil_log2(ranks);
  for (std::size_t st = 0; st < stages; ++st) {
    StageMatrix m = empty_stage(ranks);
    const std::size_t half = std::size_t{1} << st;
    const std::size_t full = half << 1;
    for (std::size_t i = half; i < ranks; i += full) {
      // Senders are the ranks whose index is an odd multiple of 2^st;
      // they fold into the even multiple below them (recursive pairing).
      m(i, i - half) = 1;
    }
    s.append_stage(std::move(m));
  }
  return s;
}

Schedule tree_barrier(std::size_t ranks) {
  const Schedule arrival = tree_arrival(ranks);
  return arrival.concatenated(arrival.transposed_reversed());
}

Schedule kary_tree_arrival(std::size_t ranks, std::size_t arity) {
  OPTIBAR_REQUIRE(ranks > 0, "kary_tree_arrival of zero ranks");
  OPTIBAR_REQUIRE(arity >= 2, "kary tree arity must be >= 2, got " << arity);
  Schedule s(ranks);
  if (ranks == 1) {
    return s;
  }
  // Heap layout: parent(i) = (i-1)/arity. Compute each rank's depth.
  std::vector<std::size_t> depth(ranks, 0);
  std::size_t max_depth = 0;
  for (std::size_t i = 1; i < ranks; ++i) {
    depth[i] = depth[(i - 1) / arity] + 1;
    max_depth = std::max(max_depth, depth[i]);
  }
  // Deepest level signals first so parents accumulate complete subtrees.
  for (std::size_t d = max_depth; d >= 1; --d) {
    StageMatrix m = empty_stage(ranks);
    for (std::size_t i = 1; i < ranks; ++i) {
      if (depth[i] == d) {
        m(i, (i - 1) / arity) = 1;
      }
    }
    s.append_stage(std::move(m));
  }
  return s;
}

Schedule kary_tree_barrier(std::size_t ranks, std::size_t arity) {
  const Schedule arrival = kary_tree_arrival(ranks, arity);
  return arrival.concatenated(arrival.transposed_reversed());
}

Schedule heap_tree_arrival(std::size_t ranks) {
  return kary_tree_arrival(ranks, 2);
}

Schedule heap_tree_barrier(std::size_t ranks) {
  return kary_tree_barrier(ranks, 2);
}

Schedule pairwise_exchange_arrival(std::size_t ranks) {
  OPTIBAR_REQUIRE(ranks > 0, "pairwise_exchange_arrival of zero ranks");
  Schedule s(ranks);
  if (ranks == 1) {
    return s;
  }
  const std::size_t m = floor_pow2(ranks);
  // Fold the excess ranks [m, ranks) into their partners below.
  if (ranks > m) {
    StageMatrix fold = empty_stage(ranks);
    for (std::size_t i = m; i < ranks; ++i) {
      fold(i, i - m) = 1;
    }
    s.append_stage(std::move(fold));
  }
  // Symmetric exchange among the power-of-two subset.
  for (std::size_t bit = 1; bit < m; bit <<= 1) {
    StageMatrix x = empty_stage(ranks);
    for (std::size_t i = 0; i < m; ++i) {
      x(i, i ^ bit) = 1;
    }
    s.append_stage(std::move(x));
  }
  // Unfold: release the excess ranks.
  if (ranks > m) {
    StageMatrix unfold = empty_stage(ranks);
    for (std::size_t i = m; i < ranks; ++i) {
      unfold(i - m, i) = 1;
    }
    s.append_stage(std::move(unfold));
  }
  return s;
}

Schedule pairwise_exchange_barrier(std::size_t ranks) {
  return pairwise_exchange_arrival(ranks);
}

Schedule radix_dissemination_arrival(std::size_t ranks, std::size_t radix) {
  OPTIBAR_REQUIRE(ranks > 0, "radix_dissemination_arrival of zero ranks");
  OPTIBAR_REQUIRE(radix >= 2, "dissemination radix must be >= 2, got " << radix);
  Schedule s(ranks);
  if (ranks == 1) {
    return s;
  }
  // ceil(log_radix(ranks)) stages: the smallest m with radix^m >= ranks.
  std::size_t power = 1;
  std::size_t stages = 0;
  while (power < ranks) {
    // power * radix cannot overflow for any sane rank count, but guard
    // the loop variable anyway.
    OPTIBAR_ASSERT(power <= (std::size_t{1} << 62) / radix,
                   "radix power overflow");
    power *= radix;
    ++stages;
  }
  power = 1;
  for (std::size_t st = 0; st < stages; ++st) {
    StageMatrix m = empty_stage(ranks);
    for (std::size_t j = 1; j < radix; ++j) {
      const std::size_t offset = (j * power) % ranks;
      if (offset == 0) {
        continue;  // a whole-ring hop is a no-op
      }
      for (std::size_t i = 0; i < ranks; ++i) {
        m(i, (i + offset) % ranks) = 1;
      }
    }
    s.append_stage(std::move(m));
    power *= radix;
  }
  return s;
}

Schedule radix_dissemination_barrier(std::size_t ranks, std::size_t radix) {
  return radix_dissemination_arrival(ranks, radix);
}

Schedule ring_arrival(std::size_t ranks) {
  OPTIBAR_REQUIRE(ranks > 0, "ring_arrival of zero ranks");
  Schedule s(ranks);
  // Token descends P-1 -> ... -> 0 so knowledge funnels into rank 0,
  // matching the convention of the other hierarchical arrival phases.
  for (std::size_t st = 0; st + 1 < ranks; ++st) {
    StageMatrix m = empty_stage(ranks);
    const std::size_t sender = ranks - 1 - st;
    m(sender, sender - 1) = 1;
    s.append_stage(std::move(m));
  }
  return s;
}

Schedule ring_barrier(std::size_t ranks) {
  const Schedule arrival = ring_arrival(ranks);
  return arrival.concatenated(arrival.transposed_reversed());
}

std::vector<ComponentAlgorithm> paper_algorithms() {
  return {
      {"linear", AlgorithmKind::kLinear,
       [](std::size_t n) { return linear_arrival(n); }, false},
      {"dissemination", AlgorithmKind::kDissemination,
       [](std::size_t n) { return dissemination_arrival(n); }, true},
      {"tree", AlgorithmKind::kTree,
       [](std::size_t n) { return tree_arrival(n); }, false},
  };
}

std::vector<ComponentAlgorithm> extended_algorithms() {
  std::vector<ComponentAlgorithm> algos = paper_algorithms();
  algos.push_back({"kary4-tree", AlgorithmKind::kKAryTree,
                   [](std::size_t n) { return kary_tree_arrival(n, 4); },
                   false});
  algos.push_back({"heap-tree", AlgorithmKind::kHeapTree,
                   [](std::size_t n) { return heap_tree_arrival(n); }, false});
  algos.push_back({"pairwise-exchange", AlgorithmKind::kPairwiseExchange,
                   [](std::size_t n) { return pairwise_exchange_arrival(n); },
                   true});
  algos.push_back({"radix4-dissemination", AlgorithmKind::kRadixDissemination,
                   [](std::size_t n) {
                     return radix_dissemination_arrival(n, 4);
                   },
                   true});
  return algos;
}

}  // namespace optibar
