#include "barrier/schedule.hpp"

#include "util/error.hpp"

namespace optibar {

Schedule::Schedule(std::size_t ranks) : ranks_(ranks) {
  OPTIBAR_REQUIRE(ranks_ > 0, "schedule needs at least one rank");
}

Schedule::Schedule(std::size_t ranks, std::vector<StageMatrix> stages)
    : Schedule(ranks) {
  for (auto& stage : stages) {
    append_stage(std::move(stage));
  }
}

void Schedule::check_stage(const StageMatrix& stage) const {
  OPTIBAR_REQUIRE(stage.rows() == ranks_ && stage.cols() == ranks_,
                  "stage must be " << ranks_ << "x" << ranks_ << ", got "
                                   << stage.rows() << "x" << stage.cols());
  for (std::size_t i = 0; i < ranks_; ++i) {
    OPTIBAR_REQUIRE(!stage(i, i),
                    "stage has a self-signal at rank " << i
                                                       << "; the diagonal must be zero");
  }
}

const StageMatrix& Schedule::stage(std::size_t s) const {
  OPTIBAR_REQUIRE(s < stages_.size(),
                  "stage " << s << " out of range (" << stages_.size()
                           << " stages)");
  return stages_[s];
}

void Schedule::append_stage(StageMatrix stage) {
  check_stage(stage);
  stages_.push_back(std::move(stage));
  transports_.emplace_back();  // default: all two-sided
}

void Schedule::pop_stage() {
  OPTIBAR_REQUIRE(!stages_.empty(), "pop_stage on an empty schedule");
  stages_.pop_back();
  transports_.pop_back();
}

const StageMatrix& Schedule::transport(std::size_t s) const {
  OPTIBAR_REQUIRE(s < transports_.size(),
                  "transport stage " << s << " out of range ("
                                     << transports_.size() << " stages)");
  return transports_[s];
}

void Schedule::set_transport(std::size_t s, StageMatrix transport) {
  OPTIBAR_REQUIRE(s < stages_.size(),
                  "set_transport stage " << s << " out of range ("
                                         << stages_.size() << " stages)");
  if (transport.empty() || transport.all_zero()) {
    transports_[s] = StageMatrix();  // normalized all-two-sided spelling
    return;
  }
  OPTIBAR_REQUIRE(transport.rows() == ranks_ && transport.cols() == ranks_,
                  "transport must be " << ranks_ << "x" << ranks_ << ", got "
                                       << transport.rows() << "x"
                                       << transport.cols());
  const StageMatrix& signals = stages_[s];
  for (std::size_t i = 0; i < ranks_; ++i) {
    for (std::size_t j = 0; j < ranks_; ++j) {
      OPTIBAR_REQUIRE(!transport(i, j) || signals(i, j),
                      "transport marks " << i << " -> " << j << " of stage "
                                         << s
                                         << " one-sided, but the stage has no "
                                            "such signal");
    }
  }
  transports_[s] = std::move(transport);
}

bool Schedule::one_sided(std::size_t s, std::size_t i, std::size_t j) const {
  const StageMatrix& t = transport(s);
  return !t.empty() && t(i, j) != 0;
}

bool Schedule::has_one_sided() const {
  for (const auto& t : transports_) {
    if (!t.empty()) {
      return true;
    }
  }
  return false;
}

std::size_t Schedule::one_sided_signal_count() const {
  std::size_t n = 0;
  for (const auto& t : transports_) {
    if (!t.empty()) {
      n += t.count_nonzero();
    }
  }
  return n;
}

std::vector<std::size_t> Schedule::targets_of(std::size_t rank,
                                              std::size_t s) const {
  const StageMatrix& m = stage(s);
  OPTIBAR_REQUIRE(rank < ranks_, "rank out of range");
  std::vector<std::size_t> out;
  for (std::size_t j = 0; j < ranks_; ++j) {
    if (m(rank, j)) {
      out.push_back(j);
    }
  }
  return out;
}

std::vector<std::size_t> Schedule::sources_of(std::size_t rank,
                                              std::size_t s) const {
  const StageMatrix& m = stage(s);
  OPTIBAR_REQUIRE(rank < ranks_, "rank out of range");
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < ranks_; ++i) {
    if (m(i, rank)) {
      out.push_back(i);
    }
  }
  return out;
}

BoolMatrix Schedule::knowledge_after(std::size_t a) const {
  OPTIBAR_REQUIRE(a < stages_.size(), "knowledge_after: stage out of range");
  // K_0 = I + S_0; K_a = K_{a-1} + K_{a-1} * S_a   (Eq. 3)
  BoolMatrix k = bool_add(BoolMatrix::identity(ranks_), stages_[0]);
  for (std::size_t s = 1; s <= a; ++s) {
    k = bool_add(k, bool_multiply(k, stages_[s]));
  }
  return k;
}

BoolMatrix Schedule::final_knowledge() const {
  if (stages_.empty()) {
    return BoolMatrix::identity(ranks_);
  }
  return knowledge_after(stages_.size() - 1);
}

bool Schedule::is_barrier() const { return final_knowledge().all_nonzero(); }

Schedule Schedule::transposed_reversed() const {
  Schedule out(ranks_);
  for (std::size_t s = stages_.size(); s-- > 0;) {
    out.append_stage(stages_[s].transposed());
    if (!transports_[s].empty()) {
      // A put arrival edge departs as a put too: transpose alongside.
      out.set_transport(out.stage_count() - 1, transports_[s].transposed());
    }
  }
  return out;
}

Schedule Schedule::concatenated(const Schedule& tail) const {
  OPTIBAR_REQUIRE(tail.ranks_ == ranks_,
                  "cannot concatenate schedules over " << ranks_ << " and "
                                                       << tail.ranks_
                                                       << " ranks");
  Schedule out = *this;
  for (std::size_t s = 0; s < tail.stages_.size(); ++s) {
    out.append_stage(tail.stages_[s]);
    if (!tail.transports_[s].empty()) {
      out.set_transport(out.stage_count() - 1, tail.transports_[s]);
    }
  }
  return out;
}

Schedule Schedule::compacted() const {
  Schedule out(ranks_);
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    if (!stages_[s].all_zero()) {
      out.append_stage(stages_[s]);
      if (!transports_[s].empty()) {
        out.set_transport(out.stage_count() - 1, transports_[s]);
      }
    }
  }
  return out;
}

std::size_t Schedule::total_signals() const {
  std::size_t n = 0;
  for (const auto& stage : stages_) {
    n += stage.count_nonzero();
  }
  return n;
}

std::size_t Schedule::nonempty_stage_count() const {
  std::size_t n = 0;
  for (const auto& stage : stages_) {
    if (!stage.all_zero()) {
      ++n;
    }
  }
  return n;
}

void embed_schedule(Schedule& global, const Schedule& local,
                    const std::vector<std::size_t>& rank_map,
                    std::size_t first_stage) {
  OPTIBAR_REQUIRE(rank_map.size() == local.ranks(),
                  "rank_map size " << rank_map.size()
                                   << " != local rank count " << local.ranks());
  for (std::size_t mapped : rank_map) {
    OPTIBAR_REQUIRE(mapped < global.ranks(),
                    "rank_map entry " << mapped << " out of range for "
                                      << global.ranks() << " global ranks");
  }
  while (global.stage_count() < first_stage + local.stage_count()) {
    global.append_stage(StageMatrix(global.ranks(), global.ranks(), 0));
  }
  // Rebuild the affected stages with the local signals (and their
  // transport tags) OR-ed in.
  std::vector<StageMatrix> stages(global.stages().begin(),
                                  global.stages().end());
  std::vector<StageMatrix> transports;
  transports.reserve(global.stage_count());
  for (std::size_t s = 0; s < global.stage_count(); ++s) {
    transports.push_back(global.transport(s));
  }
  for (std::size_t s = 0; s < local.stage_count(); ++s) {
    const StageMatrix& src = local.stage(s);
    const StageMatrix& src_transport = local.transport(s);
    StageMatrix& dst = stages[first_stage + s];
    StageMatrix& dst_transport = transports[first_stage + s];
    if (!src_transport.empty() && dst_transport.empty()) {
      dst_transport = StageMatrix(global.ranks(), global.ranks(), 0);
    }
    for (std::size_t i = 0; i < local.ranks(); ++i) {
      for (std::size_t j = 0; j < local.ranks(); ++j) {
        if (src(i, j)) {
          dst(rank_map[i], rank_map[j]) = 1;
          if (!src_transport.empty() && src_transport(i, j)) {
            dst_transport(rank_map[i], rank_map[j]) = 1;
          }
        }
      }
    }
  }
  Schedule rebuilt(global.ranks(), std::move(stages));
  for (std::size_t s = 0; s < transports.size(); ++s) {
    if (!transports[s].empty()) {
      rebuilt.set_transport(s, std::move(transports[s]));
    }
  }
  global = std::move(rebuilt);
}

std::ostream& operator<<(std::ostream& os, const Schedule& schedule) {
  os << "Schedule over " << schedule.ranks() << " ranks, "
     << schedule.stage_count() << " stages, " << schedule.total_signals()
     << " signals\n";
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    os << "S" << s << ":\n" << schedule.stage(s);
    if (!schedule.transport(s).empty()) {
      os << "T" << s << " (one-sided subset):\n" << schedule.transport(s);
    }
  }
  return os;
}

}  // namespace optibar
