#include "barrier/dependency_graph.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace optibar {

DependencyGraph::DependencyGraph(const Schedule& schedule,
                                 const TopologyProfile& profile,
                                 const PredictOptions& options) {
  const std::size_t p = schedule.ranks();
  OPTIBAR_REQUIRE(profile.ranks() == p, "profile/schedule rank mismatch");
  OPTIBAR_REQUIRE(options.egress_resource_of.empty(),
                  "DependencyGraph does not model the egress-contention "
                  "term; use predict() for contended pricing");
  const std::size_t stages = schedule.stage_count();

  completion_.assign(stages + 1, std::vector<double>(p, 0.0));
  predecessor_.assign(stages + 1, std::vector<DepNode>(p));
  if (!options.entry_times.empty()) {
    OPTIBAR_REQUIRE(options.entry_times.size() == p, "entry_times size");
    completion_[0] = options.entry_times;
  }
  for (std::size_t i = 0; i < p; ++i) {
    predecessor_[0][i] = DepNode{i, 0};  // entry vertices are their own roots
  }

  for (std::size_t s = 0; s < stages; ++s) {
    const bool awaited =
        s < options.awaited_stages.size() && options.awaited_stages[s];
    // Local sequencing edge (i, s) -> (i, s+1), weight = i's batch cost.
    for (std::size_t i = 0; i < p; ++i) {
      const double w =
          step_cost(profile, i, schedule.targets_of(i, s), awaited);
      completion_[s + 1][i] = completion_[s][i] + w;
      predecessor_[s + 1][i] = DepNode{i, s};
    }
    // Signal edges (i, s) -> (j, s+1) for each target j of i.
    for (std::size_t i = 0; i < p; ++i) {
      const std::vector<std::size_t> targets = schedule.targets_of(i, s);
      if (targets.empty()) {
        continue;
      }
      const double batch_done =
          completion_[s][i] + step_cost(profile, i, targets, awaited);
      for (std::size_t j : targets) {
        if (batch_done > completion_[s + 1][j]) {
          completion_[s + 1][j] = batch_done;
          predecessor_[s + 1][j] = DepNode{i, s};
        }
      }
    }
    if (options.receiver_processing) {
      // Receiver-side serial completion processing (see cost_model.hpp);
      // added after predecessor selection so path extraction still names
      // the binding dependency.
      for (std::size_t j = 0; j < p; ++j) {
        double processing = 0.0;
        for (std::size_t i : schedule.sources_of(j, s)) {
          processing += profile.l(i, j);
        }
        completion_[s + 1][j] += processing;
      }
    }
  }

  // Exit: the last rank to complete the final stage.
  const auto& last = completion_[stages];
  const std::size_t worst_rank = static_cast<std::size_t>(
      std::max_element(last.begin(), last.end()) - last.begin());
  const double start = *std::max_element(completion_[0].begin(),
                                         completion_[0].end());
  critical_cost_ = last[worst_rank] - start;

  // Walk predecessors back to the entry layer.
  DepNode node{worst_rank, stages};
  std::vector<DepNode> path{node};
  while (node.stage > 0) {
    node = predecessor_[node.stage][node.rank];
    path.push_back(node);
  }
  std::reverse(path.begin(), path.end());
  critical_nodes_ = std::move(path);
}

std::string DependencyGraph::describe_critical_path() const {
  std::ostringstream os;
  os << "critical path (" << critical_cost_ << " s):\n";
  for (const DepNode& node : critical_nodes_) {
    os << "  rank " << node.rank << " @ stage " << node.stage
       << " (t=" << completion_[node.stage][node.rank] << ")\n";
  }
  return os.str();
}

}  // namespace optibar
