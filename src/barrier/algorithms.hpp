// The component barrier algorithms.
//
// Section V-B builds from three algorithms chosen to span the design
// space: the linear barrier (simplicity), the binary tree barrier (the
// widely used hierarchical method, and what OpenMPI's MPI_Barrier
// implements per Section VII-C), and the dissemination barrier
// (participant-count neutral, no explicit departure phase).
//
// Section VIII names "generalizing with respect to algorithms employed
// as components" as future work; we additionally provide k-ary tree,
// heap-shaped binary tree, and pairwise-exchange barriers, used by the
// extended tuner and the algorithm-set ablation bench.
//
// Hierarchical algorithms follow the paper's convention: the *arrival*
// phase funnels knowledge of every rank's arrival into rank 0 (the
// temporary root), and the departure phase is the transposed matrices in
// reverse order. The dissemination barrier is "self-completing": its
// arrival phase alone is a full barrier.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "barrier/schedule.hpp"

namespace optibar {

enum class AlgorithmKind {
  kLinear,
  kDissemination,
  kTree,
  kKAryTree,
  kHeapTree,
  kPairwiseExchange,
  kRadixDissemination,
  kRing,
};

const char* to_string(AlgorithmKind kind);

// ---- Complete barriers (arrival + departure where applicable) ----

/// Linear barrier: every rank signals rank 0, rank 0 signals everyone.
/// 2 stages (Figure 2).
Schedule linear_barrier(std::size_t ranks);

/// Dissemination barrier: ceil(log2 P) stages; in stage s rank i signals
/// (i + 2^s) mod P (Figure 3). Defined for any P.
Schedule dissemination_barrier(std::size_t ranks);

/// Binary tree barrier by recursive pairing: 2*ceil(log2 P) stages
/// (Figure 4); arrival collects into rank 0, departure is the transposed
/// reverse.
Schedule tree_barrier(std::size_t ranks);

/// k-ary heap-shaped tree: parent(i) = (i-1)/k; one stage per tree level
/// in each direction.
Schedule kary_tree_barrier(std::size_t ranks, std::size_t arity);

/// Heap-shaped binary tree (kary with arity 2). Distinct from
/// tree_barrier in signal pattern, same asymptotics.
Schedule heap_tree_barrier(std::size_t ranks);

/// Pairwise exchange: power-of-two ranks exchange with (i XOR 2^s) each
/// stage; non-power-of-two counts fold the excess ranks into the largest
/// power-of-two subset with a pre- and post-stage. Self-completing.
Schedule pairwise_exchange_barrier(std::size_t ranks);

/// Radix-k dissemination: ceil(log_k P) stages; in stage s rank i
/// signals (i + j*k^s) mod P for j = 1..k-1 (offsets that are multiples
/// of P are dropped as no-ops). k = 2 reproduces the classic
/// dissemination barrier. Trades stage count (startup costs O) against
/// per-stage fan-out (marginal costs L) — the knob the paper's model
/// makes priceable. Self-completing, defined for any P.
Schedule radix_dissemination_barrier(std::size_t ranks, std::size_t radix);

/// Ring barrier: a token circulates 0 -> 1 -> ... -> P-1 (arrival, P-1
/// stages), then back down (departure). Minimal signal count and fan-out
/// but maximal depth — the worst large-P choice and a useful baseline
/// for ablations (its single-link stages make per-tier costs legible).
Schedule ring_barrier(std::size_t ranks);

// ---- Arrival phases (for hierarchical composition) ----

/// One stage: all ranks signal rank 0.
Schedule linear_arrival(std::size_t ranks);

/// ceil(log2 P) stages funnelling arrival knowledge into rank 0.
Schedule tree_arrival(std::size_t ranks);

/// Arrival == the complete dissemination barrier (self-completing).
Schedule dissemination_arrival(std::size_t ranks);

Schedule kary_tree_arrival(std::size_t ranks, std::size_t arity);
Schedule heap_tree_arrival(std::size_t ranks);
Schedule pairwise_exchange_arrival(std::size_t ranks);
Schedule radix_dissemination_arrival(std::size_t ranks, std::size_t radix);

/// P-1 stages passing the token up the ring; knowledge funnels into
/// rank P-1, then the composer-friendly variant funnels into rank 0
/// (reversed direction), so ring_arrival ends at rank 0 like the other
/// hierarchical arrivals.
Schedule ring_arrival(std::size_t ranks);

// ---- Component registry for the adaptive tuner ----

/// One candidate building block: a named arrival-phase generator plus
/// the properties the composer needs.
struct ComponentAlgorithm {
  std::string name;
  AlgorithmKind kind;
  /// Build the arrival phase over n local ranks (local rank 0 is the
  /// cluster root).
  std::function<Schedule(std::size_t)> arrival;
  /// True iff the arrival phase alone synchronizes all local ranks
  /// (then no departure phase is needed when used at the tree root, and
  /// the predicted-cost multiplier is 1 instead of 2 — Section VII-B).
  bool self_completing = false;
};

/// The paper's three building blocks: linear, dissemination, tree.
std::vector<ComponentAlgorithm> paper_algorithms();

/// Paper set plus k-ary(4) tree, heap-tree, pairwise exchange and
/// radix-4 dissemination.
std::vector<ComponentAlgorithm> extended_algorithms();

}  // namespace optibar
