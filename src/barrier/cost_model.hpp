// The coupled cost model (Sections IV and VI).
//
// The per-step cost of rank i sending to a recipient vector J is
//
//   Eq. 1:  t(i,J) = max_k O(i,j_k) + sum_k L(i,j_k)
//   Eq. 2:  t(i,J) = O(i,i)         + sum_k L(i,j_k)
//
// Eq. 1 models the expected total transmission time in general; Eq. 2
// models the case where the receivers are known to already await the
// signal (the paper applies it to departure phases, whose receivers are
// blocked inside the barrier by construction).
//
// The prediction for a whole schedule weights each incidence matrix by
// these costs and propagates readiness through the layered dependency
// graph; the reported figure is the critical path from all arrivals
// through all departures (Section VI, "Predictions were collected by...").
//
// Receiver-side processing: the paper describes weighting the incidence
// matrices "to obtain matrices of per-rank cost estimates at each step"
// without spelling out the receive side; with sender-only costing the
// linear barrier's fan-in stage is free and its predicted curve would be
// flat, while the paper's Figure 5-A/7-A show it growing steeply with P.
// We therefore charge a receiving rank the marginal latency L(i,j) of
// each incoming message (serial completion processing) on top of the
// latest dependency — the same per-message quantity the Section IV-A
// batch benchmark measures. This reproduces the paper's predicted
// shapes; set PredictOptions::receiver_processing = false to recover the
// strict sender-only reading (compared in bench_ablation_model).
#pragma once

#include <cstddef>
#include <vector>

#include "barrier/schedule.hpp"
#include "topology/profile.hpp"

namespace optibar {

struct PredictOptions {
  /// Per-stage flag: stage s is costed with Eq. 2 when awaited_stages[s]
  /// is true (receivers already waiting — departure phases), with Eq. 1
  /// otherwise. Shorter than the schedule => remaining stages use Eq. 1.
  std::vector<bool> awaited_stages;

  /// Per-rank skew added to every rank's entry time, modelling staggered
  /// arrival; empty means simultaneous arrival.
  std::vector<double> entry_times;

  /// Charge receivers the serial per-message processing cost (see the
  /// header comment). Disable for the strict sender-only model.
  bool receiver_processing = true;

  /// Optional analytic egress-contention term — the predictor-side twin
  /// of SimOptions::egress_resource_of, and an instance of Section
  /// VI-A's "augment the cost model with terms for further phenomena":
  /// egress_resource_of[rank] assigns each rank an egress resource
  /// (typically its node's NIC). Per stage, all messages leaving a
  /// resource serialize: the last of them cannot arrive before the
  /// resource's ready time plus the largest startup plus the *sum* of
  /// their marginal latencies. Empty disables the term.
  std::vector<std::size_t> egress_resource_of;
};

struct Prediction {
  /// Critical-path cost: time from the last arrival until the last rank
  /// departs. This is the figure plotted in Figures 5-8.
  double critical_path = 0.0;
  /// Departure time of each rank (same origin as entry_times).
  std::vector<double> rank_completion;
  /// Per-stage increment of the critical path (diagnostics/ablation).
  std::vector<double> stage_increment;
};

/// Cost of one send batch per Eq. 1 (awaited == false) or Eq. 2
/// (awaited == true). An empty target set costs zero. Prices every
/// edge two-sided; transport-tagged schedules are priced by predict()
/// / predict_reference(), which read Schedule::transport() per stage
/// (put edges swap O(i,j) for the local O(i,i), deliver R(i,j) after
/// the batch, and skip receiver processing).
double step_cost(const TopologyProfile& profile, std::size_t sender,
                 const std::vector<std::size_t>& targets, bool awaited);

/// Full-schedule prediction. A thin wrapper over the compiled evaluation
/// kernel (barrier/compiled_schedule.hpp): the schedule is compiled
/// against the profile into thread-local reused storage and evaluated
/// with a thread-local workspace, so repeated calls allocate only the
/// returned Prediction. Bit-identical to predict_reference().
Prediction predict(const Schedule& schedule, const TopologyProfile& profile,
                   const PredictOptions& options = {});

/// The direct (uncompiled) implementation of the Section VI recurrence,
/// kept as the independently-written oracle the compiled kernel is
/// parity-tested against. Prefer predict(); this path re-derives the
/// stage adjacency on every call.
Prediction predict_reference(const Schedule& schedule,
                             const TopologyProfile& profile,
                             const PredictOptions& options = {});

/// Shorthand for predict(...).critical_path; with the thread-local
/// workspace warm this performs no heap allocations at all.
double predicted_time(const Schedule& schedule, const TopologyProfile& profile,
                      const PredictOptions& options = {});

/// Convenience used by the composer: cost of an arrival phase where
/// stage 0 uses Eq. 1 and subsequent stages use Eq. 1 as well (receivers
/// of arrival signals are not guaranteed to be waiting).
double arrival_cost(const Schedule& arrival, const TopologyProfile& profile);

}  // namespace optibar
