// Schedule serialisation.
//
// Tuned schedules are artefacts worth keeping: the CLI writes them next
// to the profile they were tuned from, and the runtime library
// (src/core/library.hpp) indexes them at barrier-call time — the
// "solution which stores the profile in a manner which can be
// efficiently indexed at run-time" the paper's Section VIII asks for.
// The format is versioned text: stage matrices as 0/1 rows, plus the
// per-stage awaited (departure) flags the Eq. 2 predictor needs.
// v2 appends a `T<stage>` transport matrix (the one-sided subset) after
// each stage that carries one; pure two-sided schedules still save as
// v1, byte-identical to pre-RMA builds, and v1 files load with every
// edge defaulting to two-sided.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "barrier/schedule.hpp"

namespace optibar {

/// A schedule plus the departure-stage flags produced by the composer.
struct StoredSchedule {
  Schedule schedule{1};
  std::vector<bool> awaited_stages;  ///< empty = all Eq. 1
};

void save_schedule(std::ostream& os, const StoredSchedule& stored);
StoredSchedule load_schedule(std::istream& is);

void save_schedule_file(const std::string& path, const StoredSchedule& stored);
StoredSchedule load_schedule_file(const std::string& path);

}  // namespace optibar
