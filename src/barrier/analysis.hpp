// Schedule analysis: where do a barrier's signals actually travel?
//
// Section VI-A explains the algorithms' relative performance in terms of
// their use of slow links ("the tree barrier makes reduced use of the
// slower links relative to the dissemination barrier"). This module
// makes that quantitative: per-tier signal counts, per-stage structure,
// and a decomposition of the predicted critical path by link tier.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "barrier/cost_model.hpp"
#include "barrier/schedule.hpp"
#include "topology/custom_machine.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "topology/profile.hpp"

namespace optibar {

/// Signal counts per link tier. Indexed by LinkLevel (kSelf unused —
/// schedules have no self-signals).
struct LinkUsage {
  std::size_t shared_cache = 0;
  std::size_t same_chip = 0;
  std::size_t cross_socket = 0;
  std::size_t inter_node = 0;

  std::size_t total() const {
    return shared_cache + same_chip + cross_socket + inter_node;
  }
  std::size_t& at(LinkLevel level);
  std::size_t at(LinkLevel level) const;
};

/// Classify every signal of the schedule by the tier of the link it
/// crosses under the given placement.
LinkUsage link_usage(const Schedule& schedule, const MachineSpec& machine,
                     const Mapping& mapping);

/// Per-stage structural profile.
struct StageProfile {
  std::size_t signals = 0;
  std::size_t max_fan_out = 0;  ///< largest per-rank send batch
  std::size_t max_fan_in = 0;   ///< largest per-rank receive set
  std::size_t active_ranks = 0; ///< ranks sending or receiving
  std::size_t inter_node_signals = 0;  ///< requires machine+mapping variant
};

/// Structure of each stage (inter_node_signals left zero).
std::vector<StageProfile> stage_profiles(const Schedule& schedule);

/// Structure of each stage including tier classification.
std::vector<StageProfile> stage_profiles(const Schedule& schedule,
                                         const MachineSpec& machine,
                                         const Mapping& mapping);

/// Seconds of the predicted critical path attributable to each tier:
/// each signal edge on the critical path books its stage increment to
/// the tier of the link it crosses; local sequencing edges book to the
/// sender's outgoing batch's slowest tier.
struct CriticalPathBreakdown {
  double shared_cache = 0.0;
  double same_chip = 0.0;
  double cross_socket = 0.0;
  double inter_node = 0.0;
  double self_overhead = 0.0;  ///< stages entered via local sequencing only
  double total = 0.0;
};

CriticalPathBreakdown critical_path_breakdown(const Schedule& schedule,
                                              const TopologyProfile& profile,
                                              const MachineSpec& machine,
                                              const Mapping& mapping,
                                              const PredictOptions& options = {});

/// Render usage and per-stage structure as a small report.
std::string describe_usage(const Schedule& schedule,
                           const MachineSpec& machine, const Mapping& mapping);

// Irregular-machine variants (rank r on core r — CustomMachine's
// identity placement).
LinkUsage link_usage(const Schedule& schedule, const CustomMachine& machine);
std::string describe_usage(const Schedule& schedule,
                           const CustomMachine& machine);

}  // namespace optibar
