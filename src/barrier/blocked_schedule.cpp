#include "barrier/blocked_schedule.hpp"

#include "barrier/validate.hpp"

namespace optibar {
namespace {

/// Extract the (src, dst) pairs of one stage matrix in ascending scan
/// order — the same order a dense compile() walks them.
std::vector<std::pair<std::uint32_t, std::uint32_t>> stage_edge_list(
    const StageMatrix& stage) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::size_t i = 0; i < stage.rows(); ++i) {
    for (std::size_t j = 0; j < stage.cols(); ++j) {
      if (stage(i, j)) {
        edges.emplace_back(static_cast<std::uint32_t>(i),
                           static_cast<std::uint32_t>(j));
      }
    }
  }
  return edges;
}

}  // namespace

BlockedSchedule::BlockedSchedule(
    std::vector<std::vector<std::size_t>> clusters,
    std::vector<std::size_t> class_of, std::vector<Schedule> class_arrivals,
    Schedule leader_arrival, std::vector<std::size_t> leader_ranks,
    bool leader_self_completing)
    : clusters_(std::move(clusters)),
      class_of_(std::move(class_of)),
      class_arrivals_(std::move(class_arrivals)),
      leader_arrival_(std::move(leader_arrival)),
      leader_ranks_(std::move(leader_ranks)),
      leader_self_completing_(leader_self_completing) {
  const std::size_t c = clusters_.size();
  const std::size_t k = class_arrivals_.size();
  OPTIBAR_REQUIRE(c >= 2, "blocked schedule needs at least two clusters");
  OPTIBAR_REQUIRE(class_of_.size() == c && leader_ranks_.size() == c,
                  "cluster map sizes disagree");
  OPTIBAR_REQUIRE(leader_arrival_.ranks() == c,
                  "leader schedule is over " << leader_arrival_.ranks()
                                             << " ranks, expected " << c);
  std::size_t total = 0;
  for (std::size_t ci = 0; ci < c; ++ci) {
    OPTIBAR_REQUIRE(class_of_[ci] < k, "class id out of range");
    OPTIBAR_REQUIRE(!clusters_[ci].empty(), "empty cluster");
    OPTIBAR_REQUIRE(
        clusters_[ci].size() == class_arrivals_[class_of_[ci]].ranks(),
        "cluster " << ci << " size disagrees with its class schedule");
    bool leader_is_member = false;
    for (std::size_t rank : clusters_[ci]) {
      leader_is_member = leader_is_member || rank == leader_ranks_[ci];
      ++total;
    }
    OPTIBAR_REQUIRE(leader_is_member,
                    "leader of cluster " << ci << " is not one of its ranks");
  }
  ranks_ = total;
  // Partition check: every rank in exactly one cluster.
  std::vector<std::uint8_t> seen(ranks_, 0);
  for (const auto& members : clusters_) {
    for (std::size_t rank : members) {
      OPTIBAR_REQUIRE(rank < ranks_ && !seen[rank],
                      "clusters do not partition the rank space");
      seen[rank] = 1;
    }
  }

  // Precompute per-class and leader edge lists.
  class_edges_.resize(k);
  for (std::size_t kk = 0; kk < k; ++kk) {
    class_edges_[kk].reserve(class_arrivals_[kk].stage_count());
    for (std::size_t s = 0; s < class_arrivals_[kk].stage_count(); ++s) {
      class_edges_[kk].push_back(stage_edge_list(class_arrivals_[kk].stage(s)));
    }
  }
  leader_edges_.reserve(leader_arrival_.stage_count());
  for (std::size_t s = 0; s < leader_arrival_.stage_count(); ++s) {
    leader_edges_.push_back(stage_edge_list(leader_arrival_.stage(s)));
  }

  // Global stage plan, mirroring compose_barrier(): all cluster blocks
  // start at stage 0, the leader block after the longest class
  // (merge-early), then the reversed transposed arrival with the leader
  // block omitted when self-completing, then compaction.
  leader_start_ = 0;
  for (const auto& stages : class_edges_) {
    leader_start_ = std::max(leader_start_, stages.size());
  }
  const std::size_t arrival_total =
      leader_start_ + leader_arrival_.stage_count();
  const std::size_t departure_base =
      leader_self_completing_ ? leader_start_ : arrival_total;

  auto ref_at = [&](std::size_t a, bool transposed) {
    BlockedStageRef ref;
    ref.transposed = transposed;
    if (a < leader_start_) {
      ref.local_stage = a;
    } else {
      ref.leader_stage = a - leader_start_;
    }
    return ref;
  };
  std::vector<BlockedStageRef> uncompacted;
  uncompacted.reserve(arrival_total + departure_base);
  for (std::size_t a = 0; a < arrival_total; ++a) {
    uncompacted.push_back(ref_at(a, /*transposed=*/false));
  }
  for (std::size_t d = 0; d < departure_base; ++d) {
    uncompacted.push_back(ref_at(departure_base - 1 - d, /*transposed=*/true));
  }
  for (const BlockedStageRef& ref : uncompacted) {
    if (stage_is_empty(ref)) {
      continue;
    }
    stage_refs_.push_back(ref);
    // A departure stage carries the Eq. 2 awaited contract only when
    // acyclic (transposition preserves cycles, so the untransposed
    // block matrices are checked) — same demotion rule as the dense
    // composer.
    awaited_.push_back(ref.transposed && !stage_has_cycle_blocked(ref));
  }
  arrival_stages_ = 0;
  for (std::size_t s = 0; s < awaited_.size(); ++s) {
    if (!awaited_[s]) {
      arrival_stages_ = s + 1;
    }
  }
}

bool BlockedSchedule::stage_is_empty(const BlockedStageRef& ref) const {
  if (ref.local_stage != kNoBlockStage) {
    for (const auto& stages : class_edges_) {
      if (ref.local_stage < stages.size() &&
          !stages[ref.local_stage].empty()) {
        return false;
      }
    }
  }
  if (ref.leader_stage != kNoBlockStage &&
      !leader_edges_[ref.leader_stage].empty()) {
    return false;
  }
  return true;
}

bool BlockedSchedule::stage_has_cycle_blocked(
    const BlockedStageRef& ref) const {
  // Blocks of one global stage live on disjoint rank sets (the leader
  // block never shares a stage with local blocks — it starts after the
  // longest class), so a global cycle exists iff some block has one.
  if (ref.local_stage != kNoBlockStage) {
    for (const Schedule& arrival : class_arrivals_) {
      if (ref.local_stage < arrival.stage_count() &&
          stage_has_cycle(arrival.stage(ref.local_stage))) {
        return true;
      }
    }
  }
  if (ref.leader_stage != kNoBlockStage &&
      stage_has_cycle(leader_arrival_.stage(ref.leader_stage))) {
    return true;
  }
  return false;
}

std::size_t BlockedSchedule::total_signals() const {
  std::size_t signals = 0;
  for (std::size_t s = 0; s < stage_count(); ++s) {
    for_each_edge(s, [&](std::size_t, std::size_t) { ++signals; });
  }
  return signals;
}

std::size_t BlockedSchedule::memory_bytes() const {
  std::size_t bytes = sizeof(*this);
  for (const auto& members : clusters_) {
    bytes += members.size() * sizeof(std::size_t);
  }
  bytes += class_of_.size() * sizeof(std::size_t);
  bytes += leader_ranks_.size() * sizeof(std::size_t);
  auto schedule_bytes = [](const Schedule& schedule) {
    return schedule.stage_count() * schedule.ranks() * schedule.ranks() *
           sizeof(std::uint8_t);
  };
  for (const Schedule& arrival : class_arrivals_) {
    bytes += schedule_bytes(arrival);
  }
  bytes += schedule_bytes(leader_arrival_);
  for (const auto& stages : class_edges_) {
    for (const auto& edges : stages) {
      bytes += edges.size() * sizeof(Edge);
    }
  }
  for (const auto& edges : leader_edges_) {
    bytes += edges.size() * sizeof(Edge);
  }
  bytes += stage_refs_.size() * sizeof(BlockedStageRef);
  bytes += awaited_.size() / 8 + 1;
  return bytes;
}

Schedule BlockedSchedule::to_dense() const {
  OPTIBAR_REQUIRE(ranks_ <= 8192,
                  "refusing to densify a " << ranks_ << "-rank blocked plan");
  Schedule dense(ranks_);
  for (std::size_t s = 0; s < stage_count(); ++s) {
    StageMatrix stage(ranks_, ranks_);
    for_each_edge(s, [&](std::size_t src, std::size_t dst) {
      stage(src, dst) = 1;
    });
    dense.append_stage(std::move(stage));
  }
  return dense;
}

}  // namespace optibar
