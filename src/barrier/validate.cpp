#include "barrier/validate.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace optibar {

namespace {

// Iterative three-color DFS; returns a rank on a directed cycle, or
// npos. Stage digraphs have zero diagonal (enforced by Schedule), so a
// cycle involves >= 2 ranks.
std::size_t find_cycle_rank(const StageMatrix& stage) {
  const std::size_t n = stage.rows();
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(n, kWhite);
  std::vector<std::pair<std::size_t, std::size_t>> stack;  // (node, next j)
  for (std::size_t start = 0; start < n; ++start) {
    if (color[start] != kWhite) {
      continue;
    }
    color[start] = kGray;
    stack.emplace_back(start, 0);
    while (!stack.empty()) {
      const std::size_t node = stack.back().first;
      const std::size_t j = stack.back().second;
      if (j == n) {
        color[node] = kBlack;
        stack.pop_back();
        continue;
      }
      ++stack.back().second;
      if (!stage(node, j)) {
        continue;
      }
      if (color[j] == kGray) {
        return j;  // back edge: j is on a directed cycle
      }
      if (color[j] == kWhite) {
        color[j] = kGray;
        stack.emplace_back(j, 0);
      }
    }
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

const char* to_string(ScheduleIssueKind kind) {
  switch (kind) {
    case ScheduleIssueKind::kCyclicWait:
      return "cyclic-wait";
    case ScheduleIssueKind::kUnreachableKnowledge:
      return "unreachable-knowledge";
    case ScheduleIssueKind::kMalformed:
      return "malformed";
    case ScheduleIssueKind::kMismatchedPost:
      return "mismatched-post";
    case ScheduleIssueKind::kMissingWait:
      return "missing-wait";
    case ScheduleIssueKind::kUnmatchedWait:
      return "unmatched-wait";
  }
  return "unknown";
}

bool ValidationResult::deadlock_free() const {
  for (const ScheduleIssue& issue : issues) {
    if (issue.kind != ScheduleIssueKind::kUnreachableKnowledge) {
      return false;
    }
  }
  return true;
}

std::string ValidationResult::describe() const {
  if (issues.empty()) {
    return "schedule valid: deadlock-free, knowledge saturates\n";
  }
  std::ostringstream os;
  for (const ScheduleIssue& issue : issues) {
    os << to_string(issue.kind) << " at stage " << issue.stage << ": "
       << issue.detail << "\n";
  }
  return os.str();
}

bool stage_has_cycle(const StageMatrix& stage) {
  return find_cycle_rank(stage) != static_cast<std::size_t>(-1);
}

ValidationResult validate_schedule(const StoredSchedule& stored) {
  ValidationResult result;
  const Schedule& schedule = stored.schedule;
  const std::vector<bool>& awaited = stored.awaited_stages;
  if (!awaited.empty() && awaited.size() != schedule.stage_count()) {
    result.issues.push_back(ScheduleIssue{
        ScheduleIssueKind::kMalformed, 0,
        "awaited flags cover " + std::to_string(awaited.size()) +
            " stages but the schedule has " +
            std::to_string(schedule.stage_count())});
    return result;
  }
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    if (s < awaited.size() && awaited[s]) {
      const std::size_t rank = find_cycle_rank(schedule.stage(s));
      if (rank != static_cast<std::size_t>(-1)) {
        std::ostringstream os;
        os << "awaited stage has a directed wait cycle through rank "
           << rank
           << "; eager blocking-send replay of this stage would deadlock";
        result.issues.push_back(
            ScheduleIssue{ScheduleIssueKind::kCyclicWait, s, os.str()});
      }
    }
  }
  if (!schedule.is_barrier()) {
    // Name the first arrival fact that never propagates (Eq. 3).
    const BoolMatrix k = schedule.final_knowledge();
    std::ostringstream os;
    os << "knowledge does not saturate";
    for (std::size_t i = 0; i < k.rows(); ++i) {
      bool found = false;
      for (std::size_t j = 0; j < k.cols(); ++j) {
        if (!k(i, j)) {
          os << ": rank " << i << "'s arrival never reaches rank " << j;
          found = true;
          break;
        }
      }
      if (found) {
        break;
      }
    }
    result.issues.push_back(ScheduleIssue{
        ScheduleIssueKind::kUnreachableKnowledge, 0, os.str()});
  }
  return result;
}

ValidationResult validate_schedule(const Schedule& schedule) {
  return validate_schedule(StoredSchedule{schedule, {}});
}

ValidationResult validate_nonblocking_programs(
    const std::vector<NonblockingProgram>& programs) {
  ValidationResult result;
  if (programs.empty()) {
    return result;
  }

  // Per-rank structural checks: waits drain outstanding posts FIFO; a
  // wait from an empty queue and a post still outstanding at program
  // end are both rank-local defects.
  std::vector<std::vector<std::size_t>> posted(programs.size());
  for (std::size_t rank = 0; rank < programs.size(); ++rank) {
    std::size_t outstanding = 0;
    for (std::size_t pos = 0; pos < programs[rank].size(); ++pos) {
      const NonblockingOp& op = programs[rank][pos];
      if (op.kind == NonblockingOpKind::kPost) {
        posted[rank].push_back(op.schedule_id);
        ++outstanding;
      } else if (outstanding == 0) {
        std::ostringstream os;
        os << "rank " << rank << " waits at op " << pos
           << " with no outstanding post";
        result.issues.push_back(
            ScheduleIssue{ScheduleIssueKind::kUnmatchedWait, pos, os.str()});
      } else {
        --outstanding;
      }
    }
    if (outstanding > 0) {
      std::ostringstream os;
      os << "rank " << rank << " leaves " << outstanding
         << " posted episode(s) without a matching wait";
      result.issues.push_back(ScheduleIssue{ScheduleIssueKind::kMissingWait,
                                            programs[rank].size(), os.str()});
    }
  }

  // Cross-rank check: collective posts match by position, so every
  // rank's posted-schedule sequence must be identical — the PARCOACH
  // mismatch shape (odd ranks post twice, even ranks once) diverges
  // here.
  for (std::size_t rank = 1; rank < programs.size(); ++rank) {
    const std::vector<std::size_t>& a = posted[0];
    const std::vector<std::size_t>& b = posted[rank];
    const std::size_t common = std::min(a.size(), b.size());
    std::size_t diverge = common;
    for (std::size_t k = 0; k < common; ++k) {
      if (a[k] != b[k]) {
        diverge = k;
        break;
      }
    }
    if (diverge < common) {
      std::ostringstream os;
      os << "post " << diverge << ": rank 0 posts schedule " << a[diverge]
         << " but rank " << rank << " posts schedule " << b[diverge];
      result.issues.push_back(ScheduleIssue{
          ScheduleIssueKind::kMismatchedPost, diverge, os.str()});
    } else if (a.size() != b.size()) {
      std::ostringstream os;
      os << "rank 0 posts " << a.size() << " episode(s) but rank " << rank
         << " posts " << b.size()
         << "; the extra collective call can never complete";
      result.issues.push_back(ScheduleIssue{
          ScheduleIssueKind::kMismatchedPost, common, os.str()});
    }
  }
  return result;
}

}  // namespace optibar
