#include "barrier/validate.hpp"

#include <sstream>

#include "util/error.hpp"

namespace optibar {

namespace {

// Iterative three-color DFS; returns a rank on a directed cycle, or
// npos. Stage digraphs have zero diagonal (enforced by Schedule), so a
// cycle involves >= 2 ranks.
std::size_t find_cycle_rank(const StageMatrix& stage) {
  const std::size_t n = stage.rows();
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<std::uint8_t> color(n, kWhite);
  std::vector<std::pair<std::size_t, std::size_t>> stack;  // (node, next j)
  for (std::size_t start = 0; start < n; ++start) {
    if (color[start] != kWhite) {
      continue;
    }
    color[start] = kGray;
    stack.emplace_back(start, 0);
    while (!stack.empty()) {
      const std::size_t node = stack.back().first;
      const std::size_t j = stack.back().second;
      if (j == n) {
        color[node] = kBlack;
        stack.pop_back();
        continue;
      }
      ++stack.back().second;
      if (!stage(node, j)) {
        continue;
      }
      if (color[j] == kGray) {
        return j;  // back edge: j is on a directed cycle
      }
      if (color[j] == kWhite) {
        color[j] = kGray;
        stack.emplace_back(j, 0);
      }
    }
  }
  return static_cast<std::size_t>(-1);
}

}  // namespace

const char* to_string(ScheduleIssueKind kind) {
  switch (kind) {
    case ScheduleIssueKind::kCyclicWait:
      return "cyclic-wait";
    case ScheduleIssueKind::kUnreachableKnowledge:
      return "unreachable-knowledge";
    case ScheduleIssueKind::kMalformed:
      return "malformed";
  }
  return "unknown";
}

bool ValidationResult::deadlock_free() const {
  for (const ScheduleIssue& issue : issues) {
    if (issue.kind != ScheduleIssueKind::kUnreachableKnowledge) {
      return false;
    }
  }
  return true;
}

std::string ValidationResult::describe() const {
  if (issues.empty()) {
    return "schedule valid: deadlock-free, knowledge saturates\n";
  }
  std::ostringstream os;
  for (const ScheduleIssue& issue : issues) {
    os << to_string(issue.kind) << " at stage " << issue.stage << ": "
       << issue.detail << "\n";
  }
  return os.str();
}

bool stage_has_cycle(const StageMatrix& stage) {
  return find_cycle_rank(stage) != static_cast<std::size_t>(-1);
}

ValidationResult validate_schedule(const StoredSchedule& stored) {
  ValidationResult result;
  const Schedule& schedule = stored.schedule;
  const std::vector<bool>& awaited = stored.awaited_stages;
  if (!awaited.empty() && awaited.size() != schedule.stage_count()) {
    result.issues.push_back(ScheduleIssue{
        ScheduleIssueKind::kMalformed, 0,
        "awaited flags cover " + std::to_string(awaited.size()) +
            " stages but the schedule has " +
            std::to_string(schedule.stage_count())});
    return result;
  }
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    if (s < awaited.size() && awaited[s]) {
      const std::size_t rank = find_cycle_rank(schedule.stage(s));
      if (rank != static_cast<std::size_t>(-1)) {
        std::ostringstream os;
        os << "awaited stage has a directed wait cycle through rank "
           << rank
           << "; eager blocking-send replay of this stage would deadlock";
        result.issues.push_back(
            ScheduleIssue{ScheduleIssueKind::kCyclicWait, s, os.str()});
      }
    }
  }
  if (!schedule.is_barrier()) {
    // Name the first arrival fact that never propagates (Eq. 3).
    const BoolMatrix k = schedule.final_knowledge();
    std::ostringstream os;
    os << "knowledge does not saturate";
    for (std::size_t i = 0; i < k.rows(); ++i) {
      bool found = false;
      for (std::size_t j = 0; j < k.cols(); ++j) {
        if (!k(i, j)) {
          os << ": rank " << i << "'s arrival never reaches rank " << j;
          found = true;
          break;
        }
      }
      if (found) {
        break;
      }
    }
    result.issues.push_back(ScheduleIssue{
        ScheduleIssueKind::kUnreachableKnowledge, 0, os.str()});
  }
  return result;
}

ValidationResult validate_schedule(const Schedule& schedule) {
  return validate_schedule(StoredSchedule{schedule, {}});
}

}  // namespace optibar
