// Blocked schedule representation: a composed hierarchical plan that
// never materializes dense P x P stage matrices.
//
// A hierarchically tuned barrier over C clusters of a few classes is
// enormously redundant in dense form: every cluster of a class runs the
// same local sub-schedule (translated to its own ranks), and the leader
// stage touches only C ranks. At P = 10240 a dense Schedule would carry
// ~20 stages of 100M-entry BoolMatrix each; the blocked form stores
//
//   - one local arrival Schedule per cluster CLASS (tile-local ranks),
//   - one leader arrival Schedule over the C cluster leaders,
//   - the cluster membership and leader maps,
//   - a per-global-stage reference (which local stage / leader stage,
//     and whether transposed for the departure side),
//
// so memory is O(signals + K·t-schedule + C-schedule), sub-quadratic in
// P. The global stage structure reproduces compose_barrier() exactly:
// all cluster blocks start at stage 0 (merge-early), the leader block
// starts after the longest class, the departure is the reversed
// transposed arrival with the leader block omitted when the leader
// algorithm is self-completing, empty stages are compacted away, and
// surviving departure stages are awaited iff acyclic. to_dense() plus
// the awaited flags therefore round-trip into a plain Schedule the
// validator and executors accept — and compile_blocked() feeds the
// compiled CSR predictor and the netsim engine directly, bit-identical
// to compiling the densified schedule.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "barrier/compiled_schedule.hpp"
#include "barrier/schedule.hpp"
#include "util/error.hpp"

namespace optibar {

/// Sentinel for "this side contributes no block to the stage".
inline constexpr std::size_t kNoBlockStage =
    std::numeric_limits<std::size_t>::max();

/// One compacted global stage: which stage of the per-class local
/// schedules and/or the leader schedule it replays, and in which
/// direction.
struct BlockedStageRef {
  bool transposed = false;  ///< departure side (reversed transposes)
  std::size_t local_stage = kNoBlockStage;
  std::size_t leader_stage = kNoBlockStage;

  bool operator==(const BlockedStageRef&) const = default;
};

class BlockedSchedule {
 public:
  BlockedSchedule() = default;

  /// Assemble the full blocked barrier from its components.
  ///   clusters    cluster -> global member ranks (a partition of 0..P-1)
  ///   class_of    cluster -> class id
  ///   class_arrivals  class -> local arrival schedule over tile ranks
  ///                   (positional: local rank i is clusters[c][i])
  ///   leader_arrival  arrival over cluster indices 0..C-1
  ///   leader_ranks    cluster -> global rank of its leader
  ///   leader_self_completing  omit the leader block from the departure
  BlockedSchedule(std::vector<std::vector<std::size_t>> clusters,
                  std::vector<std::size_t> class_of,
                  std::vector<Schedule> class_arrivals,
                  Schedule leader_arrival,
                  std::vector<std::size_t> leader_ranks,
                  bool leader_self_completing);

  std::size_t ranks() const { return ranks_; }
  std::size_t cluster_count() const { return clusters_.size(); }
  std::size_t class_count() const { return class_arrivals_.size(); }

  /// Compacted global stage count and per-stage Eq. 2 flags, exactly as
  /// a dense compose_barrier() would have produced them.
  std::size_t stage_count() const { return stage_refs_.size(); }
  const std::vector<bool>& awaited_stages() const { return awaited_; }
  std::size_t arrival_stage_count() const { return arrival_stages_; }

  const std::vector<std::vector<std::size_t>>& clusters() const {
    return clusters_;
  }
  const std::vector<std::size_t>& class_of() const { return class_of_; }
  const std::vector<Schedule>& class_arrivals() const {
    return class_arrivals_;
  }
  const Schedule& leader_arrival() const { return leader_arrival_; }
  const std::vector<std::size_t>& leader_ranks() const {
    return leader_ranks_;
  }
  const std::vector<BlockedStageRef>& stage_refs() const {
    return stage_refs_;
  }
  bool leader_self_completing() const { return leader_self_completing_; }

  /// Stage at which the leader block begins in the (uncompacted)
  /// arrival — the merge-early start after the longest class.
  std::size_t leader_start() const { return leader_start_; }

  std::size_t total_signals() const;

  /// Exact bytes held by the representation.
  std::size_t memory_bytes() const;

  /// Enumerate the global (src, dst) edges of compacted stage `s`.
  /// Order: clusters ascending, then the block's local (src, dst) scan
  /// order, then the leader block — NOT globally sorted; compile_blocked
  /// sorts per stage.
  template <class Fn>
  void for_each_edge(std::size_t s, Fn&& fn) const {
    const BlockedStageRef& ref = stage_refs_[s];
    if (ref.local_stage != kNoBlockStage) {
      for (std::size_t c = 0; c < clusters_.size(); ++c) {
        const std::size_t k = class_of_[c];
        if (ref.local_stage >= class_edges_[k].size()) {
          continue;
        }
        const auto& members = clusters_[c];
        for (const auto& [i, j] : class_edges_[k][ref.local_stage]) {
          if (ref.transposed) {
            fn(members[j], members[i]);
          } else {
            fn(members[i], members[j]);
          }
        }
      }
    }
    if (ref.leader_stage != kNoBlockStage) {
      for (const auto& [i, j] : leader_edges_[ref.leader_stage]) {
        if (ref.transposed) {
          fn(leader_ranks_[j], leader_ranks_[i]);
        } else {
          fn(leader_ranks_[i], leader_ranks_[j]);
        }
      }
    }
  }

  /// Materialize the dense Schedule (guarded; small-P interop and
  /// parity tests only). Stage order and contents match the compacted
  /// blocked stages one to one, so awaited_stages() applies unchanged.
  Schedule to_dense() const;

 private:
  using Edge = std::pair<std::uint32_t, std::uint32_t>;

  bool stage_is_empty(const BlockedStageRef& ref) const;
  bool stage_has_cycle_blocked(const BlockedStageRef& ref) const;

  std::size_t ranks_ = 0;
  std::vector<std::vector<std::size_t>> clusters_;
  std::vector<std::size_t> class_of_;
  std::vector<Schedule> class_arrivals_;
  Schedule leader_arrival_{1};
  std::vector<std::size_t> leader_ranks_;
  bool leader_self_completing_ = false;
  std::size_t leader_start_ = 0;
  /// class -> stage -> local (src, dst) pairs in ascending scan order.
  std::vector<std::vector<std::vector<Edge>>> class_edges_;
  std::vector<std::vector<Edge>> leader_edges_;
  std::vector<BlockedStageRef> stage_refs_;
  std::vector<bool> awaited_;
  std::size_t arrival_stages_ = 0;
};

/// Compile a blocked plan straight into the CSR predictor form without
/// ever building a dense stage matrix. `Costs` needs o(i, j), l(i, j)
/// and ranks() — both TopologyProfile and TiledProfile qualify. All
/// edges are priced two-sided; per-stage edge lists are sorted by
/// (src, dst), so the result is bit-identical to compiling
/// plan.to_dense() against the same cost source.
template <class Costs>
void compile_blocked(const BlockedSchedule& plan, const Costs& costs,
                     CompiledSchedule& out) {
  OPTIBAR_REQUIRE(costs.ranks() == plan.ranks(),
                  "cost source has " << costs.ranks() << " ranks, plan has "
                                     << plan.ranks());
  std::vector<std::vector<CompiledEdge>> stage_edges(plan.stage_count());
  for (std::size_t s = 0; s < plan.stage_count(); ++s) {
    auto& edges = stage_edges[s];
    plan.for_each_edge(s, [&](std::size_t src, std::size_t dst) {
      edges.push_back(
          CompiledEdge{src, dst, costs.l(src, dst), costs.o(src, dst)});
    });
    std::sort(edges.begin(), edges.end(),
              [](const CompiledEdge& a, const CompiledEdge& b) {
                return a.src != b.src ? a.src < b.src : a.dst < b.dst;
              });
  }
  std::vector<double> self_overhead(plan.ranks());
  for (std::size_t i = 0; i < plan.ranks(); ++i) {
    self_overhead[i] = costs.o(i, i);
  }
  out.compile_edges(plan.ranks(), stage_edges, self_overhead);
}

}  // namespace optibar
