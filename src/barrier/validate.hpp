// Static schedule validation: prove a plan cannot hang the runtime.
//
// Two hazard classes exist for a stored schedule:
//
//  * Cyclic waits on *awaited* stages. A non-awaited stage runs under
//    the post-everything-then-wait-all contract (executor.hpp), which
//    cannot deadlock for any well-formed stage matrix — receives are
//    posted before the rank blocks, so every synchronized send finds
//    its match (induction over stages). Cyclic stage digraphs are even
//    legitimate there: dissemination stages are circulants, ring
//    allreduce stages are full cycles. An *awaited* (Eq. 2) stage is
//    different: its costing assumes receivers are already waiting, and
//    a conforming runtime may replay it with eager blocking sends
//    issued before its receives. Under that contract a directed cycle
//    in the stage's edge digraph is a real deadlock, so awaited stages
//    must be acyclic — the composer only marks departure (fan-out)
//    stages awaited, and demotes any that are not acyclic.
//
//  * Unreachable knowledge: Eq. 3 never saturates, so the pattern is
//    not a barrier. Executing it "succeeds" locally but does not
//    synchronize — flagged so tuners and loaders can refuse to treat
//    it as a barrier. (Loaders still accept such files: analysis
//    commands legitimately inspect non-barrier patterns.)
//
// With the handle-based post/test/wait lifecycle a third hazard class
// appears one level up, in the *program* that issues episodes rather
// than in any single schedule: ranks whose call sequences diverge. The
// PARCOACH mismatch benchmarks (SNIPPETS.md Snippet 2) are the model —
// e.g. odd ranks calling the collective twice while even ranks call it
// once, which deadlocks real MPI. validate_nonblocking_programs checks
// per-rank post/wait traces for exactly those shapes: rank-dependent
// post counts or schedules (kMismatchedPost), a post no wait ever
// completes (kMissingWait), and a wait with no outstanding post
// (kUnmatchedWait).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "barrier/schedule.hpp"
#include "barrier/schedule_io.hpp"

namespace optibar {

enum class ScheduleIssueKind {
  kCyclicWait,            ///< directed cycle inside an awaited stage
  kUnreachableKnowledge,  ///< Eq. 3 never saturates: not a barrier
  kMalformed,             ///< awaited flags inconsistent with the schedule
  kMismatchedPost,        ///< ranks post different schedules / counts
  kMissingWait,           ///< a posted episode is never waited
  kUnmatchedWait,         ///< a wait with no outstanding post
};

const char* to_string(ScheduleIssueKind kind);

struct ScheduleIssue {
  ScheduleIssueKind kind = ScheduleIssueKind::kMalformed;
  std::size_t stage = 0;  ///< stage involved (0 for schedule-wide issues)
  std::string detail;
};

struct ValidationResult {
  std::vector<ScheduleIssue> issues;

  /// No issues at all.
  bool ok() const { return issues.empty(); }

  /// No issue that can hang a conforming runtime. Unreachable
  /// knowledge is a semantic failure (the pattern is not a barrier)
  /// but terminates fine.
  bool deadlock_free() const;

  std::string describe() const;
};

/// True when the stage's edge digraph (i -> j iff stage(i, j)) contains
/// a directed cycle.
bool stage_has_cycle(const StageMatrix& stage);

/// Validate a stored schedule (awaited flags checked). An empty awaited
/// vector means no stage is awaited.
ValidationResult validate_schedule(const StoredSchedule& stored);

/// Validate a bare schedule: no awaited stages, so only the knowledge
/// check applies.
ValidationResult validate_schedule(const Schedule& schedule);

/// One call in a rank's nonblocking program: a post of some schedule
/// (identified by a caller-chosen id — e.g. an index into a schedule
/// library) or a wait. Waits complete outstanding posts of the same
/// rank in FIFO order, matching how the executors' episodes are
/// normally drained.
enum class NonblockingOpKind { kPost, kWait };

struct NonblockingOp {
  NonblockingOpKind kind = NonblockingOpKind::kPost;
  std::size_t schedule_id = 0;  ///< meaningful for kPost only

  static NonblockingOp post(std::size_t schedule_id) {
    return NonblockingOp{NonblockingOpKind::kPost, schedule_id};
  }
  static NonblockingOp wait() {
    return NonblockingOp{NonblockingOpKind::kWait, 0};
  }
};

/// Per-rank trace of post/wait calls.
using NonblockingProgram = std::vector<NonblockingOp>;

/// PARCOACH-style mismatch detection over per-rank nonblocking
/// programs: every rank must post the same sequence of schedules
/// (collective calls are matched by position — a rank-dependent count
/// or schedule is kMismatchedPost, the shape that deadlocks real MPI),
/// every post must eventually be waited (kMissingWait), and no rank
/// may wait with nothing outstanding (kUnmatchedWait). The issue's
/// `stage` field carries the op position within the offending rank's
/// program.
ValidationResult validate_nonblocking_programs(
    const std::vector<NonblockingProgram>& programs);

}  // namespace optibar
