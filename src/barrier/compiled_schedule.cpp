#include "barrier/compiled_schedule.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace optibar {

CompiledSchedule::CompiledSchedule(const Schedule& schedule,
                                   const TopologyProfile& profile) {
  compile(schedule, profile);
}

void CompiledSchedule::compile(const Schedule& schedule,
                               const TopologyProfile& profile) {
  const std::size_t p = schedule.ranks();
  OPTIBAR_REQUIRE(profile.ranks() == p,
                  "profile has " << profile.ranks() << " ranks, schedule has "
                                 << p);
  p_ = p;
  stages_ = schedule.stage_count();
  const std::size_t rows = stages_ * p_;

  tgt_offsets_.clear();
  tgt_offsets_.reserve(rows + 1);
  tgt_offsets_.push_back(0);
  tgt_index_.clear();
  tgt_l_.clear();
  tgt_o_.clear();
  tgt_r_.clear();
  tgt_rma_.clear();
  src_offsets_.clear();
  src_offsets_.reserve(rows + 1);
  src_offsets_.push_back(0);
  src_index_.clear();
  src_rma_.clear();
  sum_l_.clear();
  sum_l_.reserve(rows);
  max_o_.clear();
  max_o_.reserve(rows);
  recv_l_.clear();
  recv_l_.reserve(rows);

  self_o_.resize(p_);
  for (std::size_t i = 0; i < p_; ++i) {
    self_o_[i] = profile.o(i, i);
  }

  for (std::size_t s = 0; s < stages_; ++s) {
    const StageMatrix& m = schedule.stage(s);
    const StageMatrix& t = schedule.transport(s);
    const bool mixed = !t.empty();
    // Target rows: same ascending-j order as Schedule::targets_of, so
    // the L sum below accumulates in exactly the reference order.
    for (std::size_t i = 0; i < p_; ++i) {
      double sum_l = 0.0;
      double max_o = 0.0;
      for (std::size_t j = 0; j < p_; ++j) {
        if (!m.at_unchecked(i, j)) {
          continue;
        }
        const bool put = mixed && t.at_unchecked(i, j);
        const double l = profile.l(i, j);
        // A put needs only local initiation (O(i,i)) — no rendezvous
        // with the receiver — and delivers after R(i,j).
        const double o = put ? profile.o(i, i) : profile.o(i, j);
        tgt_index_.push_back(j);
        tgt_l_.push_back(l);
        tgt_o_.push_back(o);
        tgt_r_.push_back(put ? profile.r(i, j) : 0.0);
        tgt_rma_.push_back(put ? 1 : 0);
        sum_l += l;
        max_o = std::max(max_o, o);
      }
      tgt_offsets_.push_back(tgt_index_.size());
      sum_l_.push_back(sum_l);
      max_o_.push_back(max_o);
    }
    // Source rows: ascending-i order of Schedule::sources_of. Puts
    // bypass the receiver's CPU, so only two-sided edges contribute to
    // the serial completion processing term.
    for (std::size_t j = 0; j < p_; ++j) {
      double recv_l = 0.0;
      for (std::size_t i = 0; i < p_; ++i) {
        if (!m.at_unchecked(i, j)) {
          continue;
        }
        const bool put = mixed && t.at_unchecked(i, j);
        src_index_.push_back(i);
        src_rma_.push_back(put ? 1 : 0);
        if (!put) {
          recv_l += profile.l(i, j);
        }
      }
      src_offsets_.push_back(src_index_.size());
      recv_l_.push_back(recv_l);
    }
  }
}

void CompiledSchedule::compile_edges(
    std::size_t ranks, const std::vector<std::vector<CompiledEdge>>& stage_edges,
    const std::vector<double>& self_overhead) {
  OPTIBAR_REQUIRE(ranks > 0, "compile_edges with zero ranks");
  OPTIBAR_REQUIRE(self_overhead.size() == ranks,
                  "self_overhead has " << self_overhead.size()
                                       << " entries, expected " << ranks);
  p_ = ranks;
  stages_ = stage_edges.size();
  const std::size_t rows = stages_ * p_;

  tgt_offsets_.clear();
  tgt_offsets_.reserve(rows + 1);
  tgt_offsets_.push_back(0);
  tgt_index_.clear();
  tgt_l_.clear();
  tgt_o_.clear();
  tgt_r_.clear();
  tgt_rma_.clear();
  src_offsets_.clear();
  src_offsets_.reserve(rows + 1);
  src_offsets_.push_back(0);
  src_index_.clear();
  src_rma_.clear();
  sum_l_.clear();
  sum_l_.reserve(rows);
  max_o_.clear();
  max_o_.reserve(rows);
  recv_l_.clear();
  recv_l_.reserve(rows);

  self_o_.assign(self_overhead.begin(), self_overhead.end());

  // Scratch permutation into (dst, src) order for the source rows.
  std::vector<std::size_t> by_dst;
  for (std::size_t s = 0; s < stages_; ++s) {
    const std::vector<CompiledEdge>& edges = stage_edges[s];
    // Target rows in the given (src, dst) order — the ascending-target
    // reference order; one pass per stage, senders grouped contiguously.
    std::size_t k = 0;
    for (std::size_t i = 0; i < p_; ++i) {
      double sum_l = 0.0;
      double max_o = 0.0;
      for (; k < edges.size() && edges[k].src == i; ++k) {
        const CompiledEdge& e = edges[k];
        OPTIBAR_REQUIRE(e.src < p_ && e.dst < p_ && e.src != e.dst,
                        "bad edge " << e.src << "->" << e.dst);
        OPTIBAR_REQUIRE(k == 0 || edges[k - 1].src < e.src ||
                            edges[k - 1].dst < e.dst,
                        "stage edges must be sorted by (src, dst) without "
                        "duplicates");
        tgt_index_.push_back(e.dst);
        tgt_l_.push_back(e.l);
        tgt_o_.push_back(e.o);
        tgt_r_.push_back(e.one_sided ? e.r : 0.0);
        tgt_rma_.push_back(e.one_sided ? 1 : 0);
        sum_l += e.l;
        max_o = std::max(max_o, e.o);
      }
      tgt_offsets_.push_back(tgt_index_.size());
      sum_l_.push_back(sum_l);
      max_o_.push_back(max_o);
    }
    OPTIBAR_REQUIRE(k == edges.size(), "stage edges not sorted by src");
    // Source rows in (dst, src) order — ascending sources per receiver.
    by_dst.resize(edges.size());
    for (std::size_t e = 0; e < edges.size(); ++e) {
      by_dst[e] = e;
    }
    std::sort(by_dst.begin(), by_dst.end(),
              [&edges](std::size_t a, std::size_t b) {
                return edges[a].dst != edges[b].dst
                           ? edges[a].dst < edges[b].dst
                           : edges[a].src < edges[b].src;
              });
    std::size_t q = 0;
    for (std::size_t j = 0; j < p_; ++j) {
      double recv_l = 0.0;
      for (; q < by_dst.size() && edges[by_dst[q]].dst == j; ++q) {
        const CompiledEdge& e = edges[by_dst[q]];
        src_index_.push_back(e.src);
        src_rma_.push_back(e.one_sided ? 1 : 0);
        if (!e.one_sided) {
          recv_l += e.l;
        }
      }
      src_offsets_.push_back(src_index_.size());
      recv_l_.push_back(recv_l);
    }
  }
}

void predict_into(const CompiledSchedule& compiled,
                  const PredictOptions& options, PredictWorkspace& workspace,
                  Prediction& out) {
  const std::size_t p = compiled.ranks();
  if (!options.entry_times.empty()) {
    OPTIBAR_REQUIRE(options.entry_times.size() == p,
                    "entry_times size mismatch");
  }
  if (!options.egress_resource_of.empty()) {
    OPTIBAR_REQUIRE(options.egress_resource_of.size() == p,
                    "egress_resource_of size mismatch");
  }

  PredictWorkspace& ws = workspace;
  if (options.entry_times.empty()) {
    ws.ready.assign(p, 0.0);
  } else {
    ws.ready.assign(options.entry_times.begin(), options.entry_times.end());
  }
  ws.next.assign(p, 0.0);
  ws.batch.assign(p, 0.0);
  const bool egress = !options.egress_resource_of.empty();
  if (egress) {
    const std::size_t max_resource =
        *std::max_element(options.egress_resource_of.begin(),
                          options.egress_resource_of.end());
    if (ws.res_active.size() <= max_resource) {
      ws.res_ready.resize(max_resource + 1);
      ws.res_max_o.resize(max_resource + 1);
      ws.res_sum_l.resize(max_resource + 1);
      ws.res_active.resize(max_resource + 1, 0);
    }
    ws.touched_resources.clear();
  }

  const double start_of_critical =
      *std::max_element(ws.ready.begin(), ws.ready.end());
  out.stage_increment.clear();

  for (std::size_t s = 0; s < compiled.stage_count(); ++s) {
    const bool awaited =
        s < options.awaited_stages.size() && options.awaited_stages[s];
    const double before = *std::max_element(ws.ready.begin(), ws.ready.end());

    // A rank's own step completes after it issues its batch; receivers
    // additionally wait for every incoming batch of the stage. A put
    // edge becomes visible R(i,j) after the sender's batch (tgt_r_ is
    // exactly 0.0 on two-sided edges, so pure two-sided schedules stay
    // bit-identical).
    for (std::size_t i = 0; i < p; ++i) {
      ws.batch[i] = ws.ready[i] + compiled.batch_cost(i, s, awaited);
      ws.next[i] = ws.batch[i];
    }
    for (std::size_t i = 0; i < p; ++i) {
      const std::span<const std::size_t> targets = compiled.targets(i, s);
      const std::span<const double> rma = compiled.target_rma_latency(i, s);
      for (std::size_t k = 0; k < targets.size(); ++k) {
        const std::size_t j = targets[k];
        ws.next[j] = std::max(ws.next[j], ws.batch[i] + rma[k]);
      }
    }
    if (egress) {
      // Analytic shared-egress serialization (see predict_reference):
      // per resource, ready time, max O and sum of L over its remote
      // messages, accumulated in (sender, target) scan order into the
      // flat dense-id arrays.
      const std::vector<std::size_t>& resource = options.egress_resource_of;
      for (std::size_t i = 0; i < p; ++i) {
        const std::size_t r = resource[i];
        const std::span<const std::size_t> targets = compiled.targets(i, s);
        const std::span<const double> l = compiled.target_latency(i, s);
        const std::span<const double> o = compiled.target_overhead(i, s);
        for (std::size_t k = 0; k < targets.size(); ++k) {
          if (r == resource[targets[k]]) {
            continue;
          }
          if (!ws.res_active[r]) {
            ws.res_active[r] = 1;
            ws.touched_resources.push_back(r);
            ws.res_ready[r] = ws.ready[i];
            ws.res_max_o[r] = 0.0;
            ws.res_sum_l[r] = 0.0;
          } else {
            ws.res_ready[r] = std::max(ws.res_ready[r], ws.ready[i]);
          }
          ws.res_max_o[r] = std::max(ws.res_max_o[r], o[k]);
          ws.res_sum_l[r] += l[k];
        }
      }
      for (std::size_t i = 0; i < p; ++i) {
        const std::size_t r = resource[i];
        for (std::size_t j : compiled.targets(i, s)) {
          if (r == resource[j]) {
            continue;
          }
          const double bound =
              ws.res_ready[r] + ws.res_max_o[r] + ws.res_sum_l[r];
          ws.next[j] = std::max(ws.next[j], bound);
        }
      }
      for (std::size_t r : ws.touched_resources) {
        ws.res_active[r] = 0;
      }
      ws.touched_resources.clear();
    }
    if (options.receiver_processing) {
      for (std::size_t j = 0; j < p; ++j) {
        ws.next[j] += compiled.recv_processing(j, s);
      }
    }
    std::swap(ws.ready, ws.next);
    const double after = *std::max_element(ws.ready.begin(), ws.ready.end());
    out.stage_increment.push_back(after - before);
  }

  out.rank_completion.assign(ws.ready.begin(), ws.ready.end());
  out.critical_path =
      *std::max_element(ws.ready.begin(), ws.ready.end()) - start_of_critical;
}

double predicted_time(const CompiledSchedule& compiled,
                      const PredictOptions& options,
                      PredictWorkspace& workspace) {
  predict_into(compiled, options, workspace, workspace.scratch);
  return workspace.scratch.critical_path;
}

IncrementalPredictor::IncrementalPredictor(const TopologyProfile& profile,
                                           bool receiver_processing)
    : profile_(&profile),
      receiver_processing_(receiver_processing),
      p_(profile.ranks()),
      batch_(profile.ranks(), 0.0) {
  OPTIBAR_REQUIRE(p_ > 0, "empty profile");
  stack_.emplace_back(p_, 0.0);
}

void IncrementalPredictor::reset() {
  depth_ = 0;
  stack_[0].assign(p_, 0.0);
}

void IncrementalPredictor::reset(const std::vector<double>& entry) {
  OPTIBAR_REQUIRE(entry.size() == p_, "entry_times size mismatch");
  depth_ = 0;
  stack_[0].assign(entry.begin(), entry.end());
}

double IncrementalPredictor::max_ready() const {
  const std::vector<double>& r = stack_[depth_];
  return *std::max_element(r.begin(), r.end());
}

void IncrementalPredictor::push_stage(const StageMatrix& stage, bool awaited) {
  OPTIBAR_REQUIRE(stage.rows() == p_ && stage.cols() == p_,
                  "stage must be " << p_ << "x" << p_);
  if (stack_.size() <= depth_ + 1) {
    stack_.emplace_back(p_, 0.0);  // pooled slot, reused after pops
  }
  const std::vector<double>& ready = stack_[depth_];
  std::vector<double>& next = stack_[depth_ + 1];

  // Same recurrence as predict(): Eq. 1/2 batch completion per sender
  // (L summed over ascending targets, exactly step_cost's order)...
  for (std::size_t i = 0; i < p_; ++i) {
    double sum_l = 0.0;
    double max_o = 0.0;
    bool any = false;
    for (std::size_t j = 0; j < p_; ++j) {
      if (!stage.at_unchecked(i, j)) {
        continue;
      }
      any = true;
      sum_l += profile_->l(i, j);
      max_o = std::max(max_o, profile_->o(i, j));
    }
    const double cost =
        any ? (awaited ? profile_->o(i, i) : max_o) + sum_l : 0.0;
    batch_[i] = ready[i] + cost;
    next[i] = batch_[i];
  }
  // ...then receivers wait for every incoming batch...
  for (std::size_t i = 0; i < p_; ++i) {
    for (std::size_t j = 0; j < p_; ++j) {
      if (stage.at_unchecked(i, j)) {
        next[j] = std::max(next[j], batch_[i]);
      }
    }
  }
  // ...plus serial completion processing (ascending sources).
  if (receiver_processing_) {
    for (std::size_t j = 0; j < p_; ++j) {
      double processing = 0.0;
      for (std::size_t i = 0; i < p_; ++i) {
        if (stage.at_unchecked(i, j)) {
          processing += profile_->l(i, j);
        }
      }
      next[j] += processing;
    }
  }
  ++depth_;
}

void IncrementalPredictor::pop_stage() {
  OPTIBAR_REQUIRE(depth_ > 0, "pop_stage on an empty prefix");
  --depth_;
}

}  // namespace optibar
