// Schedule post-optimization passes.
//
// The matrix representation makes barriers *editable*, which the paper
// exploits for composition; the same property supports peephole
// optimization of any finished schedule:
//
//   - signal pruning: a barrier needs only that Eq. 3 ends all-ones;
//     many classic patterns carry redundant signals (dissemination sends
//     P*ceil(log2 P) while 2(P-1) suffice in principle). Greedily drop
//     the most expensive signals whose removal keeps the pattern a
//     barrier — each removal can only lower the Eq. 1/2 cost.
//
//   - stage fusion: executing a stage has a synchronization cost even
//     when its signals are cheap. Merging two adjacent stages (OR-ing
//     their matrices) relaxes the "all stage-k signals received before
//     stage k+1" ordering; when the merged pattern still passes Eq. 3
//     *and* the predicted cost does not rise, the shallower schedule is
//     kept.
//
// Both passes preserve validity by construction (every change is
// re-checked before being committed). They are deliberately not wired
// into the default tuner: the paper's generated barriers are already
// near-minimal, and the passes exist to quantify what further schedule
// surgery could buy (see bench_ablation_optimize).
#pragma once

#include <cstddef>

#include "barrier/cost_model.hpp"
#include "barrier/schedule.hpp"
#include "topology/profile.hpp"

namespace optibar {

struct OptimizeResult {
  Schedule schedule{1};
  std::size_t signals_removed = 0;
  std::size_t stages_fused = 0;
  double cost_before = 0.0;
  double cost_after = 0.0;
};

/// Greedy redundant-signal elimination, most expensive signal first
/// (cost keyed by the sender's O+L for that edge). The input must be a
/// barrier; the result is a barrier with a subset of its signals.
OptimizeResult prune_redundant_signals(const Schedule& schedule,
                                       const TopologyProfile& profile);

/// Left-to-right adjacent-stage fusion: merge stage s into s+1 whenever
/// the fused schedule is still a barrier and its predicted cost does
/// not exceed the unfused one.
OptimizeResult fuse_stages(const Schedule& schedule,
                           const TopologyProfile& profile);

/// prune + fuse, iterated until neither pass changes the schedule.
OptimizeResult optimize_schedule(const Schedule& schedule,
                                 const TopologyProfile& profile);

}  // namespace optibar
