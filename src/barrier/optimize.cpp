#include "barrier/optimize.hpp"

#include <algorithm>
#include <tuple>
#include <vector>

#include "barrier/compiled_schedule.hpp"
#include "util/error.hpp"

namespace optibar {

namespace {

/// Rebuild a Schedule from mutable stage matrices, dropping all-empty
/// stages (a pass can empty a stage entirely).
Schedule rebuild(std::size_t ranks, const std::vector<StageMatrix>& stages) {
  Schedule out(ranks);
  for (const StageMatrix& stage : stages) {
    if (!stage.all_zero()) {
      out.append_stage(stage);
    }
  }
  return out;
}

}  // namespace

OptimizeResult prune_redundant_signals(const Schedule& schedule,
                                       const TopologyProfile& profile) {
  OPTIBAR_REQUIRE(schedule.is_barrier(),
                  "prune_redundant_signals expects a valid barrier");
  OPTIBAR_REQUIRE(profile.ranks() == schedule.ranks(),
                  "profile/schedule rank mismatch");

  OptimizeResult result;
  result.cost_before = predicted_time(schedule, profile);

  // Candidate signals, most expensive first (sender-side O + L).
  struct Signal {
    double cost;
    std::size_t stage;
    std::size_t src;
    std::size_t dst;
  };
  std::vector<Signal> candidates;
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    for (std::size_t i = 0; i < schedule.ranks(); ++i) {
      for (std::size_t j : schedule.targets_of(i, s)) {
        candidates.push_back(
            Signal{profile.o(i, j) + profile.l(i, j), s, i, j});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Signal& a, const Signal& b) {
              return std::tie(b.cost, a.stage, a.src, a.dst) <
                     std::tie(a.cost, b.stage, b.src, b.dst);
            });

  std::vector<StageMatrix> stages(schedule.stages().begin(),
                                  schedule.stages().end());
  for (const Signal& signal : candidates) {
    stages[signal.stage](signal.src, signal.dst) = 0;
    if (Schedule(schedule.ranks(), stages).is_barrier()) {
      ++result.signals_removed;
    } else {
      stages[signal.stage](signal.src, signal.dst) = 1;  // keep it
    }
  }

  result.schedule = rebuild(schedule.ranks(), stages);
  result.cost_after = predicted_time(result.schedule, profile);
  OPTIBAR_ASSERT(result.schedule.is_barrier(), "pruning broke the barrier");
  return result;
}

OptimizeResult fuse_stages(const Schedule& schedule,
                           const TopologyProfile& profile) {
  OPTIBAR_REQUIRE(schedule.is_barrier(),
                  "fuse_stages expects a valid barrier");
  OPTIBAR_REQUIRE(profile.ranks() == schedule.ranks(),
                  "profile/schedule rank mismatch");

  OptimizeResult result;
  result.cost_before = predicted_time(schedule, profile);

  std::vector<StageMatrix> stages(schedule.stages().begin(),
                                  schedule.stages().end());
  double current_cost = result.cost_before;
  std::size_t s = 0;
  // Candidate pricing dominates the fusion loop; keep one compiled
  // kernel and workspace warm across all candidates.
  CompiledSchedule compiled;
  PredictWorkspace workspace;
  while (s + 1 < stages.size()) {
    // Candidate: OR stage s into s+1 (a fused matrix may not gain
    // self-signals because neither operand has any).
    std::vector<StageMatrix> fused(stages);
    fused[s + 1] = bool_add(fused[s], fused[s + 1]);
    fused.erase(fused.begin() + static_cast<std::ptrdiff_t>(s));
    const Schedule candidate = rebuild(schedule.ranks(), fused);
    if (candidate.is_barrier()) {
      compiled.compile(candidate, profile);
      const double cost = predicted_time(compiled, {}, workspace);
      if (cost <= current_cost) {
        stages = std::move(fused);
        current_cost = cost;
        ++result.stages_fused;
        continue;  // retry the same index against the next stage
      }
    }
    ++s;
  }

  result.schedule = rebuild(schedule.ranks(), stages);
  result.cost_after = current_cost;
  OPTIBAR_ASSERT(result.schedule.is_barrier(), "fusion broke the barrier");
  return result;
}

OptimizeResult optimize_schedule(const Schedule& schedule,
                                 const TopologyProfile& profile) {
  OptimizeResult total;
  total.schedule = schedule;
  total.cost_before = predicted_time(schedule, profile);
  total.cost_after = total.cost_before;
  for (;;) {
    const OptimizeResult pruned =
        prune_redundant_signals(total.schedule, profile);
    const OptimizeResult fused = fuse_stages(pruned.schedule, profile);
    total.signals_removed += pruned.signals_removed;
    total.stages_fused += fused.stages_fused;
    const bool changed =
        pruned.signals_removed > 0 || fused.stages_fused > 0;
    total.schedule = fused.schedule;
    total.cost_after = fused.cost_after;
    if (!changed) {
      return total;
    }
  }
}

}  // namespace optibar
