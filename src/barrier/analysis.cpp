#include "barrier/analysis.hpp"

#include <algorithm>
#include <sstream>

#include "barrier/dependency_graph.hpp"
#include "util/error.hpp"

namespace optibar {

std::size_t& LinkUsage::at(LinkLevel level) {
  switch (level) {
    case LinkLevel::kSharedCache:
      return shared_cache;
    case LinkLevel::kSameChip:
      return same_chip;
    case LinkLevel::kCrossSocket:
      return cross_socket;
    case LinkLevel::kInterNode:
      return inter_node;
    case LinkLevel::kSelf:
      break;
  }
  OPTIBAR_FAIL("LinkUsage::at(kSelf): schedules carry no self-signals");
}

std::size_t LinkUsage::at(LinkLevel level) const {
  return const_cast<LinkUsage*>(this)->at(level);
}

LinkUsage link_usage(const Schedule& schedule, const MachineSpec& machine,
                     const Mapping& mapping) {
  OPTIBAR_REQUIRE(mapping.size() == schedule.ranks(),
                  "mapping covers " << mapping.size() << " ranks, schedule "
                                    << schedule.ranks());
  LinkUsage usage;
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    const StageMatrix& stage = schedule.stage(s);
    for (std::size_t i = 0; i < schedule.ranks(); ++i) {
      for (std::size_t j = 0; j < schedule.ranks(); ++j) {
        if (stage(i, j)) {
          ++usage.at(machine.link_level(mapping.core_of(i), mapping.core_of(j)));
        }
      }
    }
  }
  return usage;
}

namespace {

StageProfile profile_one_stage(const Schedule& schedule, std::size_t s,
                               const MachineSpec* machine,
                               const Mapping* mapping) {
  StageProfile out;
  const std::size_t p = schedule.ranks();
  std::vector<std::size_t> fan_in(p, 0);
  for (std::size_t i = 0; i < p; ++i) {
    const std::vector<std::size_t> targets = schedule.targets_of(i, s);
    out.signals += targets.size();
    out.max_fan_out = std::max(out.max_fan_out, targets.size());
    for (std::size_t j : targets) {
      ++fan_in[j];
      if (machine != nullptr &&
          machine->link_level(mapping->core_of(i), mapping->core_of(j)) ==
              LinkLevel::kInterNode) {
        ++out.inter_node_signals;
      }
    }
  }
  for (std::size_t i = 0; i < p; ++i) {
    out.max_fan_in = std::max(out.max_fan_in, fan_in[i]);
    if (fan_in[i] > 0 || !schedule.targets_of(i, s).empty()) {
      ++out.active_ranks;
    }
  }
  return out;
}

}  // namespace

std::vector<StageProfile> stage_profiles(const Schedule& schedule) {
  std::vector<StageProfile> out;
  out.reserve(schedule.stage_count());
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    out.push_back(profile_one_stage(schedule, s, nullptr, nullptr));
  }
  return out;
}

std::vector<StageProfile> stage_profiles(const Schedule& schedule,
                                         const MachineSpec& machine,
                                         const Mapping& mapping) {
  OPTIBAR_REQUIRE(mapping.size() == schedule.ranks(),
                  "mapping/schedule rank mismatch");
  std::vector<StageProfile> out;
  out.reserve(schedule.stage_count());
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    out.push_back(profile_one_stage(schedule, s, &machine, &mapping));
  }
  return out;
}

CriticalPathBreakdown critical_path_breakdown(const Schedule& schedule,
                                              const TopologyProfile& profile,
                                              const MachineSpec& machine,
                                              const Mapping& mapping,
                                              const PredictOptions& options) {
  OPTIBAR_REQUIRE(mapping.size() == schedule.ranks(),
                  "mapping/schedule rank mismatch");
  const DependencyGraph graph(schedule, profile, options);
  const auto& path = graph.critical_path();
  const auto& times = graph.completion_times();

  CriticalPathBreakdown out;
  auto book = [&out](LinkLevel level, double amount) {
    switch (level) {
      case LinkLevel::kSharedCache:
        out.shared_cache += amount;
        return;
      case LinkLevel::kSameChip:
        out.same_chip += amount;
        return;
      case LinkLevel::kCrossSocket:
        out.cross_socket += amount;
        return;
      case LinkLevel::kInterNode:
        out.inter_node += amount;
        return;
      case LinkLevel::kSelf:
        out.self_overhead += amount;
        return;
    }
    OPTIBAR_FAIL("unknown LinkLevel");
  };

  for (std::size_t i = 1; i < path.size(); ++i) {
    const DepNode& from = path[i - 1];
    const DepNode& to = path[i];
    const double increment =
        times[to.stage][to.rank] - times[from.stage][from.rank];
    if (increment <= 0.0) {
      continue;
    }
    if (from.rank != to.rank) {
      // A signal edge: book the whole increment to the link it crossed.
      book(machine.link_level(mapping.core_of(from.rank),
                              mapping.core_of(to.rank)),
           increment);
      continue;
    }
    // Local sequencing: book to the slowest tier of the rank's own
    // outgoing batch (or pure self overhead for receive-only stages).
    const std::vector<std::size_t> targets =
        schedule.targets_of(from.rank, from.stage);
    LinkLevel worst = LinkLevel::kSelf;
    for (std::size_t j : targets) {
      const LinkLevel level =
          machine.link_level(mapping.core_of(from.rank), mapping.core_of(j));
      if (static_cast<int>(level) > static_cast<int>(worst)) {
        worst = level;
      }
    }
    book(worst, increment);
  }
  out.total = out.shared_cache + out.same_chip + out.cross_socket +
              out.inter_node + out.self_overhead;
  return out;
}

LinkUsage link_usage(const Schedule& schedule, const CustomMachine& machine) {
  OPTIBAR_REQUIRE(schedule.ranks() <= machine.total_cores(),
                  "schedule has more ranks than the machine has cores");
  LinkUsage usage;
  for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
    const StageMatrix& stage = schedule.stage(s);
    for (std::size_t i = 0; i < schedule.ranks(); ++i) {
      for (std::size_t j = 0; j < schedule.ranks(); ++j) {
        if (stage(i, j)) {
          ++usage.at(machine.link_level(i, j));
        }
      }
    }
  }
  return usage;
}

namespace {

std::string usage_report(const LinkUsage& usage,
                         const std::vector<StageProfile>& stages) {
  std::ostringstream os;
  os << "signals by tier: shared-cache " << usage.shared_cache
     << ", same-chip " << usage.same_chip << ", cross-socket "
     << usage.cross_socket << ", inter-node " << usage.inter_node << " (total "
     << usage.total() << ")\n";
  for (std::size_t s = 0; s < stages.size(); ++s) {
    os << "stage " << s << ": " << stages[s].signals << " signals ("
       << stages[s].inter_node_signals << " inter-node), fan-out<="
       << stages[s].max_fan_out << ", fan-in<=" << stages[s].max_fan_in
       << ", " << stages[s].active_ranks << " active ranks\n";
  }
  return os.str();
}

}  // namespace

std::string describe_usage(const Schedule& schedule,
                           const CustomMachine& machine) {
  const LinkUsage usage = link_usage(schedule, machine);
  // Per-stage tier detail needs a MachineSpec mapping; report structure
  // only, with the inter-node count folded in per stage.
  auto stages = stage_profiles(schedule);
  for (std::size_t s = 0; s < stages.size(); ++s) {
    for (std::size_t i = 0; i < schedule.ranks(); ++i) {
      for (std::size_t j : schedule.targets_of(i, s)) {
        if (machine.link_level(i, j) == LinkLevel::kInterNode) {
          ++stages[s].inter_node_signals;
        }
      }
    }
  }
  return usage_report(usage, stages);
}

std::string describe_usage(const Schedule& schedule,
                           const MachineSpec& machine, const Mapping& mapping) {
  const LinkUsage usage = link_usage(schedule, machine, mapping);
  const auto stages = stage_profiles(schedule, machine, mapping);
  return usage_report(usage, stages);
}

}  // namespace optibar
