// Explicit layered dependency graph of a schedule.
//
// Section V describes a barrier as a layered dependency graph; the cost
// model in cost_model.hpp evaluates its critical path with a compact
// dynamic program. This module materialises the graph — one vertex per
// (rank, stage) state, weighted edges per signal batch — so that:
//   - tests can cross-validate the DP against an independent
//     longest-path computation, and
//   - benches/diagnostics can report *which* ranks and stages lie on the
//     critical path, not just its length.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "barrier/cost_model.hpp"
#include "barrier/schedule.hpp"
#include "topology/profile.hpp"

namespace optibar {

/// One vertex of the layered graph: rank `rank` having completed stage
/// `stage` (stage == 0 is the entry layer: the rank has arrived but sent
/// nothing).
struct DepNode {
  std::size_t rank = 0;
  std::size_t stage = 0;  ///< number of completed stages

  bool operator==(const DepNode&) const = default;
};

class DependencyGraph {
 public:
  DependencyGraph(const Schedule& schedule, const TopologyProfile& profile,
                  const PredictOptions& options = {});

  /// Longest entry-to-exit path length, in seconds. Equals
  /// predict(schedule, profile, options).critical_path for zero entry
  /// skew (verified by tests).
  double critical_path_cost() const { return critical_cost_; }

  /// The vertices of one longest path, entry layer first.
  const std::vector<DepNode>& critical_path() const { return critical_nodes_; }

  /// Completion time of each (rank, stage) vertex; indexing is
  /// [stage][rank] with stage in [0, stage_count].
  const std::vector<std::vector<double>>& completion_times() const {
    return completion_;
  }

  /// Multi-line human-readable rendering of the critical path, e.g.
  /// "rank 5 @ stage 2 (t=1.2e-4)".
  std::string describe_critical_path() const;

 private:
  std::vector<std::vector<double>> completion_;  // [stage][rank]
  std::vector<std::vector<DepNode>> predecessor_;
  double critical_cost_ = 0.0;
  std::vector<DepNode> critical_nodes_;
};

}  // namespace optibar
