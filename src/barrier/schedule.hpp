// Barrier schedules: layered dependency graphs as boolean matrices.
//
// Section V of the paper represents a barrier algorithm as a sequence of
// steps S_0, S_1, ..., S_k of P x P boolean incidence matrices: row i of
// S_a lists the ranks that i signals in step a, and all signals of a step
// must be received before the next step begins. The signal pattern is a
// barrier iff the knowledge recurrence (Eq. 3)
//     K_0 = I + S_0,   K_a = K_{a-1} + K_{a-1} * S_a
// ends with K_k all-nonzero — i.e. every rank's arrival is known to
// every rank. Schedule is a value type with exactly those semantics plus
// the transforms the adaptive construction needs (transpose-and-reverse
// for departure phases, embedding of local patterns into a global one,
// compaction of empty stages).
//
// Each stage optionally carries a transport matrix, a boolean subset of
// the stage's signals marking edges delivered one-sided (an RMA put
// into the receiver's flag array — src/rma) instead of as a two-sided
// message. An empty transport matrix means all-two-sided, which is the
// default for every constructor and transform, keeps the pre-RMA hot
// paths allocation-free, and makes equality with pre-RMA schedules
// exact. Transports do not change the knowledge recurrence — a put
// conveys the same arrival fact as a message — only how the cost model
// and the executors price and deliver the edge.
#pragma once

#include <cstddef>
#include <ostream>
#include <vector>

#include "util/matrix.hpp"

namespace optibar {

/// One barrier step: a P x P boolean incidence matrix.
using StageMatrix = BoolMatrix;

class Schedule {
 public:
  /// Empty schedule (zero stages) over `ranks` participants.
  explicit Schedule(std::size_t ranks);

  /// Takes a pre-built stage sequence; all stages must be ranks x ranks.
  Schedule(std::size_t ranks, std::vector<StageMatrix> stages);

  std::size_t ranks() const { return ranks_; }
  std::size_t stage_count() const { return stages_.size(); }
  const StageMatrix& stage(std::size_t s) const;
  const std::vector<StageMatrix>& stages() const { return stages_; }

  /// Append one stage (must be ranks x ranks, zero diagonal).
  void append_stage(StageMatrix stage);

  /// Remove the last stage (search backtracking).
  void pop_stage();

  /// Transport matrix of stage `s`: nonzero entries are the stage's
  /// one-sided signals. Empty (rows() == 0) when the whole stage is
  /// two-sided — the common case, tested via has_one_sided() first.
  const StageMatrix& transport(std::size_t s) const;

  /// Mark the one-sided subset of stage `s`'s signals. `transport`
  /// must be ranks x ranks with transport(i,j) => stage(i,j); an
  /// all-zero (or empty) matrix resets the stage to pure two-sided.
  void set_transport(std::size_t s, StageMatrix transport);

  /// True iff signal i -> j of stage `s` is delivered one-sided.
  bool one_sided(std::size_t s, std::size_t i, std::size_t j) const;

  /// True when any stage carries a one-sided signal.
  bool has_one_sided() const;

  /// Total number of one-sided signals across all stages.
  std::size_t one_sided_signal_count() const;

  /// Ranks that `rank` signals in stage `s`, ascending. Allocates a
  /// fresh vector per call — cold path only (construction, analysis,
  /// codegen). Hot loops use the CSR spans of CompiledSchedule
  /// (compiled_schedule.hpp) instead: same contents, zero allocation.
  std::vector<std::size_t> targets_of(std::size_t rank, std::size_t s) const;

  /// Ranks that signal `rank` in stage `s`, ascending. Cold path only,
  /// like targets_of — see CompiledSchedule::sources for the hot-loop
  /// span equivalent.
  std::vector<std::size_t> sources_of(std::size_t rank, std::size_t s) const;

  /// Arrival-knowledge matrix K_a after stage `a` per Eq. 3; pass
  /// stage_count()-1 (or call final_knowledge) for K_k. K(i,j) nonzero
  /// means rank j knows of rank i's arrival.
  BoolMatrix knowledge_after(std::size_t a) const;
  BoolMatrix final_knowledge() const;

  /// True iff the signal pattern implies global synchronization
  /// (Eq. 3: K_k is all-nonzero). A zero-stage schedule is a barrier
  /// only for ranks() == 1.
  bool is_barrier() const;

  /// The departure construction of Section V-B: the same matrices
  /// transposed, applied in reverse order.
  Schedule transposed_reversed() const;

  /// This schedule followed by `tail` (same rank count).
  Schedule concatenated(const Schedule& tail) const;

  /// Copy without all-zero stages (the code generator "eliminates no-op
  /// transmission steps", Section VII-C).
  Schedule compacted() const;

  /// Total number of signals across all stages.
  std::size_t total_signals() const;

  /// Number of stages with at least one signal.
  std::size_t nonempty_stage_count() const;

  bool operator==(const Schedule& other) const = default;

 private:
  void check_stage(const StageMatrix& stage) const;

  std::size_t ranks_ = 0;
  std::vector<StageMatrix> stages_;
  /// Parallel to stages_; entries are empty (all-two-sided, the
  /// normalized spelling of an all-zero transport) or ranks x ranks.
  std::vector<StageMatrix> transports_;
};

/// OR the stages of `local` into `global`, translating local rank r to
/// global rank rank_map[r], starting at stage `first_stage` of `global`
/// (extending `global` with empty stages as needed). This is the
/// embedding primitive of the hierarchical composition (Section VII-B):
/// "merging shorter sequences with longer ones as early as possible".
void embed_schedule(Schedule& global, const Schedule& local,
                    const std::vector<std::size_t>& rank_map,
                    std::size_t first_stage);

/// Pretty-print all stages, one matrix per stage with a header line.
std::ostream& operator<<(std::ostream& os, const Schedule& schedule);

}  // namespace optibar
