// Logical-cluster detection: recover homogeneous sub-clusters from the
// O/L matrices.
//
// Estefanel & Mounié ("Identifying Logical Homogeneous Clusters",
// PAPERS.md) observe that the pairwise latency matrix of a real machine
// collapses into a small number of homogeneous blocks — ranks on the
// same node see each other through one cost band, ranks on different
// nodes through a clearly separated higher band. The detector exploits
// exactly that separation: it sorts the symmetrized one-message
// distances O(i,j), finds the largest multiplicative gap between
// consecutive values, cuts there, and takes connected components under
// "distance below the cut" as the logical clusters.
//
// Determinism contract (pinned by tests):
//   - clusters are numbered by their smallest member rank (rank 0 is
//     always in cluster 0), members listed ascending;
//   - cluster classes (groups of clusters with positionally equal
//     tiles within the relative tolerance) are numbered in order of
//     first appearance;
//   - when several gaps tie for largest ratio, the topmost (largest
//     values) wins, so the cut always separates the outermost level;
//   - the result depends only on the matrix values, never on memory
//     layout, hashing, or thread scheduling.
//
// A machine whose largest gap is below `min_gap_ratio` is flat: the
// detector returns a single cluster and callers fall back to the dense
// path unchanged.
#pragma once

#include <cstddef>
#include <vector>

#include "topology/profile.hpp"

namespace optibar {

struct DetectOptions {
  /// Minimum multiplicative jump between consecutive sorted distances
  /// for the machine to count as clustered at all. GbE-style presets
  /// separate intra- from inter-node by 5x or more; anything under this
  /// ratio is treated as a flat (single-cluster) machine.
  double min_gap_ratio = 3.0;

  /// Relative tolerance for treating two clusters as the same class and
  /// (downstream, in TiledProfile::from_dense) for verifying that
  /// inter-cluster blocks are constant. Must cover about twice the
  /// per-pair jitter amplitude of the measurements.
  double tolerance = 0.05;
};

/// A partition of ranks into logical clusters plus the grouping of
/// clusters into equivalence classes.
struct ClusterDecomposition {
  /// rank -> cluster id; canonical (cluster ids ordered by smallest
  /// member rank).
  std::vector<std::size_t> assignment;

  /// cluster id -> member ranks, ascending.
  std::vector<std::vector<std::size_t>> clusters;

  /// cluster id -> class id (first-appearance order). Clusters of one
  /// class have equal size and positionally equal O/L/G/R tiles within
  /// `tolerance`.
  std::vector<std::size_t> class_of;

  /// Number of distinct cluster classes.
  std::size_t num_classes = 0;

  /// Distance cut that separated intra- from inter-cluster pairs
  /// (geometric mean of the two gap endpoints); 0 for a single cluster.
  double threshold = 0.0;

  /// Relative tolerance the class grouping was established at.
  double tolerance = 0.0;

  std::size_t cluster_count() const { return clusters.size(); }
  bool single_cluster() const { return clusters.size() <= 1; }
};

/// Detect logical clusters in a dense profile. Always succeeds: a flat
/// or unsplittable machine comes back as one cluster.
ClusterDecomposition detect_logical_clusters(
    const TopologyProfile& profile, const DetectOptions& options = {});

}  // namespace optibar
