#include "profile/tiled_profile.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace optibar {
namespace {

constexpr const char* kMagic = "optibar-profile";
// The tiled format exists precisely to go beyond the dense 8192-rank
// cap; its own cap only bounds hostile headers before allocation.
constexpr std::size_t kMaxTiledRanks = std::size_t{1} << 20;
constexpr std::size_t kMaxClusters = 65536;

bool rel_close(double a, double b, double tol) {
  const double denom = std::max(std::abs(a), std::abs(b));
  if (denom == 0.0) {
    return true;
  }
  return std::abs(a - b) <= tol * denom;
}

}  // namespace

void TiledProfile::rebuild_local_index() {
  local_index_.assign(assignment_.size(), 0);
  for (const auto& members : clusters_) {
    for (std::size_t pos = 0; pos < members.size(); ++pos) {
      local_index_[members[pos]] = static_cast<std::uint32_t>(pos);
    }
  }
}

void TiledProfile::validate() const {
  const std::size_t p = assignment_.size();
  const std::size_t c = clusters_.size();
  const std::size_t k = tiles_.size();
  OPTIBAR_REQUIRE(p > 0 && c > 0 && k > 0, "empty tiled profile");
  OPTIBAR_REQUIRE(class_of_.size() == c, "class map size mismatch");
  // Canonical cluster numbering: assignment ids appear in first-use
  // order, so cluster 0 contains rank 0 and renumbering is impossible.
  std::size_t seen = 0;
  for (std::size_t i = 0; i < p; ++i) {
    OPTIBAR_REQUIRE(assignment_[i] <= seen && assignment_[i] < c,
                    "non-canonical cluster assignment at rank " << i);
    if (assignment_[i] == seen) {
      ++seen;
    }
  }
  OPTIBAR_REQUIRE(seen == c, "assignment realizes " << seen << " of " << c
                                                    << " clusters");
  // Same first-appearance contract for classes, and every cluster's
  // size must match its class tile.
  seen = 0;
  for (std::size_t ci = 0; ci < c; ++ci) {
    OPTIBAR_REQUIRE(class_of_[ci] <= seen && class_of_[ci] < k,
                    "non-canonical class id for cluster " << ci);
    if (class_of_[ci] == seen) {
      ++seen;
    }
    OPTIBAR_REQUIRE(!clusters_[ci].empty(), "empty cluster " << ci);
    OPTIBAR_REQUIRE(clusters_[ci].size() == tiles_[class_of_[ci]].ranks(),
                    "cluster " << ci << " has " << clusters_[ci].size()
                               << " ranks but its class tile has "
                               << tiles_[class_of_[ci]].ranks());
  }
  OPTIBAR_REQUIRE(seen == k, "class map realizes " << seen << " of " << k
                                                   << " classes");
  for (std::size_t kk = 0; kk < k; ++kk) {
    OPTIBAR_REQUIRE(tiles_[kk].has_bandwidth() == has_g_,
                    "tile " << kk << " bandwidth presence disagrees with "
                               "the profile-wide G flag");
    OPTIBAR_REQUIRE(tiles_[kk].has_rma_latency() == has_r_,
                    "tile " << kk << " RMA presence disagrees with the "
                               "profile-wide R flag");
  }
  OPTIBAR_REQUIRE(inter_o_.rows() == k && inter_o_.cols() == k &&
                      inter_l_.rows() == k && inter_l_.cols() == k,
                  "inter-class scalar matrices must be classes x classes");
  OPTIBAR_REQUIRE(has_g_ == !inter_g_.empty() && has_r_ == !inter_r_.empty(),
                  "inter-class G/R presence disagrees with flags");
  OPTIBAR_REQUIRE(std::isfinite(tolerance_) && tolerance_ >= 0.0 &&
                      tolerance_ < 1.0,
                  "tolerance must be in [0, 1)");
}

TiledProfile::TiledProfile(std::vector<std::vector<std::size_t>> clusters,
                           std::vector<std::size_t> class_of,
                           std::vector<TopologyProfile> tiles,
                           Matrix<double> inter_o, Matrix<double> inter_l,
                           Matrix<double> inter_g, Matrix<double> inter_r,
                           double tolerance)
    : clusters_(std::move(clusters)),
      class_of_(std::move(class_of)),
      tiles_(std::move(tiles)),
      inter_o_(std::move(inter_o)),
      inter_l_(std::move(inter_l)),
      inter_g_(std::move(inter_g)),
      inter_r_(std::move(inter_r)),
      tolerance_(tolerance) {
  OPTIBAR_REQUIRE(!tiles_.empty(), "tiled profile needs at least one tile");
  has_g_ = tiles_.front().has_bandwidth();
  has_r_ = tiles_.front().has_rma_latency();
  std::size_t p = 0;
  for (const auto& members : clusters_) {
    p += members.size();
  }
  OPTIBAR_REQUIRE(p <= kMaxTiledRanks && clusters_.size() <= kMaxClusters,
                  "tiled profile exceeds the format caps");
  assignment_.assign(p, clusters_.size());
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    for (std::size_t rank : clusters_[c]) {
      OPTIBAR_REQUIRE(rank < p && assignment_[rank] == clusters_.size(),
                      "clusters do not partition the rank space");
      assignment_[rank] = c;
    }
  }
  rebuild_local_index();
  validate();
}

TiledProfile TiledProfile::from_dense(const TopologyProfile& dense,
                                      const ClusterDecomposition& decomp) {
  const std::size_t p = dense.ranks();
  OPTIBAR_REQUIRE(decomp.assignment.size() == p,
                  "decomposition covers " << decomp.assignment.size()
                                          << " ranks, profile has " << p);
  TiledProfile out;
  out.assignment_ = decomp.assignment;
  out.clusters_ = decomp.clusters;
  out.class_of_ = decomp.class_of;
  out.has_g_ = dense.has_bandwidth();
  out.has_r_ = dense.has_rma_latency();
  out.tolerance_ = decomp.tolerance;
  const std::size_t num_classes = decomp.num_classes;
  const std::size_t num_clusters = decomp.clusters.size();
  OPTIBAR_REQUIRE(num_classes > 0 && num_classes <= num_clusters,
                  "decomposition has no classes");

  // Representative tiles: each class's first cluster, extracted exactly.
  std::vector<std::size_t> class_rep(num_classes, num_clusters);
  for (std::size_t c = 0; c < num_clusters; ++c) {
    if (class_rep[decomp.class_of[c]] == num_clusters) {
      class_rep[decomp.class_of[c]] = c;
    }
  }
  out.tiles_.reserve(num_classes);
  for (std::size_t k = 0; k < num_classes; ++k) {
    out.tiles_.push_back(dense.restrict_to(decomp.clusters[class_rep[k]]));
  }

  // Inter-cluster scalars: the first realized block of each ordered
  // class pair donates its (0, 0) entry.
  out.inter_o_ = Matrix<double>(num_classes, num_classes);
  out.inter_l_ = Matrix<double>(num_classes, num_classes);
  if (out.has_g_) {
    out.inter_g_ = Matrix<double>(num_classes, num_classes);
  }
  if (out.has_r_) {
    out.inter_r_ = Matrix<double>(num_classes, num_classes);
  }
  Matrix<std::uint8_t> pair_seen(num_classes, num_classes);
  for (std::size_t ca = 0; ca < num_clusters; ++ca) {
    for (std::size_t cb = 0; cb < num_clusters; ++cb) {
      if (ca == cb) {
        continue;
      }
      const std::size_t ka = decomp.class_of[ca];
      const std::size_t kb = decomp.class_of[cb];
      if (pair_seen(ka, kb)) {
        continue;
      }
      pair_seen(ka, kb) = 1;
      const std::size_t i = decomp.clusters[ca].front();
      const std::size_t j = decomp.clusters[cb].front();
      out.inter_o_(ka, kb) = dense.o(i, j);
      out.inter_l_(ka, kb) = dense.l(i, j);
      if (out.has_g_) {
        out.inter_g_(ka, kb) = dense.g(i, j);
      }
      if (out.has_r_) {
        out.inter_r_(ka, kb) = dense.r(i, j);
      }
    }
  }

  out.rebuild_local_index();
  out.validate();

  // Verify the whole dense matrix sits within tolerance of its tiled
  // reconstruction — tiles for intra blocks, scalars for inter blocks.
  // Lumping a machine that is not actually block-structured would
  // misprice every schedule tuned on it, so this is a hard error.
  const double tol = decomp.tolerance;
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      const bool ok =
          rel_close(dense.o(i, j), out.o(i, j), tol) &&
          rel_close(dense.l(i, j), out.l(i, j), tol) &&
          (!out.has_g_ || rel_close(dense.g(i, j), out.g(i, j), tol)) &&
          (!out.has_r_ || rel_close(dense.r(i, j), out.r(i, j), tol));
      OPTIBAR_REQUIRE(
          ok, "profile is not block-structured within tolerance "
                  << tol << ": entry (" << i << ", " << j
                  << ") deviates from its cluster representative");
    }
  }
  return out;
}

TopologyProfile TiledProfile::to_dense() const {
  // Keep the materialized form inside the dense format's own cap; a
  // 10k-rank tiled profile must never be expanded.
  OPTIBAR_REQUIRE(ranks() <= 8192,
                  "refusing to densify a " << ranks() << "-rank tiled profile");
  std::vector<std::size_t> all(ranks());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = i;
  }
  return restrict_to(all);
}

TopologyProfile TiledProfile::restrict_to(
    const std::vector<std::size_t>& subset) const {
  OPTIBAR_REQUIRE(!subset.empty(), "restrict_to empty rank set");
  const std::size_t n = subset.size();
  for (std::size_t rank : subset) {
    OPTIBAR_REQUIRE(rank < ranks(), "rank " << rank << " out of range");
  }
  Matrix<double> o(n, n);
  Matrix<double> l(n, n);
  Matrix<double> g;
  Matrix<double> r;
  if (has_g_) {
    g = Matrix<double>(n, n);
  }
  if (has_r_) {
    r = Matrix<double>(n, n);
  }
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      o(a, b) = this->o(subset[a], subset[b]);
      l(a, b) = this->l(subset[a], subset[b]);
      if (has_g_) {
        g(a, b) = this->g(subset[a], subset[b]);
      }
      if (has_r_) {
        r(a, b) = this->r(subset[a], subset[b]);
      }
    }
  }
  TopologyProfile result =
      g.empty() ? TopologyProfile(std::move(o), std::move(l))
                : TopologyProfile(std::move(o), std::move(l), std::move(g));
  if (!r.empty()) {
    result.set_rma_latency(std::move(r));
  }
  return result;
}

std::size_t TiledProfile::memory_bytes() const {
  std::size_t bytes = assignment_.size() * sizeof(std::size_t) +
                      local_index_.size() * sizeof(std::uint32_t) +
                      class_of_.size() * sizeof(std::size_t);
  for (const auto& members : clusters_) {
    bytes += members.size() * sizeof(std::size_t);
  }
  for (const auto& tile : tiles_) {
    const std::size_t t = tile.ranks();
    std::size_t mats = 2;
    mats += tile.has_bandwidth() ? 1 : 0;
    mats += tile.has_rma_latency() ? 1 : 0;
    bytes += mats * t * t * sizeof(double);
  }
  const std::size_t k = tiles_.size();
  std::size_t inter_mats = 2;
  inter_mats += has_g_ ? 1 : 0;
  inter_mats += has_r_ ? 1 : 0;
  bytes += inter_mats * k * k * sizeof(double);
  return bytes;
}

void TiledProfile::save(std::ostream& os) const {
  validate();
  os << kMagic << " v4\n";
  os << "P " << ranks() << '\n';
  os << "clusters " << cluster_count() << '\n';
  os << "classes " << class_count() << '\n';
  std::string mats = "OL";
  if (has_g_) {
    mats += 'G';
  }
  if (has_r_) {
    mats += 'R';
  }
  os << "matrices " << mats << '\n';
  os << std::setprecision(17) << std::scientific;
  os << "tolerance " << tolerance_ << '\n';
  os << "assignment\n";
  for (std::size_t i = 0; i < assignment_.size(); ++i) {
    os << assignment_[i] << (i + 1 == assignment_.size() ? '\n' : ' ');
  }
  os << "class-of\n";
  for (std::size_t c = 0; c < class_of_.size(); ++c) {
    os << class_of_[c] << (c + 1 == class_of_.size() ? '\n' : ' ');
  }
  for (std::size_t k = 0; k < tiles_.size(); ++k) {
    os << "tile " << k << '\n';
    // Tiles embed the dense format verbatim, reusing its hardened
    // loader (caps, finiteness, truncation checks) on the way back in.
    tiles_[k].save(os);
    os << std::setprecision(17) << std::scientific;
  }
  auto dump = [&](const char* tag, const Matrix<double>& m) {
    os << tag << '\n';
    for (std::size_t a = 0; a < m.rows(); ++a) {
      for (std::size_t b = 0; b < m.cols(); ++b) {
        os << m(a, b) << (b + 1 == m.cols() ? '\n' : ' ');
      }
    }
  };
  os << "inter\n";
  dump("O", inter_o_);
  dump("L", inter_l_);
  if (has_g_) {
    dump("G", inter_g_);
  }
  if (has_r_) {
    dump("R", inter_r_);
  }
  OPTIBAR_REQUIRE(os.good(), "I/O error while writing tiled profile");
}

TiledProfile TiledProfile::load(std::istream& is) {
  // Untrusted input: every count is capped before sizing an allocation,
  // every read checks fail(), every float must be finite, and the
  // canonical-ordering / size invariants are re-validated at the end.
  std::string magic;
  std::string version;
  is >> magic >> version;
  OPTIBAR_IO_REQUIRE(!is.fail() && magic == kMagic,
                     "not an optibar profile (magic '" << magic << "')");
  OPTIBAR_IO_REQUIRE(version == "v4",
                     "not a tiled profile (version " << version
                                                     << ", expected v4)");
  auto read_count = [&](const char* name, std::size_t cap) {
    std::string tag;
    std::size_t value = 0;
    is >> tag >> value;
    OPTIBAR_IO_REQUIRE(!is.fail() && tag == name && value > 0,
                       "malformed tiled profile header (" << name << ")");
    OPTIBAR_IO_REQUIRE(value <= cap, name << " count " << value
                                          << " exceeds the format cap ("
                                          << cap << ")");
    return value;
  };
  const std::size_t p = read_count("P", kMaxTiledRanks);
  const std::size_t num_clusters = read_count("clusters", kMaxClusters);
  const std::size_t num_classes = read_count("classes", num_clusters);
  OPTIBAR_IO_REQUIRE(num_clusters <= p,
                     "more clusters than ranks in tiled profile header");
  std::string tag;
  std::string mats;
  is >> tag >> mats;
  OPTIBAR_IO_REQUIRE(!is.fail() && tag == "matrices" &&
                         (mats == "OL" || mats == "OLG" || mats == "OLR" ||
                          mats == "OLGR"),
                     "malformed tiled profile matrices declaration");
  TiledProfile out;
  out.has_g_ = mats.find('G') != std::string::npos;
  out.has_r_ = mats.find('R') != std::string::npos;
  is >> tag >> out.tolerance_;
  OPTIBAR_IO_REQUIRE(!is.fail() && tag == "tolerance" &&
                         std::isfinite(out.tolerance_) &&
                         out.tolerance_ >= 0.0 && out.tolerance_ < 1.0,
                     "malformed tiled profile tolerance");
  auto read_ids = [&](const char* name, std::size_t count, std::size_t bound) {
    is >> tag;
    OPTIBAR_IO_REQUIRE(!is.fail() && tag == name,
                       "expected section " << name << ", got " << tag);
    std::vector<std::size_t> ids(count);
    for (std::size_t i = 0; i < count; ++i) {
      is >> ids[i];
      OPTIBAR_IO_REQUIRE(!is.fail() && ids[i] < bound,
                         "truncated or out-of-range " << name << " entry "
                                                      << i);
    }
    return ids;
  };
  out.assignment_ = read_ids("assignment", p, num_clusters);
  out.class_of_ = read_ids("class-of", num_clusters, num_classes);
  out.clusters_.resize(num_clusters);
  for (std::size_t i = 0; i < p; ++i) {
    out.clusters_[out.assignment_[i]].push_back(i);
  }
  out.tiles_.reserve(num_classes);
  for (std::size_t k = 0; k < num_classes; ++k) {
    std::size_t index = 0;
    is >> tag >> index;
    OPTIBAR_IO_REQUIRE(!is.fail() && tag == "tile" && index == k,
                       "expected tile " << k);
    out.tiles_.push_back(TopologyProfile::load(is));
  }
  is >> tag;
  OPTIBAR_IO_REQUIRE(!is.fail() && tag == "inter",
                     "expected inter section, got " << tag);
  auto read_inter = [&](const char* name) {
    is >> tag;
    OPTIBAR_IO_REQUIRE(!is.fail() && tag == name,
                       "expected inter matrix " << name << ", got " << tag);
    Matrix<double> m(num_classes, num_classes);
    for (std::size_t a = 0; a < num_classes; ++a) {
      for (std::size_t b = 0; b < num_classes; ++b) {
        is >> m(a, b);
        OPTIBAR_IO_REQUIRE(!is.fail() && std::isfinite(m(a, b)),
                           "truncated or non-finite inter " << name
                                                            << " entry");
      }
    }
    return m;
  };
  out.inter_o_ = read_inter("O");
  out.inter_l_ = read_inter("L");
  if (out.has_g_) {
    out.inter_g_ = read_inter("G");
  }
  if (out.has_r_) {
    out.inter_r_ = read_inter("R");
  }
  out.rebuild_local_index();
  try {
    out.validate();
  } catch (const Error& e) {
    throw IoError(e.what());
  }
  return out;
}

void TiledProfile::save_file(const std::string& path) const {
  std::ofstream os(path);
  OPTIBAR_REQUIRE(os.is_open(), "cannot open " << path << " for writing");
  save(os);
}

TiledProfile TiledProfile::load_file(const std::string& path) {
  std::ifstream is(path);
  OPTIBAR_IO_REQUIRE(is.is_open(), "cannot open " << path << " for reading");
  return load(is);
}

}  // namespace optibar
