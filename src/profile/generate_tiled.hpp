// Direct tiled-profile generation: the large-P counterpart of
// topology/generate.hpp. generate_profile() fills dense P x P matrices
// — impossible at 10k ranks (3.4 GB, and over the dense format cap).
// A jitter-free machine under the block mapping IS exactly block
// structured, so its tiled form can be written down without ever
// touching a dense matrix: one node tile plus the inter-node scalars.
// For rank counts where both paths are feasible the result is
// bit-identical to from_dense(generate_profile(...)) — pinned by
// tests.
#pragma once

#include <cstddef>

#include "profile/tiled_profile.hpp"
#include "topology/machine.hpp"

namespace optibar {

/// Generate the tiled profile of `machine`'s first `ranks` cores under
/// the block mapping. `ranks` must cover at least two whole nodes
/// (partial nodes would create a second cluster class mid-machine;
/// callers that need them should generate densely and lift). Jitter is
/// deliberately not offered: per-pair noise breaks exact block
/// structure, which is the entire content of the tiled form.
TiledProfile generate_tiled_profile(const MachineSpec& machine,
                                    std::size_t ranks);

}  // namespace optibar
