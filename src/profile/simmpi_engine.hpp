// Wall-clock measurement engine over the in-process thread runtime.
//
// The closest in-process analogue of the paper's actual procedure: each
// primitive experiment is executed by two real rank threads exchanging
// signals through a Communicator whose LatencyModel injects the simulated
// machine's link delays, and timed with the steady clock. Payload
// transfer time is modelled inside the engine (signals carry no bytes)
// so the Hockney regression has a slope to fit.
//
// Wall-clock noise on an oversubscribed host is large relative to
// microsecond link costs; the latency model is therefore scaled up (see
// `latency_scale`) and estimates are descaled on the way out. Use
// SyntheticEngine for precision work; this engine exists to demonstrate
// the method end-to-end on real threads.
#pragma once

#include "profile/measurement.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "topology/profile.hpp"

namespace optibar {

struct SimMpiEngineOptions {
  /// Multiplier applied to all simulated link delays before execution
  /// and divided back out of measurements, lifting microsecond costs
  /// above scheduler granularity.
  double latency_scale = 1000.0;
  /// Modelled bandwidth (bytes/second) before scaling.
  double bandwidth = 1.25e8;
};

class SimMpiEngine final : public MeasurementEngine {
 public:
  SimMpiEngine(const MachineSpec& machine, const Mapping& mapping,
               const SimMpiEngineOptions& options = {});

  std::size_t ranks() const override;

  double roundtrip_seconds(std::size_t i, std::size_t j,
                           std::size_t payload_bytes) override;
  double batch_seconds(std::size_t i, std::size_t j,
                       std::size_t message_count) override;
  double noop_seconds(std::size_t i) override;

  const TopologyProfile& ground_truth() const { return truth_; }

 private:
  SimMpiEngineOptions options_;
  TopologyProfile truth_;
};

}  // namespace optibar
