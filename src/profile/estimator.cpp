#include "profile/estimator.hpp"

#include <vector>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace optibar {

namespace {

/// Aggregate of `repetitions` invocations of `sample` under the
/// configured statistic.
template <typename SampleFn>
double aggregate_of(std::size_t repetitions, SampleAggregator aggregator,
                    SampleFn&& sample) {
  std::vector<double> values;
  values.reserve(repetitions);
  for (std::size_t r = 0; r < repetitions; ++r) {
    values.push_back(sample());
  }
  return aggregator == SampleAggregator::kMedian ? median(values)
                                                 : mean(values);
}

}  // namespace

double estimate_overhead(MeasurementEngine& engine, std::size_t i,
                         std::size_t j, const EstimatorOptions& options) {
  OPTIBAR_REQUIRE(options.repetitions > 0, "repetitions must be positive");
  OPTIBAR_REQUIRE(options.max_payload_exponent >= 1,
                  "need at least two payload sizes for a regression");
  std::vector<double> x;
  std::vector<double> y;
  for (std::size_t e = 0; e <= options.max_payload_exponent; ++e) {
    const std::size_t bytes = std::size_t{1} << e;
    x.push_back(static_cast<double>(bytes));
    y.push_back(aggregate_of(options.repetitions, options.aggregator, [&] {
      return engine.roundtrip_seconds(i, j, bytes);
    }));
  }
  const LinearFit fit = least_squares(x, y);
  // A round trip traverses the link twice; symmetric links let us halve.
  return fit.intercept / 2.0;
}

double estimate_latency(MeasurementEngine& engine, std::size_t i,
                        std::size_t j, const EstimatorOptions& options) {
  OPTIBAR_REQUIRE(options.repetitions > 0, "repetitions must be positive");
  OPTIBAR_REQUIRE(options.max_batch >= 2,
                  "need at least two batch sizes for a regression");
  std::vector<double> x;
  std::vector<double> y;
  for (std::size_t n = 1; n <= options.max_batch; ++n) {
    x.push_back(static_cast<double>(n));
    y.push_back(aggregate_of(options.repetitions, options.aggregator,
                              [&] { return engine.batch_seconds(i, j, n); }));
  }
  return least_squares(x, y).slope;
}

double estimate_self_overhead(MeasurementEngine& engine, std::size_t i,
                              const EstimatorOptions& options) {
  OPTIBAR_REQUIRE(options.repetitions > 0, "repetitions must be positive");
  return aggregate_of(options.repetitions, options.aggregator,
                      [&] { return engine.noop_seconds(i); });
}

TopologyProfile estimate_profile(MeasurementEngine& engine,
                                 const EstimatorOptions& options) {
  const std::size_t p = engine.ranks();
  OPTIBAR_REQUIRE(p > 0, "engine reports zero ranks");
  Matrix<double> o(p, p);
  Matrix<double> l(p, p);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = i + 1; j < p; ++j) {
      const double oij = estimate_overhead(engine, i, j, options);
      const double lij = estimate_latency(engine, i, j, options);
      o(i, j) = o(j, i) = oij;
      l(i, j) = l(j, i) = lij;
    }
  }
  for (std::size_t i = 0; i < p; ++i) {
    o(i, i) = estimate_self_overhead(engine, i, options);
  }
  return TopologyProfile(std::move(o), std::move(l));
}

}  // namespace optibar
