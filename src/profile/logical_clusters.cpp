#include "profile/logical_clusters.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace optibar {
namespace {

/// Relative closeness with a shared tolerance: |a - b| within tol of
/// the larger magnitude. Exact zeros (L diagonals) compare equal.
bool rel_close(double a, double b, double tol) {
  const double denom = std::max(std::abs(a), std::abs(b));
  if (denom == 0.0) {
    return true;
  }
  return std::abs(a - b) <= tol * denom;
}

struct UnionFind {
  std::vector<std::size_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) {
      // Smaller root wins so find() chains stay rank-ordered; the
      // canonical renumbering below does not depend on it, but it keeps
      // intermediate state deterministic too.
      if (b < a) {
        std::swap(a, b);
      }
      parent[b] = a;
    }
  }
};

ClusterDecomposition single_cluster_of(std::size_t ranks, double tolerance) {
  ClusterDecomposition out;
  out.assignment.assign(ranks, 0);
  out.clusters.resize(1);
  out.clusters[0].resize(ranks);
  std::iota(out.clusters[0].begin(), out.clusters[0].end(), 0);
  out.class_of = {0};
  out.num_classes = 1;
  out.threshold = 0.0;
  out.tolerance = tolerance;
  return out;
}

/// Two clusters are the same class iff they have equal size and their
/// positional tiles agree within tol on every matrix the profile has.
bool same_class(const TopologyProfile& profile,
                const std::vector<std::size_t>& a,
                const std::vector<std::size_t>& b, double tol) {
  if (a.size() != b.size()) {
    return false;
  }
  const bool has_g = profile.has_bandwidth();
  const bool has_r = profile.has_rma_latency();
  for (std::size_t x = 0; x < a.size(); ++x) {
    for (std::size_t y = 0; y < a.size(); ++y) {
      if (!rel_close(profile.o(a[x], a[y]), profile.o(b[x], b[y]), tol) ||
          !rel_close(profile.l(a[x], a[y]), profile.l(b[x], b[y]), tol)) {
        return false;
      }
      if (has_g &&
          !rel_close(profile.g(a[x], a[y]), profile.g(b[x], b[y]), tol)) {
        return false;
      }
      if (has_r &&
          !rel_close(profile.r(a[x], a[y]), profile.r(b[x], b[y]), tol)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

ClusterDecomposition detect_logical_clusters(const TopologyProfile& profile,
                                             const DetectOptions& options) {
  const std::size_t p = profile.ranks();
  OPTIBAR_REQUIRE(p > 0, "cannot detect clusters in an empty profile");
  OPTIBAR_REQUIRE(options.min_gap_ratio > 1.0,
                  "min_gap_ratio must exceed 1, got " << options.min_gap_ratio);
  OPTIBAR_REQUIRE(options.tolerance >= 0.0 && options.tolerance < 1.0,
                  "tolerance must be in [0, 1), got " << options.tolerance);
  if (p == 1) {
    return single_cluster_of(1, options.tolerance);
  }

  // Sorted symmetrized one-message distances; the biggest multiplicative
  // hole between consecutive values is the intra/inter separation. Ties
  // go to the topmost gap so a multi-tier machine is always cut at its
  // outermost level.
  std::vector<double> dist;
  dist.reserve(p * (p - 1) / 2);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = i + 1; j < p; ++j) {
      dist.push_back(profile.distance(i, j));
    }
  }
  std::sort(dist.begin(), dist.end());
  double best_ratio = 0.0;
  std::size_t best_k = dist.size();
  for (std::size_t k = 0; k + 1 < dist.size(); ++k) {
    if (dist[k] <= 0.0) {
      continue;
    }
    const double ratio = dist[k + 1] / dist[k];
    if (ratio >= best_ratio) {
      best_ratio = ratio;
      best_k = k;
    }
  }
  if (best_k == dist.size() || best_ratio < options.min_gap_ratio) {
    return single_cluster_of(p, options.tolerance);  // flat machine
  }
  const double threshold = std::sqrt(dist[best_k] * dist[best_k + 1]);

  // Clusters = connected components under distance <= threshold.
  UnionFind uf(p);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = i + 1; j < p; ++j) {
      if (profile.distance(i, j) <= threshold) {
        uf.unite(i, j);
      }
    }
  }

  // Canonical numbering: clusters by smallest member, members ascending.
  ClusterDecomposition out;
  out.assignment.assign(p, 0);
  std::vector<std::size_t> root_to_cluster(p, p);
  for (std::size_t i = 0; i < p; ++i) {
    const std::size_t root = uf.find(i);
    if (root_to_cluster[root] == p) {
      root_to_cluster[root] = out.clusters.size();
      out.clusters.emplace_back();
    }
    const std::size_t c = root_to_cluster[root];
    out.assignment[i] = c;
    out.clusters[c].push_back(i);
  }
  if (out.clusters.size() <= 1) {
    return single_cluster_of(p, options.tolerance);
  }

  // Class grouping: compare each cluster against the representative of
  // every existing class in first-appearance order.
  out.class_of.assign(out.clusters.size(), 0);
  std::vector<std::size_t> class_rep;  // class id -> representative cluster
  for (std::size_t c = 0; c < out.clusters.size(); ++c) {
    std::size_t k = class_rep.size();
    for (std::size_t existing = 0; existing < class_rep.size(); ++existing) {
      if (same_class(profile, out.clusters[class_rep[existing]],
                     out.clusters[c], options.tolerance)) {
        k = existing;
        break;
      }
    }
    if (k == class_rep.size()) {
      class_rep.push_back(c);
    }
    out.class_of[c] = k;
  }
  out.num_classes = class_rep.size();
  out.threshold = threshold;
  out.tolerance = options.tolerance;
  return out;
}

}  // namespace optibar
