// Profile estimation: the Section IV-A benchmarking method.
//
// For each unordered pair (i, j):
//   O_ij — round-trips of payloads 2^0 .. 2^max_payload_exponent bytes,
//          `repetitions` samples per size averaged, least-squares line
//          over (bytes, mean seconds); half the intercept (the link is
//          assumed symmetric, so a round trip is twice a one-way signal)
//          is the startup-cost estimate.
//   L_ij — batches of 1 .. max_batch zero-payload messages, means per
//          count, least-squares gradient.
// And per rank: O_ii as the mean of `repetitions` no-op initiations.
//
// The paper keeps samples "purposely quite small" (25) because the
// |P|^2 sweep dominates profiling time; the defaults mirror that.
#pragma once

#include <cstddef>

#include "profile/measurement.hpp"
#include "topology/profile.hpp"

namespace optibar {

/// How the repetitions of one sample point are aggregated. The paper
/// uses the arithmetic mean; under background-load interference the mean
/// is badly biased by spikes (see bench_profile_accuracy), so the median
/// is offered as a robust alternative — an instance of the "further
/// refinement" Section IV-B leaves open.
enum class SampleAggregator { kMean, kMedian };

struct EstimatorOptions {
  /// Payload sizes are 2^0 .. 2^max_payload_exponent bytes (paper: 20).
  std::size_t max_payload_exponent = 20;
  /// Batch sizes are 1 .. max_batch messages (paper: 32).
  std::size_t max_batch = 32;
  /// Repetitions aggregated per sample point (paper: 25).
  std::size_t repetitions = 25;
  SampleAggregator aggregator = SampleAggregator::kMean;
};

/// Estimate one pair's startup cost O_ij (== O_ji).
double estimate_overhead(MeasurementEngine& engine, std::size_t i,
                         std::size_t j, const EstimatorOptions& options = {});

/// Estimate one pair's marginal latency L_ij (== L_ji).
double estimate_latency(MeasurementEngine& engine, std::size_t i,
                        std::size_t j, const EstimatorOptions& options = {});

/// Estimate one rank's software overhead O_ii.
double estimate_self_overhead(MeasurementEngine& engine, std::size_t i,
                              const EstimatorOptions& options = {});

/// Run the full |P|(|P|-1)/2 pairwise sweep plus |P| self tests and
/// assemble the symmetric profile.
TopologyProfile estimate_profile(MeasurementEngine& engine,
                                 const EstimatorOptions& options = {});

}  // namespace optibar
