// Tiled topology profile: the sub-quadratic O/L/G/R representation.
//
// A dense TopologyProfile stores up to four P x P matrices — 3.4 GB of
// doubles at P = 10240. On a clustered machine almost all of that is
// redundant: the matrix is a block grid in which every intra-cluster
// tile repeats per cluster class and every inter-cluster block is a
// single constant (§IV-B's "similar submatrices corresponding to
// similar subsystems", and the homogeneous blocks of Estefanel &
// Mounié). The tiled form stores exactly the non-redundant part:
//
//   - one dense t x t tile (a small TopologyProfile) per cluster CLASS,
//   - one scalar per ordered class pair and matrix for the
//     inter-cluster blocks,
//   - the rank -> cluster assignment and cluster -> class map.
//
// Memory is O(P + K·t² + C²) instead of O(P²). Element accessors
// o/l/g/r(i, j) mirror TopologyProfile exactly — same fallbacks (g -> 0,
// r -> l when absent) — and are bit-identical to the dense accessors on
// any machine whose block structure is exact (every preset with zero
// jitter), so small-P code can consume either form interchangeably.
//
// Disk format v4 (see docs/FORMATS.md) serializes the tiled structure;
// dense profiles are untouched and keep writing byte-identical v1/v2/v3.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "profile/logical_clusters.hpp"
#include "topology/profile.hpp"
#include "util/matrix.hpp"

namespace optibar {

class TiledProfile {
 public:
  TiledProfile() = default;

  /// Assemble a tiled profile directly from its parts — the generator
  /// path, where no dense P x P matrix ever exists. `clusters` must
  /// partition 0..P-1 canonically (numbered by smallest member),
  /// `class_of` must be in first-appearance order, every cluster's size
  /// must match its class tile, and the inter matrices must be
  /// classes x classes (G/R present exactly when the tiles carry them).
  TiledProfile(std::vector<std::vector<std::size_t>> clusters,
               std::vector<std::size_t> class_of,
               std::vector<TopologyProfile> tiles, Matrix<double> inter_o,
               Matrix<double> inter_l, Matrix<double> inter_g,
               Matrix<double> inter_r, double tolerance);

  /// Build the tiled form of a dense profile under a given
  /// decomposition. Tiles are taken from each class's first cluster and
  /// inter-cluster scalars from each class pair's first block; every
  /// other entry of `dense` is then verified to sit within
  /// `decomp.tolerance` (relative) of its representative — a violation
  /// throws Error, because silently lumping a non-block machine would
  /// misprice every schedule tuned on it.
  static TiledProfile from_dense(const TopologyProfile& dense,
                                 const ClusterDecomposition& decomp);

  std::size_t ranks() const { return assignment_.size(); }
  std::size_t cluster_count() const { return clusters_.size(); }
  std::size_t class_count() const { return tiles_.size(); }

  const std::vector<std::size_t>& assignment() const { return assignment_; }
  const std::vector<std::vector<std::size_t>>& clusters() const {
    return clusters_;
  }
  const std::vector<std::size_t>& class_of() const { return class_of_; }

  /// The representative t x t intra-cluster profile of class k.
  const TopologyProfile& class_tile(std::size_t k) const { return tiles_[k]; }

  /// Cluster id and position-within-cluster of a global rank.
  std::size_t cluster_of(std::size_t rank) const { return assignment_[rank]; }
  std::size_t local_index(std::size_t rank) const {
    return local_index_[rank];
  }

  bool has_bandwidth() const { return has_g_; }
  bool has_rma_latency() const { return has_r_; }

  /// Relative tolerance the block structure was verified at.
  double tolerance() const { return tolerance_; }

  /// Inter-cluster scalars per ordered class pair. Entries for class
  /// pairs with no realized cluster pair (a class with a single cluster
  /// on its own diagonal) are 0 and never consulted by the accessors.
  double inter_o(std::size_t ka, std::size_t kb) const {
    return inter_o_(ka, kb);
  }
  double inter_l(std::size_t ka, std::size_t kb) const {
    return inter_l_(ka, kb);
  }
  double inter_g(std::size_t ka, std::size_t kb) const {
    return has_g_ ? inter_g_(ka, kb) : 0.0;
  }
  double inter_r(std::size_t ka, std::size_t kb) const {
    return has_r_ ? inter_r_(ka, kb) : inter_l_(ka, kb);
  }

  /// Element accessors, bit-compatible with TopologyProfile on exact
  /// block machines (same g -> 0 and r -> l fallbacks).
  double o(std::size_t i, std::size_t j) const {
    const std::size_t ci = assignment_[i];
    const std::size_t cj = assignment_[j];
    if (ci == cj) {
      return tiles_[class_of_[ci]].o(local_index_[i], local_index_[j]);
    }
    return inter_o_(class_of_[ci], class_of_[cj]);
  }
  double l(std::size_t i, std::size_t j) const {
    const std::size_t ci = assignment_[i];
    const std::size_t cj = assignment_[j];
    if (ci == cj) {
      return tiles_[class_of_[ci]].l(local_index_[i], local_index_[j]);
    }
    return inter_l_(class_of_[ci], class_of_[cj]);
  }
  double g(std::size_t i, std::size_t j) const {
    if (!has_g_) {
      return 0.0;
    }
    const std::size_t ci = assignment_[i];
    const std::size_t cj = assignment_[j];
    if (ci == cj) {
      return tiles_[class_of_[ci]].g(local_index_[i], local_index_[j]);
    }
    return inter_g_(class_of_[ci], class_of_[cj]);
  }
  double r(std::size_t i, std::size_t j) const {
    if (!has_r_) {
      return l(i, j);
    }
    const std::size_t ci = assignment_[i];
    const std::size_t cj = assignment_[j];
    if (ci == cj) {
      return tiles_[class_of_[ci]].r(local_index_[i], local_index_[j]);
    }
    return inter_r_(class_of_[ci], class_of_[cj]);
  }

  /// Materialize the dense profile (guarded by the dense format cap —
  /// the whole point of the tiled form is never doing this at 10k).
  TopologyProfile to_dense() const;

  /// Dense submatrix over an arbitrary ordered rank subset, built from
  /// the accessors. Used for leader profiles and small-P interop.
  TopologyProfile restrict_to(const std::vector<std::size_t>& ranks) const;

  /// Exact bytes held by the representation (tiles + scalars + maps).
  std::size_t memory_bytes() const;

  void save(std::ostream& os) const;
  static TiledProfile load(std::istream& is);
  void save_file(const std::string& path) const;
  static TiledProfile load_file(const std::string& path);

  bool operator==(const TiledProfile& other) const = default;

 private:
  std::vector<std::size_t> assignment_;     ///< rank -> cluster id
  std::vector<std::uint32_t> local_index_;  ///< rank -> position in cluster
  std::vector<std::vector<std::size_t>> clusters_;
  std::vector<std::size_t> class_of_;  ///< cluster -> class
  std::vector<TopologyProfile> tiles_;  ///< class -> representative tile
  Matrix<double> inter_o_;  ///< class x class inter-cluster scalars
  Matrix<double> inter_l_;
  Matrix<double> inter_g_;  ///< empty when has_g_ is false
  Matrix<double> inter_r_;  ///< empty when has_r_ is false
  bool has_g_ = false;
  bool has_r_ = false;
  double tolerance_ = 0.0;

  void rebuild_local_index();
  void validate() const;
};

}  // namespace optibar
