// Sparse profiling via submatrix replication (Section IV-B, realised).
//
// "Introducing a modest amount of a priori knowledge about interconnect
//  structure can significantly reduce the work involved in profiling ...
//  a great deal of duplicate effort could be rationalized by
//  constructing P x P matrices from replicating component submatrices."
//
// The paper measures all |P|^2 pairs anyway (to avoid assuming node
// uniformity); this module implements the shortcut it describes: given
// the locality groups (typically one per node), measure only
//   - the intra-group pairs of the first group, and
//   - the inter-group pairs between the first two groups,
// then replicate. For N equal groups of g ranks this needs
// g(g-1)/2 + g^2 pairwise tests instead of Ng(Ng-1)/2 — an ~N^2/2-fold
// saving at large N. A verification mode spot-checks `verify_pairs`
// randomly chosen unmeasured pairs against their replicated values, the
// paper's suggestion of "running the full set of tests [to] verify".
#pragma once

#include <cstddef>
#include <cstdint>

#include "profile/estimator.hpp"
#include "profile/measurement.hpp"
#include "topology/replicate.hpp"

namespace optibar {

struct SparseEstimateOptions {
  EstimatorOptions estimation;
  /// Randomly sampled unmeasured pairs re-measured to validate the
  /// uniformity assumption; 0 disables verification.
  std::size_t verify_pairs = 0;
  /// Verification fails when a spot-checked pair deviates from its
  /// replicated value by more than this relative tolerance.
  double verify_tolerance = 0.25;
  std::uint64_t verify_seed = 123;
};

struct SparseEstimate {
  TopologyProfile profile;
  /// Pairwise measurements actually performed vs the full-sweep count.
  std::size_t measured_pairs = 0;
  std::size_t full_sweep_pairs = 0;
  /// Worst relative deviation seen during verification (0 when skipped).
  double worst_verified_deviation = 0.0;
};

/// Estimate a full profile from representative measurements only.
/// `groups` must partition 0..engine.ranks()-1 into equal-size locality
/// groups (at least two). Throws when verification exceeds tolerance.
SparseEstimate estimate_profile_sparse(MeasurementEngine& engine,
                                       const RankGroups& groups,
                                       const SparseEstimateOptions& options = {});

}  // namespace optibar
