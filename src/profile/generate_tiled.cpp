#include "profile/generate_tiled.hpp"

#include <utility>
#include <vector>

#include "topology/generate.hpp"
#include "util/error.hpp"
#include "util/matrix.hpp"

namespace optibar {

TiledProfile generate_tiled_profile(const MachineSpec& machine,
                                    std::size_t ranks) {
  const std::size_t t = machine.cores_per_node();
  OPTIBAR_REQUIRE(ranks > 0 && ranks % t == 0,
                  "rank count " << ranks << " does not cover whole nodes of "
                                << t << " cores");
  const std::size_t nodes = ranks / t;
  OPTIBAR_REQUIRE(nodes >= 2, "tiled generation needs at least two nodes");
  OPTIBAR_REQUIRE(nodes <= machine.nodes(),
                  "machine has " << machine.nodes() << " nodes, need "
                                 << nodes);

  // One node is the whole intra-cluster story: every node of the
  // uniform machine produces the same tile, and the jitter-free
  // generator is exact, so the single-node dense profile IS the class
  // tile.
  TopologyProfile tile = generate_profile(machine.first_nodes(1), t);

  // All inter-node pairs share one cost tier; core 0 of nodes 0 and 1
  // donate the scalars (block numbering is node-major).
  const LinkCost inter = machine.link_cost(0, t);
  Matrix<double> inter_o(1, 1, inter.overhead);
  Matrix<double> inter_l(1, 1, inter.latency);
  Matrix<double> inter_g;
  Matrix<double> inter_r;
  if (tile.has_bandwidth()) {
    inter_g = Matrix<double>(1, 1, inter.per_byte);
  }
  if (tile.has_rma_latency()) {
    inter_r = Matrix<double>(1, 1, inter.put_latency);
  }

  std::vector<std::vector<std::size_t>> clusters(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    clusters[n].reserve(t);
    for (std::size_t i = 0; i < t; ++i) {
      clusters[n].push_back(n * t + i);
    }
  }
  std::vector<TopologyProfile> tiles;
  tiles.push_back(std::move(tile));
  return TiledProfile(std::move(clusters),
                      std::vector<std::size_t>(nodes, 0), std::move(tiles),
                      std::move(inter_o), std::move(inter_l),
                      std::move(inter_g), std::move(inter_r),
                      /*tolerance=*/0.0);
}

}  // namespace optibar
