// Closed-form measurement engine over a simulated machine.
//
// Substitutes for running the Section IV-A benchmarks on real hardware:
// measurement outcomes are generated from the machine's ground-truth
// link costs plus a Hockney bandwidth term and seeded multiplicative
// noise, reproducing the sampling-noise conditions the paper describes
// ("runs which did not allocate the full set of nodes were subject to
// interference", Section IV-B). Because the ground truth is known,
// tests can quantify estimator error exactly.
#pragma once

#include <cstdint>

#include "profile/measurement.hpp"
#include "topology/generate.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "topology/profile.hpp"
#include "util/rng.hpp"

namespace optibar {

struct SyntheticEngineOptions {
  /// Hockney bandwidth per tier, bytes/second (payload cost = bytes/bw).
  double intra_node_bandwidth = 3.0e9;
  double inter_node_bandwidth = 1.25e8;  // gigabit ethernet

  /// Relative stddev of multiplicative measurement noise.
  double noise = 0.02;

  /// Probability of an interference spike on one measurement, and its
  /// magnitude relative to the base cost (background load on shared
  /// nodes).
  double interference_probability = 0.0;
  double interference_scale = 5.0;

  std::uint64_t seed = 7;
};

class SyntheticEngine final : public MeasurementEngine {
 public:
  SyntheticEngine(const MachineSpec& machine, const Mapping& mapping,
                  const SyntheticEngineOptions& options = {});

  std::size_t ranks() const override { return truth_.ranks(); }

  double roundtrip_seconds(std::size_t i, std::size_t j,
                           std::size_t payload_bytes) override;
  double batch_seconds(std::size_t i, std::size_t j,
                       std::size_t message_count) override;
  double noop_seconds(std::size_t i) override;

  /// The exact profile a perfect estimator would recover.
  const TopologyProfile& ground_truth() const { return truth_; }

 private:
  double perturb(double base);
  double bandwidth(std::size_t i, std::size_t j) const;

  MachineSpec machine_;
  Mapping mapping_;
  SyntheticEngineOptions options_;
  TopologyProfile truth_;
  Rng rng_;
};

}  // namespace optibar
