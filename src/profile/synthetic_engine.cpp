#include "profile/synthetic_engine.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace optibar {

SyntheticEngine::SyntheticEngine(const MachineSpec& machine,
                                 const Mapping& mapping,
                                 const SyntheticEngineOptions& options)
    : machine_(machine),
      mapping_(mapping),
      options_(options),
      truth_(generate_profile(machine, mapping)),
      rng_(options.seed) {
  OPTIBAR_REQUIRE(options_.noise >= 0.0, "negative noise");
  OPTIBAR_REQUIRE(options_.intra_node_bandwidth > 0.0 &&
                      options_.inter_node_bandwidth > 0.0,
                  "bandwidths must be positive");
}

double SyntheticEngine::perturb(double base) {
  double value = base;
  if (options_.noise > 0.0) {
    value *= std::max(0.05, 1.0 + options_.noise * rng_.next_normal());
  }
  if (options_.interference_probability > 0.0 &&
      rng_.next_double() < options_.interference_probability) {
    value += options_.interference_scale * base;
  }
  return value;
}

double SyntheticEngine::bandwidth(std::size_t i, std::size_t j) const {
  const LinkLevel level =
      machine_.link_level(mapping_.core_of(i), mapping_.core_of(j));
  return level == LinkLevel::kInterNode ? options_.inter_node_bandwidth
                                        : options_.intra_node_bandwidth;
}

double SyntheticEngine::roundtrip_seconds(std::size_t i, std::size_t j,
                                          std::size_t payload_bytes) {
  OPTIBAR_REQUIRE(i != j, "roundtrip requires distinct ranks");
  const double transfer =
      static_cast<double>(payload_bytes) / bandwidth(i, j);
  const double one_way_ij = truth_.o(i, j) + transfer;
  const double one_way_ji = truth_.o(j, i) + transfer;
  return perturb(one_way_ij + one_way_ji);
}

double SyntheticEngine::batch_seconds(std::size_t i, std::size_t j,
                                      std::size_t message_count) {
  OPTIBAR_REQUIRE(i != j, "batch requires distinct ranks");
  OPTIBAR_REQUIRE(message_count >= 1, "batch of zero messages");
  // First message pays the full startup O; each subsequent message adds
  // the marginal L — the quantity the gradient estimator recovers.
  const double base =
      truth_.o(i, j) +
      static_cast<double>(message_count - 1) * truth_.l(i, j);
  return perturb(base);
}

double SyntheticEngine::noop_seconds(std::size_t i) {
  return perturb(truth_.o(i, i));
}

}  // namespace optibar
