// Measurement engine interface for topology profiling.
//
// Section IV-A derives the O and L matrices from three primitive
// experiments; MeasurementEngine abstracts exactly those primitives so
// the same estimator code runs against
//   - SyntheticEngine: closed-form costs of a simulated machine plus
//     seeded measurement noise (lets tests compare estimates against a
//     known ground truth, which the paper could not do), and
//   - SimMpiEngine: wall-clock measurements over the in-process
//     thread runtime (the closest analogue of the paper's MPI runs).
#pragma once

#include <cstddef>

namespace optibar {

class MeasurementEngine {
 public:
  virtual ~MeasurementEngine() = default;

  /// Number of ranks this engine can measure.
  virtual std::size_t ranks() const = 0;

  /// One round-trip of a `payload_bytes`-byte message i -> j -> i,
  /// in seconds. Used with growing payloads; the regression intercept
  /// estimates 2 * O_ij (Hockney-style startup cost).
  virtual double roundtrip_seconds(std::size_t i, std::size_t j,
                                   std::size_t payload_bytes) = 0;

  /// Time for i to issue a batch of `message_count` zero-payload
  /// messages to j, in seconds. The regression gradient over growing
  /// counts estimates L_ij.
  virtual double batch_seconds(std::size_t i, std::size_t j,
                               std::size_t message_count) = 0;

  /// Time for i to initiate communication requests that cause no
  /// transmission, in seconds: the O_ii software overhead.
  virtual double noop_seconds(std::size_t i) = 0;
};

}  // namespace optibar
