#include "profile/simmpi_engine.hpp"

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "simmpi/runtime.hpp"
#include "topology/generate.hpp"
#include "util/error.hpp"

namespace optibar {

namespace {

std::chrono::nanoseconds to_ns(double seconds) {
  return std::chrono::nanoseconds{
      static_cast<std::int64_t>(std::llround(seconds * 1e9))};
}

double to_seconds(std::chrono::nanoseconds ns) {
  return static_cast<double>(ns.count()) * 1e-9;
}

}  // namespace

SimMpiEngine::SimMpiEngine(const MachineSpec& machine, const Mapping& mapping,
                           const SimMpiEngineOptions& options)
    : options_(options), truth_(generate_profile(machine, mapping)) {
  OPTIBAR_REQUIRE(options_.latency_scale > 0.0, "latency_scale must be > 0");
  OPTIBAR_REQUIRE(options_.bandwidth > 0.0, "bandwidth must be > 0");
}

std::size_t SimMpiEngine::ranks() const { return truth_.ranks(); }

double SimMpiEngine::roundtrip_seconds(std::size_t i, std::size_t j,
                                       std::size_t payload_bytes) {
  OPTIBAR_REQUIRE(i != j, "roundtrip requires distinct ranks");
  OPTIBAR_REQUIRE(i < ranks() && j < ranks(), "rank out of range");

  // Two-rank communicator: local rank 0 is i, local rank 1 is j. The
  // link delay is the ground-truth O plus the payload transfer time,
  // scaled into measurable wall-clock territory.
  const double transfer =
      static_cast<double>(payload_bytes) / options_.bandwidth;
  const double fwd = (truth_.o(i, j) + transfer) * options_.latency_scale;
  const double bwd = (truth_.o(j, i) + transfer) * options_.latency_scale;
  simmpi::LatencyModel latency = [fwd, bwd](std::size_t src, std::size_t) {
    return to_ns(src == 0 ? fwd : bwd);
  };

  simmpi::Communicator comm(2, std::move(latency));
  std::chrono::nanoseconds elapsed{};
  simmpi::run_ranks(comm, [&](simmpi::RankContext& ctx) {
    if (ctx.rank() == 0) {
      const auto start = simmpi::Clock::now();
      std::vector<simmpi::Request> ping{ctx.issend(1, 0)};
      simmpi::RankContext::wait_all(ping);
      std::vector<simmpi::Request> pong{ctx.irecv(1, 1)};
      simmpi::RankContext::wait_all(pong);
      elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
          simmpi::Clock::now() - start);
    } else {
      std::vector<simmpi::Request> ping{ctx.irecv(0, 0)};
      simmpi::RankContext::wait_all(ping);
      std::vector<simmpi::Request> pong{ctx.issend(0, 1)};
      simmpi::RankContext::wait_all(pong);
    }
  });
  return to_seconds(elapsed) / options_.latency_scale;
}

double SimMpiEngine::batch_seconds(std::size_t i, std::size_t j,
                                   std::size_t message_count) {
  OPTIBAR_REQUIRE(i != j, "batch requires distinct ranks");
  OPTIBAR_REQUIRE(message_count >= 1, "batch of zero messages");
  OPTIBAR_REQUIRE(i < ranks() && j < ranks(), "rank out of range");

  // L is the *software issuance* cost of adding a message to a batch
  // (Section IV-A); the runtime posts requests in constant time, so the
  // issuance cost is injected as a per-message delay at the sender.
  const double startup = truth_.o(i, j) * options_.latency_scale;
  const double issue = truth_.l(i, j) * options_.latency_scale;
  simmpi::LatencyModel latency = [startup](std::size_t src, std::size_t) {
    return to_ns(src == 0 ? startup : 0.0);
  };

  simmpi::Communicator comm(2, std::move(latency));
  std::chrono::nanoseconds elapsed{};
  simmpi::run_ranks(comm, [&](simmpi::RankContext& ctx) {
    if (ctx.rank() == 0) {
      const auto start = simmpi::Clock::now();
      std::vector<simmpi::Request> sends;
      sends.reserve(message_count);
      for (std::size_t m = 0; m < message_count; ++m) {
        if (m > 0) {
          std::this_thread::sleep_for(to_ns(issue));
        }
        sends.push_back(ctx.issend(1, static_cast<int>(m)));
      }
      simmpi::RankContext::wait_all(sends);
      elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
          simmpi::Clock::now() - start);
    } else {
      std::vector<simmpi::Request> recvs;
      recvs.reserve(message_count);
      for (std::size_t m = 0; m < message_count; ++m) {
        recvs.push_back(ctx.irecv(0, static_cast<int>(m)));
      }
      simmpi::RankContext::wait_all(recvs);
    }
  });
  return to_seconds(elapsed) / options_.latency_scale;
}

double SimMpiEngine::noop_seconds(std::size_t i) {
  OPTIBAR_REQUIRE(i < ranks(), "rank out of range");
  // Initiating requests that cause no transmission costs pure software
  // overhead; modelled as a timed sleep of the ground-truth O_ii.
  const auto start = simmpi::Clock::now();
  std::this_thread::sleep_for(to_ns(truth_.o(i, i) * options_.latency_scale));
  const auto elapsed = std::chrono::duration_cast<std::chrono::nanoseconds>(
      simmpi::Clock::now() - start);
  return to_seconds(elapsed) / options_.latency_scale;
}

}  // namespace optibar
