#include "profile/sparse_estimator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace optibar {

SparseEstimate estimate_profile_sparse(MeasurementEngine& engine,
                                       const RankGroups& groups,
                                       const SparseEstimateOptions& options) {
  OPTIBAR_REQUIRE(groups.size() >= 2, "need at least two locality groups");
  const std::size_t group_size = groups.front().size();
  OPTIBAR_REQUIRE(group_size > 0, "empty group");
  std::size_t total = 0;
  for (const auto& group : groups) {
    OPTIBAR_REQUIRE(group.size() == group_size,
                    "groups must have equal size");
    total += group.size();
  }
  OPTIBAR_REQUIRE(total == engine.ranks(),
                  "groups must partition all " << engine.ranks() << " ranks");

  SparseEstimate result{TopologyProfile(Matrix<double>(total, total),
                                        Matrix<double>(total, total)),
                        0, total * (total - 1) / 2, 0.0};
  Matrix<double> o(total, total);
  Matrix<double> l(total, total);

  const auto& rep = groups[0];
  const auto& rep2 = groups[1];

  // Representative intra-group block (group 0, unordered pairs).
  for (std::size_t a = 0; a < group_size; ++a) {
    for (std::size_t b = a + 1; b < group_size; ++b) {
      const double oij =
          estimate_overhead(engine, rep[a], rep[b], options.estimation);
      const double lij =
          estimate_latency(engine, rep[a], rep[b], options.estimation);
      o(rep[a], rep[b]) = o(rep[b], rep[a]) = oij;
      l(rep[a], rep[b]) = l(rep[b], rep[a]) = lij;
      ++result.measured_pairs;
    }
  }
  // Representative inter-group block (group 0 x group 1).
  for (std::size_t a = 0; a < group_size; ++a) {
    for (std::size_t b = 0; b < group_size; ++b) {
      const double oij =
          estimate_overhead(engine, rep[a], rep2[b], options.estimation);
      const double lij =
          estimate_latency(engine, rep[a], rep2[b], options.estimation);
      o(rep[a], rep2[b]) = o(rep2[b], rep[a]) = oij;
      l(rep[a], rep2[b]) = l(rep2[b], rep[a]) = lij;
      ++result.measured_pairs;
    }
  }
  // Self overheads: measure group 0's ranks, replicate positionally.
  for (std::size_t a = 0; a < group_size; ++a) {
    const double oii =
        estimate_self_overhead(engine, rep[a], options.estimation);
    for (const auto& group : groups) {
      o(group[a], group[a]) = oii;
    }
  }

  result.profile = replicate_profile(
      TopologyProfile(std::move(o), std::move(l)), groups);

  // Spot-check randomly chosen unmeasured pairs against replication
  // (the paper: "Running the full set of tests can verify that the
  // communication characteristics ... does not differ radically").
  if (options.verify_pairs > 0) {
    Rng rng(options.verify_seed);
    // Group index of each rank, to skip the measured blocks.
    std::vector<std::size_t> group_of(total, 0);
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (std::size_t rank : groups[g]) {
        group_of[rank] = g;
      }
    }
    std::size_t checked = 0;
    std::size_t attempts = 0;
    while (checked < options.verify_pairs && attempts < 64 * options.verify_pairs) {
      ++attempts;
      const std::size_t i = rng.next_below(total);
      const std::size_t j = rng.next_below(total);
      if (i == j) {
        continue;
      }
      const bool measured_block =
          (group_of[i] == 0 && group_of[j] == 0) ||
          (group_of[i] == 0 && group_of[j] == 1) ||
          (group_of[i] == 1 && group_of[j] == 0);
      if (measured_block) {
        continue;
      }
      const double measured =
          estimate_overhead(engine, i, j, options.estimation);
      ++result.measured_pairs;
      ++checked;
      const double replicated = result.profile.o(i, j);
      const double deviation =
          std::abs(measured - replicated) / std::max(measured, replicated);
      result.worst_verified_deviation =
          std::max(result.worst_verified_deviation, deviation);
      OPTIBAR_REQUIRE(deviation <= options.verify_tolerance,
                      "uniformity verification failed for pair ("
                          << i << "," << j << "): measured " << measured
                          << " vs replicated " << replicated << " ("
                          << deviation * 100 << "% off); the machine is not "
                          << "group-uniform — run the full sweep");
    }
  }
  return result;
}

}  // namespace optibar
