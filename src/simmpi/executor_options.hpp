// Shared construction knobs for the schedule and collective executors.
//
// Before the handle-based API both executors grew their own constructor
// overloads (mode-only, mode + pool, ...). ExecutorOptions consolidates
// everything an executor needs to know about *how* to run — execution
// mode, an optional shared RankPool, the progress-slice width of the
// nonblocking wait() loop, and the deadline/retry knobs of the
// resilient lifecycle — behind one aggregate validated like
// EngineOptions: validate() throws optibar::Error at the executor
// boundary, so a bad configuration fails at construction, not mid-run.
#pragma once

#include <chrono>
#include <cstddef>

#include "simmpi/rank_pool.hpp"
#include "simmpi/request.hpp"
#include "simmpi/resilience.hpp"

namespace optibar::simmpi {

struct ExecutorOptions {
  /// How run_once-style entry points obtain rank threads (see
  /// rank_pool.hpp). Ignored when `shared_pool` is set.
  ExecutionMode mode = ExecutionMode::kSpawnPerEpisode;

  /// Optional non-owning pool: several executors may share one set of
  /// parked rank workers instead of each owning stage_count() threads.
  /// Must outlive the executor and hold at least ranks() workers
  /// (checked at construction). When set, `mode` is ignored — episodes
  /// always dispatch pool generations.
  RankPool* shared_pool = nullptr;

  /// Width of one bounded progress slice inside wait(handle): the rank
  /// worker parks on its shard condvar for at most this long, then
  /// re-scans and either advances the episode a stage or parks again.
  /// Bounded slices are what let the resilient lifecycle charge
  /// deadlines by elapsed progress time and let pooled workers stay
  /// responsive instead of blocking indefinitely in wait_all_on.
  Clock::duration progress_slice = std::chrono::milliseconds(1);

  /// Deadline/retry knobs used by the handle-based resilient lifecycle
  /// when the caller posts without explicit options
  /// (post_resilient(ctx, report)); the explicit-options overloads
  /// ignore this field.
  ResilienceOptions resilience;

  /// Throws optibar::Error when any knob is out of range (non-positive
  /// progress slice, resilience slack/backoff/clamp windows that could
  /// never produce a usable deadline).
  void validate() const;
};

}  // namespace optibar::simmpi
