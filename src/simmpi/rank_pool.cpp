#include "simmpi/rank_pool.hpp"

#include "util/error.hpp"

namespace optibar::simmpi {

RankPool::RankPool(std::size_t ranks) {
  OPTIBAR_REQUIRE(ranks > 0, "rank pool needs at least one rank");
  errors_.assign(ranks, nullptr);
  workers_.reserve(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    workers_.emplace_back([this, r] { worker_loop(r); });
  }
}

RankPool::~RankPool() {
  {
    // Taking run_mutex_ first lets an in-flight generation drain.
    std::lock_guard<std::mutex> serial(run_mutex_);
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void RankPool::worker_loop(std::size_t rank) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return stop_ || (epoch_ != seen && rank < active_);
      });
      if (stop_) {
        return;
      }
      seen = epoch_;
      job = job_;
    }
    std::exception_ptr error;
    try {
      (*job)(rank);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error) {
        errors_[rank] = error;
      }
      if (--remaining_ == 0) {
        done_cv_.notify_all();
      }
    }
  }
}

void RankPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  OPTIBAR_REQUIRE(fn, "null rank function");
  OPTIBAR_REQUIRE(n > 0 && n <= workers_.size(),
                  "generation width " << n << " not in [1, "
                                      << workers_.size() << "]");
  std::lock_guard<std::mutex> serial(run_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    active_ = n;
    remaining_ = n;
    ++epoch_;
    errors_.assign(workers_.size(), nullptr);
  }
  start_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    job_ = nullptr;
  }
  for (const std::exception_ptr& error : errors_) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
}

}  // namespace optibar::simmpi
