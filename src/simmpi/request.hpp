// Nonblocking communication requests.
//
// simmpi mirrors the slice of MPI the paper's general barrier
// interpreter uses (Section VI): nonblocking synchronized sends
// (MPI_Issend), nonblocking receives, and wait-all. A Request is a
// shared handle to the completion state of one operation; both the
// issuing rank (via wait) and the matching logic (via the message board)
// touch it, hence the shared ownership and internal synchronisation.
#pragma once

#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

namespace optibar::simmpi {

using Clock = std::chrono::steady_clock;

/// Completion state of one nonblocking operation.
///
/// `complete` flips exactly once, under `mutex`, when the operation
/// matches its counterpart. `ready_at` carries the simulated link
/// latency: wait() returns no earlier than this point, which is how a
/// heterogeneous topology is injected into a shared-memory process.
struct RequestState {
  std::mutex mutex;
  std::condition_variable cv;
  bool complete = false;
  Clock::time_point ready_at{};

  /// Mark complete with the given earliest-visible time and wake waiters.
  void fulfil(Clock::time_point visible_at) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      complete = true;
      ready_at = visible_at;
    }
    cv.notify_all();
  }

  /// Block until fulfilled, then until the simulated delivery time.
  void wait() {
    Clock::time_point until;
    {
      std::unique_lock<std::mutex> lock(mutex);
      cv.wait(lock, [this] { return complete; });
      until = ready_at;
    }
    if (until > Clock::now()) {
      std::this_thread::sleep_until(until);
    }
  }

  /// Nonblocking completion probe (MPI_Test analogue).
  bool test() {
    std::lock_guard<std::mutex> lock(mutex);
    return complete && ready_at <= Clock::now();
  }

  /// True once the operation matched its counterpart, even if the
  /// simulated delivery time is still in the future. Stall diagnostics
  /// need this distinction: a matched-but-late signal *will* arrive,
  /// an unmatched one never does.
  bool finished() {
    std::lock_guard<std::mutex> lock(mutex);
    return complete;
  }

  /// Bounded wait against an absolute deadline: true when the operation
  /// completed with a delivery time at or before `deadline`. A delivery
  /// landing exactly on the deadline is a success — the timeout contract
  /// is "not done strictly after the deadline", matching
  /// condition_variable::wait_until.
  bool wait_until(Clock::time_point deadline) {
    Clock::time_point until;
    {
      std::unique_lock<std::mutex> lock(mutex);
      if (!cv.wait_until(lock, deadline, [this] { return complete; })) {
        return false;
      }
      until = ready_at;
    }
    if (until > deadline) {
      return false;
    }
    if (until > Clock::now()) {
      std::this_thread::sleep_until(until);
    }
    return true;
  }

  /// Bounded wait: true when the operation completed (and its delivery
  /// time passed) within `timeout`. The failure-detection primitive a
  /// runtime needs when a peer may have died mid-barrier — plain MPI
  /// would hang, this reports.
  bool wait_for(Clock::duration timeout) {
    return wait_until(Clock::now() + timeout);
  }
};

using Request = std::shared_ptr<RequestState>;

}  // namespace optibar::simmpi
