// Injected pairwise latency for the in-process runtime.
//
// The paper controls heterogeneity through processor affinity on a real
// multi-layer interconnect. In a single shared-memory process all ranks
// are equidistant, so we re-introduce the heterogeneous structure
// explicitly: a LatencyModel maps (src, dst) to a one-way delivery delay,
// typically derived from a TopologyProfile's O matrix scaled to
// wall-clock magnitudes the thread scheduler can honour.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>

#include "topology/profile.hpp"

namespace optibar::simmpi {

/// Returns the one-way delivery delay of a message src -> dst.
using LatencyModel =
    std::function<std::chrono::nanoseconds(std::size_t src, std::size_t dst)>;

/// No injected delay — the runtime behaves like a uniform SMP.
LatencyModel uniform_latency();

/// Delay(src, dst) = profile.O(src, dst) seconds scaled by `scale`.
/// The scale exists because realistic microsecond-level delays are below
/// scheduler granularity; tests use scales that make tiers observable.
LatencyModel profile_latency(const TopologyProfile& profile,
                             double scale = 1.0);

}  // namespace optibar::simmpi
