#include "simmpi/executor_options.hpp"

#include "util/error.hpp"

namespace optibar::simmpi {

void ExecutorOptions::validate() const {
  OPTIBAR_REQUIRE(progress_slice > Clock::duration::zero(),
                  "progress_slice must be positive");
  OPTIBAR_REQUIRE(resilience.slack > 0.0,
                  "resilience.slack must be positive, got "
                      << resilience.slack);
  OPTIBAR_REQUIRE(resilience.time_scale > 0.0,
                  "resilience.time_scale must be positive, got "
                      << resilience.time_scale);
  OPTIBAR_REQUIRE(resilience.retry_backoff >= 1.0,
                  "resilience.retry_backoff must be >= 1, got "
                      << resilience.retry_backoff);
  OPTIBAR_REQUIRE(resilience.deadline_floor >= Clock::duration::zero(),
                  "resilience.deadline_floor must be non-negative");
  OPTIBAR_REQUIRE(resilience.deadline_ceiling >= resilience.deadline_floor,
                  "resilience.deadline_ceiling below deadline_floor");
  for (const double seconds : resilience.predicted_stage_seconds) {
    OPTIBAR_REQUIRE(seconds >= 0.0,
                    "negative predicted stage cost " << seconds);
  }
}

}  // namespace optibar::simmpi
