#include "simmpi/latency_model.hpp"

#include <cmath>

#include "util/error.hpp"

namespace optibar::simmpi {

LatencyModel uniform_latency() {
  return [](std::size_t, std::size_t) { return std::chrono::nanoseconds{0}; };
}

LatencyModel profile_latency(const TopologyProfile& profile, double scale) {
  OPTIBAR_REQUIRE(scale >= 0.0, "negative latency scale");
  // Copy the O matrix by value so the model outlives the profile.
  Matrix<double> o = profile.overhead();
  return [o, scale](std::size_t src, std::size_t dst) {
    const double seconds = o(src, dst) * scale;
    return std::chrono::nanoseconds{
        static_cast<std::int64_t>(std::llround(seconds * 1e9))};
  };
}

}  // namespace optibar::simmpi
