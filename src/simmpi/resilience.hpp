// Bounded-wait execution and stall diagnostics.
//
// The happy-path executors wait forever — correct when the schedule is
// a barrier and the network delivers. Under faults (fault.hpp) a
// synchronized send can simply never complete, so the resilient mode
// gives every stage a deadline derived from the predicted stage cost
// (predicted x slack, clamped to a floor/ceiling), retries unacked
// Issends with exponential backoff a bounded number of times (a resend
// is a fresh message with a fresh fault draw, so it can get through a
// lossy link), and on exhaustion stops with a structured StallReport
// instead of hanging.
//
// The report answers the operator's question — *which signal never
// propagated?* — by replaying the paper's Eq. 3 knowledge recurrence
// over the signals that actually arrived: K_0 = I + D_0,
// K_a = K_{a-1} + K_{a-1} * D_a, where D_a is the incidence matrix of
// stage-a signals whose receive completed. Zero cells of the final K
// are exactly the arrival facts that never reached their destination.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "barrier/schedule.hpp"
#include "simmpi/request.hpp"

namespace optibar::simmpi {

/// Knobs of the bounded-wait mode.
struct ResilienceOptions {
  /// Predicted cost of each stage in seconds (cost_model.hpp's
  /// Prediction::stage_increment). Empty: every deadline is the floor.
  std::vector<double> predicted_stage_seconds;

  /// Deadline = predicted * slack * time_scale, clamped below/above.
  /// The slack absorbs model error and scheduler jitter; the floor
  /// keeps microsecond-scale predictions from producing deadlines a
  /// thread wakeup can miss; the ceiling bounds the total stall time.
  double slack = 8.0;
  double time_scale = 1.0;
  Clock::duration deadline_floor = std::chrono::milliseconds(10);
  Clock::duration deadline_ceiling = std::chrono::milliseconds(250);

  /// Resend attempts per stage after the first timeout; each retry
  /// multiplies the wait budget by retry_backoff.
  std::size_t max_retries = 1;
  double retry_backoff = 2.0;

  Clock::duration stage_deadline(std::size_t stage) const;
};

/// One schedule edge (stage s, src -> dst); the unit the report names.
struct SignalEdge {
  std::size_t stage = 0;
  std::size_t src = 0;
  std::size_t dst = 0;

  bool operator==(const SignalEdge& other) const = default;
  bool operator<(const SignalEdge& other) const {
    if (stage != other.stage) return stage < other.stage;
    if (src != other.src) return src < other.src;
    return dst < other.dst;
  }
};

/// What one rank saw before finishing, crashing, or giving up.
struct RankStall {
  std::size_t rank = 0;
  std::size_t stage_reached = 0;  ///< last stage entered
  bool finished = false;          ///< ran every stage to completion
  bool crashed = false;           ///< halted by a crash fault
  std::vector<std::size_t> pending_send_to;    ///< unacked sends at stall
  std::vector<std::size_t> pending_recv_from;  ///< undelivered recvs at stall
  /// Sources whose one-sided flag never arrived at stall. Puts are
  /// fire-and-forget — the *sender* completed long ago and has nothing
  /// to resend or report — so a dropped put surfaces only here, on the
  /// receiver.
  std::vector<std::size_t> pending_put_from;
  /// Recvs that completed (dst == rank). finalize() sorts this into
  /// canonical (stage, src, dst) order: delivery is a set, and the
  /// detection order under retries is not rerun-stable.
  std::vector<SignalEdge> delivered;
  /// Peer of the latest delivered signal (by stage, then source), or
  /// npos when nothing ever arrived. Derived from the delivery log, not
  /// wall-clock order, so it is deterministic.
  std::size_t last_heard_from = static_cast<std::size_t>(-1);

  bool operator==(const RankStall& other) const = default;
};

/// The structured outcome of a resilient run. With `stalled == false`
/// the operation completed everywhere and the diagnostic fields are
/// the (complete) delivery log.
struct StallReport {
  std::size_t ranks = 0;
  std::size_t stages = 0;
  bool stalled = false;
  std::vector<RankStall> per_rank;
  /// Eq. 3 knowledge over delivered signals; all-nonzero iff every
  /// rank could have observed every arrival.
  BoolMatrix knowledge;
  /// Edges some rank was still waiting on when it gave up, sorted.
  std::vector<SignalEdge> pending_edges;

  /// True when the report blames (stage, src, dst): the edge appears in
  /// pending_edges.
  bool names_edge(std::size_t stage, std::size_t src, std::size_t dst) const;

  /// The (src, dst) rank pairs implicated by pending_edges, deduplicated
  /// across stages and sorted — the evidence unit the plan service's
  /// repair loop feeds to its DriftMonitor (a pair blamed in several
  /// stages is one suspect link, not several).
  std::vector<std::pair<std::size_t, std::size_t>> implicated_pairs() const;

  /// Human-readable rendering (CLI / C API surface).
  std::string describe() const;

  /// Size per_rank and the knowledge matrix for a run; executors
  /// require a report already shaped for their schedule.
  void reset(std::size_t ranks, std::size_t stages);

  /// Aggregate per-rank logs into knowledge / pending_edges /
  /// last_heard_from / stalled. Called once, after all rank threads
  /// joined.
  void finalize();

  bool operator==(const StallReport& other) const = default;
};

}  // namespace optibar::simmpi
