// Seeded, deterministic fault injection for the runtimes.
//
// A FaultPlan describes which point-to-point signals misbehave: per
// (src, dst, tag) channel a message can be *dropped* (never delivered —
// the synchronized send never completes), *duplicated* (a ghost copy
// occupies the receiver), or hit by a *delay spike* (delivered late),
// a one-sided put can be *dropped* (the remote flag word is never
// written — the receiver stalls, while the fire-and-forget sender
// proceeds unaware), and a rank can *crash* on entering a given stage
// (subsuming netsim's crashed_ranks, which is crash-at-stage-0). Both runtimes — the
// threaded simmpi executors and the discrete-event netsim engine —
// consume the same plan, so a failure observed in one can be replayed
// in the other.
//
// Determinism contract: every injection decision is a pure function of
// (seed, src, dst, tag, per-channel send sequence number, rule index) —
// a counter-based splitmix64 hash, no shared RNG stream. Thread
// interleaving cannot change a decision because each channel has a
// single sending rank, making the sequence number deterministic. A
// failing run is therefore bit-reproducible from its one-line spec()
// string (suitable for a log line), which parse() round-trips.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace optibar {

/// One probabilistic per-channel fault rule. `src`/`dst` may be
/// kAnyRank and `tag` may be kAnyTag (wildcards). For executor traffic
/// the tag of episode 0 equals the stage index, so "@2" targets stage 2.
struct ChannelFaultRule {
  static constexpr std::size_t kAnyRank = static_cast<std::size_t>(-1);
  static constexpr int kAnyTag = -1;

  std::size_t src = kAnyRank;
  std::size_t dst = kAnyRank;
  int tag = kAnyTag;
  double probability = 1.0;
  double delay_seconds = 0.0;  ///< used by delay rules only

  bool matches(std::size_t s, std::size_t d, int t) const {
    return (src == kAnyRank || src == s) && (dst == kAnyRank || dst == d) &&
           (tag == kAnyTag || tag == t);
  }

  bool operator==(const ChannelFaultRule& other) const = default;
};

/// A rank that halts on entering `stage` (before sending or receiving
/// anything of that stage). stage == 0 means the rank never enters the
/// operation at all — netsim's legacy crashed_ranks semantics.
struct CrashFault {
  std::size_t rank = 0;
  std::size_t stage = 0;

  bool operator==(const CrashFault& other) const = default;
};

/// The full fault specification: rule lists plus the hash seed that
/// makes probabilistic rules reproducible.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<ChannelFaultRule> drops;
  std::vector<ChannelFaultRule> duplicates;
  std::vector<ChannelFaultRule> delays;
  /// One-sided put drops. `tag` addresses the *stage* of the put (puts
  /// carry no MPI tag; the flag slot encodes the stage, so the rule
  /// grammar reuses the tag position for it).
  std::vector<ChannelFaultRule> putdrops;
  std::vector<CrashFault> crashes;

  bool empty() const {
    return drops.empty() && duplicates.empty() && delays.empty() &&
           putdrops.empty() && crashes.empty();
  }

  bool operator==(const FaultPlan& other) const = default;

  /// One-line replayable form, e.g.
  ///   "seed=7;drop=0>1@2:1;dup=*>*@*:0.5;delay=2>3@*:0.25:0.001;"
  ///   "putdrop=0>3@1:0.5;crash=4@2"
  /// Fields are ';'-separated; drop/dup are SRC>DST@TAG:PROB, delay adds
  /// :SECONDS, putdrop is SRC>DST@STAGE:PROB, crash is RANK@STAGE; '*'
  /// is the wildcard. parse(spec()) reproduces the plan exactly
  /// (probabilities printed at full precision).
  std::string spec() const;

  /// Parse the spec grammar above. Throws optibar::Error on malformed
  /// input (unknown key, bad number, probability outside [0, 1], ...).
  static FaultPlan parse(const std::string& spec);
};

/// Evaluates a FaultPlan. Stateless between calls: decisions depend
/// only on the arguments, never on call order (see the determinism
/// contract above).
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }

  /// What happens to the `seq`-th message sent on channel
  /// (src, dst, tag). Drop preempts duplication and delay.
  struct Decision {
    bool drop = false;
    std::size_t duplicates = 0;   ///< extra ghost copies to deliver
    double delay_seconds = 0.0;   ///< summed delay-spike time
  };
  Decision decide(std::size_t src, std::size_t dst, int tag,
                  std::uint64_t seq) const;

  /// Whether the `seq`-th one-sided put from `src` into `dst`'s window
  /// at `stage` is dropped (the flag word is never written). Hashed on
  /// its own kind salt, so putdrop rules never perturb two-sided
  /// decisions and vice versa.
  bool decide_put(std::size_t src, std::size_t dst, std::size_t stage,
                  std::uint64_t seq) const;

  /// Stage at which `rank` crashes (the minimum over its crash rules),
  /// or kNoCrash when the rank is healthy.
  static constexpr std::size_t kNoCrash = static_cast<std::size_t>(-1);
  std::size_t crash_stage(std::size_t rank) const;

 private:
  FaultPlan plan_;
};

}  // namespace optibar
