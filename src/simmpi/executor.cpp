#include "simmpi/executor.hpp"

#include <algorithm>
#include <thread>

#include "rma/layout.hpp"
#include "util/error.hpp"

namespace optibar::simmpi {

ScheduleExecutor::ScheduleExecutor(const Schedule& schedule,
                                   const ExecutorOptions& options)
    : stages_(schedule.stage_count()), options_(options) {
  options_.validate();
  OPTIBAR_REQUIRE(schedule.is_barrier(),
                  "refusing to execute a signal pattern that is not a "
                  "barrier (Eq. 3 check failed)");
  const std::size_t p = schedule.ranks();
  ops_.assign(p, std::vector<StageOps>(stages_));
  for (std::size_t r = 0; r < p; ++r) {
    for (std::size_t s = 0; s < stages_; ++s) {
      // Partition each stage's edges by transport tag: untagged edges
      // keep the issend/irecv path, tagged ones become put/flag pairs.
      StageOps& ops = ops_[r][s];
      for (std::size_t dst : schedule.targets_of(r, s)) {
        (schedule.one_sided(s, r, dst) ? ops.put_to : ops.send_to)
            .push_back(dst);
      }
      for (std::size_t src : schedule.sources_of(r, s)) {
        (schedule.one_sided(s, src, r) ? ops.flag_from : ops.recv_from)
            .push_back(src);
      }
      has_one_sided_ = has_one_sided_ || !ops.put_to.empty();
    }
  }
  if (options_.shared_pool != nullptr) {
    OPTIBAR_REQUIRE(options_.shared_pool->size() >= p,
                    "shared pool has " << options_.shared_pool->size()
                                       << " workers, schedule needs " << p);
  } else if (options_.mode == ExecutionMode::kPersistentPool) {
    pool_ = std::make_unique<RankPool>(p);
  }
}

ScheduleExecutor::ScheduleExecutor(const Schedule& schedule,
                                   ExecutionMode mode)
    : ScheduleExecutor(schedule, [mode] {
        ExecutorOptions options;
        options.mode = mode;
        return options;
      }()) {}

void ScheduleExecutor::run_episode(Communicator& comm,
                                   const RankFunction& fn) const {
  if (options_.shared_pool != nullptr) {
    run_ranks(*options_.shared_pool, comm, fn);
  } else if (pool_ != nullptr) {
    run_ranks(*pool_, comm, fn);
  } else {
    run_ranks(comm, fn);
  }
}

void ScheduleExecutor::check_context(const RankContext& ctx) const {
  OPTIBAR_REQUIRE(ctx.rank() < ops_.size(),
                  "rank out of range for this executor");
  OPTIBAR_REQUIRE(ctx.size() == ops_.size(),
                  "communicator size " << ctx.size()
                                       << " != schedule rank count "
                                       << ops_.size());
}

void ScheduleExecutor::begin_stage(EpisodeHandle& handle,
                                   std::size_t stage) const {
  if (stage == stages_) {
    handle.done_ = true;
    handle.requests_.clear();
    handle.flags_.clear();
    return;
  }
  handle.stage_ = stage;
  const std::size_t rank = handle.ctx_->rank();
  const StageOps& ops = ops_[rank][stage];
  // Tag = (episode, stage) so repeated barrier calls cannot cross-match.
  const int tag =
      handle.episode_ * static_cast<int>(stages_) + static_cast<int>(stage);
  handle.requests_.clear();
  handle.requests_.reserve(ops.send_to.size() + ops.recv_from.size());
  // Sends before recvs — the op order execute() has always used; the
  // lifecycle must not reorder it or wait(post()) stops being
  // bit-identical to the old blocking path. One-sided puts go out
  // between the two: like sends they are outbound, but they complete
  // locally at issue and produce no request.
  for (std::size_t dst : ops.send_to) {
    handle.requests_.push_back(handle.ctx_->issend(dst, tag));
  }
  handle.flags_.clear();
  if (!ops.put_to.empty() || !ops.flag_from.empty()) {
    const std::size_t e = static_cast<std::size_t>(handle.episode_);
    const std::size_t p = ops_.size();
    for (std::size_t dst : ops.put_to) {
      // The flag lands in dst's window at the slot keyed by *this*
      // rank; the region base is symmetric across ranks.
      handle.ctx_->rma_put(
          dst, handle.rma_base_ + rma::word_index(e, stage, rank, stages_, p),
          rma::flag_value(e), stage);
    }
    handle.flags_.reserve(ops.flag_from.size());
    for (std::size_t src : ops.flag_from) {
      handle.flags_.push_back(Communicator::FlagWait{
          handle.rma_base_ + rma::word_index(e, stage, src, stages_, p),
          rma::flag_value(e)});
    }
  }
  for (std::size_t src : ops.recv_from) {
    handle.requests_.push_back(handle.ctx_->irecv(src, tag));
  }
}

std::size_t ScheduleExecutor::rma_base(RankContext& ctx, int episode) const {
  OPTIBAR_REQUIRE(episode >= 0,
                  "one-sided schedules need non-negative episode numbers "
                  "(the epoch double-buffering is keyed on them)");
  return ctx.communicator().rma_region(
      reinterpret_cast<std::uintptr_t>(this),
      rma::words_per_rank(stages_, ops_.size()));
}

ScheduleExecutor::EpisodeHandle ScheduleExecutor::post(RankContext& ctx,
                                                       int episode) const {
  check_context(ctx);
  EpisodeHandle handle;
  handle.ctx_ = &ctx;
  handle.episode_ = episode;
  if (has_one_sided_) {
    handle.rma_base_ = rma_base(ctx, episode);
  }
  begin_stage(handle, 0);
  return handle;
}

bool ScheduleExecutor::test(EpisodeHandle& handle) const {
  if (handle.done_) {
    return true;
  }
  OPTIBAR_REQUIRE(handle.ctx_ != nullptr, "test() on an empty handle");
  for (;;) {
    for (const Request& request : handle.requests_) {
      if (!request->test()) {
        return false;
      }
    }
    for (const Communicator::FlagWait& flag : handle.flags_) {
      if (!handle.ctx_->rma_test(flag.word, flag.expected)) {
        return false;
      }
    }
    begin_stage(handle, handle.stage_ + 1);
    if (handle.done_) {
      return true;
    }
  }
}

void ScheduleExecutor::wait(EpisodeHandle& handle) const {
  if (handle.done_) {
    return;
  }
  OPTIBAR_REQUIRE(handle.ctx_ != nullptr, "wait() on an empty handle");
  while (!handle.done_) {
    // One bounded progress slice: park on this rank's shard condvar
    // until the stage's requests all matched or the slice expires, then
    // either advance a stage or park again. A loop of slices consumes
    // the same matches as one unbounded wait_all_on park.
    if (handle.ctx_->wait_stage_until(
            handle.requests_, handle.flags_,
            Clock::now() + options_.progress_slice)) {
      begin_stage(handle, handle.stage_ + 1);
    }
  }
}

void ScheduleExecutor::execute(RankContext& ctx, int episode) const {
  EpisodeHandle handle = post(ctx, episode);
  wait(handle);
}

void ScheduleExecutor::begin_stage_resilient(ResilientEpisodeHandle& handle,
                                             std::size_t stage) const {
  RankStall& mine = handle.report_->per_rank[handle.ctx_->rank()];
  if (stage == stages_) {
    mine.stage_reached = stages_;
    handle.done_ = true;
    handle.sends_.clear();
    handle.recvs_.clear();
    handle.flags_.clear();
    return;
  }
  handle.stage_ = stage;
  mine.stage_reached = stage;
  if (stage >= handle.crash_at_) {
    mine.crashed = true;
    handle.failed_ = true;
    return;
  }
  const std::size_t rank = handle.ctx_->rank();
  const StageOps& ops = ops_[rank][stage];
  const int tag =
      handle.episode_ * static_cast<int>(stages_) + static_cast<int>(stage);
  handle.sends_.clear();
  handle.sends_.reserve(ops.send_to.size());
  for (std::size_t dst : ops.send_to) {
    handle.sends_.push_back(ResilientEpisodeHandle::SendOp{
        dst, {handle.ctx_->issend(dst, tag)}});
  }
  handle.flags_.clear();
  if (!ops.put_to.empty() || !ops.flag_from.empty()) {
    const std::size_t e = static_cast<std::size_t>(handle.episode_);
    const std::size_t p = ops_.size();
    // Puts complete at issue — nothing joins sends_, nothing retries:
    // the fire-and-forget sender never learns of a putdrop, so only
    // the receiver's flag wait below can stall.
    for (std::size_t dst : ops.put_to) {
      handle.ctx_->rma_put(
          dst, handle.rma_base_ + rma::word_index(e, stage, rank, stages_, p),
          rma::flag_value(e), stage);
    }
    handle.flags_.reserve(ops.flag_from.size());
    for (std::size_t src : ops.flag_from) {
      handle.flags_.push_back(ResilientEpisodeHandle::FlagOp{
          src, handle.rma_base_ + rma::word_index(e, stage, src, stages_, p)});
    }
  }
  handle.recvs_.clear();
  handle.recvs_.reserve(ops.recv_from.size());
  for (std::size_t src : ops.recv_from) {
    handle.recvs_.push_back(
        ResilientEpisodeHandle::RecvOp{src, handle.ctx_->irecv(src, tag)});
  }
  handle.attempt_ = 0;
  handle.budget_ = handle.options_.stage_deadline(stage);
  handle.consumed_ = Clock::duration::zero();
}

ScheduleExecutor::ResilientEpisodeHandle ScheduleExecutor::post_resilient(
    RankContext& ctx, const ResilienceOptions& options, StallReport& report,
    int episode) const {
  check_context(ctx);
  OPTIBAR_REQUIRE(report.per_rank.size() == ops_.size() &&
                      report.stages == stages_,
                  "StallReport not reset for this executor");
  ResilientEpisodeHandle handle;
  handle.ctx_ = &ctx;
  handle.report_ = &report;
  handle.options_ = options;
  handle.episode_ = episode;
  if (has_one_sided_) {
    handle.rma_base_ = rma_base(ctx, episode);
  }
  const FaultInjector* faults = ctx.communicator().fault_injector();
  handle.crash_at_ = faults != nullptr ? faults->crash_stage(ctx.rank())
                                       : FaultInjector::kNoCrash;
  begin_stage_resilient(handle, 0);
  return handle;
}

ScheduleExecutor::ResilientEpisodeHandle ScheduleExecutor::post_resilient(
    RankContext& ctx, StallReport& report, int episode) const {
  return post_resilient(ctx, options_.resilience, report, episode);
}

void ScheduleExecutor::progress_resilient(ResilientEpisodeHandle& handle,
                                          Clock::duration slice) const {
  const Clock::time_point slice_end = Clock::now() + slice;
  RankStall& mine = handle.report_->per_rank[handle.ctx_->rank()];
  while (!handle.done_ && !handle.failed_) {
    // Wait the stage's requests against min(slice left, budget left):
    // the deadline budget is charged by the time actually spent inside
    // progress, never by the compute a polling caller does in between.
    const Clock::time_point t0 = Clock::now();
    const Clock::duration remaining =
        std::max(Clock::duration::zero(), handle.budget_ - handle.consumed_);
    Clock::time_point deadline = t0 + remaining;
    if (deadline > slice_end) {
      deadline = std::max(slice_end, t0);
    }
    bool all_done = true;
    for (ResilientEpisodeHandle::SendOp& send : handle.sends_) {
      for (const Request& request : send.attempts) {
        send.done = send.done || request->wait_until(deadline);
      }
      all_done = all_done && send.done;
    }
    for (ResilientEpisodeHandle::RecvOp& recv : handle.recvs_) {
      if (!recv.done && recv.request->wait_until(deadline)) {
        recv.done = true;
        mine.delivered.push_back(
            SignalEdge{handle.stage_, recv.src, handle.ctx_->rank()});
      }
      all_done = all_done && recv.done;
    }
    if (!handle.flags_.empty()) {
      // One combined bounded park for the stage's outstanding flags,
      // then per-flag visible probes so a partial arrival (e.g. one
      // dropped put among several) marks what did land.
      std::vector<Communicator::FlagWait> waits;
      for (const ResilientEpisodeHandle::FlagOp& flag : handle.flags_) {
        if (!flag.done) {
          waits.push_back(Communicator::FlagWait{
              flag.word,
              rma::flag_value(static_cast<std::size_t>(handle.episode_))});
        }
      }
      if (!waits.empty()) {
        handle.ctx_->wait_stage_until({}, waits, deadline);
        for (ResilientEpisodeHandle::FlagOp& flag : handle.flags_) {
          if (!flag.done &&
              handle.ctx_->rma_test(
                  flag.word, rma::flag_value(
                                 static_cast<std::size_t>(handle.episode_)))) {
            flag.done = true;
            mine.delivered.push_back(
                SignalEdge{handle.stage_, flag.src, handle.ctx_->rank()});
          }
        }
      }
      for (const ResilientEpisodeHandle::FlagOp& flag : handle.flags_) {
        all_done = all_done && flag.done;
      }
    }
    handle.consumed_ += Clock::now() - t0;
    if (all_done) {
      begin_stage_resilient(handle, handle.stage_ + 1);
      if (Clock::now() >= slice_end) {
        return;
      }
      continue;
    }
    if (handle.consumed_ >= handle.budget_) {
      if (handle.attempt_ >= handle.options_.max_retries) {
        for (const ResilientEpisodeHandle::SendOp& send : handle.sends_) {
          if (!send.done) {
            mine.pending_send_to.push_back(send.dst);
          }
        }
        for (const ResilientEpisodeHandle::RecvOp& recv : handle.recvs_) {
          if (!recv.done) {
            mine.pending_recv_from.push_back(recv.src);
          }
        }
        for (const ResilientEpisodeHandle::FlagOp& flag : handle.flags_) {
          if (!flag.done) {
            mine.pending_put_from.push_back(flag.src);
          }
        }
        handle.failed_ = true;
        return;
      }
      // Resend every unacked synchronized send: a fresh message with a
      // fresh fault draw, so a lossy (not dead) link can still let it
      // through. Receives are not reposted — the original stays armed.
      const int tag = handle.episode_ * static_cast<int>(stages_) +
                      static_cast<int>(handle.stage_);
      for (ResilientEpisodeHandle::SendOp& send : handle.sends_) {
        if (!send.done) {
          send.attempts.push_back(handle.ctx_->issend(send.dst, tag));
        }
      }
      ++handle.attempt_;
      handle.budget_ = std::chrono::duration_cast<Clock::duration>(
          handle.budget_ * handle.options_.retry_backoff);
      handle.consumed_ = Clock::duration::zero();
    }
    if (Clock::now() >= slice_end) {
      return;
    }
  }
}

bool ScheduleExecutor::test(ResilientEpisodeHandle& handle) const {
  if (handle.done()) {
    return true;
  }
  OPTIBAR_REQUIRE(handle.ctx_ != nullptr, "test() on an empty handle");
  progress_resilient(handle, Clock::duration::zero());
  return handle.done();
}

bool ScheduleExecutor::wait(ResilientEpisodeHandle& handle) const {
  if (handle.done()) {
    return handle.succeeded();
  }
  OPTIBAR_REQUIRE(handle.ctx_ != nullptr, "wait() on an empty handle");
  while (!handle.done()) {
    progress_resilient(handle, options_.progress_slice);
  }
  return handle.succeeded();
}

bool ScheduleExecutor::execute_resilient(RankContext& ctx,
                                         const ResilienceOptions& options,
                                         StallReport& report,
                                         int episode) const {
  ResilientEpisodeHandle handle =
      post_resilient(ctx, options, report, episode);
  return wait(handle);
}

StallReport ScheduleExecutor::run_once_resilient(
    const ResilienceOptions& options, const FaultPlan& faults,
    LatencyModel latency) const {
  const std::size_t p = ops_.size();
  StallReport report;
  report.reset(p, stages_);
  Communicator comm(p, std::move(latency));
  if (!faults.empty()) {
    comm.set_fault_plan(faults);
  }
  run_episode(comm, [&](RankContext& ctx) {
    if (execute_resilient(ctx, options, report)) {
      report.per_rank[ctx.rank()].finished = true;
    }
  });
  report.finalize();
  return report;
}

std::vector<std::chrono::nanoseconds> ScheduleExecutor::run_once(
    LatencyModel latency,
    std::vector<std::chrono::nanoseconds> entry_delays) const {
  const std::size_t p = ops_.size();
  if (!entry_delays.empty()) {
    OPTIBAR_REQUIRE(entry_delays.size() == p, "entry_delays size mismatch");
  }
  std::vector<std::chrono::nanoseconds> exits(p);
  Communicator comm(p, std::move(latency));
  const Clock::time_point start = Clock::now();
  run_episode(comm, [&](RankContext& ctx) {
    const std::size_t r = ctx.rank();
    if (!entry_delays.empty() && entry_delays[r].count() > 0) {
      std::this_thread::sleep_for(entry_delays[r]);
    }
    execute(ctx);
    exits[r] = std::chrono::duration_cast<std::chrono::nanoseconds>(
        Clock::now() - start);
  });
  OPTIBAR_ASSERT(comm.unmatched_operations() == 0,
                 "barrier left unmatched operations on the communicator");
  return exits;
}

}  // namespace optibar::simmpi
