#include "simmpi/executor.hpp"

#include <thread>

#include "util/error.hpp"

namespace optibar::simmpi {

ScheduleExecutor::ScheduleExecutor(const Schedule& schedule)
    : stages_(schedule.stage_count()) {
  OPTIBAR_REQUIRE(schedule.is_barrier(),
                  "refusing to execute a signal pattern that is not a "
                  "barrier (Eq. 3 check failed)");
  const std::size_t p = schedule.ranks();
  ops_.assign(p, std::vector<StageOps>(stages_));
  for (std::size_t r = 0; r < p; ++r) {
    for (std::size_t s = 0; s < stages_; ++s) {
      ops_[r][s].send_to = schedule.targets_of(r, s);
      ops_[r][s].recv_from = schedule.sources_of(r, s);
    }
  }
}

void ScheduleExecutor::execute(RankContext& ctx, int episode) const {
  const std::size_t rank = ctx.rank();
  OPTIBAR_REQUIRE(rank < ops_.size(), "rank out of range for this executor");
  OPTIBAR_REQUIRE(ctx.size() == ops_.size(),
                  "communicator size " << ctx.size()
                                       << " != schedule rank count "
                                       << ops_.size());
  std::vector<Request> requests;
  for (std::size_t s = 0; s < stages_; ++s) {
    const StageOps& ops = ops_[rank][s];
    // Tag = (episode, stage) so repeated barrier calls cannot cross-match.
    const int tag =
        episode * static_cast<int>(stages_) + static_cast<int>(s);
    requests.clear();
    requests.reserve(ops.send_to.size() + ops.recv_from.size());
    for (std::size_t dst : ops.send_to) {
      requests.push_back(ctx.issend(dst, tag));
    }
    for (std::size_t src : ops.recv_from) {
      requests.push_back(ctx.irecv(src, tag));
    }
    RankContext::wait_all(requests);
  }
}

std::vector<std::chrono::nanoseconds> ScheduleExecutor::run_once(
    LatencyModel latency,
    std::vector<std::chrono::nanoseconds> entry_delays) const {
  const std::size_t p = ops_.size();
  if (!entry_delays.empty()) {
    OPTIBAR_REQUIRE(entry_delays.size() == p, "entry_delays size mismatch");
  }
  std::vector<std::chrono::nanoseconds> exits(p);
  Communicator comm(p, std::move(latency));
  const Clock::time_point start = Clock::now();
  run_ranks(comm, [&](RankContext& ctx) {
    const std::size_t r = ctx.rank();
    if (!entry_delays.empty() && entry_delays[r].count() > 0) {
      std::this_thread::sleep_for(entry_delays[r]);
    }
    execute(ctx);
    exits[r] = std::chrono::duration_cast<std::chrono::nanoseconds>(
        Clock::now() - start);
  });
  OPTIBAR_ASSERT(comm.unmatched_operations() == 0,
                 "barrier left unmatched operations on the communicator");
  return exits;
}

}  // namespace optibar::simmpi
