#include "simmpi/executor.hpp"

#include <thread>

#include "util/error.hpp"

namespace optibar::simmpi {

ScheduleExecutor::ScheduleExecutor(const Schedule& schedule,
                                   ExecutionMode mode)
    : stages_(schedule.stage_count()) {
  OPTIBAR_REQUIRE(schedule.is_barrier(),
                  "refusing to execute a signal pattern that is not a "
                  "barrier (Eq. 3 check failed)");
  const std::size_t p = schedule.ranks();
  ops_.assign(p, std::vector<StageOps>(stages_));
  for (std::size_t r = 0; r < p; ++r) {
    for (std::size_t s = 0; s < stages_; ++s) {
      ops_[r][s].send_to = schedule.targets_of(r, s);
      ops_[r][s].recv_from = schedule.sources_of(r, s);
    }
  }
  if (mode == ExecutionMode::kPersistentPool) {
    pool_ = std::make_unique<RankPool>(p);
  }
}

void ScheduleExecutor::run_episode(Communicator& comm,
                                   const RankFunction& fn) const {
  if (pool_ != nullptr) {
    run_ranks(*pool_, comm, fn);
  } else {
    run_ranks(comm, fn);
  }
}

void ScheduleExecutor::execute(RankContext& ctx, int episode) const {
  const std::size_t rank = ctx.rank();
  OPTIBAR_REQUIRE(rank < ops_.size(), "rank out of range for this executor");
  OPTIBAR_REQUIRE(ctx.size() == ops_.size(),
                  "communicator size " << ctx.size()
                                       << " != schedule rank count "
                                       << ops_.size());
  std::vector<Request> requests;
  for (std::size_t s = 0; s < stages_; ++s) {
    const StageOps& ops = ops_[rank][s];
    // Tag = (episode, stage) so repeated barrier calls cannot cross-match.
    const int tag =
        episode * static_cast<int>(stages_) + static_cast<int>(s);
    requests.clear();
    requests.reserve(ops.send_to.size() + ops.recv_from.size());
    for (std::size_t dst : ops.send_to) {
      requests.push_back(ctx.issend(dst, tag));
    }
    for (std::size_t src : ops.recv_from) {
      requests.push_back(ctx.irecv(src, tag));
    }
    // One shard-condvar park per wakeup instead of one condvar wait
    // per request.
    ctx.wait_all_batched(requests);
  }
}

bool ScheduleExecutor::execute_resilient(RankContext& ctx,
                                         const ResilienceOptions& options,
                                         StallReport& report,
                                         int episode) const {
  const std::size_t rank = ctx.rank();
  OPTIBAR_REQUIRE(rank < ops_.size(), "rank out of range for this executor");
  OPTIBAR_REQUIRE(ctx.size() == ops_.size(),
                  "communicator size " << ctx.size()
                                       << " != schedule rank count "
                                       << ops_.size());
  OPTIBAR_REQUIRE(report.per_rank.size() == ops_.size() &&
                      report.stages == stages_,
                  "StallReport not reset for this executor");
  RankStall& mine = report.per_rank[rank];
  const FaultInjector* faults = ctx.communicator().fault_injector();
  const std::size_t crash_at =
      faults != nullptr ? faults->crash_stage(rank) : FaultInjector::kNoCrash;

  // A send op may have several in-flight attempts (resends); it is
  // complete when any attempt matched.
  struct SendOp {
    std::size_t dst;
    std::vector<Request> attempts;
    bool done = false;
  };
  struct RecvOp {
    std::size_t src;
    Request request;
    bool done = false;
  };

  for (std::size_t s = 0; s < stages_; ++s) {
    mine.stage_reached = s;
    if (s >= crash_at) {
      mine.crashed = true;
      return false;
    }
    const StageOps& ops = ops_[rank][s];
    const int tag =
        episode * static_cast<int>(stages_) + static_cast<int>(s);
    std::vector<SendOp> sends;
    sends.reserve(ops.send_to.size());
    for (std::size_t dst : ops.send_to) {
      sends.push_back(SendOp{dst, {ctx.issend(dst, tag)}});
    }
    std::vector<RecvOp> recvs;
    recvs.reserve(ops.recv_from.size());
    for (std::size_t src : ops.recv_from) {
      recvs.push_back(RecvOp{src, ctx.irecv(src, tag)});
    }

    Clock::duration budget = options.stage_deadline(s);
    for (std::size_t attempt = 0;; ++attempt) {
      const Clock::time_point deadline = Clock::now() + budget;
      bool all_done = true;
      for (SendOp& send : sends) {
        for (const Request& request : send.attempts) {
          send.done = send.done || request->wait_until(deadline);
        }
        all_done = all_done && send.done;
      }
      for (RecvOp& recv : recvs) {
        if (!recv.done && recv.request->wait_until(deadline)) {
          recv.done = true;
          mine.delivered.push_back(SignalEdge{s, recv.src, rank});
        }
        all_done = all_done && recv.done;
      }
      if (all_done) {
        break;
      }
      if (attempt >= options.max_retries) {
        for (const SendOp& send : sends) {
          if (!send.done) {
            mine.pending_send_to.push_back(send.dst);
          }
        }
        for (const RecvOp& recv : recvs) {
          if (!recv.done) {
            mine.pending_recv_from.push_back(recv.src);
          }
        }
        return false;
      }
      // Resend every unacked synchronized send: a fresh message with a
      // fresh fault draw, so a lossy (not dead) link can still let it
      // through. Receives are not reposted — the original stays armed.
      for (SendOp& send : sends) {
        if (!send.done) {
          send.attempts.push_back(ctx.issend(send.dst, tag));
        }
      }
      budget = std::chrono::duration_cast<Clock::duration>(
          budget * options.retry_backoff);
    }
  }
  mine.stage_reached = stages_;
  return true;
}

StallReport ScheduleExecutor::run_once_resilient(
    const ResilienceOptions& options, const FaultPlan& faults,
    LatencyModel latency) const {
  const std::size_t p = ops_.size();
  StallReport report;
  report.reset(p, stages_);
  Communicator comm(p, std::move(latency));
  if (!faults.empty()) {
    comm.set_fault_plan(faults);
  }
  run_episode(comm, [&](RankContext& ctx) {
    if (execute_resilient(ctx, options, report)) {
      report.per_rank[ctx.rank()].finished = true;
    }
  });
  report.finalize();
  return report;
}

std::vector<std::chrono::nanoseconds> ScheduleExecutor::run_once(
    LatencyModel latency,
    std::vector<std::chrono::nanoseconds> entry_delays) const {
  const std::size_t p = ops_.size();
  if (!entry_delays.empty()) {
    OPTIBAR_REQUIRE(entry_delays.size() == p, "entry_delays size mismatch");
  }
  std::vector<std::chrono::nanoseconds> exits(p);
  Communicator comm(p, std::move(latency));
  const Clock::time_point start = Clock::now();
  run_episode(comm, [&](RankContext& ctx) {
    const std::size_t r = ctx.rank();
    if (!entry_delays.empty() && entry_delays[r].count() > 0) {
      std::this_thread::sleep_for(entry_delays[r]);
    }
    execute(ctx);
    exits[r] = std::chrono::duration_cast<std::chrono::nanoseconds>(
        Clock::now() - start);
  });
  OPTIBAR_ASSERT(comm.unmatched_operations() == 0,
                 "barrier left unmatched operations on the communicator");
  return exits;
}

}  // namespace optibar::simmpi
