// Rank-thread runtime.
//
// run_ranks spawns one thread per rank, gives each a RankContext bound to
// a shared Communicator, and joins them, propagating the first exception
// thrown by any rank. This is the in-process analogue of mpirun over the
// paper's affinity-pinned processes.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>

#include "simmpi/communicator.hpp"

namespace optibar::simmpi {

/// Per-rank view handed to the rank function: carries the rank id and
/// forwards to the shared communicator.
class RankContext {
 public:
  RankContext(Communicator& comm, std::size_t rank)
      : comm_(&comm), rank_(rank) {}

  std::size_t rank() const { return rank_; }
  std::size_t size() const { return comm_->size(); }

  Request issend(std::size_t dst, int tag) {
    return comm_->issend(rank_, dst, tag);
  }
  Request issend(std::size_t dst, int tag, Payload payload) {
    return comm_->issend(rank_, dst, tag, std::move(payload));
  }
  Request irecv(std::size_t src, int tag) {
    return comm_->irecv(src, rank_, tag);
  }
  Request irecv(std::size_t src, int tag, Payload* sink,
                std::shared_ptr<void> keepalive = nullptr) {
    return comm_->irecv(src, rank_, tag, sink, std::move(keepalive));
  }
  static void wait_all(std::span<const Request> requests) {
    Communicator::wait_all(requests);
  }

  Communicator& communicator() { return *comm_; }

 private:
  Communicator* comm_;
  std::size_t rank_;
};

using RankFunction = std::function<void(RankContext&)>;

/// Run `fn` once per rank on `comm.size()` threads. Blocks until all
/// ranks return; rethrows the first rank exception after joining all
/// threads (so no thread is leaked on failure).
void run_ranks(Communicator& comm, const RankFunction& fn);

/// Convenience: build a communicator of `ranks` ranks with the given
/// latency model and run `fn`.
void run_ranks(std::size_t ranks, const RankFunction& fn,
               LatencyModel latency = uniform_latency());

}  // namespace optibar::simmpi
