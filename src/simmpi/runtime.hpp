// Rank-thread runtime.
//
// run_ranks gives each rank a RankContext bound to a shared
// Communicator and runs the rank function once per rank, propagating
// the first exception thrown by any rank. Two execution vehicles share
// that contract:
//
//   run_ranks(comm, fn)        — spawn one thread per rank, join them
//                                (the in-process analogue of mpirun
//                                over the paper's affinity-pinned
//                                processes);
//   run_ranks(pool, comm, fn)  — dispatch one generation of a
//                                persistent RankPool (rank_pool.hpp),
//                                paying no thread creation per episode.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>

#include "simmpi/communicator.hpp"
#include "simmpi/rank_pool.hpp"

namespace optibar::simmpi {

/// Per-rank view handed to the rank function: carries the rank id and
/// forwards to the shared communicator.
class RankContext {
 public:
  RankContext(Communicator& comm, std::size_t rank)
      : comm_(&comm), rank_(rank) {}

  std::size_t rank() const { return rank_; }
  std::size_t size() const { return comm_->size(); }

  Request issend(std::size_t dst, int tag) {
    return comm_->issend(rank_, dst, tag);
  }
  Request issend(std::size_t dst, int tag, Payload payload) {
    return comm_->issend(rank_, dst, tag, std::move(payload));
  }
  Request irecv(std::size_t src, int tag) {
    return comm_->irecv(src, rank_, tag);
  }
  Request irecv(std::size_t src, int tag, Payload* sink,
                std::shared_ptr<void> keepalive = nullptr) {
    return comm_->irecv(src, rank_, tag, sink, std::move(keepalive));
  }
  static void wait_all(std::span<const Request> requests) {
    Communicator::wait_all(requests);
  }

  /// Batched wait for this rank's own requests: one park on the rank's
  /// shard condvar per wakeup instead of one condvar wait per request
  /// (Communicator::wait_all_on).
  void wait_all_batched(std::span<const Request> requests) const {
    comm_->wait_all_on(rank_, requests);
  }

  /// One bounded progress slice of the batched wait: park until all
  /// requests have matched or `deadline` passes
  /// (Communicator::wait_all_on_until). The nonblocking executors'
  /// wait(handle) loops this instead of blocking forever.
  bool wait_all_batched_until(std::span<const Request> requests,
                              Clock::time_point deadline) const {
    return comm_->wait_all_on_until(rank_, requests, deadline);
  }

  /// One-sided flag store into `dst`'s window (fire-and-forget;
  /// Communicator::rma_put). `stage` feeds fault-plan matching.
  void rma_put(std::size_t dst, std::size_t word, std::uint64_t value,
               std::size_t stage) {
    comm_->rma_put(rank_, dst, word, value, stage);
  }

  /// Nonblocking probe of this rank's own window word.
  bool rma_test(std::size_t word, std::uint64_t expected) const {
    return comm_->rma_test(rank_, word, expected);
  }

  /// Combined bounded wait of a mixed-transport stage: this rank's
  /// requests plus awaited flags in its own window
  /// (Communicator::wait_stage_on_until).
  bool wait_stage_until(std::span<const Request> requests,
                        std::span<const Communicator::FlagWait> flags,
                        Clock::time_point deadline) const {
    return comm_->wait_stage_on_until(rank_, requests, flags, deadline);
  }

  Communicator& communicator() { return *comm_; }

 private:
  Communicator* comm_;
  std::size_t rank_;
};

using RankFunction = std::function<void(RankContext&)>;

/// Run `fn` once per rank on `comm.size()` fresh threads. Blocks until
/// all ranks return; rethrows the first rank exception after joining
/// all threads (so no thread is leaked on failure).
void run_ranks(Communicator& comm, const RankFunction& fn);

/// Run `fn` once per rank as one generation of `pool` (no thread
/// creation). Requires pool.size() >= comm.size(); workers beyond the
/// communicator width stay parked. Same completion and exception
/// contract as the spawning overload.
void run_ranks(RankPool& pool, Communicator& comm, const RankFunction& fn);

/// Convenience: build a communicator of `ranks` ranks with the given
/// latency model and run `fn`.
void run_ranks(std::size_t ranks, const RankFunction& fn,
               LatencyModel latency = uniform_latency());

}  // namespace optibar::simmpi
