#include "simmpi/runtime.hpp"

#include <exception>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace optibar::simmpi {

void run_ranks(Communicator& comm, const RankFunction& fn) {
  OPTIBAR_REQUIRE(fn, "null rank function");
  const std::size_t p = comm.size();
  std::vector<std::thread> threads;
  threads.reserve(p);
  std::vector<std::exception_ptr> errors(p);

  for (std::size_t r = 0; r < p; ++r) {
    threads.emplace_back([&, r] {
      try {
        RankContext ctx(comm, r);
        fn(ctx);
      } catch (...) {
        errors[r] = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  for (const std::exception_ptr& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
}

void run_ranks(RankPool& pool, Communicator& comm, const RankFunction& fn) {
  OPTIBAR_REQUIRE(fn, "null rank function");
  OPTIBAR_REQUIRE(pool.size() >= comm.size(),
                  "rank pool width " << pool.size()
                                     << " smaller than communicator size "
                                     << comm.size());
  pool.run(comm.size(), [&](std::size_t r) {
    RankContext ctx(comm, r);
    fn(ctx);
  });
}

void run_ranks(std::size_t ranks, const RankFunction& fn,
               LatencyModel latency) {
  Communicator comm(ranks, std::move(latency));
  run_ranks(comm, fn);
}

}  // namespace optibar::simmpi
