#include "simmpi/resilience.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"
#include "util/matrix.hpp"

namespace optibar::simmpi {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

void or_into(BoolMatrix& a, const BoolMatrix& b) {
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      a(i, j) = a(i, j) || b(i, j);
    }
  }
}

void list_ranks(std::ostream& os, const std::vector<std::size_t>& ranks) {
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    os << (i == 0 ? "" : ",") << ranks[i];
  }
}

}  // namespace

Clock::duration ResilienceOptions::stage_deadline(std::size_t stage) const {
  Clock::duration deadline = deadline_floor;
  if (stage < predicted_stage_seconds.size()) {
    const double seconds =
        predicted_stage_seconds[stage] * slack * time_scale;
    deadline = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
  }
  return std::clamp(deadline, deadline_floor, deadline_ceiling);
}

bool StallReport::names_edge(std::size_t stage, std::size_t src,
                             std::size_t dst) const {
  return std::find(pending_edges.begin(), pending_edges.end(),
                   SignalEdge{stage, src, dst}) != pending_edges.end();
}

std::vector<std::pair<std::size_t, std::size_t>> StallReport::implicated_pairs()
    const {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  pairs.reserve(pending_edges.size());
  for (const SignalEdge& edge : pending_edges) {
    pairs.emplace_back(edge.src, edge.dst);
  }
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

void StallReport::reset(std::size_t rank_count, std::size_t stage_count) {
  ranks = rank_count;
  stages = stage_count;
  stalled = false;
  per_rank.assign(ranks, RankStall{});
  for (std::size_t r = 0; r < ranks; ++r) {
    per_rank[r].rank = r;
  }
  knowledge = BoolMatrix::identity(ranks);
  pending_edges.clear();
}

void StallReport::finalize() {
  OPTIBAR_ASSERT(per_rank.size() == ranks, "report not reset for this run");
  stalled = false;
  pending_edges.clear();
  for (RankStall& stall : per_rank) {
    stalled = stalled || !stall.finished;
    // Canonical order: a delivery can be detected one retry round late
    // under scheduler jitter, so the log's insertion order is not
    // reproducible — its contents are. Sorting makes equal runs
    // compare equal.
    std::sort(stall.delivered.begin(), stall.delivered.end());
    // Latest delivery by (stage, src) — a wall-clock-free definition of
    // "the peer last heard from", identical across reruns.
    stall.last_heard_from = kNone;
    SignalEdge latest{};
    for (const SignalEdge& edge : stall.delivered) {
      if (stall.last_heard_from == kNone || latest < edge) {
        latest = edge;
        stall.last_heard_from = edge.src;
      }
    }
    if (!stall.finished && !stall.crashed) {
      for (std::size_t dst : stall.pending_send_to) {
        pending_edges.push_back(SignalEdge{stall.stage_reached, stall.rank,
                                           dst});
      }
      for (std::size_t src : stall.pending_recv_from) {
        pending_edges.push_back(SignalEdge{stall.stage_reached, src,
                                           stall.rank});
      }
      for (std::size_t src : stall.pending_put_from) {
        pending_edges.push_back(SignalEdge{stall.stage_reached, src,
                                           stall.rank});
      }
    }
  }
  std::sort(pending_edges.begin(), pending_edges.end());
  pending_edges.erase(
      std::unique(pending_edges.begin(), pending_edges.end()),
      pending_edges.end());

  // Eq. 3 over what actually arrived: D_a collects the stage-a signals
  // whose receive completed (receiver-side log — delivery is the event
  // that propagates knowledge).
  knowledge = BoolMatrix::identity(ranks);
  for (std::size_t a = 0; a < stages; ++a) {
    BoolMatrix delivered_stage(ranks, ranks);
    for (const RankStall& stall : per_rank) {
      for (const SignalEdge& edge : stall.delivered) {
        if (edge.stage == a) {
          delivered_stage(edge.src, edge.dst) = 1;
        }
      }
    }
    or_into(knowledge, bool_multiply(knowledge, delivered_stage));
  }
}

std::string StallReport::describe() const {
  std::ostringstream os;
  std::size_t stuck = 0;
  for (const RankStall& stall : per_rank) {
    stuck += stall.finished ? 0 : 1;
  }
  if (!stalled) {
    os << "no stall: all " << ranks << " ranks completed " << stages
       << " stages\n";
    return os.str();
  }
  os << "stall report: " << stuck << "/" << ranks << " ranks stuck, "
     << pending_edges.size() << " signals pending\n";
  for (const RankStall& stall : per_rank) {
    if (stall.finished) {
      continue;
    }
    os << "  rank " << stall.rank;
    if (stall.crashed) {
      os << ": crashed entering stage " << stall.stage_reached;
    } else {
      os << ": stuck at stage " << stall.stage_reached;
      if (!stall.pending_recv_from.empty()) {
        os << ", no signal from rank ";
        list_ranks(os, stall.pending_recv_from);
      }
      if (!stall.pending_put_from.empty()) {
        os << ", no one-sided flag from rank ";
        list_ranks(os, stall.pending_put_from);
      }
      if (!stall.pending_send_to.empty()) {
        os << ", unacked send to rank ";
        list_ranks(os, stall.pending_send_to);
      }
    }
    if (stall.last_heard_from != kNone) {
      os << "; last heard from rank " << stall.last_heard_from;
    } else {
      os << "; never heard from any peer";
    }
    os << "\n";
  }
  for (const SignalEdge& edge : pending_edges) {
    os << "  lost signal: stage " << edge.stage << " " << edge.src << " -> "
       << edge.dst << "\n";
  }
  // Which arrival facts never propagated (Eq. 3 zero cells).
  std::size_t missing = 0;
  std::size_t example_src = 0;
  std::size_t example_dst = 0;
  for (std::size_t i = 0; i < knowledge.rows(); ++i) {
    for (std::size_t j = 0; j < knowledge.cols(); ++j) {
      if (!knowledge(i, j)) {
        if (missing == 0) {
          example_src = i;
          example_dst = j;
        }
        ++missing;
      }
    }
  }
  if (missing > 0) {
    os << "  knowledge: " << missing << "/"
       << knowledge.rows() * knowledge.cols()
       << " arrival facts never propagated (e.g. rank " << example_src
       << "'s arrival never reached rank " << example_dst << ")\n";
  }
  return os.str();
}

}  // namespace optibar::simmpi
