#include "simmpi/fault.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace optibar {

namespace {

constexpr std::size_t kAnyRank = ChannelFaultRule::kAnyRank;
constexpr int kAnyTag = ChannelFaultRule::kAnyTag;

// splitmix64 finalizer: the counter-based hash all decisions go
// through. Chaining mix(state ^ word) per input word gives a cheap,
// well-distributed, order-sensitive combiner.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Uniform draw in [0, 1) from the hash of the decision coordinates.
// `kind` separates drop/dup/delay streams, `rule` separates rules of
// the same kind, so adding a rule never perturbs another rule's draws.
double uniform01(std::uint64_t seed, std::uint64_t kind, std::uint64_t rule,
                 std::size_t src, std::size_t dst, int tag,
                 std::uint64_t seq) {
  std::uint64_t h = mix(seed);
  h = mix(h ^ kind);
  h = mix(h ^ rule);
  h = mix(h ^ static_cast<std::uint64_t>(src));
  h = mix(h ^ static_cast<std::uint64_t>(dst));
  h = mix(h ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(tag)));
  h = mix(h ^ seq);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string::size_type start = 0;
  while (start <= text.size()) {
    const auto end = text.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

std::uint64_t parse_u64(const std::string& text, const char* what) {
  OPTIBAR_REQUIRE(!text.empty() && text.find_first_not_of("0123456789") ==
                                       std::string::npos,
                  "fault spec: bad " << what << " '" << text << "'");
  try {
    return std::stoull(text);
  } catch (const std::exception&) {
    OPTIBAR_FAIL("fault spec: " << what << " '" << text << "' out of range");
  }
}

std::size_t parse_rank(const std::string& text, const char* what) {
  if (text == "*") {
    return kAnyRank;
  }
  return static_cast<std::size_t>(parse_u64(text, what));
}

int parse_tag(const std::string& text) {
  if (text == "*") {
    return kAnyTag;
  }
  const std::uint64_t v = parse_u64(text, "tag");
  OPTIBAR_REQUIRE(v <= 0x7fffffffull, "fault spec: tag " << v << " too large");
  return static_cast<int>(v);
}

double parse_number(const std::string& text, const char* what) {
  std::size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  OPTIBAR_REQUIRE(pos == text.size() && !text.empty(),
                  "fault spec: bad " << what << " '" << text << "'");
  return value;
}

// SRC>DST@TAG:PROB for drop/dup; delay rules append :SECONDS.
ChannelFaultRule parse_rule(const std::string& text, bool with_delay) {
  const auto gt = text.find('>');
  const auto at = text.find('@', gt == std::string::npos ? 0 : gt);
  OPTIBAR_REQUIRE(gt != std::string::npos && at != std::string::npos &&
                      gt < at,
                  "fault spec: rule '" << text
                                       << "' is not SRC>DST@TAG:PROB");
  ChannelFaultRule rule;
  rule.src = parse_rank(text.substr(0, gt), "source rank");
  rule.dst = parse_rank(text.substr(gt + 1, at - gt - 1), "destination rank");
  const std::vector<std::string> tail = split(text.substr(at + 1), ':');
  OPTIBAR_REQUIRE(tail.size() == (with_delay ? 3u : 2u),
                  "fault spec: rule '"
                      << text << "' needs "
                      << (with_delay ? "TAG:PROB:SECONDS" : "TAG:PROB"));
  rule.tag = parse_tag(tail[0]);
  rule.probability = parse_number(tail[1], "probability");
  OPTIBAR_REQUIRE(rule.probability >= 0.0 && rule.probability <= 1.0,
                  "fault spec: probability " << rule.probability
                                             << " outside [0, 1]");
  if (with_delay) {
    rule.delay_seconds = parse_number(tail[2], "delay seconds");
    OPTIBAR_REQUIRE(rule.delay_seconds >= 0.0,
                    "fault spec: negative delay " << rule.delay_seconds);
  }
  return rule;
}

CrashFault parse_crash(const std::string& text) {
  const auto at = text.find('@');
  OPTIBAR_REQUIRE(at != std::string::npos,
                  "fault spec: crash '" << text << "' is not RANK@STAGE");
  CrashFault crash;
  crash.rank = static_cast<std::size_t>(
      parse_u64(text.substr(0, at), "crash rank"));
  crash.stage = static_cast<std::size_t>(
      parse_u64(text.substr(at + 1), "crash stage"));
  return crash;
}

void format_rank(std::ostream& os, std::size_t rank) {
  if (rank == kAnyRank) {
    os << '*';
  } else {
    os << rank;
  }
}

void format_rule(std::ostream& os, const char* key,
                 const ChannelFaultRule& rule, bool with_delay) {
  os << key << '=';
  format_rank(os, rule.src);
  os << '>';
  format_rank(os, rule.dst);
  os << '@';
  if (rule.tag == kAnyTag) {
    os << '*';
  } else {
    os << rule.tag;
  }
  // max_digits10 so parse(spec()) reproduces the double bit for bit.
  os << ':' << std::setprecision(17) << rule.probability;
  if (with_delay) {
    os << ':' << std::setprecision(17) << rule.delay_seconds;
  }
}

}  // namespace

std::string FaultPlan::spec() const {
  std::ostringstream os;
  os << "seed=" << seed;
  for (const ChannelFaultRule& rule : drops) {
    os << ';';
    format_rule(os, "drop", rule, false);
  }
  for (const ChannelFaultRule& rule : duplicates) {
    os << ';';
    format_rule(os, "dup", rule, false);
  }
  for (const ChannelFaultRule& rule : delays) {
    os << ';';
    format_rule(os, "delay", rule, true);
  }
  for (const ChannelFaultRule& rule : putdrops) {
    os << ';';
    format_rule(os, "putdrop", rule, false);
  }
  for (const CrashFault& crash : crashes) {
    os << ";crash=" << crash.rank << '@' << crash.stage;
  }
  return os.str();
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& field : split(spec, ';')) {
    if (field.empty()) {
      continue;
    }
    const auto eq = field.find('=');
    OPTIBAR_REQUIRE(eq != std::string::npos,
                    "fault spec: field '" << field << "' has no '='");
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    if (key == "seed") {
      plan.seed = parse_u64(value, "seed");
    } else if (key == "drop") {
      plan.drops.push_back(parse_rule(value, false));
    } else if (key == "dup") {
      plan.duplicates.push_back(parse_rule(value, false));
    } else if (key == "delay") {
      plan.delays.push_back(parse_rule(value, true));
    } else if (key == "putdrop") {
      plan.putdrops.push_back(parse_rule(value, false));
    } else if (key == "crash") {
      plan.crashes.push_back(parse_crash(value));
    } else {
      OPTIBAR_FAIL("fault spec: unknown key '" << key << "'");
    }
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

FaultInjector::Decision FaultInjector::decide(std::size_t src,
                                              std::size_t dst, int tag,
                                              std::uint64_t seq) const {
  Decision decision;
  for (std::size_t i = 0; i < plan_.drops.size(); ++i) {
    const ChannelFaultRule& rule = plan_.drops[i];
    if (rule.matches(src, dst, tag) &&
        uniform01(plan_.seed, 1, i, src, dst, tag, seq) < rule.probability) {
      decision.drop = true;
      return decision;  // a dropped message cannot also duplicate/delay
    }
  }
  for (std::size_t i = 0; i < plan_.duplicates.size(); ++i) {
    const ChannelFaultRule& rule = plan_.duplicates[i];
    if (rule.matches(src, dst, tag) &&
        uniform01(plan_.seed, 2, i, src, dst, tag, seq) < rule.probability) {
      ++decision.duplicates;
    }
  }
  for (std::size_t i = 0; i < plan_.delays.size(); ++i) {
    const ChannelFaultRule& rule = plan_.delays[i];
    if (rule.matches(src, dst, tag) &&
        uniform01(plan_.seed, 3, i, src, dst, tag, seq) < rule.probability) {
      decision.delay_seconds += rule.delay_seconds;
    }
  }
  return decision;
}

bool FaultInjector::decide_put(std::size_t src, std::size_t dst,
                               std::size_t stage, std::uint64_t seq) const {
  // Puts carry no MPI tag; the rule's tag field addresses the stage.
  // kind 4 keeps the draws disjoint from drop(1)/dup(2)/delay(3).
  const int tag = static_cast<int>(stage);
  for (std::size_t i = 0; i < plan_.putdrops.size(); ++i) {
    const ChannelFaultRule& rule = plan_.putdrops[i];
    if (rule.matches(src, dst, tag) &&
        uniform01(plan_.seed, 4, i, src, dst, tag, seq) < rule.probability) {
      return true;
    }
  }
  return false;
}

std::size_t FaultInjector::crash_stage(std::size_t rank) const {
  std::size_t stage = kNoCrash;
  for (const CrashFault& crash : plan_.crashes) {
    if (crash.rank == rank) {
      stage = std::min(stage, crash.stage);
    }
  }
  return stage;
}

}  // namespace optibar
