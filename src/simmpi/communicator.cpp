#include "simmpi/communicator.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace optibar::simmpi {

Communicator::Communicator(std::size_t size, LatencyModel latency,
                           ByteLatencyModel byte_latency)
    : size_(size),
      latency_(std::move(latency)),
      byte_latency_(std::move(byte_latency)) {
  OPTIBAR_REQUIRE(size_ > 0, "communicator needs at least one rank");
  OPTIBAR_REQUIRE(latency_, "null latency model");
}

void Communicator::check_rank(std::size_t rank, const char* what) const {
  OPTIBAR_REQUIRE(rank < size_,
                  what << " rank " << rank << " out of range (size " << size_
                       << ")");
}

Clock::duration Communicator::delivery_delay(std::size_t src, std::size_t dst,
                                             std::size_t payload_words) const {
  Clock::duration delay = latency_(src, dst);
  if (byte_latency_ && payload_words > 0) {
    delay += byte_latency_(src, dst, payload_words * sizeof(std::uint64_t));
  }
  return delay;
}

Request Communicator::issend(std::size_t src, std::size_t dst, int tag) {
  return issend(src, dst, tag, Payload{});
}

Request Communicator::issend(std::size_t src, std::size_t dst, int tag,
                             Payload payload) {
  check_rank(src, "source");
  check_rank(dst, "destination");
  OPTIBAR_REQUIRE(src != dst, "issend to self (rank " << src << ")");

  auto request = std::make_shared<RequestState>();
  const Clock::time_point now = Clock::now();
  const Clock::time_point delivered =
      now + delivery_delay(src, dst, payload.size());

  std::lock_guard<std::mutex> lock(mutex_);
  Channel& channel = channels_[ChannelKey{src, dst, tag}];
  if (!channel.recvs.empty()) {
    // A receive is already waiting: match immediately. The receiver sees
    // the signal after the link delay; the sender's synchronized-send
    // completion also covers the delivery (round-trip halves, Section
    // IV-A symmetry assumption). The sink write is sequenced before
    // fulfil, which the receiver's wait() synchronizes with.
    PendingOp recv = std::move(channel.recvs.front());
    channel.recvs.pop_front();
    if (recv.sink != nullptr) {
      *recv.sink = std::move(payload);
    }
    recv.request->fulfil(delivered);
    request->fulfil(delivered);
  } else {
    channel.sends.push_back(PendingOp{request, now, std::move(payload)});
  }
  return request;
}

Request Communicator::irecv(std::size_t src, std::size_t dst, int tag) {
  return irecv(src, dst, tag, nullptr);
}

Request Communicator::irecv(std::size_t src, std::size_t dst, int tag,
                            Payload* sink) {
  check_rank(src, "source");
  check_rank(dst, "destination");
  OPTIBAR_REQUIRE(src != dst, "irecv from self (rank " << dst << ")");

  auto request = std::make_shared<RequestState>();
  const Clock::time_point now = Clock::now();

  std::lock_guard<std::mutex> lock(mutex_);
  Channel& channel = channels_[ChannelKey{src, dst, tag}];
  if (!channel.sends.empty()) {
    PendingOp send = std::move(channel.sends.front());
    channel.sends.pop_front();
    const Clock::time_point delivered =
        send.posted_at + delivery_delay(src, dst, send.payload.size());
    // Delivery is never before the receive is posted.
    const Clock::time_point visible = std::max(delivered, now);
    if (sink != nullptr) {
      *sink = std::move(send.payload);
    }
    send.request->fulfil(visible);
    request->fulfil(visible);
  } else {
    channel.recvs.push_back(PendingOp{request, now, Payload{}, sink});
  }
  return request;
}

void Communicator::wait_all(std::span<const Request> requests) {
  for (const Request& request : requests) {
    OPTIBAR_REQUIRE(request != nullptr, "null request in wait_all");
    request->wait();
  }
}

bool Communicator::wait_all_for(std::span<const Request> requests,
                                Clock::duration timeout) {
  const Clock::time_point deadline = Clock::now() + timeout;
  for (const Request& request : requests) {
    OPTIBAR_REQUIRE(request != nullptr, "null request in wait_all_for");
    const Clock::duration remaining = deadline - Clock::now();
    if (remaining <= Clock::duration::zero() ||
        !request->wait_for(remaining)) {
      return false;
    }
  }
  return true;
}

std::size_t Communicator::unmatched_operations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& [key, channel] : channels_) {
    n += channel.sends.size() + channel.recvs.size();
  }
  return n;
}

}  // namespace optibar::simmpi
