#include "simmpi/communicator.hpp"

#include <algorithm>
#include <thread>

#include "util/error.hpp"

namespace optibar::simmpi {

Communicator::Communicator(std::size_t size, LatencyModel latency,
                           ByteLatencyModel byte_latency, BoardMode board)
    : size_(size),
      latency_(std::move(latency)),
      byte_latency_(std::move(byte_latency)),
      board_(board) {
  OPTIBAR_REQUIRE(size_ > 0, "communicator needs at least one rank");
  OPTIBAR_REQUIRE(latency_, "null latency model");
  const std::size_t shard_count = board_ == BoardMode::kGlobal ? 1 : size_;
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  rma_words_.resize(size_);
}

void Communicator::check_rank(std::size_t rank, const char* what) const {
  OPTIBAR_REQUIRE(rank < size_,
                  what << " rank " << rank << " out of range (size " << size_
                       << ")");
}

Clock::duration Communicator::delivery_delay(std::size_t src, std::size_t dst,
                                             std::size_t payload_words) const {
  Clock::duration delay = latency_(src, dst);
  if (byte_latency_ && payload_words > 0) {
    delay += byte_latency_(src, dst, payload_words * sizeof(std::uint64_t));
  }
  return delay;
}

void Communicator::set_fault_plan(FaultPlan plan) {
  // Contract: called before any traffic. Rank threads observe the
  // injector through the happens-before edge of being spawned (or
  // dispatched by a RankPool generation) after this call.
  injector_ = std::make_unique<FaultInjector>(std::move(plan));
}

std::size_t Communicator::dropped_messages() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    n += shard->dropped;
  }
  return n;
}

void Communicator::notify_shard(std::size_t shard_index) const {
  Shard& shard = *shards_[shard_index];
  // Lock-release fence: a batched waiter that saw the request as
  // incomplete either still holds the shard mutex (we block until it
  // parks, atomically releasing it) or is already parked — either way
  // the notify below cannot be lost.
  { std::lock_guard<std::mutex> fence(shard.mutex); }
  shard.cv.notify_all();
}

Request Communicator::issend(std::size_t src, std::size_t dst, int tag) {
  return issend(src, dst, tag, Payload{});
}

bool Communicator::post_send(Channel& channel, PendingOp op, std::size_t src,
                             std::size_t dst) {
  const Clock::time_point delivered =
      op.posted_at + delivery_delay(src, dst, op.payload.size()) +
      op.fault_delay;
  if (!channel.recvs.empty()) {
    // A receive is already waiting: match immediately. The receiver sees
    // the signal after the link delay; the sender's synchronized-send
    // completion also covers the delivery (round-trip halves, Section
    // IV-A symmetry assumption). The sink write is sequenced before
    // fulfil, which the receiver's wait() synchronizes with.
    PendingOp recv = std::move(channel.recvs.front());
    channel.recvs.pop_front();
    const Clock::time_point visible = std::max(delivered, recv.posted_at);
    if (recv.sink != nullptr) {
      *recv.sink = std::move(op.payload);
    }
    recv.request->fulfil(visible);
    op.request->fulfil(visible);
    return true;
  }
  channel.sends.push_back(std::move(op));
  return false;
}

Request Communicator::issend(std::size_t src, std::size_t dst, int tag,
                             Payload payload) {
  check_rank(src, "source");
  check_rank(dst, "destination");
  OPTIBAR_REQUIRE(src != dst, "issend to self (rank " << src << ")");

  auto request = std::make_shared<RequestState>();
  const Clock::time_point now = Clock::now();

  const std::size_t shard_index = shard_of(dst);
  Shard& shard = *shards_[shard_index];
  bool matched = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    Channel& channel = shard.channels[ChannelKey{src, dst, tag}];
    FaultInjector::Decision fault;
    if (injector_ != nullptr) {
      fault = injector_->decide(src, dst, tag, channel.next_send_seq++);
    }
    if (fault.drop) {
      // The message is lost in the network: it never matches a receive,
      // so the synchronized send never completes. The caller's bounded
      // wait (not this call) is what turns that into a stall report.
      ++shard.dropped;
      return request;
    }
    const Clock::duration fault_delay = std::chrono::duration_cast<
        Clock::duration>(std::chrono::duration<double>(fault.delay_seconds));
    for (std::size_t d = 0; d < fault.duplicates; ++d) {
      // Ghost copy behind the original: same payload, its own request
      // nobody waits on. It sits in the channel exactly like a stray
      // duplicate delivered by a flaky link — a later receive on the
      // same channel would consume it.
      channel.sends.push_back(PendingOp{std::make_shared<RequestState>(), now,
                                        payload, nullptr, fault_delay, {}});
    }
    PendingOp op{request, now, std::move(payload), nullptr, fault_delay, {}};
    if (fault.duplicates > 0 && channel.recvs.empty()) {
      // Keep FIFO order: the original goes ahead of its ghosts so the
      // receiver's single matching recv binds the real send.
      channel.sends.push_front(std::move(op));
    } else {
      matched = post_send(channel, std::move(op), src, dst);
    }
  }
  if (matched) {
    // Wake batched waiters: the receiver parks on dst's shard, the
    // sender on its own. Both notifies run after the shard lock above
    // is released, so no two shard mutexes are ever held at once.
    notify_shard(shard_index);
    if (shard_of(src) != shard_index) {
      notify_shard(shard_of(src));
    }
  }
  return request;
}

Request Communicator::irecv(std::size_t src, std::size_t dst, int tag) {
  return irecv(src, dst, tag, nullptr);
}

Request Communicator::irecv(std::size_t src, std::size_t dst, int tag,
                            Payload* sink,
                            std::shared_ptr<void> keepalive) {
  check_rank(src, "source");
  check_rank(dst, "destination");
  OPTIBAR_REQUIRE(src != dst, "irecv from self (rank " << dst << ")");

  auto request = std::make_shared<RequestState>();
  const Clock::time_point now = Clock::now();

  const std::size_t shard_index = shard_of(dst);
  Shard& shard = *shards_[shard_index];
  bool matched = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    Channel& channel = shard.channels[ChannelKey{src, dst, tag}];
    if (!channel.sends.empty()) {
      PendingOp send = std::move(channel.sends.front());
      channel.sends.pop_front();
      const Clock::time_point delivered =
          send.posted_at + delivery_delay(src, dst, send.payload.size()) +
          send.fault_delay;
      // Delivery is never before the receive is posted.
      const Clock::time_point visible = std::max(delivered, now);
      if (sink != nullptr) {
        *sink = std::move(send.payload);
      }
      send.request->fulfil(visible);
      request->fulfil(visible);
      matched = true;
    } else {
      channel.recvs.push_back(PendingOp{request, now, Payload{}, sink,
                                        Clock::duration{},
                                        std::move(keepalive)});
    }
  }
  if (matched) {
    notify_shard(shard_index);
    if (shard_of(src) != shard_index) {
      notify_shard(shard_of(src));
    }
  }
  return request;
}

void Communicator::wait_all(std::span<const Request> requests) {
  for (const Request& request : requests) {
    OPTIBAR_REQUIRE(request != nullptr, "null request in wait_all");
    request->wait();
  }
}

void Communicator::wait_all_on(std::size_t waiter,
                               std::span<const Request> requests) const {
  check_rank(waiter, "waiter");
  for (const Request& request : requests) {
    OPTIBAR_REQUIRE(request != nullptr, "null request in wait_all_on");
  }
  Shard& shard = *shards_[shard_of(waiter)];
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    shard.cv.wait(lock, [&] {
      return std::all_of(requests.begin(), requests.end(),
                         [](const Request& r) { return r->finished(); });
    });
  }
  // Everything matched; the per-request waits below only sleep out the
  // simulated delivery latency (ready_at), never block on a condvar.
  for (const Request& request : requests) {
    request->wait();
  }
}

bool Communicator::wait_all_on_until(std::size_t waiter,
                                     std::span<const Request> requests,
                                     Clock::time_point deadline) const {
  check_rank(waiter, "waiter");
  for (const Request& request : requests) {
    OPTIBAR_REQUIRE(request != nullptr, "null request in wait_all_on_until");
  }
  Shard& shard = *shards_[shard_of(waiter)];
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    const bool all = shard.cv.wait_until(lock, deadline, [&] {
      return std::all_of(requests.begin(), requests.end(),
                         [](const Request& r) { return r->finished(); });
    });
    if (!all) {
      return false;
    }
  }
  // Everything matched within the slice; sleeping out ready_at may run
  // past the deadline — delivery latency is simulated time the episode
  // must pay regardless of how the wait is sliced.
  for (const Request& request : requests) {
    request->wait();
  }
  return true;
}

bool Communicator::wait_all_for(std::span<const Request> requests,
                                Clock::duration timeout) {
  // One absolute deadline shared by every request. Requests already
  // complete succeed even with a zero (or exhausted) budget — the old
  // per-request remaining-time computation declared timeout before
  // looking at them.
  const Clock::time_point deadline = Clock::now() + timeout;
  bool all = true;
  for (const Request& request : requests) {
    OPTIBAR_REQUIRE(request != nullptr, "null request in wait_all_for");
    all = request->wait_until(deadline) && all;
  }
  return all;
}

std::size_t Communicator::dropped_puts() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    n += shard->dropped_puts;
  }
  return n;
}

void Communicator::check_rma_word(std::size_t rank, std::size_t word,
                                  const char* what) const {
  check_rank(rank, what);
  // rma_capacity_ only grows, and any word index a caller can hold came
  // from an rma_allocate that returned after the growth — reading it
  // under rma_mutex_ is enough for a sanity gate.
  std::lock_guard<std::mutex> lock(rma_mutex_);
  OPTIBAR_REQUIRE(word < rma_capacity_,
                  "RMA word " << word << " out of range (window has "
                              << rma_capacity_ << " words)");
}

std::size_t Communicator::rma_allocate(std::size_t words) {
  OPTIBAR_REQUIRE(words > 0, "rma_allocate of zero words");
  // Hold rma_mutex_ across the whole growth so concurrent allocations
  // serialize and every rank's array reaches the new capacity before
  // the base index escapes. Lock order: rma_mutex_ then one shard
  // mutex at a time (RMA data ops take only shard mutexes, so no
  // reverse order exists).
  std::lock_guard<std::mutex> lock(rma_mutex_);
  const std::size_t base = rma_capacity_;
  rma_capacity_ += words;
  for (std::size_t r = 0; r < size_; ++r) {
    std::lock_guard<std::mutex> shard_lock(shards_[shard_of(r)]->mutex);
    rma_words_[r].resize(rma_capacity_);
  }
  return base;
}

std::size_t Communicator::rma_region(std::uintptr_t key, std::size_t words) {
  {
    std::lock_guard<std::mutex> lock(rma_mutex_);
    const auto it = rma_regions_.find(key);
    if (it != rma_regions_.end()) {
      OPTIBAR_REQUIRE(rma_region_words_[key] == words,
                      "rma_region key reused with size "
                          << words << " (was " << rma_region_words_[key]
                          << ")");
      return it->second;
    }
  }
  // Allocate outside the memo lock (rma_allocate retakes rma_mutex_);
  // racing allocators for the same key are resolved first-wins below.
  const std::size_t base = rma_allocate(words);
  std::lock_guard<std::mutex> lock(rma_mutex_);
  const auto [it, inserted] = rma_regions_.try_emplace(key, base);
  if (inserted) {
    rma_region_words_[key] = words;
  }
  return it->second;
}

std::size_t Communicator::rma_words() const {
  std::lock_guard<std::mutex> lock(rma_mutex_);
  return rma_capacity_;
}

void Communicator::rma_put(std::size_t src, std::size_t dst, std::size_t word,
                           std::uint64_t value, std::size_t stage) {
  check_rma_word(dst, word, "put destination");
  check_rank(src, "put source");
  OPTIBAR_REQUIRE(src != dst, "rma_put to self (rank " << src << ")");
  const Clock::time_point now = Clock::now();
  const std::size_t shard_index = shard_of(dst);
  Shard& shard = *shards_[shard_index];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (injector_ != nullptr) {
      const std::uint64_t seq = shard.put_seq[PutKey{src, dst, stage}]++;
      if (injector_->decide_put(src, dst, stage, seq)) {
        // The write is lost on the wire. The sender already completed
        // locally (fire-and-forget), so only the receiver — whose flag
        // stays unset — can observe the fault, via its bounded wait.
        ++shard.dropped_puts;
        return;
      }
    }
    RmaWord& w = rma_words_[dst][word];
    w.value = value;  // last put wins
    w.visible_at = now + delivery_delay(src, dst, 0);
  }
  // Wake a receiver parked on its shard condvar awaiting this flag.
  notify_shard(shard_index);
}

std::uint64_t Communicator::rma_fetch_add(std::size_t caller, std::size_t dst,
                                          std::size_t word,
                                          std::uint64_t delta) {
  check_rma_word(dst, word, "fetch_add destination");
  check_rank(caller, "fetch_add caller");
  const Clock::time_point now = Clock::now();
  const Clock::duration one_way =
      caller == dst ? Clock::duration{} : delivery_delay(caller, dst, 0);
  std::uint64_t old = 0;
  const std::size_t shard_index = shard_of(dst);
  {
    std::lock_guard<std::mutex> lock(shards_[shard_index]->mutex);
    RmaWord& w = rma_words_[dst][word];
    old = w.value;
    w.value = old + delta;
    w.visible_at = std::max(w.visible_at, now + one_way);
  }
  notify_shard(shard_index);
  // Round trip: the caller blocks until the result travels back.
  const Clock::time_point done = now + one_way + one_way;
  if (done > Clock::now()) {
    std::this_thread::sleep_until(done);
  }
  return old;
}

std::uint64_t Communicator::rma_compare_and_swap(std::size_t caller,
                                                 std::size_t dst,
                                                 std::size_t word,
                                                 std::uint64_t expected,
                                                 std::uint64_t desired) {
  check_rma_word(dst, word, "compare_and_swap destination");
  check_rank(caller, "compare_and_swap caller");
  const Clock::time_point now = Clock::now();
  const Clock::duration one_way =
      caller == dst ? Clock::duration{} : delivery_delay(caller, dst, 0);
  std::uint64_t old = 0;
  const std::size_t shard_index = shard_of(dst);
  {
    std::lock_guard<std::mutex> lock(shards_[shard_index]->mutex);
    RmaWord& w = rma_words_[dst][word];
    old = w.value;
    if (old == expected) {
      w.value = desired;
      w.visible_at = std::max(w.visible_at, now + one_way);
    }
  }
  notify_shard(shard_index);
  const Clock::time_point done = now + one_way + one_way;
  if (done > Clock::now()) {
    std::this_thread::sleep_until(done);
  }
  return old;
}

std::uint64_t Communicator::rma_read(std::size_t rank,
                                     std::size_t word) const {
  check_rma_word(rank, word, "read");
  std::lock_guard<std::mutex> lock(shards_[shard_of(rank)]->mutex);
  return rma_words_[rank][word].value;
}

bool Communicator::rma_test(std::size_t rank, std::size_t word,
                            std::uint64_t expected) const {
  check_rma_word(rank, word, "test");
  std::lock_guard<std::mutex> lock(shards_[shard_of(rank)]->mutex);
  const RmaWord& w = rma_words_[rank][word];
  return w.value == expected && w.visible_at <= Clock::now();
}

bool Communicator::rma_wait_until(std::size_t waiter,
                                  std::span<const FlagWait> flags,
                                  Clock::time_point deadline) const {
  return wait_stage_on_until(waiter, {}, flags, deadline);
}

bool Communicator::wait_stage_on_until(std::size_t waiter,
                                       std::span<const Request> requests,
                                       std::span<const FlagWait> flags,
                                       Clock::time_point deadline) const {
  check_rank(waiter, "waiter");
  for (const Request& request : requests) {
    OPTIBAR_REQUIRE(request != nullptr, "null request in wait_stage_on_until");
  }
  Shard& shard = *shards_[shard_of(waiter)];
  Clock::time_point flags_visible{};
  {
    std::unique_lock<std::mutex> lock(shard.mutex);
    // Flags live in the waiter's own window, i.e. in exactly the shard
    // whose mutex we hold and whose condvar every put to this rank
    // notifies — the same single-shard park wait_all_on_until uses.
    const std::vector<RmaWord>& words = rma_words_[waiter];
    for (const FlagWait& f : flags) {
      OPTIBAR_REQUIRE(f.word < words.size(),
                      "flag word " << f.word << " out of range");
    }
    const auto arrived = [&] {
      return std::all_of(requests.begin(), requests.end(),
                         [](const Request& r) { return r->finished(); }) &&
             std::all_of(flags.begin(), flags.end(), [&](const FlagWait& f) {
               return words[f.word].value == f.expected;
             });
    };
    if (!shard.cv.wait_until(lock, deadline, arrived)) {
      return false;
    }
    for (const FlagWait& f : flags) {
      flags_visible = std::max(flags_visible, words[f.word].visible_at);
    }
  }
  // Everything matched/arrived within the slice; sleep out the
  // simulated delivery latencies (may run past the deadline — latency
  // is simulated time the episode pays regardless of slicing).
  for (const Request& request : requests) {
    request->wait();
  }
  if (flags_visible > Clock::now()) {
    std::this_thread::sleep_until(flags_visible);
  }
  return true;
}

std::size_t Communicator::unmatched_operations() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [key, channel] : shard->channels) {
      n += channel.sends.size() + channel.recvs.size();
    }
  }
  return n;
}

}  // namespace optibar::simmpi
