// The simmpi communicator: matching engine for point-to-point signals.
//
// Exposes the minimal MPI subset the paper's barrier interpreter needs:
//   issend(dst, tag)  — nonblocking synchronized zero-byte send; the
//                       returned request completes only once the
//                       matching receive is posted (MPI_Issend, i.e.
//                       "local completion is an indication that both
//                       processes have been involved", Section III)
//   irecv(src, tag)   — nonblocking receive from a specific source
//   wait_all          — block until a set of requests completes
//
// Barrier signals carry no payload; the collective layer's messages
// carry a vector of 64-bit words. Both go through the same channels:
// the payload overloads of issend/irecv move the words from the
// sender's buffer into the receiver's sink at match time (under the
// shard mutex, sequenced before the requests are fulfilled, so the
// receiver's wait() return happens-after the sink write).
//
// The message board is *sharded by destination rank*: every channel
// (src, dst, tag) lives in the shard of its destination, each shard has
// its own mutex and condition variable, and an operation only ever
// locks the shard where its messages meet. An all-to-all stage at P
// ranks therefore contends on P independent locks instead of one
// global one. Matching stays per-channel FIFO, and every fault
// decision is a counter-based hash of the per-channel send sequence
// number (a single sending rank per channel makes that number
// thread-interleaving independent), so sharding cannot change drop /
// duplicate / delay outcomes — only where the lock lives.
// BoardMode::kGlobal collapses the board back to one shard, preserving
// the seed's single-mutex behaviour for benchmarking and parity tests.
//
// One-sided RMA board: alongside the message channels, every rank owns
// a flat array of 64-bit *flag words* other ranks write directly —
// the simmpi analogue of an MPI_Win. A word at rank r lives in
// shard_of(r), guarded by that shard's mutex like r's channels, so
// window traffic and two-sided traffic share one lock discipline and
// one condition variable per destination. rma_put is fire-and-forget
// (the sender completes locally and never learns the outcome;
// MPI_Put), while rma_fetch_add / rma_compare_and_swap are round-trip
// atomics that sleep the caller for both link traversals. Puts carry
// the same matched-vs-visible split as requests: the value is
// *arrived* the moment the call stores it (wait predicates see it),
// but *visible* only after the simulated delivery latency (rma_test
// honours it; waits sleep it out before returning). Put drops come
// from the fault plan's putdrop rules, hashed on a per-(src, dst,
// stage) put sequence number — deterministic because a single rank
// thread issues all puts of one channel in program order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <tuple>
#include <vector>

#include "simmpi/fault.hpp"
#include "simmpi/latency_model.hpp"
#include "simmpi/request.hpp"

namespace optibar::simmpi {

/// Message payload: a vector of 64-bit words (the collective layer's
/// element type). Empty for pure signals.
using Payload = std::vector<std::uint64_t>;

/// Optional per-byte delivery cost: extra delay of a message of `bytes`
/// payload bytes from src to dst — the runtime counterpart of the
/// profile's G matrix. Null means payload size does not affect timing.
using ByteLatencyModel =
    std::function<Clock::duration(std::size_t src, std::size_t dst,
                                  std::size_t bytes)>;

/// Board sharding policy. kSharded (the default) gives every
/// destination rank its own mailbox lock; kGlobal keeps the seed's
/// one-mutex board and exists for contention benchmarks and
/// sharded-vs-global parity tests — observable behaviour is identical.
enum class BoardMode { kSharded, kGlobal };

class Communicator {
 public:
  explicit Communicator(std::size_t size,
                        LatencyModel latency = uniform_latency(),
                        ByteLatencyModel byte_latency = nullptr,
                        BoardMode board = BoardMode::kSharded);

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  std::size_t size() const { return size_; }
  BoardMode board_mode() const { return board_; }

  /// Attach a fault plan: subsequent sends are subject to its drop /
  /// duplicate / delay rules (crash rules are interpreted by the
  /// executors, which know about stages). Call before any traffic —
  /// the per-channel sequence numbers that make decisions reproducible
  /// start counting at attach time, and publication to rank threads
  /// rides on the happens-before edge of spawning (or unparking) them.
  void set_fault_plan(FaultPlan plan);

  /// The attached injector, or nullptr when running fault-free.
  const FaultInjector* fault_injector() const { return injector_.get(); }

  /// Signals the fault plan has swallowed so far, summed over shards.
  std::size_t dropped_messages() const;

  /// One-sided puts the fault plan has swallowed so far (counted
  /// separately from dropped_messages — a dropped put has no send
  /// request and stalls only the receiver).
  std::size_t dropped_puts() const;

  /// Post a synchronized send of a zero-byte signal src -> dst.
  Request issend(std::size_t src, std::size_t dst, int tag);

  /// Post a synchronized send carrying `payload` (moved in); delivery
  /// is delayed by the byte-latency model, if any.
  Request issend(std::size_t src, std::size_t dst, int tag, Payload payload);

  /// Post a receive at dst for a signal from src.
  Request irecv(std::size_t src, std::size_t dst, int tag);

  /// Post a receive whose matching send's payload is moved into
  /// `*sink`. The write to `*sink` happens-before the returned
  /// request's wait() returns; `sink` must outlive the request.
  /// `keepalive` (optional) is held by the pending receive until it
  /// matches or the communicator dies — pass the owner of `*sink` when
  /// the receive may outlive the caller's frame (bounded-wait mode
  /// gives up on receives that a late sender can still match).
  Request irecv(std::size_t src, std::size_t dst, int tag, Payload* sink,
                std::shared_ptr<void> keepalive = nullptr);

  /// Wait for every request (order-independent), one request at a time.
  static void wait_all(std::span<const Request> requests);

  /// Batched wait for rank `waiter`: sleeps on the waiter's shard
  /// condition variable and re-scans the whole request set once per
  /// wakeup, instead of blocking on each request's own condvar in
  /// turn. Every match notifies both the destination shard (where the
  /// receiver waits) and the sender's shard, so a rank parked here is
  /// woken by completions of its receives *and* of its sends to other
  /// shards. All requests must belong to operations posted by
  /// `waiter`; like wait_all, this blocks forever on a dropped send.
  void wait_all_on(std::size_t waiter, std::span<const Request> requests) const;

  /// One bounded progress slice of wait_all_on: park on the waiter's
  /// shard condvar until every request has *matched* or `deadline`
  /// passes. Returns false on the deadline with requests still
  /// unmatched — the caller re-slices (or gives up). On true, the
  /// simulated delivery latency (ready_at) of every request has been
  /// slept out, exactly like wait_all_on — so a loop of slices is
  /// observably identical to one unbounded park, which is what makes
  /// wait(post()) bit-identical to the blocking execute().
  bool wait_all_on_until(std::size_t waiter,
                         std::span<const Request> requests,
                         Clock::time_point deadline) const;

  /// Bounded wait over a request set: true when all completed within
  /// the budget (checked jointly, not per request). On false, some
  /// requests may still be pending — the caller decides whether to keep
  /// waiting or declare the peer dead.
  static bool wait_all_for(std::span<const Request> requests,
                           Clock::duration timeout);

  /// Number of posted-but-unmatched operations (diagnostics; a correct
  /// barrier execution ends with zero).
  std::size_t unmatched_operations() const;

  // ---- One-sided RMA board (see the header comment) ----

  /// One awaited flag word in the waiting rank's own window: satisfied
  /// once the word holds exactly `expected`.
  struct FlagWait {
    std::size_t word = 0;
    std::uint64_t expected = 0;
  };

  /// Grow every rank's window by `words` zero-initialised flag words;
  /// returns the base index of the new region (same index at every
  /// rank, like a symmetric MPI_Win_allocate).
  std::size_t rma_allocate(std::size_t words);

  /// Memoized rma_allocate: the first call with `key` allocates
  /// `words`, later calls return the same base (and require the same
  /// size). Lets independently-constructed executors over one
  /// communicator share a window region.
  std::size_t rma_region(std::uintptr_t key, std::size_t words);

  /// Words allocated so far per rank.
  std::size_t rma_words() const;

  /// Fire-and-forget remote store of `value` into `dst`'s window at
  /// `word` (last put wins). Completes locally at once — the sender
  /// never learns whether it was delivered or dropped by a putdrop
  /// rule. `stage` feeds the fault plan's rule matching. The value
  /// becomes visible at `dst` after the one-way delivery delay.
  void rma_put(std::size_t src, std::size_t dst, std::size_t word,
               std::uint64_t value, std::size_t stage = 0);

  /// Remote atomic fetch-and-add on `dst`'s window word; returns the
  /// previous value. Round-trip: the caller sleeps out both link
  /// traversals before the old value is returned. Never dropped
  /// (atomics are acknowledged; only fire-and-forget puts race the
  /// fault plan).
  std::uint64_t rma_fetch_add(std::size_t caller, std::size_t dst,
                              std::size_t word, std::uint64_t delta);

  /// Remote atomic compare-and-swap on `dst`'s window word: stores
  /// `desired` iff the word holds `expected`; returns the previous
  /// value either way. Round-trip like rma_fetch_add.
  std::uint64_t rma_compare_and_swap(std::size_t caller, std::size_t dst,
                                     std::size_t word, std::uint64_t expected,
                                     std::uint64_t desired);

  /// Last *arrived* value of `rank`'s window word, ignoring delivery
  /// latency (diagnostics; rank-local polls should use rma_test).
  std::uint64_t rma_read(std::size_t rank, std::size_t word) const;

  /// Nonblocking visible-value probe: true once `rank`'s window word
  /// holds `expected` *and* the write's delivery latency has elapsed
  /// (the RequestState::test analogue for flags).
  bool rma_test(std::size_t rank, std::size_t word,
                std::uint64_t expected) const;

  /// Bounded park on `waiter`'s shard condvar until every flag in
  /// `waiter`'s own window has arrived, or `deadline` passes (false —
  /// some flag never written, e.g. a dropped put). On true the
  /// delivery latency of the latest flag has been slept out, mirroring
  /// wait_all_on_until's matched-then-sleep contract.
  bool rma_wait_until(std::size_t waiter, std::span<const FlagWait> flags,
                      Clock::time_point deadline) const;

  /// Combined bounded wait of one mixed-transport stage: park on
  /// `waiter`'s shard condvar until every request has matched *and*
  /// every flag has arrived, or `deadline` passes. On true, both the
  /// requests' ready_at times and the flags' visibility times have
  /// been slept out — a loop of slices is observably identical to one
  /// unbounded wait, which keeps handle-based execution bit-compatible
  /// with blocking execution on mixed stages.
  bool wait_stage_on_until(std::size_t waiter,
                           std::span<const Request> requests,
                           std::span<const FlagWait> flags,
                           Clock::time_point deadline) const;

 private:
  struct PendingOp {
    Request request;
    Clock::time_point posted_at;
    Payload payload;         ///< pending send: words in flight
    Payload* sink = nullptr; ///< pending recv: where to deliver them
    Clock::duration fault_delay{};  ///< delay-spike time of a pending send
    std::shared_ptr<void> keepalive;  ///< keeps *sink alive while pending
  };

  using ChannelKey = std::tuple<std::size_t, std::size_t, int>;

  struct Channel {
    std::deque<PendingOp> sends;
    std::deque<PendingOp> recvs;
    std::uint64_t next_send_seq = 0;  ///< feeds the fault injector
  };

  /// One window flag word. `value` is the last *arrived* write (wait
  /// predicates read it under the shard mutex); `visible_at` is when
  /// that write's simulated delivery latency elapses (rma_test and the
  /// post-park sleep honour it) — the flag twin of RequestState's
  /// complete / ready_at split.
  struct RmaWord {
    std::uint64_t value = 0;
    Clock::time_point visible_at{};
  };

  /// Put-sequence key (src, dst, stage): feeds the fault injector's
  /// counter-based hash, one counter per put channel.
  using PutKey = std::tuple<std::size_t, std::size_t, std::size_t>;

  /// One destination mailbox: the channels whose messages terminate at
  /// this rank, their unmatched lists, and the condvar batched waiters
  /// park on. `dropped` is per-shard and aggregated on read.
  struct Shard {
    mutable std::mutex mutex;
    mutable std::condition_variable cv;
    std::map<ChannelKey, Channel> channels;
    std::size_t dropped = 0;       ///< guarded by mutex
    std::size_t dropped_puts = 0;  ///< guarded by mutex
    std::map<PutKey, std::uint64_t> put_seq;  ///< guarded by mutex
  };

  std::size_t shard_of(std::size_t dst) const {
    return board_ == BoardMode::kGlobal ? 0 : dst;
  }

  void check_rank(std::size_t rank, const char* what) const;

  Clock::duration delivery_delay(std::size_t src, std::size_t dst,
                                 std::size_t payload_words) const;

  // Match a send against a waiting receive or enqueue it; caller holds
  // the dst shard's mutex. `op.request` may be a ghost nobody waits on
  // (duplicates). Returns true when a match fulfilled requests (the
  // caller then notifies the waiter shards after unlocking).
  bool post_send(Channel& channel, PendingOp op, std::size_t src,
                 std::size_t dst);

  // Acquire-release the shard's mutex, then notify its condvar: the
  // fence closes the missed-wakeup window against a batched waiter
  // that checked its predicate but has not yet parked. Never called
  // while holding another shard's mutex (src->dst and dst->src cycles
  // would deadlock).
  void notify_shard(std::size_t shard_index) const;

  void check_rma_word(std::size_t rank, std::size_t word, const char* what)
      const;

  std::size_t size_;
  LatencyModel latency_;
  ByteLatencyModel byte_latency_;
  BoardMode board_;
  std::unique_ptr<FaultInjector> injector_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // RMA board storage. rma_mutex_ guards the bump pointer and the
  // region memo; each rank's word array is read/written only under its
  // shard's mutex (rma_allocate takes rma_mutex_ first, then each
  // shard mutex in turn — never the reverse order, so no cycle).
  mutable std::mutex rma_mutex_;
  std::size_t rma_capacity_ = 0;                   ///< guarded by rma_mutex_
  std::map<std::uintptr_t, std::size_t> rma_regions_;  ///< key -> base
  std::map<std::uintptr_t, std::size_t> rma_region_words_;  ///< key -> size
  /// rma_words_[rank][word], guarded by shards_[shard_of(rank)]->mutex.
  std::vector<std::vector<RmaWord>> rma_words_;
};

}  // namespace optibar::simmpi
