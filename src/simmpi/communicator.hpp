// The simmpi communicator: matching engine for point-to-point signals.
//
// Exposes the minimal MPI subset the paper's barrier interpreter needs:
//   issend(dst, tag)  — nonblocking synchronized zero-byte send; the
//                       returned request completes only once the
//                       matching receive is posted (MPI_Issend, i.e.
//                       "local completion is an indication that both
//                       processes have been involved", Section III)
//   irecv(src, tag)   — nonblocking receive from a specific source
//   wait_all          — block until a set of requests completes
//
// Barrier signals carry no payload; the collective layer's messages
// carry a vector of 64-bit words. Both go through the same channels:
// the payload overloads of issend/irecv move the words from the
// sender's buffer into the receiver's sink at match time (under the
// shard mutex, sequenced before the requests are fulfilled, so the
// receiver's wait() return happens-after the sink write).
//
// The message board is *sharded by destination rank*: every channel
// (src, dst, tag) lives in the shard of its destination, each shard has
// its own mutex and condition variable, and an operation only ever
// locks the shard where its messages meet. An all-to-all stage at P
// ranks therefore contends on P independent locks instead of one
// global one. Matching stays per-channel FIFO, and every fault
// decision is a counter-based hash of the per-channel send sequence
// number (a single sending rank per channel makes that number
// thread-interleaving independent), so sharding cannot change drop /
// duplicate / delay outcomes — only where the lock lives.
// BoardMode::kGlobal collapses the board back to one shard, preserving
// the seed's single-mutex behaviour for benchmarking and parity tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <tuple>
#include <vector>

#include "simmpi/fault.hpp"
#include "simmpi/latency_model.hpp"
#include "simmpi/request.hpp"

namespace optibar::simmpi {

/// Message payload: a vector of 64-bit words (the collective layer's
/// element type). Empty for pure signals.
using Payload = std::vector<std::uint64_t>;

/// Optional per-byte delivery cost: extra delay of a message of `bytes`
/// payload bytes from src to dst — the runtime counterpart of the
/// profile's G matrix. Null means payload size does not affect timing.
using ByteLatencyModel =
    std::function<Clock::duration(std::size_t src, std::size_t dst,
                                  std::size_t bytes)>;

/// Board sharding policy. kSharded (the default) gives every
/// destination rank its own mailbox lock; kGlobal keeps the seed's
/// one-mutex board and exists for contention benchmarks and
/// sharded-vs-global parity tests — observable behaviour is identical.
enum class BoardMode { kSharded, kGlobal };

class Communicator {
 public:
  explicit Communicator(std::size_t size,
                        LatencyModel latency = uniform_latency(),
                        ByteLatencyModel byte_latency = nullptr,
                        BoardMode board = BoardMode::kSharded);

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  std::size_t size() const { return size_; }
  BoardMode board_mode() const { return board_; }

  /// Attach a fault plan: subsequent sends are subject to its drop /
  /// duplicate / delay rules (crash rules are interpreted by the
  /// executors, which know about stages). Call before any traffic —
  /// the per-channel sequence numbers that make decisions reproducible
  /// start counting at attach time, and publication to rank threads
  /// rides on the happens-before edge of spawning (or unparking) them.
  void set_fault_plan(FaultPlan plan);

  /// The attached injector, or nullptr when running fault-free.
  const FaultInjector* fault_injector() const { return injector_.get(); }

  /// Signals the fault plan has swallowed so far, summed over shards.
  std::size_t dropped_messages() const;

  /// Post a synchronized send of a zero-byte signal src -> dst.
  Request issend(std::size_t src, std::size_t dst, int tag);

  /// Post a synchronized send carrying `payload` (moved in); delivery
  /// is delayed by the byte-latency model, if any.
  Request issend(std::size_t src, std::size_t dst, int tag, Payload payload);

  /// Post a receive at dst for a signal from src.
  Request irecv(std::size_t src, std::size_t dst, int tag);

  /// Post a receive whose matching send's payload is moved into
  /// `*sink`. The write to `*sink` happens-before the returned
  /// request's wait() returns; `sink` must outlive the request.
  /// `keepalive` (optional) is held by the pending receive until it
  /// matches or the communicator dies — pass the owner of `*sink` when
  /// the receive may outlive the caller's frame (bounded-wait mode
  /// gives up on receives that a late sender can still match).
  Request irecv(std::size_t src, std::size_t dst, int tag, Payload* sink,
                std::shared_ptr<void> keepalive = nullptr);

  /// Wait for every request (order-independent), one request at a time.
  static void wait_all(std::span<const Request> requests);

  /// Batched wait for rank `waiter`: sleeps on the waiter's shard
  /// condition variable and re-scans the whole request set once per
  /// wakeup, instead of blocking on each request's own condvar in
  /// turn. Every match notifies both the destination shard (where the
  /// receiver waits) and the sender's shard, so a rank parked here is
  /// woken by completions of its receives *and* of its sends to other
  /// shards. All requests must belong to operations posted by
  /// `waiter`; like wait_all, this blocks forever on a dropped send.
  void wait_all_on(std::size_t waiter, std::span<const Request> requests) const;

  /// One bounded progress slice of wait_all_on: park on the waiter's
  /// shard condvar until every request has *matched* or `deadline`
  /// passes. Returns false on the deadline with requests still
  /// unmatched — the caller re-slices (or gives up). On true, the
  /// simulated delivery latency (ready_at) of every request has been
  /// slept out, exactly like wait_all_on — so a loop of slices is
  /// observably identical to one unbounded park, which is what makes
  /// wait(post()) bit-identical to the blocking execute().
  bool wait_all_on_until(std::size_t waiter,
                         std::span<const Request> requests,
                         Clock::time_point deadline) const;

  /// Bounded wait over a request set: true when all completed within
  /// the budget (checked jointly, not per request). On false, some
  /// requests may still be pending — the caller decides whether to keep
  /// waiting or declare the peer dead.
  static bool wait_all_for(std::span<const Request> requests,
                           Clock::duration timeout);

  /// Number of posted-but-unmatched operations (diagnostics; a correct
  /// barrier execution ends with zero).
  std::size_t unmatched_operations() const;

 private:
  struct PendingOp {
    Request request;
    Clock::time_point posted_at;
    Payload payload;         ///< pending send: words in flight
    Payload* sink = nullptr; ///< pending recv: where to deliver them
    Clock::duration fault_delay{};  ///< delay-spike time of a pending send
    std::shared_ptr<void> keepalive;  ///< keeps *sink alive while pending
  };

  using ChannelKey = std::tuple<std::size_t, std::size_t, int>;

  struct Channel {
    std::deque<PendingOp> sends;
    std::deque<PendingOp> recvs;
    std::uint64_t next_send_seq = 0;  ///< feeds the fault injector
  };

  /// One destination mailbox: the channels whose messages terminate at
  /// this rank, their unmatched lists, and the condvar batched waiters
  /// park on. `dropped` is per-shard and aggregated on read.
  struct Shard {
    mutable std::mutex mutex;
    mutable std::condition_variable cv;
    std::map<ChannelKey, Channel> channels;
    std::size_t dropped = 0;  ///< guarded by mutex
  };

  std::size_t shard_of(std::size_t dst) const {
    return board_ == BoardMode::kGlobal ? 0 : dst;
  }

  void check_rank(std::size_t rank, const char* what) const;

  Clock::duration delivery_delay(std::size_t src, std::size_t dst,
                                 std::size_t payload_words) const;

  // Match a send against a waiting receive or enqueue it; caller holds
  // the dst shard's mutex. `op.request` may be a ghost nobody waits on
  // (duplicates). Returns true when a match fulfilled requests (the
  // caller then notifies the waiter shards after unlocking).
  bool post_send(Channel& channel, PendingOp op, std::size_t src,
                 std::size_t dst);

  // Acquire-release the shard's mutex, then notify its condvar: the
  // fence closes the missed-wakeup window against a batched waiter
  // that checked its predicate but has not yet parked. Never called
  // while holding another shard's mutex (src->dst and dst->src cycles
  // would deadlock).
  void notify_shard(std::size_t shard_index) const;

  std::size_t size_;
  LatencyModel latency_;
  ByteLatencyModel byte_latency_;
  BoardMode board_;
  std::unique_ptr<FaultInjector> injector_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace optibar::simmpi
