// The simmpi communicator: matching engine for point-to-point signals.
//
// Exposes the minimal MPI subset the paper's barrier interpreter needs:
//   issend(dst, tag)  — nonblocking synchronized zero-byte send; the
//                       returned request completes only once the
//                       matching receive is posted (MPI_Issend, i.e.
//                       "local completion is an indication that both
//                       processes have been involved", Section III)
//   irecv(src, tag)   — nonblocking receive from a specific source
//   wait_all          — block until a set of requests completes
//
// Barrier signals carry no payload; the collective layer's messages
// carry a vector of 64-bit words. Both go through the same channels:
// the payload overloads of issend/irecv move the words from the
// sender's buffer into the receiver's sink at match time (under the
// board mutex, sequenced before the requests are fulfilled, so the
// receiver's wait() return happens-after the sink write). Matching is
// per (src, dst, tag) channel in FIFO order, under one board mutex —
// adequate for the rank counts of in-process tests, and the injected
// LatencyModel (not lock contention) dominates simulated behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <tuple>
#include <vector>

#include "simmpi/fault.hpp"
#include "simmpi/latency_model.hpp"
#include "simmpi/request.hpp"

namespace optibar::simmpi {

/// Message payload: a vector of 64-bit words (the collective layer's
/// element type). Empty for pure signals.
using Payload = std::vector<std::uint64_t>;

/// Optional per-byte delivery cost: extra delay of a message of `bytes`
/// payload bytes from src to dst — the runtime counterpart of the
/// profile's G matrix. Null means payload size does not affect timing.
using ByteLatencyModel =
    std::function<Clock::duration(std::size_t src, std::size_t dst,
                                  std::size_t bytes)>;

class Communicator {
 public:
  explicit Communicator(std::size_t size,
                        LatencyModel latency = uniform_latency(),
                        ByteLatencyModel byte_latency = nullptr);

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  std::size_t size() const { return size_; }

  /// Attach a fault plan: subsequent sends are subject to its drop /
  /// duplicate / delay rules (crash rules are interpreted by the
  /// executors, which know about stages). Call before any traffic —
  /// the per-channel sequence numbers that make decisions reproducible
  /// start counting at attach time.
  void set_fault_plan(FaultPlan plan);

  /// The attached injector, or nullptr when running fault-free.
  const FaultInjector* fault_injector() const { return injector_.get(); }

  /// Signals the fault plan has swallowed so far.
  std::size_t dropped_messages() const;

  /// Post a synchronized send of a zero-byte signal src -> dst.
  Request issend(std::size_t src, std::size_t dst, int tag);

  /// Post a synchronized send carrying `payload` (moved in); delivery
  /// is delayed by the byte-latency model, if any.
  Request issend(std::size_t src, std::size_t dst, int tag, Payload payload);

  /// Post a receive at dst for a signal from src.
  Request irecv(std::size_t src, std::size_t dst, int tag);

  /// Post a receive whose matching send's payload is moved into
  /// `*sink`. The write to `*sink` happens-before the returned
  /// request's wait() returns; `sink` must outlive the request.
  /// `keepalive` (optional) is held by the pending receive until it
  /// matches or the communicator dies — pass the owner of `*sink` when
  /// the receive may outlive the caller's frame (bounded-wait mode
  /// gives up on receives that a late sender can still match).
  Request irecv(std::size_t src, std::size_t dst, int tag, Payload* sink,
                std::shared_ptr<void> keepalive = nullptr);

  /// Wait for every request (order-independent).
  static void wait_all(std::span<const Request> requests);

  /// Bounded wait over a request set: true when all completed within
  /// the budget (checked jointly, not per request). On false, some
  /// requests may still be pending — the caller decides whether to keep
  /// waiting or declare the peer dead.
  static bool wait_all_for(std::span<const Request> requests,
                           Clock::duration timeout);

  /// Number of posted-but-unmatched operations (diagnostics; a correct
  /// barrier execution ends with zero).
  std::size_t unmatched_operations() const;

 private:
  struct PendingOp {
    Request request;
    Clock::time_point posted_at;
    Payload payload;         ///< pending send: words in flight
    Payload* sink = nullptr; ///< pending recv: where to deliver them
    Clock::duration fault_delay{};  ///< delay-spike time of a pending send
    std::shared_ptr<void> keepalive;  ///< keeps *sink alive while pending
  };

  using ChannelKey = std::tuple<std::size_t, std::size_t, int>;

  struct Channel {
    std::deque<PendingOp> sends;
    std::deque<PendingOp> recvs;
    std::uint64_t next_send_seq = 0;  ///< feeds the fault injector
  };

  void check_rank(std::size_t rank, const char* what) const;

  Clock::duration delivery_delay(std::size_t src, std::size_t dst,
                                 std::size_t payload_words) const;

  // Match a send against a waiting receive or enqueue it; caller holds
  // mutex_. `op.request` may be a ghost nobody waits on (duplicates).
  void post_send(Channel& channel, PendingOp op, std::size_t src,
                 std::size_t dst);

  std::size_t size_;
  LatencyModel latency_;
  ByteLatencyModel byte_latency_;
  std::unique_ptr<FaultInjector> injector_;
  mutable std::mutex mutex_;
  std::map<ChannelKey, Channel> channels_;
  std::size_t dropped_ = 0;  ///< guarded by mutex_
};

}  // namespace optibar::simmpi
