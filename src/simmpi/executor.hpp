// The general matrix-barrier interpreter (Section VI).
//
// "The program used to validate the model employs a general simulator
//  for matrix encodings of barriers, storing the tested barrier in a
//  structure with a stage count, as well as the sequence of incidence
//  matrices, and an array of MPI requests to match the signal pattern of
//  each stage. Execution amounts to each participating process looping
//  over the required number of stages, issuing nonblocking, synchronized
//  signals according to the dependencies of the stage (with MPI_Issend),
//  and awaiting completion of all issued requests."
//
// ScheduleExecutor is exactly that structure: per rank it precomputes the
// send/recv lists of every stage from the incidence matrices, then
// execute() walks the stages with issend/irecv/wait_all. Stage indices
// are encoded in tags so repeated barrier invocations cannot cross-match.
#pragma once

#include <chrono>
#include <cstddef>
#include <memory>
#include <vector>

#include "barrier/schedule.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/resilience.hpp"
#include "simmpi/runtime.hpp"

namespace optibar::simmpi {

class ScheduleExecutor {
 public:
  /// Precompute per-rank op lists. The schedule must be a valid barrier
  /// (checked: executing a non-barrier would not synchronize, and some
  /// non-barriers deadlock the synchronized sends). With
  /// ExecutionMode::kPersistentPool the executor owns a RankPool of
  /// ranks() parked workers and run_once/run_once_resilient dispatch
  /// generations instead of spawning threads — the mode for callers
  /// that execute episodes in a loop. Episodes then serialize on the
  /// pool; results are identical either way.
  explicit ScheduleExecutor(
      const Schedule& schedule,
      ExecutionMode mode = ExecutionMode::kSpawnPerEpisode);

  std::size_t ranks() const { return ops_.size(); }
  std::size_t stage_count() const { return stages_; }

  /// Execute one barrier episode for `rank`. `episode` distinguishes
  /// repeated invocations in the tag space.
  void execute(RankContext& ctx, int episode = 0) const;

  /// Run one full barrier across all ranks of a fresh communicator.
  /// Each rank optionally sleeps for its entry delay first (the paper's
  /// delay-injection synchronization check); returns each rank's
  /// wall-clock exit time relative to the common start.
  std::vector<std::chrono::nanoseconds> run_once(
      LatencyModel latency = uniform_latency(),
      std::vector<std::chrono::nanoseconds> entry_delays = {}) const;

  /// Bounded-wait episode for `rank` (see resilience.hpp): per-stage
  /// deadlines, bounded resends of unacked Issends, crash faults
  /// honoured. Returns true when every stage completed; on false the
  /// rank's row of `report` records where and on whom it gave up.
  /// `report` must have been reset(ranks(), stage_count()) by the
  /// caller; each rank writes only its own row, so concurrent rank
  /// threads may share one report.
  bool execute_resilient(RankContext& ctx, const ResilienceOptions& options,
                         StallReport& report, int episode = 0) const;

  /// Run one bounded-wait barrier across all ranks of a fresh
  /// communicator with `faults` attached, and return the finalized
  /// StallReport. Never hangs and never leaks rank threads: every rank
  /// either completes or reports.
  StallReport run_once_resilient(const ResilienceOptions& options,
                                 const FaultPlan& faults = {},
                                 LatencyModel latency =
                                     uniform_latency()) const;

 private:
  struct StageOps {
    std::vector<std::size_t> send_to;
    std::vector<std::size_t> recv_from;
  };

  // Spawn threads or dispatch a pool generation, per the construction
  // mode.
  void run_episode(Communicator& comm, const RankFunction& fn) const;

  std::size_t stages_ = 0;
  std::vector<std::vector<StageOps>> ops_;  ///< ops_[rank][stage]
  std::unique_ptr<RankPool> pool_;  ///< kPersistentPool only
};

}  // namespace optibar::simmpi
