// The general matrix-barrier interpreter (Section VI).
//
// "The program used to validate the model employs a general simulator
//  for matrix encodings of barriers, storing the tested barrier in a
//  structure with a stage count, as well as the sequence of incidence
//  matrices, and an array of MPI requests to match the signal pattern of
//  each stage. Execution amounts to each participating process looping
//  over the required number of stages, issuing nonblocking, synchronized
//  signals according to the dependencies of the stage (with MPI_Issend),
//  and awaiting completion of all issued requests."
//
// ScheduleExecutor is exactly that structure: per rank it precomputes the
// send/recv lists of every stage from the incidence matrices. Stage
// indices are encoded in tags so repeated barrier invocations cannot
// cross-match.
//
// Execution is handle-based (the MPI_Ibarrier lifecycle):
//
//   EpisodeHandle h = exec.post(ctx);   // post stage 0, return at once
//   while (!exec.test(h)) { compute();} // poll, overlap compute
//   // or: exec.wait(h);                // finish in bounded slices
//
// post() issues the first stage's operations and returns immediately;
// test() is a nonblocking probe that advances the episode through every
// stage whose requests have all completed; wait() drives the episode to
// completion by parking on the rank's shard condvar in bounded
// *progress slices* (ExecutorOptions::progress_slice) instead of one
// unbounded wait_all_on park. Each slice preserves the shard/notify
// contract of the sharded board — the progress engine is just a sliced
// consumer of the same condvar — so wait(post()) is observably
// identical (bit-identical op order, tags, and matching) to the
// blocking execute(), which is now literally implemented as
// wait(post()).
//
// Mixed transports: edges the schedule tags one-sided
// (Schedule::transport) are executed as RMA puts into the receiver's
// window on the communicator's flag board instead of issend/irecv
// pairs — the sender's put completes locally at issue, and the
// receiver awaits the flag word (src/rma/layout.hpp slot layout,
// double-buffered so back-to-back episodes need no reset barrier)
// alongside its two-sided requests in the same progress slices. An
// untagged schedule takes exactly the old code paths and touches no
// window state.
#pragma once

#include <chrono>
#include <cstddef>
#include <memory>
#include <vector>

#include "barrier/schedule.hpp"
#include "simmpi/executor_options.hpp"
#include "simmpi/fault.hpp"
#include "simmpi/resilience.hpp"
#include "simmpi/runtime.hpp"

namespace optibar::simmpi {

class ScheduleExecutor {
 public:
  /// One in-flight barrier episode of one rank. Move-only: the handle
  /// owns the current stage's requests. Obtain from post(), advance
  /// with test()/wait() on the executor that created it.
  class EpisodeHandle {
   public:
    EpisodeHandle() = default;
    EpisodeHandle(EpisodeHandle&&) = default;
    EpisodeHandle& operator=(EpisodeHandle&&) = default;
    EpisodeHandle(const EpisodeHandle&) = delete;
    EpisodeHandle& operator=(const EpisodeHandle&) = delete;

    /// True once every stage completed (the episode left the barrier).
    bool done() const { return done_; }

   private:
    friend class ScheduleExecutor;
    RankContext* ctx_ = nullptr;
    int episode_ = 0;
    std::size_t stage_ = 0;            ///< stage whose ops are in flight
    std::vector<Request> requests_;    ///< current stage's requests
    /// Awaited one-sided flags of the current stage (empty on pure
    /// two-sided schedules).
    std::vector<Communicator::FlagWait> flags_;
    std::size_t rma_base_ = 0;  ///< this executor's window region base
    bool done_ = false;
  };

  /// One in-flight bounded-wait episode. Deadlines are charged by
  /// *elapsed progress time*: only the time actually spent inside
  /// test()/wait() counts against the stage budget, so a rank that
  /// computes between polls does not burn its deadline while the
  /// network is never even looked at. Driven by the blocking
  /// wait(handle), progress time equals wall time and the behaviour of
  /// the old execute_resilient is preserved.
  class ResilientEpisodeHandle {
   public:
    ResilientEpisodeHandle() = default;
    ResilientEpisodeHandle(ResilientEpisodeHandle&&) = default;
    ResilientEpisodeHandle& operator=(ResilientEpisodeHandle&&) = default;
    ResilientEpisodeHandle(const ResilientEpisodeHandle&) = delete;
    ResilientEpisodeHandle& operator=(const ResilientEpisodeHandle&) = delete;

    /// True once the episode reached a terminal state (completed,
    /// crashed, or gave up).
    bool done() const { return done_ || failed_; }
    /// True when the episode completed every stage.
    bool succeeded() const { return done_; }
    /// True when the episode crashed or exhausted its retries; the
    /// rank's row of the report records where and on whom.
    bool stalled() const { return failed_; }

   private:
    friend class ScheduleExecutor;
    /// A send op may have several in-flight attempts (resends); it is
    /// complete when any attempt matched.
    struct SendOp {
      std::size_t dst;
      std::vector<Request> attempts;
      bool done = false;
    };
    struct RecvOp {
      std::size_t src;
      Request request;
      bool done = false;
    };
    /// An awaited one-sided flag. Unlike a SendOp there is nothing to
    /// retry: the *sender* completed at issue and never learns of a
    /// drop, so on exhaustion the receiver reports pending_put_from.
    struct FlagOp {
      std::size_t src;
      std::size_t word;
      bool done = false;
    };

    RankContext* ctx_ = nullptr;
    StallReport* report_ = nullptr;  ///< caller-owned, must outlive handle
    ResilienceOptions options_;
    int episode_ = 0;
    std::size_t crash_at_ = 0;
    std::size_t stage_ = 0;
    std::vector<SendOp> sends_;
    std::vector<RecvOp> recvs_;
    std::vector<FlagOp> flags_;
    std::size_t rma_base_ = 0;
    std::size_t attempt_ = 0;
    Clock::duration budget_{};    ///< current attempt's deadline budget
    Clock::duration consumed_{};  ///< progress time charged so far
    bool done_ = false;
    bool failed_ = false;
  };

  /// Precompute per-rank op lists. The schedule must be a valid barrier
  /// (checked: executing a non-barrier would not synchronize, and some
  /// non-barriers deadlock the synchronized sends). options.validate()
  /// runs here, like EngineOptions at the engine boundary. With
  /// ExecutionMode::kPersistentPool (and no shared_pool) the executor
  /// owns a RankPool of ranks() parked workers and
  /// run_once/run_once_resilient dispatch generations instead of
  /// spawning threads; with options.shared_pool set, generations
  /// dispatch on the caller's pool instead.
  explicit ScheduleExecutor(const Schedule& schedule,
                            const ExecutorOptions& options = {});

  /// Deprecated: use ScheduleExecutor(schedule, ExecutorOptions{.mode =
  /// mode}). Thin forward kept for source compatibility.
  [[deprecated("pass ExecutorOptions instead of a bare ExecutionMode")]]
  ScheduleExecutor(const Schedule& schedule, ExecutionMode mode);

  std::size_t ranks() const { return ops_.size(); }
  std::size_t stage_count() const { return stages_; }
  const ExecutorOptions& options() const { return options_; }

  /// Post one barrier episode for this rank: issue stage 0's operations
  /// and return without waiting. `episode` distinguishes repeated
  /// invocations in the tag space.
  EpisodeHandle post(RankContext& ctx, int episode = 0) const;

  /// Nonblocking probe: advance the episode through every stage whose
  /// requests have all completed (posting the next stage's operations
  /// as each one finishes), and return whether the episode is done.
  /// The MPI_Test analogue — call between compute blocks to overlap.
  bool test(EpisodeHandle& handle) const;

  /// Drive the episode to completion in bounded progress slices
  /// (options().progress_slice per park). Equivalent to looping test(),
  /// but parks on the rank's shard condvar between probes instead of
  /// spinning.
  void wait(EpisodeHandle& handle) const;

  /// Execute one barrier episode for `rank`: exactly wait(post(ctx,
  /// episode)). Kept as the convenience blocking form.
  void execute(RankContext& ctx, int episode = 0) const;

  /// Run one full barrier across all ranks of a fresh communicator.
  /// Each rank optionally sleeps for its entry delay first (the paper's
  /// delay-injection synchronization check); returns each rank's
  /// wall-clock exit time relative to the common start.
  std::vector<std::chrono::nanoseconds> run_once(
      LatencyModel latency = uniform_latency(),
      std::vector<std::chrono::nanoseconds> entry_delays = {}) const;

  /// Post one bounded-wait episode (see resilience.hpp): per-stage
  /// deadlines, bounded resends of unacked Issends, crash faults
  /// honoured. `report` must have been reset(ranks(), stage_count()) by
  /// the caller and outlive the handle; each rank writes only its own
  /// row, so concurrent rank threads may share one report.
  ResilientEpisodeHandle post_resilient(RankContext& ctx,
                                        const ResilienceOptions& options,
                                        StallReport& report,
                                        int episode = 0) const;

  /// As above with the executor's own options().resilience knobs.
  ResilientEpisodeHandle post_resilient(RankContext& ctx, StallReport& report,
                                        int episode = 0) const;

  /// Nonblocking probe of a resilient episode: one zero-width progress
  /// slice. Only the time spent inside the call is charged against the
  /// stage deadline. Returns handle.done().
  bool test(ResilientEpisodeHandle& handle) const;

  /// Drive a resilient episode to a terminal state in bounded progress
  /// slices; returns true when every stage completed, false when the
  /// rank crashed or gave up (the report records where).
  bool wait(ResilientEpisodeHandle& handle) const;

  /// Blocking bounded-wait episode: exactly
  /// wait(post_resilient(ctx, options, report, episode)).
  bool execute_resilient(RankContext& ctx, const ResilienceOptions& options,
                         StallReport& report, int episode = 0) const;

  /// Run one bounded-wait barrier across all ranks of a fresh
  /// communicator with `faults` attached, and return the finalized
  /// StallReport. Never hangs and never leaks rank threads: every rank
  /// either completes or reports.
  StallReport run_once_resilient(const ResilienceOptions& options,
                                 const FaultPlan& faults = {},
                                 LatencyModel latency =
                                     uniform_latency()) const;

 private:
  struct StageOps {
    std::vector<std::size_t> send_to;    ///< two-sided targets
    std::vector<std::size_t> recv_from;  ///< two-sided sources
    std::vector<std::size_t> put_to;     ///< one-sided targets (RMA put)
    std::vector<std::size_t> flag_from;  ///< one-sided sources (flag poll)
  };

  // Spawn threads or dispatch a pool generation, per the construction
  // options.
  void run_episode(Communicator& comm, const RankFunction& fn) const;

  // Issue stage `stage`'s operations (sends before recvs — the same
  // order execute() always used) into the handle.
  void begin_stage(EpisodeHandle& handle, std::size_t stage) const;

  // Enter stage `stage` of a resilient episode: honour crash faults,
  // post the stage's ops, arm the first attempt's budget.
  void begin_stage_resilient(ResilientEpisodeHandle& handle,
                             std::size_t stage) const;

  // One bounded progress slice of a resilient episode: wait the current
  // stage's requests against min(slice, remaining budget), charge the
  // elapsed time, then advance / retry / give up.
  void progress_resilient(ResilientEpisodeHandle& handle,
                          Clock::duration slice) const;

  void check_context(const RankContext& ctx) const;

  // Lazily attach this executor's window region on ctx's communicator
  // (memoized per communicator via rma_region keyed on `this`) and
  // return its base. Only called when the schedule has one-sided
  // edges; episodes on one communicator must then use distinct,
  // non-negative episode numbers (the epoch double-buffering contract,
  // src/rma/layout.hpp — same uniqueness the two-sided tag space
  // already requires).
  std::size_t rma_base(RankContext& ctx, int episode) const;

  std::size_t stages_ = 0;
  std::vector<std::vector<StageOps>> ops_;  ///< ops_[rank][stage]
  ExecutorOptions options_;
  bool has_one_sided_ = false;  ///< any put_to nonempty anywhere
  std::unique_ptr<RankPool> pool_;  ///< owned kPersistentPool only
};

}  // namespace optibar::simmpi
