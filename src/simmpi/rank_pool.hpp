// Persistent rank-thread pool: spawn once, run many episodes.
//
// run_ranks spawns and joins one thread per rank per call — fine for a
// single barrier, ruinous when the callers above it (library stress,
// resilience retries, tuning sweeps, CLI repetitions) execute thousands
// of episodes: thread creation dominates the episode cost long before
// the board does. A RankPool keeps P workers parked on a condition
// variable and runs each episode as a *generation*: the submitter
// publishes the rank function, bumps an epoch counter and broadcasts;
// each participating worker runs the function for its own rank exactly
// once, then parks again. There is no inter-worker barrier — a worker
// only synchronizes with the submitter (epoch to start, a remaining
// count to finish), never with its siblings.
//
// Generations serialize: concurrent run() calls queue on an internal
// mutex, so a pool owned by a shared executor is safe to use from
// several threads (episodes interleave at generation granularity).
// Everything the submitter wrote before run() is visible to the
// workers (publication rides the epoch handshake), and everything the
// workers wrote is visible to the submitter when run() returns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace optibar::simmpi {

/// How an executor's run_once-style entry points obtain rank threads:
/// spawn-and-join per episode (cheap to hold, pays creation every
/// call) or a RankPool owned by the executor (pays creation once,
/// holds P parked threads for the executor's lifetime). The pooled
/// mode serializes concurrent episodes on the pool; observable
/// behaviour is otherwise identical.
enum class ExecutionMode { kSpawnPerEpisode, kPersistentPool };

class RankPool {
 public:
  /// Spawn `ranks` parked workers (one per rank id).
  explicit RankPool(std::size_t ranks);

  /// Wakes and joins every worker; outstanding generations finish first
  /// (the destructor takes the same serialization mutex as run()).
  ~RankPool();

  RankPool(const RankPool&) = delete;
  RankPool& operator=(const RankPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Run fn(rank) for every rank in [0, n) as one generation; workers
  /// with rank >= n stay parked. Blocks until all participants return,
  /// then rethrows the first rank exception (lowest rank wins, like
  /// run_ranks). n must be in [1, size()].
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Full-width generation.
  void run(const std::function<void(std::size_t)>& fn) { run(size(), fn); }

 private:
  void worker_loop(std::size_t rank);

  std::mutex run_mutex_;  ///< serializes generations (submitter side)

  std::mutex mutex_;  ///< guards everything below
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  std::size_t active_ = 0;     ///< ranks participating in this generation
  std::size_t remaining_ = 0;  ///< participants not yet finished
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::vector<std::exception_ptr> errors_;
  bool stop_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace optibar::simmpi
