#include "rma/window.hpp"

#include <vector>

#include "rma/layout.hpp"
#include "util/error.hpp"

namespace optibar::rma {

Window::Window(simmpi::Communicator& comm, std::size_t slots)
    : comm_(comm), slots_(slots), base_(comm.rma_allocate(2 * slots)) {
  OPTIBAR_REQUIRE(slots > 0, "window needs at least one slot");
}

Window::Window(simmpi::Communicator& comm, std::uintptr_t key,
               std::size_t slots)
    : comm_(comm), slots_(slots), base_(comm.rma_region(key, 2 * slots)) {
  OPTIBAR_REQUIRE(slots > 0, "window needs at least one slot");
}

std::uint64_t Window::flag_value(std::size_t episode) {
  return rma::flag_value(episode);
}

void Window::put(std::size_t src, std::size_t dst, std::size_t episode,
                 std::size_t slot, std::size_t stage) {
  put_value(src, dst, episode, slot, flag_value(episode), stage);
}

void Window::put_value(std::size_t src, std::size_t dst, std::size_t episode,
                       std::size_t slot, std::uint64_t value,
                       std::size_t stage) {
  OPTIBAR_REQUIRE(slot < slots_, "slot " << slot << " out of range");
  comm_.rma_put(src, dst, word_of(episode, slot), value, stage);
}

std::uint64_t Window::fetch_add(std::size_t caller, std::size_t dst,
                                std::size_t episode, std::size_t slot,
                                std::uint64_t delta) {
  OPTIBAR_REQUIRE(slot < slots_, "slot " << slot << " out of range");
  return comm_.rma_fetch_add(caller, dst, word_of(episode, slot), delta);
}

std::uint64_t Window::compare_and_swap(std::size_t caller, std::size_t dst,
                                       std::size_t episode, std::size_t slot,
                                       std::uint64_t expected,
                                       std::uint64_t desired) {
  OPTIBAR_REQUIRE(slot < slots_, "slot " << slot << " out of range");
  return comm_.rma_compare_and_swap(caller, dst, word_of(episode, slot),
                                    expected, desired);
}

std::uint64_t Window::read(std::size_t rank, std::size_t episode,
                           std::size_t slot) const {
  OPTIBAR_REQUIRE(slot < slots_, "slot " << slot << " out of range");
  return comm_.rma_read(rank, word_of(episode, slot));
}

bool Window::test(std::size_t rank, std::size_t episode,
                  std::size_t slot) const {
  OPTIBAR_REQUIRE(slot < slots_, "slot " << slot << " out of range");
  return comm_.rma_test(rank, word_of(episode, slot), flag_value(episode));
}

bool Window::wait(std::size_t rank, std::size_t episode,
                  std::span<const std::size_t> slots,
                  simmpi::Clock::time_point deadline) const {
  std::vector<simmpi::Communicator::FlagWait> flags;
  flags.reserve(slots.size());
  for (std::size_t slot : slots) {
    OPTIBAR_REQUIRE(slot < slots_, "slot " << slot << " out of range");
    flags.push_back(wait_for(episode, slot));
  }
  return comm_.rma_wait_until(rank, flags, deadline);
}

}  // namespace optibar::rma
