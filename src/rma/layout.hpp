// Window slot arithmetic for one-sided barrier signalling.
//
// A one-sided signal i -> j in stage s of episode e is a remote store
// of a *flag value* into a well-known word of j's window; j learns of
// the signal by polling (or parking on) that word, never by posting a
// receive. The layout below fixes where that word lives and what value
// it carries, and is shared — header-only, no library dependency — by
// the simmpi executors (which write flags through the Communicator's
// native RMA board), the Window wrapper (src/rma/window.hpp), and the
// tests that assert on raw board state.
//
// Per receiving rank the window holds two *epoch buffers* of
// stages * P words each:
//
//   word(e, s, src) = (e % 2) * stages * P  +  s * P  +  src
//
// and the flag written for episode e is flag_value(e) = e + 1 (zero —
// the freshly-allocated state — therefore never matches any episode).
//
// Double buffering is what makes back-to-back episodes need no reset
// barrier between them. The value a stale word can hold when episode e
// reuses a buffer is the one episode e-2 wrote there, and
// flag_value(e-2) != flag_value(e), so a poll for episode e can never
// be satisfied by leftover state. Why distance 2 suffices: a rank can
// only start episode e+2 after every rank finished e+1 (the barrier
// semantics of e+1), which in turn required every rank to have entered
// e+1, which required every rank to have *finished* e — so by the time
// any rank writes episode-(e+2) flags into the e-parity buffer, no
// rank is still reading episode-e flags from it. Adjacent episodes
// overlap (a fast rank may be in e+1 while a slow one drains e), which
// is exactly why they use different parities.
#pragma once

#include <cstddef>
#include <cstdint>

namespace optibar::rma {

/// Words each rank's window needs for a schedule of `stages` stages
/// over `ranks` ranks: two epoch buffers of stages * ranks flag words.
constexpr std::size_t words_per_rank(std::size_t stages, std::size_t ranks) {
  return 2 * stages * ranks;
}

/// Window-relative index of the flag that `src` writes at the receiver
/// in stage `stage` of episode `episode`.
constexpr std::size_t word_index(std::size_t episode, std::size_t stage,
                                 std::size_t src, std::size_t stages,
                                 std::size_t ranks) {
  return (episode % 2) * stages * ranks + stage * ranks + src;
}

/// The value a put of episode `episode` stores; distinct from the
/// zero-initialised state and from the other parity's last tenant
/// (episode - 2), which is what makes epoch reuse reset-free.
constexpr std::uint64_t flag_value(std::size_t episode) {
  return static_cast<std::uint64_t>(episode) + 1;
}

}  // namespace optibar::rma
