#include "rma/transport.hpp"

#include "barrier/cost_model.hpp"
#include "util/error.hpp"

namespace optibar::rma {

const char* transport_name(Transport transport) {
  switch (transport) {
    case Transport::kTwoSided:
      return "two-sided";
    case Transport::kOneSided:
      return "one-sided";
    case Transport::kHybrid:
      return "hybrid";
  }
  OPTIBAR_FAIL("unknown transport policy");
}

Transport parse_transport(const std::string& name) {
  if (name == "two-sided") {
    return Transport::kTwoSided;
  }
  if (name == "one-sided") {
    return Transport::kOneSided;
  }
  if (name == "hybrid") {
    return Transport::kHybrid;
  }
  OPTIBAR_FAIL("unknown transport '" << name
                                     << "' (two-sided, one-sided, hybrid)");
}

namespace {

// Bounded greedy descent: one pass flips every signal edge once, in
// deterministic (stage, src, dst) scan order, keeping strict
// improvements. A second pass only runs if the first changed
// something; the cap bounds worst-case work without affecting the
// presets (they converge in <= 2 passes).
constexpr int kMaxHybridPasses = 3;

}  // namespace

double assign_transports(Schedule& schedule, const TopologyProfile& profile,
                         const std::vector<bool>& awaited_stages,
                         Transport policy) {
  const std::size_t p = schedule.ranks();
  OPTIBAR_REQUIRE(profile.ranks() == p,
                  "profile has " << profile.ranks() << " ranks, schedule has "
                                 << p);
  PredictOptions options;
  options.awaited_stages = awaited_stages;
  const auto cost = [&] { return predicted_time(schedule, profile, options); };
  const auto clear_all = [&] {
    for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
      schedule.set_transport(s, StageMatrix(p, p, 0));
    }
  };
  const auto tag_all = [&] {
    for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
      schedule.set_transport(s, schedule.stage(s));
    }
  };

  if (policy == Transport::kTwoSided) {
    clear_all();
    return cost();
  }
  if (policy == Transport::kOneSided) {
    tag_all();
    return cost();
  }

  // Hybrid: start from the cheaper uniform assignment, then flip
  // single edges while the predicted critical path strictly improves.
  clear_all();
  double best = cost();
  tag_all();
  const double all_one_sided = cost();
  if (all_one_sided < best) {
    best = all_one_sided;
  } else {
    clear_all();
  }
  for (int pass = 0; pass < kMaxHybridPasses; ++pass) {
    bool improved = false;
    for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
      const StageMatrix& stage = schedule.stage(s);
      for (std::size_t i = 0; i < p; ++i) {
        for (std::size_t j = 0; j < p; ++j) {
          if (!stage(i, j)) {
            continue;
          }
          const StageMatrix before = schedule.transport(s).empty()
                                         ? StageMatrix(p, p, 0)
                                         : schedule.transport(s);
          StageMatrix flipped = before;
          flipped(i, j) = flipped(i, j) ? 0 : 1;
          schedule.set_transport(s, std::move(flipped));
          const double flipped_cost = cost();
          if (flipped_cost < best) {
            best = flipped_cost;
            improved = true;
          } else {
            schedule.set_transport(s, before);
          }
        }
      }
    }
    if (!improved) {
      break;
    }
  }
  // Normalization sweep: untag every put that does not strictly pay for
  // itself. Strict-improvement descent leaves harmless-but-useless tags
  // behind (an edge off the critical path never changes the predicted
  // cost, so no flip of it is ever "an improvement"); accepting
  // equal-cost untags here means the returned schedule carries puts
  // only where the model says they earn their keep. Each accepted flip
  // removes a tag and never raises the cost, so the loop terminates.
  for (bool changed = true; changed && schedule.has_one_sided();) {
    changed = false;
    for (std::size_t s = 0; s < schedule.stage_count(); ++s) {
      for (std::size_t i = 0; i < p; ++i) {
        for (std::size_t j = 0; j < p; ++j) {
          if (schedule.transport(s).empty() || !schedule.one_sided(s, i, j)) {
            continue;
          }
          const StageMatrix before = schedule.transport(s);
          StageMatrix untagged = before;
          untagged(i, j) = 0;
          schedule.set_transport(s, std::move(untagged));
          const double untagged_cost = cost();
          if (untagged_cost <= best) {
            best = untagged_cost;
            changed = true;
          } else {
            schedule.set_transport(s, before);
          }
        }
      }
    }
  }
  return best;
}

TransportTune tune_transport(const TopologyProfile& profile,
                             const EngineOptions& options, Transport policy) {
  TuneResult tuned = tune_barrier(profile, options);
  Schedule schedule = tuned.schedule();
  const double cost = assign_transports(
      schedule, tuned.profile(), tuned.barrier().awaited_stages, policy);
  TransportTune out{std::move(tuned), std::move(schedule), cost, policy, 0};
  out.one_sided_signals = out.schedule.one_sided_signal_count();
  return out;
}

TransportTune tune_best_transport(const TopologyProfile& profile,
                                  const EngineOptions& options) {
  // One tune, three taggings: the signal pattern is transport-oblivious
  // (see the header), so the candidates share it and differ only in
  // tags. Strict improvement keeps the first (simplest) policy on ties.
  TuneResult tuned = tune_barrier(profile, options);
  Schedule best_schedule = tuned.schedule();
  double best_cost =
      assign_transports(best_schedule, tuned.profile(),
                        tuned.barrier().awaited_stages, Transport::kTwoSided);
  Transport best_policy = Transport::kTwoSided;
  for (const Transport policy : {Transport::kOneSided, Transport::kHybrid}) {
    Schedule schedule = tuned.schedule();
    const double cost = assign_transports(
        schedule, tuned.profile(), tuned.barrier().awaited_stages, policy);
    if (cost < best_cost) {
      best_schedule = std::move(schedule);
      best_cost = cost;
      best_policy = policy;
    }
  }
  TransportTune out{std::move(tuned), std::move(best_schedule), best_cost,
                    best_policy, 0};
  out.one_sided_signals = out.schedule.one_sided_signal_count();
  return out;
}

}  // namespace optibar::rma
