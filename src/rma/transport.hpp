// Transport selection: which signals of a schedule travel one-sided.
//
// The tuner's search explores *signal patterns* (which rank signals
// which, per stage) with a transport-oblivious predictor; transports
// are assigned afterwards, here. Under the extended cost model a put
// edge i -> j swaps the rendezvous startup O(i, j) for the local
// O(i, i), delivers R(i, j) after the sender's batch instead of
// charging the receiver's serial completion processing, and keeps its
// L(i, j) injection term — so an edge prefers one-sided exactly where
// remote-write delivery beats rendezvous-plus-processing, which on the
// modelled clusters holds across node boundaries (hardware RDMA) but
// not within a node (the paper's shared-memory ranks complete
// two-sided signals cheaply, while a loopback put still pays the NIC
// round through R).
//
// Policies:
//   kTwoSided — strip every transport tag (the classic schedule);
//   kOneSided — tag every signal as a put;
//   kHybrid   — greedy per-edge descent: start from the cheaper of the
//               two uniform assignments, flip single edges while the
//               predicted critical path strictly improves, then
//               normalize by untagging every put whose removal does
//               not raise the cost — so the result carries puts only
//               where the model says they earn their keep, never as
//               leftovers of the all-one-sided start. The predictor is
//               the compiled Eq. 1/2 kernel, so each flip costs one
//               compile + evaluate; the whole procedure is
//               deterministic (stages ascending, edges in (src, dst)
//               scan order).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "barrier/schedule.hpp"
#include "core/engine_options.hpp"
#include "core/tuner.hpp"
#include "topology/profile.hpp"

namespace optibar::rma {

enum class Transport {
  kTwoSided,  ///< every signal is a matched send/recv (classic)
  kOneSided,  ///< every signal is an RMA put
  kHybrid,    ///< per-edge choice by predicted cost
};

/// "two-sided" / "one-sided" / "hybrid".
const char* transport_name(Transport transport);

/// Inverse of transport_name; throws optibar::Error on anything else.
Transport parse_transport(const std::string& name);

/// Rewrite `schedule`'s transport tags according to `policy` and
/// return the predicted critical path of the result (Eq. 2 on the
/// stages flagged in `awaited_stages`). kTwoSided leaves the schedule
/// tag-free — saving it emits the v1 format, bit-identical to a
/// pre-RMA build.
double assign_transports(Schedule& schedule, const TopologyProfile& profile,
                         const std::vector<bool>& awaited_stages,
                         Transport policy);

/// A tuned barrier with transports assigned: the transport-oblivious
/// tune_barrier() result plus the tagged schedule and its re-predicted
/// cost. `schedule` differs from `tuned.schedule()` only in transport
/// tags (and not at all under kTwoSided, where cost ==
/// tuned.predicted_cost() bit for bit).
struct TransportTune {
  TuneResult tuned;
  Schedule schedule;
  double cost = 0.0;
  Transport transport = Transport::kTwoSided;
  std::size_t one_sided_signals = 0;  ///< tagged edges in `schedule`
};

/// tune_barrier() followed by assign_transports() on a copy of the
/// tuned schedule.
TransportTune tune_transport(const TopologyProfile& profile,
                             const EngineOptions& options, Transport policy);

/// Enumerate all three policies over one tune_barrier() result and
/// return the cheapest. Ties resolve toward the simpler transport
/// (two-sided, then one-sided, then hybrid), so a profile that gains
/// nothing from puts — e.g. one without R data, priced at the L
/// fallback — comes back untagged and bit-identical to tune_barrier().
TransportTune tune_best_transport(const TopologyProfile& profile,
                                  const EngineOptions& options);

}  // namespace optibar::rma
