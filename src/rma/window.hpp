// Window: the public one-sided RMA surface over a simmpi Communicator.
//
// A Window is the simmpi analogue of an MPI_Win: a symmetric region of
// `slots` flag words per rank (double-buffered internally, so the
// backing allocation is 2 * slots words), with fire-and-forget put,
// round-trip fetch_add / compare_and_swap, nonblocking test and a
// bounded park-until-arrived wait. The storage itself lives on the
// Communicator's sharded RMA board (communicator.hpp) — the Window
// only owns the slot arithmetic (src/rma/layout.hpp) and the epoch
// double-buffering contract:
//
//   * episode e uses buffer parity e % 2 and writes flag_value(e)
//     = e + 1;
//   * back-to-back episodes need no reset barrier — see layout.hpp for
//     the distance-2 argument;
//   * a slot may be awaited by exactly one rank (its owner); any rank
//     may put into it. Puts to the same slot in the same episode
//     follow last-put-wins (barrier schedules never do this: a slot is
//     keyed by its unique source).
//
// Executors do not link this library — they drive the Communicator
// board directly through layout.hpp — so Window exists for tests,
// benches and library users that want one-sided signalling without
// hand-rolling indices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "simmpi/communicator.hpp"

namespace optibar::rma {

class Window {
 public:
  /// Allocate a fresh double-buffered region of `slots` words per rank
  /// on `comm`'s RMA board. `comm` must outlive the Window.
  Window(simmpi::Communicator& comm, std::size_t slots);

  /// Attach to (or first-create) the shared region identified by
  /// `key` — the memoized form executors use so several Windows over
  /// one communicator can address the same flags.
  Window(simmpi::Communicator& comm, std::uintptr_t key, std::size_t slots);

  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  std::size_t slots() const { return slots_; }
  std::size_t base() const { return base_; }

  /// Absolute board index of `slot` in `episode`'s epoch buffer.
  std::size_t word_of(std::size_t episode, std::size_t slot) const {
    return base_ + (episode % 2) * slots_ + slot;
  }

  /// The flag value episode `episode` signals with (layout.hpp).
  static std::uint64_t flag_value(std::size_t episode);

  /// Fire-and-forget: store episode `episode`'s flag into `dst`'s copy
  /// of `slot`. `stage` feeds fault-plan putdrop matching.
  void put(std::size_t src, std::size_t dst, std::size_t episode,
           std::size_t slot, std::size_t stage = 0);

  /// Fire-and-forget raw store (collectives and tests that carry a
  /// value instead of an episode flag).
  void put_value(std::size_t src, std::size_t dst, std::size_t episode,
                 std::size_t slot, std::uint64_t value, std::size_t stage = 0);

  /// Round-trip atomics on `dst`'s copy of `slot` (never dropped).
  std::uint64_t fetch_add(std::size_t caller, std::size_t dst,
                          std::size_t episode, std::size_t slot,
                          std::uint64_t delta);
  std::uint64_t compare_and_swap(std::size_t caller, std::size_t dst,
                                 std::size_t episode, std::size_t slot,
                                 std::uint64_t expected, std::uint64_t desired);

  /// Last arrived value of the caller's own copy of `slot` (ignores
  /// delivery latency — diagnostics; poll with test()).
  std::uint64_t read(std::size_t rank, std::size_t episode,
                     std::size_t slot) const;

  /// True once `rank`'s copy of `slot` visibly holds episode
  /// `episode`'s flag (delivery latency elapsed).
  bool test(std::size_t rank, std::size_t episode, std::size_t slot) const;

  /// The FlagWait a bounded stage wait passes to
  /// Communicator::wait_stage_on_until for this slot.
  simmpi::Communicator::FlagWait wait_for(std::size_t episode,
                                          std::size_t slot) const {
    return {word_of(episode, slot), flag_value(episode)};
  }

  /// Bounded park until every slot in `slots` holds episode
  /// `episode`'s flag at `rank`, or `deadline` (false: some flag never
  /// arrived — e.g. a dropped put). Delivery latency is slept out on
  /// success.
  bool wait(std::size_t rank, std::size_t episode,
            std::span<const std::size_t> slots,
            simmpi::Clock::time_point deadline) const;

 private:
  simmpi::Communicator& comm_;
  std::size_t slots_;
  std::size_t base_;
};

}  // namespace optibar::rma
