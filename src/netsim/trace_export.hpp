// Export of per-message simulation traces.
//
// With SimOptions::record_trace the engine logs every signal's injection
// and match times. These exporters turn that log into
//   - CSV (stage, src, dst, injected, matched, duration) for analysis,
//   - Chrome trace-event JSON ("chrome://tracing" / Perfetto), one
//     timeline row per rank, so a barrier's wavefront is visible
//     interactively.
#pragma once

#include <ostream>

#include "netsim/engine.hpp"

namespace optibar {

/// CSV with a header row; times in seconds (full precision).
void write_trace_csv(std::ostream& os, const SimResult& result);

/// Chrome trace-event JSON. Virtual seconds are scaled by `time_scale`
/// into the microsecond field the format expects; the default (1e9)
/// renders one virtual microsecond as one displayed millisecond, which
/// keeps sub-microsecond signals visible.
void write_trace_chrome_json(std::ostream& os, const SimResult& result,
                             double time_scale = 1e9);

/// Terminal Gantt chart of the barrier: one row per rank, `-` while the
/// rank is inside the barrier, digits/`#` where its messages are in
/// flight (the digit is the stage number mod 10; `#` marks overlap),
/// `|` at exit. Requires a recorded trace for the message marks; works
/// without one (entry/exit only). `width` is the number of time columns.
std::string render_timeline(const SimResult& result, std::size_t width = 72);

}  // namespace optibar
