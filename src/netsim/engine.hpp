// Discrete-event execution of barrier schedules.
//
// This engine stands in for "measured execution time" on the paper's
// physical clusters. It executes a Schedule message by message against a
// ground-truth TopologyProfile, with a *finer* model than the Eq. 1/2
// predictor uses — which is precisely why predicted and measured curves
// differ in Figures 5-8 while sharing their shape:
//
//   - a sender's messages within a stage are injected serially (NIC
//     occupancy): the first at start + O(i,j0), each subsequent one L
//     later, mirroring what the L benchmark of Section IV-A measures;
//   - synchronized-send semantics (MPI_Issend, Section III): a message
//     only *matches* once the receiver has entered the stage, and the
//     sender's stage does not complete until all its sends have matched;
//   - optional multiplicative per-message noise and rare background-load
//     spikes (the paper ran under per-node-exclusive but otherwise shared
//     conditions, Section IV-B);
//   - one-sided (RMA put) edges, where the schedule tags them
//     (Schedule::transport): the put shares the sender's serial
//     injection and egress slots like any signal, but its startup is the
//     local O(i,i) and it lands as a remote flag write R(src,dst) after
//     clearing the NIC — no receiver-side completion processing, and in
//     synchronized mode the whole put batch completes locally at its
//     last injection (fire-and-forget) instead of waiting for matches.
//     Untagged schedules take the two-sided paths untouched, RNG stream
//     included.
//
// Execution is event-driven over virtual time and fully deterministic
// for a fixed seed.
//
// Two implementations share this contract bit for bit:
//
//   simulate()           — the production engine: calendar-queue
//                          scheduler over typed SimEvents
//                          (calendar_queue.hpp), CompiledSchedule CSR
//                          adjacency spans instead of per-stage
//                          sources_of/targets_of vectors, and all
//                          mutable state in a reusable SimWorkspace,
//                          so steady-state simulation performs zero
//                          heap allocations (the PredictWorkspace
//                          discipline of compiled_schedule.hpp).
//   simulate_reference() — the original closure-over-priority-queue
//                          engine, kept verbatim as the parity oracle
//                          (the predict_reference pattern). Every
//                          result — completion vectors, traces, stall
//                          diagnostics, RNG streams — is bit-identical
//                          between the two (test_netsim_parity).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "barrier/compiled_schedule.hpp"
#include "barrier/schedule.hpp"
#include "netsim/calendar_queue.hpp"
#include "profile/tiled_profile.hpp"
#include "simmpi/fault.hpp"
#include "topology/machine.hpp"
#include "topology/mapping.hpp"
#include "topology/profile.hpp"

namespace optibar {

class ThreadPool;  // util/thread_pool.hpp

struct SimOptions {
  /// Synchronized-send coupling (MPI_Issend). Disable to model eager
  /// fire-and-forget sends.
  bool synchronous_sends = true;

  /// Serial receive-completion processing: each incoming message
  /// occupies the receiver for its marginal latency L(src,dst) after
  /// arrival (see cost_model.hpp for why both engines model this).
  /// Disable for a free-receive model (bench_ablation_model).
  bool receiver_processing = true;

  /// Relative standard deviation of per-message multiplicative jitter on
  /// each O/L contribution; 0 disables noise entirely.
  double jitter = 0.0;

  /// Probability that a message hits a background-load spike, and the
  /// spike magnitude as a multiple of the message's base cost.
  double spike_probability = 0.0;
  double spike_scale = 10.0;

  /// Per-rank barrier entry times (seconds); empty = all enter at 0.
  /// Used for the paper's delay-injection correctness check (Section VI).
  std::vector<double> entry_times;

  /// Optional shared-egress contention (one of the "terms for further
  /// phenomena" Section VI-A says would be needed for absolute
  /// accuracy): egress_resource_of[rank] assigns each rank an egress
  /// resource, typically its node's NIC. A message whose endpoints sit
  /// on different resources occupies the sender's resource for its
  /// marginal latency, so concurrent remote messages from co-located
  /// ranks serialize — this is what punishes high-fan-out algorithms
  /// (dissemination) on commodity GbE nodes. Empty disables.
  std::vector<std::size_t> egress_resource_of;

  /// Optional extra per-message cost in seconds, added to the message's
  /// base cost wherever the engine charges it (serial injection, shared
  /// egress occupancy, receiver processing) and perturbed together with
  /// it. The collective layer uses this to price payload bytes
  /// (bytes * G(src,dst)); null leaves the pure signalling model — and
  /// the RNG stream — bit-identical.
  std::function<double(std::size_t stage, std::size_t src, std::size_t dst)>
      extra_message_cost;

  /// Nonblocking-progress (MPI_Ibarrier) model: after entering the
  /// barrier — which now models *posting* the handle —
  /// rank r computes for compute_after_post[r] seconds of application
  /// work and only drives barrier progress when it polls the handle,
  /// every progress_poll_interval seconds since its entry. A stage
  /// transition whose prerequisites complete inside the compute window
  /// is deferred to the rank's next poll tick (host-driven progress:
  /// nothing advances while the host is not in the library); once the
  /// window ends the rank blocks in wait() and transitions are
  /// immediate again. Leaving compute_after_post empty or the poll
  /// interval at 0 disables the model and keeps every result — and the
  /// RNG stream — bit-identical to the blocking engine.
  std::vector<double> compute_after_post;
  double progress_poll_interval = 0.0;

  /// Record a per-message trace (inject/match times) for diagnostics.
  bool record_trace = false;

  /// Failure injection: these ranks never enter the barrier (process
  /// death before the call). A correct barrier must then deadlock — no
  /// surviving rank may exit (that is the Eq. 3 guarantee seen from the
  /// failure side). The engine reports the stuck ranks instead of
  /// treating the hang as an internal error.
  std::vector<std::size_t> crashed_ranks;

  /// The shared fault model (simmpi/fault.hpp), interpreted on virtual
  /// time: drop rules lose the message after injection (a synchronized
  /// sender then never completes the stage), duplicate rules deliver an
  /// occupancy-only ghost copy (extra NIC and receiver-processing time,
  /// no protocol effect), delay rules push the injection later, and
  /// crash rules halt a rank on entering the given stage — crash at
  /// stage 0 is exactly the legacy crashed_ranks semantics, and putdrop
  /// rules lose a one-sided flag write after injection (the receiver
  /// waits forever; the sender, complete at injection, never learns).
  /// Rule tags are matched against the stage index. An empty plan
  /// leaves the RNG stream — and thus every result — bit-identical.
  FaultPlan faults;

  std::uint64_t seed = 1;
};

/// One recorded message (record_trace only).
struct MessageTrace {
  std::size_t stage = 0;
  std::size_t src = 0;
  std::size_t dst = 0;
  double injected = 0.0;  ///< when the message left the sender
  double matched = 0.0;   ///< when the receiver matched it
};

struct SimResult {
  /// Virtual time at which each rank left the barrier; infinity for
  /// ranks that never completed (crash-injection runs).
  std::vector<double> completion;
  /// Entry time of each rank (copy of options or zeros).
  std::vector<double> entry;
  std::vector<MessageTrace> trace;

  /// True when at least one rank never left the barrier (only possible
  /// with fault injection — crashed_ranks or a non-empty SimOptions
  /// fault plan; anything else is an engine invariant error).
  bool deadlocked = false;
  /// The ranks that never completed, ascending (crashed ranks plus
  /// everyone transitively blocked on them).
  std::vector<std::size_t> stuck_ranks;

  /// The measured barrier cost: latest exit minus latest entry — the
  /// span during which at least one rank is blocked purely by the
  /// barrier's signalling. Throws when the run deadlocked.
  double barrier_time() const;
  /// Latest exit time. Throws when the run deadlocked.
  double completion_time() const;
};

/// Reusable simulation state: the compiled adjacency, the calendar
/// queue (event slab + buckets), dense per-rank state, and the
/// buffered-message pool. One workspace per thread; every member is
/// reset with capacity kept, so repeated simulate_into calls are
/// allocation-free once the largest (ranks, stages, events) shape has
/// been seen. The contents between calls are meaningless — only the
/// capacities carry over.
struct SimWorkspace {
  /// Marks an empty buffered-message chain / free pool slot.
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  /// Per-rank protocol state (dense array, one slot per rank).
  struct RankState {
    std::uint32_t stage = 0;
    std::uint8_t entered = 0;
    std::uint8_t done = 0;
    std::uint32_t recvs_pending = 0;
    std::uint32_t sends_pending = 0;
  };

  CompiledSchedule compiled;  ///< rebound by simulate_into (grow-only)
  CalendarQueue queue;

  std::vector<RankState> states;
  std::vector<std::uint8_t> halted;   ///< crashed (at stage 0 or later)
  std::vector<std::uint8_t> crashed;  ///< pre-entry crash scratch
  std::vector<double> recv_busy;
  std::vector<double> egress_busy;

  // Buffered-message pool: struct-of-arrays slab, bump-allocated per
  // run, threaded into per-(stage, rank) FIFO chains. Row r of
  // buf_head/buf_tail is stage * ranks + rank; buf_next links nodes in
  // arrival order (the order stage entry must drain them in).
  std::vector<std::uint32_t> buf_head;
  std::vector<std::uint32_t> buf_tail;
  std::vector<std::uint32_t> buf_src;
  std::vector<double> buf_injected;
  std::vector<std::uint8_t> buf_ghost;
  std::vector<std::uint8_t> buf_put;  ///< 1 = buffered one-sided flag
  std::vector<std::uint32_t> buf_next;
};

/// Execute `schedule` once. Requires schedule.is_barrier() callers can
/// check separately; the engine itself only requires well-formed stages.
SimResult simulate(const Schedule& schedule, const TopologyProfile& profile,
                   const SimOptions& options = {});

/// The original engine (std::function events on a binary-heap
/// EventQueue, per-stage adjacency vectors), kept as the bit-identical
/// oracle for simulate(). Cold path: use only for parity testing and
/// as the baseline of bench_netsim.
SimResult simulate_reference(const Schedule& schedule,
                             const TopologyProfile& profile,
                             const SimOptions& options = {});

/// simulate() into caller-owned storage: compiles `schedule` into
/// `workspace.compiled` (grow-only) and writes the result into `out`,
/// reusing both. Zero allocations once workspace and out are warm.
void simulate_into(const Schedule& schedule, const TopologyProfile& profile,
                   const SimOptions& options, SimWorkspace& workspace,
                   SimResult& out);

/// Innermost entry point: run against an already-compiled schedule
/// (compile once, simulate many — what every repetition loop below
/// does). `compiled` must have been built against a profile with the
/// same rank count.
void simulate_compiled_into(const CompiledSchedule& compiled,
                            const TopologyProfile& profile,
                            const SimOptions& options,
                            SimWorkspace& workspace, SimResult& out);

/// Same, but reading per-message costs straight from a tiled profile —
/// the engine is templated over the cost source internally, so at
/// 10k ranks no dense O/L/R matrices ever exist. Bit-identical to the
/// dense overload when the tiled accessors agree with a dense profile.
void simulate_compiled_into(const CompiledSchedule& compiled,
                            const TiledProfile& profile,
                            const SimOptions& options,
                            SimWorkspace& workspace, SimResult& out);

/// Mean barrier_time over `repetitions` runs with derived seeds — the
/// netsim analogue of the paper's 25-repetition means. Repetitions are
/// independent (each derives its own seed from `options.seed` and the
/// repetition index) and fan out across `pool` when one is given; the
/// per-rep results are accumulated in repetition order, so the mean is
/// bit-identical at any pool width, including none.
double simulate_mean_time(const Schedule& schedule,
                          const TopologyProfile& profile,
                          const SimOptions& options, std::size_t repetitions,
                          ThreadPool* pool = nullptr);

/// Build the egress resource map "one NIC per node" for a placement:
/// resource_of[rank] = node hosting the rank.
std::vector<std::size_t> node_egress_resources(const MachineSpec& machine,
                                               const Mapping& mapping);

/// A bulk-synchronous workload: `episodes` rounds of (per-rank compute,
/// barrier). Compute times draw from a normal distribution truncated at
/// zero — the skew between ranks is what the barrier absorbs, and what
/// makes repeated-barrier cost differ from the all-enter-at-once case.
struct WorkloadOptions {
  std::size_t episodes = 10;
  double compute_mean = 1e-4;    ///< seconds of compute per rank per round
  double compute_stddev = 1e-5;  ///< per-rank, per-round skew
  SimOptions sim;                ///< engine options for every episode
};

struct WorkloadResult {
  /// Barrier span (latest exit - latest entry) of each episode.
  std::vector<double> episode_barrier_times;
  /// Per-rank wait: barrier exit minus own entry, accumulated over all
  /// episodes — the synchronization overhead an application perceives.
  std::vector<double> rank_wait_total;
  /// Virtual time at which the whole workload finished.
  double makespan = 0.0;

  double mean_barrier_time() const;
  double total_wait() const;
};

/// Simulate the bulk-synchronous workload: episode e's entry times are
/// episode e-1's completions plus fresh compute draws.
WorkloadResult simulate_workload(const Schedule& schedule,
                                 const TopologyProfile& profile,
                                 const WorkloadOptions& options = {});

/// The overlap workload family: one episode of per-rank compute
/// interleaved with barrier progress, run twice — blocking (all compute
/// before the barrier call) and nonblocking (a fraction of the compute
/// placed *after* the post, with handle polls every poll_interval) —
/// so the two completion times isolate what communication/computation
/// overlap buys on a given schedule and topology.
struct OverlapOptions {
  /// Total application compute per rank per episode (seconds), and the
  /// per-rank skew (normal draw truncated at zero, like the workload).
  double compute_seconds = 1e-3;
  double compute_stddev = 0.0;

  /// Fraction of each rank's compute placed after the post, in [0,1]:
  /// 0 degenerates to the blocking run, 1 posts immediately and
  /// overlaps everything.
  double overlap_ratio = 1.0;

  /// How often a computing rank polls its handle (seconds); barrier
  /// progress during the compute window happens only at these ticks.
  double poll_interval = 5e-5;

  /// Base engine options (seed, jitter, faults...). entry_times,
  /// compute_after_post, and progress_poll_interval must be left
  /// empty/zero — the overlap runner owns them.
  SimOptions sim;
};

struct OverlapResult {
  /// Latest exit over ranks of the blocking run (compute, then barrier).
  double blocking_completion = 0.0;
  /// Latest exit of the nonblocking run (post, compute, wait).
  double nonblocking_completion = 0.0;
  /// Worst exposed wait of the nonblocking run: completion minus end of
  /// own compute window, maxed over ranks — the barrier cost the
  /// application still perceives after overlap.
  double exposed_wait = 0.0;
  /// blocking_completion - nonblocking_completion (can be slightly
  /// negative when poll latency outweighs the overlappable span).
  double saved = 0.0;
  /// saved / blocking barrier span, clamped to [0,1]: the fraction of
  /// the barrier the overlap hid.
  double overlap_efficiency = 0.0;
};

/// One overlap episode (both runs share the per-rank compute draws and
/// the engine seed, so the comparison is paired). Deterministic for a
/// fixed seed.
OverlapResult simulate_overlap(const Schedule& schedule,
                               const TopologyProfile& profile,
                               const OverlapOptions& options = {});

/// Mean over `repetitions` paired overlap episodes; rep 0 uses the
/// options verbatim (one rep equals simulate_overlap), later reps
/// derive fresh seeds. Reps fan out across `pool` into index-owned
/// slots — pool width never changes the result.
OverlapResult simulate_overlap_mean(const Schedule& schedule,
                                    const TopologyProfile& profile,
                                    const OverlapOptions& options,
                                    std::size_t repetitions,
                                    ThreadPool* pool = nullptr);

/// `repetitions` independent workload runs. Rep 0 uses the options
/// verbatim (so element 0 equals simulate_workload); each later rep
/// derives a fresh seed from `options.sim.seed` and its index. Reps
/// fan out across `pool` when one is given and land in index-owned
/// slots, so the result vector is invariant to pool width — the
/// thread-count-invariance contract of every seeded mean in this
/// engine.
std::vector<WorkloadResult> simulate_workload_reps(
    const Schedule& schedule, const TopologyProfile& profile,
    const WorkloadOptions& options, std::size_t repetitions,
    ThreadPool* pool = nullptr);

}  // namespace optibar
