// Deterministic discrete-event queue (the reference scheduler).
//
// Events fire in (time, insertion-sequence) order, so simulations are
// reproducible regardless of how ties arise. The queue is deliberately
// minimal — simulate_reference (engine.hpp) is the only remaining
// client since the hot path moved to the calendar queue
// (calendar_queue.hpp), but it is generic enough for other
// virtual-time substrates.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "util/error.hpp"

namespace optibar {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedule `action` at absolute virtual time `time`; must not be in
  /// the past relative to now().
  void schedule(double time, Action action) {
    OPTIBAR_REQUIRE(time >= now_, "event scheduled in the past: " << time
                                                                  << " < "
                                                                  << now_);
    heap_.push(Entry{time, next_seq_++, std::move(action)});
  }

  double now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Pop and run the earliest event; advances now().
  void step() {
    OPTIBAR_REQUIRE(!heap_.empty(), "step on empty event queue");
    // Move out before pop (the action may schedule new events). top()
    // is const, but moving only hollows the std::function — the
    // comparator pop() sifts with reads just time/seq, which a move
    // leaves untouched — so this avoids a heap-allocating copy of
    // every fired closure.
    Entry entry = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    now_ = entry.time;
    entry.action();
  }

  /// Run until no events remain. `max_events` guards against runaway
  /// event cascades (a simulator bug, not a user error).
  void run(std::size_t max_events = 100'000'000) {
    std::size_t executed = 0;
    while (!heap_.empty()) {
      OPTIBAR_ASSERT(executed++ < max_events,
                     "event cascade exceeded " << max_events << " events");
      step();
    }
  }

 private:
  struct Entry {
    double time;
    std::uint64_t seq;
    Action action;

    bool operator>(const Entry& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace optibar
